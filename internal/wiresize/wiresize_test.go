package wiresize

import "testing"

func TestSectionFourFourConstants(t *testing.T) {
	// §4.4's published figures: 144-byte signed routing entries and
	// 30-byte probes.
	if PSSREntry != 144 {
		t.Errorf("PSSREntry = %d, want 144", PSSREntry)
	}
	if ProbePacket != 30 {
		t.Errorf("ProbePacket = %d, want 30", ProbePacket)
	}
	if NodeID != 16 || IPUDPHeader != 28 || Signature != 64 {
		t.Errorf("base constants drifted: NodeID=%d IPUDPHeader=%d Signature=%d",
			NodeID, IPUDPHeader, Signature)
	}
}

func TestHopCosts(t *testing.T) {
	// A stewarded hop carries strictly more than its ack leg (two extra
	// identifiers for source/destination routing).
	if StewardedHop <= AckHop {
		t.Errorf("StewardedHop (%d) <= AckHop (%d)", StewardedHop, AckHop)
	}
	if StewardedHop != IPUDPHeader+3*NodeID+MsgID+Signature {
		t.Errorf("StewardedHop = %d, composition drifted", StewardedHop)
	}
}

func TestSnapshotBytes(t *testing.T) {
	base := SnapshotBytes(0)
	if base != IPUDPHeader+NodeID+Timestamp+Signature {
		t.Errorf("empty snapshot = %d, composition drifted", base)
	}
	if got := SnapshotBytes(10); got != base+50 {
		t.Errorf("SnapshotBytes(10) = %d, want %d (5 bytes per observation)", got, base+50)
	}
	if SnapshotBytes(-3) != base {
		t.Error("negative observation count not clamped to zero")
	}
}
