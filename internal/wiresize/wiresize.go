// Package wiresize holds the §4.4 byte-accounting constants as a leaf
// package with no dependencies, so every protocol layer can meter its
// bytes-on-wire into the metrics registry without importing
// internal/wire (which depends on internal/core for codec types).
// internal/wire re-exports these constants under its historical names.
package wiresize

// Sizes from §4.4's accounting.
const (
	// NodeID is the identifier length in a routing entry.
	NodeID = 16
	// FreshnessTimestamp is the per-entry signed timestamp payload.
	FreshnessTimestamp = 4
	// PSSREntry is a routing entry (identifier + timestamp) signed
	// with PSS-R over a 1024-bit key: message recovery folds the 20
	// payload bytes into the 128-byte signature block, totalling 144.
	PSSREntry = 144
	// PathSummary encodes one path's probe results: "a few bits",
	// budgeted at one byte.
	PathSummary = 1
	// IPUDPHeader is the IP+UDP header overhead per packet.
	IPUDPHeader = 28
	// ProbeNonce is the 16-bit probe nonce.
	ProbeNonce = 2
	// ProbePacket is one striped unicast probe on the wire.
	ProbePacket = IPUDPHeader + ProbeNonce
	// LeafSetEntries is the leaf count added to μφ for total routing
	// state size.
	LeafSetEntries = 16

	// Signature is an Ed25519 signature (the reproduction's stand-in
	// for the paper's PSS-R commitments and snapshot signatures).
	Signature = 64
	// MsgID is the per-sender message counter carried in commitments.
	MsgID = 8
	// Timestamp is a virtual-time instant on the wire.
	Timestamp = 8
)

// StewardedHop is the modeled on-wire cost of forwarding one
// stewarded message across one overlay hop: packet header, source and
// destination identifiers, the message id, and the next hop's signed
// forwarding commitment (§3.6: judged identifier + signature).
const StewardedHop = IPUDPHeader + 2*NodeID + MsgID + NodeID + Signature

// AckHop is the modeled cost of one acknowledgment leg: header, the
// acker's identifier, the message id, and its signature.
const AckHop = IPUDPHeader + NodeID + MsgID + Signature

// SnapshotBytes models one signed tomographic snapshot (§3.2) carrying
// n link observations: header, prober identifier, timestamp, one
// packed (link id, status) pair per observation, and the signature.
func SnapshotBytes(n int) int {
	if n < 0 {
		n = 0
	}
	return IPUDPHeader + NodeID + Timestamp + n*5 + Signature
}
