package experiments

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"testing"
	"time"

	"concilium/internal/core"
	"concilium/internal/topology"
)

func testRand() *rand.Rand { return rand.New(rand.NewPCG(301, 303)) }

func TestFig1AnalyticTracksMonteCarlo(t *testing.T) {
	t.Parallel()
	cfg := Fig1Config{Ns: []int{256, 1131, 4096}, Trials: 120}
	res, err := Fig1(cfg, testRand())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Analytic.X) != 3 || len(res.MonteCarlo.X) != 3 {
		t.Fatal("wrong series lengths")
	}
	// Figure 1's claim: the model matches simulated occupancy closely.
	if worst := res.MaxMeanError(); worst > 1.5 {
		t.Errorf("worst analytic-vs-MC gap = %v slots", worst)
	}
	// Occupancy grows with N.
	if res.Analytic.Y[2] <= res.Analytic.Y[0] {
		t.Error("occupancy not growing with N")
	}
}

func TestFig1Validation(t *testing.T) {
	t.Parallel()
	if _, err := Fig1(Fig1Config{}, testRand()); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := Fig1(Fig1Config{Ns: []int{1}, Trials: 10}, testRand()); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := Fig1(Fig1Config{Ns: []int{100}, Trials: 1}, testRand()); err == nil {
		t.Error("single trial accepted")
	}
}

func TestFig23CurveShapes(t *testing.T) {
	t.Parallel()
	cfg := DefaultFig23Config(false)
	cfg.Collusions = []float64{0.2, 0.3}
	res, err := Fig23(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FalsePositives) != 2 || len(res.FalseNegatives) != 2 {
		t.Fatal("wrong curve counts")
	}
	// FP decreases along γ; FN increases.
	fp := res.FalsePositives[0]
	for i := 1; i < len(fp.Y); i++ {
		if fp.Y[i] > fp.Y[i-1]+1e-9 {
			t.Fatalf("FP curve not monotone at γ=%v", fp.X[i])
		}
	}
	fn := res.FalseNegatives[0]
	for i := 1; i < len(fn.Y); i++ {
		if fn.Y[i] < fn.Y[i-1]-1e-9 {
			t.Fatalf("FN curve not monotone at γ=%v", fn.X[i])
		}
	}
	// Misclassification grows with collusion.
	if res.Optimal.Y[1] <= res.Optimal.Y[0] {
		t.Error("optimal misclassification should grow with collusion")
	}
	// Summary table renders.
	table := res.SummaryTable("fig2c")
	if len(table.Rows) != 2 {
		t.Errorf("summary rows = %d", len(table.Rows))
	}
	var buf bytes.Buffer
	if err := WriteTable(&buf, table); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty table output")
	}
}

func TestFig23SuppressionWorse(t *testing.T) {
	t.Parallel()
	plain := DefaultFig23Config(false)
	plain.Collusions = []float64{0.2}
	sup := DefaultFig23Config(true)
	sup.Collusions = []float64{0.2}
	rPlain, err := Fig23(plain)
	if err != nil {
		t.Fatal(err)
	}
	rSup, err := Fig23(sup)
	if err != nil {
		t.Fatal(err)
	}
	if rSup.Optimal.Y[0] <= rPlain.Optimal.Y[0] {
		t.Errorf("suppression should worsen misclassification: %v vs %v",
			rSup.Optimal.Y[0], rPlain.Optimal.Y[0])
	}
}

func TestFig23Validation(t *testing.T) {
	t.Parallel()
	bad := DefaultFig23Config(false)
	bad.N = 1
	if _, err := Fig23(bad); err == nil {
		t.Error("N=1 accepted")
	}
	bad = DefaultFig23Config(false)
	bad.Gammas = []float64{0.9}
	if _, err := Fig23(bad); err == nil {
		t.Error("γ<1 accepted")
	}
	bad = DefaultFig23Config(false)
	bad.Collusions = nil
	if _, err := Fig23(bad); err == nil {
		t.Error("empty collusions accepted")
	}
}

func smallSystemConfig() core.SystemConfig {
	cfg := core.DefaultSystemConfig()
	cfg.Topology = topology.TestConfig()
	cfg.OverlayFraction = 0.5
	cfg.ArchiveRetention = 5 * time.Minute
	return cfg
}

func TestFig4CoverageShape(t *testing.T) {
	t.Parallel()
	cfg := Fig4Config{System: smallSystemConfig(), SampleHosts: 10}
	res, err := Fig4(cfg, testRand())
	if err != nil {
		t.Fatal(err)
	}
	if res.Hosts != 10 {
		t.Errorf("hosts = %d", res.Hosts)
	}
	cov := res.Coverage.Y
	if len(cov) < 3 {
		t.Fatalf("coverage curve too short: %d points", len(cov))
	}
	// Own tree covers a strict minority of the forest; coverage is
	// monotone and ends at 1 when every peer tree is included.
	if own := res.OwnTreeCoverage(); own <= 0 || own >= 0.9 {
		t.Errorf("own-tree coverage = %v, want fraction well below 1", own)
	}
	for i := 1; i < len(cov); i++ {
		if cov[i] < cov[i-1]-1e-12 {
			t.Fatalf("coverage decreased at %d trees", i)
		}
	}
	if last := cov[len(cov)-1]; last < 0.999 {
		t.Errorf("full inclusion coverage = %v, want 1", last)
	}
	// Vouching counts grow as trees are added.
	v := res.Vouching.Y
	if v[len(v)-1] <= v[0] {
		t.Error("vouching counts did not grow")
	}
	// Diminishing returns: the first half of the trees adds more
	// coverage than the second half.
	mid := len(cov) / 2
	firstHalf := cov[mid] - cov[0]
	secondHalf := cov[len(cov)-1] - cov[mid]
	if firstHalf <= secondHalf {
		t.Errorf("no diminishing returns: first half %+.3f, second half %+.3f",
			firstHalf, secondHalf)
	}
}

func TestFig5SeparatesFaultyFromInnocent(t *testing.T) {
	t.Parallel()
	cfg := Fig5Config{
		System:          smallSystemConfig(),
		Duration:        40 * time.Minute,
		Warmup:          6 * time.Minute,
		SampleEvents:    30,
		TriplesPerEvent: 30,
		Bins:            10,
	}
	res, err := Fig5(cfg, testRand())
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultySamples == 0 || res.InnocentSamples == 0 {
		t.Fatal("no samples collected")
	}
	// §4.3 with honest reporting: faulty nodes draw far more guilty
	// verdicts than innocent ones (paper: 93.8% vs 1.8%).
	if res.PFaulty < 0.6 {
		t.Errorf("p_faulty = %v, want high", res.PFaulty)
	}
	if res.PGood > 0.25 {
		t.Errorf("p_good = %v, want low", res.PGood)
	}
	if res.PFaulty <= res.PGood {
		t.Error("blame does not separate faulty from innocent")
	}
	// PDFs render as series.
	s := PDFSeries("faulty", res.FaultyPDF)
	if len(s.X) != 10 {
		t.Errorf("pdf series has %d bins", len(s.X))
	}
}

func TestFig5CollusionDegradesJudgment(t *testing.T) {
	t.Parallel()
	base := Fig5Config{
		System:          smallSystemConfig(),
		Duration:        40 * time.Minute,
		Warmup:          6 * time.Minute,
		SampleEvents:    30,
		TriplesPerEvent: 30,
		Bins:            10,
	}
	honest, err := Fig5(base, rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		t.Fatal(err)
	}
	colluding := base
	colluding.System.MaliciousFraction = 0.2
	bad, err := Fig5(colluding, rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		t.Fatal(err)
	}
	// Figure 5(b): collusion pushes blame toward innocents and away
	// from colluders — p_good rises and/or p_faulty falls.
	degraded := bad.PGood > honest.PGood || bad.PFaulty < honest.PFaulty
	if !degraded {
		t.Errorf("collusion had no effect: honest (%v, %v) vs colluding (%v, %v)",
			honest.PGood, honest.PFaulty, bad.PGood, bad.PFaulty)
	}
	// But separation must survive (the thresholding argument of §4.3).
	if bad.PFaulty <= bad.PGood {
		t.Error("collusion destroyed separation entirely")
	}
}

func TestFig5Validation(t *testing.T) {
	t.Parallel()
	bad := DefaultFig5Config(0)
	bad.Duration = 0
	if _, err := Fig5(bad, testRand()); err == nil {
		t.Error("zero duration accepted")
	}
	bad = DefaultFig5Config(0)
	bad.Warmup = bad.Duration
	if _, err := Fig5(bad, testRand()); err == nil {
		t.Error("warmup >= duration accepted")
	}
	bad = DefaultFig5Config(0)
	bad.SampleEvents = 0
	if _, err := Fig5(bad, testRand()); err == nil {
		t.Error("zero events accepted")
	}
	bad = DefaultFig5Config(0)
	bad.Bins = 1
	if _, err := Fig5(bad, testRand()); err == nil {
		t.Error("1 bin accepted")
	}
}

func TestFig6ReproducesPaperThresholds(t *testing.T) {
	t.Parallel()
	// Using the paper's measured probabilities directly.
	honest, err := Fig6(DefaultFig6Config(0.018, 0.938))
	if err != nil {
		t.Fatal(err)
	}
	if honest.MinimalM < 5 || honest.MinimalM > 7 {
		t.Errorf("honest minimal m = %d, paper says 6", honest.MinimalM)
	}
	colluding, err := Fig6(DefaultFig6Config(0.084, 0.713))
	if err != nil {
		t.Fatal(err)
	}
	if colluding.MinimalM < 14 || colluding.MinimalM > 18 {
		t.Errorf("collusion minimal m = %d, paper says 16", colluding.MinimalM)
	}
	if len(honest.FalsePositive.X) != 30 {
		t.Errorf("curve length = %d", len(honest.FalsePositive.X))
	}
}

func TestFig6Validation(t *testing.T) {
	t.Parallel()
	if _, err := Fig6(Fig6Config{W: 0, MaxM: 5, PGood: 0.1, PFaulty: 0.9}); err == nil {
		t.Error("w=0 accepted")
	}
	if _, err := Fig6(Fig6Config{W: 10, MaxM: 11, PGood: 0.1, PFaulty: 0.9}); err == nil {
		t.Error("maxM>w accepted")
	}
	if _, err := Fig6(Fig6Config{W: 10, MaxM: 5, PGood: -1, PFaulty: 0.9}); err == nil {
		t.Error("bad probability accepted")
	}
}

func TestBandwidthTable(t *testing.T) {
	t.Parallel()
	table, reports, err := Bandwidth(DefaultBandwidthConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 || len(reports) != 4 {
		t.Fatalf("rows = %d, reports = %d", len(table.Rows), len(reports))
	}
	// The 100k row reproduces §4.4.
	var found bool
	for _, rep := range reports {
		if rep.OverlayN == 100000 {
			found = true
			if rep.RoutingEntries < 74 || rep.RoutingEntries > 80 {
				t.Errorf("100k entries = %v, paper says 77", rep.RoutingEntries)
			}
			if rep.AdvertBytes < 10500 || rep.AdvertBytes > 12500 {
				t.Errorf("100k advert = %v, paper says ~11.5KB", rep.AdvertBytes)
			}
			if rep.HeavyweightMB < 15 || rep.HeavyweightMB > 19 {
				t.Errorf("100k heavyweight = %v, paper says ~16.7MB", rep.HeavyweightMB)
			}
		}
	}
	if !found {
		t.Error("no 100k row")
	}
	if _, _, err := Bandwidth(BandwidthConfig{}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestWriteSeriesAndTable(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	s := Series{Name: "test", X: []float64{1, 2}, Y: []float64{3, 4}, YErr: []float64{0.1, 0.2}}
	if err := WriteSeries(&buf, "title", s); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("no output")
	}
	bad := Series{Name: "bad", X: []float64{1}, Y: []float64{1, 2}}
	if err := WriteSeries(&buf, "t", bad); err == nil {
		t.Error("mismatched series accepted")
	}
	badTable := Table{Title: "t", Columns: []string{"a"}, Rows: [][]string{{"1", "2"}}}
	if err := WriteTable(&buf, badTable); err == nil {
		t.Error("ragged table accepted")
	}
}

func TestFig4TreelikeMatchesPaperCoverage(t *testing.T) {
	t.Parallel()
	// The paper's ~25% own-tree coverage depends on how strongly routes
	// converge; the treelike preset reproduces it.
	cfg := core.DefaultSystemConfig()
	cfg.Topology = topology.TreelikeConfig()
	cfg.OverlayFraction = 0.03
	res, err := Fig4(Fig4Config{System: cfg, SampleHosts: 25}, testRand())
	if err != nil {
		t.Fatal(err)
	}
	own := res.OwnTreeCoverage()
	if own < 0.18 || own > 0.40 {
		t.Errorf("treelike own-tree coverage = %.1f%%, paper says ~25%%", 100*own)
	}
}

func TestCollusionSweepShape(t *testing.T) {
	t.Parallel()
	cfg := CollusionSweepConfig{
		Fractions: []float64{0, 0.3},
		Base: Fig5Config{
			System:          smallSystemConfig(),
			Duration:        30 * time.Minute,
			Warmup:          6 * time.Minute,
			SampleEvents:    20,
			TriplesPerEvent: 20,
			Bins:            10,
		},
		Window: 100,
		Target: 0.01,
	}
	res, err := CollusionSweep(cfg, testRand())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	honest, heavy := res.Points[0], res.Points[1]
	// More collusion cannot make judgments better.
	if heavy.PGood < honest.PGood && heavy.PFaulty > honest.PFaulty {
		t.Errorf("collusion improved judgments: %+v vs %+v", honest, heavy)
	}
	// The honest point supports a small m.
	if honest.MinimalM == 0 || honest.MinimalM > 20 {
		t.Errorf("honest minimal m = %d", honest.MinimalM)
	}
	table := res.Table()
	if len(table.Rows) != 2 {
		t.Errorf("table rows = %d", len(table.Rows))
	}
}

func TestCollusionSweepValidation(t *testing.T) {
	t.Parallel()
	bad := DefaultCollusionSweepConfig()
	bad.Fractions = nil
	if _, err := CollusionSweep(bad, testRand()); err == nil {
		t.Error("empty fractions accepted")
	}
	bad = DefaultCollusionSweepConfig()
	bad.Fractions = []float64{1.5}
	if _, err := CollusionSweep(bad, testRand()); err == nil {
		t.Error("fraction > 1 accepted")
	}
	bad = DefaultCollusionSweepConfig()
	bad.Window = 0
	if _, err := CollusionSweep(bad, testRand()); err == nil {
		t.Error("zero window accepted")
	}
	bad = DefaultCollusionSweepConfig()
	bad.Target = 1
	if _, err := CollusionSweep(bad, testRand()); err == nil {
		t.Error("target=1 accepted")
	}
}

func TestCSVWriters(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	s := Series{Name: "cov", X: []float64{0, 1}, Y: []float64{0.25, 0.5}, YErr: []float64{0.01, 0.02}}
	if err := WriteSeriesCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "series,x,y,yerr") || !strings.Contains(out, "cov,0,0.25,0.01") {
		t.Errorf("csv output malformed:\n%s", out)
	}
	// Mismatched series rejected.
	bad := Series{Name: "bad", X: []float64{1}, Y: []float64{1, 2}}
	if err := WriteSeriesCSV(&buf, bad); err == nil {
		t.Error("mismatched series accepted")
	}
	buf.Reset()
	table := Table{Title: "t", Columns: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}}
	if err := WriteTableCSV(&buf, table); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "a,b") || !strings.Contains(buf.String(), "1,2") {
		t.Errorf("table csv malformed:\n%s", buf.String())
	}
	ragged := Table{Title: "t", Columns: []string{"a"}, Rows: [][]string{{"1", "2"}}}
	if err := WriteTableCSV(&buf, ragged); err == nil {
		t.Error("ragged table accepted")
	}
}
