package experiments

import (
	"fmt"

	"concilium/internal/core"
	"concilium/internal/parexec"
)

// Fig23Config parameterizes the density-test error experiments:
// Figure 2 (no suppression) and Figure 3 (suppression attacks).
type Fig23Config struct {
	// N is the overlay size (the paper's evaluation overlay has 1,131).
	N int
	// Collusions are the colluding fractions c to evaluate.
	Collusions []float64
	// Gammas is the γ sweep for the per-γ curves.
	Gammas []float64
	// Suppression toggles the Figure 3 variant.
	Suppression bool
	// Workers bounds the worker pool evaluating the (c, γ) grid (<= 0
	// selects GOMAXPROCS). Every cell is an independent analytic
	// computation, so outputs are identical for every worker count.
	Workers int
}

// DefaultFig23Config mirrors the paper's setup.
func DefaultFig23Config(suppression bool) Fig23Config {
	var gammas []float64
	for g := 1.01; g <= 2.0; g += 0.01 {
		gammas = append(gammas, g)
	}
	return Fig23Config{
		N:           1131,
		Collusions:  []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40},
		Gammas:      gammas,
		Suppression: suppression,
	}
}

// Validate reports the first invalid field.
func (c Fig23Config) Validate() error {
	if c.N <= 1 {
		return fmt.Errorf("experiments: fig2/3 N %d must exceed 1", c.N)
	}
	if len(c.Collusions) == 0 || len(c.Gammas) == 0 {
		return fmt.Errorf("experiments: fig2/3 needs collusion and γ grids")
	}
	for _, g := range c.Gammas {
		if g <= 1 {
			return fmt.Errorf("experiments: γ %v must exceed 1", g)
		}
	}
	return nil
}

// Fig23Result holds the (a) false positive and (b) false negative
// curves per collusion fraction, plus the (c) optimal-γ summary.
type Fig23Result struct {
	// FalsePositives and FalseNegatives hold one series per collusion
	// fraction, each over the γ grid.
	FalsePositives []Series
	FalseNegatives []Series
	// OptimalFP/FN/Sum are indexed by collusion fraction: the error
	// rates at the γ minimizing FP+FN.
	Optimal Series // x = c, y = FP+FN at optimal γ
	// OptimalRates records the full rates behind Optimal.
	OptimalRates []core.DensityErrorRates
}

// Fig23 runs the sweep.
func Fig23(cfg Fig23Config) (*Fig23Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	model := core.DefaultOccupancyModel()
	res := &Fig23Result{Optimal: Series{Name: "misclassification at optimal gamma"}}

	// Evaluate the full (collusion, γ) grid in parallel — each cell is
	// an independent analytic computation — then reduce serially in grid
	// order so the assembled series and optimal-γ selection are
	// identical for every worker count.
	ng := len(cfg.Gammas)
	cells := make([]core.DensityErrorRates, len(cfg.Collusions)*ng)
	err := parexec.ForEach(cfg.Workers, len(cells), func(i int) error {
		scen := core.DensityScenario{
			N:           cfg.N,
			Collusion:   cfg.Collusions[i/ng],
			Suppression: cfg.Suppression,
		}
		rates, err := core.ErrorRatesAt(model, scen, cfg.Gammas[i%ng])
		if err != nil {
			return err
		}
		cells[i] = rates
		return nil
	})
	if err != nil {
		return nil, err
	}

	for ci, c := range cfg.Collusions {
		fpSeries := Series{Name: fmt.Sprintf("false positive c=%.2f", c)}
		fnSeries := Series{Name: fmt.Sprintf("false negative c=%.2f", c)}
		best := core.DensityErrorRates{FalsePositive: 1, FalseNegative: 1}
		for gi, g := range cfg.Gammas {
			rates := cells[ci*ng+gi]
			fpSeries.X = append(fpSeries.X, g)
			fpSeries.Y = append(fpSeries.Y, rates.FalsePositive)
			fnSeries.X = append(fnSeries.X, g)
			fnSeries.Y = append(fnSeries.Y, rates.FalseNegative)
			if rates.Sum() < best.Sum() {
				best = rates
			}
		}
		res.FalsePositives = append(res.FalsePositives, fpSeries)
		res.FalseNegatives = append(res.FalseNegatives, fnSeries)
		res.Optimal.X = append(res.Optimal.X, c)
		res.Optimal.Y = append(res.Optimal.Y, best.Sum())
		res.OptimalRates = append(res.OptimalRates, best)
	}
	return res, nil
}

// SummaryTable renders the optimal-γ outcomes as a table.
func (r *Fig23Result) SummaryTable(title string) Table {
	t := Table{
		Title:   title,
		Columns: []string{"collusion", "gamma", "false positive", "false negative", "sum"},
	}
	for i := range r.Optimal.X {
		rates := r.OptimalRates[i]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", r.Optimal.X[i]),
			fmt.Sprintf("%.3f", rates.Gamma),
			fmt.Sprintf("%.4f", rates.FalsePositive),
			fmt.Sprintf("%.4f", rates.FalseNegative),
			fmt.Sprintf("%.4f", rates.Sum()),
		})
	}
	return t
}
