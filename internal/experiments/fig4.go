package experiments

import (
	"fmt"

	"concilium/internal/core"
	"concilium/internal/stats"
	"concilium/internal/tomography"
)

// Fig4Config parameterizes the forest-coverage experiment: how many IP
// links of F_H are covered as H incorporates tomographic data from more
// peer trees, and how many hosts vouch for an average link.
type Fig4Config struct {
	// System describes the deployment (topology scale, overlay
	// fraction). Probing and failures are irrelevant here.
	System core.SystemConfig
	// SampleHosts is how many hosts H to average over (0 = all).
	SampleHosts int
	// MaxTrees caps the x axis (0 = up to the largest peer count).
	MaxTrees int
}

// DefaultFig4Config uses the medium-scale deployment.
func DefaultFig4Config() Fig4Config {
	return Fig4Config{System: core.DefaultSystemConfig(), SampleHosts: 40}
}

// Fig4Result holds both series.
type Fig4Result struct {
	// Coverage: x = number of peer trees included (0 = own tree only),
	// y = mean fraction of forest links covered.
	Coverage Series
	// Vouching: x as above, y = mean number of trees containing an
	// average covered link.
	Vouching Series
	// Hosts is the number of hosts averaged.
	Hosts int
}

// Fig4 builds the deployment and computes coverage curves.
func Fig4(cfg Fig4Config, rng stats.Rand) (*Fig4Result, error) {
	sys, err := core.BuildSystem(cfg.System, rng)
	if err != nil {
		return nil, err
	}
	return Fig4FromSystem(sys, cfg.SampleHosts, cfg.MaxTrees, rng)
}

// Fig4FromSystem runs the measurement over an existing deployment.
func Fig4FromSystem(sys *core.System, sampleHosts, maxTrees int, rng stats.Rand) (*Fig4Result, error) {
	hosts := sys.Order
	if sampleHosts > 0 && sampleHosts < len(hosts) {
		// Deterministic sample without replacement.
		perm := make([]int, len(hosts))
		for i := range perm {
			perm[i] = i
		}
		for i := len(perm) - 1; i > 0; i-- {
			j := rng.IntN(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		picked := hosts[:0:0]
		for i := 0; i < sampleHosts; i++ {
			picked = append(picked, hosts[perm[i]])
		}
		hosts = picked
	}

	// Build each sampled host's forest.
	forests := make([]*tomography.Forest, 0, len(hosts))
	deepest := 0
	for _, h := range hosts {
		node := sys.Nodes[h]
		var peerTrees []*tomography.Tree
		for _, leaf := range node.Tree.Leaves {
			peerTrees = append(peerTrees, sys.Nodes[leaf.Node].Tree)
		}
		f, err := tomography.BuildForest(node.Tree, peerTrees)
		if err != nil {
			return nil, err
		}
		forests = append(forests, f)
		if len(peerTrees) > deepest {
			deepest = len(peerTrees)
		}
	}
	if maxTrees > 0 && maxTrees < deepest {
		deepest = maxTrees
	}
	if deepest == 0 {
		return nil, fmt.Errorf("experiments: no peer trees to include")
	}

	res := &Fig4Result{
		Coverage: Series{Name: "forest link coverage"},
		Vouching: Series{Name: "mean vouching trees per covered link"},
		Hosts:    len(hosts),
	}
	for k := 0; k <= deepest; k++ {
		covs := make([]float64, 0, len(forests))
		var vouchSum, vouchN float64
		for _, f := range forests {
			covs = append(covs, f.CoverageWithTrees(k))
			counts := f.VouchingCounts(k)
			for _, c := range counts {
				vouchSum += float64(c)
				vouchN++
			}
		}
		res.Coverage.X = append(res.Coverage.X, float64(k))
		res.Coverage.Y = append(res.Coverage.Y, stats.Mean(covs))
		res.Coverage.YErr = append(res.Coverage.YErr, stats.StdDev(covs))
		res.Vouching.X = append(res.Vouching.X, float64(k))
		if vouchN > 0 {
			res.Vouching.Y = append(res.Vouching.Y, vouchSum/vouchN)
		} else {
			res.Vouching.Y = append(res.Vouching.Y, 0)
		}
	}
	return res, nil
}

// OwnTreeCoverage returns the k=0 coverage — the paper reports ~25%.
func (r *Fig4Result) OwnTreeCoverage() float64 {
	if len(r.Coverage.Y) == 0 {
		return 0
	}
	return r.Coverage.Y[0]
}
