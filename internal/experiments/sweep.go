package experiments

import (
	"fmt"
	"time"

	"concilium/internal/core"
	"concilium/internal/parexec"
	"concilium/internal/stats"
)

// CollusionSweep extends Figure 5 beyond the paper's single 20% point:
// it sweeps the colluding fraction and reports how the per-drop guilty
// probabilities — and the minimal accusation threshold m that still
// achieves sub-1% error — degrade. The paper's thresholding argument
// predicts graceful degradation until the colluders dominate per-link
// probe populations; the sweep locates that knee.
type CollusionSweepConfig struct {
	// Fractions are the colluding fractions to evaluate (0 = honest).
	Fractions []float64
	// Base is the Figure 5 configuration each point runs under (its
	// MaliciousFraction is overridden per point).
	Base Fig5Config
	// Window is w for the minimal-m computation.
	Window int
	// Target is the error bound for minimal m (the paper uses 1%).
	Target float64
	// Workers bounds the pool running sweep points concurrently (<= 0
	// selects GOMAXPROCS). Each point runs its Figure 5 simulation on a
	// substream derived from the sweep seed and the point index, so the
	// sweep is bit-identical for every worker count.
	Workers int
}

// DefaultCollusionSweepConfig sweeps 0–40% at the medium scale.
func DefaultCollusionSweepConfig() CollusionSweepConfig {
	base := DefaultFig5Config(0)
	base.Duration = 40 * time.Minute
	base.Warmup = 6 * time.Minute
	base.SampleEvents = 30
	base.TriplesPerEvent = 30
	return CollusionSweepConfig{
		Fractions: []float64{0, 0.1, 0.2, 0.3, 0.4},
		Base:      base,
		Window:    100,
		Target:    0.01,
	}
}

// Validate reports the first invalid field.
func (c CollusionSweepConfig) Validate() error {
	if len(c.Fractions) == 0 {
		return fmt.Errorf("experiments: sweep needs fractions")
	}
	for _, f := range c.Fractions {
		if f < 0 || f >= 1 {
			return fmt.Errorf("experiments: fraction %v out of [0,1)", f)
		}
	}
	if c.Window <= 0 {
		return fmt.Errorf("experiments: window %d must be positive", c.Window)
	}
	if c.Target <= 0 || c.Target >= 1 {
		return fmt.Errorf("experiments: target %v out of (0,1)", c.Target)
	}
	return nil
}

// CollusionPoint is one sweep sample.
type CollusionPoint struct {
	Fraction float64
	PGood    float64
	PFaulty  float64
	// MinimalM is the smallest accusation threshold with both formal
	// error rates at or below Target, or 0 if none exists — the point
	// where the window mechanism can no longer compensate.
	MinimalM int
}

// CollusionSweepResult holds the sweep.
type CollusionSweepResult struct {
	Points []CollusionPoint
	PGood  Series
	PFault Series
}

// CollusionSweep runs the sweep.
func CollusionSweep(cfg CollusionSweepConfig, rng stats.Rand) (*CollusionSweepResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &CollusionSweepResult{
		PGood:  Series{Name: "p_good (innocent found guilty per drop)"},
		PFault: Series{Name: "p_faulty (dropper found guilty per drop)"},
	}
	// Each sweep point is a full, independent Figure 5 simulation. One
	// root seed is drawn from the caller's rng; point i then runs on
	// substream i, so points can execute concurrently without sharing a
	// random source.
	seed := parexec.SeedFrom(rng)
	points := make([]CollusionPoint, len(cfg.Fractions))
	err := parexec.ForEach(cfg.Workers, len(cfg.Fractions), func(i int) error {
		f := cfg.Fractions[i]
		point := CollusionPoint{Fraction: f}
		fig5 := cfg.Base
		fig5.System.MaliciousFraction = f
		r5, err := Fig5(fig5, seed.Stream(uint64(i)))
		if err != nil {
			return fmt.Errorf("experiments: sweep at c=%v: %w", f, err)
		}
		point.PGood, point.PFaulty = r5.PGood, r5.PFaulty
		if m, err := core.MinimalM(cfg.Window, point.PGood, point.PFaulty, cfg.Target); err == nil {
			point.MinimalM = m
		}
		points[i] = point
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, point := range points {
		res.Points = append(res.Points, point)
		res.PGood.X = append(res.PGood.X, cfg.Fractions[i])
		res.PGood.Y = append(res.PGood.Y, point.PGood)
		res.PFault.X = append(res.PFault.X, cfg.Fractions[i])
		res.PFault.Y = append(res.PFault.Y, point.PFaulty)
	}
	return res, nil
}

// Table renders the sweep.
func (r *CollusionSweepResult) Table() Table {
	t := Table{
		Title:   "Collusion sweep (extension): per-drop verdict quality vs colluding fraction",
		Columns: []string{"collusion", "p_good", "p_faulty", "minimal m (w=100, <=1% error)"},
	}
	for _, p := range r.Points {
		m := fmt.Sprintf("%d", p.MinimalM)
		if p.MinimalM == 0 {
			m = "none"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", 100*p.Fraction),
			fmt.Sprintf("%.3f", p.PGood),
			fmt.Sprintf("%.3f", p.PFaulty),
			m,
		})
	}
	return t
}
