package experiments

import (
	"fmt"

	"concilium/internal/core"
	"concilium/internal/netsim"
	"concilium/internal/parexec"
)

// netsimTime aliases the simulator clock for the schedule helpers.
type netsimTime = netsim.Time

// Fig6Config parameterizes the accusation-window error analysis: given
// the per-drop guilty probabilities measured in Figure 5, sweep the
// accusation threshold m at window size w.
type Fig6Config struct {
	W       int
	MaxM    int
	PGood   float64
	PFaulty float64
	// Workers bounds the pool evaluating the m sweep (<= 0 selects
	// GOMAXPROCS); each m is an independent analytic computation.
	Workers int
}

// DefaultFig6Config uses the paper's w=100 and sweeps m to 30.
func DefaultFig6Config(pGood, pFaulty float64) Fig6Config {
	return Fig6Config{W: 100, MaxM: 30, PGood: pGood, PFaulty: pFaulty}
}

// Validate reports the first invalid field.
func (c Fig6Config) Validate() error {
	if c.W <= 0 {
		return fmt.Errorf("experiments: fig6 w %d must be positive", c.W)
	}
	if c.MaxM <= 0 || c.MaxM > c.W {
		return fmt.Errorf("experiments: fig6 maxM %d out of [1, %d]", c.MaxM, c.W)
	}
	if c.PGood < 0 || c.PGood > 1 || c.PFaulty < 0 || c.PFaulty > 1 {
		return fmt.Errorf("experiments: fig6 probabilities out of range")
	}
	return nil
}

// Fig6Result holds the error-rate curves and the minimal m achieving
// sub-1% error — the paper's m=6 (honest) and m=16 (collusion) numbers.
type Fig6Result struct {
	FalsePositive Series
	FalseNegative Series
	// MinimalM is the smallest m with both rates at or below 1%; 0 when
	// none exists in the sweep.
	MinimalM int
}

// Fig6 runs the sweep.
func Fig6(cfg Fig6Config) (*Fig6Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &Fig6Result{
		FalsePositive: Series{Name: "formal accusation false positive"},
		FalseNegative: Series{Name: "formal accusation false negative"},
	}
	fps := make([]float64, cfg.MaxM)
	fns := make([]float64, cfg.MaxM)
	err := parexec.ForEach(cfg.Workers, cfg.MaxM, func(i int) error {
		fp, fn, err := core.AccusationErrorRates(core.WindowConfig{W: cfg.W, M: i + 1}, cfg.PGood, cfg.PFaulty)
		if err != nil {
			return err
		}
		fps[i], fns[i] = fp, fn
		return nil
	})
	if err != nil {
		return nil, err
	}
	for m := 1; m <= cfg.MaxM; m++ {
		fp, fn := fps[m-1], fns[m-1]
		res.FalsePositive.X = append(res.FalsePositive.X, float64(m))
		res.FalsePositive.Y = append(res.FalsePositive.Y, fp)
		res.FalseNegative.X = append(res.FalseNegative.X, float64(m))
		res.FalseNegative.Y = append(res.FalseNegative.Y, fn)
		if res.MinimalM == 0 && fp <= 0.01 && fn <= 0.01 {
			res.MinimalM = m
		}
	}
	return res, nil
}
