package experiments

import (
	"bytes"
	"math/rand/v2"
	"reflect"
	"testing"
	"time"

	"concilium/internal/core"
	"concilium/internal/metrics"
	"concilium/internal/topology"
)

// The parallel execution layer promises bit-identical results for any
// worker count. These tests pin that promise: the same seed must give
// byte-for-byte equal outputs at workers=1 and workers=8.

func detRand() *rand.Rand { return rand.New(rand.NewPCG(4242, 2424)) }

func TestFig1WorkerInvariance(t *testing.T) {
	cfg := Fig1Config{Ns: []int{128, 512, 1131}, Trials: 60}

	cfg.Workers = 1
	serial, err := Fig1(cfg, detRand())
	if err != nil {
		t.Fatalf("Fig1 workers=1: %v", err)
	}
	cfg.Workers = 8
	parallel, err := Fig1(cfg, detRand())
	if err != nil {
		t.Fatalf("Fig1 workers=8: %v", err)
	}
	if !reflect.DeepEqual(serial.Analytic, parallel.Analytic) {
		t.Errorf("analytic series differ between worker counts:\n1: %+v\n8: %+v",
			serial.Analytic, parallel.Analytic)
	}
	if !reflect.DeepEqual(serial.MonteCarlo, parallel.MonteCarlo) {
		t.Errorf("monte carlo series differ between worker counts:\n1: %+v\n8: %+v",
			serial.MonteCarlo, parallel.MonteCarlo)
	}
}

func TestFig23WorkerInvariance(t *testing.T) {
	base := DefaultFig23Config(true)
	base.Collusions = base.Collusions[:4]
	base.Gammas = base.Gammas[:25]

	cfg := base
	cfg.Workers = 1
	serial, err := Fig23(cfg)
	if err != nil {
		t.Fatalf("Fig23 workers=1: %v", err)
	}
	cfg.Workers = 8
	parallel, err := Fig23(cfg)
	if err != nil {
		t.Fatalf("Fig23 workers=8: %v", err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("Fig23 results differ between worker counts:\n1: %+v\n8: %+v",
			serial, parallel)
	}
}

func TestFig5WorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation too slow for -short")
	}
	base := DefaultFig5Config(0.2)
	base.System.Topology = topology.TestConfig()
	base.System.OverlayFraction = 0.5
	base.Duration = 30 * time.Minute
	base.Warmup = 8 * time.Minute
	base.SampleEvents = 12
	base.TriplesPerEvent = 12

	run := func(workers int) *Fig5Result {
		t.Helper()
		cfg := base
		cfg.Workers = workers
		cfg.System.Workers = workers
		res, err := Fig5(cfg, detRand())
		if err != nil {
			t.Fatalf("Fig5 workers=%d: %v", workers, err)
		}
		return res
	}
	serial, parallel := run(1), run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("Fig5 results differ between worker counts:\n1: %+v\n8: %+v",
			serial, parallel)
	}
}

// TestBuildSystemWorkerInvariance pins the parallel-build determinism
// contract (DESIGN.md §10) at build level: for each seed, the canonical
// system snapshot — identifiers, certificates, routing tables, trees —
// and the canonical metrics core of a short probing run must be
// byte-identical for workers ∈ {1, 4, 8}.
func TestBuildSystemWorkerInvariance(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		build := func(workers int) ([]byte, metrics.Snapshot) {
			t.Helper()
			reg := metrics.NewRegistry()
			cfg := core.DefaultSystemConfig()
			cfg.Topology = topology.TestConfig()
			cfg.OverlayFraction = 0.5
			cfg.MaliciousFraction = 0.2
			cfg.Metrics = reg
			cfg.Workers = workers
			rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
			sys, err := core.BuildSystem(cfg, rng)
			if err != nil {
				t.Fatalf("BuildSystem seed=%d workers=%d: %v", seed, workers, err)
			}
			if err := sys.StartProbing(); err != nil {
				t.Fatalf("StartProbing seed=%d workers=%d: %v", seed, workers, err)
			}
			sys.Run(5 * time.Minute)
			return sys.AppendCanonical(nil), reg.Snapshot().Canonical()
		}
		refSnap, refMet := build(1)
		for _, workers := range []int{4, 8} {
			snap, met := build(workers)
			if !bytes.Equal(refSnap, snap) {
				t.Errorf("seed %d: canonical snapshot differs between workers=1 and workers=%d", seed, workers)
			}
			if !met.Equal(refMet) {
				t.Errorf("seed %d: canonical metrics differ between workers=1 and workers=%d", seed, workers)
			}
		}
	}
}
