package experiments

import (
	"math/rand/v2"
	"reflect"
	"testing"
	"time"

	"concilium/internal/core"
	"concilium/internal/topology"
)

// The parallel execution layer promises bit-identical results for any
// worker count. These tests pin that promise: the same seed must give
// byte-for-byte equal outputs at workers=1 and workers=8.

func detRand() *rand.Rand { return rand.New(rand.NewPCG(4242, 2424)) }

func TestFig1WorkerInvariance(t *testing.T) {
	cfg := Fig1Config{Ns: []int{128, 512, 1131}, Trials: 60}

	cfg.Workers = 1
	serial, err := Fig1(cfg, detRand())
	if err != nil {
		t.Fatalf("Fig1 workers=1: %v", err)
	}
	cfg.Workers = 8
	parallel, err := Fig1(cfg, detRand())
	if err != nil {
		t.Fatalf("Fig1 workers=8: %v", err)
	}
	if !reflect.DeepEqual(serial.Analytic, parallel.Analytic) {
		t.Errorf("analytic series differ between worker counts:\n1: %+v\n8: %+v",
			serial.Analytic, parallel.Analytic)
	}
	if !reflect.DeepEqual(serial.MonteCarlo, parallel.MonteCarlo) {
		t.Errorf("monte carlo series differ between worker counts:\n1: %+v\n8: %+v",
			serial.MonteCarlo, parallel.MonteCarlo)
	}
}

func TestFig23WorkerInvariance(t *testing.T) {
	base := DefaultFig23Config(true)
	base.Collusions = base.Collusions[:4]
	base.Gammas = base.Gammas[:25]

	cfg := base
	cfg.Workers = 1
	serial, err := Fig23(cfg)
	if err != nil {
		t.Fatalf("Fig23 workers=1: %v", err)
	}
	cfg.Workers = 8
	parallel, err := Fig23(cfg)
	if err != nil {
		t.Fatalf("Fig23 workers=8: %v", err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("Fig23 results differ between worker counts:\n1: %+v\n8: %+v",
			serial, parallel)
	}
}

func TestFig5WorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation too slow for -short")
	}
	base := DefaultFig5Config(0.2)
	base.System.Topology = topology.TestConfig()
	base.System.OverlayFraction = 0.5
	base.Duration = 30 * time.Minute
	base.Warmup = 8 * time.Minute
	base.SampleEvents = 12
	base.TriplesPerEvent = 12

	run := func(workers int) *Fig5Result {
		t.Helper()
		cfg := base
		cfg.Workers = workers
		cfg.System.Workers = workers
		res, err := Fig5(cfg, detRand())
		if err != nil {
			t.Fatalf("Fig5 workers=%d: %v", workers, err)
		}
		return res
	}
	serial, parallel := run(1), run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("Fig5 results differ between worker counts:\n1: %+v\n8: %+v",
			serial, parallel)
	}
}

func TestBuildSystemWorkerInvariance(t *testing.T) {
	build := func(workers int) *core.System {
		t.Helper()
		cfg := core.DefaultSystemConfig()
		cfg.Topology = topology.TestConfig()
		cfg.OverlayFraction = 0.5
		cfg.Workers = workers
		sys, err := core.BuildSystem(cfg, detRand())
		if err != nil {
			t.Fatalf("BuildSystem workers=%d: %v", workers, err)
		}
		return sys
	}
	serial, parallel := build(1), build(8)
	if !reflect.DeepEqual(serial.Order, parallel.Order) {
		t.Fatalf("node order differs between worker counts")
	}
	for _, nid := range serial.Order {
		st, pt := serial.Nodes[nid].Tree, parallel.Nodes[nid].Tree
		if !reflect.DeepEqual(st, pt) {
			t.Fatalf("tomography tree for %v differs between worker counts", nid)
		}
	}
}
