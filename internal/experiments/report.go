// Package experiments regenerates every table and figure from the
// paper's evaluation (§4): jump-table occupancy modeling (Fig. 1),
// density-test error rates with and without suppression (Figs. 2–3),
// tomographic forest coverage (Fig. 4), blame PDFs and threshold rates
// (Fig. 5 and the §4.3 in-text numbers), accusation-window error rates
// (Fig. 6), and the §4.4 bandwidth accounting. Each driver returns
// plain series/tables that cmd/concilium-bench renders as text and
// bench_test.go exercises under `go test -bench`.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Series is one plottable line: x values, y values, and optional
// per-point spread (standard deviation).
type Series struct {
	Name string
	X    []float64
	Y    []float64
	YErr []float64
}

// Validate checks internal consistency.
func (s *Series) Validate() error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("experiments: series %q has %d x but %d y", s.Name, len(s.X), len(s.Y))
	}
	if s.YErr != nil && len(s.YErr) != len(s.X) {
		return fmt.Errorf("experiments: series %q has %d x but %d yerr", s.Name, len(s.X), len(s.YErr))
	}
	return nil
}

// Table is a rendered result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// WriteSeries renders aligned columns for one or more series sharing an
// x axis meaning (they need not share x values).
func WriteSeries(w io.Writer, title string, series ...Series) error {
	if _, err := fmt.Fprintf(w, "== %s ==\n", title); err != nil {
		return err
	}
	for _, s := range series {
		if err := s.Validate(); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "-- %s\n", s.Name); err != nil {
			return err
		}
		for i := range s.X {
			if s.YErr != nil {
				if _, err := fmt.Fprintf(w, "%14.4f %14.6f ±%-12.6f\n", s.X[i], s.Y[i], s.YErr[i]); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%14.4f %14.6f\n", s.X[i], s.Y[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteTable renders a table with aligned columns.
func WriteTable(w io.Writer, t Table) error {
	if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		if len(row) != len(t.Columns) {
			return fmt.Errorf("experiments: table %q row has %d cells, want %d", t.Title, len(row), len(t.Columns))
		}
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// WriteSeriesCSV renders series as CSV with columns
// series,x,y,yerr (yerr empty when absent) — for plotting tools.
func WriteSeriesCSV(w io.Writer, series ...Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "x", "y", "yerr"}); err != nil {
		return err
	}
	for _, s := range series {
		if err := s.Validate(); err != nil {
			return err
		}
		for i := range s.X {
			rec := []string{
				s.Name,
				strconv.FormatFloat(s.X[i], 'g', -1, 64),
				strconv.FormatFloat(s.Y[i], 'g', -1, 64),
				"",
			}
			if s.YErr != nil {
				rec[3] = strconv.FormatFloat(s.YErr[i], 'g', -1, 64)
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTableCSV renders a table as CSV.
func WriteTableCSV(w io.Writer, t Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if len(row) != len(t.Columns) {
			return fmt.Errorf("experiments: table %q row has %d cells, want %d",
				t.Title, len(row), len(t.Columns))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
