package experiments

import (
	"fmt"

	"concilium/internal/core"
	"concilium/internal/parexec"
	"concilium/internal/stats"
)

// Fig1Config parameterizes the jump-table occupancy experiment: the
// analytic φ(μφ, σφ) model against Monte Carlo simulation of random
// identifier assignment, across overlay sizes.
type Fig1Config struct {
	// Ns are the overlay sizes to evaluate.
	Ns []int
	// Trials is the number of Monte Carlo tables per size.
	Trials int
	// Workers bounds the Monte Carlo worker pool (<= 0 selects
	// GOMAXPROCS). Results are bit-identical for every worker count:
	// each trial draws from its own substream of the experiment seed.
	Workers int
}

// DefaultFig1Config sweeps powers of two from 128 to 131072.
func DefaultFig1Config() Fig1Config {
	var ns []int
	for n := 128; n <= 131072; n *= 2 {
		ns = append(ns, n)
	}
	return Fig1Config{Ns: ns, Trials: 200}
}

// Validate reports the first invalid field.
func (c Fig1Config) Validate() error {
	if len(c.Ns) == 0 {
		return fmt.Errorf("experiments: fig1 needs at least one overlay size")
	}
	for _, n := range c.Ns {
		if n <= 1 {
			return fmt.Errorf("experiments: fig1 overlay size %d must exceed 1", n)
		}
	}
	if c.Trials <= 1 {
		return fmt.Errorf("experiments: fig1 trials %d must exceed 1", c.Trials)
	}
	return nil
}

// Fig1Result holds both series: occupied-slot counts with spread.
type Fig1Result struct {
	Analytic   Series
	MonteCarlo Series
}

// Fig1 runs the experiment.
func Fig1(cfg Fig1Config, rng stats.Rand) (*Fig1Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	model := core.DefaultOccupancyModel()
	res := &Fig1Result{
		Analytic:   Series{Name: "analytic phi(mu,sigma)"},
		MonteCarlo: Series{Name: "monte carlo"},
	}
	for _, n := range cfg.Ns {
		approx, err := model.NormalApprox(n)
		if err != nil {
			return nil, err
		}
		res.Analytic.X = append(res.Analytic.X, float64(n))
		res.Analytic.Y = append(res.Analytic.Y, approx.Mu)
		res.Analytic.YErr = append(res.Analytic.YErr, approx.Sigma)

		// One root seed per size is drawn serially from the experiment
		// rng; the per-trial substreams derived from it make the Monte
		// Carlo independent of the worker count.
		seed := parexec.SeedFrom(rng)
		mcMean, mcStd, err := model.MonteCarloOccupancyStreams(n, cfg.Trials, cfg.Workers, seed)
		if err != nil {
			return nil, err
		}
		res.MonteCarlo.X = append(res.MonteCarlo.X, float64(n))
		res.MonteCarlo.Y = append(res.MonteCarlo.Y, mcMean)
		res.MonteCarlo.YErr = append(res.MonteCarlo.YErr, mcStd)
	}
	return res, nil
}

// MaxMeanError returns the largest absolute gap between analytic and
// Monte Carlo means — the quantity Figure 1 argues is small.
func (r *Fig1Result) MaxMeanError() float64 {
	var worst float64
	for i := range r.Analytic.Y {
		d := r.Analytic.Y[i] - r.MonteCarlo.Y[i]
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}
