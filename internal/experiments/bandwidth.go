package experiments

import (
	"fmt"

	"concilium/internal/core"
	"concilium/internal/wire"
)

// BandwidthConfig parameterizes the §4.4 reproduction.
type BandwidthConfig struct {
	// OverlaySizes to tabulate (the paper highlights 100,000).
	OverlaySizes []int
	// StripesPerPair and PacketsPerStripe match the paper's example
	// (100 stripes of 2 packets).
	StripesPerPair   int
	PacketsPerStripe int
}

// DefaultBandwidthConfig mirrors §4.4.
func DefaultBandwidthConfig() BandwidthConfig {
	return BandwidthConfig{
		OverlaySizes:     []int{1000, 10000, 100000, 1000000},
		StripesPerPair:   100,
		PacketsPerStripe: 2,
	}
}

// Bandwidth computes the §4.4 table across overlay sizes.
func Bandwidth(cfg BandwidthConfig) (Table, []wire.BandwidthReport, error) {
	if len(cfg.OverlaySizes) == 0 {
		return Table{}, nil, fmt.Errorf("experiments: bandwidth needs overlay sizes")
	}
	model := core.DefaultOccupancyModel()
	t := Table{
		Title: "Section 4.4: Concilium bandwidth requirements",
		Columns: []string{
			"overlay N", "routing entries", "advert bytes", "heavyweight MB/tree",
		},
	}
	var reports []wire.BandwidthReport
	for _, n := range cfg.OverlaySizes {
		rep, err := wire.Budget(model, n, cfg.StripesPerPair, cfg.PacketsPerStripe)
		if err != nil {
			return Table{}, nil, err
		}
		reports = append(reports, rep)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", rep.OverlayN),
			fmt.Sprintf("%.1f", rep.RoutingEntries),
			fmt.Sprintf("%.0f", rep.AdvertBytes),
			fmt.Sprintf("%.1f", rep.HeavyweightMB),
		})
	}
	return t, reports, nil
}
