package experiments

import (
	"fmt"
	"time"

	"concilium/internal/core"
	"concilium/internal/id"
	"concilium/internal/parexec"
	"concilium/internal/stats"
	"concilium/internal/topology"
)

// Fig5Config parameterizes the blame-PDF simulation of §4.3: a Pastry
// overlay atop the router topology, 5% of overlay-path links down at any
// moment, randomized lightweight probing, and blame evaluated for
// (A, B, C) triples at random times. B is "faulty" when it would have
// dropped the message despite a healthy B→C path, "non-faulty" when a
// link in B→C was genuinely bad.
type Fig5Config struct {
	// System describes the deployment. MaliciousFraction > 0 gives the
	// Figure 5(b) variant where colluders invert their probe results.
	System core.SystemConfig
	// Duration is the simulated span (the paper runs two virtual hours).
	Duration time.Duration
	// Warmup delays sampling until the archive has data.
	Warmup time.Duration
	// SampleEvents is the number of evaluation instants.
	SampleEvents int
	// TriplesPerEvent is how many (A, B, C) triples to judge at each
	// instant.
	TriplesPerEvent int
	// Bins sizes the blame histograms.
	Bins int
	// Workers bounds the pool evaluating blame for each event's triples
	// (<= 0 selects GOMAXPROCS). Triple selection stays serial on the
	// experiment rng and blame evaluation consumes no randomness, so
	// results are bit-identical for every worker count.
	Workers int
}

// DefaultFig5Config returns a medium-scale run with the paper's
// protocol parameters (max_probe_time 120 s, Δ 60 s, a = 0.9, 5% links
// down, 40% threshold).
func DefaultFig5Config(maliciousFraction float64) Fig5Config {
	sys := core.DefaultSystemConfig()
	sys.MaliciousFraction = maliciousFraction
	sys.ArchiveRetention = 5 * time.Minute
	return Fig5Config{
		System:          sys,
		Duration:        2 * time.Hour,
		Warmup:          10 * time.Minute,
		SampleEvents:    60,
		TriplesPerEvent: 40,
		Bins:            20,
	}
}

// Validate reports the first invalid field.
func (c Fig5Config) Validate() error {
	if err := c.System.Validate(); err != nil {
		return err
	}
	switch {
	case c.Duration <= 0:
		return fmt.Errorf("experiments: fig5 duration %v must be positive", c.Duration)
	case c.Warmup < 0 || c.Warmup >= c.Duration:
		return fmt.Errorf("experiments: fig5 warmup %v out of [0, duration)", c.Warmup)
	case c.SampleEvents <= 0:
		return fmt.Errorf("experiments: fig5 needs sample events")
	case c.TriplesPerEvent <= 0:
		return fmt.Errorf("experiments: fig5 needs triples per event")
	case c.Bins <= 1:
		return fmt.Errorf("experiments: fig5 bins %d too few", c.Bins)
	}
	return nil
}

// Fig5Result holds the two PDFs and the thresholded verdict rates.
type Fig5Result struct {
	// FaultyPDF / InnocentPDF are the blame distributions (Figure 5).
	FaultyPDF   *stats.Histogram
	InnocentPDF *stats.Histogram
	// PGood is the probability an innocent forwarder draws a guilty
	// verdict at the threshold; PFaulty the probability a faulty one
	// does (the §4.3 in-text rates).
	PGood   float64
	PFaulty float64
	// Samples counted per class.
	FaultySamples   int
	InnocentSamples int
	// Threshold echoes the verdict threshold used.
	Threshold float64
}

// PDFSeries converts a histogram into a plottable series.
func PDFSeries(name string, h *stats.Histogram) Series {
	s := Series{Name: name}
	dens := h.Density()
	for i, d := range dens {
		s.X = append(s.X, h.BinCenter(i))
		s.Y = append(s.Y, d)
	}
	return s
}

// Fig5 builds the system and runs the full simulation.
func Fig5(cfg Fig5Config, rng stats.Rand) (*Fig5Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sys, err := core.BuildSystem(cfg.System, rng)
	if err != nil {
		return nil, err
	}
	if err := sys.StartFailures(); err != nil {
		return nil, err
	}
	if err := sys.StartProbing(); err != nil {
		return nil, err
	}

	faultyPDF, err := stats.NewHistogram(0, 1.0000001, cfg.Bins)
	if err != nil {
		return nil, err
	}
	innocentPDF, err := stats.NewHistogram(0, 1.0000001, cfg.Bins)
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{
		FaultyPDF:   faultyPDF,
		InnocentPDF: innocentPDF,
		Threshold:   cfg.System.Blame.GuiltyThreshold,
	}
	var guiltyFaulty, guiltyInnocent int
	collusion := cfg.System.MaliciousFraction > 0

	// Schedule evaluation instants uniformly across the sampling span.
	span := cfg.Duration - cfg.Warmup
	var evalErr error
	for e := 0; e < cfg.SampleEvents; e++ {
		at := cfg.Warmup + time.Duration(rng.Float64()*float64(span))
		err := sys.Sim.Schedule(sysTime(at), func() {
			if evalErr != nil {
				return
			}
			// Phase 1 (serial): draw the event's triples from the
			// experiment rng. Selection consumes the same random
			// sequence regardless of worker count.
			type triple struct {
				b      id.ID
				path   []topology.LinkID
				faulty bool
			}
			var triples []triple
			for i := 0; i < cfg.TriplesPerEvent; i++ {
				a := sys.Order[rng.IntN(len(sys.Order))]
				aPeers := sys.Nodes[a].Tree.Leaves
				if len(aPeers) == 0 {
					continue
				}
				b := aPeers[rng.IntN(len(aPeers))].Node
				bPeers := sys.Nodes[b].Tree.Leaves
				if len(bPeers) == 0 {
					continue
				}
				cLeaf := bPeers[rng.IntN(len(bPeers))]
				if cLeaf.Node == a || b == a {
					continue
				}
				path := cLeaf.Path
				if len(path) == 0 {
					continue
				}
				pathBad := !sys.Net.PathUp(path)
				bMalicious := sys.Nodes[b].Behavior.DropsMessages
				// Classify the triple per the paper's methodology: a
				// genuinely bad B→C makes B non-faulty for this message;
				// a healthy path means B must have dropped it. Under
				// collusion, droppers play the faulty role and honest
				// nodes the innocent role.
				var faulty bool
				switch {
				case pathBad && (!collusion || !bMalicious):
					faulty = false
				case !pathBad && (!collusion || bMalicious):
					faulty = true
				default:
					continue
				}
				triples = append(triples, triple{b: b, path: path, faulty: faulty})
			}
			// Phase 2 (parallel): blame evaluation reads only the frozen
			// archive and network state — no randomness, no writes — so
			// the triples fan out across workers.
			now := sys.Sim.Now()
			blames := make([]core.BlameResult, len(triples))
			if err := parexec.ForEach(cfg.Workers, len(triples), func(i int) error {
				blame, err := sys.Engine.Blame(triples[i].b, triples[i].path, now)
				if err != nil {
					return err
				}
				blames[i] = blame
				return nil
			}); err != nil {
				evalErr = err
				return
			}
			// Phase 3 (serial): accumulate histograms in triple order.
			for i, tr := range triples {
				blame := blames[i]
				if tr.faulty {
					res.FaultyPDF.Add(blame.Blame)
					res.FaultySamples++
					if blame.Guilty {
						guiltyFaulty++
					}
				} else {
					res.InnocentPDF.Add(blame.Blame)
					res.InnocentSamples++
					if blame.Guilty {
						guiltyInnocent++
					}
				}
			}
		})
		if err != nil {
			return nil, err
		}
	}
	sys.Run(cfg.Duration)
	if evalErr != nil {
		return nil, evalErr
	}
	if res.FaultySamples == 0 || res.InnocentSamples == 0 {
		return nil, fmt.Errorf("experiments: fig5 starved (%d faulty, %d innocent samples)",
			res.FaultySamples, res.InnocentSamples)
	}
	res.PFaulty = float64(guiltyFaulty) / float64(res.FaultySamples)
	res.PGood = float64(guiltyInnocent) / float64(res.InnocentSamples)
	return res, nil
}

func sysTime(d time.Duration) (t netsimTime) { return netsimTime(d) }
