// Package reputation is the Credence-style vote system Concilium falls
// back on when a peer refuses to issue forwarding commitments (§3.6): no
// tomographic evidence exists for that misbehavior, so honest hosts cast
// signed votes of no confidence, and peers aggregate the votes of hosts
// they trust. It deliberately cannot replace the accusation protocol —
// votes carry no evidence and propagate no further than one hop of
// trust — which is exactly the contrast the paper draws.
package reputation

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"

	"concilium/internal/id"
	"concilium/internal/netsim"
	"concilium/internal/sigcrypto"
)

// ErrBadVoteSignature indicates a vote that fails verification.
var ErrBadVoteSignature = errors.New("reputation: vote signature invalid")

// Vote is one signed statement of no confidence in Subject.
type Vote struct {
	Voter     id.ID
	Subject   id.ID
	At        netsim.Time
	Signature []byte
}

func votePayload(voter, subject id.ID, at netsim.Time) []byte {
	buf := make([]byte, 0, 4+2*id.Bytes+8)
	buf = append(buf, "vote"...)
	buf = append(buf, voter[:]...)
	buf = append(buf, subject[:]...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(at))
	return buf
}

// NewVote signs a no-confidence vote.
func NewVote(kp sigcrypto.KeyPair, voter, subject id.ID, at netsim.Time) Vote {
	return Vote{
		Voter:     voter,
		Subject:   subject,
		At:        at,
		Signature: kp.Sign(votePayload(voter, subject, at)),
	}
}

// Verify checks the vote under the voter's key.
func (v *Vote) Verify(pub ed25519.PublicKey) error {
	if !sigcrypto.Verify(pub, votePayload(v.Voter, v.Subject, v.At), v.Signature) {
		return ErrBadVoteSignature
	}
	return nil
}

// Board collects votes. One vote per (voter, subject) is retained — the
// most recent.
type Board struct {
	bySubject map[id.ID]map[id.ID]Vote
}

// NewBoard creates an empty board.
func NewBoard() *Board {
	return &Board{bySubject: make(map[id.ID]map[id.ID]Vote)}
}

// Record stores a verified vote. Older duplicate votes are replaced.
func (b *Board) Record(v Vote, voterPub ed25519.PublicKey) error {
	if err := v.Verify(voterPub); err != nil {
		return err
	}
	if v.Voter == v.Subject {
		return fmt.Errorf("reputation: self-vote from %s", v.Voter.Short())
	}
	m := b.bySubject[v.Subject]
	if m == nil {
		m = make(map[id.ID]Vote)
		b.bySubject[v.Subject] = m
	}
	if prev, ok := m[v.Voter]; ok && prev.At >= v.At {
		return nil
	}
	m[v.Voter] = v
	return nil
}

// NoConfidence returns how many hosts the evaluator trusts have voted
// against subject. Honest hosts trust each other's votes (§3.6), so
// trusted is typically "not formally accused and not locally suspected".
func (b *Board) NoConfidence(subject id.ID, trusted func(id.ID) bool) int {
	var n int
	for voter := range b.bySubject[subject] {
		if trusted == nil || trusted(voter) {
			n++
		}
	}
	return n
}

// PoorPeer applies a simple sanctioning policy: subject is a poor peer
// once at least quorum trusted hosts have voted against it.
func (b *Board) PoorPeer(subject id.ID, trusted func(id.ID) bool, quorum int) bool {
	if quorum <= 0 {
		quorum = 1
	}
	return b.NoConfidence(subject, trusted) >= quorum
}
