package reputation

import (
	"math/rand/v2"
	"testing"

	"concilium/internal/id"
	"concilium/internal/sigcrypto"
)

type identity struct {
	id   id.ID
	keys sigcrypto.KeyPair
}

func identities(n int, r *rand.Rand) []identity {
	out := make([]identity, n)
	for i := range out {
		out[i] = identity{id: id.Random(r), keys: sigcrypto.KeyPairFromRand(r)}
	}
	return out
}

func TestVoteSignAndVerify(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(1, 2))
	ids := identities(2, r)
	v := NewVote(ids[0].keys, ids[0].id, ids[1].id, 100)
	if err := v.Verify(ids[0].keys.Public); err != nil {
		t.Fatalf("valid vote rejected: %v", err)
	}
	forged := v
	forged.Subject = ids[0].id
	if err := forged.Verify(ids[0].keys.Public); err == nil {
		t.Error("re-targeted vote accepted")
	}
	if err := v.Verify(ids[1].keys.Public); err == nil {
		t.Error("wrong key accepted")
	}
}

func TestBoardRecordAndQuorum(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(3, 4))
	ids := identities(5, r)
	subject := ids[4]
	b := NewBoard()
	for i := 0; i < 3; i++ {
		v := NewVote(ids[i].keys, ids[i].id, subject.id, 100)
		if err := b.Record(v, ids[i].keys.Public); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.NoConfidence(subject.id, nil); got != 3 {
		t.Errorf("NoConfidence = %d, want 3", got)
	}
	if !b.PoorPeer(subject.id, nil, 3) {
		t.Error("quorum of 3 not reached with 3 votes")
	}
	if b.PoorPeer(subject.id, nil, 4) {
		t.Error("quorum of 4 reached with 3 votes")
	}
	// Default quorum is 1.
	if !b.PoorPeer(subject.id, nil, 0) {
		t.Error("default quorum failed")
	}
}

func TestBoardDeduplicatesVoters(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(5, 6))
	ids := identities(2, r)
	b := NewBoard()
	for at := 0; at < 5; at++ {
		v := NewVote(ids[0].keys, ids[0].id, ids[1].id, 100)
		if err := b.Record(v, ids[0].keys.Public); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.NoConfidence(ids[1].id, nil); got != 1 {
		t.Errorf("repeated votes counted %d times", got)
	}
}

func TestBoardRejectsInvalid(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(7, 8))
	ids := identities(2, r)
	b := NewBoard()
	// Bad signature.
	v := NewVote(ids[0].keys, ids[0].id, ids[1].id, 100)
	v.Signature[0] ^= 1
	if err := b.Record(v, ids[0].keys.Public); err == nil {
		t.Error("corrupt vote recorded")
	}
	// Self-vote.
	self := NewVote(ids[0].keys, ids[0].id, ids[0].id, 100)
	if err := b.Record(self, ids[0].keys.Public); err == nil {
		t.Error("self-vote recorded")
	}
}

func TestBoardTrustFilter(t *testing.T) {
	t.Parallel()
	// Votes from untrusted (e.g. formally accused) hosts don't count —
	// this is what stops a smear campaign by detected colluders.
	r := rand.New(rand.NewPCG(9, 10))
	ids := identities(4, r)
	subject := ids[3]
	b := NewBoard()
	for i := 0; i < 3; i++ {
		v := NewVote(ids[i].keys, ids[i].id, subject.id, 100)
		if err := b.Record(v, ids[i].keys.Public); err != nil {
			t.Fatal(err)
		}
	}
	distrustFirstTwo := func(x id.ID) bool {
		return x != ids[0].id && x != ids[1].id
	}
	if got := b.NoConfidence(subject.id, distrustFirstTwo); got != 1 {
		t.Errorf("trusted NoConfidence = %d, want 1", got)
	}
}
