// Package fuzzy provides the fuzzy-logic connectives Concilium's blame
// equation uses (§3.4, after Bellman and Giertz): OR is max, AND is min,
// NOT is complement. Operands are confidences in [0, 1]; out-of-range
// inputs are clamped rather than rejected, since they only arise from
// floating-point drift in upstream averages.
package fuzzy

// Clamp forces x into [0, 1].
func Clamp(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	default:
		return x
	}
}

// Or returns the fuzzy disjunction (maximum) of the operands, 0 if none.
func Or(xs ...float64) float64 {
	var out float64
	for _, x := range xs {
		if v := Clamp(x); v > out {
			out = v
		}
	}
	return out
}

// And returns the fuzzy conjunction (minimum) of the operands, 1 if none.
func And(xs ...float64) float64 {
	out := 1.0
	for _, x := range xs {
		if v := Clamp(x); v < out {
			out = v
		}
	}
	return out
}

// Not returns the fuzzy complement.
func Not(x float64) float64 { return 1 - Clamp(x) }
