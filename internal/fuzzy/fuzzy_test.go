package fuzzy

import (
	"testing"
	"testing/quick"
)

func TestOr(t *testing.T) {
	t.Parallel()
	if got := Or(0.2, 0.6, 0.4); got != 0.6 {
		t.Errorf("Or = %v, want 0.6", got)
	}
	if got := Or(); got != 0 {
		t.Errorf("Or() = %v, want 0", got)
	}
	if got := Or(-1, 2); got != 1 {
		t.Errorf("Or clamps: %v, want 1", got)
	}
}

func TestAnd(t *testing.T) {
	t.Parallel()
	if got := And(0.2, 0.6, 0.4); got != 0.2 {
		t.Errorf("And = %v, want 0.2", got)
	}
	if got := And(); got != 1 {
		t.Errorf("And() = %v, want 1", got)
	}
	if got := And(2, 0.5); got != 0.5 {
		t.Errorf("And clamps: %v, want 0.5", got)
	}
}

func TestNot(t *testing.T) {
	t.Parallel()
	if got := Not(0.3); got != 0.7 {
		t.Errorf("Not = %v", got)
	}
	if got := Not(-5); got != 1 {
		t.Errorf("Not clamps low: %v", got)
	}
}

// De Morgan: Not(Or(a,b)) == And(Not(a), Not(b)) for fuzzy max/min.
func TestPropDeMorgan(t *testing.T) {
	t.Parallel()
	f := func(a, b float64) bool {
		a, b = Clamp(a), Clamp(b)
		lhs := Not(Or(a, b))
		rhs := And(Not(a), Not(b))
		return lhs == rhs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Range: results always in [0,1].
func TestPropRange(t *testing.T) {
	t.Parallel()
	f := func(xs []float64) bool {
		for _, v := range []float64{Or(xs...), And(xs...)} {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
