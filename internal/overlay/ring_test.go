package overlay

import (
	"math/rand/v2"
	"testing"

	"concilium/internal/id"
)

// TestIndexOfMatchesMap checks the binary-search membership lookup
// against a straightforward map built over the same members — the
// representation the ring used before the index map was dropped.
func TestIndexOfMatchesMap(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewPCG(11, 3))
	members := make([]id.ID, 300)
	for i := range members {
		members[i] = id.Random(rng)
	}
	ring, err := NewRing(members)
	if err != nil {
		t.Fatal(err)
	}
	index := make(map[id.ID]int, ring.Size())
	for i, x := range ring.Members() {
		index[x] = i
	}
	for x, want := range index {
		got, ok := ring.IndexOf(x)
		if !ok || got != want {
			t.Fatalf("IndexOf(%s) = %d,%v; map says %d", x, got, ok, want)
		}
		if !ring.Contains(x) {
			t.Fatalf("Contains(%s) = false for member", x)
		}
	}
	// Probe non-members: random points plus near-misses adjacent to
	// real members (the binary search's off-by-one hot spots).
	for i := 0; i < 1000; i++ {
		probe := id.Random(rng)
		if i%3 == 0 {
			base := ring.Members()[rng.IntN(ring.Size())]
			probe = base.WithDigit(id.Digits-1, byte(rng.IntN(id.Base)))
		}
		_, inMap := index[probe]
		at, ok := ring.IndexOf(probe)
		if ok != inMap {
			t.Fatalf("IndexOf(%s) membership = %v, map says %v", probe, ok, inMap)
		}
		if ok && ring.Members()[at] != probe {
			t.Fatalf("IndexOf(%s) returned wrong slot %d", probe, at)
		}
		if ring.Contains(probe) != inMap {
			t.Fatalf("Contains(%s) disagrees with map", probe)
		}
	}
}

func TestNewRingRejectsDuplicates(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewPCG(5, 9))
	a, b := id.Random(rng), id.Random(rng)
	if _, err := NewRing([]id.ID{a, b, a}); err == nil {
		t.Fatal("NewRing accepted a duplicate member")
	}
	if _, err := NewRing(nil); err == nil {
		t.Fatal("NewRing accepted an empty member list")
	}
}
