package overlay

import (
	"fmt"

	"concilium/internal/id"
	"concilium/internal/stats"
)

// BuildLeafSet fills a leaf set for owner from the ring's true
// membership: the perSide numerically closest live peers on each side.
// The offered peers are each side's nearest neighbors, so none is ever
// pruned; insertBulk therefore matches sequential Insert calls exactly
// while paying for one rebuild instead of one per peer.
func BuildLeafSet(owner id.ID, ring *Ring, perSide int) (*LeafSet, error) {
	ls, err := NewLeafSet(owner, perSide)
	if err != nil {
		return nil, err
	}
	ls.insertBulk(ring.NeighborsClockwise(owner, perSide),
		ring.NeighborsCounterClockwise(owner, perSide))
	return ls, nil
}

// BuildSecureTable constructs owner's constrained secure-routing table
// (§2): slot (i, j) holds the live host whose identifier is closest to
// the target point p = owner with digit i replaced by j, restricted to
// hosts actually satisfying the slot's prefix constraint. Empty slots
// mean no live host qualifies.
func BuildSecureTable(owner id.ID, ring *Ring) (*JumpTable, error) {
	t := NewJumpTable(owner)
	for row := 0; row < id.Digits; row++ {
		for col := byte(0); col < id.Base; col++ {
			if owner.Digit(row) == col {
				// The target point equals the owner's own prefix; the
				// owner covers this slot itself.
				continue
			}
			target := owner.WithDigit(row, col)
			cand, ok := ring.ClosestWithPrefixExcl(target, row+1, owner)
			if !ok {
				continue
			}
			if err := t.Set(cand); err != nil {
				return nil, fmt.Errorf("overlay: secure fill: %w", err)
			}
		}
		// Deeper rows require ever-longer shared prefixes; once the
		// owner's prefix is unique in the ring no deeper slot can fill.
		if !ring.HasOtherWithPrefix(owner, row+1, owner) {
			break
		}
	}
	return t, nil
}

// BuildStandardTable constructs a plain Pastry table: slot (i, j) may
// hold any live host with the required prefix. Real deployments pick by
// network proximity; the generator models that free choice by picking
// uniformly among qualifying hosts (a proxy for proximity affinity,
// which is orthogonal to the diagnostic protocol).
func BuildStandardTable(owner id.ID, ring *Ring, rng stats.Rand) (*JumpTable, error) {
	t := NewJumpTable(owner)
	for row := 0; row < id.Digits; row++ {
		anyDeeper := false
		for col := byte(0); col < id.Base; col++ {
			if owner.Digit(row) == col {
				anyDeeper = true // owner itself shares this prefix
				continue
			}
			target := owner.WithDigit(row, col)
			cand, ok := ring.UniformWithPrefixExcl(target, row+1, owner, rng)
			if !ok {
				continue
			}
			anyDeeper = true
			if err := t.Set(cand); err != nil {
				return nil, fmt.Errorf("overlay: standard fill: %w", err)
			}
		}
		if !anyDeeper {
			break
		}
	}
	return t, nil
}

// RoutingState bundles one node's complete overlay state. Messages that
// need Concilium's fault attribution are forwarded with the secure
// table; other traffic may use the standard table (§2).
type RoutingState struct {
	Self     id.ID
	Leaf     *LeafSet
	Secure   *JumpTable
	Standard *JumpTable
}

// BuildRoutingState assembles correct state for owner from the ring.
func BuildRoutingState(owner id.ID, ring *Ring, rng stats.Rand) (*RoutingState, error) {
	if !ring.Contains(owner) {
		return nil, fmt.Errorf("overlay: %s is not a ring member", owner.Short())
	}
	leaf, err := BuildLeafSet(owner, ring, DefaultLeafSetPerSide)
	if err != nil {
		return nil, err
	}
	secure, err := BuildSecureTable(owner, ring)
	if err != nil {
		return nil, err
	}
	standard, err := BuildStandardTable(owner, ring, rng)
	if err != nil {
		return nil, err
	}
	return &RoutingState{Self: owner, Leaf: leaf, Secure: secure, Standard: standard}, nil
}

// RoutingPeers returns the union of the node's secure-table occupants
// and leaves — the peers it probes for availability and whose IP paths
// its tomography tree covers (§3.2). First-seen order: secure-table
// occupants row-major, then leaves. Peer counts are a few dozen, so
// duplicates are stripped by linear scan rather than a map — the
// churn-time callers rebuild peer lists constantly and must not churn
// the heap doing it.
func (rs *RoutingState) RoutingPeers() []id.ID {
	return rs.AppendRoutingPeers(nil)
}

// AppendRoutingPeers appends the routing-peer union to out (which may
// be a reused scratch slice) and returns the extended slice.
func (rs *RoutingState) AppendRoutingPeers(out []id.ID) []id.ID {
	start := len(out)
	appendUniq := func(out []id.ID, p id.ID) []id.ID {
		for _, q := range out[start:] {
			if q == p {
				return out
			}
		}
		return append(out, p)
	}
	for row := 0; row < id.Digits; row++ {
		for col := byte(0); col < id.Base; col++ {
			if p, ok := rs.Secure.Slot(row, col); ok {
				out = appendUniq(out, p)
			}
		}
	}
	for _, p := range rs.Leaf.members {
		out = appendUniq(out, p)
	}
	return out
}

// NextHopSecure computes the next secure-routing hop toward target,
// following Pastry's rule: deliver via the leaf set when it covers the
// target, otherwise take the jump-table slot, otherwise fall back to the
// numerically closest known peer that makes progress. The boolean is
// false when the node itself is the destination's closest point (route
// terminates here). Messages needing Concilium's fault attribution must
// use this, not the standard table (§2).
func (rs *RoutingState) NextHopSecure(target id.ID) (id.ID, bool) {
	return rs.nextHop(rs.Secure, target)
}

// NextHopStandard routes over the unconstrained (proximity-optimized)
// table — valid for traffic that does not need fault attribution, and
// the fallback Pastry uses until standard routing fails (§2).
func (rs *RoutingState) NextHopStandard(target id.ID) (id.ID, bool) {
	return rs.nextHop(rs.Standard, target)
}

func (rs *RoutingState) nextHop(table *JumpTable, target id.ID) (id.ID, bool) {
	if target == rs.Self {
		return id.ID{}, false
	}
	if rs.Leaf.Covers(target) {
		closest, _ := rs.Leaf.Closest(target)
		if closest == rs.Self {
			return id.ID{}, false
		}
		return closest, true
	}
	if hop, ok := table.NextHop(target); ok {
		return hop, true
	}
	// Rare case: the exact slot is empty. Use any known peer strictly
	// closer to the target than we are (Pastry's rule ensures progress).
	// Scanned in place — table slots row-major, then leaves, the same
	// candidate order Peers()+All() produced — so the fallback allocates
	// nothing on the routing hot path.
	best, found := rs.Self, false
	for row := 0; row < id.Digits; row++ {
		for col := byte(0); col < id.Base; col++ {
			if p, ok := table.Slot(row, col); ok && id.Closer(p, best, target) {
				best, found = p, true
			}
		}
	}
	for _, p := range rs.Leaf.members {
		if id.Closer(p, best, target) {
			best, found = p, true
		}
	}
	if !found {
		return id.ID{}, false
	}
	return best, true
}

// RouteSecure traces the full overlay route from src to the node closest
// to target, given every node's routing state. It fails on routing loops
// or dead ends longer than maxHops.
func RouteSecure(states map[id.ID]*RoutingState, src, target id.ID, maxHops int) ([]id.ID, error) {
	return traceRoute(states, src, target, maxHops, nil, (*RoutingState).NextHopSecure)
}

// AppendRouteSecure is RouteSecure tracing into a caller-owned scratch
// slice: the route is appended to out and the extended slice returned.
// Callers that retain the route beyond their next trace must copy it
// out.
func AppendRouteSecure(states map[id.ID]*RoutingState, src, target id.ID, maxHops int, out []id.ID) ([]id.ID, error) {
	return traceRoute(states, src, target, maxHops, out, (*RoutingState).NextHopSecure)
}

// RouteStandard traces a route over the standard (proximity) tables.
func RouteStandard(states map[id.ID]*RoutingState, src, target id.ID, maxHops int) ([]id.ID, error) {
	return traceRoute(states, src, target, maxHops, nil, (*RoutingState).NextHopStandard)
}

func traceRoute(states map[id.ID]*RoutingState, src, target id.ID, maxHops int,
	out []id.ID, next func(*RoutingState, id.ID) (id.ID, bool)) ([]id.ID, error) {
	if maxHops <= 0 {
		maxHops = 2 * id.Digits
	}
	route := append(out, src)
	at := src
	for hop := 0; hop < maxHops; hop++ {
		st, ok := states[at]
		if !ok {
			return nil, fmt.Errorf("overlay: no routing state for %s", at.Short())
		}
		hopTo, more := next(st, target)
		if !more {
			return route, nil
		}
		route = append(route, hopTo)
		at = hopTo
		if at == target {
			return route, nil
		}
	}
	return nil, fmt.Errorf("overlay: route from %s to %s exceeded %d hops",
		src.Short(), target.Short(), maxHops)
}
