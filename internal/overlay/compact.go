package overlay

import (
	"fmt"
	"math/bits"
	"sort"

	"concilium/internal/id"
	"concilium/internal/stats"
)

// Compact is the struct-of-arrays overlay core: every node's routing
// state for one ring, stored flat and keyed by uint32 position in the
// sorted member slice instead of by identifier. It produces exactly the
// state the per-node RoutingState build produces — same constrained
// secure fills, same uniform standard picks, same rng draw order — but
// at a fraction of the footprint:
//
//   - Leaf sets are not stored at all. The perSide closest peers of the
//     node at ring position i are positions i±1..i±perSide (wrapping),
//     so leaf queries are index arithmetic.
//   - Jump tables split at denseRows = ⌈log₁₆N⌉: rows shallower than
//     that are near-full and live in one flat uint32 slab (NoIndex =
//     empty); deeper rows are almost always empty and live in tiny
//     per-node sorted tail slices.
//
// Compare ~41KB/node for the pointer-per-node representation at N=20k
// against ~(denseRows·64 + tail)·2 + 16 bytes here.
type Compact struct {
	ring      Ring // shares the compact membership slice; mutated by churn
	perSide   int
	denseRows int
	secure    compactTable
	standard  compactTable
}

// NoIndex marks an empty compact jump-table slot.
const NoIndex = ^uint32(0)

// CompactSlot is one occupied jump-table slot in index form.
type CompactSlot struct {
	Row, Col uint8
	Peer     uint32
}

// compactTable is one table kind (secure or standard) for every node:
// a dense slab of denseRows×Base uint32 slots per node plus sparse
// row-major tails for the deep rows.
type compactTable struct {
	dense []uint32
	tail  [][]CompactSlot
}

// denseRowsFor returns ⌈log₁₆ n⌉ clamped to [1, id.Digits] — the prefix
// depth at which expected row occupancy falls below one slot.
func denseRowsFor(n int) int {
	if n <= 1 {
		return 1
	}
	dr := (bits.Len(uint(n-1)) + id.BitsPerDigit - 1) / id.BitsPerDigit
	if dr < 1 {
		dr = 1
	}
	if dr > id.Digits {
		dr = id.Digits
	}
	return dr
}

// NewCompact allocates empty compact state over the given members.
// Tables start empty; call FillNode per node (any order, including in
// parallel — node i writes only its own rows).
func NewCompact(members []id.ID, perSide int) (*Compact, error) {
	if perSide <= 0 {
		return nil, fmt.Errorf("overlay: compact perSide %d must be positive", perSide)
	}
	ring, err := NewRing(members)
	if err != nil {
		return nil, err
	}
	n := ring.Size()
	dr := denseRowsFor(n)
	return &Compact{
		ring:      Ring{ids: ring.ids, pairs: ring.pairs},
		perSide:   perSide,
		denseRows: dr,
		secure:    newCompactTable(n, dr),
		standard:  newCompactTable(n, dr),
	}, nil
}

// Size returns the current member count.
func (c *Compact) Size() int { return len(c.ring.ids) }

// PerSide returns the leaf-set half-width.
func (c *Compact) PerSide() int { return c.perSide }

// DenseRows returns the dense/sparse split depth. It is fixed at build
// time; churn does not rebalance the layout.
func (c *Compact) DenseRows() int { return c.denseRows }

// ID returns the identifier at ring position i.
func (c *Compact) ID(i uint32) id.ID { return c.ring.ids[i] }

// IDs returns the sorted members. The slice is shared and must not be
// modified; churn invalidates it.
func (c *Compact) IDs() []id.ID { return c.ring.ids }

// IndexOf returns the ring position of x.
func (c *Compact) IndexOf(x id.ID) (uint32, bool) {
	at, ok := c.ring.IndexOf(x)
	return uint32(at), ok
}

// Ring returns a ring view over the current members. It shares the
// member slice; churn on the Compact invalidates it.
func (c *Compact) Ring() *Ring { return &c.ring }

// leafK returns the effective per-side leaf count: perSide, capped by
// the n-1 other members.
func (c *Compact) leafK() int {
	if n := len(c.ring.ids) - 1; n < c.perSide {
		return n
	}
	return c.perSide
}

// FillNode constructs node i's secure and standard tables from scratch,
// mirroring BuildSecureTable and BuildStandardTable slot for slot. rng
// drives the standard table's free choice and is consumed in exactly
// the legacy draw order, so per-node substreams yield identical tables
// in both representations.
func (c *Compact) FillNode(i uint32, rng stats.Rand) {
	self := c.ring.ids[i]
	for row := 0; row < id.Digits; row++ {
		own := self.Digit(row)
		for col := byte(0); col < id.Base; col++ {
			if col == own {
				continue
			}
			target := self.WithDigit(row, col)
			cand, ok := c.ring.closestWithPrefixExclIdx(target, row+1, int(i))
			if !ok {
				continue
			}
			c.secure.set(c.denseRows, i, row, col, uint32(cand))
		}
		if !c.ring.hasOtherWithPrefixIdx(self, row+1, int(i)) {
			break
		}
	}
	for row := 0; row < id.Digits; row++ {
		anyDeeper := false
		own := self.Digit(row)
		for col := byte(0); col < id.Base; col++ {
			if col == own {
				anyDeeper = true
				continue
			}
			target := self.WithDigit(row, col)
			cand, ok := c.ring.uniformWithPrefixExclIdx(target, row+1, int(i), rng)
			if !ok {
				continue
			}
			anyDeeper = true
			c.standard.set(c.denseRows, i, row, col, uint32(cand))
		}
		if !anyDeeper {
			break
		}
	}
}

// SecureSlot returns the occupant of node i's secure slot (row, col).
func (c *Compact) SecureSlot(i uint32, row int, col byte) (uint32, bool) {
	if row < 0 || row >= id.Digits || col >= id.Base {
		return 0, false
	}
	return c.secure.slot(c.denseRows, i, row, col)
}

// StandardSlot returns the occupant of node i's standard slot (row, col).
func (c *Compact) StandardSlot(i uint32, row int, col byte) (uint32, bool) {
	if row < 0 || row >= id.Digits || col >= id.Base {
		return 0, false
	}
	return c.standard.slot(c.denseRows, i, row, col)
}

// SecureOccupancy returns node i's filled secure-slot count.
func (c *Compact) SecureOccupancy(i uint32) int {
	return c.secure.occupancy(c.denseRows, i)
}

// AppendSecureSlots appends node i's occupied secure slots to out in
// row-major order.
func (c *Compact) AppendSecureSlots(i uint32, out []CompactSlot) []CompactSlot {
	return c.secure.appendSlots(c.denseRows, i, out)
}

// AppendStandardSlots appends node i's occupied standard slots to out in
// row-major order.
func (c *Compact) AppendStandardSlots(i uint32, out []CompactSlot) []CompactSlot {
	return c.standard.appendSlots(c.denseRows, i, out)
}

// AppendLeafIndices appends node i's leaf positions to out: clockwise
// neighbors by increasing distance, then counterclockwise ones not
// already present — the same membership order the LeafSet build
// produces.
func (c *Compact) AppendLeafIndices(i uint32, out []uint32) []uint32 {
	n := len(c.ring.ids)
	k := c.leafK()
	start := len(out)
	appendUniq := func(j uint32) {
		for _, q := range out[start:] {
			if q == j {
				return
			}
		}
		out = append(out, j)
	}
	for s := 1; s <= k; s++ {
		appendUniq(uint32((int(i) + s) % n))
	}
	for s := 1; s <= k; s++ {
		appendUniq(uint32(((int(i)-s)%n + n) % n))
	}
	return out
}

// LeafCovers reports whether target falls inside the arc node i's leaf
// set spans — the direct-delivery test of Pastry routing.
func (c *Compact) LeafCovers(i uint32, target id.ID) bool {
	n := len(c.ring.ids)
	k := c.leafK()
	if k <= 0 {
		return false
	}
	self := c.ring.ids[i]
	if target == self {
		return true
	}
	lo := c.ring.ids[((int(i)-k)%n+n)%n]
	hi := c.ring.ids[(int(i)+k)%n]
	return id.Between(target, lo, hi)
}

// LeafClosest returns the position (node i itself or one of its leaves)
// numerically closest to target.
func (c *Compact) LeafClosest(i uint32, target id.ID) uint32 {
	n := len(c.ring.ids)
	k := c.leafK()
	best := i
	for s := 1; s <= k; s++ {
		for _, j := range [2]int{(int(i) + s) % n, ((int(i)-s)%n + n) % n} {
			if id.Closer(c.ring.ids[j], c.ring.ids[best], target) {
				best = uint32(j)
			}
		}
	}
	return best
}

// AppendRoutingPeers appends node i's probe set to out: secure-table
// occupants row-major, then leaves, first-seen deduplicated — the same
// sequence RoutingState.RoutingPeers yields.
func (c *Compact) AppendRoutingPeers(i uint32, out []uint32) []uint32 {
	start := len(out)
	appendUniq := func(j uint32) {
		for _, q := range out[start:] {
			if q == j {
				return
			}
		}
		out = append(out, j)
	}
	c.secure.forEach(c.denseRows, i, func(_ int, _ byte, peer uint32) {
		appendUniq(peer)
	})
	n := len(c.ring.ids)
	k := c.leafK()
	for s := 1; s <= k; s++ {
		appendUniq(uint32((int(i) + s) % n))
	}
	for s := 1; s <= k; s++ {
		appendUniq(uint32(((int(i)-s)%n + n) % n))
	}
	return out
}

// NextHopSecure routes one hop toward target over node i's secure
// table, following the same rule as RoutingState.NextHopSecure: leaf
// delivery when covered, else the jump-table slot, else any known peer
// making strict progress. The boolean is false when the route
// terminates at node i.
func (c *Compact) NextHopSecure(i uint32, target id.ID) (uint32, bool) {
	return c.nextHop(&c.secure, i, target)
}

// NextHopStandard routes one hop over node i's standard table.
func (c *Compact) NextHopStandard(i uint32, target id.ID) (uint32, bool) {
	return c.nextHop(&c.standard, i, target)
}

func (c *Compact) nextHop(t *compactTable, i uint32, target id.ID) (uint32, bool) {
	self := c.ring.ids[i]
	if target == self {
		return 0, false
	}
	if c.LeafCovers(i, target) {
		closest := c.LeafClosest(i, target)
		if closest == i {
			return 0, false
		}
		return closest, true
	}
	row := id.CommonPrefixLen(self, target)
	if peer, ok := t.slot(c.denseRows, i, row, target.Digit(row)); ok {
		return peer, true
	}
	// Rare case: the exact slot is empty. Any known peer strictly closer
	// to the target than we are keeps Pastry's progress guarantee —
	// table slots row-major, then leaves, as in the legacy fallback.
	best, found := i, false
	t.forEach(c.denseRows, i, func(_ int, _ byte, peer uint32) {
		if id.Closer(c.ring.ids[peer], c.ring.ids[best], target) {
			best, found = peer, true
		}
	})
	n := len(c.ring.ids)
	k := c.leafK()
	for s := 1; s <= k; s++ {
		for _, j := range [2]int{(int(i) + s) % n, ((int(i)-s)%n + n) % n} {
			if id.Closer(c.ring.ids[j], c.ring.ids[best], target) {
				best, found = uint32(j), true
			}
		}
	}
	if !found {
		return 0, false
	}
	return best, true
}

// AppendRouteSecure traces the secure route from src toward target,
// appending positions to out (which may be reused scratch).
func (c *Compact) AppendRouteSecure(src uint32, target id.ID, maxHops int, out []uint32) ([]uint32, error) {
	if maxHops <= 0 {
		maxHops = 2 * id.Digits
	}
	route := append(out, src)
	at := src
	for hop := 0; hop < maxHops; hop++ {
		next, more := c.NextHopSecure(at, target)
		if !more {
			return route, nil
		}
		route = append(route, next)
		at = next
		if c.ring.ids[at] == target {
			return route, nil
		}
	}
	return nil, fmt.Errorf("overlay: compact route from %s to %s exceeded %d hops",
		c.ring.ids[src].Short(), target.Short(), maxHops)
}

// ApplyDeparture removes a member and patches every survivor's state to
// exactly what the per-node ApplyDeparture sequence produces: the one
// slot the departed could occupy (row = shared-prefix length, col = its
// next digit) is refilled — secure from the closest qualifying
// survivor, standard by a uniform draw. Survivors are visited in
// ascending ring order; rng draws happen only for nodes whose standard
// slot actually held the departed peer. Leaf state is derived, so it
// needs no repair.
func (c *Compact) ApplyDeparture(peer id.ID, rng stats.Rand) error {
	k, ok := c.IndexOf(peer)
	if !ok {
		return fmt.Errorf("overlay: compact: departing %s is not a member", peer.Short())
	}
	if len(c.ring.ids) == 1 {
		return fmt.Errorf("overlay: compact: departure would empty the ring")
	}
	c.ring.ids = append(c.ring.ids[:k], c.ring.ids[k+1:]...)
	c.ring.pairs = append(c.ring.pairs[:k], c.ring.pairs[k+1:]...)
	c.secure.removeNode(c.denseRows, k)
	c.standard.removeNode(c.denseRows, k)
	n := len(c.ring.ids)

	// Record who actually held the departed peer before remapping
	// erases the evidence; refills must not run for slots that were
	// already empty or held someone else.
	flags := make([]uint8, n)
	for j := 0; j < n; j++ {
		row := id.CommonPrefixLen(c.ring.ids[j], peer)
		if row >= id.Digits {
			continue
		}
		col := peer.Digit(row)
		if v, ok := c.secure.slot(c.denseRows, uint32(j), row, col); ok && v == k {
			flags[j] |= 1
		}
		if v, ok := c.standard.slot(c.denseRows, uint32(j), row, col); ok && v == k {
			flags[j] |= 2
		}
	}
	c.secure.remapRemoval(k)
	c.standard.remapRemoval(k)

	for j := 0; j < n; j++ {
		if flags[j] == 0 {
			continue
		}
		self := c.ring.ids[j]
		row := id.CommonPrefixLen(self, peer)
		col := peer.Digit(row)
		target := self.WithDigit(row, col)
		if flags[j]&1 != 0 {
			if cand, ok := c.ring.closestWithPrefixExclIdx(target, row+1, j); ok {
				c.secure.set(c.denseRows, uint32(j), row, col, uint32(cand))
			}
		}
		if flags[j]&2 != 0 {
			if cand, ok := c.ring.uniformWithPrefixExclIdx(target, row+1, j, rng); ok {
				c.standard.set(c.denseRows, uint32(j), row, col, uint32(cand))
			}
		}
	}
	return nil
}

// ApplyJoin admits a new member at its sorted position and patches
// every existing node: the secure table takes the newcomer when it is
// closer to the slot's target point than the incumbent, the standard
// table only for empty slots. The newcomer's own tables are then built
// from scratch with rng — the only draws the join consumes. Returns the
// newcomer's position.
func (c *Compact) ApplyJoin(peer id.ID, rng stats.Rand) (uint32, error) {
	if _, dup := c.IndexOf(peer); dup {
		return 0, fmt.Errorf("overlay: compact: %s is already a member", peer.Short())
	}
	k := uint32(c.ring.searchGE(peer))
	c.ring.ids = append(c.ring.ids, id.ID{})
	copy(c.ring.ids[k+1:], c.ring.ids[k:])
	c.ring.ids[k] = peer
	c.ring.pairs = append(c.ring.pairs, id.Pair{})
	copy(c.ring.pairs[k+1:], c.ring.pairs[k:])
	c.ring.pairs[k] = peer.Pair()
	c.secure.insertNode(c.denseRows, k)
	c.standard.insertNode(c.denseRows, k)
	c.secure.remapInsertion(k)
	c.standard.remapInsertion(k)

	n := len(c.ring.ids)
	for j := 0; j < n; j++ {
		if uint32(j) == k {
			continue
		}
		self := c.ring.ids[j]
		row := id.CommonPrefixLen(self, peer)
		col := peer.Digit(row)
		target := self.WithDigit(row, col)
		if cur, ok := c.secure.slot(c.denseRows, uint32(j), row, col); !ok || id.Closer(peer, c.ring.ids[cur], target) {
			c.secure.set(c.denseRows, uint32(j), row, col, k)
		}
		if _, ok := c.standard.slot(c.denseRows, uint32(j), row, col); !ok {
			c.standard.set(c.denseRows, uint32(j), row, col, k)
		}
	}
	c.FillNode(k, rng)
	return k, nil
}

// Footprint returns the overlay state's resident bytes: members (byte
// and word-pair forms), dense slabs, and sparse tails (entries plus
// slice headers). The per-node figure feeds the bytes_per_node scale
// gate.
func (c *Compact) Footprint() int64 {
	total := int64(len(c.ring.ids)) * id.Bytes
	total += int64(len(c.ring.pairs)) * 16
	for _, t := range []*compactTable{&c.secure, &c.standard} {
		total += int64(len(t.dense)) * 4
		total += int64(len(t.tail)) * 24 // slice headers
		for _, ts := range t.tail {
			total += int64(cap(ts)) * 8
		}
	}
	return total
}

func newCompactTable(n, denseRows int) compactTable {
	dense := make([]uint32, n*denseRows*id.Base)
	for i := range dense {
		dense[i] = NoIndex
	}
	return compactTable{dense: dense, tail: make([][]CompactSlot, n)}
}

func (t *compactTable) slot(dr int, i uint32, row int, col byte) (uint32, bool) {
	if row < dr {
		v := t.dense[(int(i)*dr+row)*id.Base+int(col)]
		return v, v != NoIndex
	}
	for _, s := range t.tail[i] {
		if int(s.Row) == row && s.Col == col {
			return s.Peer, true
		}
	}
	return 0, false
}

func (t *compactTable) set(dr int, i uint32, row int, col byte, peer uint32) {
	if row < dr {
		t.dense[(int(i)*dr+row)*id.Base+int(col)] = peer
		return
	}
	ts := t.tail[i]
	pos := len(ts)
	for p, s := range ts {
		if int(s.Row) == row && s.Col == col {
			ts[p].Peer = peer
			return
		}
		if int(s.Row) > row || (int(s.Row) == row && s.Col > col) {
			pos = p
			break
		}
	}
	ts = append(ts, CompactSlot{})
	copy(ts[pos+1:], ts[pos:])
	ts[pos] = CompactSlot{Row: uint8(row), Col: col, Peer: peer}
	t.tail[i] = ts
}

func (t *compactTable) occupancy(dr int, i uint32) int {
	n := 0
	base := int(i) * dr * id.Base
	for _, v := range t.dense[base : base+dr*id.Base] {
		if v != NoIndex {
			n++
		}
	}
	return n + len(t.tail[i])
}

// forEach visits node i's occupied slots in row-major order: the dense
// rows first, then the (sorted) sparse tail.
func (t *compactTable) forEach(dr int, i uint32, fn func(row int, col byte, peer uint32)) {
	base := int(i) * dr * id.Base
	for row := 0; row < dr; row++ {
		for col := 0; col < id.Base; col++ {
			if v := t.dense[base+row*id.Base+col]; v != NoIndex {
				fn(row, byte(col), v)
			}
		}
	}
	for _, s := range t.tail[i] {
		fn(int(s.Row), s.Col, s.Peer)
	}
}

func (t *compactTable) appendSlots(dr int, i uint32, out []CompactSlot) []CompactSlot {
	t.forEach(dr, i, func(row int, col byte, peer uint32) {
		out = append(out, CompactSlot{Row: uint8(row), Col: col, Peer: peer})
	})
	return out
}

// removeNode splices node k's storage out of the table.
func (t *compactTable) removeNode(dr int, k uint32) {
	stride := dr * id.Base
	copy(t.dense[int(k)*stride:], t.dense[(int(k)+1)*stride:])
	t.dense = t.dense[:len(t.dense)-stride]
	t.tail = append(t.tail[:k], t.tail[k+1:]...)
}

// remapRemoval shifts every stored index past the removed position down
// by one and empties slots that pointed at it.
func (t *compactTable) remapRemoval(k uint32) {
	for p, v := range t.dense {
		if v == NoIndex {
			continue
		}
		if v == k {
			t.dense[p] = NoIndex
		} else if v > k {
			t.dense[p] = v - 1
		}
	}
	for i := range t.tail {
		kept := t.tail[i][:0]
		for _, s := range t.tail[i] {
			if s.Peer == k {
				continue
			}
			if s.Peer > k {
				s.Peer--
			}
			kept = append(kept, s)
		}
		t.tail[i] = kept
	}
}

// insertNode splices an empty storage block in at position k.
func (t *compactTable) insertNode(dr int, k uint32) {
	stride := dr * id.Base
	t.dense = append(t.dense, make([]uint32, stride)...)
	copy(t.dense[(int(k)+1)*stride:], t.dense[int(k)*stride:len(t.dense)-stride])
	blk := t.dense[int(k)*stride : (int(k)+1)*stride]
	for p := range blk {
		blk[p] = NoIndex
	}
	t.tail = append(t.tail, nil)
	copy(t.tail[k+1:], t.tail[k:])
	t.tail[k] = nil
}

// remapInsertion shifts every stored index at or past the inserted
// position up by one. Run after insertNode, before the newcomer's slots
// fill.
func (t *compactTable) remapInsertion(k uint32) {
	for p, v := range t.dense {
		if v != NoIndex && v >= k {
			t.dense[p] = v + 1
		}
	}
	for i := range t.tail {
		for p := range t.tail[i] {
			if t.tail[i][p].Peer >= k {
				t.tail[i][p].Peer++
			}
		}
	}
}

// LeafMeanSpacing returns the average inter-identifier gap across the
// arc node i's derived leaf set spans (owner included) — the compact
// counterpart of LeafSet.MeanSpacing, consumed by signed-snapshot
// publication. It reconstructs the legacy geometry exactly: the arc
// starts at the last entry of the legacy counterclockwise side view
// (the members sorted by counterclockwise spacing from the owner,
// truncated to perSide), and the mean gap is the arc length over the
// segment count. Cold path — snapshot signing dominates it — so the
// small sorts allocate freely.
func (c *Compact) LeafMeanSpacing(i uint32) (float64, error) {
	members := c.AppendLeafIndices(i, nil)
	if len(members) == 0 {
		return 0, fmt.Errorf("overlay: mean spacing of empty leaf set")
	}
	owner := c.ring.ids[i]
	byCCW := make([]id.ID, 0, len(members)+1)
	for _, j := range members {
		byCCW = append(byCCW, c.ring.ids[j])
	}
	sort.Slice(byCCW, func(a, b int) bool {
		return id.Spacing(byCCW[a], owner) < id.Spacing(byCCW[b], owner)
	})
	m := c.perSide
	if m > len(byCCW) {
		m = len(byCCW)
	}
	start := byCCW[m-1]
	all := append(byCCW, owner)
	sort.Slice(all, func(a, b int) bool {
		return id.Spacing(start, all[a]) < id.Spacing(start, all[b])
	})
	arc := id.Spacing(start, all[len(all)-1])
	segments := len(all) - 1
	if segments <= 0 || arc <= 0 {
		return 0, fmt.Errorf("overlay: leaf set spans no arc")
	}
	return arc / float64(segments), nil
}
