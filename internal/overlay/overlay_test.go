package overlay

import (
	"math/rand/v2"
	"sort"
	"testing"

	"concilium/internal/id"
)

func testRand() *rand.Rand { return rand.New(rand.NewPCG(31, 37)) }

func randomIDs(n int, r *rand.Rand) []id.ID {
	out := make([]id.ID, n)
	seen := make(map[id.ID]bool, n)
	for i := 0; i < n; {
		x := id.Random(r)
		if !seen[x] {
			seen[x] = true
			out[i] = x
			i++
		}
	}
	return out
}

func mustRing(t *testing.T, ids []id.ID) *Ring {
	t.Helper()
	r, err := NewRing(ids)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRingRejectsBadInput(t *testing.T) {
	t.Parallel()
	if _, err := NewRing(nil); err == nil {
		t.Error("empty ring accepted")
	}
	x := id.MustParse("0123456789abcdef0123456789abcdef")
	if _, err := NewRing([]id.ID{x, x}); err == nil {
		t.Error("duplicate member accepted")
	}
}

func TestRingClosest(t *testing.T) {
	t.Parallel()
	members := []id.ID{
		id.MustParse("10000000000000000000000000000000"),
		id.MustParse("20000000000000000000000000000000"),
		id.MustParse("f0000000000000000000000000000000"),
	}
	ring := mustRing(t, members)
	got, ok := ring.Closest(id.MustParse("22000000000000000000000000000000"), nil)
	if !ok || got != members[1] {
		t.Errorf("Closest = %s", got.Short())
	}
	// Wraparound: 0x01... is closest to 0xf0... going counterclockwise?
	// Distance from 0x01 to 0x10 is 0x0f..., to 0xf0 is 0x11...; so 0x10 wins.
	got, ok = ring.Closest(id.MustParse("01000000000000000000000000000000"), nil)
	if !ok || got != members[0] {
		t.Errorf("Closest near wrap = %s", got.Short())
	}
	// Skip everything: not found.
	skip := map[id.ID]bool{members[0]: true, members[1]: true, members[2]: true}
	if _, ok := ring.Closest(id.Zero, skip); ok {
		t.Error("fully skipped ring returned a member")
	}
	// Skip the best: next best returned.
	skip = map[id.ID]bool{members[1]: true}
	got, ok = ring.Closest(id.MustParse("22000000000000000000000000000000"), skip)
	if !ok || got != members[0] {
		t.Errorf("Closest with skip = %s", got.Short())
	}
}

func TestRingClosestWithPrefix(t *testing.T) {
	t.Parallel()
	members := []id.ID{
		id.MustParse("ab000000000000000000000000000000"),
		id.MustParse("ab100000000000000000000000000000"),
		id.MustParse("ac000000000000000000000000000000"),
	}
	ring := mustRing(t, members)
	target := id.MustParse("ab080000000000000000000000000000")
	got, ok := ring.ClosestWithPrefix(target, 2, nil)
	if !ok {
		t.Fatal("no candidate found")
	}
	if got != members[0] && got != members[1] {
		t.Errorf("candidate %s lacks prefix ab", got.Short())
	}
	// Prefix nobody has.
	if _, ok := ring.ClosestWithPrefix(id.MustParse("ff000000000000000000000000000000"), 2, nil); ok {
		t.Error("found member with prefix ff")
	}
	// Zero prefix = plain closest.
	got, ok = ring.ClosestWithPrefix(id.MustParse("ac010000000000000000000000000000"), 0, nil)
	if !ok || got != members[2] {
		t.Errorf("prefix-0 closest = %s", got.Short())
	}
}

func TestRingClosestWithPrefixMatchesBruteForce(t *testing.T) {
	t.Parallel()
	r := testRand()
	ids := randomIDs(300, r)
	ring := mustRing(t, ids)
	for trial := 0; trial < 200; trial++ {
		target := id.Random(r)
		plen := r.IntN(4)
		got, ok := ring.ClosestWithPrefix(target, plen, nil)
		// Brute force.
		var want id.ID
		found := false
		for _, x := range ids {
			if id.CommonPrefixLen(x, target) < plen {
				continue
			}
			if !found || id.Closer(x, want, target) {
				want, found = x, true
			}
		}
		if ok != found || (found && got != want) {
			t.Fatalf("trial %d: ClosestWithPrefix(%s, %d) = %s,%v want %s,%v",
				trial, target.Short(), plen, got.Short(), ok, want.Short(), found)
		}
	}
}

func TestRingNeighbors(t *testing.T) {
	t.Parallel()
	members := []id.ID{
		id.MustParse("10000000000000000000000000000000"),
		id.MustParse("20000000000000000000000000000000"),
		id.MustParse("30000000000000000000000000000000"),
		id.MustParse("40000000000000000000000000000000"),
	}
	ring := mustRing(t, members)
	cw := ring.NeighborsClockwise(members[0], 2)
	if len(cw) != 2 || cw[0] != members[1] || cw[1] != members[2] {
		t.Errorf("cw = %v", cw)
	}
	ccw := ring.NeighborsCounterClockwise(members[0], 2)
	if len(ccw) != 2 || ccw[0] != members[3] || ccw[1] != members[2] {
		t.Errorf("ccw = %v", ccw)
	}
	// Asking for more than exist caps at size-1.
	all := ring.NeighborsClockwise(members[0], 10)
	if len(all) != 3 {
		t.Errorf("len = %d, want 3", len(all))
	}
	// Non-member start.
	cw = ring.NeighborsClockwise(id.MustParse("25000000000000000000000000000000"), 1)
	if len(cw) != 1 || cw[0] != members[2] {
		t.Errorf("non-member cw = %v", cw)
	}
}

func TestRingWithout(t *testing.T) {
	t.Parallel()
	r := testRand()
	ids := randomIDs(50, r)
	ring := mustRing(t, ids)
	excluded := map[id.ID]bool{ids[0]: true, ids[1]: true}
	sub, err := ring.Without(excluded)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Size() != 48 {
		t.Errorf("Size = %d", sub.Size())
	}
	if sub.Contains(ids[0]) {
		t.Error("excluded member still present")
	}
	all := map[id.ID]bool{}
	for _, x := range ids {
		all[x] = true
	}
	if _, err := ring.Without(all); err == nil {
		t.Error("empty remainder accepted")
	}
}

func TestLeafSetInsertOrderIndependent(t *testing.T) {
	t.Parallel()
	r := testRand()
	owner := id.Random(r)
	peers := randomIDs(100, r)

	ls1, err := NewLeafSet(owner, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range peers {
		ls1.Insert(p)
	}
	// Reverse order.
	ls2, err := NewLeafSet(owner, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(peers) - 1; i >= 0; i-- {
		ls2.Insert(peers[i])
	}
	m1 := map[id.ID]bool{}
	for _, x := range ls1.All() {
		m1[x] = true
	}
	for _, x := range ls2.All() {
		if !m1[x] {
			t.Fatalf("leaf sets differ by insertion order: %s", x.Short())
		}
	}
	if ls1.Len() != 16 || ls2.Len() != 16 {
		t.Errorf("lens = %d, %d, want 16", ls1.Len(), ls2.Len())
	}
}

func TestLeafSetKeepsClosest(t *testing.T) {
	t.Parallel()
	owner := id.MustParse("80000000000000000000000000000000")
	ls, err := NewLeafSet(owner, 2)
	if err != nil {
		t.Fatal(err)
	}
	far := id.MustParse("90000000000000000000000000000000")
	mid := id.MustParse("84000000000000000000000000000000")
	near := id.MustParse("80000000000000000000000000000001")
	if !ls.Insert(far) || !ls.Insert(mid) {
		t.Fatal("initial inserts rejected")
	}
	// near displaces far.
	if !ls.Insert(near) {
		t.Fatal("closer peer rejected")
	}
	if ls.containsSide(ls.cw, far) {
		t.Error("farthest leaf not displaced")
	}
	// Duplicates and owner rejected.
	if ls.Insert(near) {
		t.Error("duplicate accepted")
	}
	if ls.Insert(owner) {
		t.Error("owner accepted")
	}
	// Remove works.
	if !ls.Remove(near) {
		t.Error("Remove failed")
	}
	if ls.Remove(near) {
		t.Error("double remove succeeded")
	}
}

func TestLeafSetCoversAndClosest(t *testing.T) {
	t.Parallel()
	owner := id.MustParse("80000000000000000000000000000000")
	ls, err := NewLeafSet(owner, 2)
	if err != nil {
		t.Fatal(err)
	}
	cw1 := id.MustParse("81000000000000000000000000000000")
	cw2 := id.MustParse("82000000000000000000000000000000")
	ccw1 := id.MustParse("7f000000000000000000000000000000")
	ccw2 := id.MustParse("7e000000000000000000000000000000")
	for _, p := range []id.ID{cw1, cw2, ccw1, ccw2} {
		ls.Insert(p)
	}
	if !ls.Covers(id.MustParse("80800000000000000000000000000000")) {
		t.Error("interior point not covered")
	}
	if !ls.Covers(owner) {
		t.Error("owner not covered")
	}
	if ls.Covers(id.MustParse("90000000000000000000000000000000")) {
		t.Error("exterior point covered")
	}
	got, ok := ls.Closest(id.MustParse("81100000000000000000000000000000"))
	if !ok || got != cw1 {
		t.Errorf("Closest = %s, want %s", got.Short(), cw1.Short())
	}
	got, ok = ls.Closest(id.MustParse("80000000000000000000000000000001"))
	if !ok || got != owner {
		t.Errorf("Closest = %s, want owner", got.Short())
	}
}

func TestLeafSetEstimateN(t *testing.T) {
	t.Parallel()
	// With N uniformly random members, the leaf-spacing estimator should
	// land near N on average (§3.1 cites Mahajan's estimator).
	r := testRand()
	const n = 2000
	ids := randomIDs(n, r)
	ring := mustRing(t, ids)
	var sum float64
	const samples = 50
	for i := 0; i < samples; i++ {
		owner := ids[r.IntN(len(ids))]
		ls, err := BuildLeafSet(owner, ring, 8)
		if err != nil {
			t.Fatal(err)
		}
		est, err := ls.EstimateN()
		if err != nil {
			t.Fatal(err)
		}
		sum += est
	}
	mean := sum / samples
	if mean < n/2 || mean > n*2 {
		t.Errorf("population estimate %v, want within 2x of %d", mean, n)
	}
}

func TestLeafSetErrors(t *testing.T) {
	t.Parallel()
	if _, err := NewLeafSet(id.Zero, 0); err == nil {
		t.Error("zero perSide accepted")
	}
	ls, err := NewLeafSet(id.Zero, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ls.MeanSpacing(); err == nil {
		t.Error("empty mean spacing accepted")
	}
	if _, err := ls.EstimateN(); err == nil {
		t.Error("empty estimate accepted")
	}
}

func TestJumpTableSetSlotAndValidate(t *testing.T) {
	t.Parallel()
	owner := id.MustParse("00000000000000000000000000000000")
	tbl := NewJumpTable(owner)
	// Peer sharing no prefix, first digit a: row 0, col 0xa.
	peer := id.MustParse("a0000000000000000000000000000000")
	if err := tbl.Set(peer); err != nil {
		t.Fatal(err)
	}
	got, ok := tbl.Slot(0, 0xa)
	if !ok || got != peer {
		t.Errorf("Slot(0,a) = %s, %v", got.Short(), ok)
	}
	if tbl.Occupancy() != 1 {
		t.Errorf("Occupancy = %d", tbl.Occupancy())
	}
	// Peer sharing 3 digits with next digit 5: row 3, col 5.
	deep := id.MustParse("00050000000000000000000000000000")
	if err := tbl.Set(deep); err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.Slot(3, 5); !ok {
		t.Error("deep slot not filled")
	}
	if err := tbl.Validate(); err != nil {
		t.Errorf("valid table rejected: %v", err)
	}
	// Owner can't occupy its own table.
	if err := tbl.Set(owner); err == nil {
		t.Error("owner accepted into table")
	}
	// Replacement keeps occupancy.
	peer2 := id.MustParse("a1000000000000000000000000000000")
	if err := tbl.Set(peer2); err != nil {
		t.Fatal(err)
	}
	if tbl.Occupancy() != 2 {
		t.Errorf("Occupancy after replace = %d", tbl.Occupancy())
	}
	// Clear.
	if err := tbl.Clear(0, 0xa); err != nil {
		t.Fatal(err)
	}
	if tbl.Occupancy() != 1 {
		t.Errorf("Occupancy after clear = %d", tbl.Occupancy())
	}
	if err := tbl.Clear(99, 0); err == nil {
		t.Error("out-of-range clear accepted")
	}
	// Density.
	if d := tbl.Density(); d != 1.0/float64(id.Digits*id.Base) {
		t.Errorf("Density = %v", d)
	}
}

func TestJumpTableNextHop(t *testing.T) {
	t.Parallel()
	owner := id.MustParse("00000000000000000000000000000000")
	tbl := NewJumpTable(owner)
	peer := id.MustParse("ab000000000000000000000000000000")
	if err := tbl.Set(peer); err != nil {
		t.Fatal(err)
	}
	hop, ok := tbl.NextHop(id.MustParse("acdef00000000000000000000000000f"))
	if !ok || hop != peer {
		t.Errorf("NextHop = %s, %v; want %s", hop.Short(), ok, peer.Short())
	}
	if _, ok := tbl.NextHop(id.MustParse("bb000000000000000000000000000000")); ok {
		t.Error("empty slot returned a hop")
	}
	if _, ok := tbl.NextHop(owner); ok {
		t.Error("NextHop(owner) returned a hop")
	}
}

func TestBuildSecureTableConstraints(t *testing.T) {
	t.Parallel()
	r := testRand()
	ids := randomIDs(500, r)
	ring := mustRing(t, ids)
	owner := ids[0]
	tbl, err := BuildSecureTable(owner, ring)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Validate(); err != nil {
		t.Fatalf("secure table invalid: %v", err)
	}
	// Every filled slot must hold the ring-closest qualifying node to
	// the slot's target point — the secure-routing constraint.
	for row := 0; row < id.Digits; row++ {
		for col := byte(0); col < id.Base; col++ {
			got, ok := tbl.Slot(row, col)
			if !ok {
				continue
			}
			target := owner.WithDigit(row, col)
			want, found := ring.ClosestWithPrefix(target, row+1, map[id.ID]bool{owner: true})
			if !found || got != want {
				t.Fatalf("slot (%d,%d) = %s, want %s", row, col, got.Short(), want.Short())
			}
		}
	}
	// Row 0 should be nearly full with 500 nodes.
	var row0 int
	for col := byte(0); col < id.Base; col++ {
		if _, ok := tbl.Slot(0, col); ok {
			row0++
		}
	}
	if row0 < 14 {
		t.Errorf("row 0 occupancy = %d, want ~15", row0)
	}
}

func TestBuildStandardTableConstraints(t *testing.T) {
	t.Parallel()
	r := testRand()
	ids := randomIDs(500, r)
	ring := mustRing(t, ids)
	owner := ids[0]
	tbl, err := BuildStandardTable(owner, ring, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Validate(); err != nil {
		t.Fatalf("standard table invalid: %v", err)
	}
	if tbl.Occupancy() == 0 {
		t.Error("standard table empty")
	}
}

func TestBuildRoutingStateAndPeers(t *testing.T) {
	t.Parallel()
	r := testRand()
	ids := randomIDs(200, r)
	ring := mustRing(t, ids)
	rs, err := BuildRoutingState(ids[0], ring, r)
	if err != nil {
		t.Fatal(err)
	}
	peers := rs.RoutingPeers()
	if len(peers) == 0 {
		t.Fatal("no routing peers")
	}
	seen := map[id.ID]bool{}
	for _, p := range peers {
		if p == ids[0] {
			t.Error("self in routing peers")
		}
		if seen[p] {
			t.Errorf("duplicate peer %s", p.Short())
		}
		seen[p] = true
	}
	if _, err := BuildRoutingState(id.Random(r), ring, r); err == nil {
		t.Error("non-member routing state accepted")
	}
}

func TestRouteSecureConverges(t *testing.T) {
	t.Parallel()
	r := testRand()
	ids := randomIDs(300, r)
	ring := mustRing(t, ids)
	states := make(map[id.ID]*RoutingState, len(ids))
	for _, x := range ids {
		rs, err := BuildRoutingState(x, ring, r)
		if err != nil {
			t.Fatal(err)
		}
		states[x] = rs
	}
	for trial := 0; trial < 100; trial++ {
		src := ids[r.IntN(len(ids))]
		dst := ids[r.IntN(len(ids))]
		route, err := RouteSecure(states, src, dst, 0)
		if err != nil {
			t.Fatalf("route %s -> %s: %v", src.Short(), dst.Short(), err)
		}
		if route[0] != src {
			t.Fatal("route does not start at src")
		}
		if route[len(route)-1] != dst {
			t.Fatalf("route to a live member ended at %s, not %s",
				route[len(route)-1].Short(), dst.Short())
		}
		// Hop count should be logarithmic-ish: generous bound.
		if len(route) > 10 {
			t.Errorf("route length %d suspiciously long", len(route))
		}
	}
}

func TestRouteSecureToNonMemberKey(t *testing.T) {
	t.Parallel()
	// Routing toward an arbitrary key (DHT insertion) must terminate at
	// the member numerically closest to the key.
	r := testRand()
	ids := randomIDs(300, r)
	ring := mustRing(t, ids)
	states := make(map[id.ID]*RoutingState, len(ids))
	for _, x := range ids {
		rs, err := BuildRoutingState(x, ring, r)
		if err != nil {
			t.Fatal(err)
		}
		states[x] = rs
	}
	for trial := 0; trial < 50; trial++ {
		src := ids[r.IntN(len(ids))]
		key := id.Random(r)
		route, err := RouteSecure(states, src, key, 0)
		if err != nil {
			t.Fatalf("route to key: %v", err)
		}
		terminus := route[len(route)-1]
		want, _ := ring.Closest(key, nil)
		if terminus != want {
			t.Fatalf("key %s routed to %s, closest is %s",
				key.Short(), terminus.Short(), want.Short())
		}
	}
}

func TestRouteStandardConverges(t *testing.T) {
	t.Parallel()
	r := testRand()
	ids := randomIDs(300, r)
	ring := mustRing(t, ids)
	states := make(map[id.ID]*RoutingState, len(ids))
	for _, x := range ids {
		rs, err := BuildRoutingState(x, ring, r)
		if err != nil {
			t.Fatal(err)
		}
		states[x] = rs
	}
	for trial := 0; trial < 60; trial++ {
		src := ids[r.IntN(len(ids))]
		dst := ids[r.IntN(len(ids))]
		route, err := RouteStandard(states, src, dst, 0)
		if err != nil {
			t.Fatalf("standard route %s -> %s: %v", src.Short(), dst.Short(), err)
		}
		if route[len(route)-1] != dst {
			t.Fatalf("standard route ended at %s, want %s",
				route[len(route)-1].Short(), dst.Short())
		}
	}
}

func TestStandardAndSecureDisagreeSometimes(t *testing.T) {
	t.Parallel()
	// The standard table picks freely among prefix-qualifying peers, so
	// across many nodes the two tables should not be identical — if they
	// were, the "standard" table would not be exercising its freedom.
	r := testRand()
	ids := randomIDs(400, r)
	ring := mustRing(t, ids)
	var differs bool
	for i := 0; i < 20 && !differs; i++ {
		rs, err := BuildRoutingState(ids[i], ring, r)
		if err != nil {
			t.Fatal(err)
		}
		if !secureTablesEqual(rs.Secure, rs.Standard) {
			differs = true
		}
	}
	if !differs {
		t.Error("standard tables identical to secure tables across 20 nodes")
	}
}

// Property: the leaf set holds exactly the perSide ring-nearest members
// on each side, for random populations (brute-force comparison).
func TestPropLeafSetMatchesBruteForce(t *testing.T) {
	t.Parallel()
	r := testRand()
	for trial := 0; trial < 40; trial++ {
		n := 3 + r.IntN(60)
		perSide := 1 + r.IntN(6)
		ids := randomIDs(n, r)
		owner := ids[0]
		ls, err := NewLeafSet(owner, perSide)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range ids[1:] {
			ls.Insert(p)
		}
		// Brute force: sort others by clockwise and counterclockwise
		// distance from the owner.
		others := append([]id.ID(nil), ids[1:]...)
		sort.Slice(others, func(i, j int) bool {
			return id.Spacing(owner, others[i]) < id.Spacing(owner, others[j])
		})
		wantCW := append([]id.ID(nil), others[:minInt(perSide, len(others))]...)
		sort.Slice(others, func(i, j int) bool {
			return id.Spacing(others[i], owner) < id.Spacing(others[j], owner)
		})
		wantCCW := append([]id.ID(nil), others[:minInt(perSide, len(others))]...)

		want := map[id.ID]bool{}
		for _, x := range wantCW {
			want[x] = true
		}
		for _, x := range wantCCW {
			want[x] = true
		}
		got := map[id.ID]bool{}
		for _, x := range ls.All() {
			got[x] = true
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: leaf set size %d, brute force %d", trial, len(got), len(want))
		}
		for x := range want {
			if !got[x] {
				t.Fatalf("trial %d: nearest member %s missing from leaf set", trial, x.Short())
			}
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Property: Closest with a skip set matches brute force over random
// rings — the search that secure-table refills depend on.
func TestPropRingClosestWithSkipMatchesBruteForce(t *testing.T) {
	t.Parallel()
	r := testRand()
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.IntN(50)
		ids := randomIDs(n, r)
		ring := mustRing(t, ids)
		target := id.Random(r)
		skip := map[id.ID]bool{}
		for _, x := range ids {
			if r.IntN(3) == 0 {
				skip[x] = true
			}
		}
		got, ok := ring.Closest(target, skip)
		var want id.ID
		found := false
		for _, x := range ids {
			if skip[x] {
				continue
			}
			if !found || id.Closer(x, want, target) {
				want, found = x, true
			}
		}
		if ok != found || (found && got != want) {
			t.Fatalf("trial %d (n=%d, skipped=%d): Closest = %s,%v want %s,%v",
				trial, n, len(skip), got.Short(), ok, want.Short(), found)
		}
	}
}
