package overlay

import (
	"math/rand/v2"
	"testing"

	"concilium/internal/id"
)

// secureTablesEqual compares every slot of two jump tables.
func secureTablesEqual(a, b *JumpTable) bool {
	for row := 0; row < id.Digits; row++ {
		for col := byte(0); col < id.Base; col++ {
			av, aok := a.Slot(row, col)
			bv, bok := b.Slot(row, col)
			if aok != bok || (aok && av != bv) {
				return false
			}
		}
	}
	return true
}

func leafSetsEqual(a, b *LeafSet) bool {
	am := map[id.ID]bool{}
	for _, x := range a.All() {
		am[x] = true
	}
	bs := b.All()
	if len(am) != len(bs) {
		return false
	}
	for _, x := range bs {
		if !am[x] {
			return false
		}
	}
	return true
}

// TestApplyJoinMatchesRebuild is the central churn property: folding a
// join in incrementally must land in exactly the state a from-scratch
// secure fill over the grown membership produces.
func TestApplyJoinMatchesRebuild(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(501, 503))
	ids := randomIDs(150, r)
	baseRing := mustRing(t, ids[:100])
	owner := ids[0]

	rs, err := BuildRoutingState(owner, baseRing, r)
	if err != nil {
		t.Fatal(err)
	}
	ring := baseRing
	for _, joiner := range ids[100:] {
		ring, err = ring.WithMember(joiner)
		if err != nil {
			t.Fatal(err)
		}
		if err := rs.ApplyJoin(joiner); err != nil {
			t.Fatal(err)
		}
	}
	rebuilt, err := BuildSecureTable(owner, ring)
	if err != nil {
		t.Fatal(err)
	}
	if !secureTablesEqual(rs.Secure, rebuilt) {
		t.Error("incremental joins diverged from a from-scratch secure fill")
	}
	rebuiltLeaf, err := BuildLeafSet(owner, ring, DefaultLeafSetPerSide)
	if err != nil {
		t.Fatal(err)
	}
	if !leafSetsEqual(rs.Leaf, rebuiltLeaf) {
		t.Error("incremental joins diverged from a rebuilt leaf set")
	}
	if err := rs.Secure.Validate(); err != nil {
		t.Errorf("secure table corrupted: %v", err)
	}
	if err := rs.Standard.Validate(); err != nil {
		t.Errorf("standard table corrupted: %v", err)
	}
}

// TestApplyDepartureMatchesRebuild: same property for departures.
func TestApplyDepartureMatchesRebuild(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(505, 507))
	ids := randomIDs(150, r)
	ring := mustRing(t, ids)
	owner := ids[0]

	rs, err := BuildRoutingState(owner, ring, r)
	if err != nil {
		t.Fatal(err)
	}
	// Depart 30 random members (never the owner).
	departed := map[id.ID]bool{}
	for i := 1; i <= 30; i++ {
		peer := ids[i*4]
		if peer == owner || departed[peer] {
			continue
		}
		departed[peer] = true
		ring, err = ring.Without(map[id.ID]bool{peer: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := rs.ApplyDeparture(peer, ring, r); err != nil {
			t.Fatal(err)
		}
	}
	rebuilt, err := BuildSecureTable(owner, ring)
	if err != nil {
		t.Fatal(err)
	}
	if !secureTablesEqual(rs.Secure, rebuilt) {
		t.Error("incremental departures diverged from a from-scratch secure fill")
	}
	rebuiltLeaf, err := BuildLeafSet(owner, ring, DefaultLeafSetPerSide)
	if err != nil {
		t.Fatal(err)
	}
	if !leafSetsEqual(rs.Leaf, rebuiltLeaf) {
		t.Error("incremental departures diverged from a rebuilt leaf set")
	}
	// No departed member may linger anywhere.
	for _, p := range rs.RoutingPeers() {
		if departed[p] {
			t.Fatalf("departed peer %s still in routing state", p.Short())
		}
	}
}

func TestApplyJoinValidation(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(509, 511))
	ids := randomIDs(20, r)
	ring := mustRing(t, ids)
	rs, err := BuildRoutingState(ids[0], ring, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.ApplyJoin(ids[0]); err == nil {
		t.Error("self-join accepted")
	}
}

func TestApplyDepartureValidation(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(513, 515))
	ids := randomIDs(20, r)
	ring := mustRing(t, ids)
	rs, err := BuildRoutingState(ids[0], ring, r)
	if err != nil {
		t.Fatal(err)
	}
	// Departing peer must already be out of the supplied ring.
	if err := rs.ApplyDeparture(ids[1], ring, r); err == nil {
		t.Error("stale ring accepted")
	}
}

func TestWithMember(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(517, 519))
	ids := randomIDs(10, r)
	ring := mustRing(t, ids[:9])
	grown, err := ring.WithMember(ids[9])
	if err != nil {
		t.Fatal(err)
	}
	if !grown.Contains(ids[9]) || grown.Size() != 10 {
		t.Error("WithMember did not add the member")
	}
	if _, err := grown.WithMember(ids[9]); err == nil {
		t.Error("duplicate member accepted")
	}
	// Original ring untouched.
	if ring.Contains(ids[9]) {
		t.Error("WithMember mutated the original ring")
	}
}

func TestChurnStormKeepsRoutingCorrect(t *testing.T) {
	t.Parallel()
	// Interleaved joins and departures; at the end, routing from the
	// owner must still terminate at the numerically closest live node.
	r := rand.New(rand.NewPCG(521, 523))
	ids := randomIDs(200, r)
	ring := mustRing(t, ids[:120])
	owner := ids[0]
	rs, err := BuildRoutingState(owner, ring, r)
	if err != nil {
		t.Fatal(err)
	}
	next := 120
	alive := map[id.ID]bool{}
	for _, x := range ids[:120] {
		alive[x] = true
	}
	for step := 0; step < 120; step++ {
		if step%3 == 2 && next < len(ids) {
			joiner := ids[next]
			next++
			ring, err = ring.WithMember(joiner)
			if err != nil {
				t.Fatal(err)
			}
			alive[joiner] = true
			if err := rs.ApplyJoin(joiner); err != nil {
				t.Fatal(err)
			}
			continue
		}
		// Depart a random live member that is not the owner.
		members := ring.Members()
		peer := members[r.IntN(len(members))]
		if peer == owner {
			continue
		}
		ring, err = ring.Without(map[id.ID]bool{peer: true})
		if err != nil {
			t.Fatal(err)
		}
		delete(alive, peer)
		if err := rs.ApplyDeparture(peer, ring, r); err != nil {
			t.Fatal(err)
		}
	}
	if !secureTablesEqualRebuilt(t, rs, ring) {
		t.Error("churn storm diverged from rebuild")
	}
}

func secureTablesEqualRebuilt(t *testing.T, rs *RoutingState, ring *Ring) bool {
	t.Helper()
	rebuilt, err := BuildSecureTable(rs.Self, ring)
	if err != nil {
		t.Fatal(err)
	}
	return secureTablesEqual(rs.Secure, rebuilt)
}
