// Package overlay implements the structured peer-to-peer substrate
// Concilium runs on: a Pastry-style overlay with leaf sets and jump
// tables, plus the secure-routing variant of Castro et al. (§2) in which
// each jump-table slot is constrained to the live host closest to that
// slot's target point. The package is pure data structure and routing
// logic; signing, validation, and fault attribution live in
// internal/core.
package overlay

import (
	"fmt"
	"sort"

	"concilium/internal/id"
)

// Ring is the sorted global membership view used to construct correct
// routing state and to answer "who is the closest live host to point p"
// queries. Experiments build it from the certificate authority's
// assignments; a malicious host's *advertised* state can then be compared
// against what the ring says it should be.
type Ring struct {
	ids []id.ID
	// pairs shadows ids in decomposed word-pair form. Binary searches
	// compare pairs instead of re-decomposing both operands per probe,
	// which is where table construction spends its time at large N.
	pairs []id.Pair
}

// NewRing builds a ring over the given members. Duplicates are rejected.
func NewRing(members []id.ID) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("overlay: ring needs at least one member")
	}
	ids := make([]id.ID, len(members))
	copy(ids, members)
	sort.Slice(ids, func(i, j int) bool { return id.Less(ids[i], ids[j]) })
	for i := 1; i < len(ids); i++ {
		if ids[i] == ids[i-1] {
			return nil, fmt.Errorf("overlay: duplicate member %s", ids[i])
		}
	}
	return &Ring{ids: ids, pairs: makePairs(ids)}, nil
}

func makePairs(ids []id.ID) []id.Pair {
	pairs := make([]id.Pair, len(ids))
	for i, x := range ids {
		pairs[i] = x.Pair()
	}
	return pairs
}

// Size returns the number of members.
func (r *Ring) Size() int { return len(r.ids) }

// Members returns the members in ascending identifier order. The slice
// is shared and must not be modified.
func (r *Ring) Members() []id.ID { return r.ids }

// Contains reports membership.
func (r *Ring) Contains(x id.ID) bool {
	_, ok := r.IndexOf(x)
	return ok
}

// IndexOf returns x's position in the sorted member slice, by binary
// search over ids — the ring keeps no side map, so membership costs
// O(log N) and zero bytes.
func (r *Ring) IndexOf(x id.ID) (int, bool) {
	at := r.searchGE(x)
	if at < len(r.ids) && r.ids[at] == x {
		return at, true
	}
	return 0, false
}

// Without returns a new ring excluding the given members — the view an
// adversary presents under a suppression attack, or the system after
// departures. It fails if nothing remains.
func (r *Ring) Without(excluded map[id.ID]bool) (*Ring, error) {
	kept := make([]id.ID, 0, len(r.ids))
	for _, x := range r.ids {
		if !excluded[x] {
			kept = append(kept, x)
		}
	}
	return NewRing(kept)
}

// searchGE returns the index of the first member >= x, possibly len(ids).
func (r *Ring) searchGE(x id.ID) int {
	return r.searchGEPair(x.Pair())
}

// searchGEPair is searchGE over the decomposed member view, with the
// binary search inlined: sort.Search's closure indirection and id.Cmp's
// per-probe byte decomposition both show up at million-member scale.
func (r *Ring) searchGEPair(xp id.Pair) int {
	lo, hi := 0, len(r.pairs)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if r.pairs[m].Less(xp) {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

// Closest returns the member with minimal ring distance to target,
// excluding any members in skip (which may be nil). The boolean is false
// if every member was skipped.
func (r *Ring) Closest(target id.ID, skip map[id.ID]bool) (id.ID, bool) {
	n := len(r.ids)
	pos := r.searchGE(target) % n
	best, found := id.ID{}, false
	// Walk outward from the insertion point in both directions. The
	// closest non-skipped member is within len(skip)+1 steps of pos on
	// one side or the other.
	limit := n
	for step := 0; step < limit; step++ {
		for _, cand := range []id.ID{
			r.ids[((pos+step)%n+n)%n],
			r.ids[((pos-1-step)%n+n)%n],
		} {
			if skip[cand] {
				continue
			}
			if !found || id.Closer(cand, best, target) {
				best, found = cand, true
			}
		}
		if found && step > len(skip) {
			break
		}
	}
	return best, found
}

// prefixRange returns the numeric bounds [lo, hi] of identifiers sharing
// the first prefixLen digits of base.
func prefixRange(base id.ID, prefixLen int) (lo, hi id.ID) {
	lp, hp := base.Pair().PrefixRange(prefixLen)
	return lp.ID(), hp.ID()
}

// ClosestWithPrefix returns the member closest to target among those
// sharing target's first prefixLen digits, excluding members in skip.
// Identifiers with a common prefix form a contiguous arc, so this is two
// binary searches plus a linear scan of the arc. Table construction uses
// the O(log N) single-exclusion variant ClosestWithPrefixExcl; this scan
// survives as the general-skip API and as its test reference.
func (r *Ring) ClosestWithPrefix(target id.ID, prefixLen int, skip map[id.ID]bool) (id.ID, bool) {
	if prefixLen <= 0 {
		return r.Closest(target, skip)
	}
	start, end, ok := r.arcBounds(target, prefixLen)
	if !ok {
		return id.ID{}, false
	}
	best, found := id.ID{}, false
	for i := start; i <= end; i++ {
		cand := r.ids[i]
		if skip[cand] {
			continue
		}
		if !found || id.Closer(cand, best, target) {
			best, found = cand, true
		}
	}
	return best, found
}

// arcBounds returns the inclusive index range [start, end] of members
// sharing target's first prefixLen digits, with ok=false when no member
// qualifies. Callers must pass prefixLen >= 1; prefixLen 0 is the whole
// ring, which is not a half-open arc.
func (r *Ring) arcBounds(target id.ID, prefixLen int) (start, end int, ok bool) {
	if prefixLen > id.Digits {
		prefixLen = id.Digits
	}
	lo, hi := target.Pair().PrefixRange(prefixLen)
	start = r.searchGEPair(lo)
	end = r.searchGEPair(hi)
	if end == len(r.pairs) || r.pairs[end] != hi {
		end--
	}
	if start > end {
		return 0, 0, false
	}
	return start, end, true
}

// ClosestWithPrefixExcl is ClosestWithPrefix specialized to a single
// excluded member — the only skip shape table construction needs. Within
// a shared-prefix arc there is no wraparound, so distance to target is
// monotone on each side of target's insertion point: the winner is among
// the nearest two candidates per side (two, because the nearest may be
// excl). O(log N) instead of a full arc scan.
func (r *Ring) ClosestWithPrefixExcl(target id.ID, prefixLen int, excl id.ID) (id.ID, bool) {
	if prefixLen <= 0 {
		return r.closestExcl(target, excl)
	}
	start, end, ok := r.arcBounds(target, prefixLen)
	if !ok {
		return id.ID{}, false
	}
	pos := r.searchGE(target)
	best, found := id.ID{}, false
	for _, i := range [4]int{pos, pos + 1, pos - 1, pos - 2} {
		if i < start || i > end {
			continue
		}
		cand := r.ids[i]
		if cand == excl {
			continue
		}
		if !found || id.Closer(cand, best, target) {
			best, found = cand, true
		}
	}
	return best, found
}

// closestWithPrefixExclIdx is ClosestWithPrefixExcl with the excluded
// member named by index and the winner returned by index — the form the
// compact core uses, where peers are uint32 ring positions rather than
// identifiers. Candidate order and tie-breaking match the ID variant
// exactly, so both return the same winner.
func (r *Ring) closestWithPrefixExclIdx(target id.ID, prefixLen, excl int) (int, bool) {
	if prefixLen <= 0 {
		return r.closestExclIdx(target, excl)
	}
	start, end, ok := r.arcBounds(target, prefixLen)
	if !ok {
		return 0, false
	}
	pos := r.searchGE(target)
	best, found := 0, false
	for _, i := range [4]int{pos, pos + 1, pos - 1, pos - 2} {
		if i < start || i > end || i == excl {
			continue
		}
		if !found || id.Closer(r.ids[i], r.ids[best], target) {
			best, found = i, true
		}
	}
	return best, found
}

// closestExclIdx is closestExcl by index.
func (r *Ring) closestExclIdx(target id.ID, excl int) (int, bool) {
	n := len(r.ids)
	pos := r.searchGE(target)
	best, found := 0, false
	for _, off := range [4]int{0, 1, -1, -2} {
		i := ((pos+off)%n + n) % n
		if i == excl {
			continue
		}
		if !found || id.Closer(r.ids[i], r.ids[best], target) {
			best, found = i, true
		}
	}
	return best, found
}

// hasOtherWithPrefixIdx is HasOtherWithPrefix with the exclusion by index.
func (r *Ring) hasOtherWithPrefixIdx(target id.ID, prefixLen, excl int) bool {
	if prefixLen <= 0 {
		return len(r.ids) > 1 || excl != 0
	}
	start, end, ok := r.arcBounds(target, prefixLen)
	if !ok {
		return false
	}
	return end > start || start != excl
}

// uniformWithPrefixExclIdx is UniformWithPrefixExcl by index. It consumes
// exactly the same rng draws as the ID variant: one IntN over the arc
// span when a candidate exists, none otherwise.
func (r *Ring) uniformWithPrefixExclIdx(target id.ID, prefixLen, excl int, rng interface{ IntN(int) int }) (int, bool) {
	start, end := 0, len(r.ids)-1
	if prefixLen > 0 {
		var ok bool
		start, end, ok = r.arcBounds(target, prefixLen)
		if !ok {
			return 0, false
		}
	}
	exclAt := -1
	if excl >= start && excl <= end {
		exclAt = excl
	}
	count := end - start + 1
	if exclAt >= 0 {
		count--
	}
	if count <= 0 {
		return 0, false
	}
	j := start + rng.IntN(count)
	if exclAt >= 0 && j >= exclAt {
		j++
	}
	return j, true
}

// closestExcl is Closest with a single excluded member: the circularly
// nearest survivor is within two ring steps of the insertion point, so
// four probes replace the outward walk.
func (r *Ring) closestExcl(target id.ID, excl id.ID) (id.ID, bool) {
	n := len(r.ids)
	pos := r.searchGE(target)
	best, found := id.ID{}, false
	for _, off := range [4]int{0, 1, -1, -2} {
		cand := r.ids[((pos+off)%n+n)%n]
		if cand == excl {
			continue
		}
		if !found || id.Closer(cand, best, target) {
			best, found = cand, true
		}
	}
	return best, found
}

// HasOtherWithPrefix reports whether any member besides excl shares
// target's first prefixLen digits — the row-termination probe of table
// construction, answered from the arc bounds without scanning.
func (r *Ring) HasOtherWithPrefix(target id.ID, prefixLen int, excl id.ID) bool {
	if prefixLen <= 0 {
		return len(r.ids) > 1 || r.ids[0] != excl
	}
	start, end, ok := r.arcBounds(target, prefixLen)
	if !ok {
		return false
	}
	if end > start {
		return true
	}
	return r.ids[start] != excl
}

// UniformWithPrefixExcl picks uniformly among members sharing target's
// first prefixLen digits, excluding (at most) excl, with one rng draw
// over the arc span instead of a reservoir pass through it.
func (r *Ring) UniformWithPrefixExcl(target id.ID, prefixLen int, excl id.ID, rng interface{ IntN(int) int }) (id.ID, bool) {
	start, end := 0, len(r.ids)-1
	if prefixLen > 0 {
		var ok bool
		start, end, ok = r.arcBounds(target, prefixLen)
		if !ok {
			return id.ID{}, false
		}
	}
	exclAt := -1
	if at, ok := r.IndexOf(excl); ok && at >= start && at <= end {
		exclAt = at
	}
	count := end - start + 1
	if exclAt >= 0 {
		count--
	}
	if count <= 0 {
		return id.ID{}, false
	}
	j := start + rng.IntN(count)
	if exclAt >= 0 && j >= exclAt {
		j++
	}
	return r.ids[j], true
}

// NeighborsClockwise returns up to k members following x on the ring
// (ascending with wraparound), excluding x itself.
func (r *Ring) NeighborsClockwise(x id.ID, k int) []id.ID {
	return r.neighbors(x, k, +1)
}

// NeighborsCounterClockwise returns up to k members preceding x.
func (r *Ring) NeighborsCounterClockwise(x id.ID, k int) []id.ID {
	return r.neighbors(x, k, -1)
}

func (r *Ring) neighbors(x id.ID, k, dir int) []id.ID {
	n := len(r.ids)
	if k > n-1 {
		k = n - 1
	}
	if k <= 0 {
		return nil
	}
	var pos int
	if at, ok := r.IndexOf(x); ok {
		pos = at
	} else {
		// x is not a member: start from the insertion point.
		pos = r.searchGE(x)
		if dir > 0 {
			pos-- // first clockwise neighbor is ids[pos] itself
		}
	}
	out := make([]id.ID, 0, k)
	for i := 1; len(out) < k; i++ {
		cand := r.ids[((pos+dir*i)%n+n)%n]
		if cand == x {
			break // wrapped all the way around
		}
		out = append(out, cand)
	}
	return out
}
