package overlay

import (
	"fmt"

	"concilium/internal/id"
	"concilium/internal/stats"
)

// Membership maintenance. Overlay populations churn: hosts join with
// fresh CA-issued identifiers and depart (gracefully or by failure,
// detected through missed availability probes). Routing state must
// track both without full rebuilds, and — for the secure table — must
// land in exactly the state a from-scratch constrained fill would
// produce, or the density and freshness checks of §3.1 would flag
// honest nodes.

// ApplyJoin folds a newly joined peer into the routing state. The
// secure table admits the peer only if it is closer to the slot's
// target point than the current occupant (the §2 constraint); the
// standard table takes it only for empty slots (proximity choice is
// free, so keeping the incumbent is valid).
func (rs *RoutingState) ApplyJoin(peer id.ID) error {
	if peer == rs.Self {
		return fmt.Errorf("overlay: node cannot join itself")
	}
	rs.Leaf.Insert(peer)

	row := id.CommonPrefixLen(rs.Self, peer)
	if row >= id.Digits {
		return fmt.Errorf("overlay: joining peer duplicates local identifier")
	}
	col := peer.Digit(row)
	target := rs.Self.WithDigit(row, col)
	if cur, ok := rs.Secure.Slot(row, col); !ok || id.Closer(peer, cur, target) {
		if err := rs.Secure.Set(peer); err != nil {
			return err
		}
	}
	if _, ok := rs.Standard.Slot(row, col); !ok {
		if err := rs.Standard.Set(peer); err != nil {
			return err
		}
	}
	return nil
}

// ApplyDeparture removes a departed peer, refilling from the
// post-departure ring. rng drives the standard table's free choice.
func (rs *RoutingState) ApplyDeparture(peer id.ID, ring *Ring, rng stats.Rand) error {
	if ring.Contains(peer) {
		return fmt.Errorf("overlay: ring still contains departing peer %s", peer.Short())
	}

	// Leaf set: drop and refill the affected side from the ring.
	if rs.Leaf.Remove(peer) {
		for _, p := range ring.NeighborsClockwise(rs.Self, rs.Leaf.PerSide()) {
			rs.Leaf.Insert(p)
		}
		for _, p := range ring.NeighborsCounterClockwise(rs.Self, rs.Leaf.PerSide()) {
			rs.Leaf.Insert(p)
		}
	}

	// Secure table: the departed peer occupied exactly one slot; refill
	// it with the now-closest qualifying host.
	row := id.CommonPrefixLen(rs.Self, peer)
	if row < id.Digits {
		col := peer.Digit(row)
		if cur, ok := rs.Secure.Slot(row, col); ok && cur == peer {
			if err := rs.Secure.Clear(row, col); err != nil {
				return err
			}
			target := rs.Self.WithDigit(row, col)
			if cand, found := ring.ClosestWithPrefixExcl(target, row+1, rs.Self); found {
				if err := rs.Secure.Set(cand); err != nil {
					return err
				}
			}
		}
		if cur, ok := rs.Standard.Slot(row, col); ok && cur == peer {
			if err := rs.Standard.Clear(row, col); err != nil {
				return err
			}
			target := rs.Self.WithDigit(row, col)
			if cand, found := ring.UniformWithPrefixExcl(target, row+1, rs.Self, rng); found {
				if err := rs.Standard.Set(cand); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// WithMember returns a new ring including x (used when processing a
// join announcement).
func (r *Ring) WithMember(x id.ID) (*Ring, error) {
	if r.Contains(x) {
		return nil, fmt.Errorf("overlay: ring already contains %s", x.Short())
	}
	members := make([]id.ID, 0, len(r.ids)+1)
	members = append(members, r.ids...)
	members = append(members, x)
	return NewRing(members)
}
