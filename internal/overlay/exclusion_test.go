package overlay

import (
	"testing"

	"concilium/internal/id"
)

// The exclusion-variant ring searches replace the skip-map scans on the
// build and maintenance paths. These properties pin them to the same
// brute-force references the general APIs are pinned to: sorted-arc
// binary search plus a constant number of probes must be observationally
// identical to a full scan.

func TestPropClosestWithPrefixExclMatchesBruteForce(t *testing.T) {
	t.Parallel()
	r := testRand()
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.IntN(80)
		ids := randomIDs(n, r)
		ring := mustRing(t, ids)
		target := id.Random(r)
		if r.IntN(2) == 0 {
			// Half the trials aim at a member-derived point, the shape
			// the table builders produce (owner with one digit forced).
			owner := ids[r.IntN(n)]
			target = owner.WithDigit(r.IntN(3), byte(r.IntN(id.Base)))
		}
		plen := r.IntN(4)
		excl := ids[r.IntN(n)]
		got, ok := ring.ClosestWithPrefixExcl(target, plen, excl)
		var want id.ID
		found := false
		for _, x := range ids {
			if x == excl || id.CommonPrefixLen(x, target) < plen {
				continue
			}
			if !found || id.Closer(x, want, target) {
				want, found = x, true
			}
		}
		if ok != found || (found && got != want) {
			t.Fatalf("trial %d (n=%d, plen=%d): ClosestWithPrefixExcl = %s,%v want %s,%v",
				trial, n, plen, got.Short(), ok, want.Short(), found)
		}
	}
}

func TestPropHasOtherWithPrefixMatchesBruteForce(t *testing.T) {
	t.Parallel()
	r := testRand()
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.IntN(60)
		ids := randomIDs(n, r)
		ring := mustRing(t, ids)
		owner := ids[r.IntN(n)]
		plen := 1 + r.IntN(4)
		got := ring.HasOtherWithPrefix(owner, plen, owner)
		want := false
		for _, x := range ids {
			if x != owner && id.CommonPrefixLen(x, owner) >= plen {
				want = true
				break
			}
		}
		if got != want {
			t.Fatalf("trial %d (n=%d, plen=%d): HasOtherWithPrefix = %v, brute force %v",
				trial, n, plen, got, want)
		}
	}
}

// TestPropUniformWithPrefixExcl checks the single-draw uniform pick:
// every returned candidate qualifies (prefix match, not the excluded
// member), and across many draws every qualifying candidate shows up —
// the index-shift around the excluded member must not shadow anyone.
func TestPropUniformWithPrefixExcl(t *testing.T) {
	t.Parallel()
	r := testRand()
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.IntN(40)
		ids := randomIDs(n, r)
		ring := mustRing(t, ids)
		owner := ids[r.IntN(n)]
		plen := r.IntN(3)
		target := owner.WithDigit(plen, byte(r.IntN(id.Base)))
		qualify := map[id.ID]bool{}
		for _, x := range ids {
			if x != owner && id.CommonPrefixLen(x, target) >= plen {
				qualify[x] = true
			}
		}
		seen := map[id.ID]bool{}
		for draw := 0; draw < 40*(len(qualify)+1); draw++ {
			got, ok := ring.UniformWithPrefixExcl(target, plen, owner, r)
			if ok != (len(qualify) > 0) {
				t.Fatalf("trial %d: ok=%v with %d candidates", trial, ok, len(qualify))
			}
			if !ok {
				break
			}
			if !qualify[got] {
				t.Fatalf("trial %d: drew non-qualifying %s (owner=%s, plen=%d)",
					trial, got.Short(), owner.Short(), plen)
			}
			seen[got] = true
		}
		if len(qualify) > 0 && len(seen) != len(qualify) {
			t.Fatalf("trial %d: only %d of %d qualifying candidates ever drawn",
				trial, len(seen), len(qualify))
		}
	}
}

// TestBuildLeafSetMatchesSequentialInserts pins the bulk fill: building
// from ring neighbors in one rebuild must equal inserting the same
// neighbor sequences one by one.
func TestBuildLeafSetMatchesSequentialInserts(t *testing.T) {
	t.Parallel()
	r := testRand()
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.IntN(80)
		perSide := 1 + r.IntN(8)
		ids := randomIDs(n, r)
		ring := mustRing(t, ids)
		owner := ids[r.IntN(n)]

		bulk, err := BuildLeafSet(owner, ring, perSide)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := NewLeafSet(owner, perSide)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range ring.NeighborsClockwise(owner, perSide) {
			seq.Insert(p)
		}
		for _, p := range ring.NeighborsCounterClockwise(owner, perSide) {
			seq.Insert(p)
		}
		if bulk.Len() != seq.Len() {
			t.Fatalf("trial %d: bulk len %d, sequential len %d", trial, bulk.Len(), seq.Len())
		}
		want := map[id.ID]bool{}
		for _, x := range seq.All() {
			want[x] = true
		}
		for _, x := range bulk.All() {
			if !want[x] {
				t.Fatalf("trial %d: bulk-built leaf set holds %s, sequential does not", trial, x.Short())
			}
		}
	}
}
