package overlay

import (
	"fmt"
	"sort"

	"concilium/internal/id"
)

// DefaultLeafSetPerSide is half the paper's 16-leaf set: 8 numerically
// closest peers on each side of the local identifier.
const DefaultLeafSetPerSide = 8

// LeafSet holds the peers with the numerically closest identifiers to
// the owner: the perSide closest successors (clockwise) and the perSide
// closest predecessors (counterclockwise). In sparse rings one peer can
// qualify on both sides; membership is the union, so a leaf set over a
// tiny overlay simply holds everyone — which is exactly Pastry's
// behavior.
type LeafSet struct {
	owner   id.ID
	perSide int
	members []id.ID // unordered union of both sides
	cw      []id.ID // perSide closest successors, ascending cw distance
	ccw     []id.ID // perSide closest predecessors, ascending ccw distance
}

// NewLeafSet creates an empty leaf set for owner.
func NewLeafSet(owner id.ID, perSide int) (*LeafSet, error) {
	if perSide <= 0 {
		return nil, fmt.Errorf("overlay: leaf set perSide %d must be positive", perSide)
	}
	return &LeafSet{owner: owner, perSide: perSide}, nil
}

// Owner returns the local identifier the set is centered on.
func (ls *LeafSet) Owner() id.ID { return ls.owner }

// PerSide returns the per-side capacity.
func (ls *LeafSet) PerSide() int { return ls.perSide }

// Insert offers a peer to the leaf set. It returns true if the peer was
// retained (it ranks among the perSide nearest on at least one side).
// The owner itself and duplicates are ignored.
func (ls *LeafSet) Insert(peer id.ID) bool {
	if peer == ls.owner || ls.contains(peer) {
		return false
	}
	ls.members = append(ls.members, peer)
	ls.rebuild()
	return ls.contains(peer)
}

// insertBulk offers whole groups of peers with a single rebuild at the
// end. It is equivalent to sequential Insert calls only when no offered
// peer would ever be pruned mid-sequence — BuildLeafSet's case, where
// every offer is a nearest ring neighbor of its own side.
func (ls *LeafSet) insertBulk(groups ...[]id.ID) {
	for _, g := range groups {
		for _, p := range g {
			if p == ls.owner || ls.contains(p) {
				continue
			}
			ls.members = append(ls.members, p)
		}
	}
	ls.rebuild()
}

// Remove drops a departed peer, reporting whether it was present.
func (ls *LeafSet) Remove(peer id.ID) bool {
	for i, x := range ls.members {
		if x == peer {
			ls.members = append(ls.members[:i], ls.members[i+1:]...)
			ls.rebuild()
			return true
		}
	}
	return false
}

// rebuild derives the side views and prunes members that rank on
// neither side.
func (ls *LeafSet) rebuild() {
	bySide := func(clockwise bool) []id.ID {
		out := append([]id.ID(nil), ls.members...)
		sort.Slice(out, func(i, j int) bool {
			if clockwise {
				return id.Spacing(ls.owner, out[i]) < id.Spacing(ls.owner, out[j])
			}
			return id.Spacing(out[i], ls.owner) < id.Spacing(out[j], ls.owner)
		})
		if len(out) > ls.perSide {
			out = out[:ls.perSide]
		}
		return out
	}
	ls.cw = bySide(true)
	ls.ccw = bySide(false)
	keep := make(map[id.ID]bool, len(ls.cw)+len(ls.ccw))
	for _, x := range ls.cw {
		keep[x] = true
	}
	for _, x := range ls.ccw {
		keep[x] = true
	}
	kept := ls.members[:0]
	for _, x := range ls.members {
		if keep[x] {
			kept = append(kept, x)
		}
	}
	ls.members = kept
}

func (ls *LeafSet) contains(peer id.ID) bool {
	for _, x := range ls.members {
		if x == peer {
			return true
		}
	}
	return false
}

func (ls *LeafSet) containsSide(side []id.ID, peer id.ID) bool {
	for _, x := range side {
		if x == peer {
			return true
		}
	}
	return false
}

// Len returns the number of distinct leaves currently held.
func (ls *LeafSet) Len() int { return len(ls.members) }

// All returns every leaf. The slice is fresh.
func (ls *LeafSet) All() []id.ID {
	return append([]id.ID(nil), ls.members...)
}

// AppendAll appends every leaf to out and returns the extended slice —
// the allocation-free variant of All.
func (ls *LeafSet) AppendAll(out []id.ID) []id.ID {
	return append(out, ls.members...)
}

// Covers reports whether target falls inside the arc spanned by the
// leaf set (between the farthest predecessor and farthest successor).
// Pastry delivers directly from the leaf set in that range.
func (ls *LeafSet) Covers(target id.ID) bool {
	if len(ls.cw) == 0 || len(ls.ccw) == 0 {
		return false
	}
	lo := ls.ccw[len(ls.ccw)-1]
	hi := ls.cw[len(ls.cw)-1]
	return target == ls.owner || id.Between(target, lo, hi)
}

// Closest returns the leaf (or the owner) numerically closest to target.
func (ls *LeafSet) Closest(target id.ID) (id.ID, bool) {
	best := ls.owner
	for _, x := range ls.members {
		if id.Closer(x, best, target) {
			best = x
		}
	}
	return best, true
}

// MeanSpacing returns the average inter-identifier gap across the arc the
// leaf set spans (owner included). Castro's density test and the
// network-size estimator both consume this.
func (ls *LeafSet) MeanSpacing() (float64, error) {
	if ls.Len() == 0 {
		return 0, fmt.Errorf("overlay: mean spacing of empty leaf set")
	}
	// The owner plus its leaves partition an arc of the ring. Order them
	// by clockwise distance from the farthest counterclockwise point; the
	// mean gap is the arc length over the number of segments.
	var start id.ID
	if len(ls.ccw) > 0 {
		start = ls.ccw[len(ls.ccw)-1]
	} else {
		start = ls.owner
	}
	all := make([]id.ID, 0, ls.Len()+1)
	all = append(all, ls.owner)
	all = append(all, ls.members...)
	sort.Slice(all, func(i, j int) bool {
		return id.Spacing(start, all[i]) < id.Spacing(start, all[j])
	})
	arc := id.Spacing(start, all[len(all)-1])
	segments := len(all) - 1
	if segments <= 0 || arc <= 0 {
		return 0, fmt.Errorf("overlay: leaf set spans no arc")
	}
	return arc / float64(segments), nil
}

// EstimateN estimates the total overlay population from leaf-set density
// (Mahajan et al.): if k+1 identifiers span an arc that is f of the ring,
// the population is about (k+1)/f.
func (ls *LeafSet) EstimateN() (float64, error) {
	spacing, err := ls.MeanSpacing()
	if err != nil {
		return 0, err
	}
	if spacing <= 0 {
		return 0, fmt.Errorf("overlay: degenerate leaf spacing")
	}
	return id.RingSize / spacing, nil
}
