package overlay

import (
	"fmt"

	"concilium/internal/id"
)

// JumpTable is a Pastry routing table: Digits rows by Base columns. The
// entry at row i, column j shares an i-digit prefix with the owner and
// has j as its i+1-th digit, so each row lets a message jump an
// exponentially smaller region of the identifier space (§2).
type JumpTable struct {
	owner   id.ID
	present [id.Digits][id.Base]bool
	entries [id.Digits][id.Base]id.ID
	filled  int
}

// NewJumpTable creates an empty jump table for owner.
func NewJumpTable(owner id.ID) *JumpTable {
	return &JumpTable{owner: owner}
}

// Owner returns the identifier the table is built around.
func (t *JumpTable) Owner() id.ID { return t.owner }

// slotFor returns the (row, col) a peer is eligible to occupy, or an
// error for the owner itself.
func (t *JumpTable) slotFor(peer id.ID) (int, byte, error) {
	row := id.CommonPrefixLen(t.owner, peer)
	if row == id.Digits {
		return 0, 0, fmt.Errorf("overlay: jump table cannot hold its owner")
	}
	return row, peer.Digit(row), nil
}

// Set places peer in its constraint-determined slot, replacing any
// current occupant. Invalid peers (the owner) are rejected.
func (t *JumpTable) Set(peer id.ID) error {
	row, col, err := t.slotFor(peer)
	if err != nil {
		return err
	}
	if !t.present[row][col] {
		t.filled++
	}
	t.present[row][col] = true
	t.entries[row][col] = peer
	return nil
}

// Clear empties the slot at (row, col).
func (t *JumpTable) Clear(row int, col byte) error {
	if row < 0 || row >= id.Digits || col >= id.Base {
		return fmt.Errorf("overlay: slot (%d, %d) out of range", row, col)
	}
	if t.present[row][col] {
		t.filled--
		t.present[row][col] = false
		t.entries[row][col] = id.ID{}
	}
	return nil
}

// Slot returns the occupant of (row, col), if any.
func (t *JumpTable) Slot(row int, col byte) (id.ID, bool) {
	if row < 0 || row >= id.Digits || col >= id.Base {
		return id.ID{}, false
	}
	return t.entries[row][col], t.present[row][col]
}

// Occupancy returns the number of filled slots.
func (t *JumpTable) Occupancy() int { return t.filled }

// Density returns the filled fraction of the ℓ×v grid — the d quantity
// in the paper's jump-table density test (§3.1).
func (t *JumpTable) Density() float64 {
	return float64(t.filled) / float64(id.Digits*id.Base)
}

// Peers returns every table occupant, row-major. The slice is fresh.
func (t *JumpTable) Peers() []id.ID {
	return t.AppendPeers(make([]id.ID, 0, t.filled))
}

// AppendPeers appends every table occupant to out, row-major, and
// returns the extended slice — the allocation-free variant of Peers.
func (t *JumpTable) AppendPeers(out []id.ID) []id.ID {
	for row := 0; row < id.Digits; row++ {
		for col := byte(0); col < id.Base; col++ {
			if t.present[row][col] {
				out = append(out, t.entries[row][col])
			}
		}
	}
	return out
}

// NextHop returns the jump-table hop toward target: the occupant of the
// slot whose row is the shared-prefix length and whose column is
// target's next digit. The boolean is false when that slot is empty.
func (t *JumpTable) NextHop(target id.ID) (id.ID, bool) {
	row := id.CommonPrefixLen(t.owner, target)
	if row >= id.Digits {
		return id.ID{}, false // target is the owner
	}
	return t.Slot(row, target.Digit(row))
}

// Validate checks every occupant against its slot's prefix constraint;
// a table that fails is structurally corrupt (or fraudulently built).
func (t *JumpTable) Validate() error {
	for row := 0; row < id.Digits; row++ {
		for col := byte(0); col < id.Base; col++ {
			if !t.present[row][col] {
				continue
			}
			peer := t.entries[row][col]
			wantRow, wantCol, err := t.slotFor(peer)
			if err != nil {
				return fmt.Errorf("overlay: slot (%d,%d): %w", row, col, err)
			}
			if wantRow != row || wantCol != col {
				return fmt.Errorf("overlay: peer %s in slot (%d,%d) belongs in (%d,%d)",
					peer.Short(), row, col, wantRow, wantCol)
			}
		}
	}
	return nil
}
