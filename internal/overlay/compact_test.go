package overlay

import (
	"math/rand/v2"
	"sort"
	"testing"

	"concilium/internal/id"
)

// buildBoth constructs the legacy per-node states and the compact core
// over the same membership, with identical per-node rng substreams, so
// every structural comparison is exact.
func buildBoth(t *testing.T, n int, seed uint64) (map[id.ID]*RoutingState, *Ring, *Compact) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 0))
	members := make([]id.ID, n)
	for i := range members {
		members[i] = id.Random(rng)
	}
	ring, err := NewRing(members)
	if err != nil {
		t.Fatal(err)
	}
	legacy := make(map[id.ID]*RoutingState, n)
	for i, x := range ring.Members() {
		st, err := BuildRoutingState(x, ring, rand.New(rand.NewPCG(seed, uint64(2*i+1))))
		if err != nil {
			t.Fatal(err)
		}
		legacy[x] = st
	}
	c, err := NewCompact(members, DefaultLeafSetPerSide)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.Size(); i++ {
		c.FillNode(uint32(i), rand.New(rand.NewPCG(seed, uint64(2*i+1))))
	}
	return legacy, ring, c
}

// compareStates checks every node's compact state against its legacy
// counterpart. exactLeafOrder toggles between exact-sequence and
// same-set leaf comparison: churn repairs converge to the same members
// but not necessarily the same insertion order.
func compareStates(t *testing.T, legacy map[id.ID]*RoutingState, c *Compact, exactLeafOrder bool) {
	t.Helper()
	for i := 0; i < c.Size(); i++ {
		self := c.ID(uint32(i))
		st := legacy[self]
		if st == nil {
			t.Fatalf("no legacy state for compact member %s", self.Short())
		}
		var leafIdx []uint32
		leafIdx = c.AppendLeafIndices(uint32(i), leafIdx)
		gotLeaves := make([]id.ID, len(leafIdx))
		for p, j := range leafIdx {
			gotLeaves[p] = c.ID(j)
		}
		wantLeaves := append([]id.ID(nil), st.Leaf.members...)
		if !exactLeafOrder {
			sort.Slice(gotLeaves, func(a, b int) bool { return id.Less(gotLeaves[a], gotLeaves[b]) })
			sort.Slice(wantLeaves, func(a, b int) bool { return id.Less(wantLeaves[a], wantLeaves[b]) })
		}
		if len(gotLeaves) != len(wantLeaves) {
			t.Fatalf("node %s: %d compact leaves, legacy %d", self.Short(), len(gotLeaves), len(wantLeaves))
		}
		for p := range gotLeaves {
			if gotLeaves[p] != wantLeaves[p] {
				t.Fatalf("node %s: leaf %d = %s, legacy %s", self.Short(), p, gotLeaves[p].Short(), wantLeaves[p].Short())
			}
		}
		for row := 0; row < id.Digits; row++ {
			for col := byte(0); col < id.Base; col++ {
				wantSec, wantOK := st.Secure.Slot(row, col)
				gotIdx, gotOK := c.SecureSlot(uint32(i), row, col)
				if gotOK != wantOK || (gotOK && c.ID(gotIdx) != wantSec) {
					t.Fatalf("node %s: secure slot (%d,%d) mismatch", self.Short(), row, col)
				}
				wantStd, wantOK := st.Standard.Slot(row, col)
				gotIdx, gotOK = c.StandardSlot(uint32(i), row, col)
				if gotOK != wantOK || (gotOK && c.ID(gotIdx) != wantStd) {
					t.Fatalf("node %s: standard slot (%d,%d) mismatch", self.Short(), row, col)
				}
			}
		}
		if got, want := c.SecureOccupancy(uint32(i)), st.Secure.Occupancy(); got != want {
			t.Fatalf("node %s: secure occupancy %d, legacy %d", self.Short(), got, want)
		}
		if exactLeafOrder {
			var peerIdx []uint32
			peerIdx = c.AppendRoutingPeers(uint32(i), peerIdx)
			wantPeers := st.RoutingPeers()
			if len(peerIdx) != len(wantPeers) {
				t.Fatalf("node %s: %d routing peers, legacy %d", self.Short(), len(peerIdx), len(wantPeers))
			}
			for p, j := range peerIdx {
				if c.ID(j) != wantPeers[p] {
					t.Fatalf("node %s: routing peer %d = %s, legacy %s",
						self.Short(), p, c.ID(j).Short(), wantPeers[p].Short())
				}
			}
		}
	}
}

// compareHops checks next-hop and full-route agreement for a mix of
// member and off-ring targets.
func compareHops(t *testing.T, legacy map[id.ID]*RoutingState, c *Compact, seed uint64) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 99))
	targets := make([]id.ID, 0, 64)
	for p := 0; p < 24; p++ {
		targets = append(targets, c.ID(uint32(rng.IntN(c.Size()))))
		targets = append(targets, id.Random(rng))
		near := c.ID(uint32(rng.IntN(c.Size())))
		targets = append(targets, near.WithDigit(id.Digits-1, byte(rng.IntN(id.Base))))
	}
	for trial := 0; trial < 48; trial++ {
		i := uint32(rng.IntN(c.Size()))
		self := c.ID(i)
		target := targets[rng.IntN(len(targets))]
		wantHop, wantOK := legacy[self].NextHopSecure(target)
		gotIdx, gotOK := c.NextHopSecure(i, target)
		if gotOK != wantOK || (gotOK && c.ID(gotIdx) != wantHop) {
			t.Fatalf("NextHopSecure(%s, %s): compact %v, legacy %v", self.Short(), target.Short(), gotOK, wantOK)
		}
		wantHop, wantOK = legacy[self].NextHopStandard(target)
		gotIdx, gotOK = c.NextHopStandard(i, target)
		if gotOK != wantOK || (gotOK && c.ID(gotIdx) != wantHop) {
			t.Fatalf("NextHopStandard(%s, %s) mismatch", self.Short(), target.Short())
		}
		wantRoute, wantErr := RouteSecure(legacy, self, target, 0)
		gotIdxRoute, gotErr := c.AppendRouteSecure(i, target, 0, nil)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("route %s->%s: compact err %v, legacy err %v", self.Short(), target.Short(), gotErr, wantErr)
		}
		if wantErr != nil {
			continue
		}
		if len(gotIdxRoute) != len(wantRoute) {
			t.Fatalf("route %s->%s: %d hops, legacy %d", self.Short(), target.Short(), len(gotIdxRoute), len(wantRoute))
		}
		for p, j := range gotIdxRoute {
			if c.ID(j) != wantRoute[p] {
				t.Fatalf("route %s->%s: hop %d = %s, legacy %s",
					self.Short(), target.Short(), p, c.ID(j).Short(), wantRoute[p].Short())
			}
		}
	}
}

func TestCompactMatchesLegacyBuild(t *testing.T) {
	t.Parallel()
	for _, n := range []int{3, 5, 17, 120} {
		legacy, _, c := buildBoth(t, n, uint64(1000+n))
		compareStates(t, legacy, c, true)
		compareHops(t, legacy, c, uint64(n))
	}
}

func TestCompactMatchesLegacyChurn(t *testing.T) {
	t.Parallel()
	const seed = uint64(77)
	legacy, ring, c := buildBoth(t, 90, seed)

	legacyRng := rand.New(rand.NewPCG(seed, 501))
	compactRng := rand.New(rand.NewPCG(seed, 501))
	idRng := rand.New(rand.NewPCG(seed, 502))
	pick := rand.New(rand.NewPCG(seed, 503))

	for step := 0; step < 10; step++ {
		if step%3 == 2 {
			// Join a fresh identifier.
			peer := id.Random(idRng)
			if ring.Contains(peer) {
				continue
			}
			grown, err := ring.WithMember(peer)
			if err != nil {
				t.Fatal(err)
			}
			ring = grown
			st, err := BuildRoutingState(peer, ring, legacyRng)
			if err != nil {
				t.Fatal(err)
			}
			for _, x := range ring.Members() {
				if x == peer {
					continue
				}
				if err := legacy[x].ApplyJoin(peer); err != nil {
					t.Fatal(err)
				}
			}
			legacy[peer] = st
			if _, err := c.ApplyJoin(peer, compactRng); err != nil {
				t.Fatal(err)
			}
		} else {
			// Depart a random member.
			peer := ring.Members()[pick.IntN(ring.Size())]
			shrunk, err := ring.Without(map[id.ID]bool{peer: true})
			if err != nil {
				t.Fatal(err)
			}
			ring = shrunk
			delete(legacy, peer)
			for _, x := range ring.Members() {
				if err := legacy[x].ApplyDeparture(peer, ring, legacyRng); err != nil {
					t.Fatal(err)
				}
			}
			if err := c.ApplyDeparture(peer, compactRng); err != nil {
				t.Fatal(err)
			}
		}
		if c.Size() != ring.Size() {
			t.Fatalf("step %d: compact size %d, ring %d", step, c.Size(), ring.Size())
		}
		compareStates(t, legacy, c, false)
	}
	compareHops(t, legacy, c, seed)
}

func TestDenseRowsFor(t *testing.T) {
	t.Parallel()
	cases := []struct{ n, want int }{
		{1, 1}, {2, 1}, {16, 1}, {17, 2}, {256, 2}, {257, 3},
		{1000, 3}, {20000, 4}, {100000, 5}, {1000000, 5}, {1048576, 5}, {1048577, 6},
	}
	for _, tc := range cases {
		if got := denseRowsFor(tc.n); got != tc.want {
			t.Errorf("denseRowsFor(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestCompactFootprintSmall(t *testing.T) {
	t.Parallel()
	_, _, c := buildBoth(t, 120, 9)
	perNode := c.Footprint() / int64(c.Size())
	// Two tables at denseRows(120)=2 dense rows of 16 uint32 slots plus
	// sparse tails and the 16-byte identifier: should be well under 1KB
	// per node, where the legacy representation spends ~41KB.
	if perNode <= 0 || perNode > 1024 {
		t.Fatalf("compact footprint %d bytes/node, want (0, 1024]", perNode)
	}
}
