package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than
// two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-th percentile (p in [0, 100]) of xs using
// linear interpolation between closest ranks. It copies xs rather than
// sorting the caller's slice.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: percentile of empty slice")
	}
	if p < 0 || p > 100 || math.IsNaN(p) {
		return 0, fmt.Errorf("stats: percentile %v out of [0,100]", p)
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	if len(cp) == 1 {
		return cp[0], nil
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return cp[lo], nil
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac, nil
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi). Values outside
// the range clamp into the first or last bin; the experiment harness uses
// it to build the blame PDFs of Figure 5.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram needs positive bin count, got %d", bins)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: histogram range [%v, %v) empty", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	bin := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if bin < 0 {
		bin = 0
	}
	if bin >= len(h.Counts) {
		bin = len(h.Counts) - 1
	}
	h.Counts[bin]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// Density returns the normalized bin frequencies (summing to 1), or all
// zeros if nothing has been recorded.
func (h *Histogram) Density() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// MassAbove returns the fraction of observations with value >= x — the
// quantity behind the paper's "guilty verdict if blame >= threshold"
// rates in §4.3.
func (h *Histogram) MassAbove(x float64) float64 {
	if h.total == 0 {
		return 0
	}
	var n int
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		if h.Lo+float64(i)*w >= x {
			n += c
		}
	}
	return float64(n) / float64(h.total)
}
