package stats

import (
	"math"
	"testing"
)

// Edge cases for the Poisson binomial: empty input, degenerate
// probability vectors, and single-trial distributions. These are the
// boundaries the occupancy cache in internal/core leans on.

func TestPoissonBinomialEmptyInput(t *testing.T) {
	t.Parallel()
	if _, err := NewPoissonBinomial(nil); err == nil {
		t.Error("nil probability vector should be rejected")
	}
	if _, err := NewPoissonBinomial([]float64{}); err == nil {
		t.Error("empty probability vector should be rejected")
	}
}

func TestPoissonBinomialAllZero(t *testing.T) {
	t.Parallel()
	pb, err := NewPoissonBinomial([]float64{0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := pb.Mean(); got != 0 {
		t.Errorf("mean = %v, want 0", got)
	}
	if got := pb.Variance(); got != 0 {
		t.Errorf("variance = %v, want 0", got)
	}
	pmf := pb.ExactPMF()
	if pmf[0] != 1 {
		t.Errorf("P(0 successes) = %v, want 1", pmf[0])
	}
	for k := 1; k < len(pmf); k++ {
		if pmf[k] != 0 {
			t.Errorf("P(%d successes) = %v, want 0", k, pmf[k])
		}
	}
	if _, err := pb.NormalApprox(); err == nil {
		t.Error("zero-variance distribution should refuse a normal approximation")
	}
	if got := pb.Sample(constRand{}); got != 0 {
		t.Errorf("sample = %d, want 0", got)
	}
}

func TestPoissonBinomialAllOne(t *testing.T) {
	t.Parallel()
	pb, err := NewPoissonBinomial([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := pb.Mean(); got != 3 {
		t.Errorf("mean = %v, want 3", got)
	}
	if got := pb.Variance(); got != 0 {
		t.Errorf("variance = %v, want 0", got)
	}
	pmf := pb.ExactPMF()
	if pmf[3] != 1 {
		t.Errorf("P(3 successes) = %v, want 1", pmf[3])
	}
	for k := 0; k < 3; k++ {
		if pmf[k] != 0 {
			t.Errorf("P(%d successes) = %v, want 0", k, pmf[k])
		}
	}
	if _, err := pb.NormalApprox(); err == nil {
		t.Error("zero-variance distribution should refuse a normal approximation")
	}
	if got := pb.Sample(constRand{}); got != 3 {
		t.Errorf("sample = %d, want 3", got)
	}
}

func TestPoissonBinomialSingleTrial(t *testing.T) {
	t.Parallel()
	const p = 0.3
	pb, err := NewPoissonBinomial([]float64{p})
	if err != nil {
		t.Fatal(err)
	}
	if pb.N() != 1 {
		t.Fatalf("N = %d, want 1", pb.N())
	}
	if got := pb.Mean(); got != p {
		t.Errorf("mean = %v, want %v", got, p)
	}
	if got, want := pb.Variance(), p*(1-p); math.Abs(got-want) > 1e-15 {
		t.Errorf("variance = %v, want %v", got, want)
	}
	pmf := pb.ExactPMF()
	if len(pmf) != 2 {
		t.Fatalf("pmf length = %d, want 2", len(pmf))
	}
	if math.Abs(pmf[0]-(1-p)) > 1e-15 || math.Abs(pmf[1]-p) > 1e-15 {
		t.Errorf("pmf = %v, want [%v %v]", pmf, 1-p, p)
	}
	mu, sigma2 := pb.PaperMoments()
	if mu != p || sigma2 != 0 {
		t.Errorf("paper moments = (%v, %v), want (%v, 0)", mu, sigma2, p)
	}
}

// constRand returns a fixed 0.5 for Float64 so samples of degenerate
// distributions are exact: p=0 never fires, p=1 always does.
type constRand struct{}

func (constRand) Float64() float64 { return 0.5 }
func (constRand) Uint64() uint64   { return 1 << 63 }
func (constRand) IntN(n int) int   { return n / 2 }
