package stats

import (
	"fmt"
	"math"
)

// Beta is a Beta(Alpha, Beta) distribution on [0, 1]. The simulator uses
// Beta(0.9, 0.6) to pick the depth of the IP link that fails along a
// randomly chosen overlay path, biasing failures toward the edge of the
// network as the paper's methodology specifies (§4.2).
type Beta struct {
	Alpha float64
	Beta  float64
}

// NewBeta validates the shape parameters.
func NewBeta(alpha, beta float64) (Beta, error) {
	if alpha <= 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return Beta{}, fmt.Errorf("stats: beta alpha %v must be positive", alpha)
	}
	if beta <= 0 || math.IsNaN(beta) || math.IsInf(beta, 0) {
		return Beta{}, fmt.Errorf("stats: beta beta %v must be positive", beta)
	}
	return Beta{Alpha: alpha, Beta: beta}, nil
}

// Mean returns α / (α + β).
func (b Beta) Mean() float64 { return b.Alpha / (b.Alpha + b.Beta) }

// Variance returns αβ / ((α+β)²(α+β+1)).
func (b Beta) Variance() float64 {
	s := b.Alpha + b.Beta
	return b.Alpha * b.Beta / (s * s * (s + 1))
}

// Sample draws one Beta variate as X/(X+Y) with X ~ Gamma(α), Y ~ Gamma(β).
func (b Beta) Sample(r Rand) float64 {
	x := sampleGamma(r, b.Alpha)
	y := sampleGamma(r, b.Beta)
	if x+y == 0 {
		// Vanishingly rare underflow with small shapes; resolve to the mean.
		return b.Mean()
	}
	return x / (x + y)
}

// sampleGamma draws from Gamma(shape, 1) using Marsaglia & Tsang's
// squeeze method, with the standard U^{1/shape} boost for shape < 1.
func sampleGamma(r Rand, shape float64) float64 {
	if shape < 1 {
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return sampleGamma(r, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	std := Normal{Mu: 0, Sigma: 1}
	for {
		x := std.Sample(r)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
