package stats

import (
	"fmt"
	"math"
)

// Binomial is a binomial distribution with N trials and success
// probability P. Concilium's accusation window is binomial: each of the
// last w verdicts is guilty independently with probability p_good or
// p_faulty, and formal-accusation error rates are its tails (§4.3).
type Binomial struct {
	N int
	P float64
}

// NewBinomial validates the parameters.
func NewBinomial(n int, p float64) (Binomial, error) {
	if n < 0 {
		return Binomial{}, fmt.Errorf("stats: binomial trials %d negative", n)
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		return Binomial{}, fmt.Errorf("stats: binomial probability %v out of [0,1]", p)
	}
	return Binomial{N: n, P: p}, nil
}

// logChoose returns log C(n, k) via log-gamma, stable for large n.
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln1, _ := math.Lgamma(float64(n) + 1)
	lk, _ := math.Lgamma(float64(k) + 1)
	lnk, _ := math.Lgamma(float64(n-k) + 1)
	return ln1 - lk - lnk
}

// PMF returns Pr(X == k).
func (b Binomial) PMF(k int) float64 {
	if k < 0 || k > b.N {
		return 0
	}
	switch b.P {
	case 0:
		if k == 0 {
			return 1
		}
		return 0
	case 1:
		if k == b.N {
			return 1
		}
		return 0
	}
	lp := logChoose(b.N, k) +
		float64(k)*math.Log(b.P) +
		float64(b.N-k)*math.Log(1-b.P)
	return math.Exp(lp)
}

// UpperTail returns Pr(X >= m): the paper's false-positive expression
// Σ_{k=m}^{w} C(w,k) p^k (1−p)^{w−k}.
func (b Binomial) UpperTail(m int) float64 {
	if m <= 0 {
		return 1
	}
	if m > b.N {
		return 0
	}
	var s float64
	for k := m; k <= b.N; k++ {
		s += b.PMF(k)
	}
	if s > 1 {
		s = 1
	}
	return s
}

// LowerTail returns Pr(X < m): the paper's false-negative expression
// Σ_{k=0}^{m−1} C(w,k) p^k (1−p)^{w−k}.
func (b Binomial) LowerTail(m int) float64 {
	if m <= 0 {
		return 0
	}
	if m > b.N {
		return 1
	}
	var s float64
	for k := 0; k < m; k++ {
		s += b.PMF(k)
	}
	if s > 1 {
		s = 1
	}
	return s
}

// Sample draws one binomial variate by direct simulation. The window
// sizes involved (w = 100) make O(N) sampling plenty fast.
func (b Binomial) Sample(r Rand) int {
	var k int
	for i := 0; i < b.N; i++ {
		if r.Float64() < b.P {
			k++
		}
	}
	return k
}
