package stats

import (
	"fmt"
	"math"
	"sort"
)

// KolmogorovSmirnov returns the one-sample KS statistic: the maximum
// absolute gap between the sample's empirical CDF and the reference
// CDF. The occupancy experiments use it to quantify how well the
// paper's normal approximation fits simulated jump-table occupancy
// (Figure 1's claim), instead of eyeballing means.
func KolmogorovSmirnov(sample []float64, cdf func(float64) float64) (float64, error) {
	if len(sample) == 0 {
		return 0, fmt.Errorf("stats: KS statistic of empty sample")
	}
	if cdf == nil {
		return 0, fmt.Errorf("stats: KS statistic needs a reference CDF")
	}
	xs := make([]float64, len(sample))
	copy(xs, sample)
	sort.Float64s(xs)
	n := float64(len(xs))
	var d float64
	for i, x := range xs {
		f := cdf(x)
		if f < 0 || f > 1 || math.IsNaN(f) {
			return 0, fmt.Errorf("stats: reference CDF returned %v at %v", f, x)
		}
		// Compare against the empirical CDF just before and at x.
		lo := float64(i) / n
		hi := float64(i+1) / n
		if gap := math.Abs(f - lo); gap > d {
			d = gap
		}
		if gap := math.Abs(f - hi); gap > d {
			d = gap
		}
	}
	return d, nil
}

// KSCriticalValue returns the approximate critical D for the one-sample
// KS test at the given significance level (alpha in {0.10, 0.05, 0.01})
// and sample size n, using the standard asymptotic c(α)/√n form.
func KSCriticalValue(n int, alpha float64) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("stats: KS critical value needs positive n")
	}
	var c float64
	switch alpha {
	case 0.10:
		c = 1.224
	case 0.05:
		c = 1.358
	case 0.01:
		c = 1.628
	default:
		return 0, fmt.Errorf("stats: unsupported KS significance %v (use 0.10, 0.05, or 0.01)", alpha)
	}
	return c / math.Sqrt(float64(n)), nil
}
