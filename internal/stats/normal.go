// Package stats provides the probability machinery Concilium's analytics
// depend on: the normal distribution used to approximate jump-table
// occupancy (§3.1), the Poisson binomial that occupancy actually follows,
// the binomial tails behind accusation-window error rates (§4.3), the
// Beta sampler driving the edge-biased link-failure model (§4.2), and
// plain summary statistics for the experiment harness.
//
// All samplers take an explicit random source so experiments are
// reproducible; nothing in the package touches global state.
package stats

import (
	"fmt"
	"math"
)

// Normal is a normal (Gaussian) distribution with mean Mu and standard
// deviation Sigma.
type Normal struct {
	Mu    float64
	Sigma float64
}

// NewNormal returns a Normal, rejecting non-positive or non-finite sigma.
func NewNormal(mu, sigma float64) (Normal, error) {
	if sigma <= 0 || math.IsNaN(sigma) || math.IsInf(sigma, 0) {
		return Normal{}, fmt.Errorf("stats: invalid sigma %v", sigma)
	}
	if math.IsNaN(mu) || math.IsInf(mu, 0) {
		return Normal{}, fmt.Errorf("stats: invalid mu %v", mu)
	}
	return Normal{Mu: mu, Sigma: sigma}, nil
}

// PDF evaluates the density at x.
func (n Normal) PDF(x float64) float64 {
	z := (x - n.Mu) / n.Sigma
	return math.Exp(-0.5*z*z) / (n.Sigma * math.Sqrt(2*math.Pi))
}

// CDF evaluates the cumulative distribution at x: Pr(X <= x).
func (n Normal) CDF(x float64) float64 {
	z := (x - n.Mu) / (n.Sigma * math.Sqrt2)
	return 0.5 * math.Erfc(-z)
}

// Survival evaluates Pr(X > x), computed to preserve precision in the
// upper tail.
func (n Normal) Survival(x float64) float64 {
	z := (x - n.Mu) / (n.Sigma * math.Sqrt2)
	return 0.5 * math.Erfc(z)
}

// PointMass approximates Pr(X == k) for an integer-valued variable being
// modelled by this normal, using the continuity correction
// φ(k+1/2) − φ(k−1/2) exactly as the paper's density-test equations do.
func (n Normal) PointMass(k float64) float64 {
	return n.CDF(k+0.5) - n.CDF(k-0.5)
}

// Quantile returns the x with CDF(x) == p, for p in (0, 1). It inverts
// the CDF with bisection; accuracy is ~1e-12 relative to sigma, which is
// far finer than anything the experiments need.
func (n Normal) Quantile(p float64) (float64, error) {
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("stats: quantile probability %v out of (0,1)", p)
	}
	lo, hi := n.Mu-40*n.Sigma, n.Mu+40*n.Sigma
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if n.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// Sample draws one variate using the Box-Muller transform.
func (n Normal) Sample(r Rand) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return n.Mu + n.Sigma*z
}

// Rand is the random source the samplers consume. *math/rand/v2.Rand
// satisfies it.
type Rand interface {
	Float64() float64
	Uint64() uint64
	IntN(n int) int
}
