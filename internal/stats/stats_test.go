package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func testRand() *rand.Rand { return rand.New(rand.NewPCG(42, 17)) }

func TestNormalCDFKnownValues(t *testing.T) {
	t.Parallel()
	n := Normal{Mu: 0, Sigma: 1}
	tests := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{2, 0.9772498680518208},
		{-3, 0.0013498980316300933},
	}
	for _, tc := range tests {
		if got := n.CDF(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("CDF(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestNormalPDFIntegratesToOne(t *testing.T) {
	t.Parallel()
	n := Normal{Mu: 3, Sigma: 2}
	var sum float64
	const dx = 0.001
	for x := -20.0; x <= 26; x += dx {
		sum += n.PDF(x) * dx
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Errorf("PDF integrates to %v, want 1", sum)
	}
}

func TestNormalSurvivalComplement(t *testing.T) {
	t.Parallel()
	n := Normal{Mu: -1, Sigma: 0.5}
	for _, x := range []float64{-3, -1, 0, 2.5} {
		if got := n.CDF(x) + n.Survival(x); math.Abs(got-1) > 1e-12 {
			t.Errorf("CDF+Survival at %v = %v", x, got)
		}
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	t.Parallel()
	n := Normal{Mu: 5, Sigma: 3}
	for _, p := range []float64{0.01, 0.25, 0.5, 0.9, 0.999} {
		x, err := n.Quantile(p)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", p, err)
		}
		if got := n.CDF(x); math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	if _, err := n.Quantile(0); err == nil {
		t.Error("Quantile(0) should fail")
	}
	if _, err := n.Quantile(1.5); err == nil {
		t.Error("Quantile(1.5) should fail")
	}
}

func TestNewNormalRejectsBadSigma(t *testing.T) {
	t.Parallel()
	for _, sigma := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewNormal(0, sigma); err == nil {
			t.Errorf("NewNormal(0, %v) should fail", sigma)
		}
	}
	if _, err := NewNormal(math.NaN(), 1); err == nil {
		t.Error("NewNormal(NaN, 1) should fail")
	}
}

func TestNormalSampleMoments(t *testing.T) {
	t.Parallel()
	n := Normal{Mu: 10, Sigma: 2}
	r := testRand()
	xs := make([]float64, 200000)
	for i := range xs {
		xs[i] = n.Sample(r)
	}
	if m := Mean(xs); math.Abs(m-10) > 0.05 {
		t.Errorf("sample mean %v, want ~10", m)
	}
	if sd := StdDev(xs); math.Abs(sd-2) > 0.05 {
		t.Errorf("sample stddev %v, want ~2", sd)
	}
}

func TestPoissonBinomialMoments(t *testing.T) {
	t.Parallel()
	probs := []float64{0.1, 0.5, 0.9, 0.3}
	pb, err := NewPoissonBinomial(probs)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := pb.Mean(), 1.8; math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	want := 0.1*0.9 + 0.5*0.5 + 0.9*0.1 + 0.3*0.7
	if got := pb.Variance(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, want)
	}
}

func TestPoissonBinomialPaperVarianceIdentity(t *testing.T) {
	t.Parallel()
	// The paper's σφ² = ℓvμ(1−μ) − ℓvσ² must equal the exact Poisson
	// binomial variance Σ p(1−p).
	r := testRand()
	probs := make([]float64, 512)
	for i := range probs {
		probs[i] = r.Float64()
	}
	pb, err := NewPoissonBinomial(probs)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := pb.NormalApprox()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(approx.Mu-pb.Mean()) > 1e-9 {
		t.Errorf("approx mean %v, exact %v", approx.Mu, pb.Mean())
	}
	if math.Abs(approx.Sigma*approx.Sigma-pb.Variance()) > 1e-9 {
		t.Errorf("approx variance %v, exact %v", approx.Sigma*approx.Sigma, pb.Variance())
	}
}

func TestPoissonBinomialExactPMF(t *testing.T) {
	t.Parallel()
	pb, err := NewPoissonBinomial([]float64{0.5, 0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	pmf := pb.ExactPMF()
	want := []float64{0.125, 0.375, 0.375, 0.125}
	for k, w := range want {
		if math.Abs(pmf[k]-w) > 1e-12 {
			t.Errorf("pmf[%d] = %v, want %v", k, pmf[k], w)
		}
	}
}

func TestPoissonBinomialPMFSumsToOne(t *testing.T) {
	t.Parallel()
	r := testRand()
	probs := make([]float64, 100)
	for i := range probs {
		probs[i] = r.Float64()
	}
	pb, err := NewPoissonBinomial(probs)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range pb.ExactPMF() {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("pmf sums to %v", sum)
	}
}

func TestPoissonBinomialNormalApproxClose(t *testing.T) {
	t.Parallel()
	// With many heterogeneous trials the normal CDF should track the
	// exact CDF closely — this is the claim behind the paper's Figure 1.
	probs := make([]float64, 400)
	r := testRand()
	for i := range probs {
		probs[i] = 0.1 + 0.8*r.Float64()
	}
	pb, err := NewPoissonBinomial(probs)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := pb.NormalApprox()
	if err != nil {
		t.Fatal(err)
	}
	pmf := pb.ExactPMF()
	var cdf float64
	for k, p := range pmf {
		cdf += p
		a := approx.CDF(float64(k) + 0.5)
		if math.Abs(a-cdf) > 0.01 {
			t.Fatalf("normal approx CDF at %d: %v vs exact %v", k, a, cdf)
		}
	}
}

func TestPoissonBinomialRejectsBadInput(t *testing.T) {
	t.Parallel()
	if _, err := NewPoissonBinomial(nil); err == nil {
		t.Error("empty trials should fail")
	}
	if _, err := NewPoissonBinomial([]float64{0.5, 1.5}); err == nil {
		t.Error("probability >1 should fail")
	}
	if _, err := NewPoissonBinomial([]float64{-0.1}); err == nil {
		t.Error("negative probability should fail")
	}
}

func TestPoissonBinomialDegenerateApprox(t *testing.T) {
	t.Parallel()
	pb, err := NewPoissonBinomial([]float64{0, 1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pb.NormalApprox(); err == nil {
		t.Error("degenerate distribution should refuse a normal approximation")
	}
}

func TestBinomialPMFMatchesHandComputed(t *testing.T) {
	t.Parallel()
	b, err := NewBinomial(4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.0625, 0.25, 0.375, 0.25, 0.0625}
	for k, w := range want {
		if got := b.PMF(k); math.Abs(got-w) > 1e-12 {
			t.Errorf("PMF(%d) = %v, want %v", k, got, w)
		}
	}
	if b.PMF(-1) != 0 || b.PMF(5) != 0 {
		t.Error("out-of-range PMF should be 0")
	}
}

func TestBinomialEdgeProbabilities(t *testing.T) {
	t.Parallel()
	b0, _ := NewBinomial(10, 0)
	if b0.PMF(0) != 1 || b0.PMF(1) != 0 {
		t.Error("p=0 should concentrate at 0")
	}
	b1, _ := NewBinomial(10, 1)
	if b1.PMF(10) != 1 || b1.PMF(9) != 0 {
		t.Error("p=1 should concentrate at N")
	}
}

func TestBinomialTailsComplementary(t *testing.T) {
	t.Parallel()
	b, err := NewBinomial(100, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{0, 1, 30, 70, 100, 101} {
		up, lo := b.UpperTail(m), b.LowerTail(m)
		if math.Abs(up+lo-1) > 1e-9 {
			t.Errorf("m=%d: UpperTail+LowerTail = %v", m, up+lo)
		}
	}
}

func TestBinomialPaperWindowNumbers(t *testing.T) {
	t.Parallel()
	// Sanity anchor from §4.3's structure: with w=100 and small p_good,
	// raising m drives the false positive (upper tail) down monotonically.
	b, err := NewBinomial(100, 0.018)
	if err != nil {
		t.Fatal(err)
	}
	prev := 1.0
	for m := 1; m <= 20; m++ {
		cur := b.UpperTail(m)
		if cur > prev {
			t.Fatalf("upper tail not monotone at m=%d", m)
		}
		prev = cur
	}
	if got := b.UpperTail(6); got > 0.01 {
		t.Errorf("w=100, p=0.018, m=6: FP %v, expected <1%%", got)
	}
	// And a faulty node with p=0.938 almost never stays under m=6.
	bf, _ := NewBinomial(100, 0.938)
	if got := bf.LowerTail(6); got > 1e-20 {
		t.Errorf("faulty lower tail %v unexpectedly large", got)
	}
}

func TestBinomialSampleMean(t *testing.T) {
	t.Parallel()
	b, _ := NewBinomial(50, 0.4)
	r := testRand()
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(b.Sample(r))
	}
	if m := sum / n; math.Abs(m-20) > 0.3 {
		t.Errorf("sample mean %v, want ~20", m)
	}
}

func TestNewBinomialRejectsBadInput(t *testing.T) {
	t.Parallel()
	if _, err := NewBinomial(-1, 0.5); err == nil {
		t.Error("negative trials should fail")
	}
	if _, err := NewBinomial(10, 1.1); err == nil {
		t.Error("p>1 should fail")
	}
	if _, err := NewBinomial(10, math.NaN()); err == nil {
		t.Error("NaN p should fail")
	}
}

func TestBetaMomentsMatchTheory(t *testing.T) {
	t.Parallel()
	// The paper's failure-depth distribution.
	b, err := NewBeta(0.9, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	wantMean := 0.9 / 1.5
	if math.Abs(b.Mean()-wantMean) > 1e-12 {
		t.Errorf("Mean = %v, want %v", b.Mean(), wantMean)
	}
	r := testRand()
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = b.Sample(r)
		if xs[i] < 0 || xs[i] > 1 {
			t.Fatalf("beta sample %v out of [0,1]", xs[i])
		}
	}
	if m := Mean(xs); math.Abs(m-wantMean) > 0.01 {
		t.Errorf("sample mean %v, want ~%v", m, wantMean)
	}
	if v := Variance(xs); math.Abs(v-b.Variance()) > 0.01 {
		t.Errorf("sample variance %v, want ~%v", v, b.Variance())
	}
}

func TestBetaShapeAboveOne(t *testing.T) {
	t.Parallel()
	b, err := NewBeta(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := testRand()
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = b.Sample(r)
	}
	if m := Mean(xs); math.Abs(m-5.0/7.0) > 0.01 {
		t.Errorf("sample mean %v, want ~%v", m, 5.0/7.0)
	}
}

func TestNewBetaRejectsBadInput(t *testing.T) {
	t.Parallel()
	for _, bad := range [][2]float64{{0, 1}, {1, 0}, {-1, 1}, {math.NaN(), 1}, {1, math.Inf(1)}} {
		if _, err := NewBeta(bad[0], bad[1]); err == nil {
			t.Errorf("NewBeta(%v, %v) should fail", bad[0], bad[1])
		}
	}
}

func TestSummaryStatistics(t *testing.T) {
	t.Parallel()
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Variance([]float64{1}); got != 0 {
		t.Errorf("Variance of singleton = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	t.Parallel()
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2},
	}
	for _, tc := range tests {
		got, err := Percentile(xs, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("empty percentile should fail")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("out-of-range percentile should fail")
	}
	// Percentile must not reorder the caller's slice.
	ys := []float64{3, 1, 2}
	if _, err := Percentile(ys, 50); err != nil {
		t.Fatal(err)
	}
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestHistogram(t *testing.T) {
	t.Parallel()
	h, err := NewHistogram(0, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.05, 0.15, 0.15, 0.95, -1, 2} {
		h.Add(x)
	}
	if h.Total() != 6 {
		t.Errorf("Total = %d, want 6", h.Total())
	}
	if h.Counts[0] != 2 { // 0.05 and clamped -1
		t.Errorf("bin 0 count = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 2 {
		t.Errorf("bin 1 count = %d, want 2", h.Counts[1])
	}
	if h.Counts[9] != 2 { // 0.95 and clamped 2
		t.Errorf("bin 9 count = %d, want 2", h.Counts[9])
	}
	var sum float64
	for _, d := range h.Density() {
		sum += d
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("density sums to %v", sum)
	}
	if got := h.BinCenter(0); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("BinCenter(0) = %v", got)
	}
	if got := h.MassAbove(0.9); math.Abs(got-2.0/6.0) > 1e-12 {
		t.Errorf("MassAbove(0.9) = %v", got)
	}
}

func TestNewHistogramRejectsBadInput(t *testing.T) {
	t.Parallel()
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("zero bins should fail")
	}
	if _, err := NewHistogram(1, 1, 5); err == nil {
		t.Error("empty range should fail")
	}
}

// Property: binomial tails are proper probabilities and monotone in m.
func TestPropBinomialTails(t *testing.T) {
	t.Parallel()
	f := func(nRaw uint8, pRaw uint16) bool {
		n := int(nRaw%100) + 1
		p := float64(pRaw) / 65535
		b, err := NewBinomial(n, p)
		if err != nil {
			return false
		}
		prev := 1.0
		for m := 0; m <= n+1; m++ {
			u := b.UpperTail(m)
			if u < -1e-12 || u > 1+1e-12 || u > prev+1e-12 {
				return false
			}
			prev = u
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Poisson binomial exact mean matches pmf-weighted mean.
func TestPropPoissonBinomialMeanConsistent(t *testing.T) {
	t.Parallel()
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 64 {
			return true
		}
		probs := make([]float64, len(raw))
		for i, v := range raw {
			probs[i] = float64(v) / 65535
		}
		pb, err := NewPoissonBinomial(probs)
		if err != nil {
			return false
		}
		var m float64
		for k, p := range pb.ExactPMF() {
			m += float64(k) * p
		}
		return math.Abs(m-pb.Mean()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestKolmogorovSmirnovDetectsFitAndMisfit(t *testing.T) {
	t.Parallel()
	n := Normal{Mu: 0, Sigma: 1}
	r := testRand()
	sample := make([]float64, 2000)
	for i := range sample {
		sample[i] = n.Sample(r)
	}
	d, err := KolmogorovSmirnov(sample, n.CDF)
	if err != nil {
		t.Fatal(err)
	}
	crit, err := KSCriticalValue(len(sample), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if d > crit {
		t.Errorf("normal sample rejected against its own CDF: D=%v crit=%v", d, crit)
	}
	// The same sample against a shifted reference must be rejected.
	shifted := Normal{Mu: 1, Sigma: 1}
	d, err = KolmogorovSmirnov(sample, shifted.CDF)
	if err != nil {
		t.Fatal(err)
	}
	if d <= crit {
		t.Errorf("shifted reference not rejected: D=%v crit=%v", d, crit)
	}
}

func TestKolmogorovSmirnovValidation(t *testing.T) {
	t.Parallel()
	n := Normal{Mu: 0, Sigma: 1}
	if _, err := KolmogorovSmirnov(nil, n.CDF); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := KolmogorovSmirnov([]float64{1}, nil); err == nil {
		t.Error("nil CDF accepted")
	}
	bad := func(float64) float64 { return 2 }
	if _, err := KolmogorovSmirnov([]float64{1}, bad); err == nil {
		t.Error("invalid CDF accepted")
	}
	if _, err := KSCriticalValue(0, 0.05); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := KSCriticalValue(10, 0.5); err == nil {
		t.Error("unsupported alpha accepted")
	}
}

func TestKolmogorovSmirnovDoesNotMutateSample(t *testing.T) {
	t.Parallel()
	n := Normal{Mu: 0, Sigma: 1}
	xs := []float64{3, 1, 2}
	if _, err := KolmogorovSmirnov(xs, n.CDF); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("KS statistic reordered the caller's sample")
	}
}
