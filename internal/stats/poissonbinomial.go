package stats

import (
	"fmt"
	"math"
)

// PoissonBinomial is the distribution of the number of successes among
// independent Bernoulli trials with heterogeneous probabilities. Jump-table
// occupancy is exactly this distribution: slot (i, j) is filled with
// probability p_{i,j} (paper Eq. 1), and the occupied-slot count is the sum
// of those indicators (§3.1).
type PoissonBinomial struct {
	probs []float64
}

// NewPoissonBinomial builds the distribution over the given success
// probabilities. The slice is copied; each probability must lie in [0, 1].
func NewPoissonBinomial(probs []float64) (*PoissonBinomial, error) {
	if len(probs) == 0 {
		return nil, fmt.Errorf("stats: poisson binomial needs at least one trial")
	}
	cp := make([]float64, len(probs))
	for i, p := range probs {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return nil, fmt.Errorf("stats: trial %d probability %v out of [0,1]", i, p)
		}
		cp[i] = p
	}
	return &PoissonBinomial{probs: cp}, nil
}

// N returns the number of Bernoulli trials.
func (pb *PoissonBinomial) N() int { return len(pb.probs) }

// Mean returns the expected number of successes, Σ p_i.
func (pb *PoissonBinomial) Mean() float64 {
	var s float64
	for _, p := range pb.probs {
		s += p
	}
	return s
}

// Variance returns the exact variance, Σ p_i (1 − p_i).
func (pb *PoissonBinomial) Variance() float64 {
	var s float64
	for _, p := range pb.probs {
		s += p * (1 - p)
	}
	return s
}

// PaperMoments returns (μ, σ²) as defined in §3.1 of the paper: the mean
// and variance of the per-slot fill probabilities themselves,
//
//	μ = (1/n) Σ p_i        σ² = (1/n) Σ (p_i − μ)².
//
// These are the quantities the paper feeds into its normal approximation.
func (pb *PoissonBinomial) PaperMoments() (mu, sigma2 float64) {
	n := float64(len(pb.probs))
	mu = pb.Mean() / n
	for _, p := range pb.probs {
		d := p - mu
		sigma2 += d * d
	}
	sigma2 /= n
	return mu, sigma2
}

// NormalApprox returns the paper's normal approximation φ(μφ, σφ) to the
// occupancy count:
//
//	μφ  = ℓv·μ
//	σφ² = ℓv·μ(1−μ) − ℓv·σ²
//
// Algebraically σφ² equals the exact Poisson-binomial variance
// Σ p_i(1−p_i); the paper just expresses it through the per-slot moments.
func (pb *PoissonBinomial) NormalApprox() (Normal, error) {
	mu, sigma2 := pb.PaperMoments()
	n := float64(len(pb.probs))
	muPhi := n * mu
	varPhi := n*mu*(1-mu) - n*sigma2
	if varPhi <= 0 {
		// Degenerate distributions (all p ∈ {0,1}) have zero variance;
		// give the caller an explicit error rather than a broken Normal.
		return Normal{}, fmt.Errorf("stats: normal approximation degenerate (variance %v)", varPhi)
	}
	return Normal{Mu: muPhi, Sigma: math.Sqrt(varPhi)}, nil
}

// ExactPMF computes the exact probability mass function by dynamic
// programming in O(n²). It exists to validate the normal approximation
// (Figure 1's "analytic model vs reality" comparison) and for tests;
// experiments use NormalApprox, as the paper notes exact computation is
// intractable at scale.
func (pb *PoissonBinomial) ExactPMF() []float64 {
	pmf := make([]float64, len(pb.probs)+1)
	pmf[0] = 1
	for i, p := range pb.probs {
		// Iterate downward so each trial is counted once.
		for k := i + 1; k >= 1; k-- {
			pmf[k] = pmf[k]*(1-p) + pmf[k-1]*p
		}
		pmf[0] *= 1 - p
	}
	return pmf
}

// Sample draws an occupancy count by flipping each Bernoulli trial.
func (pb *PoissonBinomial) Sample(r Rand) int {
	var k int
	for _, p := range pb.probs {
		if r.Float64() < p {
			k++
		}
	}
	return k
}
