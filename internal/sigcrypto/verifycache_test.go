package sigcrypto

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func seedPair(b byte) KeyPair {
	var seed [32]byte
	seed[0] = b
	return KeyPairFromSeed(seed)
}

func resetCache(t *testing.T) {
	t.Helper()
	SetVerifyCacheCapacity(DefaultVerifyCacheSize)
	ResetVerifyCache()
	t.Cleanup(func() {
		SetVerifyCacheCapacity(DefaultVerifyCacheSize)
		ResetVerifyCache()
	})
}

func TestVerifyCacheHit(t *testing.T) {
	resetCache(t)
	kp := seedPair(1)
	msg := []byte("the steward attests")
	sig := kp.Sign(msg)

	if !Verify(kp.Public, msg, sig) {
		t.Fatal("valid signature rejected")
	}
	hits, misses, size := VerifyCacheStats()
	if hits != 0 || misses != 1 || size != 1 {
		t.Fatalf("after first verify: hits=%d misses=%d size=%d, want 0/1/1", hits, misses, size)
	}
	for i := 0; i < 5; i++ {
		if !Verify(kp.Public, msg, sig) {
			t.Fatal("cached valid signature rejected")
		}
	}
	hits, misses, size = VerifyCacheStats()
	if hits != 5 || misses != 1 || size != 1 {
		t.Fatalf("after cached verifies: hits=%d misses=%d size=%d, want 5/1/1", hits, misses, size)
	}
}

func TestVerifyCacheNegativeOutcome(t *testing.T) {
	resetCache(t)
	kp := seedPair(2)
	msg := []byte("forged")
	sig := kp.Sign(msg)
	sig[0] ^= 0xff

	for i := 0; i < 3; i++ {
		if Verify(kp.Public, msg, sig) {
			t.Fatal("corrupted signature accepted")
		}
	}
	hits, misses, _ := VerifyCacheStats()
	if misses != 1 || hits != 2 {
		t.Fatalf("negative outcome not cached: hits=%d misses=%d", hits, misses)
	}
}

func TestVerifyCacheKeySeparation(t *testing.T) {
	resetCache(t)
	kpA, kpB := seedPair(3), seedPair(4)
	msg := []byte("shared message")
	sigA := kpA.Sign(msg)

	if !Verify(kpA.Public, msg, sigA) {
		t.Fatal("valid signature rejected")
	}
	// Same msg and sig under the wrong key must not hit A's entry.
	if Verify(kpB.Public, msg, sigA) {
		t.Fatal("signature accepted under the wrong public key")
	}
	// Different message under the right key must not hit either.
	if Verify(kpA.Public, []byte("other message"), sigA) {
		t.Fatal("signature accepted for the wrong message")
	}
	_, misses, size := VerifyCacheStats()
	if misses != 3 || size != 3 {
		t.Fatalf("distinct (pub,msg,sig) tuples shared entries: misses=%d size=%d", misses, size)
	}
}

func TestVerifyCacheEviction(t *testing.T) {
	SetVerifyCacheCapacity(4)
	ResetVerifyCache()
	t.Cleanup(func() {
		SetVerifyCacheCapacity(DefaultVerifyCacheSize)
		ResetVerifyCache()
	})
	kp := seedPair(5)

	msgs := make([][]byte, 6)
	sigs := make([][]byte, 6)
	for i := range msgs {
		msgs[i] = []byte(fmt.Sprintf("message %d", i))
		sigs[i] = kp.Sign(msgs[i])
		Verify(kp.Public, msgs[i], sigs[i])
	}
	if _, _, size := VerifyCacheStats(); size != 4 {
		t.Fatalf("cache size %d exceeds capacity 4", size)
	}
	// Messages 0 and 1 were least recently used and should have been
	// evicted: verifying them again counts as misses.
	_, missesBefore, _ := VerifyCacheStats()
	Verify(kp.Public, msgs[0], sigs[0])
	Verify(kp.Public, msgs[1], sigs[1])
	if _, missesAfter, _ := VerifyCacheStats(); missesAfter != missesBefore+2 {
		t.Fatalf("LRU entries were not evicted: misses %d -> %d", missesBefore, missesAfter)
	}
	// Message 5 is most recent and must still hit.
	hitsBefore, _, _ := VerifyCacheStats()
	Verify(kp.Public, msgs[5], sigs[5])
	if hitsAfter, _, _ := VerifyCacheStats(); hitsAfter != hitsBefore+1 {
		t.Fatal("most-recent entry was evicted")
	}
}

func TestVerifyCacheLRUPromotion(t *testing.T) {
	SetVerifyCacheCapacity(2)
	ResetVerifyCache()
	t.Cleanup(func() {
		SetVerifyCacheCapacity(DefaultVerifyCacheSize)
		ResetVerifyCache()
	})
	kp := seedPair(6)
	m0, m1, m2 := []byte("m0"), []byte("m1"), []byte("m2")
	s0, s1, s2 := kp.Sign(m0), kp.Sign(m1), kp.Sign(m2)

	Verify(kp.Public, m0, s0) // cache: m0
	Verify(kp.Public, m1, s1) // cache: m1 m0
	Verify(kp.Public, m0, s0) // hit promotes m0: m0 m1
	Verify(kp.Public, m2, s2) // evicts m1: m2 m0

	hitsBefore, missesBefore, _ := VerifyCacheStats()
	Verify(kp.Public, m0, s0) // must still hit
	Verify(kp.Public, m1, s1) // must miss
	hitsAfter, missesAfter, _ := VerifyCacheStats()
	if hitsAfter != hitsBefore+1 || missesAfter != missesBefore+1 {
		t.Fatalf("promotion broken: hits %d->%d misses %d->%d",
			hitsBefore, hitsAfter, missesBefore, missesAfter)
	}
}

func TestVerifyCacheDisabled(t *testing.T) {
	SetVerifyCacheCapacity(0)
	t.Cleanup(func() {
		SetVerifyCacheCapacity(DefaultVerifyCacheSize)
		ResetVerifyCache()
	})
	kp := seedPair(7)
	msg := []byte("uncached")
	sig := kp.Sign(msg)
	for i := 0; i < 3; i++ {
		if !Verify(kp.Public, msg, sig) {
			t.Fatal("valid signature rejected with cache disabled")
		}
	}
	if hits, misses, size := VerifyCacheStats(); hits != 0 || misses != 0 || size != 0 {
		t.Fatalf("disabled cache recorded activity: hits=%d misses=%d size=%d", hits, misses, size)
	}
}

// TestVerifyCacheConcurrent hammers Verify and Authority.Issue from many
// goroutines; under -race this exercises the cache locking and the
// authority's identifier mutex.
func TestVerifyCacheConcurrent(t *testing.T) {
	resetCache(t)
	kp := seedPair(8)
	auth := NewAuthority(kp, counterSource{n: new(atomic.Uint64)})

	const goroutines = 8
	msgs := make([][]byte, 4)
	sigs := make([][]byte, 4)
	for i := range msgs {
		msgs[i] = []byte(fmt.Sprintf("concurrent %d", i))
		sigs[i] = kp.Sign(msgs[i])
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			node := seedPair(byte(100 + g))
			for i := 0; i < 50; i++ {
				if !Verify(kp.Public, msgs[i%len(msgs)], sigs[i%len(msgs)]) {
					t.Error("valid signature rejected under concurrency")
					return
				}
				cert, err := auth.Issue(fmt.Sprintf("host-%d-%d", g, i), node.Public)
				if err != nil {
					t.Errorf("issue: %v", err)
					return
				}
				if err := VerifyCertificate(kp.Public, &cert); err != nil {
					t.Errorf("verify certificate: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// counterSource is a concurrency-safe deterministic id.RandSource.
type counterSource struct{ n *atomic.Uint64 }

func (c counterSource) Uint64() uint64 {
	return c.n.Add(0x9e3779b97f4a7c15)
}
