package sigcrypto

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"concilium/internal/id"
)

func testRand() *rand.Rand { return rand.New(rand.NewPCG(7, 9)) }

func TestKeyPairSignVerify(t *testing.T) {
	t.Parallel()
	kp := KeyPairFromRand(testRand())
	msg := []byte("forward this message to Z")
	sig := kp.Sign(msg)
	if !Verify(kp.Public, msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if Verify(kp.Public, []byte("tampered"), sig) {
		t.Error("tampered message accepted")
	}
	other := KeyPairFromRand(rand.New(rand.NewPCG(1, 1)))
	if Verify(other.Public, msg, sig) {
		t.Error("wrong key accepted")
	}
	if Verify(nil, msg, sig) {
		t.Error("nil key accepted")
	}
}

func TestKeyPairFromSeedDeterministic(t *testing.T) {
	t.Parallel()
	var seed [32]byte
	seed[0] = 0xaa
	a, b := KeyPairFromSeed(seed), KeyPairFromSeed(seed)
	if !a.Public.Equal(b.Public) {
		t.Error("same seed gave different keys")
	}
}

func TestGenerateKeyPair(t *testing.T) {
	t.Parallel()
	a, err := GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	if a.Public.Equal(b.Public) {
		t.Error("two generated keys collide")
	}
}

func TestAuthorityIssueAndVerify(t *testing.T) {
	t.Parallel()
	r := testRand()
	ca := NewAuthority(KeyPairFromRand(r), r)
	node := KeyPairFromRand(r)
	cert, err := ca.Issue("10.0.0.1:9000", node.Public)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Addr != "10.0.0.1:9000" {
		t.Errorf("addr = %q", cert.Addr)
	}
	if err := VerifyCertificate(ca.PublicKey(), &cert); err != nil {
		t.Fatalf("valid certificate rejected: %v", err)
	}

	// A different authority must not validate it.
	other := NewAuthority(KeyPairFromRand(r), r)
	if err := VerifyCertificate(other.PublicKey(), &cert); err == nil {
		t.Error("foreign CA accepted certificate")
	}

	// Tampering with any bound field must invalidate the signature.
	tampered := cert
	tampered.Addr = "10.0.0.2:9000"
	if err := VerifyCertificate(ca.PublicKey(), &tampered); err == nil {
		t.Error("tampered addr accepted")
	}
	tampered = cert
	tampered.NodeID = id.MustParse("deadbeefdeadbeefdeadbeefdeadbeef")
	if err := VerifyCertificate(ca.PublicKey(), &tampered); err == nil {
		t.Error("tampered node id accepted")
	}
	if err := VerifyCertificate(ca.PublicKey(), nil); err == nil {
		t.Error("nil certificate accepted")
	}
}

func TestAuthorityAssignsDistinctRandomIDs(t *testing.T) {
	t.Parallel()
	r := testRand()
	ca := NewAuthority(KeyPairFromRand(r), r)
	node := KeyPairFromRand(r)
	seen := make(map[id.ID]struct{})
	for i := 0; i < 200; i++ {
		cert, err := ca.Issue("h", node.Public)
		if err != nil {
			t.Fatal(err)
		}
		if _, dup := seen[cert.NodeID]; dup {
			t.Fatal("authority reissued an identifier")
		}
		seen[cert.NodeID] = struct{}{}
	}
}

func TestAuthorityRejectsBadKey(t *testing.T) {
	t.Parallel()
	r := testRand()
	ca := NewAuthority(KeyPairFromRand(r), r)
	if _, err := ca.Issue("h", []byte{1, 2, 3}); err == nil {
		t.Error("short public key accepted")
	}
}

func TestTimestampRoundTrip(t *testing.T) {
	t.Parallel()
	r := testRand()
	kp := KeyPairFromRand(r)
	nid := id.Random(r)
	ts := NewTimestamp(kp, nid, 123456789)
	if err := VerifyTimestamp(kp.Public, ts); err != nil {
		t.Fatalf("valid timestamp rejected: %v", err)
	}
	forged := ts
	forged.At = 987654321
	if err := VerifyTimestamp(kp.Public, forged); err == nil {
		t.Error("forged time accepted — inflation attack would succeed")
	}
	stolen := ts
	stolen.NodeID = id.Random(r)
	if err := VerifyTimestamp(kp.Public, stolen); err == nil {
		t.Error("timestamp reassigned to another node accepted")
	}
}

func TestNonceDeterministicFromSource(t *testing.T) {
	t.Parallel()
	a := NewNonce(rand.New(rand.NewPCG(5, 5)))
	b := NewNonce(rand.New(rand.NewPCG(5, 5)))
	if a != b {
		t.Error("same source gave different nonces")
	}
	c := NewNonce(rand.New(rand.NewPCG(6, 6)))
	if a == c {
		t.Error("distinct sources collided (unlikely)")
	}
}

func TestSignedBlob(t *testing.T) {
	t.Parallel()
	r := testRand()
	kp := KeyPairFromRand(r)
	signer := id.Random(r)
	payload := []byte("tomographic snapshot bytes")
	blob := SignBlob(kp, signer, payload)
	if err := VerifyBlob(kp.Public, blob); err != nil {
		t.Fatalf("valid blob rejected: %v", err)
	}

	// The blob must hold its own copy of the payload.
	payload[0] = 'X'
	if err := VerifyBlob(kp.Public, blob); err != nil {
		t.Error("blob aliased caller's payload slice")
	}

	tampered := blob
	tampered.Payload = []byte("forged")
	if err := VerifyBlob(kp.Public, tampered); err == nil {
		t.Error("tampered payload accepted")
	}
	respun := blob
	respun.Signer = id.Random(r)
	if err := VerifyBlob(kp.Public, respun); err == nil {
		t.Error("re-attributed blob accepted")
	}
}

func BenchmarkSign(b *testing.B) {
	kp := KeyPairFromRand(testRand())
	msg := make([]byte, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = kp.Sign(msg)
	}
}

func BenchmarkVerify(b *testing.B) {
	kp := KeyPairFromRand(testRand())
	msg := make([]byte, 256)
	sig := kp.Sign(msg)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !Verify(kp.Public, msg, sig) {
			b.Fatal("verify failed")
		}
	}
}

func TestAuthorityIssueForAndClaim(t *testing.T) {
	t.Parallel()
	r := testRand()
	ca := NewAuthority(KeyPairFromRand(r), r)
	node := KeyPairFromRand(r)
	nodeID := id.Random(r)

	// IssueFor must produce a certificate indistinguishable from Issue's
	// for the same identifier: verifiable, field-for-field bound.
	cert, err := ca.IssueFor("10.0.0.1:9000", nodeID, node.Public)
	if err != nil {
		t.Fatal(err)
	}
	if cert.NodeID != nodeID || cert.Addr != "10.0.0.1:9000" {
		t.Errorf("cert fields wrong: %+v", cert)
	}
	if err := VerifyCertificate(ca.PublicKey(), &cert); err != nil {
		t.Fatalf("IssueFor certificate rejected: %v", err)
	}
	if _, err := ca.IssueFor("h", nodeID, []byte{1, 2}); err == nil {
		t.Error("short public key accepted")
	}
	// Deterministic: same inputs, same signature (parallel issuance must
	// be scheduling-independent).
	again, err := ca.IssueFor("10.0.0.1:9000", nodeID, node.Public)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cert.Signature, again.Signature) {
		t.Error("IssueFor signatures differ across calls with identical inputs")
	}

	// Claim guards the registry: first claim wins, reuse fails, and
	// Issue never reassigns a claimed identifier.
	if err := ca.Claim(nodeID); err != nil {
		t.Fatalf("first Claim: %v", err)
	}
	if err := ca.Claim(nodeID); err == nil {
		t.Error("duplicate Claim accepted")
	}
	for i := 0; i < 200; i++ {
		c, err := ca.Issue("h", node.Public)
		if err != nil {
			t.Fatal(err)
		}
		if c.NodeID == nodeID {
			t.Fatal("Issue reassigned a claimed identifier")
		}
	}
}
