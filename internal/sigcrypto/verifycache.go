package sigcrypto

import (
	"container/list"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"sync"
)

// The protocol re-verifies the same bytes constantly: a jump-table
// advert carries one certificate and one freshness timestamp per entry,
// and verifiers see the same entries from many peers; stewards re-check
// the same batch acks when replaying ledgers; accusation chains are
// re-verified by every third party they are presented to. An Ed25519
// verification costs tens of microseconds, while recognizing an
// already-verified (pub, msg, sig) triple costs one SHA-256 — so Verify
// consults a bounded LRU of past outcomes first.
//
// Correctness: Ed25519 verification is deterministic, so an outcome
// keyed by the hash of (pub, msg-hash, sig) never goes stale — both
// successes and failures are cacheable. The only invalidation is LRU
// eviction for capacity.

// DefaultVerifyCacheSize is the initial capacity (entries) of the
// process-wide verification cache. An entry is ~64 bytes.
const DefaultVerifyCacheSize = 8192

// verifyKey fingerprints one verification: SHA-256 over the public key,
// the message digest, and the signature, each length-prefixed so field
// boundaries are unambiguous.
type verifyKey [sha256.Size]byte

func makeVerifyKey(pub ed25519.PublicKey, msg, sig []byte) verifyKey {
	msgHash := sha256.Sum256(msg)
	h := sha256.New()
	var lenBuf [4]byte
	for _, field := range [][]byte{pub, msgHash[:], sig} {
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(field)))
		h.Write(lenBuf[:])
		h.Write(field)
	}
	var k verifyKey
	h.Sum(k[:0])
	return k
}

// verifyCache is a mutex-guarded LRU of verification outcomes.
type verifyCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used
	entries  map[verifyKey]*list.Element
	hits     uint64
	misses   uint64
}

type verifyEntry struct {
	key verifyKey
	ok  bool
}

func newVerifyCache(capacity int) *verifyCache {
	return &verifyCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[verifyKey]*list.Element),
	}
}

// lookup returns (outcome, true) on a hit and promotes the entry.
func (c *verifyCache) lookup(k verifyKey) (ok, hit bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.entries[k]
	if !found {
		c.misses++
		return false, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*verifyEntry).ok, true
}

// store records an outcome, evicting the least recently used entry at
// capacity.
func (c *verifyCache) store(k verifyKey, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, found := c.entries[k]; found {
		c.order.MoveToFront(el)
		el.Value.(*verifyEntry).ok = ok
		return
	}
	for c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		if oldest == nil {
			break
		}
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*verifyEntry).key)
	}
	c.entries[k] = c.order.PushFront(&verifyEntry{key: k, ok: ok})
}

func (c *verifyCache) stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.order.Len()
}

var (
	cacheMu      sync.RWMutex
	defaultCache = newVerifyCache(DefaultVerifyCacheSize)
)

func currentCache() *verifyCache {
	cacheMu.RLock()
	defer cacheMu.RUnlock()
	return defaultCache
}

// SetVerifyCacheCapacity resizes the process-wide verification cache,
// dropping its contents. A capacity of 0 disables caching entirely
// (every Verify performs the full Ed25519 check).
func SetVerifyCacheCapacity(entries int) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if entries <= 0 {
		defaultCache = nil
		return
	}
	defaultCache = newVerifyCache(entries)
}

// ResetVerifyCache drops all cached outcomes and statistics, keeping
// the current capacity.
func ResetVerifyCache() {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if defaultCache != nil {
		defaultCache = newVerifyCache(defaultCache.capacity)
	}
}

// VerifyCacheStats reports cumulative cache hits and misses plus the
// current entry count. All zeros when caching is disabled.
func VerifyCacheStats() (hits, misses uint64, size int) {
	c := currentCache()
	if c == nil {
		return 0, 0, 0
	}
	return c.stats()
}
