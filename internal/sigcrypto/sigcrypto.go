// Package sigcrypto implements Concilium's identity substrate: a central
// certificate authority that binds a host's network address to a public
// key and a randomly assigned overlay identifier (§2), plus the signing
// primitives the protocol layers use for tomographic snapshots, freshness
// timestamps, forwarding commitments, and accusations.
//
// The paper signs with PSS-R over 1024-bit RSA; this implementation signs
// with Ed25519 (any EUF-CMA scheme gives the protocol the properties it
// needs) and models PSS-R's byte sizes separately in internal/wire for
// the §4.4 bandwidth accounting.
package sigcrypto

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"concilium/internal/id"
)

// Signing errors.
var (
	// ErrBadSignature indicates a signature that does not verify.
	ErrBadSignature = errors.New("sigcrypto: signature verification failed")
	// ErrWrongAuthority indicates a certificate signed by a different CA.
	ErrWrongAuthority = errors.New("sigcrypto: certificate not signed by this authority")
)

// KeyPair is an Ed25519 key pair.
type KeyPair struct {
	Public  ed25519.PublicKey
	Private ed25519.PrivateKey
}

// GenerateKeyPair creates a key pair from the system entropy source.
func GenerateKeyPair() (KeyPair, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return KeyPair{}, fmt.Errorf("sigcrypto: generate key: %w", err)
	}
	return KeyPair{Public: pub, Private: priv}, nil
}

// KeyPairFromSeed derives a key pair deterministically. Experiments use
// this so that simulated populations are reproducible.
func KeyPairFromSeed(seed [ed25519.SeedSize]byte) KeyPair {
	priv := ed25519.NewKeyFromSeed(seed[:])
	return KeyPair{Public: priv.Public().(ed25519.PublicKey), Private: priv}
}

// KeyPairFromRand derives a key pair from a deterministic random source.
func KeyPairFromRand(src id.RandSource) KeyPair {
	var seed [ed25519.SeedSize]byte
	for i := 0; i < len(seed); i += 8 {
		binary.BigEndian.PutUint64(seed[i:], src.Uint64())
	}
	return KeyPairFromSeed(seed)
}

// Sign signs msg with the private key.
func (kp KeyPair) Sign(msg []byte) []byte {
	return ed25519.Sign(kp.Private, msg)
}

// Verify checks sig over msg under pub. Outcomes are memoized in a
// bounded LRU keyed by (pub, msg-hash, sig), so repeated verification
// of the same certificates, timestamps, and ack batches short-circuits
// to a hash lookup; see verifycache.go for the cache contract.
func Verify(pub ed25519.PublicKey, msg, sig []byte) bool {
	if len(pub) != ed25519.PublicKeySize {
		return false
	}
	cache := currentCache()
	if cache == nil {
		return ed25519.Verify(pub, msg, sig)
	}
	key := makeVerifyKey(pub, msg, sig)
	if ok, hit := cache.lookup(key); hit {
		return ok
	}
	ok := ed25519.Verify(pub, msg, sig)
	cache.store(key, ok)
	return ok
}

// Certificate binds a host's address, public key, and centrally assigned
// overlay identifier, under the authority's signature. Identifiers are
// static and random, so adversaries cannot position themselves in the
// identifier space (§2).
type Certificate struct {
	Addr      string
	NodeID    id.ID
	PublicKey ed25519.PublicKey
	Signature []byte
}

// payload returns the canonical byte string the authority signs.
func (c *Certificate) payload() []byte {
	buf := make([]byte, 0, 4+len(c.Addr)+id.Bytes+len(c.PublicKey))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(c.Addr)))
	buf = append(buf, c.Addr...)
	buf = append(buf, c.NodeID[:]...)
	buf = append(buf, c.PublicKey...)
	return buf
}

// Authority is the central certificate authority. It assigns random
// identifiers and signs certificates; it is safe for concurrent use.
type Authority struct {
	key KeyPair

	mu     sync.Mutex
	rng    id.RandSource
	issued map[id.ID]struct{}
}

// NewAuthority creates an authority signing with key and drawing
// identifiers from src.
func NewAuthority(key KeyPair, src id.RandSource) *Authority {
	return &Authority{key: key, rng: src, issued: make(map[id.ID]struct{})}
}

// PublicKey returns the authority's verification key.
func (a *Authority) PublicKey() ed25519.PublicKey { return a.key.Public }

// Issue assigns a fresh random identifier to the host at addr with the
// given public key and returns the signed certificate.
func (a *Authority) Issue(addr string, nodePub ed25519.PublicKey) (Certificate, error) {
	if len(nodePub) != ed25519.PublicKeySize {
		return Certificate{}, fmt.Errorf("sigcrypto: bad public key length %d", len(nodePub))
	}
	a.mu.Lock()
	var nodeID id.ID
	for {
		nodeID = id.Random(a.rng)
		if _, dup := a.issued[nodeID]; !dup {
			a.issued[nodeID] = struct{}{}
			break
		}
	}
	a.mu.Unlock()

	cert := Certificate{
		Addr:      addr,
		NodeID:    nodeID,
		PublicKey: append(ed25519.PublicKey(nil), nodePub...),
	}
	cert.Signature = a.key.Sign(cert.payload())
	return cert, nil
}

// IssueFor signs a certificate binding addr, nodeID, and nodePub without
// touching the authority's rng or identifier registry — the parallel
// half of issuance. Callers draw nodeID from their own substream and
// must Claim it (serially, in a deterministic order) so the registry
// still guards against reuse. Ed25519 signing is deterministic and the
// authority key is immutable after construction, so concurrent IssueFor
// calls are safe and scheduling-independent.
func (a *Authority) IssueFor(addr string, nodeID id.ID, nodePub ed25519.PublicKey) (Certificate, error) {
	if len(nodePub) != ed25519.PublicKeySize {
		return Certificate{}, fmt.Errorf("sigcrypto: bad public key length %d", len(nodePub))
	}
	cert := Certificate{
		Addr:      addr,
		NodeID:    nodeID,
		PublicKey: append(ed25519.PublicKey(nil), nodePub...),
	}
	cert.Signature = a.key.Sign(cert.payload())
	return cert, nil
}

// Claim registers an externally drawn identifier with the authority,
// failing on reuse. Later Issue calls will never assign a claimed
// identifier.
func (a *Authority) Claim(nodeID id.ID) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dup := a.issued[nodeID]; dup {
		return fmt.Errorf("sigcrypto: identifier %s already issued", nodeID.Short())
	}
	a.issued[nodeID] = struct{}{}
	return nil
}

// VerifyCertificate checks that cert was signed by the authority holding
// caPub.
func VerifyCertificate(caPub ed25519.PublicKey, cert *Certificate) error {
	if cert == nil {
		return errors.New("sigcrypto: nil certificate")
	}
	if !Verify(caPub, cert.payload(), cert.Signature) {
		return ErrWrongAuthority
	}
	return nil
}

// Timestamp is a signed liveness attestation: "node NodeID was alive at
// virtual time At". Hosts piggyback these on availability-probe responses;
// jump-table adverts must carry a fresh timestamp per entry to defeat
// inflation attacks that reuse identifiers of departed peers (§3.1).
type Timestamp struct {
	NodeID    id.ID
	At        int64 // virtual time, nanoseconds
	Signature []byte
}

func timestampPayload(nodeID id.ID, at int64) []byte {
	buf := make([]byte, 0, id.Bytes+8+2)
	buf = append(buf, "ts"...)
	buf = append(buf, nodeID[:]...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(at))
	return buf
}

// NewTimestamp signs a liveness attestation for nodeID at virtual time at.
func NewTimestamp(kp KeyPair, nodeID id.ID, at int64) Timestamp {
	return Timestamp{NodeID: nodeID, At: at, Signature: kp.Sign(timestampPayload(nodeID, at))}
}

// VerifyTimestamp checks ts under the claimed node's public key.
func VerifyTimestamp(pub ed25519.PublicKey, ts Timestamp) error {
	if !Verify(pub, timestampPayload(ts.NodeID, ts.At), ts.Signature) {
		return ErrBadSignature
	}
	return nil
}

// NonceSize is the probe-nonce length. The paper budgets 16 bits per
// probe nonce in §4.4; we use 8 bytes in the live protocol (collision
// safety) and account 2 bytes in the wire-size model.
const NonceSize = 8

// Nonce is an unpredictable token embedded in tomographic probes so that
// leaves cannot acknowledge probes they never received (§3.3).
type Nonce [NonceSize]byte

// NewNonce draws a nonce from src.
func NewNonce(src id.RandSource) Nonce {
	var n Nonce
	binary.BigEndian.PutUint64(n[:], src.Uint64())
	return n
}

// SignedBlob couples an opaque payload with its signer and signature; the
// snapshot and accusation layers use it for self-verifying records.
type SignedBlob struct {
	Signer    id.ID
	Payload   []byte
	Signature []byte
}

func blobPayload(signer id.ID, payload []byte) []byte {
	buf := make([]byte, 0, 4+id.Bytes+len(payload))
	buf = append(buf, "blob"...)
	buf = append(buf, signer[:]...)
	buf = append(buf, payload...)
	return buf
}

// SignBlob signs payload as signer. The payload slice is copied.
func SignBlob(kp KeyPair, signer id.ID, payload []byte) SignedBlob {
	cp := append([]byte(nil), payload...)
	return SignedBlob{Signer: signer, Payload: cp, Signature: kp.Sign(blobPayload(signer, cp))}
}

// VerifyBlob checks the blob's signature under pub.
func VerifyBlob(pub ed25519.PublicKey, b SignedBlob) error {
	if !Verify(pub, blobPayload(b.Signer, b.Payload), b.Signature) {
		return ErrBadSignature
	}
	return nil
}
