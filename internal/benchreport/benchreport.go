// Package benchreport defines the machine-readable benchmark report
// emitted by concilium-bench and concilium-sim in -json mode and
// consumed by cmd/benchdiff and the CI bench gate.
//
// A report splits cleanly into two parts:
//
//   - The deterministic core — seed, scale, per-figure check values, and
//     the canonical metrics snapshot. For a fixed seed this part is
//     bit-identical across worker counts, machines, and Go versions;
//     Canonical() reduces a report to exactly this part so callers can
//     byte-compare two runs.
//   - The timing envelope — wall-clock durations, ns/op, allocs/op,
//     speedup versus the serial run, and the host fingerprint. This part
//     varies run to run and is what benchdiff's regression gate compares
//     with a tolerance.
//
// Schema evolution: Version bumps on any incompatible change to the
// JSON layout; Decode rejects reports whose schema string or version it
// does not understand, so a stale BENCH_baseline.json fails loudly
// rather than comparing garbage.
package benchreport

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"concilium/internal/metrics"
	"concilium/internal/sigcrypto"
)

// Schema identifies the report format; Version is its revision.
// Version history: 1 — initial layout; 2 — Timing gains peak_rss_bytes
// (the Scale figure's resident-memory high-water mark) and, later in
// the same revision (additive, omitempty), bytes_per_node — the Scale
// figure's measured resident footprint per overlay node.
const (
	Schema  = "concilium/bench-report"
	Version = 2
)

// Timing is one figure's performance envelope — all wall-clock derived,
// none of it deterministic.
type Timing struct {
	// WallNs is the figure's total wall-clock time in nanoseconds.
	WallNs int64 `json:"wall_ns"`
	// NsPerOp is wall time divided by the figure's operation count
	// (trials for experiment figures, messages for traffic figures).
	NsPerOp int64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp are heap allocation counts and bytes
	// per operation, from runtime.MemStats deltas.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// SpeedupX is wall time of the serial (workers=1) reference run
	// divided by this run's wall time; 0 when no reference ran.
	SpeedupX float64 `json:"speedup_x,omitempty"`
	// Ops is the operation count NsPerOp was computed over.
	Ops int64 `json:"ops"`
	// PeakRSSBytes is the process's resident-set high-water mark after
	// the figure ran (getrusage ru_maxrss; 0 where unsupported). The
	// counter is process-lifetime monotone, so within one run only the
	// largest figure's value is meaningful — the Scale figure runs its
	// node counts ascending for exactly that reason.
	PeakRSSBytes int64 `json:"peak_rss_bytes,omitempty"`
	// BytesPerNode is the figure's measured long-lived footprint per
	// overlay node (the Scale figure reports CompactSystem.Footprint
	// divided by the node count; 0 elsewhere). Unlike BytesPerOp — which
	// counts cumulative allocation — this is resident state, the number
	// that decides how large an overlay fits in memory.
	BytesPerNode int64 `json:"bytes_per_node,omitempty"`
}

// Figure is one benchmarked unit of work — a paper figure in
// concilium-bench, a simulation phase in concilium-sim.
type Figure struct {
	Name string `json:"name"`
	// Checks are the figure's deterministic headline values (max mean
	// error, detection probabilities, minimal m, ...): a fingerprint of
	// the computation's result, invariant across worker counts.
	Checks map[string]float64 `json:"checks,omitempty"`
	Timing Timing             `json:"timing"`
}

// Env fingerprints the host and configuration a report was produced
// under — context for interpreting the timing envelope.
type Env struct {
	GeneratedUnix int64  `json:"generated_unix"`
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	Workers       int    `json:"workers"`
	Cmd           string `json:"cmd"`
}

// Report is a full benchmark report.
type Report struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`

	// Deterministic core.
	Seed    uint64           `json:"seed"`
	Scale   string           `json:"scale,omitempty"`
	Figures []Figure         `json:"figures"`
	Metrics metrics.Snapshot `json:"metrics"`

	// Timing envelope.
	Env Env `json:"env"`
	// WallMetrics holds the reserved non-deterministic metric series
	// (the "_wallns"/"_nondet" classes), kept out of Metrics so the
	// deterministic core stays byte-comparable.
	WallMetrics metrics.Snapshot `json:"wall_metrics,omitempty"`
}

// New returns a report shell with the schema header filled in.
func New(cmd string, seed uint64, scale string) *Report {
	return &Report{
		Schema:  Schema,
		Version: Version,
		Seed:    seed,
		Scale:   scale,
		Env:     Env{Cmd: cmd},
	}
}

// SetSnapshot splits a registry snapshot into the report's
// deterministic core and wall envelope.
func (r *Report) SetSnapshot(s metrics.Snapshot) {
	r.Metrics = s.Canonical()
	r.WallMetrics = s.Wall()
}

// Validate reports the first structural problem: wrong schema or
// version, unnamed or duplicate figures, or non-deterministic series
// leaked into the canonical metrics.
func (r *Report) Validate() error {
	if r.Schema != Schema {
		return fmt.Errorf("benchreport: schema %q, want %q", r.Schema, Schema)
	}
	if r.Version != Version {
		return fmt.Errorf("benchreport: version %d, want %d", r.Version, Version)
	}
	seen := make(map[string]bool, len(r.Figures))
	for i, f := range r.Figures {
		if f.Name == "" {
			return fmt.Errorf("benchreport: figure %d has no name", i)
		}
		if seen[f.Name] {
			return fmt.Errorf("benchreport: duplicate figure %q", f.Name)
		}
		seen[f.Name] = true
	}
	for _, names := range [][]string{r.Metrics.CounterNames(), r.Metrics.GaugeNames(), r.Metrics.HistogramNames()} {
		for _, name := range names {
			if metrics.NonDeterministic(name) {
				return fmt.Errorf("benchreport: non-deterministic series %q in canonical metrics", name)
			}
		}
	}
	return nil
}

// Canonical returns only the deterministic core: the timing envelope,
// host fingerprint, and wall metrics are zeroed, and each figure keeps
// its name and checks. Two runs of the same seed at different worker
// counts must produce byte-identical Encode output of their Canonical
// reports.
func (r *Report) Canonical() *Report {
	out := &Report{
		Schema:  r.Schema,
		Version: r.Version,
		Seed:    r.Seed,
		Scale:   r.Scale,
		Metrics: r.Metrics.Canonical(),
	}
	for _, f := range r.Figures {
		cf := Figure{Name: f.Name}
		if len(f.Checks) > 0 {
			cf.Checks = make(map[string]float64, len(f.Checks))
			for k, v := range f.Checks {
				cf.Checks[k] = v
			}
		}
		out.Figures = append(out.Figures, cf)
	}
	return out
}

// Figure returns the named figure, or nil.
func (r *Report) Figure(name string) *Figure {
	for i := range r.Figures {
		if r.Figures[i].Name == name {
			return &r.Figures[i]
		}
	}
	return nil
}

// Encode writes the report as indented JSON with a trailing newline.
// encoding/json sorts map keys, so equal reports encode to identical
// bytes.
func Encode(w io.Writer, r *Report) error {
	if err := r.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile encodes the report to path.
func WriteFile(path string, r *Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Encode(f, r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile decodes and validates the report at path.
func ReadFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// Decode reads and validates a report.
func Decode(rd io.Reader) (*Report, error) {
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	var r Report
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("benchreport: decode: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// VerifyCacheSnapshot freezes the global Ed25519 verify-cache counters
// as reserved non-deterministic gauges: the cache is process-wide and
// its hit pattern depends on goroutine scheduling, so these series can
// never enter a canonical snapshot.
func VerifyCacheSnapshot() metrics.Snapshot {
	hits, misses, size := sigcrypto.VerifyCacheStats()
	reg := metrics.NewRegistry()
	reg.Gauge("sigcrypto/verify_cache_hits_nondet").Set(int64(hits))
	reg.Gauge("sigcrypto/verify_cache_misses_nondet").Set(int64(misses))
	reg.Gauge("sigcrypto/verify_cache_size_nondet").Set(int64(size))
	return reg.Snapshot().Wall()
}

// Delta is one figure's timing movement between a baseline and a
// current report.
type Delta struct {
	Figure string
	BaseNs int64
	CurNs  int64
	// Ratio is CurNs/BaseNs; 1.30 means 30% slower than baseline.
	Ratio float64
}

// CompareResult is the outcome of gating a current report against a
// baseline.
type CompareResult struct {
	// Regressions are figures whose ns/op grew beyond the tolerance.
	Regressions []Delta
	// Improvements are figures whose ns/op shrank beyond the same
	// tolerance (informational — a candidate for refreshing the
	// baseline).
	Improvements []Delta
	// Missing are baseline figures absent from the current report — a
	// silently dropped benchmark fails the gate like a regression.
	Missing []string
	// Added are current figures with no baseline (informational).
	Added []string
	// ChecksDiverged lists figures whose deterministic check values
	// differ from the baseline's — for equal seeds this means behavior
	// changed, which a pure performance gate should surface loudly.
	ChecksDiverged []string
}

// OK reports whether the gate passes: no regressions and no missing
// figures. Check divergence is reported but does not fail the gate —
// intentional behavior changes legitimately move check values, and the
// diff output makes the reviewer confirm that on the PR.
func (c *CompareResult) OK() bool {
	return len(c.Regressions) == 0 && len(c.Missing) == 0
}

// Compare gates cur against base: any figure whose ns/op grew by more
// than maxRegress (0.25 = +25%) is a regression. Figures whose baseline
// ns/op is at or below minNs are exempt from the timing gate (they are
// noise-dominated: a 15 ms figure legitimately jitters past any
// percentage tolerance) but still checked for presence and check-value
// divergence. Figures with a zero baseline ns/op are always skipped.
func Compare(base, cur *Report, maxRegress float64, minNs int64) (*CompareResult, error) {
	if maxRegress <= 0 {
		return nil, fmt.Errorf("benchreport: max regress %v must be positive", maxRegress)
	}
	res := &CompareResult{}
	curByName := make(map[string]*Figure, len(cur.Figures))
	for i := range cur.Figures {
		curByName[cur.Figures[i].Name] = &cur.Figures[i]
	}
	for _, bf := range base.Figures {
		cf, ok := curByName[bf.Name]
		if !ok {
			res.Missing = append(res.Missing, bf.Name)
			continue
		}
		if !checksEqual(bf.Checks, cf.Checks) {
			res.ChecksDiverged = append(res.ChecksDiverged, bf.Name)
		}
		if bf.Timing.NsPerOp <= 0 || cf.Timing.NsPerOp <= 0 || bf.Timing.NsPerOp <= minNs {
			continue
		}
		d := Delta{
			Figure: bf.Name,
			BaseNs: bf.Timing.NsPerOp,
			CurNs:  cf.Timing.NsPerOp,
			Ratio:  float64(cf.Timing.NsPerOp) / float64(bf.Timing.NsPerOp),
		}
		switch {
		case d.Ratio > 1+maxRegress:
			res.Regressions = append(res.Regressions, d)
		case d.Ratio < 1/(1+maxRegress):
			res.Improvements = append(res.Improvements, d)
		}
	}
	baseNames := make(map[string]bool, len(base.Figures))
	for _, bf := range base.Figures {
		baseNames[bf.Name] = true
	}
	for _, cf := range cur.Figures {
		if !baseNames[cf.Name] {
			res.Added = append(res.Added, cf.Name)
		}
	}
	sort.Strings(res.Missing)
	sort.Strings(res.Added)
	sort.Strings(res.ChecksDiverged)
	sort.Slice(res.Regressions, func(i, j int) bool { return res.Regressions[i].Figure < res.Regressions[j].Figure })
	sort.Slice(res.Improvements, func(i, j int) bool { return res.Improvements[i].Figure < res.Improvements[j].Figure })
	return res, nil
}

// AllocDelta is one figure's allocation movement between a baseline and
// a current report, for either the allocs/op or bytes/op axis.
type AllocDelta struct {
	Figure string
	// Metric is "allocs/op" or "bytes/op".
	Metric string
	Base   int64
	Cur    int64
	// Ratio is Cur/Base; 1.30 means 30% more than baseline.
	Ratio float64
}

// CompareAllocs gates cur's allocation profile against base: any figure
// whose allocs_per_op or bytes_per_op grew by more than maxRegress
// (0.25 = +25%) is a regression. Figures whose baseline allocs_per_op
// is at or below minAllocs are exempt on both axes (tiny figures
// jitter past any percentage tolerance on GC noise alone), as are
// figures with a zero baseline on an axis. Presence and check
// divergence are Compare's job; this gate only watches the allocator.
func CompareAllocs(base, cur *Report, maxRegress float64, minAllocs int64) ([]AllocDelta, error) {
	if maxRegress <= 0 {
		return nil, fmt.Errorf("benchreport: max alloc regress %v must be positive", maxRegress)
	}
	curByName := make(map[string]*Figure, len(cur.Figures))
	for i := range cur.Figures {
		curByName[cur.Figures[i].Name] = &cur.Figures[i]
	}
	var out []AllocDelta
	for _, bf := range base.Figures {
		cf, ok := curByName[bf.Name]
		if !ok || bf.Timing.AllocsPerOp <= minAllocs {
			continue
		}
		axes := []struct {
			metric    string
			base, cur int64
		}{
			{"allocs/op", bf.Timing.AllocsPerOp, cf.Timing.AllocsPerOp},
			{"bytes/op", bf.Timing.BytesPerOp, cf.Timing.BytesPerOp},
		}
		for _, ax := range axes {
			if ax.base <= 0 {
				continue
			}
			ratio := float64(ax.cur) / float64(ax.base)
			if ratio > 1+maxRegress {
				out = append(out, AllocDelta{
					Figure: bf.Name, Metric: ax.metric,
					Base: ax.base, Cur: ax.cur, Ratio: ratio,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Figure != out[j].Figure {
			return out[i].Figure < out[j].Figure
		}
		return out[i].Metric < out[j].Metric
	})
	return out, nil
}

// CompareFootprint gates cur's resident-memory profile against base:
// any figure whose peak_rss_bytes or bytes_per_node grew by more than
// maxRegress (0.25 = +25%) is a regression. Axes with a zero baseline
// are skipped, so reports predating the field pass vacuously. Resident
// footprint is the Scale figure's headline budget — far more stable
// across machines than wall clock — so this gate can run tight.
func CompareFootprint(base, cur *Report, maxRegress float64) ([]AllocDelta, error) {
	if maxRegress <= 0 {
		return nil, fmt.Errorf("benchreport: max rss regress %v must be positive", maxRegress)
	}
	curByName := make(map[string]*Figure, len(cur.Figures))
	for i := range cur.Figures {
		curByName[cur.Figures[i].Name] = &cur.Figures[i]
	}
	var out []AllocDelta
	for _, bf := range base.Figures {
		cf, ok := curByName[bf.Name]
		if !ok {
			continue
		}
		axes := []struct {
			metric    string
			base, cur int64
		}{
			{"peak-rss", bf.Timing.PeakRSSBytes, cf.Timing.PeakRSSBytes},
			{"bytes/node", bf.Timing.BytesPerNode, cf.Timing.BytesPerNode},
		}
		for _, ax := range axes {
			if ax.base <= 0 {
				continue
			}
			ratio := float64(ax.cur) / float64(ax.base)
			if ratio > 1+maxRegress {
				out = append(out, AllocDelta{
					Figure: bf.Name, Metric: ax.metric,
					Base: ax.base, Cur: ax.cur, Ratio: ratio,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Figure != out[j].Figure {
			return out[i].Figure < out[j].Figure
		}
		return out[i].Metric < out[j].Metric
	})
	return out, nil
}

func checksEqual(a, b map[string]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}
