package benchreport

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"concilium/internal/metrics"
)

var update = flag.Bool("update", false, "rewrite golden files")

// sampleReport builds a fully-populated, fixed report. Every field is
// pinned so the encoding is stable — this is what the golden file locks.
func sampleReport() *Report {
	reg := metrics.NewRegistry()
	reg.Counter("wire/message_bytes").Add(4096)
	reg.Counter("core/msgs_sent").Add(10)
	reg.Gauge("netsim/links_down_highwater").Set(3)
	reg.MustHistogram("core/chain_len", []int64{1, 2, 4}).Observe(3)
	reg.Counter("core/blame_wallns").Add(123456)
	reg.Gauge("sigcrypto/verify_cache_hits_nondet").Set(17)

	r := New("concilium-bench", 42, "small")
	r.SetSnapshot(reg.Snapshot())
	r.Figures = []Figure{
		{
			Name:   "fig1",
			Checks: map[string]float64{"max_mean_error": 0.03125},
			Timing: Timing{WallNs: 1500000, NsPerOp: 1500, AllocsPerOp: 12, BytesPerOp: 768, SpeedupX: 3.5, Ops: 1000},
		},
		{
			Name:   "scale-n1000",
			Checks: map[string]float64{"overlay_n": 1000, "canonical_hash": 123456789},
			Timing: Timing{WallNs: 2000000000, NsPerOp: 2000000, AllocsPerOp: 900, BytesPerOp: 65536, SpeedupX: 2.5, Ops: 1000, PeakRSSBytes: 1 << 28},
		},
		{
			Name:   "chaos-short",
			Checks: map[string]float64{"sent": 40, "delivered": 37, "invariants_ok": 1},
			Timing: Timing{WallNs: 500000000, NsPerOp: 12500000, Ops: 40},
		},
	}
	r.Env = Env{
		GeneratedUnix: 1754400000,
		GoVersion:     "go1.24.0",
		GOOS:          "linux",
		GOARCH:        "amd64",
		Workers:       8,
		Cmd:           "concilium-bench",
	}
	return r
}

// TestGoldenReport locks the on-disk JSON schema: any change to field
// names, nesting, or encoding order breaks this test and must come with
// a schema Version bump (and a regenerated golden via -update).
func TestGoldenReport(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, sampleReport()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report_v2.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("report encoding drifted from golden schema.\ngot:\n%s\nwant:\n%s\n(bump Version and regenerate with -update if intentional)", buf.Bytes(), want)
	}
	// The golden file itself must decode and validate.
	r, err := Decode(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if r.Seed != 42 || len(r.Figures) != 3 || r.Figure("fig1") == nil {
		t.Fatalf("golden decoded wrong: %+v", r)
	}
	if r.Figure("scale-n1000").Timing.PeakRSSBytes != 1<<28 {
		t.Fatalf("golden dropped peak RSS: %+v", r.Figure("scale-n1000").Timing)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	orig := sampleReport()
	var buf bytes.Buffer
	if err := Encode(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var b2 bytes.Buffer
	if err := Encode(&b2, back); err != nil {
		t.Fatal(err)
	}
	var b1 bytes.Buffer
	if err := Encode(&b1, orig); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("round trip not byte-stable")
	}
}

func TestValidateRejects(t *testing.T) {
	good := func() *Report { return sampleReport() }

	r := good()
	r.Schema = "other/schema"
	if err := r.Validate(); err == nil {
		t.Error("wrong schema accepted")
	}
	r = good()
	r.Version = Version + 1
	if err := r.Validate(); err == nil {
		t.Error("wrong version accepted")
	}
	r = good()
	r.Figures = append(r.Figures, Figure{Name: "fig1"})
	if err := r.Validate(); err == nil {
		t.Error("duplicate figure accepted")
	}
	r = good()
	r.Figures[0].Name = ""
	if err := r.Validate(); err == nil {
		t.Error("unnamed figure accepted")
	}
	r = good()
	r.Metrics.Counters = map[string]uint64{"leaked_wallns": 1}
	if err := r.Validate(); err == nil {
		t.Error("non-deterministic series in canonical metrics accepted")
	}
}

func TestDecodeRejectsUnknownFieldsAndStaleSchema(t *testing.T) {
	if _, err := Decode(strings.NewReader(`{"schema":"concilium/bench-report","version":2,"seed":1,"figures":[],"metrics":{},"env":{},"surprise":true}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := Decode(strings.NewReader(`{"schema":"concilium/bench-report","version":99,"seed":1,"figures":[],"metrics":{},"env":{}}`)); err == nil {
		t.Error("future version accepted")
	}
	// A v1 baseline (no peak_rss_bytes yet) must fail loudly, forcing a
	// baseline refresh rather than a garbage comparison.
	if _, err := Decode(strings.NewReader(`{"schema":"concilium/bench-report","version":1,"seed":1,"figures":[],"metrics":{},"env":{}}`)); err == nil {
		t.Error("stale version accepted")
	}
}

func TestCanonicalStripsTimingEnvelope(t *testing.T) {
	r := sampleReport()
	c := r.Canonical()
	if c.Env != (Env{}) {
		t.Errorf("canonical kept env: %+v", c.Env)
	}
	if len(c.WallMetrics.Gauges) != 0 || len(c.WallMetrics.Counters) != 0 {
		t.Errorf("canonical kept wall metrics: %+v", c.WallMetrics)
	}
	for _, f := range c.Figures {
		if f.Timing != (Timing{}) {
			t.Errorf("canonical kept timing for %s: %+v", f.Name, f.Timing)
		}
	}
	if c.Figure("fig1").Checks["max_mean_error"] != 0.03125 {
		t.Error("canonical dropped checks")
	}
	if c.Seed != r.Seed || c.Scale != r.Scale {
		t.Error("canonical dropped seed/scale")
	}
	// Two structurally-equal canonical reports encode identically.
	var b1, b2 bytes.Buffer
	if err := Encode(&b1, c); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&b2, sampleReport().Canonical()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("canonical encoding not byte-stable")
	}
}

func TestSetSnapshotSplits(t *testing.T) {
	r := sampleReport()
	if _, ok := r.Metrics.Counters["core/blame_wallns"]; ok {
		t.Error("wall series leaked into canonical metrics")
	}
	if _, ok := r.WallMetrics.Counters["core/blame_wallns"]; !ok {
		t.Error("wall series missing from wall metrics")
	}
	if _, ok := r.Metrics.Counters["wire/message_bytes"]; !ok {
		t.Error("canonical series missing")
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func timingFig(name string, ns int64, checks map[string]float64) Figure {
	return Figure{Name: name, Checks: checks, Timing: Timing{WallNs: ns, NsPerOp: ns, Ops: 1}}
}

func TestCompare(t *testing.T) {
	base := New("bench", 1, "small")
	base.Figures = []Figure{
		timingFig("steady", 1000, map[string]float64{"v": 1}),
		timingFig("slower", 1000, nil),
		timingFig("faster", 1000, nil),
		timingFig("dropped", 1000, nil),
		timingFig("noisy", 50, nil),
		timingFig("diverged", 1000, map[string]float64{"v": 1}),
	}
	cur := New("bench", 1, "small")
	cur.Figures = []Figure{
		timingFig("steady", 1100, map[string]float64{"v": 1}),
		timingFig("slower", 1400, nil),
		timingFig("faster", 500, nil),
		timingFig("noisy", 5000, nil), // 100x, but under the min-ns floor
		timingFig("diverged", 1000, map[string]float64{"v": 2}),
		timingFig("brandnew", 1000, nil),
	}
	res, err := Compare(base, cur, 0.25, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regressions) != 1 || res.Regressions[0].Figure != "slower" {
		t.Errorf("regressions = %+v, want [slower]", res.Regressions)
	}
	if res.Regressions[0].Ratio != 1.4 {
		t.Errorf("ratio = %v, want 1.4", res.Regressions[0].Ratio)
	}
	if len(res.Improvements) != 1 || res.Improvements[0].Figure != "faster" {
		t.Errorf("improvements = %+v, want [faster]", res.Improvements)
	}
	if len(res.Missing) != 1 || res.Missing[0] != "dropped" {
		t.Errorf("missing = %v, want [dropped]", res.Missing)
	}
	if len(res.Added) != 1 || res.Added[0] != "brandnew" {
		t.Errorf("added = %v, want [brandnew]", res.Added)
	}
	if len(res.ChecksDiverged) != 1 || res.ChecksDiverged[0] != "diverged" {
		t.Errorf("checks diverged = %v, want [diverged]", res.ChecksDiverged)
	}
	if res.OK() {
		t.Error("gate passed despite regression and missing figure")
	}

	// Same reports within tolerance pass.
	res2, err := Compare(base, base, 0.25, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.OK() || len(res2.Regressions)+len(res2.Improvements)+len(res2.ChecksDiverged) != 0 {
		t.Errorf("self-compare not clean: %+v", res2)
	}

	if _, err := Compare(base, cur, 0, 0); err == nil {
		t.Error("non-positive tolerance accepted")
	}
}

func allocFig(name string, allocs, bytes int64) Figure {
	return Figure{Name: name, Timing: Timing{WallNs: 1000, NsPerOp: 1000, AllocsPerOp: allocs, BytesPerOp: bytes, Ops: 1}}
}

func TestCompareAllocs(t *testing.T) {
	base := New("bench", 1, "small")
	base.Figures = []Figure{
		allocFig("steady", 10000, 1<<20),
		allocFig("allocheavy", 10000, 1<<20),
		allocFig("byteheavy", 10000, 1<<20),
		allocFig("tiny", 500, 1<<10),
		allocFig("zerobase", 0, 0),
	}
	cur := New("bench", 1, "small")
	cur.Figures = []Figure{
		allocFig("steady", 11000, 1<<20+1<<16), // +10%, inside tolerance
		allocFig("allocheavy", 20000, 1<<20),   // allocs doubled
		allocFig("byteheavy", 10000, 1<<22),    // bytes quadrupled
		allocFig("tiny", 50000, 1<<20),         // 100x, but under the floor
		allocFig("zerobase", 99999, 1<<30),     // no baseline axis to gate
	}
	regs, err := CompareAllocs(base, cur, 0.25, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 {
		t.Fatalf("alloc regressions = %+v, want [allocheavy byteheavy]", regs)
	}
	if regs[0].Figure != "allocheavy" || regs[0].Metric != "allocs/op" || regs[0].Ratio != 2.0 {
		t.Errorf("regs[0] = %+v, want allocheavy allocs/op 2.0x", regs[0])
	}
	if regs[1].Figure != "byteheavy" || regs[1].Metric != "bytes/op" || regs[1].Ratio != 4.0 {
		t.Errorf("regs[1] = %+v, want byteheavy bytes/op 4.0x", regs[1])
	}

	// Self-compare is clean.
	regs2, err := CompareAllocs(base, base, 0.25, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs2) != 0 {
		t.Errorf("self-compare not clean: %+v", regs2)
	}

	if _, err := CompareAllocs(base, cur, 0, 0); err == nil {
		t.Error("non-positive tolerance accepted")
	}
}

func TestWriteReadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.json")
	if err := WriteFile(path, sampleReport()); err != nil {
		t.Fatal(err)
	}
	r, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Env.Workers != 8 || r.Figure("chaos-short") == nil {
		t.Fatalf("read back wrong: %+v", r)
	}
}

func TestVerifyCacheSnapshotIsWallOnly(t *testing.T) {
	s := VerifyCacheSnapshot()
	if len(s.Gauges) != 3 {
		t.Fatalf("gauges = %v, want 3 series", s.GaugeNames())
	}
	for _, name := range s.GaugeNames() {
		if !metrics.NonDeterministic(name) {
			t.Errorf("verify-cache series %q not reserved non-deterministic", name)
		}
	}
	if !s.Canonical().Equal(metrics.Snapshot{}) {
		t.Error("verify-cache snapshot leaks into canonical")
	}
}
