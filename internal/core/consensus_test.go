package core

import (
	"testing"
)

func TestConsensusNMedian(t *testing.T) {
	t.Parallel()
	got, err := ConsensusN([]float64{100, 900, 500})
	if err != nil || got != 500 {
		t.Errorf("median = %v (%v), want 500", got, err)
	}
	got, err = ConsensusN([]float64{100, 200, 300, 400})
	if err != nil || got != 250 {
		t.Errorf("even median = %v (%v), want 250", got, err)
	}
	if _, err := ConsensusN(nil); err == nil {
		t.Error("empty estimates accepted")
	}
	if _, err := ConsensusN([]float64{100, -5}); err == nil {
		t.Error("negative estimate accepted")
	}
}

func TestConsensusNRobustToMinorityCorruption(t *testing.T) {
	t.Parallel()
	// 4 of 10 estimates wildly suppressed: the median barely moves.
	honest := []float64{980, 990, 1000, 1010, 1020, 1030}
	attacked := append([]float64{10, 10, 10, 10}, honest...)
	got, err := ConsensusN(attacked)
	if err != nil {
		t.Fatal(err)
	}
	if got < 900 {
		t.Errorf("median %v moved by minority corruption", got)
	}
}

func TestConsensusDensityTestCheck(t *testing.T) {
	t.Parallel()
	m := DefaultOccupancyModel()
	test, err := NewConsensusDensityTest(m, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	// μφ(1131) ≈ 36: a 35-slot table passes at γ=1.2, a 20-slot fails.
	ok, err := test.Check(35, 1131)
	if err != nil || !ok {
		t.Errorf("honest-density table rejected: %v (%v)", ok, err)
	}
	ok, err = test.Check(20, 1131)
	if err != nil || ok {
		t.Errorf("sparse table accepted: %v (%v)", ok, err)
	}
	if _, err := test.Check(30, 1); err == nil {
		t.Error("tiny consensus population accepted")
	}
	if _, err := NewConsensusDensityTest(m, 1); err == nil {
		t.Error("γ=1 accepted")
	}
	if _, err := NewConsensusDensityTest(OccupancyModel{}, 1.2); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestConsensusDefenseBeatsStandardUnderSuppression(t *testing.T) {
	t.Parallel()
	// The extension's headline: under suppression at c ≤ 30%, the
	// consensus-referenced test has a strictly lower combined error
	// than the self-referenced test, because the median reference is
	// immune to minority suppression.
	m := DefaultOccupancyModel()
	for _, c := range []float64{0.2, 0.3} {
		s := DensityScenario{N: 1131, Collusion: c, Suppression: true}
		standard, err := OptimalGamma(m, s, 1.0001, 3, 150)
		if err != nil {
			t.Fatal(err)
		}
		best := DensityErrorRates{FalsePositive: 1, FalseNegative: 1}
		for g := 1.01; g < 3; g += 0.01 {
			r, err := ConsensusErrorRates(m, s, g)
			if err != nil {
				t.Fatal(err)
			}
			if r.Sum() < best.Sum() {
				best = r
			}
		}
		if best.Sum() >= standard.Sum() {
			t.Errorf("c=%v: consensus sum %v not better than standard %v",
				c, best.Sum(), standard.Sum())
		}
	}
}

func TestConsensusErrorRatesValidation(t *testing.T) {
	t.Parallel()
	m := DefaultOccupancyModel()
	if _, err := ConsensusErrorRates(m, DensityScenario{N: 1, Collusion: 0.2}, 1.2); err == nil {
		t.Error("invalid scenario accepted")
	}
	if _, err := ConsensusErrorRates(m, DensityScenario{N: 100, Collusion: 0.2}, 0); err == nil {
		t.Error("γ=0 accepted")
	}
	// Majority collusion breaks the median: the reference collapses to
	// the colluders' population and the defense degrades (documented
	// behavior, not an error).
	r, err := ConsensusErrorRates(m, DensityScenario{N: 1131, Collusion: 0.6, Suppression: true}, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if r.FalseNegative < 0.3 {
		t.Errorf("majority collusion FN = %v; expected the defense to fail open", r.FalseNegative)
	}
}
