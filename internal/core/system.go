package core

import (
	"crypto/ed25519"
	"fmt"
	"math"
	"strconv"
	"time"

	"concilium/internal/id"
	"concilium/internal/metrics"
	"concilium/internal/netsim"
	"concilium/internal/overlay"
	"concilium/internal/parexec"
	"concilium/internal/sigcrypto"
	"concilium/internal/stats"
	"concilium/internal/tomography"
	"concilium/internal/topology"
	"concilium/internal/trace"
	"concilium/internal/wiresize"
)

// SystemConfig assembles a complete simulated Concilium deployment.
type SystemConfig struct {
	// Topology generates the underlying IP network.
	Topology topology.Config
	// OverlayFraction selects this share of end hosts as overlay nodes
	// (the paper uses 3%).
	OverlayFraction float64
	// Blame parameterizes fault attribution.
	Blame BlameConfig
	// Window parameterizes formal accusations.
	Window WindowConfig
	// MaxProbeTime bounds the randomized lightweight-probe period
	// (the paper's evaluation uses 120 s).
	MaxProbeTime time.Duration
	// HopLatency is the per-IP-link propagation delay; message and
	// acknowledgment legs advance virtual time by it, so link state can
	// genuinely change mid-flight (0 uses netsim's 2 ms default).
	HopLatency time.Duration
	// Failures drives the link-failure injector.
	Failures netsim.FailureConfig
	// MaliciousFraction marks this share of nodes as droppers+liars.
	MaliciousFraction float64
	// ArchiveRetention prunes probe records older than this (0 keeps
	// everything; experiments set a few minutes to bound memory).
	ArchiveRetention time.Duration
	// SignedSnapshots routes every probe result through the full §3.2
	// pipeline: the prober signs a tomographic snapshot and receivers
	// verify the signature before archiving. Costs one signature and
	// one verification per probe; large-scale experiments leave it off.
	SignedSnapshots bool
	// Tracer receives structured protocol events (probes, verdicts,
	// accusations, link churn). Nil disables tracing.
	Tracer trace.Recorder
	// Metrics receives the system's quantitative metrics (probe RTT
	// histograms, blame latency, bytes on wire per message class).
	// Nil discards them; the hot-path cost of a live registry is a few
	// uncontended atomic adds per event, and every metric except the
	// reserved wall-clock class is deterministic for a fixed seed.
	Metrics *metrics.Registry
	// Workers bounds the worker pool used for the parallel parts of
	// system construction: per-node keygen and certificate issuance,
	// routing-state fills, and tomography-tree building (<= 0 selects
	// GOMAXPROCS). Per-node randomness comes from substreams indexed by
	// node position, so the built system is byte-identical for every
	// worker count; see BuildSystem for the determinism contract.
	Workers int
}

// DefaultSystemConfig returns a medium-scale deployment with the
// paper's protocol parameters.
func DefaultSystemConfig() SystemConfig {
	return SystemConfig{
		Topology:        topology.DefaultConfig(),
		OverlayFraction: 0.03,
		Blame:           DefaultBlameConfig(),
		Window:          DefaultWindowConfig(),
		MaxProbeTime:    2 * time.Minute,
		Failures:        netsim.DefaultFailureConfig(),
	}
}

// Validate reports the first invalid field.
func (c SystemConfig) Validate() error {
	if err := c.Topology.Validate(); err != nil {
		return err
	}
	if c.OverlayFraction <= 0 || c.OverlayFraction > 1 || math.IsNaN(c.OverlayFraction) {
		return fmt.Errorf("core: overlay fraction %v out of (0,1]", c.OverlayFraction)
	}
	if err := c.Blame.Validate(); err != nil {
		return err
	}
	if err := c.Window.Validate(); err != nil {
		return err
	}
	if c.MaxProbeTime <= 0 {
		return fmt.Errorf("core: max probe time %v must be positive", c.MaxProbeTime)
	}
	if err := c.Failures.Validate(); err != nil {
		return err
	}
	if c.MaliciousFraction < 0 || c.MaliciousFraction >= 1 || math.IsNaN(c.MaliciousFraction) {
		return fmt.Errorf("core: malicious fraction %v out of [0,1)", c.MaliciousFraction)
	}
	if c.ArchiveRetention < 0 {
		return fmt.Errorf("core: archive retention %v negative", c.ArchiveRetention)
	}
	if c.HopLatency < 0 {
		return fmt.Errorf("core: hop latency %v negative", c.HopLatency)
	}
	return nil
}

// System is a complete simulated deployment: IP topology, event-driven
// network with failure injection, a secure overlay with per-node
// Concilium state, and a shared probe archive modeling snapshot
// dissemination across the forest.
type System struct {
	Config  SystemConfig
	Topo    *topology.Graph
	Sim     *netsim.Simulator
	Net     *netsim.Network
	CA      *sigcrypto.Authority
	Ring    *overlay.Ring
	Nodes   map[id.ID]*Node
	Order   []id.ID // deterministic node order
	Archive *tomography.Archive
	Engine  *BlameEngine
	Window  *VerdictWindow

	Injector *netsim.FailureInjector
	// Counters surfaces errors and degradations that would otherwise be
	// swallowed on hot paths, for the chaos invariant report.
	Counters SystemCounters

	rng     stats.Rand
	met     systemMetrics
	probing bool
	// lastPrune rate-limits archive pruning: a prune sweeps every link's
	// record list, so doing it per probe would be quadratic in practice.
	lastPrune netsim.Time

	// Hot-path caches and scratch arenas (DESIGN.md §9). All model code
	// runs in simulator callbacks on one goroutine, so none of this is
	// locked. states caches the id → routing-state map that route tracing
	// consumes; churn patches it in place (pointers stay valid because
	// ApplyJoin/ApplyDeparture mutate states rather than replacing them).
	// bfsCache holds one shortest-path tree per root router, valid for
	// the lifetime of the (immutable) graph it was computed against. The
	// scratch slices are reused across SendMessage and probe sweeps;
	// anything built in them that escapes into a report or the archive is
	// copied out first.
	states       map[id.ID]*overlay.RoutingState
	bfsCache     map[topology.RouterID]*topology.RouteTree
	bfsGraph     *topology.Graph
	obsScratch   []tomography.LinkObservation
	peerScratch  []id.ID
	routeScratch []id.ID
	pathScratch  [][]topology.LinkID
	spanScratch  []topology.LinkID

	// Chaos-injection hooks: all default-off, so the unperturbed system
	// consumes exactly the same random stream as before they existed.
	probeLoss        float64
	probesSuppressed bool
	silent           map[id.ID]bool
}

// SystemCounters aggregates swallowed-error and fault-injection events.
// The chaos campaign prints them; zero values mean the corresponding
// path never slipped.
type SystemCounters struct {
	// ArchiveRecordErrors counts probe results the archive refused.
	ArchiveRecordErrors uint64
	// ProbeRescheduleErrors counts probe loops that died because the
	// next sweep could not be scheduled.
	ProbeRescheduleErrors uint64
	// ProbesLost counts whole sweeps eaten by injected packet loss.
	ProbesLost uint64
	// ProbesSuppressed counts sweeps skipped by suppression or silence.
	ProbesSuppressed uint64
	// GhostProbesStopped counts probe loops halted because their node
	// departed the overlay.
	GhostProbesStopped uint64
	// ChurnDrops counts deliveries that died because a route member
	// departed mid-flight.
	ChurnDrops uint64
	// ChainsUnavailable counts diagnoses whose accusation chain could
	// not be assembled because a participant departed mid-diagnosis.
	ChainsUnavailable uint64
}

// systemMetrics caches the system's metric handles so the hot paths
// pay only atomic adds, never registry map lookups. All handles are
// nil (safe discards) when no registry is configured.
type systemMetrics struct {
	probeSweeps   *metrics.Counter
	probeRTT      *metrics.Histogram
	probeBytes    *metrics.Counter
	snapshotBytes *metrics.Counter
	msgsSent      *metrics.Counter
	msgsDelivered *metrics.Counter
	msgBytes      *metrics.Counter
	ackBytes      *metrics.Counter
	blameCalls    *metrics.Counter
	blameWall     *metrics.Histogram
	blameProbes   *metrics.Histogram
	chainLen      *metrics.Histogram
}

func newSystemMetrics(r *metrics.Registry) systemMetrics {
	return systemMetrics{
		probeSweeps:   r.Counter("core/probe_sweeps"),
		probeRTT:      r.MustHistogram("core/probe_rtt_ns", metrics.LatencyBuckets),
		probeBytes:    r.Counter("wire/probe_bytes"),
		snapshotBytes: r.Counter("wire/snapshot_bytes"),
		msgsSent:      r.Counter("core/messages_sent"),
		msgsDelivered: r.Counter("core/messages_delivered"),
		msgBytes:      r.Counter("wire/message_bytes"),
		ackBytes:      r.Counter("wire/ack_bytes"),
		blameCalls:    r.Counter("core/blame_calls"),
		blameWall:     r.MustHistogram("core/blame_wallns", metrics.LatencyBuckets),
		blameProbes:   r.MustHistogram("core/blame_probes", metrics.CountBuckets),
		chainLen:      r.MustHistogram("core/accusation_chain_len", metrics.CountBuckets),
	}
}

// BuildSystem constructs the deployment deterministically from cfg and
// rng: topology, certificates, routing state, and tomography trees. No
// events are scheduled yet; call StartProbing and StartFailures, then
// drive s.Sim.
//
// Construction is parallel but scheduling-independent. The contract
// (DESIGN.md §10):
//
//   - The shared rng is consumed only by the serial prefix — topology,
//     host permutation, the CA keypair — and by a single SeedFrom call
//     that derives the build's substream family. Node i then draws
//     exclusively from its own substreams: Stream(2i) for keygen and
//     identifier assignment, Stream(2i+1) for routing-state fills.
//   - Phase 1 (keygen/issuance) writes index-addressed slots; the merge
//     back into Nodes/Order/members is serial in index order, including
//     the (vanishingly rare) identifier-collision redraws, which come
//     from the colliding node's own substream.
//   - Phase 2 (routing state + tomography trees) runs against the
//     completed ring and node table, both read-only from that point;
//     each worker reuses private BFS and leaf scratch, fully
//     overwritten per node.
//
// The result is byte-identical for every Workers value, including 1.
func BuildSystem(cfg SystemConfig, rng stats.Rand) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	graph, err := topology.Generate(cfg.Topology, rng)
	if err != nil {
		return nil, err
	}
	sim := netsim.NewSimulator()
	netOpts := []netsim.NetworkOption{netsim.WithMetrics(cfg.Metrics)}
	if cfg.HopLatency > 0 {
		netOpts = append(netOpts, netsim.WithHopLatency(cfg.HopLatency))
	}
	if cfg.Tracer != nil {
		netOpts = append(netOpts, netsim.WithLinkWatcher(func(l topology.LinkID, down bool) {
			kind := trace.KindLinkRepaired
			if down {
				kind = trace.KindLinkFailed
			}
			cfg.Tracer.Record(trace.Event{At: sim.Now(), Kind: kind, Link: l})
		}))
	}
	net, err := netsim.NewNetwork(graph, sim, rng, netOpts...)
	if err != nil {
		return nil, err
	}

	hosts := graph.EndHosts()
	nOverlay := int(cfg.OverlayFraction * float64(len(hosts)))
	if nOverlay < 4 {
		return nil, fmt.Errorf("core: only %d overlay nodes from %d hosts; increase scale", nOverlay, len(hosts))
	}
	// Deterministic host sample without replacement.
	perm := make([]int, len(hosts))
	for i := range perm {
		perm[i] = i
	}
	for i := len(perm) - 1; i > 0; i-- {
		j := rng.IntN(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}

	ca := sigcrypto.NewAuthority(sigcrypto.KeyPairFromRand(rng), rng)
	s := &System{
		Config:  cfg,
		Topo:    graph,
		Sim:     sim,
		Net:     net,
		CA:      ca,
		Nodes:   make(map[id.ID]*Node, nOverlay),
		Archive: tomography.NewArchive(),
		rng:     rng,
		met:     newSystemMetrics(cfg.Metrics),
	}
	s.Archive.SetMetrics(cfg.Metrics)

	// Last shared-rng draws of the build: everything per-node below comes
	// from substreams of buildSeed, indexed by node position.
	buildSeed := parexec.SeedFrom(rng)

	// Phase 1: keygen and certificate issuance, fanned out. Ed25519
	// signing is deterministic and IssueFor touches no authority state,
	// so slot i's certificate depends only on its substream.
	type issuedSlot struct {
		keys sigcrypto.KeyPair
		cert sigcrypto.Certificate
		rng  stats.Rand
	}
	slots := make([]issuedSlot, nOverlay)
	err = parexec.ForEachWorker(cfg.Workers, nOverlay, "build-keygen", func(_, i int) error {
		stream := buildSeed.Stream(2 * uint64(i))
		keys := sigcrypto.KeyPairFromRand(stream)
		cert, err := ca.IssueFor(hostAddr(hosts[perm[i]]), id.Random(stream), keys.Public)
		if err != nil {
			return err
		}
		slots[i] = issuedSlot{keys: keys, cert: cert, rng: stream}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Serial merge in index order. Identifier collisions (~2^-128 per
	// pair) redraw from the colliding node's own substream, so even that
	// path is scheduling-independent.
	members := make([]id.ID, 0, nOverlay)
	for i := range slots {
		slot := &slots[i]
		for ca.Claim(slot.cert.NodeID) != nil {
			slot.cert, err = ca.IssueFor(slot.cert.Addr, id.Random(slot.rng), slot.keys.Public)
			if err != nil {
				return nil, err
			}
		}
		node := &Node{Cert: slot.cert, Keys: slot.keys, Router: hosts[perm[i]]}
		s.Nodes[slot.cert.NodeID] = node
		s.Order = append(s.Order, slot.cert.NodeID)
		members = append(members, slot.cert.NodeID)
	}
	s.Ring, err = overlay.NewRing(members)
	if err != nil {
		return nil, err
	}

	// Mark malicious nodes.
	nBad := int(cfg.MaliciousFraction * float64(nOverlay))
	for i := 0; i < nBad; i++ {
		s.Nodes[s.Order[i]].Behavior = Behavior{DropsMessages: true, InvertsProbes: true}
	}

	// Phase 2: routing state and tomography trees, fanned out. The ring
	// and node table are complete and read-only from here; node i's
	// standard-table draws come from Stream(2i+1), and each worker reuses
	// its own BFS and leaf scratch (fully overwritten per node).
	type buildScratch struct {
		bfs    topology.BFSScratch
		peers  []id.ID
		leaves []tomography.Leaf
	}
	scratch := make([]buildScratch, parexec.Workers(cfg.Workers))
	err = parexec.ForEachWorker(cfg.Workers, len(s.Order), "build-routing", func(w, i int) error {
		sc := &scratch[w]
		nid := s.Order[i]
		node := s.Nodes[nid]
		routing, err := overlay.BuildRoutingState(nid, s.Ring, buildSeed.Stream(2*uint64(i)+1))
		if err != nil {
			return err
		}
		node.Routing = routing
		sc.peers = routing.AppendRoutingPeers(sc.peers[:0])
		sc.leaves = sc.leaves[:0]
		for _, p := range sc.peers {
			sc.leaves = append(sc.leaves, tomography.Leaf{Node: p, Router: s.Nodes[p].Router})
		}
		bfs, err := graph.BFSInto(&sc.bfs, node.Router)
		if err != nil {
			return err
		}
		tree, err := tomography.BuildTreeBFS(bfs, nid, node.Router, sc.leaves)
		if err != nil {
			return err
		}
		node.Tree = tree
		return nil
	})
	if err != nil {
		return nil, err
	}

	s.Engine, err = NewBlameEngine(s.Archive, cfg.Blame, WithRecordFilter(s.collusionFilter))
	if err != nil {
		return nil, err
	}
	s.Window, err = NewVerdictWindow(cfg.Window)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// hostAddr formats a node's network address from its attachment router.
// strconv.Itoa instead of fmt.Sprintf: issuance runs once per node and
// the Sprintf boxing showed up in build-phase profiles.
func hostAddr(router topology.RouterID) string {
	return "host-" + strconv.Itoa(int(router))
}

// collusionFilter implements the §4.3 adversary: colluding probers
// adapt their published results to the judgment — links up when a
// target is judged (framing it), links down when an ally is (excusing
// it as a network fault). Allies are fellow clique members when the
// prober belongs to a clique, and any fellow dropper otherwise.
func (s *System) collusionFilter(judged id.ID, rec tomography.ProbeRecord) (tomography.ProbeRecord, bool) {
	prober := s.Nodes[rec.Prober]
	if prober == nil || !prober.Behavior.InvertsProbes {
		return rec, true
	}
	ally := false
	if judgedNode := s.Nodes[judged]; judgedNode != nil {
		if c := prober.Behavior.Clique; c != 0 {
			ally = judgedNode.Behavior.Clique == c
		} else {
			ally = judgedNode.Behavior.DropsMessages
		}
	}
	rec.Up = !ally
	return rec, true
}

// SetBehavior installs a node's (mis)behavior policy at runtime — the
// adversary campaign's hook for marking attackers after construction.
// Like the chaos hooks, restoring the zero Behavior restores full
// protocol compliance (and the unperturbed random stream).
func (s *System) SetBehavior(nid id.ID, b Behavior) error {
	n, ok := s.Nodes[nid]
	if !ok {
		return fmt.Errorf("core: unknown node %s", nid.Short())
	}
	if b.DropProb < 0 || b.DropProb >= 1 || math.IsNaN(b.DropProb) {
		return fmt.Errorf("core: drop probability %v out of [0,1)", b.DropProb)
	}
	if b.DropPeriod < 0 {
		return fmt.Errorf("core: drop period %d negative", b.DropPeriod)
	}
	n.Behavior = b
	return nil
}

// Keys returns the CA-backed key directory for snapshot and accusation
// verification.
func (s *System) Keys() KeyDirectory {
	return func(x id.ID) (ed25519.PublicKey, bool) {
		n, ok := s.Nodes[x]
		if !ok {
			return nil, false
		}
		return n.Keys.Public, true
	}
}

// OverlayPaths returns every (host → routing peer) IP path — the
// candidate set for the failure injector and the denominators for the
// coverage experiment.
func (s *System) OverlayPaths() [][]topology.LinkID {
	var out [][]topology.LinkID
	for _, nid := range s.Order {
		for _, leaf := range s.Nodes[nid].Tree.Leaves {
			out = append(out, leaf.Path)
		}
	}
	return out
}

// StartFailures begins the link-failure process over the overlay paths.
func (s *System) StartFailures() error {
	inj, err := netsim.NewFailureInjector(s.Net, s.rng, s.OverlayPaths(), s.Config.Failures)
	if err != nil {
		return err
	}
	s.Injector = inj
	return inj.Start()
}

// StartProbing schedules every node's randomized lightweight probing
// loop: each node observes its tree's links (with the configured probe
// accuracy) and publishes the results into the shared archive, modeling
// snapshot dissemination (§3.2). Colluders' records are stored truthfully
// and flipped at judgment time by the collusion filter, matching the
// paper's adaptive adversary.
func (s *System) StartProbing() error {
	if s.probing {
		return fmt.Errorf("core: probing already started")
	}
	s.probing = true
	for _, nid := range s.Order {
		node := s.Nodes[nid]
		if err := s.scheduleProbe(node); err != nil {
			return err
		}
	}
	return nil
}

// SetProbeLoss injects random probe-packet loss: each scheduled sweep
// is eaten whole with probability p (its observations never reach the
// archive). 0 disables the fault and restores the exact pre-fault
// random stream.
func (s *System) SetProbeLoss(p float64) error {
	if p < 0 || p >= 1 || math.IsNaN(p) {
		return fmt.Errorf("core: probe loss %v out of [0,1)", p)
	}
	s.probeLoss = p
	return nil
}

// SuppressProbes pauses (or resumes) every node's probe publication —
// the evidence-staleness fault: virtual time keeps advancing, so
// archived probes age past the §3.4 admissibility window Δ.
func (s *System) SuppressProbes(suppressed bool) { s.probesSuppressed = suppressed }

// SetNodeSilent marks one node's probe sweeps as silent (a
// tomography-tree leaf that stopped reporting) without removing it from
// the overlay.
func (s *System) SetNodeSilent(nid id.ID, silent bool) error {
	if _, ok := s.Nodes[nid]; !ok {
		return fmt.Errorf("core: unknown node %s", nid.Short())
	}
	if s.silent == nil {
		s.silent = make(map[id.ID]bool)
	}
	s.silent[nid] = silent
	return nil
}

func (s *System) scheduleProbe(node *Node) error {
	// One sweep closure per node, created on first schedule: a probe loop
	// fires tens of thousands of times over a long run, and allocating a
	// fresh closure per sweep was a measurable share of steady-state heap
	// churn.
	if node.sweep == nil {
		node.sweep = func() { s.probeSweep(node) }
	}
	delay := time.Duration(s.rng.Float64() * float64(s.Config.MaxProbeTime))
	return s.Sim.ScheduleAfter(delay, node.sweep)
}

// probeSweep runs one lightweight probe sweep for node and reschedules
// the next.
func (s *System) probeSweep(node *Node) {
	if _, ok := s.Nodes[node.ID()]; !ok {
		// The node departed after this sweep was scheduled: a ghost
		// must not keep publishing probes, and its loop ends here.
		s.Counters.GhostProbesStopped++
		return
	}
	if s.probesSuppressed || s.silent[node.ID()] {
		s.Counters.ProbesSuppressed++
		s.reschedProbe(node)
		return
	}
	if s.probeLoss > 0 && s.rng.Float64() < s.probeLoss {
		s.Counters.ProbesLost++
		s.reschedProbe(node)
		return
	}
	// The archive copies observations out record by record, so the
	// unsigned path reuses one scratch slice across every sweep in the
	// system. Signed snapshots retain obs, so that path keeps a fresh
	// allocation.
	var obs []tomography.LinkObservation
	var err error
	if s.Config.SignedSnapshots {
		obs, err = tomography.ObserveLinks(s.Net, node.Tree.Links(), s.Config.Blame.ProbeAccuracy, s.rng)
	} else {
		obs, err = tomography.AppendObserveLinks(s.obsScratch[:0], s.Net, node.Tree.Links(), s.Config.Blame.ProbeAccuracy, s.rng)
		if err == nil {
			s.obsScratch = obs
		}
	}
	if err == nil {
		s.met.probeSweeps.Inc()
		s.met.probeBytes.Add(uint64(len(obs) * wiresize.ProbePacket))
		for i := range node.Tree.Leaves {
			// Round trip to each leaf in virtual time: the sim-time
			// probe-RTT distribution of this sweep.
			s.met.probeRTT.ObserveDuration(2 * s.Net.Latency(node.Tree.Leaves[i].Path))
		}
		if s.Config.SignedSnapshots {
			s.publishSnapshot(node, obs)
		} else if err := s.Archive.Record(node.ID(), s.Sim.Now(), obs); err != nil {
			s.Counters.ArchiveRecordErrors++
		}
		s.emit(trace.Event{At: s.Sim.Now(), Kind: trace.KindProbe, Node: node.ID()})
	}
	if s.Config.ArchiveRetention > 0 {
		now := s.Sim.Now()
		if now.Sub(s.lastPrune) >= s.Config.ArchiveRetention/4 {
			s.lastPrune = now
			s.Archive.Prune(now.Add(-s.Config.ArchiveRetention))
		}
	}
	s.reschedProbe(node)
}

// reschedProbe queues the node's next sweep, surfacing (instead of
// swallowing) scheduling failures.
func (s *System) reschedProbe(node *Node) {
	if err := s.scheduleProbe(node); err != nil {
		s.Counters.ProbeRescheduleErrors++
	}
}

// publishSnapshot runs the full §3.2 dissemination path: the prober
// signs its snapshot and receivers validate the signature before
// archiving. Snapshots that fail validation never enter the archive.
func (s *System) publishSnapshot(node *Node, obs []tomography.LinkObservation) {
	spacing, err := node.Routing.Leaf.MeanSpacing()
	if err != nil {
		spacing = 0
	}
	snap := &Snapshot{
		Prober:       node.ID(),
		At:           s.Sim.Now(),
		Observations: obs,
		LeafSpacing:  spacing,
	}
	snap.Sign(node.Keys)
	s.met.snapshotBytes.Add(uint64(wiresize.SnapshotBytes(len(obs))))
	validator := &SnapshotValidator{Keys: s.Keys()}
	if err := validator.Ingest(s.Archive, snap); err != nil {
		s.emit(trace.Event{
			At: s.Sim.Now(), Kind: trace.KindSnapshotRejected,
			Node: node.ID(), Detail: err.Error(),
		})
	}
}

// emit records a trace event when tracing is enabled.
func (s *System) emit(e trace.Event) {
	if s.Config.Tracer != nil {
		s.Config.Tracer.Record(e)
	}
}

// Run advances the simulation by d of virtual time.
func (s *System) Run(d time.Duration) { s.Sim.RunFor(d) }
