package core

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"testing"
	"time"

	"concilium/internal/netsim"
	"concilium/internal/topology"
)

func TestDefenseArchiveRebuttal(t *testing.T) {
	t.Parallel()
	// The §3.5 scenario: A holds an accusation naming B, but B had
	// issued its own verdict against C for the same message. B rebuts;
	// the extended chain names C and still verifies.
	r := rand.New(rand.NewPCG(801, 803))
	ids, keys := newIdentities(4, r) // A, B, C, D(est)
	links := buildChain(t, ids)      // A->B, B->C, C->D with shared msgID

	presented, err := NewRevisionChain(links[:1]) // A blames B
	if err != nil {
		t.Fatal(err)
	}
	defense := NewDefenseArchive(ids[1].id) // B's archive
	if err := defense.Record(links[1]); err != nil {
		t.Fatal(err)
	}
	if defense.Len() != 1 {
		t.Errorf("Len = %d", defense.Len())
	}

	amended, err := defense.Defend(presented)
	if err != nil {
		t.Fatal(err)
	}
	if amended.Culprit() != ids[2].id {
		t.Errorf("culprit after rebuttal = %s, want C", amended.Culprit().Short())
	}
	if err := amended.Verify(keys, 0.4); err != nil {
		t.Errorf("rebutted chain unverifiable: %v", err)
	}
	// Chained rebuttals: C defends with its verdict against D.
	cArchive := NewDefenseArchive(ids[2].id)
	if err := cArchive.Record(links[2]); err != nil {
		t.Fatal(err)
	}
	final, err := cArchive.Defend(amended)
	if err != nil {
		t.Fatal(err)
	}
	if final.Culprit() != ids[3].id {
		t.Errorf("final culprit = %s, want D", final.Culprit().Short())
	}
}

func TestDefenseArchiveCannotRebutWithoutEvidence(t *testing.T) {
	t.Parallel()
	// The true dropper has no downstream verdict: its peers' probes saw
	// every link up, so it cannot fabricate one (§3.5). Defend must
	// fail loudly.
	r := rand.New(rand.NewPCG(805, 807))
	ids, _ := newIdentities(4, r)
	links := buildChain(t, ids)
	presented, err := NewRevisionChain(links) // full chain names D
	if err != nil {
		t.Fatal(err)
	}
	dArchive := NewDefenseArchive(ids[3].id)
	if _, err := dArchive.Defend(presented); !errors.Is(err, ErrNoDefense) {
		t.Errorf("culprit without evidence: %v", err)
	}
}

// TestDefendWithinRebuttalAbuse pins the §3.5 admissibility discipline
// against the two abuse patterns the adversary campaign exercises: a
// convicted host replaying an old valid rebuttal against fresh blame,
// and a host sitting on its rebuttal until the verdict has hardened.
// The verdicts are pinned across seeds — only identities vary, never
// the outcome.
func TestDefendWithinRebuttalAbuse(t *testing.T) {
	t.Parallel()
	const (
		msgID  = 99
		window = 2 * time.Minute
	)
	accusedAt := netsim.Time(0).Add(10 * time.Minute)
	for _, seed := range []uint64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewPCG(seed, seed^0xdefe5e))
			ids, keys := newIdentities(4, r) // A, B, C, D(est)
			dest := ids[3].id

			accusation := func(accuser, accused testIdentity, at netsim.Time) Accusation {
				res := buildGuiltyResult(t, accused.id, at)
				commit := NewCommitment(accused.keys, accuser.id, accused.id, dest, msgID, at-100)
				acc, err := NewAccusation(accuser.keys, accuser.id, res, msgID, []topology.LinkID{1, 2}, commit)
				if err != nil {
					t.Fatal(err)
				}
				return acc
			}
			presented, err := NewRevisionChain([]Accusation{accusation(ids[0], ids[1], accusedAt)})
			if err != nil {
				t.Fatal(err)
			}

			cases := []struct {
				name         string
				downstreamAt netsim.Time // when B issued its verdict against C
				now          netsim.Time // when B presents the rebuttal
				wantErr      error
			}{
				{
					name:         "fresh rebuttal clears blame",
					downstreamAt: accusedAt.Add(30 * time.Second),
					now:          accusedAt.Add(time.Minute),
				},
				{
					name:         "replayed old rebuttal rejected",
					downstreamAt: accusedAt.Add(-5 * time.Minute),
					now:          accusedAt.Add(time.Minute),
					wantErr:      ErrStaleRebuttal,
				},
				{
					name:         "rebuttal after verdict hardened",
					downstreamAt: accusedAt.Add(30 * time.Second),
					now:          accusedAt.Add(10 * time.Minute),
					wantErr:      ErrRebuttalWindowClosed,
				},
			}
			for _, tc := range cases {
				t.Run(tc.name, func(t *testing.T) {
					archive := NewDefenseArchive(ids[1].id)
					if err := archive.Record(accusation(ids[1], ids[2], tc.downstreamAt)); err != nil {
						t.Fatal(err)
					}
					amended, err := archive.DefendWithin(presented, tc.now, window)
					if tc.wantErr != nil {
						if !errors.Is(err, tc.wantErr) {
							t.Fatalf("err = %v, want %v", err, tc.wantErr)
						}
						return
					}
					if err != nil {
						t.Fatal(err)
					}
					// Pinned verdict: blame moves to C and the extended
					// chain still verifies end to end.
					if amended.Culprit() != ids[2].id {
						t.Errorf("culprit = %s, want C", amended.Culprit().Short())
					}
					if err := amended.Verify(keys, 0.4); err != nil {
						t.Errorf("rebutted chain unverifiable: %v", err)
					}
				})
			}

			// A degenerate window is a caller bug, not an open gate.
			archive := NewDefenseArchive(ids[1].id)
			if _, err := archive.DefendWithin(presented, accusedAt, 0); err == nil {
				t.Error("non-positive rebuttal window accepted")
			}
		})
	}
}

func TestDefenseArchiveValidation(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(809, 811))
	ids, _ := newIdentities(4, r)
	links := buildChain(t, ids)

	// Cannot archive someone else's verdict.
	bArchive := NewDefenseArchive(ids[1].id)
	if err := bArchive.Record(links[0]); err == nil {
		t.Error("foreign accusation archived")
	}
	if bArchive.Owner() != ids[1].id {
		t.Error("owner wrong")
	}

	// Cannot defend an accusation naming someone else.
	if err := bArchive.Record(links[1]); err != nil {
		t.Fatal(err)
	}
	chainNamingC, err := NewRevisionChain(links[:2])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bArchive.Defend(chainNamingC); err == nil {
		t.Error("defended an accusation naming another host")
	}
	if _, err := bArchive.Defend(nil); err == nil {
		t.Error("nil chain defended")
	}
}
