package core

import (
	"errors"
	"math/rand/v2"
	"testing"
)

func TestDefenseArchiveRebuttal(t *testing.T) {
	t.Parallel()
	// The §3.5 scenario: A holds an accusation naming B, but B had
	// issued its own verdict against C for the same message. B rebuts;
	// the extended chain names C and still verifies.
	r := rand.New(rand.NewPCG(801, 803))
	ids, keys := newIdentities(4, r) // A, B, C, D(est)
	links := buildChain(t, ids)      // A->B, B->C, C->D with shared msgID

	presented, err := NewRevisionChain(links[:1]) // A blames B
	if err != nil {
		t.Fatal(err)
	}
	defense := NewDefenseArchive(ids[1].id) // B's archive
	if err := defense.Record(links[1]); err != nil {
		t.Fatal(err)
	}
	if defense.Len() != 1 {
		t.Errorf("Len = %d", defense.Len())
	}

	amended, err := defense.Defend(presented)
	if err != nil {
		t.Fatal(err)
	}
	if amended.Culprit() != ids[2].id {
		t.Errorf("culprit after rebuttal = %s, want C", amended.Culprit().Short())
	}
	if err := amended.Verify(keys, 0.4); err != nil {
		t.Errorf("rebutted chain unverifiable: %v", err)
	}
	// Chained rebuttals: C defends with its verdict against D.
	cArchive := NewDefenseArchive(ids[2].id)
	if err := cArchive.Record(links[2]); err != nil {
		t.Fatal(err)
	}
	final, err := cArchive.Defend(amended)
	if err != nil {
		t.Fatal(err)
	}
	if final.Culprit() != ids[3].id {
		t.Errorf("final culprit = %s, want D", final.Culprit().Short())
	}
}

func TestDefenseArchiveCannotRebutWithoutEvidence(t *testing.T) {
	t.Parallel()
	// The true dropper has no downstream verdict: its peers' probes saw
	// every link up, so it cannot fabricate one (§3.5). Defend must
	// fail loudly.
	r := rand.New(rand.NewPCG(805, 807))
	ids, _ := newIdentities(4, r)
	links := buildChain(t, ids)
	presented, err := NewRevisionChain(links) // full chain names D
	if err != nil {
		t.Fatal(err)
	}
	dArchive := NewDefenseArchive(ids[3].id)
	if _, err := dArchive.Defend(presented); !errors.Is(err, ErrNoDefense) {
		t.Errorf("culprit without evidence: %v", err)
	}
}

func TestDefenseArchiveValidation(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(809, 811))
	ids, _ := newIdentities(4, r)
	links := buildChain(t, ids)

	// Cannot archive someone else's verdict.
	bArchive := NewDefenseArchive(ids[1].id)
	if err := bArchive.Record(links[0]); err == nil {
		t.Error("foreign accusation archived")
	}
	if bArchive.Owner() != ids[1].id {
		t.Error("owner wrong")
	}

	// Cannot defend an accusation naming someone else.
	if err := bArchive.Record(links[1]); err != nil {
		t.Fatal(err)
	}
	chainNamingC, err := NewRevisionChain(links[:2])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bArchive.Defend(chainNamingC); err == nil {
		t.Error("defended an accusation naming another host")
	}
	if _, err := bArchive.Defend(nil); err == nil {
		t.Error("nil chain defended")
	}
}
