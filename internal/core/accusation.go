package core

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"concilium/internal/id"
	"concilium/internal/netsim"
	"concilium/internal/sigcrypto"
	"concilium/internal/topology"
)

// Accusation and commitment errors.
var (
	ErrBadCommitmentSignature = errors.New("core: forwarding commitment signature invalid")
	ErrBadAccusationSignature = errors.New("core: accusation signature invalid")
	ErrCommitmentMismatch     = errors.New("core: commitment does not cover the accused message")
	ErrBlameMismatch          = errors.New("core: recorded blame does not match the evidence")
	ErrBlameBelowThreshold    = errors.New("core: evidence does not support a guilty verdict")
	ErrBrokenChain            = errors.New("core: revision chain links do not connect")
)

// Commitment is a signed forwarding promise (§3.6): Via agrees to
// forward message MsgID from From toward Dest. Accusations must include
// the accused's commitment, so a malicious sender cannot frame a peer
// for a message it never sent.
type Commitment struct {
	From      id.ID
	Via       id.ID
	Dest      id.ID
	MsgID     uint64
	At        netsim.Time
	Signature []byte
}

func (c *Commitment) payload() []byte {
	buf := make([]byte, 0, 6+3*id.Bytes+16)
	buf = append(buf, "commit"...)
	buf = append(buf, c.From[:]...)
	buf = append(buf, c.Via[:]...)
	buf = append(buf, c.Dest[:]...)
	buf = binary.BigEndian.AppendUint64(buf, c.MsgID)
	buf = binary.BigEndian.AppendUint64(buf, uint64(c.At))
	return buf
}

// NewCommitment signs a forwarding promise as via.
func NewCommitment(kp sigcrypto.KeyPair, from, via, dest id.ID, msgID uint64, at netsim.Time) Commitment {
	c := Commitment{From: from, Via: via, Dest: dest, MsgID: msgID, At: at}
	c.Signature = kp.Sign(c.payload())
	return c
}

// Verify checks the commitment under via's public key.
func (c *Commitment) Verify(viaPub ed25519.PublicKey) error {
	if !sigcrypto.Verify(viaPub, c.payload(), c.Signature) {
		return ErrBadCommitmentSignature
	}
	return nil
}

// Accusation is a signed, self-verifying fault claim (§3.4): Accuser
// judged Accused for dropping message MsgID, with the archived per-link
// evidence that produced the blame value. Third parties recompute the
// blame from the evidence before honoring the accusation, and the
// commitment proves the accused agreed to forward that very message.
type Accusation struct {
	Accuser    id.ID
	Accused    id.ID
	MsgID      uint64
	At         netsim.Time
	Blame      float64
	Path       []topology.LinkID
	Evidence   []LinkConfidence
	Commitment Commitment
	Signature  []byte
}

func (a *Accusation) payload() []byte {
	buf := make([]byte, 0, 64+13*len(a.Evidence))
	buf = append(buf, "accuse"...)
	buf = append(buf, a.Accuser[:]...)
	buf = append(buf, a.Accused[:]...)
	buf = binary.BigEndian.AppendUint64(buf, a.MsgID)
	buf = binary.BigEndian.AppendUint64(buf, uint64(a.At))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(a.Blame))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(a.Path)))
	for _, l := range a.Path {
		buf = binary.BigEndian.AppendUint32(buf, uint32(l))
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(a.Evidence)))
	for _, lc := range a.Evidence {
		buf = binary.BigEndian.AppendUint32(buf, uint32(lc.Link))
		buf = binary.BigEndian.AppendUint32(buf, uint32(lc.Probes))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(lc.Confidence))
	}
	buf = append(buf, a.Commitment.payload()...)
	buf = append(buf, a.Commitment.Signature...)
	return buf
}

// NewAccusation assembles and signs an accusation from a guilty blame
// result and the accused's forwarding commitment.
func NewAccusation(kp sigcrypto.KeyPair, accuser id.ID, res BlameResult, msgID uint64, path []topology.LinkID, commitment Commitment) (Accusation, error) {
	if !res.Guilty {
		return Accusation{}, fmt.Errorf("core: refusing to build an accusation from a non-guilty result")
	}
	if commitment.Via != res.Judged {
		return Accusation{}, fmt.Errorf("%w: commitment from %s, judging %s",
			ErrCommitmentMismatch, commitment.Via.Short(), res.Judged.Short())
	}
	if commitment.MsgID != msgID {
		return Accusation{}, fmt.Errorf("%w: commitment covers message %d, accusing for %d",
			ErrCommitmentMismatch, commitment.MsgID, msgID)
	}
	a := Accusation{
		Accuser:    accuser,
		Accused:    res.Judged,
		MsgID:      msgID,
		At:         res.At,
		Blame:      res.Blame,
		Path:       append([]topology.LinkID(nil), path...),
		Evidence:   append([]LinkConfidence(nil), res.Evidence...),
		Commitment: commitment,
	}
	a.Signature = kp.Sign(a.payload())
	return a, nil
}

// Verify performs the third-party checks of §3.4: the accuser's
// signature, the accused's commitment for this exact message, and an
// independent recomputation of the blame from the archived evidence
// against the verifier's guilty threshold.
func (a *Accusation) Verify(keys KeyDirectory, threshold float64) error {
	if keys == nil {
		return fmt.Errorf("core: nil key directory")
	}
	accuserPub, ok := keys(a.Accuser)
	if !ok {
		return fmt.Errorf("%w: accuser %s", ErrUnknownSigner, a.Accuser.Short())
	}
	if !sigcrypto.Verify(accuserPub, a.payload(), a.Signature) {
		return ErrBadAccusationSignature
	}
	accusedPub, ok := keys(a.Accused)
	if !ok {
		return fmt.Errorf("%w: accused %s", ErrUnknownSigner, a.Accused.Short())
	}
	if err := a.Commitment.Verify(accusedPub); err != nil {
		return err
	}
	if a.Commitment.Via != a.Accused || a.Commitment.MsgID != a.MsgID {
		return ErrCommitmentMismatch
	}
	recomputed := RecomputeBlame(a.Evidence)
	if math.Abs(recomputed-a.Blame) > 1e-9 {
		return fmt.Errorf("%w: recorded %v, recomputed %v", ErrBlameMismatch, a.Blame, recomputed)
	}
	if recomputed < threshold {
		return fmt.Errorf("%w: blame %v below threshold %v", ErrBlameBelowThreshold, recomputed, threshold)
	}
	return nil
}

// RevisionChain is an amended accusation (§3.5): the ordered verdicts
// issued along the route — A blames B, B blames C, C blames D — whose
// last element names the host that could not push blame further
// downstream. Because every element is independently signed and
// self-verifying, the chain as a whole is too.
type RevisionChain struct {
	Links []Accusation
}

// NewRevisionChain validates chain structure: each accusation's accused
// must be the next accusation's accuser, for the same message.
func NewRevisionChain(links []Accusation) (*RevisionChain, error) {
	if len(links) == 0 {
		return nil, fmt.Errorf("core: empty revision chain")
	}
	for i := 0; i+1 < len(links); i++ {
		if links[i].Accused != links[i+1].Accuser {
			return nil, fmt.Errorf("%w: link %d accuses %s but link %d is from %s",
				ErrBrokenChain, i, links[i].Accused.Short(), i+1, links[i+1].Accuser.Short())
		}
		if links[i].MsgID != links[i+1].MsgID {
			return nil, fmt.Errorf("%w: message ids %d and %d differ",
				ErrBrokenChain, links[i].MsgID, links[i+1].MsgID)
		}
	}
	return &RevisionChain{Links: append([]Accusation(nil), links...)}, nil
}

// Culprit returns the host the amended accusation ultimately blames.
func (rc *RevisionChain) Culprit() id.ID {
	return rc.Links[len(rc.Links)-1].Accused
}

// Exonerated returns the hosts the chain clears of blame: every
// intermediate accused that produced its own verifiable downstream
// verdict.
func (rc *RevisionChain) Exonerated() []id.ID {
	out := make([]id.ID, 0, len(rc.Links)-1)
	for _, l := range rc.Links[:len(rc.Links)-1] {
		out = append(out, l.Accused)
	}
	return out
}

// Verify validates every link in the chain; a valid chain transfers the
// original accusation's blame onto the culprit.
func (rc *RevisionChain) Verify(keys KeyDirectory, threshold float64) error {
	for i := range rc.Links {
		if err := rc.Links[i].Verify(keys, threshold); err != nil {
			return fmt.Errorf("core: chain link %d: %w", i, err)
		}
	}
	return nil
}

// Extend appends a further-downstream verdict — how a wrongly accused
// host rebuts an accusation against it (§3.5): it presents its own
// verifiable verdict against the next hop, pushing blame along.
func (rc *RevisionChain) Extend(downstream Accusation) (*RevisionChain, error) {
	links := append(append([]Accusation(nil), rc.Links...), downstream)
	return NewRevisionChain(links)
}
