package core

import (
	"fmt"

	"concilium/internal/id"
	"concilium/internal/overlay"
	"concilium/internal/sigcrypto"
	"concilium/internal/tomography"
	"concilium/internal/topology"
)

// Behavior describes how a simulated node deviates from the protocol.
// The zero value is fully honest.
type Behavior struct {
	// DropsMessages makes the node silently discard messages it
	// committed to forward — the forwarding fault Concilium exists to
	// catch.
	DropsMessages bool
	// InvertsProbes makes the node publish adversarially flipped probe
	// results when it colludes against a judgment (§4.3): claiming links
	// up when an innocent peer is judged, down when a colluder is.
	InvertsProbes bool
}

// Honest reports whether the node follows the protocol.
func (b Behavior) Honest() bool { return !b.DropsMessages && !b.InvertsProbes }

// Node is one Concilium participant: its identity, overlay routing
// state, attachment point, and tomography tree.
type Node struct {
	Cert     sigcrypto.Certificate
	Keys     sigcrypto.KeyPair
	Router   topology.RouterID
	Routing  *overlay.RoutingState
	Tree     *tomography.Tree
	Behavior Behavior

	// msgSeq numbers locally originated messages.
	msgSeq uint64
	// sweep is the node's probe-sweep callback, created once on first
	// schedule and reused for every rescheduling (one closure per node,
	// not per sweep).
	sweep func()
}

// ID returns the node's overlay identifier.
func (n *Node) ID() id.ID { return n.Cert.NodeID }

// NextMsgID issues a fresh locally unique message number.
func (n *Node) NextMsgID() uint64 {
	n.msgSeq++
	return n.msgSeq
}

// PathToPeer returns the IP link path from this node to one of its
// routing peers, from its tomography tree.
func (n *Node) PathToPeer(peer id.ID) ([]topology.LinkID, error) {
	path, ok := n.Tree.PathTo(peer)
	if !ok {
		return nil, fmt.Errorf("core: %s has no path to peer %s", n.ID().Short(), peer.Short())
	}
	return path, nil
}

// BuildAdvert assembles the node's signed routing advertisement entries:
// each routing peer with a freshness timestamp signed by that peer.
// In a deployment the timestamps arrive piggybacked on availability
// probe responses; the directory parameter models having them on hand.
func (n *Node) BuildAdvert(at int64, peerKeys func(id.ID) (sigcrypto.KeyPair, bool)) ([]AdvertEntry, error) {
	peers := n.Routing.RoutingPeers()
	entries := make([]AdvertEntry, 0, len(peers))
	for _, p := range peers {
		kp, ok := peerKeys(p)
		if !ok {
			return nil, fmt.Errorf("core: no keys for peer %s", p.Short())
		}
		entries = append(entries, AdvertEntry{
			Peer:      p,
			Freshness: sigcrypto.NewTimestamp(kp, p, at),
		})
	}
	return entries, nil
}
