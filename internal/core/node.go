package core

import (
	"fmt"

	"concilium/internal/id"
	"concilium/internal/overlay"
	"concilium/internal/sigcrypto"
	"concilium/internal/tomography"
	"concilium/internal/topology"
)

// Behavior describes how a simulated node deviates from the protocol.
// The zero value is fully honest.
type Behavior struct {
	// DropsMessages makes the node silently discard messages it
	// committed to forward — the forwarding fault Concilium exists to
	// catch.
	DropsMessages bool
	// InvertsProbes makes the node publish adversarially flipped probe
	// results when it colludes against a judgment (§4.3): claiming links
	// up when an innocent peer is judged, down when a colluder is.
	InvertsProbes bool
	// DropProb makes the node a probabilistic dropper: each message it
	// should forward is silently discarded with this probability. Tuned
	// below M/W such a node slips under the (w,m) sliding window — the
	// adversary campaign's selective dropper.
	DropProb float64
	// DropPeriod makes the node a deterministic selective dropper: it
	// discards every DropPeriod-th message it is asked to forward
	// (0 disables).
	DropPeriod int
	// Clique labels the colluding group the node belongs to (0 means
	// independent). Same-clique nodes corroborate each other's forged
	// observations and co-sign accusations; the clique-discounting rule
	// in the blame engine collapses them into one witness.
	Clique int
}

// Honest reports whether the node follows the protocol.
func (b Behavior) Honest() bool {
	return !b.DropsMessages && !b.InvertsProbes &&
		b.DropProb == 0 && b.DropPeriod == 0 && b.Clique == 0
}

// Node is one Concilium participant: its identity, overlay routing
// state, attachment point, and tomography tree.
type Node struct {
	Cert     sigcrypto.Certificate
	Keys     sigcrypto.KeyPair
	Router   topology.RouterID
	Routing  *overlay.RoutingState
	Tree     *tomography.Tree
	Behavior Behavior

	// msgSeq numbers locally originated messages.
	msgSeq uint64
	// fwdSeq counts messages the node was asked to forward; the
	// periodic selective dropper keys off it.
	fwdSeq uint64
	// sweep is the node's probe-sweep callback, created once on first
	// schedule and reused for every rescheduling (one closure per node,
	// not per sweep).
	sweep func()
}

// ID returns the node's overlay identifier.
func (n *Node) ID() id.ID { return n.Cert.NodeID }

// NextMsgID issues a fresh locally unique message number.
func (n *Node) NextMsgID() uint64 {
	n.msgSeq++
	return n.msgSeq
}

// PathToPeer returns the IP link path from this node to one of its
// routing peers, from its tomography tree.
func (n *Node) PathToPeer(peer id.ID) ([]topology.LinkID, error) {
	path, ok := n.Tree.PathTo(peer)
	if !ok {
		return nil, fmt.Errorf("core: %s has no path to peer %s", n.ID().Short(), peer.Short())
	}
	return path, nil
}

// BuildAdvert assembles the node's signed routing advertisement entries:
// each routing peer with a freshness timestamp signed by that peer.
// In a deployment the timestamps arrive piggybacked on availability
// probe responses; the directory parameter models having them on hand.
func (n *Node) BuildAdvert(at int64, peerKeys func(id.ID) (sigcrypto.KeyPair, bool)) ([]AdvertEntry, error) {
	peers := n.Routing.RoutingPeers()
	entries := make([]AdvertEntry, 0, len(peers))
	for _, p := range peers {
		kp, ok := peerKeys(p)
		if !ok {
			return nil, fmt.Errorf("core: no keys for peer %s", p.Short())
		}
		entries = append(entries, AdvertEntry{
			Peer:      p,
			Freshness: sigcrypto.NewTimestamp(kp, p, at),
		})
	}
	return entries, nil
}
