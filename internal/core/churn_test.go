package core

import (
	"testing"
	"time"

	"concilium/internal/id"
	"concilium/internal/overlay"
	"concilium/internal/topology"
)

func TestFailNodeRepairsSurvivors(t *testing.T) {
	t.Parallel()
	s := buildTestSystem(t, nil)
	victim := s.Order[len(s.Order)/2]
	before := len(s.Order)

	if err := s.FailNode(victim); err != nil {
		t.Fatal(err)
	}
	if len(s.Order) != before-1 || s.Ring.Contains(victim) {
		t.Fatal("victim not removed")
	}
	// Every survivor's state is repaired: no reference to the departed
	// node anywhere, secure tables still satisfy the constraint, and
	// trees cover the current peer sets.
	for _, nid := range s.Order {
		node := s.Nodes[nid]
		for _, p := range node.Routing.RoutingPeers() {
			if p == victim {
				t.Fatalf("node %s still peers with departed %s", nid.Short(), victim.Short())
			}
		}
		if err := node.Routing.Secure.Validate(); err != nil {
			t.Fatalf("node %s secure table corrupt: %v", nid.Short(), err)
		}
		if len(node.Tree.Leaves) != len(node.Routing.RoutingPeers()) {
			t.Fatalf("node %s tree out of sync with peers", nid.Short())
		}
		// The repaired secure table matches a from-scratch fill.
		rebuilt, err := overlay.BuildSecureTable(nid, s.Ring)
		if err != nil {
			t.Fatal(err)
		}
		for row := 0; row < 32; row++ {
			for col := byte(0); col < 16; col++ {
				got, gok := node.Routing.Secure.Slot(row, col)
				want, wok := rebuilt.Slot(row, col)
				if gok != wok || (gok && got != want) {
					t.Fatalf("node %s slot (%d,%d) diverged from rebuild", nid.Short(), row, col)
				}
			}
		}
	}
	// Routing still works end to end.
	rep, err := s.SendMessage(s.Order[0], s.Order[len(s.Order)-1])
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Delivered {
		t.Error("delivery failed after churn repair")
	}
	if err := s.FailNode(victim); err == nil {
		t.Error("double failure accepted")
	}
	if err := s.FailNode(id.Zero); err == nil {
		t.Error("unknown node accepted")
	}
}

func TestJoinNodeIntegrates(t *testing.T) {
	t.Parallel()
	s := buildTestSystem(t, nil)
	if err := s.StartProbing(); err != nil {
		t.Fatal(err)
	}
	// Attach the newcomer at a free end-host router.
	used := map[int32]bool{}
	for _, nid := range s.Order {
		used[int32(s.Nodes[nid].Router)] = true
	}
	var router int32 = -1
	for _, h := range s.Topo.EndHosts() {
		if !used[int32(h)] {
			router = int32(h)
			break
		}
	}
	if router < 0 {
		t.Skip("no free end host")
	}
	before := len(s.Order)
	newID, err := s.JoinNode(topology.RouterID(router))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Order) != before+1 || !s.Ring.Contains(newID) {
		t.Fatal("join not registered")
	}
	node := s.Nodes[newID]
	if node.Tree == nil || len(node.Tree.Leaves) == 0 {
		t.Fatal("newcomer has no tree")
	}
	if err := node.Routing.Secure.Validate(); err != nil {
		t.Fatalf("newcomer secure table invalid: %v", err)
	}
	// Survivors folded the newcomer in exactly as a rebuild would.
	for _, nid := range s.Order {
		rebuilt, err := overlay.BuildSecureTable(nid, s.Ring)
		if err != nil {
			t.Fatal(err)
		}
		got := s.Nodes[nid].Routing.Secure
		for row := 0; row < 32; row++ {
			for col := byte(0); col < 16; col++ {
				g, gok := got.Slot(row, col)
				w, wok := rebuilt.Slot(row, col)
				if gok != wok || (gok && g != w) {
					t.Fatalf("node %s slot (%d,%d) diverged after join", nid.Short(), row, col)
				}
			}
		}
	}
	// Traffic reaches the newcomer, and its probes land in the archive.
	rep, err := s.SendMessage(s.Order[0], newID)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Delivered {
		t.Error("cannot deliver to newcomer")
	}
	s.Run(5 * time.Minute)
	recs := 0
	for _, l := range node.Tree.Links() {
		recs += len(s.Archive.InWindow(l, 0, s.Sim.Now(), map[id.ID]bool{}))
		if recs > 0 {
			break
		}
	}
	if recs == 0 {
		t.Error("newcomer never probed")
	}
}

func TestSendBulkCleanAndLossy(t *testing.T) {
	t.Parallel()
	s := buildTestSystem(t, nil)
	if err := s.StartProbing(); err != nil {
		t.Fatal(err)
	}
	s.Run(3 * time.Minute)
	src, dst, route := findMultiHopPair(t, s, 2)

	// Clean batch: everything delivered and cleared; no verdicts.
	rep, err := s.SendBulk(src, dst, 20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != 20 || rep.Cleared != 20 || len(rep.Missing) != 0 {
		t.Fatalf("clean bulk: %+v", rep)
	}
	if rep.AckDigests != 20 {
		t.Errorf("ack digests = %d", rep.AckDigests)
	}

	// Dropper on the first hop: everything missing, verdicts issued.
	dropper := route[1]
	s.Nodes[dropper].Behavior = Behavior{DropsMessages: true}
	rep, err = s.SendBulk(src, dst, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != 0 || len(rep.Missing) != 10 {
		t.Fatalf("dropper bulk: %+v", rep)
	}
	if len(rep.Verdicts) != 10 {
		t.Fatalf("verdicts = %d, want 10", len(rep.Verdicts))
	}
	for _, v := range rep.Verdicts {
		if v.Judged != dropper || !v.Guilty {
			t.Fatalf("verdict %+v, want guilty against dropper", v)
		}
	}
	// Window accumulated them.
	if got := s.Window.GuiltyCount(dropper); got != 10 {
		t.Errorf("window guilty count = %d", got)
	}
	if _, err := s.SendBulk(src, dst, 0); err == nil {
		t.Error("zero batch accepted")
	}
	if _, err := s.SendBulk(id.Zero, dst, 1); err == nil {
		t.Error("unknown source accepted")
	}
}
