package core

import (
	"fmt"

	"concilium/internal/id"
	"concilium/internal/netsim"
	"concilium/internal/stats"
)

// WindowConfig parameterizes formal accusations: a host formally accuses
// a peer once the peer accumulates at least M guilty verdicts among the
// last W verdicts issued against it (§3.4). The paper's evaluation uses
// W=100 with M=6 (honest reporting) or M=16 (20% collusion).
type WindowConfig struct {
	W int
	M int
}

// DefaultWindowConfig returns W=100, M=6.
func DefaultWindowConfig() WindowConfig { return WindowConfig{W: 100, M: 6} }

// Validate reports invalid parameters.
func (c WindowConfig) Validate() error {
	if c.W <= 0 {
		return fmt.Errorf("core: window size %d must be positive", c.W)
	}
	if c.M <= 0 || c.M > c.W {
		return fmt.Errorf("core: accusation threshold %d out of [1, %d]", c.M, c.W)
	}
	return nil
}

// Verdict is one thresholded blame judgment retained in the window.
type Verdict struct {
	Judged id.ID
	At     netsim.Time
	Blame  float64
	Guilty bool
}

// VerdictWindow tracks, per judged peer, the most recent W verdicts and
// reports when the formal-accusation threshold trips.
type VerdictWindow struct {
	cfg WindowConfig
	per map[id.ID]*peerWindow
}

type peerWindow struct {
	verdicts []Verdict // ring buffer
	next     int
	filled   int
	guilty   int
}

// NewVerdictWindow creates an empty window set.
func NewVerdictWindow(cfg WindowConfig) (*VerdictWindow, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &VerdictWindow{cfg: cfg, per: make(map[id.ID]*peerWindow)}, nil
}

// Add records a verdict and reports whether the judged peer now meets
// the formal-accusation threshold (at least M guilty among the last W).
func (vw *VerdictWindow) Add(v Verdict) bool {
	pw := vw.per[v.Judged]
	if pw == nil {
		pw = &peerWindow{verdicts: make([]Verdict, vw.cfg.W)}
		vw.per[v.Judged] = pw
	}
	if pw.filled == vw.cfg.W {
		// Evict the oldest verdict.
		if pw.verdicts[pw.next].Guilty {
			pw.guilty--
		}
	} else {
		pw.filled++
	}
	pw.verdicts[pw.next] = v
	pw.next = (pw.next + 1) % vw.cfg.W
	if v.Guilty {
		pw.guilty++
	}
	return pw.guilty >= vw.cfg.M
}

// GuiltyCount returns the number of guilty verdicts currently in the
// peer's window.
func (vw *VerdictWindow) GuiltyCount(peer id.ID) int {
	if pw := vw.per[peer]; pw != nil {
		return pw.guilty
	}
	return 0
}

// Recent returns the verdicts currently in the peer's window, oldest
// first — the evidence bundle a formal accusation archives (§3.4).
func (vw *VerdictWindow) Recent(peer id.ID) []Verdict {
	pw := vw.per[peer]
	if pw == nil {
		return nil
	}
	out := make([]Verdict, 0, pw.filled)
	start := pw.next - pw.filled
	for i := 0; i < pw.filled; i++ {
		out = append(out, pw.verdicts[((start+i)%vw.cfg.W+vw.cfg.W)%vw.cfg.W])
	}
	return out
}

// AccusationErrorRates computes Figure 6's analytic error rates: with
// per-drop guilty probabilities pGood (innocent peer) and pFaulty
// (faulty peer), the number of guilty verdicts in a W-slot window is
// binomial, so
//
//	Pr(false positive) = Pr(W_good ≥ M)     (innocent formally accused)
//	Pr(false negative) = Pr(W_faulty < M)   (faulty peer escapes)
func AccusationErrorRates(cfg WindowConfig, pGood, pFaulty float64) (fp, fn float64, err error) {
	if err := cfg.Validate(); err != nil {
		return 0, 0, err
	}
	bGood, err := stats.NewBinomial(cfg.W, pGood)
	if err != nil {
		return 0, 0, fmt.Errorf("core: pGood: %w", err)
	}
	bFaulty, err := stats.NewBinomial(cfg.W, pFaulty)
	if err != nil {
		return 0, 0, fmt.Errorf("core: pFaulty: %w", err)
	}
	return bGood.UpperTail(cfg.M), bFaulty.LowerTail(cfg.M), nil
}

// MinimalM returns the smallest M (for the given W) driving both error
// rates at or below target, or an error if none exists. The paper finds
// M=6 for honest reporting and M=16 under 20% collusion at target 1%.
func MinimalM(w int, pGood, pFaulty, target float64) (int, error) {
	if w <= 0 {
		return 0, fmt.Errorf("core: window size %d must be positive", w)
	}
	if target <= 0 || target >= 1 {
		return 0, fmt.Errorf("core: target rate %v out of (0,1)", target)
	}
	for m := 1; m <= w; m++ {
		fp, fn, err := AccusationErrorRates(WindowConfig{W: w, M: m}, pGood, pFaulty)
		if err != nil {
			return 0, err
		}
		if fp <= target && fn <= target {
			return m, nil
		}
	}
	return 0, fmt.Errorf("core: no M in [1,%d] achieves error rate %v", w, target)
}
