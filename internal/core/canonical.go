package core

import (
	"encoding/binary"
	"hash/fnv"

	"concilium/internal/id"
	"concilium/internal/overlay"
)

// Canonical system serialization: a byte-exact snapshot of everything
// BuildSystem decides — identifiers, certificates, behavior marks,
// routing tables, and tomography trees, in Order. Two builds from the
// same SystemConfig and seed must produce identical bytes no matter how
// many workers constructed them; the worker-invariance test and the
// Scale benchmark's canonical check both consume this.

// AppendCanonical appends the system's canonical snapshot to buf and
// returns the extended slice.
func (s *System) AppendCanonical(buf []byte) []byte {
	var scratch canonScratch
	for _, nid := range s.Order {
		buf = s.appendNodeCanonical(buf, nid, &scratch)
	}
	return buf
}

// CanonicalHash returns a 64-bit FNV-1a digest of the canonical
// snapshot, computed node by node so the full serialization is never
// materialized (the snapshot of a 20k-node system runs to tens of
// megabytes).
func (s *System) CanonicalHash() uint64 {
	h := fnv.New64a()
	var scratch canonScratch
	var buf []byte
	for _, nid := range s.Order {
		buf = s.appendNodeCanonical(buf[:0], nid, &scratch)
		h.Write(buf)
	}
	return h.Sum64()
}

type canonScratch struct {
	leaves []id.ID
}

func (s *System) appendNodeCanonical(buf []byte, nid id.ID, sc *canonScratch) []byte {
	node := s.Nodes[nid]
	buf = append(buf, nid[:]...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(node.Router))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(node.Cert.Addr)))
	buf = append(buf, node.Cert.Addr...)
	buf = append(buf, node.Cert.PublicKey...)
	buf = append(buf, node.Cert.Signature...)
	var behavior byte
	if node.Behavior.DropsMessages {
		behavior |= 1
	}
	if node.Behavior.InvertsProbes {
		behavior |= 2
	}
	buf = append(buf, behavior)

	sc.leaves = node.Routing.Leaf.AppendAll(sc.leaves[:0])
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(sc.leaves)))
	for _, p := range sc.leaves {
		buf = append(buf, p[:]...)
	}
	buf = appendTableCanonical(buf, node.Routing.Secure)
	buf = appendTableCanonical(buf, node.Routing.Standard)

	buf = binary.BigEndian.AppendUint32(buf, uint32(node.Tree.RootRouter))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(node.Tree.Leaves)))
	for i := range node.Tree.Leaves {
		leaf := &node.Tree.Leaves[i]
		buf = append(buf, leaf.Node[:]...)
		buf = binary.BigEndian.AppendUint32(buf, uint32(leaf.Router))
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(leaf.Path)))
		for _, l := range leaf.Path {
			buf = binary.BigEndian.AppendUint32(buf, uint32(l))
		}
	}
	return buf
}

func appendTableCanonical(buf []byte, t *overlay.JumpTable) []byte {
	for row := 0; row < id.Digits; row++ {
		for col := byte(0); col < id.Base; col++ {
			if p, ok := t.Slot(row, col); ok {
				buf = append(buf, 1)
				buf = append(buf, p[:]...)
			} else {
				buf = append(buf, 0)
			}
		}
	}
	return buf
}
