package core

import (
	"fmt"
	"time"

	"concilium/internal/id"
	"concilium/internal/netsim"
	"concilium/internal/overlay"
	"concilium/internal/topology"
	"concilium/internal/trace"
	"concilium/internal/wiresize"
)

// DropKind classifies where a message (or its acknowledgment) died.
type DropKind int

// Drop causes.
const (
	// DropNone: the message was delivered and acknowledged.
	DropNone DropKind = iota + 1
	// DropByNode: a forwarder discarded the message.
	DropByNode
	// DropByLink: a failed IP link ate the message.
	DropByLink
	// DropAckByLink: the message arrived but the acknowledgment was lost.
	DropAckByLink
	// DropByChurn: the next hop departed the overlay while the message
	// was in flight, so there was nobody to hand it to.
	DropByChurn
)

// DeliveryReport is the full outcome of one stewarded message: the
// overlay route, the ground-truth drop cause, every steward's verdict,
// and the final attribution after recursive revision.
type DeliveryReport struct {
	MsgID uint64
	Route []id.ID

	Delivered   bool
	AckReceived bool
	Kind        DropKind
	DroppedBy   id.ID           // when Kind == DropByNode or DropByChurn
	BrokenLink  topology.LinkID // when Kind == DropByLink or DropAckByLink

	// ChainUnavailable reports that a culprit was identified but the
	// amended accusation could not be (fully) assembled because a
	// participant departed the overlay mid-diagnosis — the degraded
	// outcome of churn racing the protocol, not an error.
	ChainUnavailable bool

	// Verdicts holds each steward's judgment of its next hop, in route
	// order (stewards that never saw the message issue none).
	Verdicts []Verdict
	// Chain is the amended accusation assembled by recursive revision,
	// when the final attribution is a node.
	Chain *RevisionChain
	// Culprit is the node ultimately blamed; zero when the network (or
	// nothing) is blamed.
	Culprit id.ID
	// NetworkBlamed reports that revision attributed the drop to IP
	// failure rather than any forwarder.
	NetworkBlamed bool
}

// routingStates exposes the per-node overlay state for route tracing.
// The map is built once and patched on membership change (FailNode
// deletes, JoinNode inserts); repairs to a survivor's state mutate the
// RoutingState in place, so the cached pointers never go stale. Before
// this was cached, every message paid an O(N) map rebuild just to route.
func (s *System) routingStates() map[id.ID]*overlay.RoutingState {
	if s.states == nil {
		s.states = make(map[id.ID]*overlay.RoutingState, len(s.Nodes))
		for nid, n := range s.Nodes {
			s.states[nid] = n.Routing
		}
	}
	return s.states
}

// bfsFor returns the shortest-path tree rooted at router, computing and
// caching it on first use. The graph is immutable after construction,
// so cached trees never go stale; the identity check drops the cache in
// full if the topology were ever swapped out.
func (s *System) bfsFor(router topology.RouterID) (*topology.RouteTree, error) {
	if s.bfsGraph != s.Topo {
		s.bfsCache = nil
		s.bfsGraph = s.Topo
	}
	if t, ok := s.bfsCache[router]; ok {
		return t, nil
	}
	t, err := s.Topo.BFS(router)
	if err != nil {
		return nil, err
	}
	if s.bfsCache == nil {
		s.bfsCache = make(map[topology.RouterID]*topology.RouteTree)
	}
	s.bfsCache[router] = t
	return t, nil
}

// SendMessage routes one stewarded message from src to dst over the
// secure overlay and runs the full diagnostic protocol (§3.4–§3.5):
// forwarding commitments at every hop, recursive stewardship, per-hop
// blame when the acknowledgment fails to arrive, and recursive revision
// that pushes blame to the true fault point.
//
// Each steward judges its next hop over the IP links that the message
// needed after leaving the steward: the steward's own path to the next
// hop plus the next hop's onward path. A probed-down link anywhere in
// that span exonerates the next hop.
func (s *System) SendMessage(src, dst id.ID) (*DeliveryReport, error) {
	srcNode, ok := s.Nodes[src]
	if !ok {
		return nil, fmt.Errorf("core: unknown source %s", src.Short())
	}
	if _, ok := s.Nodes[dst]; !ok {
		return nil, fmt.Errorf("core: unknown destination %s", dst.Short())
	}
	// Trace into the route scratch, then copy out exact-size: the route
	// escapes into the report, the scratch is reused by the next send.
	routeBuf, err := overlay.AppendRouteSecure(s.routingStates(), src, dst, 0, s.routeScratch[:0])
	if err != nil {
		return nil, err
	}
	s.routeScratch = routeBuf
	route := make([]id.ID, len(routeBuf))
	copy(route, routeBuf)
	rep := &DeliveryReport{MsgID: srcNode.NextMsgID(), Route: route, Kind: DropNone}
	s.met.msgsSent.Inc()
	s.emit(trace.Event{At: s.Sim.Now(), Kind: trace.KindMessageSent, Node: src, Peer: dst})
	if len(route) == 1 {
		rep.Delivered, rep.AckReceived = true, true
		return rep, nil
	}
	sendTime := s.Sim.Now()

	// Hop-by-hop IP paths along the route. The paths themselves are
	// shared tomography-tree storage; the slice-of-slices header is
	// system scratch reused across sends.
	paths := s.pathScratch[:0]
	for i := 0; i+1 < len(route); i++ {
		p, err := s.Nodes[route[i]].PathToPeer(route[i+1])
		if err != nil {
			return nil, err
		}
		paths = append(paths, p)
	}
	s.pathScratch = paths

	// Forward pass: find where the message dies. Each leg advances the
	// virtual clock by its propagation delay, so link state is whatever
	// the failure process says when the packet actually crosses.
	// reached is the index of the last node that received the message.
	reached := 0
	for i := 0; i+1 < len(route); i++ {
		s.met.msgBytes.Add(wiresize.StewardedHop)
		s.Run(s.Net.Latency(paths[i]))
		if bad, down := s.Net.FirstDownLink(paths[i]); down {
			rep.Kind = DropByLink
			rep.BrokenLink = bad
			break
		}
		next, present := s.Nodes[route[i+1]]
		if !present {
			// The next hop crashed or departed while the message was in
			// flight (churn events fire inside the latency advance
			// above): nobody received it. From the stewards' view this
			// is indistinguishable from a silent drop by that peer.
			rep.Kind = DropByChurn
			rep.DroppedBy = route[i+1]
			s.Counters.ChurnDrops++
			break
		}
		reached = i + 1
		if route[i+1] != dst && s.dropsMessage(next) {
			rep.Kind = DropByNode
			rep.DroppedBy = route[i+1]
			break
		}
	}
	rep.Delivered = reached == len(route)-1 && rep.Kind == DropNone

	// Acknowledgment pass over the reverse path, again in real virtual
	// time: a link can fail between the message leg and the ack leg,
	// which is exactly the "acknowledgment dropped along the reverse
	// path" case of §3.5.
	if rep.Delivered {
		rep.AckReceived = true
		for i := len(paths) - 1; i >= 0; i-- {
			s.met.ackBytes.Add(wiresize.AckHop)
			s.Run(s.Net.Latency(paths[i]))
			if bad, down := s.Net.FirstDownLink(paths[i]); down {
				rep.Kind = DropAckByLink
				rep.BrokenLink = bad
				rep.AckReceived = false
				break
			}
		}
		if rep.AckReceived {
			s.met.msgsDelivered.Inc()
			return rep, nil
		}
	}
	s.emit(trace.Event{
		At: s.Sim.Now(), Kind: trace.KindMessageDropped,
		Node: src, Peer: dst, Link: rep.BrokenLink, Detail: dropDetail(rep.Kind),
	})
	// Evidence windows center on the send time t (probes from [t−Δ, t+Δ]
	// are admissible, §3.4); the round-trip is milliseconds against a
	// Δ of a minute.
	now := sendTime

	// Diagnosis: every steward (node that held the message) judges its
	// next hop. Steward i's evidence span covers its own transmission
	// path plus the next hop's onward path.
	lastSteward := reached
	if rep.Kind == DropByNode {
		// The dropper holds the message but will not steward honestly;
		// its upstream peers still judge it.
		lastSteward = reached - 1
	}
	if lastSteward >= 0 {
		rep.Verdicts = make([]Verdict, 0, lastSteward+1)
	}
	for i := 0; i <= lastSteward && i+1 < len(route); i++ {
		// The judgment span lives in system scratch: Blame iterates it
		// and keeps only per-link values, so nothing aliases it after
		// the call returns.
		span := append(s.spanScratch[:0], paths[i]...)
		if i+1 < len(paths) {
			span = append(span, paths[i+1]...)
		}
		s.spanScratch = span
		res, err := s.timedBlame(route[i+1], span, now)
		if err != nil {
			return nil, err
		}
		rep.Verdicts = append(rep.Verdicts, Verdict{
			Judged: route[i+1], At: now, Blame: res.Blame, Guilty: res.Guilty,
		})
		s.Window.Add(rep.Verdicts[len(rep.Verdicts)-1])
		s.emit(trace.Event{
			At: now, Kind: trace.KindVerdict,
			Node: route[i], Peer: route[i+1], Guilty: res.Guilty,
		})
	}
	if len(rep.Verdicts) == 0 {
		rep.NetworkBlamed = true
		return rep, nil
	}

	// Recursive revision (§3.5): the deepest steward's verdict stands —
	// every upstream accusation is amended by the downstream evidence.
	deepest := rep.Verdicts[len(rep.Verdicts)-1]
	if !deepest.Guilty {
		rep.NetworkBlamed = true
		return rep, nil
	}
	rep.Culprit = deepest.Judged

	// Assemble the self-verifying amended accusation from the connected
	// run of guilty verdicts ending at the culprit. Signing needs both
	// parties' keys, so links whose accuser or judged departed the
	// overlay mid-diagnosis cannot be built; keep the deepest contiguous
	// suffix where everyone is still present — a truncated (or absent)
	// chain is the degraded outcome of churn racing the protocol.
	start := len(rep.Verdicts) - 1
	for start > 0 && rep.Verdicts[start-1].Guilty {
		start--
	}
	for vi := start; vi < len(rep.Verdicts); vi++ {
		_, haveAccuser := s.Nodes[route[vi]]
		_, haveJudged := s.Nodes[rep.Verdicts[vi].Judged]
		if !haveAccuser || !haveJudged {
			start = vi + 1
			rep.ChainUnavailable = true
		}
	}
	if rep.ChainUnavailable {
		s.Counters.ChainsUnavailable++
	}
	if start >= len(rep.Verdicts) {
		// Every candidate link lost a participant: the culprit stands
		// accused by the verdict record, but no signed chain exists.
		return rep, nil
	}
	links := make([]Accusation, 0, len(rep.Verdicts)-start)
	for vi := start; vi < len(rep.Verdicts); vi++ {
		accuser := route[vi]
		judged := rep.Verdicts[vi].Judged
		// Accusation spans escape into the signed chain, so each one is
		// an exact-size copy — never scratch.
		spanLen := len(paths[vi])
		if vi+1 < len(paths) {
			spanLen += len(paths[vi+1])
		}
		span := append(make([]topology.LinkID, 0, spanLen), paths[vi]...)
		if vi+1 < len(paths) {
			span = append(span, paths[vi+1]...)
		}
		res, err := s.timedBlame(judged, span, now)
		if err != nil {
			return nil, err
		}
		commit := NewCommitment(s.Nodes[judged].Keys, accuser, judged, dst, rep.MsgID, now)
		acc, err := NewAccusation(s.Nodes[accuser].Keys, accuser, res, rep.MsgID, span, commit)
		if err != nil {
			return nil, err
		}
		links = append(links, acc)
	}
	chain, err := NewRevisionChain(links)
	if err != nil {
		return nil, err
	}
	rep.Chain = chain
	s.met.chainLen.Observe(int64(len(chain.Links)))
	s.emit(trace.Event{At: now, Kind: trace.KindAccusation, Node: src, Peer: rep.Culprit})
	return rep, nil
}

// dropsMessage evaluates a forwarder's drop policy for one stewarded
// message it holds. The probabilistic dropper consumes the shared rng
// only when its knob is set, so a system without adversaries draws
// exactly the same random stream as before the policy existed (the
// chaos-hook convention).
func (s *System) dropsMessage(n *Node) bool {
	b := n.Behavior
	if b.DropsMessages {
		return true
	}
	if b.DropPeriod > 0 {
		n.fwdSeq++
		if n.fwdSeq%uint64(b.DropPeriod) == 0 {
			return true
		}
	}
	return b.DropProb > 0 && s.rng.Float64() < b.DropProb
}

// timedBlame wraps the blame engine with metrics: call count, probes
// consulted (deterministic), and wall-clock latency (the reserved
// "_wallns" class, excluded from canonical snapshots).
func (s *System) timedBlame(judged id.ID, span []topology.LinkID, at netsim.Time) (BlameResult, error) {
	start := time.Now()
	res, err := s.Engine.Blame(judged, span, at)
	s.met.blameWall.ObserveDuration(time.Since(start))
	if err == nil {
		s.met.blameCalls.Inc()
		s.met.blameProbes.Observe(int64(res.TotalProbes))
	}
	return res, err
}

// dropDetail names a drop kind for trace output.
func dropDetail(k DropKind) string {
	switch k {
	case DropByNode:
		return "by-node"
	case DropByLink:
		return "by-link"
	case DropAckByLink:
		return "ack-by-link"
	case DropByChurn:
		return "by-churn"
	default:
		return "unknown"
	}
}
