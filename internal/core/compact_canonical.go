package core

import (
	"crypto/ed25519"
	"encoding/binary"
	"hash/fnv"

	"concilium/internal/overlay"
)

// Compact canonical serialization: a byte-exact snapshot of everything
// BuildCompactSystem decides, in ring order. The format is index-based
// — peers appear as uint32 ring positions, not 16-byte identifiers —
// and tomography trees are excluded because the compact core derives
// them on demand from the immutable graph and the (already serialized)
// routing peers. That makes this a NEW canonical stream, not the legacy
// one: the golden hash is pinned fresh in compact_test.go, and the
// old-vs-new cross-check test ties the two representations together
// field by field at small N instead.

// AppendCanonical appends the compact system's canonical snapshot to
// buf and returns the extended slice.
func (cs *CompactSystem) AppendCanonical(buf []byte) []byte {
	var scratch compactCanonScratch
	for i := 0; i < cs.Size(); i++ {
		buf = cs.appendNodeCanonical(buf, uint32(i), &scratch)
	}
	return buf
}

// CanonicalHash returns a 64-bit FNV-1a digest of the canonical
// snapshot, computed node by node so the full serialization is never
// materialized.
func (cs *CompactSystem) CanonicalHash() uint64 {
	h := fnv.New64a()
	var scratch compactCanonScratch
	var buf []byte
	for i := 0; i < cs.Size(); i++ {
		buf = cs.appendNodeCanonical(buf[:0], uint32(i), &scratch)
		h.Write(buf)
	}
	return h.Sum64()
}

type compactCanonScratch struct {
	leaves []uint32
	slots  []overlay.CompactSlot
}

func (cs *CompactSystem) appendNodeCanonical(buf []byte, i uint32, sc *compactCanonScratch) []byte {
	nid := cs.Overlay.ID(i)
	buf = append(buf, nid[:]...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(cs.Router(i)))
	buf = binary.BigEndian.AppendUint32(buf, cs.slabOf[i])
	p := int(cs.slabOf[i])
	buf = append(buf, cs.pubKeys[p*ed25519.PublicKeySize:(p+1)*ed25519.PublicKeySize]...)
	buf = append(buf, cs.certSigs[p*ed25519.SignatureSize:(p+1)*ed25519.SignatureSize]...)
	buf = append(buf, cs.behaviorBits[p])

	sc.leaves = cs.Overlay.AppendLeafIndices(i, sc.leaves[:0])
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(sc.leaves)))
	for _, j := range sc.leaves {
		buf = binary.BigEndian.AppendUint32(buf, j)
	}
	sc.slots = cs.Overlay.AppendSecureSlots(i, sc.slots[:0])
	buf = appendCompactSlots(buf, sc.slots)
	sc.slots = cs.Overlay.AppendStandardSlots(i, sc.slots[:0])
	buf = appendCompactSlots(buf, sc.slots)
	return buf
}

func appendCompactSlots(buf []byte, slots []overlay.CompactSlot) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(slots)))
	for _, s := range slots {
		buf = append(buf, s.Row, s.Col)
		buf = binary.BigEndian.AppendUint32(buf, s.Peer)
	}
	return buf
}
