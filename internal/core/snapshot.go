package core

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"concilium/internal/id"
	"concilium/internal/netsim"
	"concilium/internal/sigcrypto"
	"concilium/internal/tomography"
)

// Validation errors a snapshot can fail with. Callers distinguish them
// because each triggers a different response (§3.2): signature and
// freshness failures justify an immediate fault accusation against the
// prober; density failures mark the advert fraudulent.
var (
	ErrBadSnapshotSignature = errors.New("core: snapshot signature invalid")
	ErrBadEntrySignature    = errors.New("core: routing entry freshness signature invalid")
	ErrStaleEntry           = errors.New("core: routing entry freshness timestamp too old")
	ErrFutureEntry          = errors.New("core: routing entry freshness timestamp in the future")
	ErrTableTooSparse       = errors.New("core: advertised jump table fails density test")
	ErrLeafSetTooSparse     = errors.New("core: advertised leaf set fails density test")
	ErrUnknownSigner        = errors.New("core: no certificate for signer")
)

// AdvertEntry is one advertised routing-table slot: the peer plus the
// signed liveness timestamp that peer piggybacked on a recent
// availability probe. The timestamp defeats inflation attacks that pad
// tables with identifiers of departed hosts (§3.1).
type AdvertEntry struct {
	Peer      id.ID
	Freshness sigcrypto.Timestamp
}

// Snapshot is the signed bundle a host periodically sends its routing
// peers (§3.2): its probed link statuses for T_H, its advertised routing
// entries with freshness timestamps, and its leaf-set spacing (the input
// to Castro's leaf density test). The signature prevents both spoofing
// and later disavowal of published probe results.
type Snapshot struct {
	Prober       id.ID
	At           netsim.Time
	Observations []tomography.LinkObservation
	Entries      []AdvertEntry
	LeafSpacing  float64
	Signature    []byte
}

// payload returns the canonical bytes covered by the signature.
func (s *Snapshot) payload() []byte {
	buf := make([]byte, 0, 64+9*len(s.Observations)+(id.Bytes+8)*len(s.Entries))
	buf = append(buf, "snap"...)
	buf = append(buf, s.Prober[:]...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(s.At))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(s.LeafSpacing))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s.Observations)))
	for _, o := range s.Observations {
		buf = binary.BigEndian.AppendUint32(buf, uint32(o.Link))
		if o.Up {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s.Entries)))
	for _, e := range s.Entries {
		buf = append(buf, e.Peer[:]...)
		buf = binary.BigEndian.AppendUint64(buf, uint64(e.Freshness.At))
		buf = append(buf, e.Freshness.Signature...)
	}
	return buf
}

// Sign signs the snapshot as the prober.
func (s *Snapshot) Sign(kp sigcrypto.KeyPair) { s.Signature = kp.Sign(s.payload()) }

// VerifySignature checks the snapshot signature under the prober's key.
func (s *Snapshot) VerifySignature(pub ed25519.PublicKey) error {
	if !sigcrypto.Verify(pub, s.payload(), s.Signature) {
		return ErrBadSnapshotSignature
	}
	return nil
}

// KeyDirectory resolves overlay identifiers to public keys — in a
// deployment, by looking up CA certificates.
type KeyDirectory func(id.ID) (ed25519.PublicKey, bool)

// SnapshotValidator performs the §3.2 checks a node runs on every
// received snapshot before archiving it: signature verification (the
// snapshot's and each entry's freshness timestamp), freshness bounds,
// the jump-table density test against the local table, and Castro's
// leaf-set density test.
type SnapshotValidator struct {
	// Keys resolves signer identities.
	Keys KeyDirectory
	// MaxEntryAge bounds how old a freshness timestamp may be relative
	// to the snapshot time; availability probes run at least once a
	// minute or two, so a couple of probe periods is typical.
	MaxEntryAge time.Duration
	// JumpTest compares the advertised occupancy against LocalOccupancy.
	JumpTest DensityTest
	// LocalOccupancy is the validating node's own jump-table occupancy.
	LocalOccupancy int
	// LeafGamma bounds how much sparser (by mean spacing) an advertised
	// leaf set may be than the local one before it is suspicious.
	LeafGamma float64
	// LocalLeafSpacing is the validating node's own mean leaf spacing.
	LocalLeafSpacing float64
}

// Validate runs every check, returning the first failure. A nil error
// means the snapshot may be archived.
func (v *SnapshotValidator) Validate(s *Snapshot) error {
	if v.Keys == nil {
		return fmt.Errorf("core: validator has no key directory")
	}
	proberKey, ok := v.Keys(s.Prober)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownSigner, s.Prober.Short())
	}
	if err := s.VerifySignature(proberKey); err != nil {
		return err
	}
	for _, e := range s.Entries {
		peerKey, ok := v.Keys(e.Peer)
		if !ok {
			return fmt.Errorf("%w: %s", ErrUnknownSigner, e.Peer.Short())
		}
		if e.Freshness.NodeID != e.Peer {
			return fmt.Errorf("%w: timestamp for %s attached to entry %s",
				ErrBadEntrySignature, e.Freshness.NodeID.Short(), e.Peer.Short())
		}
		if err := sigcrypto.VerifyTimestamp(peerKey, e.Freshness); err != nil {
			return fmt.Errorf("%w: entry %s", ErrBadEntrySignature, e.Peer.Short())
		}
		age := s.At.Sub(netsim.Time(e.Freshness.At))
		switch {
		case age < 0:
			return fmt.Errorf("%w: entry %s is %v ahead", ErrFutureEntry, e.Peer.Short(), -age)
		case v.MaxEntryAge > 0 && age > v.MaxEntryAge:
			return fmt.Errorf("%w: entry %s is %v old", ErrStaleEntry, e.Peer.Short(), age)
		}
	}
	if v.JumpTest.Gamma > 0 {
		if !v.JumpTest.Check(float64(v.LocalOccupancy), float64(len(s.Entries))) {
			return fmt.Errorf("%w: advertised %d vs local %d (γ=%v)",
				ErrTableTooSparse, len(s.Entries), v.LocalOccupancy, v.JumpTest.Gamma)
		}
	}
	if v.LeafGamma > 0 && v.LocalLeafSpacing > 0 && s.LeafSpacing > 0 {
		// Castro's test: a leaf set whose average spacing is much wider
		// than the local one is hiding peers.
		if s.LeafSpacing > v.LeafGamma*v.LocalLeafSpacing {
			return fmt.Errorf("%w: advertised spacing %.3g vs local %.3g (γ=%v)",
				ErrLeafSetTooSparse, s.LeafSpacing, v.LocalLeafSpacing, v.LeafGamma)
		}
	}
	return nil
}

// Ingest validates a snapshot and, on success, archives its link
// observations — the normal processing path for received snapshots.
func (v *SnapshotValidator) Ingest(archive *tomography.Archive, s *Snapshot) error {
	if archive == nil {
		return fmt.Errorf("core: nil archive")
	}
	if err := v.Validate(s); err != nil {
		return err
	}
	return archive.Record(s.Prober, s.At, s.Observations)
}
