package core

import (
	"crypto/ed25519"
	"fmt"
	"sort"

	"concilium/internal/id"
	"concilium/internal/netsim"
)

// Index-keyed accusation bookkeeping for the compact traffic plane.
// Both structures are the legacy ones re-keyed by slab position:
// slab rows are append-only and survive departures, so a slab key
// stays valid across churn where an identifier would need a liveness
// check — and a uint32 map key hashes in one word where the 16-byte
// identifier hashes in two. The verdict ring buffer (peerWindow) is
// shared with the legacy window, so eviction and threshold semantics
// cannot drift between the planes.

// CompactVerdictWindow tracks, per judged slab, the most recent W
// verdicts and reports when the formal-accusation threshold trips —
// VerdictWindow with uint32 keys.
type CompactVerdictWindow struct {
	cfg WindowConfig
	per map[uint32]*peerWindow
}

// NewCompactVerdictWindow creates an empty window set.
func NewCompactVerdictWindow(cfg WindowConfig) (*CompactVerdictWindow, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &CompactVerdictWindow{cfg: cfg, per: make(map[uint32]*peerWindow)}, nil
}

// Add records a verdict against the judged peer's slab and reports
// whether that peer now meets the formal-accusation threshold (at
// least M guilty among the last W).
func (vw *CompactVerdictWindow) Add(judged uint32, v Verdict) bool {
	pw := vw.per[judged]
	if pw == nil {
		pw = &peerWindow{verdicts: make([]Verdict, vw.cfg.W)}
		vw.per[judged] = pw
	}
	if pw.filled == vw.cfg.W {
		if pw.verdicts[pw.next].Guilty {
			pw.guilty--
		}
	} else {
		pw.filled++
	}
	pw.verdicts[pw.next] = v
	pw.next = (pw.next + 1) % vw.cfg.W
	if v.Guilty {
		pw.guilty++
	}
	return pw.guilty >= vw.cfg.M
}

// GuiltyCount returns the number of guilty verdicts currently in the
// slab's window.
func (vw *CompactVerdictWindow) GuiltyCount(judged uint32) int {
	if pw := vw.per[judged]; pw != nil {
		return pw.guilty
	}
	return 0
}

// Recent returns the verdicts currently in the slab's window, oldest
// first — the evidence bundle a formal accusation archives (§3.4).
func (vw *CompactVerdictWindow) Recent(judged uint32) []Verdict {
	pw := vw.per[judged]
	if pw == nil {
		return nil
	}
	out := make([]Verdict, 0, pw.filled)
	start := pw.next - pw.filled
	for i := 0; i < pw.filled; i++ {
		out = append(out, pw.verdicts[((start+i)%vw.cfg.W+vw.cfg.W)%vw.cfg.W])
	}
	return out
}

// CompactStewardLedger is StewardLedger re-keyed by destination slab.
// It drops the mutex: the compact traffic plane runs entirely inside
// simulator callbacks on one goroutine (the DESIGN.md §9 discipline),
// so the lock would only buy contention-free overhead.
type CompactStewardLedger struct {
	owner   id.ID
	pending map[uint32]map[uint64]netsim.Time // per destination slab: msgID → sent time
}

// NewCompactStewardLedger creates an empty ledger for owner.
func NewCompactStewardLedger(owner id.ID) *CompactStewardLedger {
	return &CompactStewardLedger{owner: owner, pending: make(map[uint32]map[uint64]netsim.Time)}
}

// RecordSent notes a forwarded message awaiting acknowledgment from the
// destination slab.
func (l *CompactStewardLedger) RecordSent(dest uint32, msgID uint64, at netsim.Time) {
	m := l.pending[dest]
	if m == nil {
		m = make(map[uint64]netsim.Time)
		l.pending[dest] = m
	}
	m[msgID] = at
}

// Pending returns the message IDs still awaiting acknowledgment from
// the destination slab, oldest first.
func (l *CompactStewardLedger) Pending(dest uint32) []uint64 {
	m := l.pending[dest]
	out := make([]uint64, 0, len(m))
	for msgID := range m {
		out = append(out, msgID)
	}
	sort.Slice(out, func(i, j int) bool {
		ti, tj := m[out[i]], m[out[j]]
		if ti != tj {
			return ti < tj
		}
		return out[i] < out[j]
	})
	return out
}

// ConsumeAck applies a verified batch acknowledgment from the node at
// slab dest (identifier destID) and returns the message IDs the ack
// proves delivered, now cleared. Digest acks clear exactly the covered
// messages; counter acks with zero loss clear every pending message in
// the span; a lossy counter ack clears nothing — same precision trade
// as the legacy ledger.
func (l *CompactStewardLedger) ConsumeAck(dest uint32, destID id.ID, ack *BatchAck, destPub ed25519.PublicKey) ([]uint64, error) {
	if ack == nil {
		return nil, fmt.Errorf("core: nil batch ack")
	}
	if err := ack.Verify(destPub); err != nil {
		return nil, err
	}
	if ack.By != destID {
		return nil, fmt.Errorf("core: ack signed by %s, expected %s", ack.By.Short(), destID.Short())
	}
	if ack.From != l.owner {
		return nil, fmt.Errorf("core: ack covers messages from %s, not %s", ack.From.Short(), l.owner.Short())
	}
	m := l.pending[dest]
	if len(m) == 0 {
		return nil, nil
	}
	var cleared []uint64
	switch {
	case len(ack.Digests) > 0:
		for msgID := range m {
			if ack.Covers(l.owner, msgID) {
				cleared = append(cleared, msgID)
				delete(m, msgID)
			}
		}
	case ack.LossRate() == 0:
		for msgID := range m {
			cleared = append(cleared, msgID)
			delete(m, msgID)
		}
	}
	sort.Slice(cleared, func(i, j int) bool { return cleared[i] < cleared[j] })
	return cleared, nil
}

// NeedsBlame returns the messages sent to the destination slab at or
// before cutoff that remain unacknowledged — the drops the steward
// must now judge.
func (l *CompactStewardLedger) NeedsBlame(dest uint32, cutoff netsim.Time) []uint64 {
	var out []uint64
	for msgID, at := range l.pending[dest] {
		if at <= cutoff {
			out = append(out, msgID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
