package core

import (
	"fmt"

	"concilium/internal/id"
	"concilium/internal/overlay"
	"concilium/internal/topology"
	"concilium/internal/trace"
)

// Bulk traffic with aggregated acknowledgments (§3.7): when two peers
// exchange many packets, a single signed digest acknowledgment from the
// destination covers the whole batch. The source steward clears the
// covered messages from its ledger and judges its next hop only for the
// ones that went missing.

// BulkReport summarizes one batch.
type BulkReport struct {
	Route []id.ID
	Sent  int
	// Delivered is how many messages reached the destination.
	Delivered int
	// Cleared is how many the digest acknowledgment proved delivered.
	Cleared int
	// Missing holds the message IDs that needed blame evaluation.
	Missing []uint64
	// Verdicts holds the source's judgment of its next hop, one per
	// missing message.
	Verdicts []Verdict
	// AckBytes estimates the §3.7 saving: one digest ack instead of
	// per-message acks (8 bytes per digest vs one full ack round each).
	AckDigests int
}

// SendBulk routes n messages from src to dst as one batch over the
// current secure route, collects the destination's digest
// acknowledgment, and judges the first hop for every missing message.
func (s *System) SendBulk(src, dst id.ID, n int) (*BulkReport, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: bulk size %d must be positive", n)
	}
	srcNode, ok := s.Nodes[src]
	if !ok {
		return nil, fmt.Errorf("core: unknown source %s", src.Short())
	}
	dstNode, ok := s.Nodes[dst]
	if !ok {
		return nil, fmt.Errorf("core: unknown destination %s", dst.Short())
	}
	route, err := s.routeOf(src, dst)
	if err != nil {
		return nil, err
	}
	rep := &BulkReport{Route: route, Sent: n}
	if len(route) == 1 {
		rep.Delivered, rep.Cleared = n, n
		return rep, nil
	}
	paths := make([][]topology.LinkID, len(route)-1)
	for i := 0; i+1 < len(route); i++ {
		p, err := s.Nodes[route[i]].PathToPeer(route[i+1])
		if err != nil {
			return nil, err
		}
		paths[i] = p
	}

	ledger := NewStewardLedger(src)
	sendTime := s.Sim.Now()
	var received []uint64
	for m := 0; m < n; m++ {
		msgID := srcNode.NextMsgID()
		ledger.RecordSent(dst, msgID, s.Sim.Now())
		ok := true
		for i := 0; i+1 < len(route) && ok; i++ {
			s.Run(s.Net.Latency(paths[i]))
			if !s.Net.PathUp(paths[i]) {
				ok = false
				break
			}
			next := s.Nodes[route[i+1]]
			if next.Behavior.DropsMessages && route[i+1] != dst {
				ok = false
			}
		}
		if ok {
			received = append(received, msgID)
		}
	}
	rep.Delivered = len(received)

	// One digest acknowledgment covers the batch.
	ack, err := NewDigestAck(dstNode.Keys, src, dst, s.Sim.Now(), uint32(n), received)
	if err != nil {
		return nil, err
	}
	rep.AckDigests = len(ack.Digests)
	cleared, err := ledger.ConsumeAck(dst, &ack, dstNode.Keys.Public)
	if err != nil {
		return nil, err
	}
	rep.Cleared = len(cleared)
	rep.Missing = ledger.NeedsBlame(dst, s.Sim.Now())

	// Judge the first hop once per missing message, over the span its
	// messages needed after leaving the source.
	if len(rep.Missing) > 0 && len(route) > 1 {
		span := append([]topology.LinkID(nil), paths[0]...)
		if len(paths) > 1 {
			span = append(span, paths[1]...)
		}
		for range rep.Missing {
			res, err := s.Engine.Blame(route[1], span, sendTime)
			if err != nil {
				return nil, err
			}
			v := Verdict{Judged: route[1], At: sendTime, Blame: res.Blame, Guilty: res.Guilty}
			rep.Verdicts = append(rep.Verdicts, v)
			s.Window.Add(v)
			s.emit(trace.Event{
				At: sendTime, Kind: trace.KindVerdict,
				Node: src, Peer: route[1], Guilty: res.Guilty,
			})
		}
	}
	return rep, nil
}

// routeOf traces the current secure route.
func (s *System) routeOf(src, dst id.ID) ([]id.ID, error) {
	return overlay.RouteSecure(s.routingStates(), src, dst, 0)
}
