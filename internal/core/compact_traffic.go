package core

import (
	"crypto/ed25519"
	"fmt"
	"math"
	"time"

	"concilium/internal/id"
	"concilium/internal/netsim"
	"concilium/internal/overlay"
	"concilium/internal/tomography"
	"concilium/internal/topology"
	"concilium/internal/trace"
	"concilium/internal/wiresize"
)

// The compact traffic plane (DESIGN.md §13): the full diagnosis
// protocol — randomized probing, stewarded delivery, per-hop blame,
// recursive revision, batched acks — running over CompactSystem's
// index-based state. Every step is draw-for-draw and outcome-identical
// with the legacy System plane (the equivalence tests in
// compact_traffic_test.go hold the two together at small N); the
// difference is purely representational: uint32 ring/slab indices in
// place of map lookups, lazily cached tomography trees in place of
// eagerly built ones, and slab-keyed verdict windows and ledgers whose
// keys survive churn without liveness checks.

// Run advances the simulation by d of virtual time.
func (cs *CompactSystem) Run(d time.Duration) { cs.Sim.RunFor(d) }

// emit records a trace event when tracing is enabled.
func (cs *CompactSystem) emit(e trace.Event) {
	if cs.Config.Tracer != nil {
		cs.Config.Tracer.Record(e)
	}
}

// KeyDir returns the CA-backed key directory for snapshot and
// accusation verification. Like the legacy directory, it answers only
// for current members — a departed signer's chain link stops verifying,
// which is the degraded churn outcome both planes share.
func (cs *CompactSystem) KeyDir() KeyDirectory {
	return func(x id.ID) (ed25519.PublicKey, bool) {
		i, ok := cs.Overlay.IndexOf(x)
		if !ok {
			return nil, false
		}
		return cs.Keys(i).Public, true
	}
}

// collusionFilter is the §4.3 adaptive adversary over slab state:
// colluding probers flip their published results at judgment time —
// links up when a target is judged (framing it), links down when an
// ally is (excusing it as a network fault).
func (cs *CompactSystem) collusionFilter(judged id.ID, rec tomography.ProbeRecord) (tomography.ProbeRecord, bool) {
	pi, ok := cs.Overlay.IndexOf(rec.Prober)
	if !ok {
		return rec, true
	}
	prober := cs.behaviorOfSlab(cs.slabOf[pi])
	if !prober.InvertsProbes {
		return rec, true
	}
	ally := false
	if ji, ok := cs.Overlay.IndexOf(judged); ok {
		jb := cs.behaviorOfSlab(cs.slabOf[ji])
		if c := prober.Clique; c != 0 {
			ally = jb.Clique == c
		} else {
			ally = jb.DropsMessages
		}
	}
	rec.Up = !ally
	return rec, true
}

// pathToPeer returns the IP link path from the node at slab p to peer,
// from its (lazily materialized) tomography tree. The path is shared
// tree storage — read-only to callers.
func (cs *CompactSystem) pathToPeer(p uint32, self, peer id.ID) ([]topology.LinkID, error) {
	tree, err := cs.treeOfSlab(p)
	if err != nil {
		return nil, err
	}
	path, ok := tree.PathTo(peer)
	if !ok {
		return nil, fmt.Errorf("core: %s has no path to peer %s", self.Short(), peer.Short())
	}
	return path, nil
}

// SendMessage routes one stewarded message from src to dst over the
// secure overlay and runs the full diagnostic protocol (§3.4–§3.5) —
// the compact counterpart of System.SendMessage, identical in outcome
// and rng consumption. The warm delivered path allocates only the
// report and its route copy; everything else lives in system scratch
// (§9 ownership protocol) or the per-slab caches.
func (cs *CompactSystem) SendMessage(src, dst id.ID) (*DeliveryReport, error) {
	si, ok := cs.Overlay.IndexOf(src)
	if !ok {
		return nil, fmt.Errorf("core: unknown source %s", src.Short())
	}
	if _, ok := cs.Overlay.IndexOf(dst); !ok {
		return nil, fmt.Errorf("core: unknown destination %s", dst.Short())
	}
	// Trace into index scratch, then capture identifiers (they escape
	// into the report) and slab positions (churn-stable hop keys: ring
	// indices shift when membership changes mid-flight, slabs never do).
	idxBuf, err := cs.Overlay.AppendRouteSecure(si, dst, 0, cs.routeIdxScratch[:0])
	if err != nil {
		return nil, err
	}
	cs.routeIdxScratch = idxBuf
	route := make([]id.ID, len(idxBuf))
	slabs := cs.routeSlabScratch[:0]
	for h, i := range idxBuf {
		route[h] = cs.Overlay.ID(i)
		slabs = append(slabs, cs.slabOf[i])
	}
	cs.routeSlabScratch = slabs
	cs.msgSeq[slabs[0]]++
	rep := &DeliveryReport{MsgID: cs.msgSeq[slabs[0]], Route: route, Kind: DropNone}
	cs.met.msgsSent.Inc()
	cs.emit(trace.Event{At: cs.Sim.Now(), Kind: trace.KindMessageSent, Node: src, Peer: dst})
	if len(route) == 1 {
		rep.Delivered, rep.AckReceived = true, true
		return rep, nil
	}
	sendTime := cs.Sim.Now()

	// Hop-by-hop IP paths, resolved before the first leg: tree lookups
	// draw no randomness, and the paths are shared tree storage behind a
	// reused slice-of-slices header.
	paths := cs.pathScratch[:0]
	for i := 0; i+1 < len(route); i++ {
		p, err := cs.pathToPeer(slabs[i], route[i], route[i+1])
		if err != nil {
			return nil, err
		}
		paths = append(paths, p)
	}
	cs.pathScratch = paths

	// Forward pass: find where the message dies. Each leg advances the
	// virtual clock by its propagation delay, so link state is whatever
	// the failure process says when the packet actually crosses.
	reached := 0
	for i := 0; i+1 < len(route); i++ {
		cs.met.msgBytes.Add(wiresize.StewardedHop)
		cs.Run(cs.Net.Latency(paths[i]))
		if bad, down := cs.Net.FirstDownLink(paths[i]); down {
			rep.Kind = DropByLink
			rep.BrokenLink = bad
			break
		}
		if cs.ringOfSlab[slabs[i+1]] == overlay.NoIndex {
			// The next hop departed while the message was in flight
			// (churn events fire inside the latency advance above):
			// nobody received it.
			rep.Kind = DropByChurn
			rep.DroppedBy = route[i+1]
			cs.Counters.ChurnDrops++
			break
		}
		reached = i + 1
		if route[i+1] != dst && cs.dropsMessageSlab(slabs[i+1]) {
			rep.Kind = DropByNode
			rep.DroppedBy = route[i+1]
			break
		}
	}
	rep.Delivered = reached == len(route)-1 && rep.Kind == DropNone

	// Acknowledgment pass over the reverse path, again in real virtual
	// time: a link can fail between the message leg and the ack leg
	// (§3.5's "acknowledgment dropped along the reverse path").
	if rep.Delivered {
		rep.AckReceived = true
		for i := len(paths) - 1; i >= 0; i-- {
			cs.met.ackBytes.Add(wiresize.AckHop)
			cs.Run(cs.Net.Latency(paths[i]))
			if bad, down := cs.Net.FirstDownLink(paths[i]); down {
				rep.Kind = DropAckByLink
				rep.BrokenLink = bad
				rep.AckReceived = false
				break
			}
		}
		if rep.AckReceived {
			cs.met.msgsDelivered.Inc()
			return rep, nil
		}
	}
	cs.emit(trace.Event{
		At: cs.Sim.Now(), Kind: trace.KindMessageDropped,
		Node: src, Peer: dst, Link: rep.BrokenLink, Detail: dropDetail(rep.Kind),
	})
	// Evidence windows center on the send time (§3.4).
	now := sendTime

	// Diagnosis: every steward judges its next hop over the span its
	// own transmission path plus the next hop's onward path covers.
	lastSteward := reached
	if rep.Kind == DropByNode {
		lastSteward = reached - 1
	}
	if lastSteward >= 0 {
		rep.Verdicts = make([]Verdict, 0, lastSteward+1)
	}
	for i := 0; i <= lastSteward && i+1 < len(route); i++ {
		span := append(cs.spanScratch[:0], paths[i]...)
		if i+1 < len(paths) {
			span = append(span, paths[i+1]...)
		}
		cs.spanScratch = span
		res, err := cs.timedBlame(route[i+1], span, now)
		if err != nil {
			return nil, err
		}
		rep.Verdicts = append(rep.Verdicts, Verdict{
			Judged: route[i+1], At: now, Blame: res.Blame, Guilty: res.Guilty,
		})
		cs.Window.Add(slabs[i+1], rep.Verdicts[len(rep.Verdicts)-1])
		cs.emit(trace.Event{
			At: now, Kind: trace.KindVerdict,
			Node: route[i], Peer: route[i+1], Guilty: res.Guilty,
		})
	}
	if len(rep.Verdicts) == 0 {
		rep.NetworkBlamed = true
		return rep, nil
	}

	// Recursive revision (§3.5): the deepest steward's verdict stands.
	deepest := rep.Verdicts[len(rep.Verdicts)-1]
	if !deepest.Guilty {
		rep.NetworkBlamed = true
		return rep, nil
	}
	rep.Culprit = deepest.Judged

	// Assemble the amended accusation from the deepest contiguous run of
	// guilty verdicts whose participants are all still members. Slab keys
	// make the presence check one array load; keysOfSlab could sign for
	// a departed participant, but the legacy plane cannot — so the same
	// truncated-chain degradation is kept deliberately.
	start := len(rep.Verdicts) - 1
	for start > 0 && rep.Verdicts[start-1].Guilty {
		start--
	}
	for vi := start; vi < len(rep.Verdicts); vi++ {
		haveAccuser := cs.ringOfSlab[slabs[vi]] != overlay.NoIndex
		haveJudged := cs.ringOfSlab[slabs[vi+1]] != overlay.NoIndex
		if !haveAccuser || !haveJudged {
			start = vi + 1
			rep.ChainUnavailable = true
		}
	}
	if rep.ChainUnavailable {
		cs.Counters.ChainsUnavailable++
	}
	if start >= len(rep.Verdicts) {
		return rep, nil
	}
	links := make([]Accusation, 0, len(rep.Verdicts)-start)
	for vi := start; vi < len(rep.Verdicts); vi++ {
		accuser := route[vi]
		judged := rep.Verdicts[vi].Judged
		// Accusation spans escape into the signed chain: exact-size
		// copies, never scratch.
		spanLen := len(paths[vi])
		if vi+1 < len(paths) {
			spanLen += len(paths[vi+1])
		}
		span := append(make([]topology.LinkID, 0, spanLen), paths[vi]...)
		if vi+1 < len(paths) {
			span = append(span, paths[vi+1]...)
		}
		res, err := cs.timedBlame(judged, span, now)
		if err != nil {
			return nil, err
		}
		commit := NewCommitment(cs.keysOfSlab(slabs[vi+1]), accuser, judged, dst, rep.MsgID, now)
		acc, err := NewAccusation(cs.keysOfSlab(slabs[vi]), accuser, res, rep.MsgID, span, commit)
		if err != nil {
			return nil, err
		}
		links = append(links, acc)
	}
	chain, err := NewRevisionChain(links)
	if err != nil {
		return nil, err
	}
	rep.Chain = chain
	cs.met.chainLen.Observe(int64(len(chain.Links)))
	cs.emit(trace.Event{At: now, Kind: trace.KindAccusation, Node: src, Peer: rep.Culprit})
	return rep, nil
}

// dropsMessageSlab evaluates slab p's drop policy for one stewarded
// message. The packed-bits fast path covers honest nodes and plain
// droppers with zero map traffic and zero rng draws — exactly what the
// legacy policy consumes for those behaviors — and the extended path
// mirrors the legacy evaluation order draw for draw.
func (cs *CompactSystem) dropsMessageSlab(p uint32) bool {
	bits := cs.behaviorBits[p]
	if bits&4 == 0 {
		return bits&1 != 0
	}
	b := cs.extBehavior[p]
	if b.DropsMessages {
		return true
	}
	if b.DropPeriod > 0 {
		cs.fwdSeq[p]++
		if cs.fwdSeq[p]%uint64(b.DropPeriod) == 0 {
			return true
		}
	}
	return b.DropProb > 0 && cs.rng.Float64() < b.DropProb
}

// timedBlame wraps the blame engine with metrics, as on the legacy
// plane: call count, probes consulted, and wall-clock latency (the
// reserved "_wallns" class, excluded from canonical snapshots).
func (cs *CompactSystem) timedBlame(judged id.ID, span []topology.LinkID, at netsim.Time) (BlameResult, error) {
	start := time.Now()
	res, err := cs.Engine.Blame(judged, span, at)
	cs.met.blameWall.ObserveDuration(time.Since(start))
	if err == nil {
		cs.met.blameCalls.Inc()
		cs.met.blameProbes.Observe(int64(res.TotalProbes))
	}
	return res, err
}

// SendBulk routes n messages from src to dst as one batch over the
// current secure route, collects the destination's digest
// acknowledgment, and judges the first hop for every missing message —
// System.SendBulk over indices and the slab-keyed ledger.
func (cs *CompactSystem) SendBulk(src, dst id.ID, n int) (*BulkReport, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: bulk size %d must be positive", n)
	}
	si, ok := cs.Overlay.IndexOf(src)
	if !ok {
		return nil, fmt.Errorf("core: unknown source %s", src.Short())
	}
	if _, ok := cs.Overlay.IndexOf(dst); !ok {
		return nil, fmt.Errorf("core: unknown destination %s", dst.Short())
	}
	idxRoute, err := cs.Overlay.AppendRouteSecure(si, dst, 0, nil)
	if err != nil {
		return nil, err
	}
	route := make([]id.ID, len(idxRoute))
	slabs := make([]uint32, len(idxRoute))
	for h, i := range idxRoute {
		route[h] = cs.Overlay.ID(i)
		slabs[h] = cs.slabOf[i]
	}
	rep := &BulkReport{Route: route, Sent: n}
	if len(route) == 1 {
		rep.Delivered, rep.Cleared = n, n
		return rep, nil
	}
	paths := make([][]topology.LinkID, len(route)-1)
	for i := 0; i+1 < len(route); i++ {
		p, err := cs.pathToPeer(slabs[i], route[i], route[i+1])
		if err != nil {
			return nil, err
		}
		paths[i] = p
	}
	dstSlab := slabs[len(slabs)-1]

	ledger := NewCompactStewardLedger(src)
	sendTime := cs.Sim.Now()
	var received []uint64
	for m := 0; m < n; m++ {
		cs.msgSeq[slabs[0]]++
		msgID := cs.msgSeq[slabs[0]]
		ledger.RecordSent(dstSlab, msgID, cs.Sim.Now())
		ok := true
		for i := 0; i+1 < len(route) && ok; i++ {
			cs.Run(cs.Net.Latency(paths[i]))
			if !cs.Net.PathUp(paths[i]) {
				ok = false
				break
			}
			if cs.behaviorOfSlab(slabs[i+1]).DropsMessages && route[i+1] != dst {
				ok = false
			}
		}
		if ok {
			received = append(received, msgID)
		}
	}
	rep.Delivered = len(received)

	// One digest acknowledgment covers the batch.
	ack, err := NewDigestAck(cs.keysOfSlab(dstSlab), src, dst, cs.Sim.Now(), uint32(n), received)
	if err != nil {
		return nil, err
	}
	rep.AckDigests = len(ack.Digests)
	cleared, err := ledger.ConsumeAck(dstSlab, dst, &ack, cs.keysOfSlab(dstSlab).Public)
	if err != nil {
		return nil, err
	}
	rep.Cleared = len(cleared)
	rep.Missing = ledger.NeedsBlame(dstSlab, cs.Sim.Now())

	// Judge the first hop once per missing message, over the span its
	// messages needed after leaving the source.
	if len(rep.Missing) > 0 && len(route) > 1 {
		span := append([]topology.LinkID(nil), paths[0]...)
		if len(paths) > 1 {
			span = append(span, paths[1]...)
		}
		for range rep.Missing {
			res, err := cs.Engine.Blame(route[1], span, sendTime)
			if err != nil {
				return nil, err
			}
			v := Verdict{Judged: route[1], At: sendTime, Blame: res.Blame, Guilty: res.Guilty}
			rep.Verdicts = append(rep.Verdicts, v)
			cs.Window.Add(slabs[1], v)
			cs.emit(trace.Event{
				At: sendTime, Kind: trace.KindVerdict,
				Node: src, Peer: route[1], Guilty: res.Guilty,
			})
		}
	}
	return rep, nil
}

// OverlayPaths returns every (host → routing peer) IP path — the
// candidate set for the failure injector. It materializes every node's
// tomography tree, which is exactly what lazy trees avoid at large N;
// scale experiments prefer chaos-style targeted faults, and the sim's
// small-N figure loops accept the cost for legacy-identical failure
// schedules.
func (cs *CompactSystem) OverlayPaths() ([][]topology.LinkID, error) {
	var out [][]topology.LinkID
	for p, r := range cs.ringOfSlab {
		if r == overlay.NoIndex {
			continue
		}
		tree, err := cs.treeOfSlab(uint32(p))
		if err != nil {
			return nil, err
		}
		for i := range tree.Leaves {
			out = append(out, tree.Leaves[i].Path)
		}
	}
	return out, nil
}

// StartFailures begins the link-failure process over the overlay paths.
func (cs *CompactSystem) StartFailures() error {
	paths, err := cs.OverlayPaths()
	if err != nil {
		return err
	}
	inj, err := netsim.NewFailureInjector(cs.Net, cs.rng, paths, cs.Config.Failures)
	if err != nil {
		return err
	}
	cs.Injector = inj
	return inj.Start()
}

// StartProbing schedules every node's randomized lightweight probing
// loop in slab (legacy Order) order, drawing each node's initial delay
// from the shared rng exactly as the legacy plane does.
func (cs *CompactSystem) StartProbing() error {
	if cs.probing {
		return fmt.Errorf("core: probing already started")
	}
	cs.probing = true
	for p, r := range cs.ringOfSlab {
		if r == overlay.NoIndex {
			continue
		}
		if err := cs.scheduleProbe(uint32(p)); err != nil {
			return err
		}
	}
	return nil
}

// StartProbingSample schedules probe loops for an evenly strided sample
// of about k current members instead of all of them — the
// large-N traffic figure's probing mode, where full-population probing
// would dominate the run without changing what the hot path measures.
// The stride covers the whole slab range (malicious marks cluster at
// low slabs, so a prefix would be adversarially skewed) and the chosen
// members are returned for use as traffic endpoints. No legacy
// counterpart: it exists for experiments that have already given up
// legacy equivalence by sampling.
func (cs *CompactSystem) StartProbingSample(k int) ([]id.ID, error) {
	if cs.probing {
		return nil, fmt.Errorf("core: probing already started")
	}
	if k <= 0 {
		return nil, fmt.Errorf("core: probe sample %d must be positive", k)
	}
	cs.probing = true
	alive := make([]uint32, 0, cs.Size())
	for p, r := range cs.ringOfSlab {
		if r != overlay.NoIndex {
			alive = append(alive, uint32(p))
		}
	}
	step := len(alive) / k
	if step < 1 {
		step = 1
	}
	chosen := make([]id.ID, 0, k)
	for at := 0; at < len(alive) && len(chosen) < k; at += step {
		p := alive[at]
		if err := cs.scheduleProbe(p); err != nil {
			return nil, err
		}
		chosen = append(chosen, cs.Overlay.ID(cs.ringOfSlab[p]))
	}
	return chosen, nil
}

// SetProbeLoss injects random probe-packet loss: each scheduled sweep
// is eaten whole with probability p. 0 disables the fault and restores
// the exact pre-fault random stream.
func (cs *CompactSystem) SetProbeLoss(p float64) error {
	if p < 0 || p >= 1 || math.IsNaN(p) {
		return fmt.Errorf("core: probe loss %v out of [0,1)", p)
	}
	cs.probeLoss = p
	return nil
}

// SuppressProbes pauses (or resumes) every node's probe publication —
// the evidence-staleness fault.
func (cs *CompactSystem) SuppressProbes(suppressed bool) { cs.probesSuppressed = suppressed }

// SetNodeSilent marks one node's probe sweeps as silent without
// removing it from the overlay.
func (cs *CompactSystem) SetNodeSilent(nid id.ID, silent bool) error {
	i, ok := cs.Overlay.IndexOf(nid)
	if !ok {
		return fmt.Errorf("core: unknown node %s", nid.Short())
	}
	if cs.silentSlabs == nil {
		cs.silentSlabs = make(map[uint32]bool)
	}
	cs.silentSlabs[cs.slabOf[i]] = silent
	return nil
}

// scheduleProbe queues slab p's next sweep. The sweep closure is
// created once per slab and reused for every rescheduling.
func (cs *CompactSystem) scheduleProbe(p uint32) error {
	if cs.sweeps[p] == nil {
		cs.sweeps[p] = func() { cs.probeSweep(p) }
	}
	delay := time.Duration(cs.rng.Float64() * float64(cs.Config.MaxProbeTime))
	return cs.Sim.ScheduleAfter(delay, cs.sweeps[p])
}

// probeSweep runs one lightweight probe sweep for slab p and
// reschedules the next — the legacy sweep body over indices.
func (cs *CompactSystem) probeSweep(p uint32) {
	if cs.ringOfSlab[p] == overlay.NoIndex {
		// The node departed after this sweep was scheduled: a ghost must
		// not keep publishing probes, and its loop ends here.
		cs.Counters.GhostProbesStopped++
		return
	}
	if cs.probesSuppressed || cs.silentSlabs[p] {
		cs.Counters.ProbesSuppressed++
		cs.reschedProbe(p)
		return
	}
	if cs.probeLoss > 0 && cs.rng.Float64() < cs.probeLoss {
		cs.Counters.ProbesLost++
		cs.reschedProbe(p)
		return
	}
	tree, err := cs.treeOfSlab(p)
	if err != nil {
		// The graph is immutable and BFS roots are attachment routers, so
		// this cannot fire in practice; surface it rather than panic.
		cs.Counters.ArchiveRecordErrors++
		cs.reschedProbe(p)
		return
	}
	// The archive copies observations out record by record, so the
	// unsigned path reuses one scratch slice across every sweep. Signed
	// snapshots retain obs, so that path keeps a fresh allocation.
	var obs []tomography.LinkObservation
	if cs.Config.SignedSnapshots {
		obs, err = tomography.ObserveLinks(cs.Net, tree.Links(), cs.Config.Blame.ProbeAccuracy, cs.rng)
	} else {
		obs, err = tomography.AppendObserveLinks(cs.obsScratch[:0], cs.Net, tree.Links(), cs.Config.Blame.ProbeAccuracy, cs.rng)
		if err == nil {
			cs.obsScratch = obs
		}
	}
	if err == nil {
		cs.met.probeSweeps.Inc()
		cs.met.probeBytes.Add(uint64(len(obs) * wiresize.ProbePacket))
		for i := range tree.Leaves {
			cs.met.probeRTT.ObserveDuration(2 * cs.Net.Latency(tree.Leaves[i].Path))
		}
		if cs.Config.SignedSnapshots {
			cs.publishSnapshot(p, obs)
		} else if err := cs.Archive.Record(cs.Overlay.ID(cs.ringOfSlab[p]), cs.Sim.Now(), obs); err != nil {
			cs.Counters.ArchiveRecordErrors++
		}
		cs.emit(trace.Event{At: cs.Sim.Now(), Kind: trace.KindProbe, Node: cs.Overlay.ID(cs.ringOfSlab[p])})
	}
	if cs.Config.ArchiveRetention > 0 {
		now := cs.Sim.Now()
		if now.Sub(cs.lastPrune) >= cs.Config.ArchiveRetention/4 {
			cs.lastPrune = now
			cs.Archive.Prune(now.Add(-cs.Config.ArchiveRetention))
		}
	}
	cs.reschedProbe(p)
}

// reschedProbe queues slab p's next sweep, surfacing scheduling
// failures.
func (cs *CompactSystem) reschedProbe(p uint32) {
	if err := cs.scheduleProbe(p); err != nil {
		cs.Counters.ProbeRescheduleErrors++
	}
}

// publishSnapshot runs the full §3.2 dissemination path for slab p: the
// prober signs its snapshot (leaf spacing from the derived leaf set)
// and receivers validate the signature before archiving.
func (cs *CompactSystem) publishSnapshot(p uint32, obs []tomography.LinkObservation) {
	i := cs.ringOfSlab[p]
	spacing, err := cs.Overlay.LeafMeanSpacing(i)
	if err != nil {
		spacing = 0
	}
	snap := &Snapshot{
		Prober:       cs.Overlay.ID(i),
		At:           cs.Sim.Now(),
		Observations: obs,
		LeafSpacing:  spacing,
	}
	snap.Sign(cs.keysOfSlab(p))
	cs.met.snapshotBytes.Add(uint64(wiresize.SnapshotBytes(len(obs))))
	validator := &SnapshotValidator{Keys: cs.KeyDir()}
	if err := validator.Ingest(cs.Archive, snap); err != nil {
		cs.emit(trace.Event{
			At: cs.Sim.Now(), Kind: trace.KindSnapshotRejected,
			Node: cs.Overlay.ID(i), Detail: err.Error(),
		})
	}
}
