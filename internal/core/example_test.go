package core_test

import (
	"fmt"
	"math/rand/v2"
	"time"

	"concilium/internal/core"
	"concilium/internal/id"
	"concilium/internal/sigcrypto"
	"concilium/internal/tomography"
	"concilium/internal/topology"
)

// ExampleBlameEngine_Blame reproduces the paper's §3.4 worked example:
// two probes saw the link down, one saw it up, probe accuracy is 0.8 —
// so the confidence the link was bad is 0.6 and the forwarder's blame
// is 0.4.
func ExampleBlameEngine_Blame() {
	archive := tomography.NewArchive()
	q := id.MustParse("00000000000000000000000000000001")
	r := id.MustParse("00000000000000000000000000000002")
	s := id.MustParse("00000000000000000000000000000003")
	judged := id.MustParse("000000000000000000000000000000ff")

	link := topology.LinkID(7)
	_ = archive.Record(q, 0, []tomography.LinkObservation{{Link: link, Up: false}})
	_ = archive.Record(r, 0, []tomography.LinkObservation{{Link: link, Up: false}})
	_ = archive.Record(s, 0, []tomography.LinkObservation{{Link: link, Up: true}})

	engine, err := core.NewBlameEngine(archive, core.BlameConfig{
		ProbeAccuracy:   0.8,
		Delta:           time.Minute,
		GuiltyThreshold: 0.4,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := engine.Blame(judged, []topology.LinkID{link}, 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("confidence link was bad: %.1f\n", res.WorstLink.Confidence)
	fmt.Printf("blame on the forwarder: %.1f\n", res.Blame)
	// Output:
	// confidence link was bad: 0.6
	// blame on the forwarder: 0.4
}

// ExampleRevisionChain shows §3.5's recursive revision: A's accusation
// against B is amended with B's verdict against C, exonerating B.
func ExampleRevisionChain() {
	rng := rand.New(rand.NewPCG(1, 2))
	ids := make([]id.ID, 4) // A, B, C, Z
	keys := make([]sigcrypto.KeyPair, 4)
	for i := range ids {
		ids[i] = id.Random(rng)
		keys[i] = sigcrypto.KeyPairFromRand(rng)
	}
	engine, err := core.NewBlameEngine(tomography.NewArchive(), core.DefaultBlameConfig())
	if err != nil {
		fmt.Println(err)
		return
	}
	const msgID = 7
	accuse := func(accuser, accused int) core.Accusation {
		res, err := engine.Blame(ids[accused], []topology.LinkID{1}, 0)
		if err != nil {
			fmt.Println(err)
		}
		commit := core.NewCommitment(keys[accused], ids[accuser], ids[accused], ids[3], msgID, 0)
		acc, err := core.NewAccusation(keys[accuser], ids[accuser], res, msgID, nil, commit)
		if err != nil {
			fmt.Println(err)
		}
		return acc
	}
	chain, err := core.NewRevisionChain([]core.Accusation{accuse(0, 1)})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("culprit before revision is B:", chain.Culprit() == ids[1])
	chain, err = chain.Extend(accuse(1, 2))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("culprit after revision is C:", chain.Culprit() == ids[2])
	fmt.Println("B exonerated:", len(chain.Exonerated()) == 1 && chain.Exonerated()[0] == ids[1])
	// Output:
	// culprit before revision is B: true
	// culprit after revision is C: true
	// B exonerated: true
}

// ExampleOccupancyModel shows the §3.1 occupancy analytics behind the
// density test: the expected routing-table size of a 100,000-node
// overlay matches the paper's 77 entries (μφ + 16 leaves).
func ExampleOccupancyModel() {
	model := core.DefaultOccupancyModel()
	mu, err := model.ExpectedOccupancy(100000)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("expected routing entries at N=100k: %.0f\n", mu+16)
	// Output:
	// expected routing entries at N=100k: 78
}

// ExampleAccusationErrorRates reproduces Figure 6's headline: with
// w=100 and the paper's measured per-drop probabilities, m=6 drives
// both formal-accusation error rates below 1%.
func ExampleAccusationErrorRates() {
	fp, fn, err := core.AccusationErrorRates(core.WindowConfig{W: 100, M: 6}, 0.018, 0.938)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("false positives below 1%%: %v\n", fp < 0.01)
	fmt.Printf("false negatives below 1%%: %v\n", fn < 0.01)
	// Output:
	// false positives below 1%: true
	// false negatives below 1%: true
}
