package core

import (
	"math/rand/v2"
	"testing"
	"time"

	"concilium/internal/netsim"
	"concilium/internal/topology"
)

// sendMessageAllocBudget is the per-send allocation ceiling on a warm
// system's delivered-and-acked path. Before the zero-alloc rework this
// path cost ~144 allocs (routing-state map rebuilt per message, fresh
// hop-path and span slices per judgment); with the cached routing
// states and scratch arenas it costs 2 (the report and its copied-out
// route, both of which escape). The budget leaves slack for runtime
// noise while staying far under the old cost — if a change pushes past
// it, some per-send allocation crept back into the hot path.
const sendMessageAllocBudget = 8

// TestSendMessageAllocBudget locks in the zero-alloc diagnosis hot
// path: repeated sends on a warm 40-host system must stay within the
// allocation budget.
func TestSendMessageAllocBudget(t *testing.T) {
	cfg := SystemConfig{
		Topology:        topology.TestConfig(),
		OverlayFraction: 0.5,
		Blame:           DefaultBlameConfig(),
		Window:          DefaultWindowConfig(),
		MaxProbeTime:    2 * time.Minute,
		Failures:        netsim.DefaultFailureConfig(),
	}
	rng := rand.New(rand.NewPCG(7, 11))
	s, err := BuildSystem(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.StartProbing(); err != nil {
		t.Fatal(err)
	}
	s.Run(10 * time.Minute)
	src, dst := s.Order[0], s.Order[len(s.Order)/2]
	// One warmup send grows the scratch arenas to steady-state size.
	if _, err := s.SendMessage(src, dst); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(50, func() {
		if _, err := s.SendMessage(src, dst); err != nil {
			t.Fatal(err)
		}
	})
	if n > sendMessageAllocBudget {
		t.Errorf("SendMessage allocates %.1f/op on a warm system, budget %d", n, sendMessageAllocBudget)
	}
}

// TestCompactSendMessageAllocBudget holds the compact traffic plane to
// the same warm-path ceiling as the legacy one. The delivered path
// should cost exactly 2 allocations (the report and its copied-out
// route); the shared budget leaves the same runtime-noise slack.
func TestCompactSendMessageAllocBudget(t *testing.T) {
	cfg := SystemConfig{
		Topology:        topology.TestConfig(),
		OverlayFraction: 0.5,
		Blame:           DefaultBlameConfig(),
		Window:          DefaultWindowConfig(),
		MaxProbeTime:    2 * time.Minute,
		Failures:        netsim.DefaultFailureConfig(),
	}
	rng := rand.New(rand.NewPCG(7, 11))
	cs, err := BuildCompactSystem(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.StartProbing(); err != nil {
		t.Fatal(err)
	}
	cs.Run(10 * time.Minute)
	alive := cs.AliveIDs()
	src, dst := alive[0], alive[len(alive)/2]
	// One warmup send grows the scratch arenas to steady-state size.
	if _, err := cs.SendMessage(src, dst); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(50, func() {
		if _, err := cs.SendMessage(src, dst); err != nil {
			t.Fatal(err)
		}
	})
	if n > sendMessageAllocBudget {
		t.Errorf("compact SendMessage allocates %.1f/op on a warm system, budget %d", n, sendMessageAllocBudget)
	}
}
