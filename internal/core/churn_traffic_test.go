package core

import (
	"testing"
	"time"

	"concilium/internal/id"
)

// The churn-under-traffic tests interleave FailNode/JoinNode with
// in-flight SendMessage calls: departures are scheduled on the
// simulator so they fire during the latency advances inside the
// forward pass, exactly where a crash races the protocol.

// churnTestSystem builds a probed system with slow hops so there is
// real virtual time to schedule churn into, and enough nodes that
// FailNode is permitted.
func churnTestSystem(t *testing.T) *System {
	t.Helper()
	s := buildTestSystem(t, func(c *SystemConfig) {
		c.HopLatency = time.Second
	})
	if len(s.Order) <= 5 {
		t.Skip("overlay too small to remove nodes")
	}
	if err := s.StartProbing(); err != nil {
		t.Fatal(err)
	}
	s.Run(3 * time.Minute)
	return s
}

// scheduleDeparture fails nid after delay of virtual time.
func scheduleDeparture(t *testing.T, s *System, nid id.ID, delay time.Duration) {
	t.Helper()
	err := s.Sim.ScheduleAfter(delay, func() {
		if err := s.FailNode(nid); err != nil {
			t.Errorf("FailNode(%s): %v", nid.Short(), err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendMessageNextHopDepartsMidFlight(t *testing.T) {
	t.Parallel()
	s := churnTestSystem(t)
	src, dst, route := findMultiHopPair(t, s, 2)

	// The first intermediate hop crashes while the message is crossing
	// the first IP path toward it.
	departed := route[1]
	scheduleDeparture(t, s, departed, 500*time.Millisecond)

	rep, err := s.SendMessage(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered {
		t.Fatal("message delivered through a departed node")
	}
	if rep.Kind != DropByChurn || rep.DroppedBy != departed {
		t.Fatalf("drop cause: kind=%v by=%s, want churn drop by %s",
			rep.Kind, rep.DroppedBy.Short(), departed.Short())
	}
	if s.Counters.ChurnDrops != 1 {
		t.Errorf("ChurnDrops = %d, want 1", s.Counters.ChurnDrops)
	}
	// The source stewarded the message and still judges the silent hop;
	// with healthy, well-probed links the departed node takes the blame.
	if len(rep.Verdicts) == 0 {
		t.Fatal("no verdicts for a churn drop")
	}
	if rep.Verdicts[0].Judged != departed {
		t.Errorf("first verdict judges %s, want %s",
			rep.Verdicts[0].Judged.Short(), departed.Short())
	}
	if rep.Culprit == departed {
		// The culprit departed: no signed chain can exist, and that must
		// be reported as a degraded outcome, not silence or a panic.
		if rep.Chain != nil {
			t.Error("chain assembled with a departed culprit")
		}
		if !rep.ChainUnavailable {
			t.Error("ChainUnavailable not set for a departed culprit")
		}
		if s.Counters.ChainsUnavailable == 0 {
			t.Error("ChainsUnavailable counter not incremented")
		}
	}
}

func TestSendMessageStewardDepartsBeforeVerdict(t *testing.T) {
	t.Parallel()
	s := churnTestSystem(t)
	src, dst, route := findMultiHopPair(t, s, 2)

	// The culprit is the first intermediate; the accusing steward (the
	// source itself) departs while the message is still in flight, so by
	// diagnosis time the only possible accuser cannot sign.
	culprit := route[1]
	s.Nodes[culprit].Behavior = Behavior{DropsMessages: true}
	scheduleDeparture(t, s, src, 500*time.Millisecond)

	rep, err := s.SendMessage(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered {
		t.Fatal("message delivered through a dropper")
	}
	if rep.Kind != DropByNode || rep.DroppedBy != culprit {
		t.Fatalf("drop cause: %+v", rep)
	}
	if rep.Culprit != culprit {
		t.Fatalf("culprit = %s, want %s", rep.Culprit.Short(), culprit.Short())
	}
	// Every chain link needs the departed source as accuser: the verdict
	// record survives, the signed chain is reported unavailable.
	if rep.Chain != nil {
		t.Error("chain assembled with a departed accuser")
	}
	if !rep.ChainUnavailable {
		t.Error("ChainUnavailable not set for a departed accuser")
	}
}

func TestSendMessageMidChainStewardDepartsTruncatesChain(t *testing.T) {
	t.Parallel()
	s := churnTestSystem(t)
	src, dst, route := findMultiHopPair(t, s, 2)

	// An acknowledgment drop makes every steward judge its next hop, so
	// even a 2-hop route carries a 2-link chain. Freeze the archive (all
	// pre-send probes say "up"), kill the first-hop link after the
	// forward legs, and crash the source right behind it: the chain's
	// first link (src accuses route[1]) is unsignable, but the surviving
	// suffix — route[1] accusing the last hop — still verifies.
	culprit := route[len(route)-1]
	s.SuppressProbes(true)
	path0, err := s.Nodes[route[0]].PathToPeer(route[1])
	if err != nil {
		t.Fatal(err)
	}
	var forwardSpan time.Duration
	for i := 0; i+1 < len(route); i++ {
		p, err := s.Nodes[route[i]].PathToPeer(route[i+1])
		if err != nil {
			t.Fatal(err)
		}
		forwardSpan += s.Net.Latency(p)
	}
	err = s.Sim.ScheduleAfter(forwardSpan+time.Millisecond, func() {
		if err := s.Net.SetLinkDown(path0[0], true); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	scheduleDeparture(t, s, src, forwardSpan+2*time.Millisecond)

	rep, err := s.SendMessage(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Delivered || rep.AckReceived {
		t.Fatalf("want delivered-but-unacked, got %+v", rep)
	}
	if rep.Kind != DropAckByLink {
		t.Fatalf("drop cause: kind=%v, want ack drop", rep.Kind)
	}
	if len(rep.Verdicts) < 2 {
		t.Fatalf("only %d verdicts; need 2+ for a truncatable chain", len(rep.Verdicts))
	}
	if rep.Culprit != culprit {
		t.Fatalf("culprit = %s, want %s", rep.Culprit.Short(), culprit.Short())
	}
	if !rep.ChainUnavailable {
		t.Error("truncated chain not flagged as degraded")
	}
	if rep.Chain == nil {
		t.Fatal("no chain despite a surviving accuser/judged suffix")
	}
	if err := rep.Chain.Verify(s.Keys(), s.Config.Blame.GuiltyThreshold); err != nil {
		t.Errorf("truncated chain does not verify: %v", err)
	}
	if rep.Chain.Culprit() != culprit {
		t.Errorf("chain culprit = %s", rep.Chain.Culprit().Short())
	}
}

func TestChurnUnderTrafficEveryRouteShape(t *testing.T) {
	t.Parallel()
	s := churnTestSystem(t)

	// Exercise self-delivery, direct routes, and multi-hop routes while
	// nodes leave and join between (and during) sends. Nothing may
	// panic, and every report must be internally consistent.
	shapes := map[int]bool{}
	sends := 0
	for round := 0; round < 6 && len(s.Order) > 6; round++ {
		// Depart a node that is not the src/dst we are about to use.
		victim := s.Order[len(s.Order)-1]
		src, dst := s.Order[0], s.Order[len(s.Order)/2]
		if victim == src || victim == dst {
			victim = s.Order[len(s.Order)-2]
		}
		scheduleDeparture(t, s, victim, 500*time.Millisecond)

		for _, pair := range [][2]id.ID{{src, src}, {src, dst}, {dst, src}} {
			rep, err := s.SendMessage(pair[0], pair[1])
			if err != nil {
				t.Fatalf("round %d send %s->%s: %v",
					round, pair[0].Short(), pair[1].Short(), err)
			}
			sends++
			shapes[len(rep.Route)] = true
			if rep.Delivered && rep.Kind != DropNone && rep.Kind != DropAckByLink {
				t.Fatalf("delivered report with drop kind %v", rep.Kind)
			}
			if rep.Kind == DropByChurn && rep.DroppedBy == (id.ID{}) {
				t.Fatal("churn drop without a dropped-by identity")
			}
		}
		s.Run(time.Minute)

		// A newcomer joins at the departed node's old attachment point.
		if _, err := s.JoinNode(s.Topo.EndHosts()[0]); err != nil {
			t.Fatalf("round %d join: %v", round, err)
		}
		s.Run(time.Minute)
	}
	if sends == 0 {
		t.Skip("no sends executed")
	}
	if !shapes[1] {
		t.Error("self-delivery shape never exercised")
	}
	// After all churn, every survivor's routing state is consistent:
	// peers resolve to live nodes and trees cover them.
	for _, nid := range s.Order {
		n := s.Nodes[nid]
		for _, p := range n.Routing.RoutingPeers() {
			if _, ok := s.Nodes[p]; !ok {
				t.Fatalf("node %s routes to departed peer %s", nid.Short(), p.Short())
			}
		}
		if err := n.Routing.Secure.Validate(); err != nil {
			t.Errorf("node %s secure table invalid after churn: %v", nid.Short(), err)
		}
	}
}
