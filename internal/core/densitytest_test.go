package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"concilium/internal/stats"
)

func testRand() *rand.Rand { return rand.New(rand.NewPCG(51, 53)) }

func TestOccupancyModelFillProb(t *testing.T) {
	t.Parallel()
	m := DefaultOccupancyModel()
	// Eq. 1 by hand for row 0, N=2: 1 - (1 - 1/16)^1 = 1/16.
	if got := m.FillProb(0, 2); math.Abs(got-1.0/16) > 1e-12 {
		t.Errorf("FillProb(0,2) = %v, want 1/16", got)
	}
	// Monotone in N and decreasing in row.
	if m.FillProb(0, 100) <= m.FillProb(0, 10) {
		t.Error("fill probability not monotone in N")
	}
	if m.FillProb(2, 1000) <= m.FillProb(5, 1000) {
		t.Error("fill probability should decrease with depth")
	}
	// Degenerate inputs.
	if m.FillProb(0, 1) != 0 || m.FillProb(-1, 100) != 0 || m.FillProb(99, 100) != 0 {
		t.Error("degenerate FillProb should be 0")
	}
}

func TestOccupancyModelPaperAnchors(t *testing.T) {
	t.Parallel()
	m := DefaultOccupancyModel()
	// §4.4: "in a 100,000 node overlay, the average node has 77 entries
	// in its local routing state" = μφ + 16 leaves.
	mu, err := m.ExpectedOccupancy(100000)
	if err != nil {
		t.Fatal(err)
	}
	if total := mu + 16; math.Abs(total-77) > 2.5 {
		t.Errorf("μφ+16 = %v, paper says 77", total)
	}
	// The 1,131-node evaluation overlay: about 36 occupied slots.
	mu, err = m.ExpectedOccupancy(1131)
	if err != nil {
		t.Fatal(err)
	}
	if mu < 30 || mu > 42 {
		t.Errorf("μφ(1131) = %v, want ~36", mu)
	}
}

func TestOccupancyNormalApproxMatchesMonteCarlo(t *testing.T) {
	t.Parallel()
	// Figure 1's claim: the analytic φ(μφ, σφ) tracks simulated
	// occupancy. Compare mean and spread at a mid-size overlay.
	m := DefaultOccupancyModel()
	const n = 2000
	approx, err := m.NormalApprox(n)
	if err != nil {
		t.Fatal(err)
	}
	mcMean, mcStd, err := m.MonteCarloOccupancy(n, 300, testRand())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(approx.Mu-mcMean) > 1.0 {
		t.Errorf("analytic mean %v vs Monte Carlo %v", approx.Mu, mcMean)
	}
	if math.Abs(approx.Sigma-mcStd) > 0.8 {
		t.Errorf("analytic std %v vs Monte Carlo %v", approx.Sigma, mcStd)
	}
}

func TestMonteCarloOccupancyValidation(t *testing.T) {
	t.Parallel()
	m := DefaultOccupancyModel()
	if _, _, err := m.MonteCarloOccupancy(1, 10, testRand()); err == nil {
		t.Error("n=1 accepted")
	}
	if _, _, err := m.MonteCarloOccupancy(10, 0, testRand()); err == nil {
		t.Error("0 trials accepted")
	}
	bad := OccupancyModel{L: 64, V: 16}
	if _, _, err := bad.MonteCarloOccupancy(10, 1, testRand()); err == nil {
		t.Error("oversize L accepted")
	}
}

func TestOccupancyModelValidate(t *testing.T) {
	t.Parallel()
	if err := (OccupancyModel{L: 0, V: 16}).Validate(); err == nil {
		t.Error("L=0 accepted")
	}
	if err := (OccupancyModel{L: 32, V: 1}).Validate(); err == nil {
		t.Error("V=1 accepted")
	}
	if _, err := (OccupancyModel{L: 32, V: 16}).Distribution(1); err == nil {
		t.Error("n=1 distribution accepted")
	}
}

func TestDensityTestCheck(t *testing.T) {
	t.Parallel()
	dt, err := NewDensityTest(1.2)
	if err != nil {
		t.Fatal(err)
	}
	if !dt.Check(36, 35) {
		t.Error("slightly sparser table rejected")
	}
	if !dt.Check(36, 30) {
		t.Error("within-γ table rejected (1.2*30=36)")
	}
	if dt.Check(36, 25) {
		t.Error("clearly sparse table accepted (1.2*25=30 < 36)")
	}
	for _, bad := range []float64{1, 0.5, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewDensityTest(bad); err == nil {
			t.Errorf("γ=%v accepted", bad)
		}
	}
}

func TestFalsePositiveRateProperties(t *testing.T) {
	t.Parallel()
	m := DefaultOccupancyModel()
	const n = 1131
	// FP decreases as γ grows (more tolerance).
	prev := 1.0
	for _, gamma := range []float64{1.01, 1.1, 1.3, 1.8, 3} {
		fp, err := FalsePositiveRate(m, n, n, gamma)
		if err != nil {
			t.Fatal(err)
		}
		if fp < 0 || fp > 1 {
			t.Fatalf("FP(%v) = %v out of range", gamma, fp)
		}
		if fp > prev+1e-9 {
			t.Fatalf("FP not decreasing at γ=%v", gamma)
		}
		prev = fp
	}
	// At γ=1 with identical distributions, FP ≈ 1/2.
	fp, err := FalsePositiveRate(m, n, n, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fp-0.5) > 0.05 {
		t.Errorf("FP(γ=1) = %v, want ~0.5", fp)
	}
	if _, err := FalsePositiveRate(m, n, n, 0); err == nil {
		t.Error("γ=0 accepted")
	}
}

func TestFalseNegativeRateProperties(t *testing.T) {
	t.Parallel()
	m := DefaultOccupancyModel()
	const n = 1131
	// FN increases with γ (more tolerance lets attackers through) and
	// with the colluding population (denser fraudulent tables).
	fnSmallGamma, err := FalseNegativeRate(m, n, n/5, 1.05)
	if err != nil {
		t.Fatal(err)
	}
	fnBigGamma, err := FalseNegativeRate(m, n, n/5, 1.8)
	if err != nil {
		t.Fatal(err)
	}
	if fnBigGamma <= fnSmallGamma {
		t.Errorf("FN should grow with γ: %v vs %v", fnSmallGamma, fnBigGamma)
	}
	fnMoreColluders, err := FalseNegativeRate(m, n, n/2, 1.05)
	if err != nil {
		t.Fatal(err)
	}
	if fnMoreColluders <= fnSmallGamma {
		t.Errorf("FN should grow with collusion: %v vs %v", fnSmallGamma, fnMoreColluders)
	}
	if _, err := FalseNegativeRate(m, n, n/5, -1); err == nil {
		t.Error("negative γ accepted")
	}
}

func TestErrorRatesPaperAnchors(t *testing.T) {
	t.Parallel()
	// §4.1 without suppression: at 20% collusion the false negative rate
	// is about 3.5%; at 30% the sum-minimizing γ gives FP ≈ 8.5% and
	// FN ≈ 14.8%. Band-check those anchors.
	m := DefaultOccupancyModel()
	r20, err := OptimalGamma(m, DensityScenario{N: 1131, Collusion: 0.2}, 1.0001, 3, 200)
	if err != nil {
		t.Fatal(err)
	}
	if r20.FalseNegative > 0.08 {
		t.Errorf("c=20%% FN = %v, paper ~3.5%%", r20.FalseNegative)
	}
	r30, err := OptimalGamma(m, DensityScenario{N: 1131, Collusion: 0.3}, 1.0001, 3, 200)
	if err != nil {
		t.Fatal(err)
	}
	if r30.FalsePositive < 0.03 || r30.FalsePositive > 0.15 {
		t.Errorf("c=30%% FP = %v, paper ~8.5%%", r30.FalsePositive)
	}
	if r30.FalseNegative < 0.05 || r30.FalseNegative > 0.25 {
		t.Errorf("c=30%% FN = %v, paper ~14.8%%", r30.FalseNegative)
	}
	// Errors grow with collusion.
	if r30.Sum() <= r20.Sum() {
		t.Error("misclassification should grow with collusion")
	}
}

func TestSuppressionMakesTestLessReliable(t *testing.T) {
	t.Parallel()
	// §4.1: with suppression attacks the checks are "not very reliable"
	// past 20% collusion — both error rates must exceed the
	// no-suppression rates at the same collusion level.
	m := DefaultOccupancyModel()
	for _, c := range []float64{0.2, 0.3} {
		plain, err := OptimalGamma(m, DensityScenario{N: 1131, Collusion: c}, 1.0001, 3, 150)
		if err != nil {
			t.Fatal(err)
		}
		sup, err := OptimalGamma(m, DensityScenario{N: 1131, Collusion: c, Suppression: true}, 1.0001, 3, 150)
		if err != nil {
			t.Fatal(err)
		}
		if sup.Sum() <= plain.Sum() {
			t.Errorf("c=%v: suppression did not worsen errors (%v vs %v)",
				c, sup.Sum(), plain.Sum())
		}
	}
}

func TestDensityScenarioValidation(t *testing.T) {
	t.Parallel()
	if err := (DensityScenario{N: 1, Collusion: 0.2}).Validate(); err == nil {
		t.Error("N=1 accepted")
	}
	if err := (DensityScenario{N: 100, Collusion: 0}).Validate(); err == nil {
		t.Error("c=0 accepted")
	}
	if err := (DensityScenario{N: 100, Collusion: 1}).Validate(); err == nil {
		t.Error("c=1 accepted")
	}
	if _, err := ErrorRatesAt(DefaultOccupancyModel(), DensityScenario{N: 1, Collusion: 0.2}, 1.1); err == nil {
		t.Error("invalid scenario accepted")
	}
	if _, err := OptimalGamma(DefaultOccupancyModel(), DensityScenario{N: 100, Collusion: 0.2}, 2, 1, 10); err == nil {
		t.Error("inverted sweep accepted")
	}
}

func TestDistributionMatchesStatsLayer(t *testing.T) {
	t.Parallel()
	// The model's Poisson binomial must agree with direct Eq. 1 sums.
	m := DefaultOccupancyModel()
	const n = 500
	pb, err := m.Distribution(n)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for row := 0; row < m.L; row++ {
		want += float64(m.V) * m.FillProb(row, n)
	}
	if got := pb.Mean(); math.Abs(got-want) > 1e-9 {
		t.Errorf("mean %v, want %v", got, want)
	}
	if pb.N() != m.Slots() {
		t.Errorf("trials = %d, want %d", pb.N(), m.Slots())
	}
}

func TestMonteCarloOccupancyDeterministic(t *testing.T) {
	t.Parallel()
	m := DefaultOccupancyModel()
	m1, s1, err := m.MonteCarloOccupancy(300, 50, rand.New(rand.NewPCG(9, 9)))
	if err != nil {
		t.Fatal(err)
	}
	m2, s2, err := m.MonteCarloOccupancy(300, 50, rand.New(rand.NewPCG(9, 9)))
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 || s1 != s2 {
		t.Error("same seed gave different Monte Carlo results")
	}
}

var sinkRates DensityErrorRates

func BenchmarkOptimalGamma(b *testing.B) {
	m := DefaultOccupancyModel()
	s := DensityScenario{N: 1131, Collusion: 0.3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := OptimalGamma(m, s, 1.0001, 3, 50)
		if err != nil {
			b.Fatal(err)
		}
		sinkRates = r
	}
}

var sinkNormal stats.Normal

func BenchmarkNormalApprox(b *testing.B) {
	m := DefaultOccupancyModel()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n, err := m.NormalApprox(1131)
		if err != nil {
			b.Fatal(err)
		}
		sinkNormal = n
	}
}

func TestOccupancyNormalApproxKSTest(t *testing.T) {
	t.Parallel()
	// Figure 1, quantified: simulated occupancies must not be rejected
	// against the analytic φ(μφ, σφ) by a KS test at the 1% level.
	m := DefaultOccupancyModel()
	const n = 1131
	approx, err := m.NormalApprox(n)
	if err != nil {
		t.Fatal(err)
	}
	r := testRand()
	const trials = 400
	sample := make([]float64, trials)
	for i := range sample {
		mean, _, err := m.MonteCarloOccupancy(n, 1, r)
		if err != nil {
			t.Fatal(err)
		}
		// Continuity-correct the integer count with uniform jitter so
		// the KS test compares against a continuous reference fairly.
		sample[i] = mean + r.Float64() - 0.5
	}
	d, err := stats.KolmogorovSmirnov(sample, approx.CDF)
	if err != nil {
		t.Fatal(err)
	}
	crit, err := stats.KSCriticalValue(trials, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if d > crit {
		t.Errorf("normal approximation rejected by KS test: D=%.4f crit=%.4f", d, crit)
	}
}
