package core

import (
	"math/rand/v2"
	"testing"

	"concilium/internal/id"
	"concilium/internal/sigcrypto"
)

func TestCounterAckRoundTrip(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(401, 403))
	kp := sigcrypto.KeyPairFromRand(r)
	from, by := id.Random(r), id.Random(r)
	ack, err := NewCounterAck(kp, from, by, 100, 48, 50)
	if err != nil {
		t.Fatal(err)
	}
	if err := ack.Verify(kp.Public); err != nil {
		t.Fatalf("valid ack rejected: %v", err)
	}
	if got := ack.LossRate(); got != 0.04 {
		t.Errorf("LossRate = %v, want 0.04", got)
	}
	// Counter acks cannot answer per-message questions.
	if ack.Covers(from, 7) {
		t.Error("counter ack claimed per-message coverage")
	}
	// Tampering invalidates.
	forged := ack
	forged.Received = 50
	if err := forged.Verify(kp.Public); err == nil {
		t.Error("inflated counter accepted")
	}
	// Received > Expected rejected at build and verify.
	if _, err := NewCounterAck(kp, from, by, 100, 51, 50); err == nil {
		t.Error("overfull ack built")
	}
}

func TestDigestAckCoverage(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(405, 407))
	kp := sigcrypto.KeyPairFromRand(r)
	from, by := id.Random(r), id.Random(r)
	received := []uint64{3, 9, 27}
	ack, err := NewDigestAck(kp, from, by, 100, 5, received)
	if err != nil {
		t.Fatal(err)
	}
	if err := ack.Verify(kp.Public); err != nil {
		t.Fatalf("valid ack rejected: %v", err)
	}
	for _, m := range received {
		if !ack.Covers(from, m) {
			t.Errorf("message %d not covered", m)
		}
	}
	// Uncovered messages and wrong senders report false.
	if ack.Covers(from, 4) {
		t.Error("missing message covered")
	}
	if ack.Covers(by, 3) {
		t.Error("wrong sender covered")
	}
	if got := ack.LossRate(); got != 0.4 {
		t.Errorf("LossRate = %v, want 0.4 (3 of 5)", got)
	}
	// Too many messages for the claimed span.
	if _, err := NewDigestAck(kp, from, by, 100, 2, received); err == nil {
		t.Error("overfull digest ack built")
	}
	// Digest/counter mismatch caught at verify.
	broken := ack
	broken.Received = 2
	if err := broken.Verify(kp.Public); err == nil {
		t.Error("mismatched digest count accepted")
	}
}

func TestDigestAckCanonicalOrder(t *testing.T) {
	t.Parallel()
	// The same message set in any order signs identically.
	r := rand.New(rand.NewPCG(409, 411))
	kp := sigcrypto.KeyPairFromRand(r)
	from, by := id.Random(r), id.Random(r)
	a, err := NewDigestAck(kp, from, by, 50, 10, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDigestAck(kp, from, by, 50, 10, []uint64{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Signature) != string(b.Signature) {
		t.Error("message order changed the signature")
	}
}

func TestMessageDigestDistinct(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(413, 417))
	from := id.Random(r)
	other := id.Random(r)
	if MessageDigest(from, 1) == MessageDigest(from, 2) {
		t.Error("different messages collide")
	}
	if MessageDigest(from, 1) == MessageDigest(other, 1) {
		t.Error("different senders collide")
	}
}

func TestBatchAckZeroSpan(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(419, 421))
	kp := sigcrypto.KeyPairFromRand(r)
	ack, err := NewCounterAck(kp, id.Random(r), id.Random(r), 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := ack.LossRate(); got != 0 {
		t.Errorf("zero-span loss rate = %v", got)
	}
}
