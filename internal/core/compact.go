package core

import (
	"crypto/ed25519"
	"fmt"
	"math"

	"concilium/internal/id"
	"concilium/internal/netsim"
	"concilium/internal/overlay"
	"concilium/internal/parexec"
	"concilium/internal/sigcrypto"
	"concilium/internal/stats"
	"concilium/internal/tomography"
	"concilium/internal/topology"
	"concilium/internal/trace"
)

// CompactSystem is the memory-compact deployment core behind the scale
// frontier: the exact generative process of BuildSystem — same serial
// rng prefix, same per-node substreams, same constrained fills — stored
// flat instead of pointer-per-node. Nodes are uint32 positions in the
// sorted ring; certificates and keys live in three shared byte slabs
// (32 B public key, 64 B private key, 64 B certificate signature per
// node) with accessors returning views; tomography trees, being a pure
// deterministic function of the immutable graph and each node's routing
// peers, are built lazily and cached per slab.
//
// Since the traffic-plane port (DESIGN.md §13) the compact core also
// runs the full diagnosis protocol — probing, SendMessage, blame,
// verdict windows, batched acks — over indices; see compact_traffic.go.
// The legacy System survives as the small-N equivalence oracle.
type CompactSystem struct {
	Config  SystemConfig
	Topo    *topology.Graph
	Sim     *netsim.Simulator
	Net     *netsim.Network
	CA      *sigcrypto.Authority
	Overlay *overlay.Compact
	Archive *tomography.Archive
	Engine  *BlameEngine
	Window  *CompactVerdictWindow

	Injector *netsim.FailureInjector
	// Counters surfaces errors and degradations that would otherwise be
	// swallowed on hot paths, mirroring the legacy System's ledger.
	Counters SystemCounters

	// slabOf maps ring position to slab position. Slabs are append-only
	// and build-ordered: the node built p-th (the legacy Order position)
	// owns slab p, and joiners append. Departures splice slabOf but keep
	// the slab row — churn at compact scale leaks 165 B per departure,
	// which is the right trade against compacting four slabs per event.
	slabOf []uint32
	// ringOfSlab is the inverse map: slab position to current ring
	// position, overlay.NoIndex once the node departs. Alive slabs in
	// ascending slab order are exactly the legacy Order (departures
	// preserve relative order, joiners append), which is what lets the
	// traffic plane iterate "in Order" without storing identifiers.
	ringOfSlab []uint32

	routers      []topology.RouterID // by slab position
	pubKeys      []byte              // ed25519.PublicKeySize per slab row
	privKeys     []byte              // ed25519.PrivateKeySize per slab row
	certSigs     []byte              // ed25519.SignatureSize per slab row
	behaviorBits []byte              // bit0 DropsMessages, bit1 InvertsProbes, bit2 extended
	// extBehavior holds the full Behavior policy for slabs whose bit2 is
	// set — probabilistic/periodic droppers and clique members, the
	// adversary-campaign knobs that do not pack into two bits. Honest
	// and plain-dropper nodes never touch the map.
	extBehavior map[uint32]Behavior

	// Per-slab protocol state, all lazily sized by the build and
	// appended on join. trees caches lazily materialized tomography
	// trees and is invalidated in full on every churn event (rebuilds
	// are deterministic, so contents always match a fresh build).
	msgSeq []uint64
	fwdSeq []uint64
	trees  []*tomography.Tree
	sweeps []func()
	// departedSlab remembers the slab of every departed identifier so
	// cold verdict-window queries and equivalence tests can still key by
	// slab after churn.
	departedSlab map[id.ID]uint32

	rng       stats.Rand
	met       systemMetrics
	probing   bool
	lastPrune netsim.Time

	// Scratch arenas (DESIGN.md §9 ownership protocol): all protocol
	// code runs in simulator callbacks on one goroutine; anything built
	// here that escapes into a report or the archive is copied out
	// exact-size first.
	bfsScratch       topology.BFSScratch
	obsScratch       []tomography.LinkObservation
	peerScratch      []uint32
	leafScratch      []tomography.Leaf
	routeIdxScratch  []uint32
	routeSlabScratch []uint32
	pathScratch      [][]topology.LinkID
	spanScratch      []topology.LinkID

	// Chaos-injection hooks, default-off (the unperturbed system draws
	// the same random stream as before they existed).
	probeLoss        float64
	probesSuppressed bool
	silentSlabs      map[uint32]bool
}

// BuildCompactSystem constructs the compact deployment deterministically
// from cfg and rng. The shared-rng prefix (topology, host permutation,
// CA keypair, SeedFrom) and the per-node substream protocol are
// byte-for-byte those of BuildSystem, so at equal seeds the two builds
// decide identical identifiers, keys, certificates, and routing tables
// — the cross-check test in compact_test.go holds them together. Like
// BuildSystem, the result is identical for every Workers value.
func BuildCompactSystem(cfg SystemConfig, rng stats.Rand) (*CompactSystem, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	graph, err := topology.Generate(cfg.Topology, rng)
	if err != nil {
		return nil, err
	}
	// The simulator and network draw nothing from rng at construction
	// (netsim consumes randomness only when sampling packets), so wiring
	// them here leaves the canonical build stream untouched.
	sim := netsim.NewSimulator()
	netOpts := []netsim.NetworkOption{netsim.WithMetrics(cfg.Metrics)}
	if cfg.HopLatency > 0 {
		netOpts = append(netOpts, netsim.WithHopLatency(cfg.HopLatency))
	}
	if cfg.Tracer != nil {
		netOpts = append(netOpts, netsim.WithLinkWatcher(func(l topology.LinkID, down bool) {
			kind := trace.KindLinkRepaired
			if down {
				kind = trace.KindLinkFailed
			}
			cfg.Tracer.Record(trace.Event{At: sim.Now(), Kind: kind, Link: l})
		}))
	}
	net, err := netsim.NewNetwork(graph, sim, rng, netOpts...)
	if err != nil {
		return nil, err
	}

	hosts := graph.EndHosts()
	nOverlay := int(cfg.OverlayFraction * float64(len(hosts)))
	if nOverlay < 4 {
		return nil, fmt.Errorf("core: only %d overlay nodes from %d hosts; increase scale", nOverlay, len(hosts))
	}
	perm := make([]int, len(hosts))
	for i := range perm {
		perm[i] = i
	}
	for i := len(perm) - 1; i > 0; i-- {
		j := rng.IntN(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	ca := sigcrypto.NewAuthority(sigcrypto.KeyPairFromRand(rng), rng)
	buildSeed := parexec.SeedFrom(rng)

	// Phase 1: keygen and issuance into flat slabs, fanned out. Slot p
	// writes only its own slab rows, so workers never contend.
	n := nOverlay
	ids := make([]id.ID, n)
	cs := &CompactSystem{
		Config:       cfg,
		Topo:         graph,
		Sim:          sim,
		Net:          net,
		CA:           ca,
		Archive:      tomography.NewArchive(),
		routers:      make([]topology.RouterID, n),
		pubKeys:      make([]byte, n*ed25519.PublicKeySize),
		privKeys:     make([]byte, n*ed25519.PrivateKeySize),
		certSigs:     make([]byte, n*ed25519.SignatureSize),
		behaviorBits: make([]byte, n),
		msgSeq:       make([]uint64, n),
		fwdSeq:       make([]uint64, n),
		trees:        make([]*tomography.Tree, n),
		sweeps:       make([]func(), n),
		rng:          rng,
		met:          newSystemMetrics(cfg.Metrics),
	}
	cs.Archive.SetMetrics(cfg.Metrics)
	err = parexec.ForEachWorker(cfg.Workers, n, "compact-keygen", func(_, p int) error {
		stream := buildSeed.Stream(2 * uint64(p))
		keys := sigcrypto.KeyPairFromRand(stream)
		router := hosts[perm[p]]
		cert, err := ca.IssueFor(hostAddr(router), id.Random(stream), keys.Public)
		if err != nil {
			return err
		}
		ids[p] = cert.NodeID
		cs.routers[p] = router
		copy(cs.pubKeys[p*ed25519.PublicKeySize:], keys.Public)
		copy(cs.privKeys[p*ed25519.PrivateKeySize:], keys.Private)
		copy(cs.certSigs[p*ed25519.SignatureSize:], cert.Signature)
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Serial claim in build order. Collision redraws (~2^-128 per pair)
	// come from the colliding node's own substream, re-derived and
	// advanced past the six keygen/identifier draws phase 1 consumed —
	// the same stream position the legacy build redraws from.
	const phase1Draws = ed25519.SeedSize/8 + id.Bytes/8
	for p := 0; p < n; p++ {
		var stream stats.Rand
		for ca.Claim(ids[p]) != nil {
			if stream == nil {
				s := buildSeed.Stream(2 * uint64(p))
				for skip := 0; skip < phase1Draws; skip++ {
					s.Uint64()
				}
				stream = s
			}
			pub := ed25519.PublicKey(cs.pubKeys[p*ed25519.PublicKeySize : (p+1)*ed25519.PublicKeySize])
			cert, err := ca.IssueFor(hostAddr(cs.routers[p]), id.Random(stream), pub)
			if err != nil {
				return nil, err
			}
			ids[p] = cert.NodeID
			copy(cs.certSigs[p*ed25519.SignatureSize:], cert.Signature)
		}
	}

	cs.Overlay, err = overlay.NewCompact(ids, overlay.DefaultLeafSetPerSide)
	if err != nil {
		return nil, err
	}
	cs.slabOf = make([]uint32, n)
	cs.ringOfSlab = make([]uint32, n)
	for p, x := range ids {
		i, ok := cs.Overlay.IndexOf(x)
		if !ok {
			return nil, fmt.Errorf("core: built identifier %s missing from ring", x.Short())
		}
		cs.slabOf[i] = uint32(p)
		cs.ringOfSlab[p] = i
	}

	// Malicious marks follow build order, as in BuildSystem.
	nBad := int(cfg.MaliciousFraction * float64(n))
	for p := 0; p < nBad; p++ {
		cs.behaviorBits[p] = 3 // drops + inverts
	}

	// Phase 2: routing fills, fanned out. Node p's standard-table draws
	// come from Stream(2p+1), consumed in the legacy fill order (secure
	// first — no draws — then standard); each node writes only its own
	// table rows.
	err = parexec.ForEachWorker(cfg.Workers, n, "compact-routing", func(_, p int) error {
		cs.Overlay.FillNode(cs.ringOfSlab[p], buildSeed.Stream(2*uint64(p)+1))
		return nil
	})
	if err != nil {
		return nil, err
	}

	cs.Engine, err = NewBlameEngine(cs.Archive, cfg.Blame, WithRecordFilter(cs.collusionFilter))
	if err != nil {
		return nil, err
	}
	cs.Window, err = NewCompactVerdictWindow(cfg.Window)
	if err != nil {
		return nil, err
	}
	return cs, nil
}

// Size returns the current overlay population.
func (cs *CompactSystem) Size() int { return cs.Overlay.Size() }

// NodeID returns the identifier at ring position i.
func (cs *CompactSystem) NodeID(i uint32) id.ID { return cs.Overlay.ID(i) }

// Router returns node i's attachment router.
func (cs *CompactSystem) Router(i uint32) topology.RouterID {
	return cs.routers[cs.slabOf[i]]
}

// Keys returns node i's key pair as views into the shared slabs; the
// returned slices must not be modified.
func (cs *CompactSystem) Keys(i uint32) sigcrypto.KeyPair {
	return cs.keysOfSlab(cs.slabOf[i])
}

// keysOfSlab returns slab row p's key pair. Slab rows outlive
// departures, so diagnosis code that captured a slab before a churn
// event can still sign with it — mirroring the legacy plane, which
// holds the *Node alive through the pointer it captured.
func (cs *CompactSystem) keysOfSlab(p uint32) sigcrypto.KeyPair {
	q := int(p)
	return sigcrypto.KeyPair{
		Public:  ed25519.PublicKey(cs.pubKeys[q*ed25519.PublicKeySize : (q+1)*ed25519.PublicKeySize]),
		Private: ed25519.PrivateKey(cs.privKeys[q*ed25519.PrivateKeySize : (q+1)*ed25519.PrivateKeySize]),
	}
}

// Cert reassembles node i's CA certificate from the slabs. The address
// is derived from the attachment router, exactly as issuance formatted
// it, so only the signature needs storage.
func (cs *CompactSystem) Cert(i uint32) sigcrypto.Certificate {
	p := int(cs.slabOf[i])
	return sigcrypto.Certificate{
		Addr:      hostAddr(cs.routers[p]),
		NodeID:    cs.Overlay.ID(i),
		PublicKey: ed25519.PublicKey(cs.pubKeys[p*ed25519.PublicKeySize : (p+1)*ed25519.PublicKeySize]),
		Signature: cs.certSigs[p*ed25519.SignatureSize : (p+1)*ed25519.SignatureSize],
	}
}

// Behavior returns node i's (mis)behavior marks.
func (cs *CompactSystem) Behavior(i uint32) Behavior {
	return cs.behaviorOfSlab(cs.slabOf[i])
}

// behaviorOfSlab decodes slab p's policy: the two packed bits on the
// fast path, the extended map only when bit2 marks an entry.
func (cs *CompactSystem) behaviorOfSlab(p uint32) Behavior {
	bits := cs.behaviorBits[p]
	if bits&4 != 0 {
		return cs.extBehavior[p]
	}
	return Behavior{DropsMessages: bits&1 != 0, InvertsProbes: bits&2 != 0}
}

// SetBehavior installs a node's (mis)behavior policy at runtime — the
// adversary campaign's hook for marking attackers after construction.
// Policies expressible in the packed bits stay there; probabilistic,
// periodic, and clique policies spill into the extended map.
func (cs *CompactSystem) SetBehavior(nid id.ID, b Behavior) error {
	i, ok := cs.Overlay.IndexOf(nid)
	if !ok {
		return fmt.Errorf("core: unknown node %s", nid.Short())
	}
	if b.DropProb < 0 || b.DropProb >= 1 || math.IsNaN(b.DropProb) {
		return fmt.Errorf("core: drop probability %v out of [0,1)", b.DropProb)
	}
	if b.DropPeriod < 0 {
		return fmt.Errorf("core: drop period %d negative", b.DropPeriod)
	}
	p := cs.slabOf[i]
	if b.DropProb == 0 && b.DropPeriod == 0 && b.Clique == 0 {
		var bits byte
		if b.DropsMessages {
			bits |= 1
		}
		if b.InvertsProbes {
			bits |= 2
		}
		cs.behaviorBits[p] = bits
		delete(cs.extBehavior, p)
		return nil
	}
	if cs.extBehavior == nil {
		cs.extBehavior = make(map[uint32]Behavior)
	}
	var bits byte = 4
	if b.DropsMessages {
		bits |= 1
	}
	if b.InvertsProbes {
		bits |= 2
	}
	cs.behaviorBits[p] = bits
	cs.extBehavior[p] = b
	return nil
}

// TreeOf materializes node i's tomography tree: one BFS from its
// attachment router plus path extraction per routing peer. Trees are
// derived data — the build stores none, which is what removes the
// O(N·routers) phase from the scale frontier; callers that sweep many
// nodes should reuse scratch across calls. The traffic plane's
// treeOfSlab caches the result per slab instead.
func (cs *CompactSystem) TreeOf(i uint32, scratch *topology.BFSScratch) (*tomography.Tree, error) {
	if scratch == nil {
		scratch = new(topology.BFSScratch)
	}
	peers := cs.Overlay.AppendRoutingPeers(i, nil)
	leaves := make([]tomography.Leaf, 0, len(peers))
	for _, j := range peers {
		leaves = append(leaves, tomography.Leaf{Node: cs.Overlay.ID(j), Router: cs.Router(j)})
	}
	bfs, err := cs.Topo.BFSInto(scratch, cs.Router(i))
	if err != nil {
		return nil, err
	}
	return tomography.BuildTreeBFS(bfs, cs.NodeID(i), cs.Router(i), leaves)
}

// treeOfSlab returns slab p's cached tomography tree, materializing it
// on first use after build or churn. Rebuilds are a pure function of
// the immutable graph and the node's current routing peers, so the
// cache never holds content a fresh build would not produce.
func (cs *CompactSystem) treeOfSlab(p uint32) (*tomography.Tree, error) {
	if t := cs.trees[p]; t != nil {
		return t, nil
	}
	i := cs.ringOfSlab[p]
	if i == overlay.NoIndex {
		return nil, fmt.Errorf("core: tree of departed node (slab %d)", p)
	}
	cs.peerScratch = cs.Overlay.AppendRoutingPeers(i, cs.peerScratch[:0])
	cs.leafScratch = cs.leafScratch[:0]
	for _, j := range cs.peerScratch {
		cs.leafScratch = append(cs.leafScratch, tomography.Leaf{
			Node: cs.Overlay.ID(j), Router: cs.routers[cs.slabOf[j]],
		})
	}
	bfs, err := cs.Topo.BFSInto(&cs.bfsScratch, cs.routers[p])
	if err != nil {
		return nil, fmt.Errorf("core: build tree for %s: %w", cs.Overlay.ID(i).Short(), err)
	}
	tree, err := tomography.BuildTreeBFS(bfs, cs.Overlay.ID(i), cs.routers[p], cs.leafScratch)
	if err != nil {
		return nil, fmt.Errorf("core: build tree for %s: %w", cs.Overlay.ID(i).Short(), err)
	}
	cs.trees[p] = tree
	return tree, nil
}

// invalidateTrees drops every cached tree. Conservative but correct:
// a churn event shifts ring indices and can change any node's derived
// leaf set, and a rebuild is deterministic, so the only cost is the
// lazy rebuild of trees that are actually consulted again. In-flight
// paths captured from an old tree stay intact — BuildTreeBFS never
// aliases old storage.
func (cs *CompactSystem) invalidateTrees() {
	for p := range cs.trees {
		cs.trees[p] = nil
	}
}

// FailNode removes a node: the overlay repairs every survivor in ring
// order through the index-based maintenance ops (the single FailNode
// semantic, shared with the legacy plane since the traffic-plane port),
// and the node's ring position is spliced out. Its slab row is retained
// (see slabOf); ringOfSlab marks it departed and every higher ring
// position shifts down by one.
func (cs *CompactSystem) FailNode(failed id.ID) error {
	k, ok := cs.Overlay.IndexOf(failed)
	if !ok {
		return fmt.Errorf("core: unknown node %s", failed.Short())
	}
	if cs.Size() <= 4 {
		return fmt.Errorf("core: refusing to shrink overlay below 4 nodes")
	}
	slab := cs.slabOf[k]
	if err := cs.Overlay.ApplyDeparture(failed, cs.rng); err != nil {
		return err
	}
	cs.slabOf = append(cs.slabOf[:k], cs.slabOf[k+1:]...)
	cs.ringOfSlab[slab] = overlay.NoIndex
	for p, r := range cs.ringOfSlab {
		if r != overlay.NoIndex && r > k {
			cs.ringOfSlab[p] = r - 1
		}
	}
	if cs.departedSlab == nil {
		cs.departedSlab = make(map[id.ID]uint32)
	}
	cs.departedSlab[failed] = slab
	cs.invalidateTrees()
	return nil
}

// JoinNode admits a new CA-certified node at the given router: fresh
// keys and identifier from the shared rng (as in the legacy join),
// slab rows appended, every existing node patched in ring order, the
// newcomer's tables filled from scratch, and — when probing is live —
// its probe loop scheduled, drawing the same delay the legacy admit
// draws.
func (cs *CompactSystem) JoinNode(router topology.RouterID) (id.ID, error) {
	keys := sigcrypto.KeyPairFromRand(cs.rng)
	cert, err := cs.CA.Issue(hostAddr(router), keys.Public)
	if err != nil {
		return id.ID{}, err
	}
	k, err := cs.Overlay.ApplyJoin(cert.NodeID, cs.rng)
	if err != nil {
		return id.ID{}, err
	}
	slab := uint32(len(cs.routers))
	cs.routers = append(cs.routers, router)
	cs.pubKeys = append(cs.pubKeys, keys.Public...)
	cs.privKeys = append(cs.privKeys, keys.Private...)
	cs.certSigs = append(cs.certSigs, cert.Signature...)
	cs.behaviorBits = append(cs.behaviorBits, 0)
	cs.msgSeq = append(cs.msgSeq, 0)
	cs.fwdSeq = append(cs.fwdSeq, 0)
	cs.trees = append(cs.trees, nil)
	cs.sweeps = append(cs.sweeps, nil)
	cs.slabOf = append(cs.slabOf, 0)
	copy(cs.slabOf[k+1:], cs.slabOf[k:])
	cs.slabOf[k] = slab
	for p, r := range cs.ringOfSlab {
		if r != overlay.NoIndex && r >= k {
			cs.ringOfSlab[p] = r + 1
		}
	}
	cs.ringOfSlab = append(cs.ringOfSlab, k)
	delete(cs.departedSlab, cert.NodeID)
	cs.invalidateTrees()
	if cs.probing {
		if err := cs.scheduleProbe(slab); err != nil {
			return id.ID{}, err
		}
	}
	return cert.NodeID, nil
}

// AliveIDs returns the current membership in legacy Order: alive slabs
// ascending, which is build order with departures spliced out and
// joiners appended — exactly what System.Order holds after the same
// churn schedule. Experiment drivers use it to pick traffic endpoints
// identically on both planes.
func (cs *CompactSystem) AliveIDs() []id.ID {
	out := make([]id.ID, 0, cs.Size())
	for _, r := range cs.ringOfSlab {
		if r != overlay.NoIndex {
			out = append(out, cs.Overlay.ID(r))
		}
	}
	return out
}

// Footprint returns the resident bytes of the compact core: overlay
// state, identity slabs, and the traffic plane's per-slab state (tree
// cache and sweep-closure headers included; cached tree contents are
// derived data and excluded, like the legacy plane's). Topology and CA
// registry are shared with any coexisting legacy system and excluded.
func (cs *CompactSystem) Footprint() int64 {
	total := cs.Overlay.Footprint()
	total += int64(len(cs.routers)) * 4
	total += int64(len(cs.slabOf)) * 4
	total += int64(len(cs.ringOfSlab)) * 4
	total += int64(len(cs.behaviorBits))
	total += int64(len(cs.pubKeys) + len(cs.privKeys) + len(cs.certSigs))
	total += int64(len(cs.msgSeq)+len(cs.fwdSeq)) * 8
	total += int64(len(cs.trees)+len(cs.sweeps)) * 8
	return total
}
