package core

import (
	"crypto/ed25519"
	"fmt"

	"concilium/internal/id"
	"concilium/internal/overlay"
	"concilium/internal/parexec"
	"concilium/internal/sigcrypto"
	"concilium/internal/stats"
	"concilium/internal/tomography"
	"concilium/internal/topology"
)

// CompactSystem is the memory-compact deployment core behind the scale
// frontier: the exact generative process of BuildSystem — same serial
// rng prefix, same per-node substreams, same constrained fills — stored
// flat instead of pointer-per-node. Nodes are uint32 positions in the
// sorted ring; certificates and keys live in three shared byte slabs
// (32 B public key, 64 B private key, 64 B certificate signature per
// node) with accessors returning views; tomography trees, being a pure
// deterministic function of the immutable graph and each node's routing
// peers, are not stored at all — TreeOf materializes one on demand.
//
// The legacy System remains the protocol engine (probing, blame,
// adversary campaigns); CompactSystem is what lets the build itself
// reach N=1M in commodity RAM.
type CompactSystem struct {
	Config  SystemConfig
	Topo    *topology.Graph
	CA      *sigcrypto.Authority
	Overlay *overlay.Compact

	// slabOf maps ring position to slab position. Slabs are append-only
	// and build-ordered: the node built p-th (the legacy Order position)
	// owns slab p, and joiners append. Departures splice slabOf but keep
	// the slab row — churn at compact scale leaks 165 B per departure,
	// which is the right trade against compacting four slabs per event.
	slabOf []uint32

	routers      []topology.RouterID // by slab position
	pubKeys      []byte              // ed25519.PublicKeySize per slab row
	privKeys     []byte              // ed25519.PrivateKeySize per slab row
	certSigs     []byte              // ed25519.SignatureSize per slab row
	behaviorBits []byte              // bit0 DropsMessages, bit1 InvertsProbes

	rng stats.Rand
}

// BuildCompactSystem constructs the compact deployment deterministically
// from cfg and rng. The shared-rng prefix (topology, host permutation,
// CA keypair, SeedFrom) and the per-node substream protocol are
// byte-for-byte those of BuildSystem, so at equal seeds the two builds
// decide identical identifiers, keys, certificates, and routing tables
// — the cross-check test in compact_test.go holds them together. Like
// BuildSystem, the result is identical for every Workers value.
func BuildCompactSystem(cfg SystemConfig, rng stats.Rand) (*CompactSystem, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	graph, err := topology.Generate(cfg.Topology, rng)
	if err != nil {
		return nil, err
	}
	hosts := graph.EndHosts()
	nOverlay := int(cfg.OverlayFraction * float64(len(hosts)))
	if nOverlay < 4 {
		return nil, fmt.Errorf("core: only %d overlay nodes from %d hosts; increase scale", nOverlay, len(hosts))
	}
	perm := make([]int, len(hosts))
	for i := range perm {
		perm[i] = i
	}
	for i := len(perm) - 1; i > 0; i-- {
		j := rng.IntN(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	ca := sigcrypto.NewAuthority(sigcrypto.KeyPairFromRand(rng), rng)
	buildSeed := parexec.SeedFrom(rng)

	// Phase 1: keygen and issuance into flat slabs, fanned out. Slot p
	// writes only its own slab rows, so workers never contend.
	n := nOverlay
	ids := make([]id.ID, n)
	cs := &CompactSystem{
		Config:       cfg,
		Topo:         graph,
		CA:           ca,
		routers:      make([]topology.RouterID, n),
		pubKeys:      make([]byte, n*ed25519.PublicKeySize),
		privKeys:     make([]byte, n*ed25519.PrivateKeySize),
		certSigs:     make([]byte, n*ed25519.SignatureSize),
		behaviorBits: make([]byte, n),
		rng:          rng,
	}
	err = parexec.ForEachWorker(cfg.Workers, n, "compact-keygen", func(_, p int) error {
		stream := buildSeed.Stream(2 * uint64(p))
		keys := sigcrypto.KeyPairFromRand(stream)
		router := hosts[perm[p]]
		cert, err := ca.IssueFor(hostAddr(router), id.Random(stream), keys.Public)
		if err != nil {
			return err
		}
		ids[p] = cert.NodeID
		cs.routers[p] = router
		copy(cs.pubKeys[p*ed25519.PublicKeySize:], keys.Public)
		copy(cs.privKeys[p*ed25519.PrivateKeySize:], keys.Private)
		copy(cs.certSigs[p*ed25519.SignatureSize:], cert.Signature)
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Serial claim in build order. Collision redraws (~2^-128 per pair)
	// come from the colliding node's own substream, re-derived and
	// advanced past the six keygen/identifier draws phase 1 consumed —
	// the same stream position the legacy build redraws from.
	const phase1Draws = ed25519.SeedSize/8 + id.Bytes/8
	for p := 0; p < n; p++ {
		var stream stats.Rand
		for ca.Claim(ids[p]) != nil {
			if stream == nil {
				s := buildSeed.Stream(2 * uint64(p))
				for skip := 0; skip < phase1Draws; skip++ {
					s.Uint64()
				}
				stream = s
			}
			pub := ed25519.PublicKey(cs.pubKeys[p*ed25519.PublicKeySize : (p+1)*ed25519.PublicKeySize])
			cert, err := ca.IssueFor(hostAddr(cs.routers[p]), id.Random(stream), pub)
			if err != nil {
				return nil, err
			}
			ids[p] = cert.NodeID
			copy(cs.certSigs[p*ed25519.SignatureSize:], cert.Signature)
		}
	}

	cs.Overlay, err = overlay.NewCompact(ids, overlay.DefaultLeafSetPerSide)
	if err != nil {
		return nil, err
	}
	cs.slabOf = make([]uint32, n)
	permRing := make([]uint32, n)
	for p, x := range ids {
		i, ok := cs.Overlay.IndexOf(x)
		if !ok {
			return nil, fmt.Errorf("core: built identifier %s missing from ring", x.Short())
		}
		cs.slabOf[i] = uint32(p)
		permRing[p] = i
	}

	// Malicious marks follow build order, as in BuildSystem.
	nBad := int(cfg.MaliciousFraction * float64(n))
	for p := 0; p < nBad; p++ {
		cs.behaviorBits[p] = 3 // drops + inverts
	}

	// Phase 2: routing fills, fanned out. Node p's standard-table draws
	// come from Stream(2p+1), consumed in the legacy fill order (secure
	// first — no draws — then standard); each node writes only its own
	// table rows.
	err = parexec.ForEachWorker(cfg.Workers, n, "compact-routing", func(_, p int) error {
		cs.Overlay.FillNode(permRing[p], buildSeed.Stream(2*uint64(p)+1))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cs, nil
}

// Size returns the current overlay population.
func (cs *CompactSystem) Size() int { return cs.Overlay.Size() }

// NodeID returns the identifier at ring position i.
func (cs *CompactSystem) NodeID(i uint32) id.ID { return cs.Overlay.ID(i) }

// Router returns node i's attachment router.
func (cs *CompactSystem) Router(i uint32) topology.RouterID {
	return cs.routers[cs.slabOf[i]]
}

// Keys returns node i's key pair as views into the shared slabs; the
// returned slices must not be modified.
func (cs *CompactSystem) Keys(i uint32) sigcrypto.KeyPair {
	p := int(cs.slabOf[i])
	return sigcrypto.KeyPair{
		Public:  ed25519.PublicKey(cs.pubKeys[p*ed25519.PublicKeySize : (p+1)*ed25519.PublicKeySize]),
		Private: ed25519.PrivateKey(cs.privKeys[p*ed25519.PrivateKeySize : (p+1)*ed25519.PrivateKeySize]),
	}
}

// Cert reassembles node i's CA certificate from the slabs. The address
// is derived from the attachment router, exactly as issuance formatted
// it, so only the signature needs storage.
func (cs *CompactSystem) Cert(i uint32) sigcrypto.Certificate {
	p := int(cs.slabOf[i])
	return sigcrypto.Certificate{
		Addr:      hostAddr(cs.routers[p]),
		NodeID:    cs.Overlay.ID(i),
		PublicKey: ed25519.PublicKey(cs.pubKeys[p*ed25519.PublicKeySize : (p+1)*ed25519.PublicKeySize]),
		Signature: cs.certSigs[p*ed25519.SignatureSize : (p+1)*ed25519.SignatureSize],
	}
}

// Behavior returns node i's (mis)behavior marks.
func (cs *CompactSystem) Behavior(i uint32) Behavior {
	bits := cs.behaviorBits[cs.slabOf[i]]
	return Behavior{DropsMessages: bits&1 != 0, InvertsProbes: bits&2 != 0}
}

// TreeOf materializes node i's tomography tree: one BFS from its
// attachment router plus path extraction per routing peer. Trees are
// derived data — the build stores none, which is what removes the
// O(N·routers) phase from the scale frontier; callers that sweep many
// nodes should reuse scratch across calls.
func (cs *CompactSystem) TreeOf(i uint32, scratch *topology.BFSScratch) (*tomography.Tree, error) {
	if scratch == nil {
		scratch = new(topology.BFSScratch)
	}
	peers := cs.Overlay.AppendRoutingPeers(i, nil)
	leaves := make([]tomography.Leaf, 0, len(peers))
	for _, j := range peers {
		leaves = append(leaves, tomography.Leaf{Node: cs.Overlay.ID(j), Router: cs.Router(j)})
	}
	bfs, err := cs.Topo.BFSInto(scratch, cs.Router(i))
	if err != nil {
		return nil, err
	}
	return tomography.BuildTreeBFS(bfs, cs.NodeID(i), cs.Router(i), leaves)
}

// FailNode removes a node: the overlay repairs every survivor in ring
// order through the index-based maintenance ops, and the node's ring
// position is spliced out. Its slab row is retained (see slabOf).
func (cs *CompactSystem) FailNode(failed id.ID) error {
	if _, ok := cs.Overlay.IndexOf(failed); !ok {
		return fmt.Errorf("core: unknown node %s", failed.Short())
	}
	if cs.Size() <= 4 {
		return fmt.Errorf("core: refusing to shrink overlay below 4 nodes")
	}
	k, _ := cs.Overlay.IndexOf(failed)
	if err := cs.Overlay.ApplyDeparture(failed, cs.rng); err != nil {
		return err
	}
	cs.slabOf = append(cs.slabOf[:k], cs.slabOf[k+1:]...)
	return nil
}

// JoinNode admits a new CA-certified node at the given router: fresh
// keys and identifier from the shared rng (as in the legacy join),
// slab rows appended, every existing node patched in ring order, and
// the newcomer's tables filled from scratch.
func (cs *CompactSystem) JoinNode(router topology.RouterID) (id.ID, error) {
	keys := sigcrypto.KeyPairFromRand(cs.rng)
	cert, err := cs.CA.Issue(hostAddr(router), keys.Public)
	if err != nil {
		return id.ID{}, err
	}
	k, err := cs.Overlay.ApplyJoin(cert.NodeID, cs.rng)
	if err != nil {
		return id.ID{}, err
	}
	slab := uint32(len(cs.routers))
	cs.routers = append(cs.routers, router)
	cs.pubKeys = append(cs.pubKeys, keys.Public...)
	cs.privKeys = append(cs.privKeys, keys.Private...)
	cs.certSigs = append(cs.certSigs, cert.Signature...)
	cs.behaviorBits = append(cs.behaviorBits, 0)
	cs.slabOf = append(cs.slabOf, 0)
	copy(cs.slabOf[k+1:], cs.slabOf[k:])
	cs.slabOf[k] = slab
	return cert.NodeID, nil
}

// Footprint returns the resident bytes of the compact core: overlay
// state plus identity slabs. Topology and CA registry are shared with
// any coexisting legacy system and excluded.
func (cs *CompactSystem) Footprint() int64 {
	total := cs.Overlay.Footprint()
	total += int64(len(cs.routers)) * 4
	total += int64(len(cs.slabOf)) * 4
	total += int64(len(cs.behaviorBits))
	total += int64(len(cs.pubKeys) + len(cs.privKeys) + len(cs.certSigs))
	return total
}
