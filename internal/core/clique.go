package core

import (
	"concilium/internal/id"
)

// CliqueSuspector accumulates collusion suspicions as a union-find over
// node identifiers: co-signers of abusive accusation chains (rate-limit
// trips, duplicate floods, stale replays) are merged into one suspected
// clique. Group returns a canonical representative — the smallest
// identifier in the component — so the induced WitnessGrouping is a
// pure function of the merged pair set: the same suspicions yield the
// same grouping no matter in which order they were discovered.
type CliqueSuspector struct {
	// parent holds the union-find forest. Every identifier ever merged
	// has an entry (roots map to themselves), so membership doubles as
	// the "suspected" predicate; unknown identifiers are their own
	// singleton group.
	parent map[id.ID]id.ID
}

// NewCliqueSuspector creates an empty suspector.
func NewCliqueSuspector() *CliqueSuspector {
	return &CliqueSuspector{parent: make(map[id.ID]id.ID)}
}

func (c *CliqueSuspector) find(x id.ID) id.ID {
	p, ok := c.parent[x]
	if !ok || p == x {
		return x
	}
	root := c.find(p)
	c.parent[x] = root
	return root
}

// Suspect merges a and b into one suspected clique.
func (c *CliqueSuspector) Suspect(a, b id.ID) {
	if a == b {
		return
	}
	ra, rb := c.find(a), c.find(b)
	if ra == rb {
		return
	}
	// The smaller identifier stays root, which keeps the canonical
	// representative the component minimum regardless of merge order.
	// Fresh identifiers are their own roots, so giving both roots an
	// entry is what marks them (and their members) suspected.
	if id.Less(rb, ra) {
		ra, rb = rb, ra
	}
	c.parent[ra] = ra
	c.parent[rb] = ra
}

// SuspectAll merges every listed identifier into one clique.
func (c *CliqueSuspector) SuspectAll(ids []id.ID) {
	for i := 1; i < len(ids); i++ {
		c.Suspect(ids[0], ids[i])
	}
}

// Group returns x's canonical clique representative — itself when x is
// not suspected of anything — directly usable as a WitnessGrouping.
func (c *CliqueSuspector) Group(x id.ID) id.ID { return c.find(x) }

// Suspected reports whether x belongs to a non-trivial suspected
// clique.
func (c *CliqueSuspector) Suspected(x id.ID) bool {
	_, ok := c.parent[x]
	return ok
}

// SuspectedCount returns how many identifiers sit in a non-trivial
// suspected clique.
func (c *CliqueSuspector) SuspectedCount() int { return len(c.parent) }
