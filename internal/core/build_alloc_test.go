package core

import (
	"math/rand/v2"
	"testing"

	"concilium/internal/topology"
)

// buildAllocBudgetPerNode is the per-overlay-node allocation ceiling for
// BuildSystem. The parallel build costs ~69 allocs per node (keypair,
// certificate, routing tables, BFS tree — the structures that must
// escape into the System), measured stable from the 42-node test
// topology up to 20k-node scale runs. The budget leaves slack for
// runtime noise; if a change pushes past it, a per-node temporary crept
// into the build loops (the pooled BFS scratch, peer buffers, or bulk
// leaf-set fill stopped being reused).
const buildAllocBudgetPerNode = 90

// TestBuildSystemAllocBudget locks in the build path's allocation
// profile: constructing a full system must stay within the per-node
// budget. Run at workers=1 so AllocsPerRun attributes every allocation
// to the calling goroutine deterministically.
func TestBuildSystemAllocBudget(t *testing.T) {
	cfg := DefaultSystemConfig()
	cfg.Topology = topology.TestConfig()
	cfg.OverlayFraction = 0.5
	cfg.Workers = 1
	var nodes int
	n := testing.AllocsPerRun(10, func() {
		rng := rand.New(rand.NewPCG(7, 11))
		s, err := BuildSystem(cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		nodes = len(s.Order)
	})
	perNode := n / float64(nodes)
	if perNode > buildAllocBudgetPerNode {
		t.Errorf("BuildSystem allocates %.1f/node (%d nodes), budget %d",
			perNode, nodes, buildAllocBudgetPerNode)
	}
}
