package core

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"concilium/internal/tomography"
	"concilium/internal/topology"
)

// TestChurnTreeReuseMatchesFromScratch drives churn across the chaos
// campaign seeds and verifies the incremental rebuild path — cached
// per-router BFS plus BuildTreeBFS — leaves every node's tomography
// tree byte-identical to a from-scratch BuildTree over the same peers:
// same leaf order, same link sets, and identical PathTo results link
// for link.
func TestChurnTreeReuseMatchesFromScratch(t *testing.T) {
	t.Parallel()
	for _, seed := range []uint64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			cfg := DefaultSystemConfig()
			cfg.Topology = topology.TestConfig()
			cfg.OverlayFraction = 0.5
			s, err := BuildSystem(cfg, rand.New(rand.NewPCG(seed, seed+1)))
			if err != nil {
				t.Fatal(err)
			}
			churn := rand.New(rand.NewPCG(seed+2, seed+3))
			hosts := s.Topo.EndHosts()
			for round := 0; round < 4; round++ {
				if len(s.Order) > 6 {
					victim := s.Order[churn.IntN(len(s.Order))]
					if err := s.FailNode(victim); err != nil {
						t.Fatal(err)
					}
				}
				if _, err := s.JoinNode(hosts[churn.IntN(len(hosts))]); err != nil {
					t.Fatal(err)
				}
				verifyTreesMatchScratch(t, s)
			}
		})
	}
}

// verifyTreesMatchScratch compares every node's live tree against a
// from-scratch BuildTree over the node's current routing peers.
func verifyTreesMatchScratch(t *testing.T, s *System) {
	t.Helper()
	for _, nid := range s.Order {
		node := s.Nodes[nid]
		peers := node.Routing.RoutingPeers()
		leaves := make([]tomography.Leaf, 0, len(peers))
		for _, p := range peers {
			pn, ok := s.Nodes[p]
			if !ok {
				continue
			}
			leaves = append(leaves, tomography.Leaf{Node: p, Router: pn.Router})
		}
		fresh, err := tomography.BuildTree(s.Topo, nid, node.Router, leaves)
		if err != nil {
			t.Fatal(err)
		}
		live := node.Tree
		if len(live.Leaves) != len(fresh.Leaves) {
			t.Fatalf("node %s: %d leaves live, %d from scratch", nid.Short(), len(live.Leaves), len(fresh.Leaves))
		}
		for i := range fresh.Leaves {
			if live.Leaves[i].Node != fresh.Leaves[i].Node || live.Leaves[i].Router != fresh.Leaves[i].Router {
				t.Fatalf("node %s leaf %d: %s live, %s from scratch",
					nid.Short(), i, live.Leaves[i].Node.Short(), fresh.Leaves[i].Node.Short())
			}
			wantPath, ok := fresh.PathTo(fresh.Leaves[i].Node)
			if !ok {
				t.Fatalf("scratch tree lost leaf %s", fresh.Leaves[i].Node.Short())
			}
			gotPath, ok := live.PathTo(fresh.Leaves[i].Node)
			if !ok {
				t.Fatalf("live tree lost leaf %s", fresh.Leaves[i].Node.Short())
			}
			if len(gotPath) != len(wantPath) {
				t.Fatalf("node %s → %s: path length %d live, %d from scratch",
					nid.Short(), fresh.Leaves[i].Node.Short(), len(gotPath), len(wantPath))
			}
			for k := range wantPath {
				if gotPath[k] != wantPath[k] {
					t.Fatalf("node %s → %s: link %d is %d live, %d from scratch",
						nid.Short(), fresh.Leaves[i].Node.Short(), k, gotPath[k], wantPath[k])
				}
			}
		}
		liveLinks, freshLinks := live.Links(), fresh.Links()
		if len(liveLinks) != len(freshLinks) {
			t.Fatalf("node %s: %d links live, %d from scratch", nid.Short(), len(liveLinks), len(freshLinks))
		}
		for k := range freshLinks {
			if liveLinks[k] != freshLinks[k] {
				t.Fatalf("node %s: link[%d] = %d live, %d from scratch", nid.Short(), k, liveLinks[k], freshLinks[k])
			}
		}
	}
}
