package core

import (
	"crypto/ed25519"
	"errors"
	"math/rand/v2"
	"testing"
	"time"

	"concilium/internal/id"
	"concilium/internal/netsim"
	"concilium/internal/sigcrypto"
	"concilium/internal/tomography"
	"concilium/internal/topology"
)

// testIdentity is a keyed overlay member for protocol tests.
type testIdentity struct {
	id   id.ID
	keys sigcrypto.KeyPair
}

func newIdentities(n int, r *rand.Rand) ([]testIdentity, KeyDirectory) {
	ids := make([]testIdentity, n)
	dir := make(map[id.ID]ed25519.PublicKey, n)
	for i := range ids {
		ids[i] = testIdentity{id: id.Random(r), keys: sigcrypto.KeyPairFromRand(r)}
		dir[ids[i].id] = ids[i].keys.Public
	}
	return ids, func(x id.ID) (ed25519.PublicKey, bool) {
		k, ok := dir[x]
		return k, ok
	}
}

func TestCommitmentSignAndVerify(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(61, 67))
	ids, _ := newIdentities(3, r)
	c := NewCommitment(ids[1].keys, ids[0].id, ids[1].id, ids[2].id, 42, 1000)
	if err := c.Verify(ids[1].keys.Public); err != nil {
		t.Fatalf("valid commitment rejected: %v", err)
	}
	// Wrong key.
	if err := c.Verify(ids[0].keys.Public); err == nil {
		t.Error("commitment verified under wrong key")
	}
	// Tampered fields.
	for i, mutate := range []func(*Commitment){
		func(c *Commitment) { c.MsgID = 43 },
		func(c *Commitment) { c.Dest = ids[0].id },
		func(c *Commitment) { c.At = 2000 },
		func(c *Commitment) { c.From = ids[2].id },
	} {
		bad := c
		mutate(&bad)
		if err := bad.Verify(ids[1].keys.Public); err == nil {
			t.Errorf("tampered commitment %d accepted", i)
		}
	}
}

// buildGuiltyResult constructs a blame result with no exculpatory
// evidence: full blame on the judged node.
func buildGuiltyResult(t *testing.T, judged id.ID, at netsim.Time) BlameResult {
	t.Helper()
	eng, err := NewBlameEngine(tomography.NewArchive(), DefaultBlameConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Blame(judged, []topology.LinkID{1, 2}, at)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Guilty {
		t.Fatal("expected guilty result")
	}
	return res
}

func TestAccusationLifecycle(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(71, 73))
	ids, keys := newIdentities(3, r)
	accuser, accused, dest := ids[0], ids[1], ids[2]

	res := buildGuiltyResult(t, accused.id, 5000)
	commit := NewCommitment(accused.keys, accuser.id, accused.id, dest.id, 42, 4900)
	acc, err := NewAccusation(accuser.keys, accuser.id, res, 42, []topology.LinkID{1, 2}, commit)
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.Verify(keys, 0.4); err != nil {
		t.Fatalf("valid accusation rejected: %v", err)
	}

	// Forged blame value.
	forged := acc
	forged.Blame = 0.99
	forged.Signature = accuser.keys.Sign([]byte("resign")) // wrong anyway
	if err := forged.Verify(keys, 0.4); err == nil {
		t.Error("tampered accusation accepted")
	}

	// Evidence that does not support the blame: re-sign with mismatched
	// blame and check the recomputation catches it.
	mismatched := acc
	mismatched.Blame = 0.5
	mismatched.Signature = accuser.keys.Sign(mismatched.payload())
	if err := mismatched.Verify(keys, 0.4); !errors.Is(err, ErrBlameMismatch) {
		t.Errorf("blame mismatch not caught: %v", err)
	}

	// Below-threshold accusations are rejected by verifiers with higher
	// thresholds.
	if err := acc.Verify(keys, 1.0+1e-9); err == nil {
		t.Error("threshold not enforced")
	}
}

func TestAccusationRequiresCommitment(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(81, 83))
	ids, keys := newIdentities(4, r)
	accuser, accused, other, dest := ids[0], ids[1], ids[2], ids[3]
	res := buildGuiltyResult(t, accused.id, 5000)

	// Commitment from the wrong node: rejected at construction.
	wrongVia := NewCommitment(other.keys, accuser.id, other.id, dest.id, 42, 4900)
	if _, err := NewAccusation(accuser.keys, accuser.id, res, 42, nil, wrongVia); !errors.Is(err, ErrCommitmentMismatch) {
		t.Errorf("wrong-via commitment: %v", err)
	}
	// Commitment for a different message: rejected at construction.
	wrongMsg := NewCommitment(accused.keys, accuser.id, accused.id, dest.id, 7, 4900)
	if _, err := NewAccusation(accuser.keys, accuser.id, res, 42, nil, wrongMsg); !errors.Is(err, ErrCommitmentMismatch) {
		t.Errorf("wrong-message commitment: %v", err)
	}
	// A commitment forged by the accuser itself (spurious accusation,
	// §3.6): signature check under the accused's key fails.
	forged := NewCommitment(accuser.keys, accuser.id, accused.id, dest.id, 42, 4900)
	acc, err := NewAccusation(accuser.keys, accuser.id, res, 42, nil, forged)
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.Verify(keys, 0.4); !errors.Is(err, ErrBadCommitmentSignature) {
		t.Errorf("forged commitment: %v", err)
	}
	// Non-guilty results cannot become accusations.
	innocent := res
	innocent.Guilty = false
	good := NewCommitment(accused.keys, accuser.id, accused.id, dest.id, 42, 4900)
	if _, err := NewAccusation(accuser.keys, accuser.id, innocent, 42, nil, good); err == nil {
		t.Error("non-guilty accusation built")
	}
}

// buildChain constructs the paper's A→B→C→D scenario: D dropped the
// message, so A blames B, B blames C, C blames D, and revision walks the
// blame down to D.
func buildChain(t *testing.T, ids []testIdentity) []Accusation {
	t.Helper()
	const msgID = 99
	dest := ids[len(ids)-1].id
	var links []Accusation
	for i := 0; i+1 < len(ids); i++ {
		accuser, accused := ids[i], ids[i+1]
		res := buildGuiltyResult(t, accused.id, 5000)
		commit := NewCommitment(accused.keys, accuser.id, accused.id, dest, msgID, 4900)
		acc, err := NewAccusation(accuser.keys, accuser.id, res, msgID, []topology.LinkID{1, 2}, commit)
		if err != nil {
			t.Fatal(err)
		}
		links = append(links, acc)
	}
	return links
}

func TestRevisionChain(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(91, 93))
	ids, keys := newIdentities(4, r) // A, B, C, D
	links := buildChain(t, ids)

	chain, err := NewRevisionChain(links)
	if err != nil {
		t.Fatal(err)
	}
	if err := chain.Verify(keys, 0.4); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
	if got := chain.Culprit(); got != ids[3].id {
		t.Errorf("culprit = %s, want D", got.Short())
	}
	ex := chain.Exonerated()
	if len(ex) != 2 || ex[0] != ids[1].id || ex[1] != ids[2].id {
		t.Errorf("exonerated = %v, want [B C]", ex)
	}
}

func TestRevisionChainExtend(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(101, 103))
	ids, keys := newIdentities(4, r)
	links := buildChain(t, ids)

	// Start with only A's accusation against B; B rebuts by extending
	// with its own verdict against C, then C's against D (§3.5).
	chain, err := NewRevisionChain(links[:1])
	if err != nil {
		t.Fatal(err)
	}
	if chain.Culprit() != ids[1].id {
		t.Fatal("initial culprit should be B")
	}
	chain, err = chain.Extend(links[1])
	if err != nil {
		t.Fatal(err)
	}
	chain, err = chain.Extend(links[2])
	if err != nil {
		t.Fatal(err)
	}
	if chain.Culprit() != ids[3].id {
		t.Errorf("culprit after revision = %s, want D", chain.Culprit().Short())
	}
	if err := chain.Verify(keys, 0.4); err != nil {
		t.Fatalf("extended chain invalid: %v", err)
	}
	// Extending with an unrelated accusation breaks the chain.
	unrelated := links[0]
	if _, err := chain.Extend(unrelated); !errors.Is(err, ErrBrokenChain) {
		t.Errorf("disconnected extension: %v", err)
	}
}

func TestRevisionChainValidation(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(111, 113))
	ids, _ := newIdentities(4, r)
	links := buildChain(t, ids)

	if _, err := NewRevisionChain(nil); err == nil {
		t.Error("empty chain accepted")
	}
	// Out-of-order links do not connect.
	if _, err := NewRevisionChain([]Accusation{links[1], links[0]}); !errors.Is(err, ErrBrokenChain) {
		t.Errorf("reversed chain: %v", err)
	}
	// Different message IDs break the chain even if identities connect.
	altered := links[1]
	altered.MsgID = 12345
	if _, err := NewRevisionChain([]Accusation{links[0], altered}); !errors.Is(err, ErrBrokenChain) {
		t.Errorf("cross-message chain: %v", err)
	}
}

func TestRevisionChainVerifyCatchesBadLink(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(121, 123))
	ids, keys := newIdentities(4, r)
	links := buildChain(t, ids)
	// Corrupt the middle link's signature.
	links[1].Signature[0] ^= 0xff
	chain, err := NewRevisionChain(links)
	if err != nil {
		t.Fatal(err)
	}
	if err := chain.Verify(keys, 0.4); err == nil {
		t.Error("chain with corrupt link verified")
	}
}

func TestSnapshotSignAndValidate(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(131, 137))
	ids, keys := newIdentities(4, r)
	prober := ids[0]
	now := netsim.Time(0).Add(10 * time.Minute)

	entries := []AdvertEntry{
		{Peer: ids[1].id, Freshness: sigcrypto.NewTimestamp(ids[1].keys, ids[1].id, int64(now.Add(-30*time.Second)))},
		{Peer: ids[2].id, Freshness: sigcrypto.NewTimestamp(ids[2].keys, ids[2].id, int64(now.Add(-45*time.Second)))},
	}
	snap := &Snapshot{
		Prober: prober.id,
		At:     now,
		Observations: []tomography.LinkObservation{
			{Link: 1, Up: true}, {Link: 2, Up: false},
		},
		Entries:     entries,
		LeafSpacing: 1e30,
	}
	snap.Sign(prober.keys)

	v := &SnapshotValidator{
		Keys:             keys,
		MaxEntryAge:      2 * time.Minute,
		JumpTest:         DensityTest{Gamma: 1.2},
		LocalOccupancy:   2,
		LeafGamma:        2,
		LocalLeafSpacing: 1e30,
	}
	if err := v.Validate(snap); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}

	// Archive ingestion.
	arch := tomography.NewArchive()
	if err := v.Ingest(arch, snap); err != nil {
		t.Fatal(err)
	}
	if got := arch.InWindow(2, 0, now.Add(time.Hour), nil); len(got) != 1 || got[0].Up {
		t.Errorf("ingested observation wrong: %+v", got)
	}
}

func TestSnapshotValidatorRejections(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(141, 143))
	ids, keys := newIdentities(4, r)
	prober := ids[0]
	now := netsim.Time(0).Add(10 * time.Minute)

	freshEntry := func(who testIdentity, at netsim.Time) AdvertEntry {
		return AdvertEntry{Peer: who.id, Freshness: sigcrypto.NewTimestamp(who.keys, who.id, int64(at))}
	}
	base := func() *Snapshot {
		s := &Snapshot{
			Prober:      prober.id,
			At:          now,
			Entries:     []AdvertEntry{freshEntry(ids[1], now.Add(-time.Minute)), freshEntry(ids[2], now.Add(-time.Minute))},
			LeafSpacing: 1e30,
		}
		s.Sign(prober.keys)
		return s
	}
	v := &SnapshotValidator{
		Keys:             keys,
		MaxEntryAge:      2 * time.Minute,
		JumpTest:         DensityTest{Gamma: 1.2},
		LocalOccupancy:   2,
		LeafGamma:        2,
		LocalLeafSpacing: 1e30,
	}

	// Unsigned / tampered snapshot.
	s := base()
	s.LeafSpacing = 5
	if err := v.Validate(s); !errors.Is(err, ErrBadSnapshotSignature) {
		t.Errorf("tampered snapshot: %v", err)
	}

	// Stale entry (inflation attack with an old timestamp, §3.1).
	s = base()
	s.Entries[0] = freshEntry(ids[1], now.Add(-time.Hour))
	s.Sign(prober.keys)
	if err := v.Validate(s); !errors.Is(err, ErrStaleEntry) {
		t.Errorf("stale entry: %v", err)
	}

	// Future-dated entry.
	s = base()
	s.Entries[0] = freshEntry(ids[1], now.Add(time.Minute))
	s.Sign(prober.keys)
	if err := v.Validate(s); !errors.Is(err, ErrFutureEntry) {
		t.Errorf("future entry: %v", err)
	}

	// Stolen timestamp: ids[1]'s timestamp attached to ids[2]'s entry.
	s = base()
	ts := sigcrypto.NewTimestamp(ids[1].keys, ids[1].id, int64(now.Add(-time.Minute)))
	s.Entries[1] = AdvertEntry{Peer: ids[2].id, Freshness: ts}
	s.Sign(prober.keys)
	if err := v.Validate(s); !errors.Is(err, ErrBadEntrySignature) {
		t.Errorf("stolen timestamp: %v", err)
	}

	// Density failure: advertising 2 entries while local has 10.
	sparse := &SnapshotValidator{
		Keys: keys, MaxEntryAge: 2 * time.Minute,
		JumpTest: DensityTest{Gamma: 1.2}, LocalOccupancy: 10,
	}
	s = base()
	if err := sparse.Validate(s); !errors.Is(err, ErrTableTooSparse) {
		t.Errorf("sparse table: %v", err)
	}

	// Leaf-set density failure: advertised spacing far wider than local.
	leafy := &SnapshotValidator{
		Keys: keys, MaxEntryAge: 2 * time.Minute,
		JumpTest: DensityTest{Gamma: 1.2}, LocalOccupancy: 2,
		LeafGamma: 1.5, LocalLeafSpacing: 1e29,
	}
	s = base() // LeafSpacing 1e30 > 1.5 * 1e29
	if err := leafy.Validate(s); !errors.Is(err, ErrLeafSetTooSparse) {
		t.Errorf("sparse leaf set: %v", err)
	}

	// Unknown signer.
	s = base()
	s.Prober = id.Random(r)
	s.Sign(prober.keys)
	if err := v.Validate(s); !errors.Is(err, ErrUnknownSigner) {
		t.Errorf("unknown signer: %v", err)
	}
	// Invalid ingest never archives.
	arch := tomography.NewArchive()
	if err := v.Ingest(arch, s); err == nil {
		t.Error("invalid snapshot ingested")
	}
	if arch.Size() != 0 {
		t.Error("archive polluted by invalid snapshot")
	}
}
