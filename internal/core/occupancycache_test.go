package core

import (
	"reflect"
	"sync"
	"testing"
)

// TestDistributionCacheEquivalence pins the memoization contract: a
// cached Distribution(n) must be indistinguishable from a fresh,
// uncached construction, and repeated calls must share one value.
func TestDistributionCacheEquivalence(t *testing.T) {
	ResetOccupancyCaches()
	t.Cleanup(ResetOccupancyCaches)
	m := DefaultOccupancyModel()

	for _, n := range []int{2, 64, 1131, 4096} {
		cached, err := m.Distribution(n)
		if err != nil {
			t.Fatalf("Distribution(%d): %v", n, err)
		}
		fresh, err := m.buildDistribution(n)
		if err != nil {
			t.Fatalf("buildDistribution(%d): %v", n, err)
		}
		if !reflect.DeepEqual(cached, fresh) {
			t.Errorf("cached Distribution(%d) differs from fresh construction", n)
		}
		if !reflect.DeepEqual(cached.ExactPMF(), fresh.ExactPMF()) {
			t.Errorf("cached Distribution(%d) PMF differs from fresh construction", n)
		}
		again, err := m.Distribution(n)
		if err != nil {
			t.Fatalf("Distribution(%d) second call: %v", n, err)
		}
		if again != cached {
			t.Errorf("Distribution(%d) did not return the shared cached value", n)
		}
	}
	if dists, _ := occupancyCacheSizes(); dists != 4 {
		t.Errorf("distribution cache holds %d entries, want 4", dists)
	}
}

func TestNormalApproxCacheEquivalence(t *testing.T) {
	ResetOccupancyCaches()
	t.Cleanup(ResetOccupancyCaches)
	m := DefaultOccupancyModel()

	for _, n := range []int{16, 1131} {
		cached, err := m.NormalApprox(n)
		if err != nil {
			t.Fatalf("NormalApprox(%d): %v", n, err)
		}
		fresh, err := m.buildDistribution(n)
		if err != nil {
			t.Fatalf("buildDistribution(%d): %v", n, err)
		}
		want, err := fresh.NormalApprox()
		if err != nil {
			t.Fatalf("fresh NormalApprox(%d): %v", n, err)
		}
		if cached != want {
			t.Errorf("NormalApprox(%d) = %+v via cache, %+v fresh", n, cached, want)
		}
	}
}

// TestDistributionCacheDistinguishesModels guards the cache key: two
// models with different table geometry must not share entries.
func TestDistributionCacheDistinguishesModels(t *testing.T) {
	ResetOccupancyCaches()
	t.Cleanup(ResetOccupancyCaches)
	a := OccupancyModel{L: 128, V: 16}
	b := OccupancyModel{L: 64, V: 16}

	da, err := a.Distribution(500)
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.Distribution(500)
	if err != nil {
		t.Fatal(err)
	}
	if da.N() == db.N() {
		t.Fatalf("models with different geometry returned same-size distributions (%d slots)", da.N())
	}
}

// TestDistributionCacheConcurrent hammers the cache from many
// goroutines; run under -race this checks the locking discipline, and
// the pointer-equality check verifies racing fills converge on one
// shared value per key.
func TestDistributionCacheConcurrent(t *testing.T) {
	ResetOccupancyCaches()
	t.Cleanup(ResetOccupancyCaches)
	m := DefaultOccupancyModel()
	ns := []int{32, 64, 128, 256, 512}

	const goroutines = 16
	results := make([][]any, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, n := range ns {
				pb, err := m.Distribution(n)
				if err != nil {
					t.Errorf("Distribution(%d): %v", n, err)
					return
				}
				results[g] = append(results[g], pb)
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range ns {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d got a different cached pointer for n=%d", g, ns[i])
			}
		}
	}
}
