package core

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"time"

	"concilium/internal/netsim"
	"concilium/internal/topology"
)

// The small-N equivalence lock for the compact traffic plane: built
// from the same seed, the legacy and compact systems must produce
// identical DeliveryReports, blame outcomes, verdict windows, and
// counters for identical traffic — including under interleaved and
// mid-flight churn. Every divergence between the planes that these
// tests would catch is a semantic bug, not noise: both sides are fully
// deterministic for a fixed seed.

// equivSystemConfig returns the traffic-equivalence deployment at one
// of two population scales (~48 and ~256 overlay nodes).
func equivSystemConfig(medium bool) SystemConfig {
	topo := topology.TestConfig()
	if medium {
		topo = topology.Config{
			TransitDomains:          3,
			RoutersPerTransitDomain: 8,
			TransitChordsPerRouter:  1,
			InterDomainLinks:        2,
			StubsPerTransitRouter:   3,
			MeanRoutersPerStub:      6,
			StubChordFraction:       0.3,
			StubMultihomeFraction:   0.2,
			HostsPerStubRouter:      1.2,
		}
	}
	return SystemConfig{
		Topology:          topo,
		OverlayFraction:   0.5,
		Blame:             DefaultBlameConfig(),
		Window:            DefaultWindowConfig(),
		MaxProbeTime:      2 * time.Minute,
		Failures:          netsim.DefaultFailureConfig(),
		MaliciousFraction: 0.1,
	}
}

// buildEquivPair builds the legacy and compact planes from identical
// seeds and asserts their membership views agree before any traffic.
func buildEquivPair(t *testing.T, cfg SystemConfig, seed uint64) (*System, *CompactSystem) {
	t.Helper()
	s, err := BuildSystem(cfg, rand.New(rand.NewPCG(seed, seed+1)))
	if err != nil {
		t.Fatal(err)
	}
	cs, err := BuildCompactSystem(cfg, rand.New(rand.NewPCG(seed, seed+1)))
	if err != nil {
		t.Fatal(err)
	}
	requireSameMembers(t, s, cs)
	return s, cs
}

func requireSameMembers(t *testing.T, s *System, cs *CompactSystem) {
	t.Helper()
	alive := cs.AliveIDs()
	if len(alive) != len(s.Order) {
		t.Fatalf("membership: legacy %d nodes, compact %d", len(s.Order), len(alive))
	}
	for i, nid := range s.Order {
		if alive[i] != nid {
			t.Fatalf("membership order diverges at %d: legacy %s, compact %s", i, nid.Short(), alive[i].Short())
		}
	}
}

func requireSameReports(t *testing.T, step int, l, c *DeliveryReport) {
	t.Helper()
	if l.MsgID != c.MsgID {
		t.Fatalf("step %d: msg id %d vs %d", step, l.MsgID, c.MsgID)
	}
	if len(l.Route) != len(c.Route) {
		t.Fatalf("step %d: route len %d vs %d", step, len(l.Route), len(c.Route))
	}
	for i := range l.Route {
		if l.Route[i] != c.Route[i] {
			t.Fatalf("step %d: route[%d] %s vs %s", step, i, l.Route[i].Short(), c.Route[i].Short())
		}
	}
	if l.Delivered != c.Delivered || l.AckReceived != c.AckReceived || l.Kind != c.Kind {
		t.Fatalf("step %d: outcome (%v,%v,%d) vs (%v,%v,%d)",
			step, l.Delivered, l.AckReceived, l.Kind, c.Delivered, c.AckReceived, c.Kind)
	}
	if l.DroppedBy != c.DroppedBy || l.BrokenLink != c.BrokenLink {
		t.Fatalf("step %d: fault point (%s,%v) vs (%s,%v)",
			step, l.DroppedBy.Short(), l.BrokenLink, c.DroppedBy.Short(), c.BrokenLink)
	}
	if l.ChainUnavailable != c.ChainUnavailable || l.Culprit != c.Culprit || l.NetworkBlamed != c.NetworkBlamed {
		t.Fatalf("step %d: attribution (%v,%s,%v) vs (%v,%s,%v)", step,
			l.ChainUnavailable, l.Culprit.Short(), l.NetworkBlamed,
			c.ChainUnavailable, c.Culprit.Short(), c.NetworkBlamed)
	}
	if len(l.Verdicts) != len(c.Verdicts) {
		t.Fatalf("step %d: %d verdicts vs %d", step, len(l.Verdicts), len(c.Verdicts))
	}
	for i := range l.Verdicts {
		if l.Verdicts[i] != c.Verdicts[i] {
			t.Fatalf("step %d: verdict[%d] %+v vs %+v", step, i, l.Verdicts[i], c.Verdicts[i])
		}
	}
	if (l.Chain == nil) != (c.Chain == nil) {
		t.Fatalf("step %d: chain presence %v vs %v", step, l.Chain != nil, c.Chain != nil)
	}
	if l.Chain != nil {
		if len(l.Chain.Links) != len(c.Chain.Links) {
			t.Fatalf("step %d: chain len %d vs %d", step, len(l.Chain.Links), len(c.Chain.Links))
		}
		for i := range l.Chain.Links {
			if l.Chain.Links[i].Signature == nil || c.Chain.Links[i].Signature == nil {
				t.Fatalf("step %d: unsigned chain link %d", step, i)
			}
		}
	}
}

// runTrafficEquivalence drives identical traffic (and optionally an
// identical churn schedule, with both scheduled and mid-flight events)
// through both planes and asserts report-for-report equality.
func runTrafficEquivalence(t *testing.T, seed uint64, medium, churn bool) {
	cfg := equivSystemConfig(medium)
	s, cs := buildEquivPair(t, cfg, seed)
	if err := s.StartFailures(); err != nil {
		t.Fatal(err)
	}
	if err := cs.StartFailures(); err != nil {
		t.Fatal(err)
	}
	if err := s.StartProbing(); err != nil {
		t.Fatal(err)
	}
	if err := cs.StartProbing(); err != nil {
		t.Fatal(err)
	}
	s.Run(5 * time.Minute)
	cs.Run(5 * time.Minute)

	hosts := s.Topo.EndHosts()
	pick := rand.New(rand.NewPCG(seed*3+1, 5))
	messages := 60
	if medium {
		messages = 30
	}
	for step := 0; step < messages; step++ {
		if churn && step%10 == 4 && len(s.Order) > 8 {
			// Mid-flight departure: scheduled a hair into the next send's
			// first latency advance, so the membership change races the
			// message on both planes identically.
			victim := s.Order[(step*13)%(len(s.Order)-1)+1]
			var errL, errC error
			if err := s.Sim.ScheduleAfter(time.Millisecond, func() { errL = s.FailNode(victim) }); err != nil {
				t.Fatal(err)
			}
			if err := cs.Sim.ScheduleAfter(time.Millisecond, func() { errC = cs.FailNode(victim) }); err != nil {
				t.Fatal(err)
			}
			defer func() {
				if errL != nil || errC != nil {
					t.Errorf("mid-flight FailNode: legacy %v, compact %v", errL, errC)
				}
			}()
		}
		if churn && step%10 == 8 {
			router := hosts[(step*37)%len(hosts)]
			jl, errL := s.JoinNode(router)
			jc, errC := cs.JoinNode(router)
			if (errL == nil) != (errC == nil) {
				t.Fatalf("step %d: join errors diverge: %v vs %v", step, errL, errC)
			}
			if errL == nil && jl != jc {
				t.Fatalf("step %d: joined ids diverge: %s vs %s", step, jl.Short(), jc.Short())
			}
			requireSameMembers(t, s, cs)
		}
		a, b := pick.IntN(len(s.Order)), pick.IntN(len(s.Order))
		if a == b {
			continue
		}
		src, dst := s.Order[a], s.Order[b]
		repL, errL := s.SendMessage(src, dst)
		repC, errC := cs.SendMessage(src, dst)
		if (errL == nil) != (errC == nil) {
			t.Fatalf("step %d: errors diverge: %v vs %v", step, errL, errC)
		}
		if errL != nil {
			if errL.Error() != errC.Error() {
				t.Fatalf("step %d: error text diverges: %q vs %q", step, errL, errC)
			}
			continue
		}
		requireSameReports(t, step, repL, repC)
		// Pacing between messages, as the sim loop does.
		s.Run(2 * time.Second)
		cs.Run(2 * time.Second)
	}

	requireSameMembers(t, s, cs)
	if s.Counters != cs.Counters {
		t.Errorf("counters diverge: legacy %+v, compact %+v", s.Counters, cs.Counters)
	}
	if s.Archive.Size() != cs.Archive.Size() {
		t.Errorf("archive size diverges: legacy %d, compact %d", s.Archive.Size(), cs.Archive.Size())
	}
	// Verdict-window parity for every current member, keyed by id on the
	// legacy plane and by slab on the compact one.
	for _, nid := range s.Order {
		i, ok := cs.Overlay.IndexOf(nid)
		if !ok {
			t.Fatalf("window parity: %s missing from compact ring", nid.Short())
		}
		if lg, cg := s.Window.GuiltyCount(nid), cs.Window.GuiltyCount(cs.slabOf[i]); lg != cg {
			t.Errorf("guilty count for %s: legacy %d, compact %d", nid.Short(), lg, cg)
		}
	}
}

func TestCompactTrafficEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		for _, medium := range []bool{false, true} {
			size := "n48"
			if medium {
				size = "n256"
			}
			t.Run(fmt.Sprintf("seed%d-%s", seed, size), func(t *testing.T) {
				runTrafficEquivalence(t, seed, medium, false)
			})
			t.Run(fmt.Sprintf("seed%d-%s-churn", seed, size), func(t *testing.T) {
				runTrafficEquivalence(t, seed, medium, true)
			})
		}
	}
}

// TestCompactBulkEquivalence locks SendBulk: batch outcomes, digest-ack
// clearing, and missing-message verdicts must match the legacy plane.
func TestCompactBulkEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cfg := equivSystemConfig(false)
			s, cs := buildEquivPair(t, cfg, seed)
			if err := s.StartProbing(); err != nil {
				t.Fatal(err)
			}
			if err := cs.StartProbing(); err != nil {
				t.Fatal(err)
			}
			s.Run(5 * time.Minute)
			cs.Run(5 * time.Minute)
			pick := rand.New(rand.NewPCG(seed+100, 3))
			for batch := 0; batch < 10; batch++ {
				a, b := pick.IntN(len(s.Order)), pick.IntN(len(s.Order))
				if a == b {
					continue
				}
				n := 5 + pick.IntN(20)
				repL, errL := s.SendBulk(s.Order[a], s.Order[b], n)
				repC, errC := cs.SendBulk(s.Order[a], s.Order[b], n)
				if (errL == nil) != (errC == nil) {
					t.Fatalf("batch %d: errors diverge: %v vs %v", batch, errL, errC)
				}
				if errL != nil {
					continue
				}
				if repL.Sent != repC.Sent || repL.Delivered != repC.Delivered ||
					repL.Cleared != repC.Cleared || repL.AckDigests != repC.AckDigests {
					t.Fatalf("batch %d: outcome %+v vs %+v", batch, repL, repC)
				}
				if len(repL.Missing) != len(repC.Missing) {
					t.Fatalf("batch %d: missing %v vs %v", batch, repL.Missing, repC.Missing)
				}
				for i := range repL.Missing {
					if repL.Missing[i] != repC.Missing[i] {
						t.Fatalf("batch %d: missing[%d] %d vs %d", batch, i, repL.Missing[i], repC.Missing[i])
					}
				}
				if len(repL.Verdicts) != len(repC.Verdicts) {
					t.Fatalf("batch %d: %d verdicts vs %d", batch, len(repL.Verdicts), len(repC.Verdicts))
				}
				for i := range repL.Verdicts {
					if repL.Verdicts[i] != repC.Verdicts[i] {
						t.Fatalf("batch %d: verdict[%d] %+v vs %+v", batch, i, repL.Verdicts[i], repC.Verdicts[i])
					}
				}
				s.Run(time.Second)
				cs.Run(time.Second)
			}
		})
	}
}

// TestCompactSignedSnapshotEquivalence runs the full §3.2 signed
// pipeline on both planes and checks the archives agree — which pins
// Compact.LeafMeanSpacing (the derived-leaf-set spacing) against the
// legacy LeafSet.MeanSpacing it replaces, since a spacing mismatch
// would change snapshot bytes and signatures.
func TestCompactSignedSnapshotEquivalence(t *testing.T) {
	cfg := equivSystemConfig(false)
	cfg.SignedSnapshots = true
	s, cs := buildEquivPair(t, cfg, 7)
	// Direct spacing parity for every member.
	for _, nid := range s.Order {
		i, ok := cs.Overlay.IndexOf(nid)
		if !ok {
			t.Fatalf("%s missing from compact ring", nid.Short())
		}
		want, errL := s.Nodes[nid].Routing.Leaf.MeanSpacing()
		got, errC := cs.Overlay.LeafMeanSpacing(i)
		if (errL == nil) != (errC == nil) {
			t.Fatalf("%s: spacing errors diverge: %v vs %v", nid.Short(), errL, errC)
		}
		if errL == nil && want != got {
			t.Fatalf("%s: mean spacing %g vs %g", nid.Short(), want, got)
		}
	}
	if err := s.StartProbing(); err != nil {
		t.Fatal(err)
	}
	if err := cs.StartProbing(); err != nil {
		t.Fatal(err)
	}
	s.Run(10 * time.Minute)
	cs.Run(10 * time.Minute)
	if s.Archive.Size() == 0 {
		t.Fatal("signed probing recorded nothing")
	}
	if s.Archive.Size() != cs.Archive.Size() {
		t.Errorf("archive size diverges: legacy %d, compact %d", s.Archive.Size(), cs.Archive.Size())
	}
}

// BenchmarkCompactSendMessageWarm measures the compact delivered-path
// cost on a warm system — the fig13 hot loop in isolation.
func BenchmarkCompactSendMessageWarm(b *testing.B) {
	cfg := SystemConfig{
		Topology:        topology.TestConfig(),
		OverlayFraction: 0.5,
		Blame:           DefaultBlameConfig(),
		Window:          DefaultWindowConfig(),
		MaxProbeTime:    2 * time.Minute,
		Failures:        netsim.DefaultFailureConfig(),
	}
	cs, err := BuildCompactSystem(cfg, rand.New(rand.NewPCG(7, 11)))
	if err != nil {
		b.Fatal(err)
	}
	if err := cs.StartProbing(); err != nil {
		b.Fatal(err)
	}
	cs.Run(10 * time.Minute)
	alive := cs.AliveIDs()
	src, dst := alive[0], alive[len(alive)/2]
	if _, err := cs.SendMessage(src, dst); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cs.SendMessage(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}
