package core

import (
	"math"
	"testing"
	"time"

	"concilium/internal/id"
	"concilium/internal/netsim"
	"concilium/internal/tomography"
	"concilium/internal/topology"
)

func newArchive(t *testing.T) *tomography.Archive {
	t.Helper()
	return tomography.NewArchive()
}

func record(t *testing.T, a *tomography.Archive, prober id.ID, at netsim.Time, link topology.LinkID, up bool) {
	t.Helper()
	if err := a.Record(prober, at, []tomography.LinkObservation{{Link: link, Up: up}}); err != nil {
		t.Fatal(err)
	}
}

func TestBlameConfigValidate(t *testing.T) {
	t.Parallel()
	if err := DefaultBlameConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []BlameConfig{
		{ProbeAccuracy: 0.4, Delta: time.Minute, GuiltyThreshold: 0.4},
		{ProbeAccuracy: 1.1, Delta: time.Minute, GuiltyThreshold: 0.4},
		{ProbeAccuracy: 0.9, Delta: 0, GuiltyThreshold: 0.4},
		{ProbeAccuracy: 0.9, Delta: time.Minute, GuiltyThreshold: 0},
		{ProbeAccuracy: 0.9, Delta: time.Minute, GuiltyThreshold: 1},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := NewBlameEngine(nil, DefaultBlameConfig()); err == nil {
		t.Error("nil archive accepted")
	}
}

func TestBlamePaperWorkedExample(t *testing.T) {
	t.Parallel()
	// §3.4's example: Q and R probe a link as down, S probes it up,
	// a = 0.8 → confidence the link was bad is 0.6, so blame is 0.4.
	arch := newArchive(t)
	q, r, s, judged := id.MustParse("00000000000000000000000000000001"),
		id.MustParse("00000000000000000000000000000002"),
		id.MustParse("00000000000000000000000000000003"),
		id.MustParse("00000000000000000000000000000004")
	at := netsim.Time(0).Add(1000 * time.Second)
	record(t, arch, q, at, 7, false)
	record(t, arch, r, at, 7, false)
	record(t, arch, s, at, 7, true)

	eng, err := NewBlameEngine(arch, BlameConfig{ProbeAccuracy: 0.8, Delta: time.Minute, GuiltyThreshold: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Blame(judged, []topology.LinkID{7}, at)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Blame-0.4) > 1e-12 {
		t.Errorf("blame = %v, want 0.4 (paper's worked example)", res.Blame)
	}
	if math.Abs(res.WorstLink.Confidence-0.6) > 1e-12 {
		t.Errorf("link confidence = %v, want 0.6", res.WorstLink.Confidence)
	}
	if res.WorstLink.Probes != 3 {
		t.Errorf("probes = %d, want 3", res.WorstLink.Probes)
	}
}

func TestBlameNoEvidenceMeansFaulty(t *testing.T) {
	t.Parallel()
	// With no probes covering the path, nothing suggests the network was
	// bad, so the forwarder takes full blame (§3.4).
	eng, err := NewBlameEngine(newArchive(t), DefaultBlameConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Blame(id.Zero, []topology.LinkID{1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blame != 1 {
		t.Errorf("blame = %v, want 1", res.Blame)
	}
	if !res.Guilty {
		t.Error("no-evidence blame should cross the 0.4 threshold")
	}
}

func TestBlameDegradedOnStaleEvidence(t *testing.T) {
	t.Parallel()
	// With an evidence floor, a blame call whose admissibility window
	// holds no probes (stale archive) returns a degraded verdict with
	// the widest uncertainty interval instead of convicting.
	arch := newArchive(t)
	judged := id.MustParse("0000000000000000000000000000000a")
	prober := id.MustParse("0000000000000000000000000000000b")
	sendAt := netsim.Time(0).Add(time.Hour)
	// The only probe is far older than Δ, so it is inadmissible.
	record(t, arch, prober, sendAt.Add(-30*time.Minute), 3, false)

	cfg := DefaultBlameConfig()
	cfg.MinProbesPerLink = 1
	eng, err := NewBlameEngine(arch, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Blame(judged, []topology.LinkID{3, 4}, sendAt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Error("stale evidence did not degrade the verdict")
	}
	if res.Guilty {
		t.Error("degraded verdict convicted on zero evidence")
	}
	if res.Blame != 1 || res.BlameLo != 0 {
		t.Errorf("interval = [%v, %v], want [0, 1]", res.BlameLo, res.Blame)
	}
	if res.TotalProbes != 0 {
		t.Errorf("TotalProbes = %d, want 0", res.TotalProbes)
	}
}

func TestBlameDegradedPartialEvidence(t *testing.T) {
	t.Parallel()
	// One link well probed (up), one link unprobed: the interval spans
	// from "unprobed link was broken" to "everything healthy"; the
	// conviction must not fire because the lower bound is 0.
	arch := newArchive(t)
	judged := id.MustParse("0000000000000000000000000000000c")
	prober := id.MustParse("0000000000000000000000000000000d")
	at := netsim.Time(0).Add(time.Hour)
	record(t, arch, prober, at, 8, true)

	cfg := DefaultBlameConfig()
	cfg.MinProbesPerLink = 1
	eng, err := NewBlameEngine(arch, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Blame(judged, []topology.LinkID{8, 9}, at)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.Guilty {
		t.Errorf("degraded=%v guilty=%v, want degraded non-guilty", res.Degraded, res.Guilty)
	}
	if math.Abs(res.Blame-0.9) > 1e-12 {
		t.Errorf("blame upper = %v, want 0.9", res.Blame)
	}
	if res.BlameLo != 0 {
		t.Errorf("blame lower = %v, want 0", res.BlameLo)
	}

	// Full evidence on both links keeps the verdict sharp: interval
	// collapses and the paper's conviction logic applies unchanged.
	record(t, arch, prober, at, 9, true)
	res, err = eng.Blame(judged, []topology.LinkID{8, 9}, at)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Error("fully probed span still degraded")
	}
	if res.BlameLo != res.Blame {
		t.Errorf("interval [%v, %v] did not collapse", res.BlameLo, res.Blame)
	}
	if !res.Guilty {
		t.Error("healthy path with full evidence did not convict the forwarder")
	}
}

func TestBlameDownLinkExoneratesForwarder(t *testing.T) {
	t.Parallel()
	arch := newArchive(t)
	prober := id.MustParse("0000000000000000000000000000000a")
	judged := id.MustParse("0000000000000000000000000000000b")
	const at = netsim.Time(0)
	// Two independent probers saw link 5 down.
	record(t, arch, prober, at, 5, false)
	record(t, arch, id.MustParse("0000000000000000000000000000000c"), at, 5, false)
	eng, err := NewBlameEngine(arch, DefaultBlameConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Blame(judged, []topology.LinkID{4, 5}, at)
	if err != nil {
		t.Fatal(err)
	}
	// Confidence link 5 bad = 0.9 → blame = 0.1 → innocent.
	if math.Abs(res.Blame-0.1) > 1e-12 {
		t.Errorf("blame = %v, want 0.1", res.Blame)
	}
	if res.Guilty {
		t.Error("forwarder behind a probed-down link found guilty")
	}
	if res.WorstLink.Link != 5 {
		t.Errorf("worst link = %d, want 5", res.WorstLink.Link)
	}
}

func TestBlameExcludesJudgedNodesOwnProbes(t *testing.T) {
	t.Parallel()
	// The judged node claims its own next-hop link was down; nobody else
	// probed it. Its self-serving probe must be ignored (§3.4).
	arch := newArchive(t)
	judged := id.MustParse("000000000000000000000000000000bb")
	record(t, arch, judged, 0, 9, false)
	eng, err := NewBlameEngine(arch, DefaultBlameConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Blame(judged, []topology.LinkID{9}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blame != 1 {
		t.Errorf("blame = %v; the node reduced its own blame with its own probe", res.Blame)
	}
}

func TestBlameRespectsDeltaWindow(t *testing.T) {
	t.Parallel()
	arch := newArchive(t)
	prober := id.MustParse("000000000000000000000000000000cc")
	judged := id.MustParse("000000000000000000000000000000dd")
	sendAt := netsim.Time(0).Add(10 * time.Minute)
	// A down observation 2 minutes before the send: outside Δ=60s.
	record(t, arch, prober, sendAt.Add(-2*time.Minute), 3, false)
	eng, err := NewBlameEngine(arch, DefaultBlameConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Blame(judged, []topology.LinkID{3}, sendAt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blame != 1 {
		t.Errorf("stale probe admitted as evidence: blame %v", res.Blame)
	}
	// The same observation 30 seconds before: inside the window.
	arch2 := newArchive(t)
	record(t, arch2, prober, sendAt.Add(-30*time.Second), 3, false)
	eng2, err := NewBlameEngine(arch2, DefaultBlameConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err = eng2.Blame(judged, []topology.LinkID{3}, sendAt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Blame-0.1) > 1e-12 {
		t.Errorf("in-window probe not used: blame %v", res.Blame)
	}
}

func TestBlameUsesWorstLink(t *testing.T) {
	t.Parallel()
	// Fuzzy OR: the link with the highest bad-confidence dominates.
	arch := newArchive(t)
	p1 := id.MustParse("000000000000000000000000000000e1")
	p2 := id.MustParse("000000000000000000000000000000e2")
	judged := id.MustParse("000000000000000000000000000000e3")
	// Link 1: one up, one down → confidence 0.5. Link 2: one down → 0.9.
	record(t, arch, p1, 0, 1, true)
	record(t, arch, p2, 0, 1, false)
	record(t, arch, p1, 0, 2, false)
	eng, err := NewBlameEngine(arch, DefaultBlameConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Blame(judged, []topology.LinkID{1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.WorstLink.Link != 2 {
		t.Errorf("worst link = %d, want 2", res.WorstLink.Link)
	}
	if math.Abs(res.Blame-0.1) > 1e-12 {
		t.Errorf("blame = %v, want 0.1", res.Blame)
	}
	if len(res.Evidence) != 2 {
		t.Errorf("evidence entries = %d, want 2", len(res.Evidence))
	}
}

func TestBlameEmptyPathRejected(t *testing.T) {
	t.Parallel()
	eng, err := NewBlameEngine(newArchive(t), DefaultBlameConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Blame(id.Zero, nil, 0); err == nil {
		t.Error("empty path accepted")
	}
}

func TestRecomputeBlameMatchesEngine(t *testing.T) {
	t.Parallel()
	arch := newArchive(t)
	p := id.MustParse("000000000000000000000000000000f1")
	judged := id.MustParse("000000000000000000000000000000f2")
	record(t, arch, p, 0, 1, false)
	record(t, arch, p, 0, 2, true)
	eng, err := NewBlameEngine(arch, DefaultBlameConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Blame(judged, []topology.LinkID{1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := RecomputeBlame(res.Evidence); math.Abs(got-res.Blame) > 1e-12 {
		t.Errorf("RecomputeBlame = %v, engine said %v", got, res.Blame)
	}
	if got := RecomputeBlame(nil); got != 1 {
		t.Errorf("RecomputeBlame(nil) = %v, want 1", got)
	}
}
