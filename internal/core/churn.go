package core

import (
	"fmt"

	"concilium/internal/id"
	"concilium/internal/overlay"
	"concilium/internal/sigcrypto"
	"concilium/internal/tomography"
	"concilium/internal/topology"
)

// Overlay churn at the system level. The paper's evaluation holds
// membership fixed ("we did not model fluctuating machine availability
// since we wanted to focus on the fundamental properties of our fault
// inference algorithm", §4.2); the protocol nevertheless has to survive
// churn, so the System supports it: departures repair every survivor's
// routing state through the incremental maintenance ops (proven
// equivalent to from-scratch fills) and rebuild the affected tomography
// trees, and joins admit CA-certified newcomers.

// FailNode removes a node from the overlay — a crash or permanent
// departure. Every surviving node's leaf set and jump tables are
// repaired and its tomography tree rebuilt if the departed node was one
// of its routing peers.
//
// Survivors are repaired in ascending ring order — the single FailNode
// semantic shared with the compact plane (overlay.Compact.ApplyDeparture
// visits survivors the same way), so standard-table refill draws land in
// the same positions of the shared random stream on both
// representations. Before the traffic-plane port this loop followed
// build order, which was the one churn-order divergence between the two
// cores (DESIGN.md §13).
func (s *System) FailNode(failed id.ID) error {
	if _, ok := s.Nodes[failed]; !ok {
		return fmt.Errorf("core: unknown node %s", failed.Short())
	}
	if len(s.Order) <= 4 {
		return fmt.Errorf("core: refusing to shrink overlay below 4 nodes")
	}
	newRing, err := s.Ring.Without(map[id.ID]bool{failed: true})
	if err != nil {
		return err
	}
	s.Ring = newRing
	delete(s.Nodes, failed)
	if s.states != nil {
		delete(s.states, failed)
	}
	kept := s.Order[:0]
	for _, nid := range s.Order {
		if nid != failed {
			kept = append(kept, nid)
		}
	}
	s.Order = kept

	for _, nid := range s.Ring.Members() {
		node := s.Nodes[nid]
		hadPeer := false
		peers := node.Routing.AppendRoutingPeers(s.peerScratch[:0])
		s.peerScratch = peers
		for _, p := range peers {
			if p == failed {
				hadPeer = true
				break
			}
		}
		if err := node.Routing.ApplyDeparture(failed, s.Ring, s.rng); err != nil {
			return fmt.Errorf("core: repair %s: %w", nid.Short(), err)
		}
		if hadPeer {
			if err := s.rebuildTree(node); err != nil {
				return err
			}
		}
	}
	return nil
}

// JoinNode admits a new CA-certified node at the given attachment
// router: it receives full routing state, a tomography tree, and every
// existing node folds it in incrementally.
func (s *System) JoinNode(router topology.RouterID) (id.ID, error) {
	keys := sigcrypto.KeyPairFromRand(s.rng)
	cert, err := s.CA.Issue(hostAddr(router), keys.Public)
	if err != nil {
		return id.ID{}, err
	}
	return s.admit(cert, keys, router)
}

// JoinNodeAt admits a node with a caller-chosen identifier — the
// eclipse threat model, where an adversary has defeated the CA's
// random assignment (§2) and positions identifiers adjacent to a
// victim. The adversary campaign uses it to measure whether the
// density checks notice; everything after issuance follows JoinNode.
func (s *System) JoinNodeAt(router topology.RouterID, nid id.ID) (id.ID, error) {
	keys := sigcrypto.KeyPairFromRand(s.rng)
	if err := s.CA.Claim(nid); err != nil {
		return id.ID{}, err
	}
	cert, err := s.CA.IssueFor(hostAddr(router), nid, keys.Public)
	if err != nil {
		return id.ID{}, err
	}
	return s.admit(cert, keys, router)
}

// admit folds a freshly certified node into the overlay.
func (s *System) admit(cert sigcrypto.Certificate, keys sigcrypto.KeyPair, router topology.RouterID) (id.ID, error) {
	newRing, err := s.Ring.WithMember(cert.NodeID)
	if err != nil {
		return id.ID{}, err
	}
	s.Ring = newRing

	node := &Node{Cert: cert, Keys: keys, Router: router}
	node.Routing, err = overlay.BuildRoutingState(cert.NodeID, s.Ring, s.rng)
	if err != nil {
		return id.ID{}, err
	}
	s.Nodes[cert.NodeID] = node
	s.Order = append(s.Order, cert.NodeID)
	if s.states != nil {
		s.states[cert.NodeID] = node.Routing
	}
	if err := s.rebuildTree(node); err != nil {
		return id.ID{}, err
	}

	// Existing nodes fold the newcomer in; trees only change for nodes
	// that actually gained it as a routing peer. Survivors' RoutingState
	// values mutate in place, so the cached routingStates map needs no
	// further patching.
	for _, nid := range s.Order[:len(s.Order)-1] {
		peer := s.Nodes[nid]
		if err := peer.Routing.ApplyJoin(cert.NodeID); err != nil {
			return id.ID{}, fmt.Errorf("core: fold join into %s: %w", nid.Short(), err)
		}
		peers := peer.Routing.AppendRoutingPeers(s.peerScratch[:0])
		s.peerScratch = peers
		for _, p := range peers {
			if p == cert.NodeID {
				if err := s.rebuildTree(peer); err != nil {
					return id.ID{}, err
				}
				break
			}
		}
	}
	if s.probing {
		if err := s.scheduleProbe(node); err != nil {
			return id.ID{}, err
		}
	}
	return cert.NodeID, nil
}

// rebuildTree refreshes a node's tomography tree from its current
// routing peers. Only the leaf set changes on churn — the root router
// and the underlying graph do not — so the expensive BFS is served from
// the per-router cache and the rebuild pays only path extraction. The
// replacement tree is freshly allocated (BuildTreeBFS never aliases old
// storage), so paths captured from the previous tree — in-flight
// messages, the failure injector's candidate set — stay intact.
func (s *System) rebuildTree(node *Node) error {
	peers := node.Routing.AppendRoutingPeers(s.peerScratch[:0])
	s.peerScratch = peers
	leaves := make([]tomography.Leaf, 0, len(peers))
	for _, p := range peers {
		pn, ok := s.Nodes[p]
		if !ok {
			continue // peer departed concurrently
		}
		leaves = append(leaves, tomography.Leaf{Node: p, Router: pn.Router})
	}
	bfs, err := s.bfsFor(node.Router)
	if err != nil {
		return fmt.Errorf("core: rebuild tree for %s: %w", node.ID().Short(), err)
	}
	tree, err := tomography.BuildTreeBFS(bfs, node.ID(), node.Router, leaves)
	if err != nil {
		return fmt.Errorf("core: rebuild tree for %s: %w", node.ID().Short(), err)
	}
	node.Tree = tree
	return nil
}
