// Package core implements the Concilium diagnostic protocol itself
// (§3): validation of self-reported routing state (jump-table and
// leaf-set density tests with their false-positive/negative analytics),
// the fuzzy-logic blame engine over archived tomographic data, verdict
// windows and formal accusations, forwarding commitments, and the
// recursive stewardship/revision machinery that moves blame to the true
// fault point.
package core

import (
	"fmt"
	"math"
	"math/rand/v2"

	"concilium/internal/id"
	"concilium/internal/parexec"
	"concilium/internal/stats"
)

// OccupancyModel is the analytic model of jump-table occupancy from
// §3.1: in an overlay of N nodes with random identifiers, the slot at
// row i (0-indexed) is filled with probability
//
//	p_i = 1 − [1 − (1/v)^(i+1)]^(N−1)        (Eq. 1)
//
// and total occupancy follows a Poisson binomial, approximated by the
// normal φ(μφ, σφ).
type OccupancyModel struct {
	// L is ℓ, the identifier length in digits; V is v, the digit radix.
	L, V int
}

// DefaultOccupancyModel returns the model for this package's identifier
// space (ℓ=32, v=16).
func DefaultOccupancyModel() OccupancyModel {
	return OccupancyModel{L: id.Digits, V: id.Base}
}

// Validate reports invalid dimensions.
func (m OccupancyModel) Validate() error {
	if m.L <= 0 || m.V <= 1 {
		return fmt.Errorf("core: occupancy model dimensions ℓ=%d v=%d invalid", m.L, m.V)
	}
	return nil
}

// Slots returns ℓ·v, the table size.
func (m OccupancyModel) Slots() int { return m.L * m.V }

// FillProb returns Eq. 1 for 0-indexed row i with n total overlay nodes.
func (m OccupancyModel) FillProb(row, n int) float64 {
	if n <= 1 || row < 0 || row >= m.L {
		return 0
	}
	p := math.Pow(1/float64(m.V), float64(row+1))
	return 1 - math.Pow(1-p, float64(n-1))
}

// Distribution returns the Poisson binomial over all ℓ·v slots for an
// overlay of n nodes. Construction is memoized per (ℓ, v, n) — density
// sweeps request the same few population sizes thousands of times — and
// the returned distribution is shared and immutable.
func (m OccupancyModel) Distribution(n int) (*stats.PoissonBinomial, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if n <= 1 {
		return nil, fmt.Errorf("core: occupancy model needs n > 1, got %d", n)
	}
	return cachedDistribution(occKey{l: m.L, v: m.V, n: n}, func() (*stats.PoissonBinomial, error) {
		return m.buildDistribution(n)
	})
}

// buildDistribution constructs the distribution afresh, bypassing the
// cache. Tests use it to assert cache-hit equivalence.
func (m OccupancyModel) buildDistribution(n int) (*stats.PoissonBinomial, error) {
	probs := make([]float64, 0, m.Slots())
	for row := 0; row < m.L; row++ {
		p := m.FillProb(row, n)
		for col := 0; col < m.V; col++ {
			probs = append(probs, p)
		}
	}
	return stats.NewPoissonBinomial(probs)
}

// NormalApprox returns the paper's φ(μφ, σφ) for an overlay of n nodes,
// memoized per (ℓ, v, n) alongside Distribution.
func (m OccupancyModel) NormalApprox(n int) (stats.Normal, error) {
	if err := m.Validate(); err != nil {
		return stats.Normal{}, err
	}
	if n <= 1 {
		return stats.Normal{}, fmt.Errorf("core: occupancy model needs n > 1, got %d", n)
	}
	return cachedNormal(occKey{l: m.L, v: m.V, n: n}, func() (stats.Normal, error) {
		pb, err := m.Distribution(n)
		if err != nil {
			return stats.Normal{}, err
		}
		return pb.NormalApprox()
	})
}

// ExpectedOccupancy returns μφ for an overlay of n nodes.
func (m OccupancyModel) ExpectedOccupancy(n int) (float64, error) {
	pb, err := m.Distribution(n)
	if err != nil {
		return 0, err
	}
	return pb.Mean(), nil
}

// MonteCarloOccupancy estimates table occupancy empirically — the
// "reality" series of Figure 1. Each trial draws a random owner and n−1
// random peers and counts how many distinct (row, col) slots the peers
// could fill. It returns the sample mean and standard deviation.
func (m OccupancyModel) MonteCarloOccupancy(n, trials int, rng stats.Rand) (mean, std float64, err error) {
	if err := m.validateMonteCarlo(n, trials); err != nil {
		return 0, 0, err
	}
	counts := make([]float64, trials)
	scratch := m.newScratch()
	for t := 0; t < trials; t++ {
		counts[t] = m.monteCarloTrial(n, rng, scratch)
	}
	return stats.Mean(counts), stats.StdDev(counts), nil
}

// MonteCarloOccupancyStreams is the deterministic parallel variant: each
// trial draws from its own PCG substream derived from seed and the trial
// index, so the result is bit-identical for every worker count
// (including workers=1). workers <= 0 selects GOMAXPROCS.
func (m OccupancyModel) MonteCarloOccupancyStreams(n, trials, workers int, seed parexec.Seed) (mean, std float64, err error) {
	if err := m.validateMonteCarlo(n, trials); err != nil {
		return 0, 0, err
	}
	counts, err := parexec.MapTrials(workers, trials, seed, func(_ int, rng *rand.Rand) (float64, error) {
		return m.monteCarloTrial(n, rng, m.newScratch()), nil
	})
	if err != nil {
		return 0, 0, err
	}
	return stats.Mean(counts), stats.StdDev(counts), nil
}

func (m OccupancyModel) validateMonteCarlo(n, trials int) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if m.L > id.Digits || m.V != id.Base {
		return fmt.Errorf("core: Monte Carlo requires the native identifier space (ℓ<=%d, v=%d)", id.Digits, id.Base)
	}
	if n <= 1 || trials <= 0 {
		return fmt.Errorf("core: Monte Carlo needs n > 1 and positive trials")
	}
	return nil
}

// newScratch allocates the per-trial slot matrix.
func (m OccupancyModel) newScratch() [][]bool {
	filled := make([][]bool, m.L)
	for i := range filled {
		filled[i] = make([]bool, m.V)
	}
	return filled
}

// monteCarloTrial draws one random table and counts occupied slots.
// filled is caller-provided scratch and is reset here.
func (m OccupancyModel) monteCarloTrial(n int, rng stats.Rand, filled [][]bool) float64 {
	for i := range filled {
		for j := range filled[i] {
			filled[i][j] = false
		}
	}
	owner := id.Random(rng)
	var occ int
	for k := 0; k < n-1; k++ {
		peer := id.Random(rng)
		cpl := id.CommonPrefixLen(owner, peer)
		if cpl > m.L {
			cpl = m.L
		}
		// Eq. 1's event for slot (i, j) is "some node exists with the
		// i-digit shared prefix and j as its next digit". A peer with
		// cpl shared digits therefore fills its divergence slot
		// (cpl, peer digit) and the owner-digit column of every
		// shallower row, exactly as the analytic model counts them.
		for row := 0; row < cpl; row++ {
			col := owner.Digit(row)
			if !filled[row][col] {
				filled[row][col] = true
				occ++
			}
		}
		if cpl < m.L {
			col := peer.Digit(cpl)
			if !filled[cpl][col] {
				filled[cpl][col] = true
				occ++
			}
		}
	}
	return float64(occ)
}

// DensityTest is the jump-table check of §3.1: a peer's advertised
// density d_peer is fraudulent if γ·d_peer < d_local. γ is slightly
// above 1; larger values tolerate sparser tables.
type DensityTest struct {
	Gamma float64
}

// NewDensityTest validates γ > 1 (γ ≤ 1 would reject most honest peers).
func NewDensityTest(gamma float64) (DensityTest, error) {
	if gamma <= 1 || math.IsNaN(gamma) || math.IsInf(gamma, 0) {
		return DensityTest{}, fmt.Errorf("core: density-test γ %v must exceed 1", gamma)
	}
	return DensityTest{Gamma: gamma}, nil
}

// Check reports whether the advertised occupancy passes: true means the
// table is accepted, false means it is deemed fraudulent. Occupancies
// are slot counts (not fractions); the comparison is scale-invariant.
func (t DensityTest) Check(localOccupancy, peerOccupancy float64) bool {
	return t.Gamma*peerOccupancy >= localOccupancy
}

// FalsePositiveRate computes the probability that an honest peer's table
// fails the density test:
//
//	Pr(γ d_peer < d_local) = Σ_{d} [φ(d+½) − φ(d−½)]·φ_peer(d/γ)
//
// localN sizes the distribution the verifier's own table is drawn from;
// peerN sizes the honest peer's. Without suppression attacks both equal
// the true overlay size; under suppression the peer's view shrinks to
// N(1−c) because colluders hide from it (§4.1).
func FalsePositiveRate(m OccupancyModel, localN, peerN int, gamma float64) (float64, error) {
	if gamma <= 0 {
		return 0, fmt.Errorf("core: γ %v must be positive", gamma)
	}
	local, err := m.NormalApprox(localN)
	if err != nil {
		return 0, err
	}
	peer, err := m.NormalApprox(peerN)
	if err != nil {
		return 0, err
	}
	var sum float64
	for d := 0; d <= m.Slots(); d++ {
		mass := local.PointMass(float64(d))
		if mass == 0 {
			continue
		}
		sum += mass * peer.CDF(float64(d)/gamma)
	}
	return clampProb(sum), nil
}

// FalseNegativeRate computes the probability that an attacker's table —
// drawn from an overlay of attackerN colluding nodes — passes the test
// against a verifier whose own table reflects localN nodes:
//
//	Pr(γ d_peer ≥ d_local) = Σ_{d} [φ_att(d+½) − φ_att(d−½)]·φ_local(γ d)
func FalseNegativeRate(m OccupancyModel, localN, attackerN int, gamma float64) (float64, error) {
	if gamma <= 0 {
		return 0, fmt.Errorf("core: γ %v must be positive", gamma)
	}
	local, err := m.NormalApprox(localN)
	if err != nil {
		return 0, err
	}
	attacker, err := m.NormalApprox(attackerN)
	if err != nil {
		return 0, err
	}
	var sum float64
	for d := 0; d <= m.Slots(); d++ {
		mass := attacker.PointMass(float64(d))
		if mass == 0 {
			continue
		}
		sum += mass * local.CDF(gamma*float64(d))
	}
	return clampProb(sum), nil
}

// DensityErrorRates bundles the two error probabilities at one γ.
type DensityErrorRates struct {
	Gamma         float64
	FalsePositive float64
	FalseNegative float64
}

// Sum returns the combined misclassification metric the paper minimizes
// when choosing γ (Figure 2c / 3c).
func (r DensityErrorRates) Sum() float64 { return r.FalsePositive + r.FalseNegative }

// DensityScenario describes whose view each distribution reflects.
// Collusion is c, the fraction of colluding malicious nodes; Suppression
// marks whether colluders additionally hide their identifiers from
// honest peers' views (Figure 3).
type DensityScenario struct {
	N           int
	Collusion   float64
	Suppression bool
}

// Validate reports the first invalid field.
func (s DensityScenario) Validate() error {
	if s.N <= 1 {
		return fmt.Errorf("core: scenario N %d must exceed 1", s.N)
	}
	if s.Collusion <= 0 || s.Collusion >= 1 || math.IsNaN(s.Collusion) {
		return fmt.Errorf("core: collusion fraction %v out of (0,1)", s.Collusion)
	}
	return nil
}

// populations returns the effective overlay sizes for each error
// metric, following §4.1's "appropriately skewed versions of N". The
// suppression skew is worst case per metric, since colluders choose whom
// to hide from: to manufacture false positives they suppress from the
// honest peer being judged (its table thins to N(1−c) while the
// verifier's stays N); to slip fraudulent tables past the test they
// suppress from the verifier (whose table thins to N(1−c) while the
// attacker advertises a table of its Nc colluders).
func (s DensityScenario) populations() (fpLocal, fpPeer, fnLocal, fnAttacker int) {
	fpLocal, fpPeer = s.N, s.N
	fnLocal = s.N
	fnAttacker = atLeast2(int(float64(s.N) * s.Collusion))
	if s.Suppression {
		suppressed := atLeast2(int(float64(s.N) * (1 - s.Collusion)))
		fpPeer = suppressed
		fnLocal = suppressed
	}
	return fpLocal, fpPeer, fnLocal, fnAttacker
}

func atLeast2(n int) int {
	if n < 2 {
		return 2
	}
	return n
}

// ErrorRatesAt evaluates both density-test error rates at γ under the
// scenario.
func ErrorRatesAt(m OccupancyModel, s DensityScenario, gamma float64) (DensityErrorRates, error) {
	if err := s.Validate(); err != nil {
		return DensityErrorRates{}, err
	}
	fpLocal, fpPeer, fnLocal, fnAttacker := s.populations()
	fp, err := FalsePositiveRate(m, fpLocal, fpPeer, gamma)
	if err != nil {
		return DensityErrorRates{}, err
	}
	fn, err := FalseNegativeRate(m, fnLocal, fnAttacker, gamma)
	if err != nil {
		return DensityErrorRates{}, err
	}
	return DensityErrorRates{Gamma: gamma, FalsePositive: fp, FalseNegative: fn}, nil
}

// OptimalGamma sweeps γ over [lo, hi] in the given number of steps and
// returns the rates at the γ minimizing FP+FN — the choice behind
// Figures 2(c) and 3(c).
func OptimalGamma(m OccupancyModel, s DensityScenario, lo, hi float64, steps int) (DensityErrorRates, error) {
	if !(lo > 0 && hi > lo) || steps < 2 {
		return DensityErrorRates{}, fmt.Errorf("core: bad γ sweep [%v, %v] x%d", lo, hi, steps)
	}
	best := DensityErrorRates{FalsePositive: 1, FalseNegative: 1}
	for i := 0; i < steps; i++ {
		gamma := lo + (hi-lo)*float64(i)/float64(steps-1)
		r, err := ErrorRatesAt(m, s, gamma)
		if err != nil {
			return DensityErrorRates{}, err
		}
		if r.Sum() < best.Sum() {
			best = r
		}
	}
	return best, nil
}

func clampProb(p float64) float64 {
	switch {
	case p < 0:
		return 0
	case p > 1:
		return 1
	default:
		return p
	}
}
