package core

import (
	"errors"
	"fmt"
	"sync"

	"concilium/internal/id"
)

// §3.5's rebuttal flow: a host archives the fault attributions it
// issues. If another host later confronts it with a formal accusation —
// perhaps because an upstream peer maliciously refused to amend its
// verdict — the accused rebuts by producing its own verifiable
// downstream verdict for the same message, extending the chain so blame
// moves past it. Hosts that cannot rebut keep the blame, which is the
// point: only the true fault point lacks exculpatory evidence.

// ErrNoDefense indicates the host holds no downstream verdict for the
// accused message — it cannot push the blame further.
var ErrNoDefense = errors.New("core: no archived downstream verdict for this message")

// DefenseArchive stores the accusations a host itself issued, keyed by
// message, for later rebuttals. It is safe for concurrent use.
type DefenseArchive struct {
	owner id.ID

	mu  sync.Mutex
	own map[uint64]Accusation
}

// NewDefenseArchive creates the archive for owner.
func NewDefenseArchive(owner id.ID) *DefenseArchive {
	return &DefenseArchive{owner: owner, own: make(map[uint64]Accusation)}
}

// Owner returns the archiving host.
func (d *DefenseArchive) Owner() id.ID { return d.owner }

// Record archives a verdict the owner issued. Accusations issued by
// other hosts are rejected — archiving someone else's verdict as one's
// own would produce unverifiable rebuttals.
func (d *DefenseArchive) Record(acc Accusation) error {
	if acc.Accuser != d.owner {
		return fmt.Errorf("core: accusation by %s archived by %s",
			acc.Accuser.Short(), d.owner.Short())
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.own[acc.MsgID] = acc
	return nil
}

// Len returns the number of archived verdicts.
func (d *DefenseArchive) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.own)
}

// Defend rebuts an accusation naming the owner: it extends the
// presented chain with the owner's own archived downstream verdict for
// the same message. The caller (the host weighing punitive steps,
// §3.5) then re-verifies the extended chain and recalculates
// trustworthiness in light of the new evidence.
func (d *DefenseArchive) Defend(presented *RevisionChain) (*RevisionChain, error) {
	if presented == nil || len(presented.Links) == 0 {
		return nil, fmt.Errorf("core: empty accusation presented")
	}
	if presented.Culprit() != d.owner {
		return nil, fmt.Errorf("core: accusation names %s, not %s",
			presented.Culprit().Short(), d.owner.Short())
	}
	msgID := presented.Links[len(presented.Links)-1].MsgID
	d.mu.Lock()
	downstream, ok := d.own[msgID]
	d.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w (message %d)", ErrNoDefense, msgID)
	}
	return presented.Extend(downstream)
}
