package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"concilium/internal/id"
	"concilium/internal/netsim"
)

// §3.5's rebuttal flow: a host archives the fault attributions it
// issues. If another host later confronts it with a formal accusation —
// perhaps because an upstream peer maliciously refused to amend its
// verdict — the accused rebuts by producing its own verifiable
// downstream verdict for the same message, extending the chain so blame
// moves past it. Hosts that cannot rebut keep the blame, which is the
// point: only the true fault point lacks exculpatory evidence.

// ErrNoDefense indicates the host holds no downstream verdict for the
// accused message — it cannot push the blame further.
var ErrNoDefense = errors.New("core: no archived downstream verdict for this message")

// Rebuttal-abuse errors: adversaries replay old rebuttals against
// fresh blame, or sit on a rebuttal until the verdict has hardened.
var (
	// ErrStaleRebuttal indicates the archived downstream verdict was
	// issued too far from the presented accusation — replaying a
	// rebuttal from an earlier accusation epoch does not clear new
	// blame.
	ErrStaleRebuttal = errors.New("core: archived downstream verdict outside the rebuttal window")
	// ErrRebuttalWindowClosed indicates the rebuttal itself was
	// presented after the window around the accusation closed; the
	// blame stands.
	ErrRebuttalWindowClosed = errors.New("core: rebuttal presented after the verdict window closed")
)

// DefenseArchive stores the accusations a host itself issued, keyed by
// message, for later rebuttals. It is safe for concurrent use.
type DefenseArchive struct {
	owner id.ID

	mu  sync.Mutex
	own map[uint64]Accusation
}

// NewDefenseArchive creates the archive for owner.
func NewDefenseArchive(owner id.ID) *DefenseArchive {
	return &DefenseArchive{owner: owner, own: make(map[uint64]Accusation)}
}

// Owner returns the archiving host.
func (d *DefenseArchive) Owner() id.ID { return d.owner }

// Record archives a verdict the owner issued. Accusations issued by
// other hosts are rejected — archiving someone else's verdict as one's
// own would produce unverifiable rebuttals.
func (d *DefenseArchive) Record(acc Accusation) error {
	if acc.Accuser != d.owner {
		return fmt.Errorf("core: accusation by %s archived by %s",
			acc.Accuser.Short(), d.owner.Short())
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.own[acc.MsgID] = acc
	return nil
}

// Len returns the number of archived verdicts.
func (d *DefenseArchive) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.own)
}

// Defend rebuts an accusation naming the owner: it extends the
// presented chain with the owner's own archived downstream verdict for
// the same message. The caller (the host weighing punitive steps,
// §3.5) then re-verifies the extended chain and recalculates
// trustworthiness in light of the new evidence.
func (d *DefenseArchive) Defend(presented *RevisionChain) (*RevisionChain, error) {
	downstream, _, err := d.lookupDefense(presented)
	if err != nil {
		return nil, err
	}
	return presented.Extend(downstream)
}

// DefendWithin is Defend under the admissibility discipline that
// rebuttal abuse forces (§3.5): the archived downstream verdict must
// have been issued within window of the accusation it rebuts — a
// convicted attacker cannot replay an old valid rebuttal against fresh
// blame — and the rebuttal must be presented (at now) before the
// window around the accusation closes, so verdicts harden once their
// evidence has aged out.
func (d *DefenseArchive) DefendWithin(presented *RevisionChain, now netsim.Time, window time.Duration) (*RevisionChain, error) {
	if window <= 0 {
		return nil, fmt.Errorf("core: rebuttal window %v must be positive", window)
	}
	downstream, accusedAt, err := d.lookupDefense(presented)
	if err != nil {
		return nil, err
	}
	if now.Sub(accusedAt) > window {
		return nil, fmt.Errorf("%w: accused at %v, presented %v later",
			ErrRebuttalWindowClosed, accusedAt, now.Sub(accusedAt))
	}
	gap := downstream.At.Sub(accusedAt)
	if gap < 0 {
		gap = -gap
	}
	if gap > window {
		return nil, fmt.Errorf("%w: verdict at %v, accusation at %v",
			ErrStaleRebuttal, downstream.At, accusedAt)
	}
	return presented.Extend(downstream)
}

// lookupDefense validates the presented chain and retrieves the
// owner's archived downstream verdict for its message, along with the
// presented accusation's timestamp.
func (d *DefenseArchive) lookupDefense(presented *RevisionChain) (Accusation, netsim.Time, error) {
	if presented == nil || len(presented.Links) == 0 {
		return Accusation{}, 0, fmt.Errorf("core: empty accusation presented")
	}
	if presented.Culprit() != d.owner {
		return Accusation{}, 0, fmt.Errorf("core: accusation names %s, not %s",
			presented.Culprit().Short(), d.owner.Short())
	}
	last := presented.Links[len(presented.Links)-1]
	d.mu.Lock()
	downstream, ok := d.own[last.MsgID]
	d.mu.Unlock()
	if !ok {
		return Accusation{}, 0, fmt.Errorf("%w (message %d)", ErrNoDefense, last.MsgID)
	}
	return downstream, last.At, nil
}
