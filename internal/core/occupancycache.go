package core

import (
	"sync"

	"concilium/internal/stats"
)

// The density-test analytics rebuild the same Poisson-binomial
// distribution thousands of times: one γ sweep evaluates
// FalsePositiveRate/FalseNegativeRate at hundreds of γ values, and each
// evaluation needs φ for the same handful of population sizes. Both the
// distribution and its normal approximation are pure functions of
// (ℓ, v, n), so they are memoized here behind process-wide,
// concurrency-safe caches.
//
// Invalidation rules: there are none to apply. A cache entry is keyed by
// every input that influences the value, and *stats.PoissonBinomial is
// immutable after construction, so entries can never go stale — the
// cache is dropped wholesale only to bound memory (see occCacheLimit)
// or when tests call ResetOccupancyCaches.

// occKey identifies one memoized occupancy computation.
type occKey struct {
	l, v, n int
}

// occCacheLimit bounds each cache map. Sweeps touch tens of distinct
// population sizes, so the limit exists only to keep a pathological
// caller (arbitrary n from untrusted input) from growing the maps
// without bound; on overflow the map is simply rebuilt from empty,
// since entries are cheap to recompute.
const occCacheLimit = 4096

var (
	occMu     sync.RWMutex
	distCache = make(map[occKey]*stats.PoissonBinomial)
	normCache = make(map[occKey]stats.Normal)
)

// cachedDistribution returns the memoized Poisson binomial for key,
// constructing it via build on a miss. The returned distribution is
// shared across callers; it is safe because PoissonBinomial is
// immutable.
func cachedDistribution(key occKey, build func() (*stats.PoissonBinomial, error)) (*stats.PoissonBinomial, error) {
	occMu.RLock()
	pb, ok := distCache[key]
	occMu.RUnlock()
	if ok {
		return pb, nil
	}
	pb, err := build()
	if err != nil {
		return nil, err
	}
	occMu.Lock()
	if len(distCache) >= occCacheLimit {
		distCache = make(map[occKey]*stats.PoissonBinomial)
	}
	// A racing goroutine may have stored the same key; keep the first
	// entry so every caller shares one distribution.
	if prior, ok := distCache[key]; ok {
		pb = prior
	} else {
		distCache[key] = pb
	}
	occMu.Unlock()
	return pb, nil
}

// cachedNormal memoizes the normal approximation the same way.
func cachedNormal(key occKey, build func() (stats.Normal, error)) (stats.Normal, error) {
	occMu.RLock()
	n, ok := normCache[key]
	occMu.RUnlock()
	if ok {
		return n, nil
	}
	n, err := build()
	if err != nil {
		return stats.Normal{}, err
	}
	occMu.Lock()
	if len(normCache) >= occCacheLimit {
		normCache = make(map[occKey]stats.Normal)
	}
	normCache[key] = n
	occMu.Unlock()
	return n, nil
}

// ResetOccupancyCaches drops every memoized distribution and normal
// approximation. Benchmarks call it to measure cold-cache behaviour;
// nothing else needs to.
func ResetOccupancyCaches() {
	occMu.Lock()
	distCache = make(map[occKey]*stats.PoissonBinomial)
	normCache = make(map[occKey]stats.Normal)
	occMu.Unlock()
}

// occupancyCacheSizes reports entry counts, for tests.
func occupancyCacheSizes() (dists, normals int) {
	occMu.RLock()
	defer occMu.RUnlock()
	return len(distCache), len(normCache)
}
