package core

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"concilium/internal/id"
	"concilium/internal/netsim"
	"concilium/internal/sigcrypto"
)

// §3.7: when two peers exchange many packets, a single acknowledgment
// can cover multiple messages. The paper sketches two encodings — plain
// counters ("how many arrived") and per-packet hashes ("exactly which
// arrived"). Both are implemented here as signed batch acknowledgments a
// steward can hold in place of per-message acks.

// ErrBadBatchAckSignature indicates a batch ack that fails verification.
var ErrBadBatchAckSignature = errors.New("core: batch acknowledgment signature invalid")

// BatchAck is a signed acknowledgment from a recipient covering a span
// of messages from one sender.
type BatchAck struct {
	From id.ID // original message source
	By   id.ID // acknowledging recipient
	At   netsim.Time
	// Received counts messages that arrived in the covered span.
	Received uint32
	// Expected is the span size the sender claimed (from its sequence
	// numbers); Received < Expected signals loss inside the span.
	Expected uint32
	// Digests optionally identifies the exact messages received, as
	// truncated hashes of their IDs. Empty means counter-only encoding.
	Digests   []uint64
	Signature []byte
}

// MessageDigest derives the truncated hash identifying message msgID
// from sender from.
func MessageDigest(from id.ID, msgID uint64) uint64 {
	var buf [id.Bytes + 8]byte
	copy(buf[:], from[:])
	binary.BigEndian.PutUint64(buf[id.Bytes:], msgID)
	sum := sha256.Sum256(buf[:])
	return binary.BigEndian.Uint64(sum[:8])
}

func (a *BatchAck) payload() []byte {
	buf := make([]byte, 0, 8+2*id.Bytes+16+8*len(a.Digests))
	buf = append(buf, "batchack"...)
	buf = append(buf, a.From[:]...)
	buf = append(buf, a.By[:]...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(a.At))
	buf = binary.BigEndian.AppendUint32(buf, a.Received)
	buf = binary.BigEndian.AppendUint32(buf, a.Expected)
	for _, d := range a.Digests {
		buf = binary.BigEndian.AppendUint64(buf, d)
	}
	return buf
}

// NewCounterAck builds a counter-encoded batch acknowledgment.
func NewCounterAck(kp sigcrypto.KeyPair, from, by id.ID, at netsim.Time, received, expected uint32) (BatchAck, error) {
	if received > expected {
		return BatchAck{}, fmt.Errorf("core: batch ack received %d exceeds expected %d", received, expected)
	}
	a := BatchAck{From: from, By: by, At: at, Received: received, Expected: expected}
	a.Signature = kp.Sign(a.payload())
	return a, nil
}

// NewDigestAck builds a hash-encoded batch acknowledgment identifying
// the exact messages received. Digests are sorted for canonical form.
func NewDigestAck(kp sigcrypto.KeyPair, from, by id.ID, at netsim.Time, expected uint32, msgIDs []uint64) (BatchAck, error) {
	if uint32(len(msgIDs)) > expected {
		return BatchAck{}, fmt.Errorf("core: batch ack covers %d messages but expected only %d", len(msgIDs), expected)
	}
	digests := make([]uint64, len(msgIDs))
	for i, m := range msgIDs {
		digests[i] = MessageDigest(from, m)
	}
	sort.Slice(digests, func(i, j int) bool { return digests[i] < digests[j] })
	a := BatchAck{
		From: from, By: by, At: at,
		Received: uint32(len(msgIDs)), Expected: expected,
		Digests: digests,
	}
	a.Signature = kp.Sign(a.payload())
	return a, nil
}

// Verify checks the acknowledgment under the recipient's key.
func (a *BatchAck) Verify(byPub ed25519.PublicKey) error {
	if !sigcrypto.Verify(byPub, a.payload(), a.Signature) {
		return ErrBadBatchAckSignature
	}
	if a.Received > a.Expected {
		return fmt.Errorf("core: batch ack received %d exceeds expected %d", a.Received, a.Expected)
	}
	if len(a.Digests) > 0 && uint32(len(a.Digests)) != a.Received {
		return fmt.Errorf("core: batch ack digest count %d disagrees with received %d",
			len(a.Digests), a.Received)
	}
	return nil
}

// LossRate returns the fraction of the span that went missing.
func (a *BatchAck) LossRate() float64 {
	if a.Expected == 0 {
		return 0
	}
	return float64(a.Expected-a.Received) / float64(a.Expected)
}

// Covers reports whether a digest-encoded ack confirms receipt of the
// given message. Counter-only acks cannot answer per-message questions
// and always report false — the precision/size trade-off §3.7 describes.
func (a *BatchAck) Covers(from id.ID, msgID uint64) bool {
	if len(a.Digests) == 0 {
		return false
	}
	want := MessageDigest(from, msgID)
	i := sort.Search(len(a.Digests), func(i int) bool { return a.Digests[i] >= want })
	return i < len(a.Digests) && a.Digests[i] == want
}
