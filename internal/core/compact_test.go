package core

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"concilium/internal/id"
	"concilium/internal/overlay"
	"concilium/internal/topology"
)

func buildTestCompactSystem(t *testing.T, mutate func(*SystemConfig)) *CompactSystem {
	t.Helper()
	cfg := DefaultSystemConfig()
	cfg.Topology = topology.TestConfig()
	cfg.OverlayFraction = 0.5
	if mutate != nil {
		mutate(&cfg)
	}
	cs, err := BuildCompactSystem(cfg, rand.New(rand.NewPCG(201, 203)))
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

// TestCompactSystemMatchesLegacyBuild is the one-time bridge between
// the two representations: at equal config and seed, the compact build
// must decide exactly what the legacy build decides — identifiers,
// routers, keys, certificates, behavior marks, every routing slot, the
// routing-peer order, and (via on-demand TreeOf) the tomography trees.
// The compact canonical stream is a new format, so this field-by-field
// cross-check is what carries the determinism lineage across the
// re-pin of the golden hash.
func TestCompactSystemMatchesLegacyBuild(t *testing.T) {
	t.Parallel()
	cfg := DefaultSystemConfig()
	cfg.Topology = topology.TestConfig()
	cfg.OverlayFraction = 0.5
	cfg.MaliciousFraction = 0.25

	s, err := BuildSystem(cfg, rand.New(rand.NewPCG(201, 203)))
	if err != nil {
		t.Fatal(err)
	}
	cs, err := BuildCompactSystem(cfg, rand.New(rand.NewPCG(201, 203)))
	if err != nil {
		t.Fatal(err)
	}
	if cs.Size() != len(s.Order) {
		t.Fatalf("compact size %d, legacy %d", cs.Size(), len(s.Order))
	}

	var scratch topology.BFSScratch
	for p, nid := range s.Order {
		node := s.Nodes[nid]
		i, ok := cs.Overlay.IndexOf(nid)
		if !ok {
			t.Fatalf("legacy node %s missing from compact ring", nid.Short())
		}
		if int(cs.slabOf[i]) != p {
			t.Fatalf("node %s: slab %d, legacy build position %d", nid.Short(), cs.slabOf[i], p)
		}
		if cs.Router(i) != node.Router {
			t.Fatalf("node %s: router %d, legacy %d", nid.Short(), cs.Router(i), node.Router)
		}
		keys := cs.Keys(i)
		if !bytes.Equal(keys.Public, node.Keys.Public) || !bytes.Equal(keys.Private, node.Keys.Private) {
			t.Fatalf("node %s: key pair mismatch", nid.Short())
		}
		cert := cs.Cert(i)
		if cert.Addr != node.Cert.Addr || cert.NodeID != node.Cert.NodeID ||
			!bytes.Equal(cert.PublicKey, node.Cert.PublicKey) ||
			!bytes.Equal(cert.Signature, node.Cert.Signature) {
			t.Fatalf("node %s: certificate mismatch", nid.Short())
		}
		if cs.Behavior(i) != node.Behavior {
			t.Fatalf("node %s: behavior %+v, legacy %+v", nid.Short(), cs.Behavior(i), node.Behavior)
		}

		leafIdx := cs.Overlay.AppendLeafIndices(i, nil)
		wantLeaves := node.Routing.Leaf.AppendAll(nil)
		if len(leafIdx) != len(wantLeaves) {
			t.Fatalf("node %s: %d leaves, legacy %d", nid.Short(), len(leafIdx), len(wantLeaves))
		}
		for q, j := range leafIdx {
			if cs.NodeID(j) != wantLeaves[q] {
				t.Fatalf("node %s: leaf %d mismatch", nid.Short(), q)
			}
		}
		for row := 0; row < id.Digits; row++ {
			for col := byte(0); col < id.Base; col++ {
				wantSec, wantOK := node.Routing.Secure.Slot(row, col)
				gotIdx, gotOK := cs.Overlay.SecureSlot(i, row, col)
				if gotOK != wantOK || (gotOK && cs.NodeID(gotIdx) != wantSec) {
					t.Fatalf("node %s: secure slot (%d,%d) mismatch", nid.Short(), row, col)
				}
				wantStd, wantOK := node.Routing.Standard.Slot(row, col)
				gotIdx, gotOK = cs.Overlay.StandardSlot(i, row, col)
				if gotOK != wantOK || (gotOK && cs.NodeID(gotIdx) != wantStd) {
					t.Fatalf("node %s: standard slot (%d,%d) mismatch", nid.Short(), row, col)
				}
			}
		}
		peerIdx := cs.Overlay.AppendRoutingPeers(i, nil)
		wantPeers := node.Routing.RoutingPeers()
		if len(peerIdx) != len(wantPeers) {
			t.Fatalf("node %s: %d routing peers, legacy %d", nid.Short(), len(peerIdx), len(wantPeers))
		}
		for q, j := range peerIdx {
			if cs.NodeID(j) != wantPeers[q] {
				t.Fatalf("node %s: routing peer %d mismatch", nid.Short(), q)
			}
		}

		tree, err := cs.TreeOf(i, &scratch)
		if err != nil {
			t.Fatal(err)
		}
		if tree.Root != node.Tree.Root || tree.RootRouter != node.Tree.RootRouter {
			t.Fatalf("node %s: tree root mismatch", nid.Short())
		}
		if len(tree.Leaves) != len(node.Tree.Leaves) {
			t.Fatalf("node %s: %d tree leaves, legacy %d", nid.Short(), len(tree.Leaves), len(node.Tree.Leaves))
		}
		for q := range tree.Leaves {
			got, want := &tree.Leaves[q], &node.Tree.Leaves[q]
			if got.Node != want.Node || got.Router != want.Router || len(got.Path) != len(want.Path) {
				t.Fatalf("node %s: tree leaf %d mismatch", nid.Short(), q)
			}
			for l := range got.Path {
				if got.Path[l] != want.Path[l] {
					t.Fatalf("node %s: tree leaf %d path link %d mismatch", nid.Short(), q, l)
				}
			}
		}
	}
}

// TestBuildCompactSystemWorkerInvariant pins the parexec contract for
// the compact build: the canonical snapshot is byte-identical no matter
// how many workers constructed it.
func TestBuildCompactSystemWorkerInvariant(t *testing.T) {
	t.Parallel()
	var want uint64
	for _, workers := range []int{1, 2, 3} {
		cs := buildTestCompactSystem(t, func(c *SystemConfig) { c.Workers = workers })
		got := cs.CanonicalHash()
		if workers == 1 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("workers=%d: canonical hash %#x, workers=1 gave %#x", workers, got, want)
		}
	}
}

// TestCompactCanonicalGolden pins the compact canonical hash at a fixed
// config and seed. The compact stream is a new format (index-based,
// trees excluded), so this constant was established when the format
// landed; any change to the build's decisions or the serialization
// layout must update it deliberately. Re-verified unchanged when the
// traffic plane landed: wiring Sim/Net into the build draws nothing
// from the rng, and the ring-order FailNode standardization changed
// only the legacy plane's repair order (compact already repaired in
// ring order).
func TestCompactCanonicalGolden(t *testing.T) {
	t.Parallel()
	cs := buildTestCompactSystem(t, nil)
	const want = uint64(0xc85872ef5cc0b6eb)
	if got := cs.CanonicalHash(); got != want {
		t.Fatalf("compact canonical hash %#x, pinned %#x", got, want)
	}
}

// TestCompactSystemChurnDeterministic runs the same build plus the same
// fail/join schedule on two same-seeded systems and requires identical
// canonical snapshots throughout.
func TestCompactSystemChurnDeterministic(t *testing.T) {
	t.Parallel()
	run := func() *CompactSystem {
		cs := buildTestCompactSystem(t, nil)
		hosts := cs.Topo.EndHosts()
		for step := 0; step < 8; step++ {
			if step%3 == 2 {
				if _, err := cs.JoinNode(hosts[(step*37)%len(hosts)]); err != nil {
					t.Fatal(err)
				}
			} else {
				victim := cs.NodeID(uint32((step * 13) % cs.Size()))
				if err := cs.FailNode(victim); err != nil {
					t.Fatal(err)
				}
			}
		}
		return cs
	}
	a, b := run(), run()
	ha, hb := a.CanonicalHash(), b.CanonicalHash()
	if ha != hb {
		t.Fatalf("same seed, same churn: hashes %#x vs %#x", ha, hb)
	}
	if !bytes.Equal(a.AppendCanonical(nil), b.AppendCanonical(nil)) {
		t.Fatal("same seed, same churn: canonical snapshots differ")
	}
}

// TestCompactChurnSecureInvariant checks the repair quality bound the
// paper's constrained table gives for free: the secure fill is rng-free,
// so after arbitrary churn every survivor's secure table must equal a
// from-scratch fill over the current membership.
func TestCompactChurnSecureInvariant(t *testing.T) {
	t.Parallel()
	cs := buildTestCompactSystem(t, nil)
	for step := 0; step < 6; step++ {
		victim := cs.NodeID(uint32((step * 29) % cs.Size()))
		if err := cs.FailNode(victim); err != nil {
			t.Fatal(err)
		}
	}
	fresh, err := overlay.NewCompact(cs.Overlay.IDs(), cs.Overlay.PerSide())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 5)) // consumed by standard fills only
	for i := 0; i < fresh.Size(); i++ {
		fresh.FillNode(uint32(i), rng)
	}
	for i := uint32(0); i < uint32(cs.Size()); i++ {
		for row := 0; row < id.Digits; row++ {
			for col := byte(0); col < id.Base; col++ {
				want, wantOK := fresh.SecureSlot(i, row, col)
				got, gotOK := cs.Overlay.SecureSlot(i, row, col)
				if gotOK != wantOK || (gotOK && got != want) {
					t.Fatalf("node %d: repaired secure slot (%d,%d) diverges from fresh fill", i, row, col)
				}
			}
		}
	}
}

// TestCompactSystemFootprint bounds the per-node resident cost of the
// compact core at test scale: identifier, slabs (32+64+64 B of key and
// signature material), routing state, and indices. The legacy System
// spends ~40KB/node at the same scale.
func TestCompactSystemFootprint(t *testing.T) {
	t.Parallel()
	cs := buildTestCompactSystem(t, nil)
	perNode := cs.Footprint() / int64(cs.Size())
	if perNode <= 0 || perNode > 2048 {
		t.Fatalf("compact footprint %d bytes/node, want (0, 2048]", perNode)
	}
}

// TestCompactFailNodeGuards mirrors the legacy churn guards.
func TestCompactFailNodeGuards(t *testing.T) {
	t.Parallel()
	cs := buildTestCompactSystem(t, nil)
	if err := cs.FailNode(id.ID{1, 2, 3}); err == nil {
		t.Fatal("FailNode accepted an unknown identifier")
	}
	for cs.Size() > 4 {
		if err := cs.FailNode(cs.NodeID(0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cs.FailNode(cs.NodeID(0)); err == nil {
		t.Fatal("FailNode shrank the overlay below 4 nodes")
	}
}
