package core

import (
	"sync"
	"testing"

	"concilium/internal/id"
	"concilium/internal/netsim"
)

// Hammer tests for the mutex-guarded singletons shared by concurrent
// callers. They assert nothing subtle about values — the point is the
// interleaving itself, checked by the race detector in the CI
// `go test -race` pass.

func hammerID(b byte) id.ID {
	var nid id.ID
	nid[0] = b
	return nid
}

func TestStewardLedgerConcurrent(t *testing.T) {
	t.Parallel()
	owner := hammerID(1)
	ledger := NewStewardLedger(owner)
	dests := []id.ID{hammerID(2), hammerID(3), hammerID(4)}

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				dest := dests[(g+i)%len(dests)]
				ledger.RecordSent(dest, uint64(g*1000+i), netsim.Time(i))
				if i%7 == 0 {
					ledger.Pending(dest)
				}
				if i%11 == 0 {
					ledger.NeedsBlame(dest, netsim.Time(i))
				}
			}
		}(g)
	}
	wg.Wait()

	var total int
	for _, dest := range dests {
		total += len(ledger.Pending(dest))
	}
	if total != goroutines*200 {
		t.Fatalf("ledger holds %d pending messages, want %d", total, goroutines*200)
	}
}

func TestDefenseArchiveConcurrent(t *testing.T) {
	t.Parallel()
	owner := hammerID(9)
	archive := NewDefenseArchive(owner)

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				acc := Accusation{
					Accuser: owner,
					Accused: hammerID(byte(50 + g)),
					MsgID:   uint64(g*1000 + i),
				}
				if err := archive.Record(acc); err != nil {
					t.Errorf("record: %v", err)
					return
				}
				if i%13 == 0 {
					archive.Len()
				}
			}
		}(g)
	}
	wg.Wait()

	if got := archive.Len(); got != goroutines*200 {
		t.Fatalf("archive holds %d verdicts, want %d", got, goroutines*200)
	}
	if err := archive.Record(Accusation{Accuser: hammerID(99)}); err == nil {
		t.Fatal("foreign accusation accepted")
	}
}
