package core

import (
	"fmt"
	"sort"
)

// Suppression defense (the future-work direction §4.1 closes with).
//
// The density test compares a peer's advertised occupancy against the
// verifier's own table, so colluders who suppress their identifiers
// from the verifier shrink its reference point and sneak sparse
// fraudulent tables past (Figure 3). The defense implemented here
// removes the single point of reference: the verifier estimates the
// overlay population from the *median* of many peers' leaf-spacing
// population estimates and tests advertised tables against the expected
// occupancy at that consensus population. A median over k estimates is
// unmoved until more than half the contributing peers collude, so
// suppression must corrupt a majority of the verifier's sample rather
// than just its local view.
//
// The defense restores the false-negative rate; it cannot restore false
// positives, because a suppressed honest peer's table is *genuinely*
// sparse — no reference point fixes evidence the attacker physically
// removed. The analysis functions expose both sides honestly.

// ConsensusN returns the median of independent population estimates,
// rejecting empty or non-positive inputs.
func ConsensusN(estimates []float64) (float64, error) {
	if len(estimates) == 0 {
		return 0, fmt.Errorf("core: consensus over no estimates")
	}
	xs := make([]float64, 0, len(estimates))
	for _, e := range estimates {
		if e <= 0 {
			return 0, fmt.Errorf("core: population estimate %v not positive", e)
		}
		xs = append(xs, e)
	}
	sort.Float64s(xs)
	mid := len(xs) / 2
	if len(xs)%2 == 1 {
		return xs[mid], nil
	}
	return (xs[mid-1] + xs[mid]) / 2, nil
}

// ConsensusDensityTest checks an advertised occupancy against the
// expected occupancy of an overlay of consensusN nodes: the advert is
// accepted when γ·d_peer ≥ μφ(consensusN).
type ConsensusDensityTest struct {
	Model OccupancyModel
	Gamma float64
}

// NewConsensusDensityTest validates the parameters.
func NewConsensusDensityTest(m OccupancyModel, gamma float64) (ConsensusDensityTest, error) {
	if err := m.Validate(); err != nil {
		return ConsensusDensityTest{}, err
	}
	if gamma <= 1 {
		return ConsensusDensityTest{}, fmt.Errorf("core: consensus-test γ %v must exceed 1", gamma)
	}
	return ConsensusDensityTest{Model: m, Gamma: gamma}, nil
}

// Check reports whether the advertised occupancy passes against the
// consensus population.
func (t ConsensusDensityTest) Check(peerOccupancy, consensusN float64) (bool, error) {
	if consensusN <= 1 {
		return false, fmt.Errorf("core: consensus population %v too small", consensusN)
	}
	mu, err := t.Model.ExpectedOccupancy(int(consensusN + 0.5))
	if err != nil {
		return false, err
	}
	return t.Gamma*peerOccupancy >= mu, nil
}

// ConsensusErrorRates computes the defense's error rates under a
// suppression attack with colluding fraction c, mirroring the Figure 3
// analysis:
//
//   - false negative: the attacker's table (drawn from Nc colluders)
//     passes against μφ(N) — the consensus reference the median
//     preserves as long as c < 1/2;
//   - false positive: an honest-but-suppressed peer's table (drawn from
//     N(1−c)) fails against the same reference.
func ConsensusErrorRates(m OccupancyModel, s DensityScenario, gamma float64) (DensityErrorRates, error) {
	if err := s.Validate(); err != nil {
		return DensityErrorRates{}, err
	}
	if gamma <= 0 {
		return DensityErrorRates{}, fmt.Errorf("core: γ %v must be positive", gamma)
	}
	// Median of population estimates stays at N while c < 1/2.
	reference := s.N
	if s.Collusion >= 0.5 {
		reference = atLeast2(int(float64(s.N) * s.Collusion))
	}
	mu, err := m.ExpectedOccupancy(reference)
	if err != nil {
		return DensityErrorRates{}, err
	}
	cut := mu / gamma

	peerN := s.N
	if s.Suppression {
		peerN = atLeast2(int(float64(s.N) * (1 - s.Collusion)))
	}
	peer, err := m.NormalApprox(peerN)
	if err != nil {
		return DensityErrorRates{}, err
	}
	attacker, err := m.NormalApprox(atLeast2(int(float64(s.N) * s.Collusion)))
	if err != nil {
		return DensityErrorRates{}, err
	}
	return DensityErrorRates{
		Gamma:         gamma,
		FalsePositive: clampProb(peer.CDF(cut)),          // honest table below cut
		FalseNegative: clampProb(attacker.Survival(cut)), // fraudulent table above cut
	}, nil
}
