package core

import (
	"math/rand/v2"
	"testing"
	"time"

	"concilium/internal/id"
	"concilium/internal/topology"
	"concilium/internal/trace"
)

func buildTestSystem(t *testing.T, mutate func(*SystemConfig)) *System {
	t.Helper()
	cfg := DefaultSystemConfig()
	cfg.Topology = topology.TestConfig()
	cfg.OverlayFraction = 0.5 // small topology: take half the hosts
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := BuildSystem(cfg, rand.New(rand.NewPCG(201, 203)))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSystemConfigValidate(t *testing.T) {
	t.Parallel()
	if err := DefaultSystemConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*SystemConfig){
		func(c *SystemConfig) { c.OverlayFraction = 0 },
		func(c *SystemConfig) { c.OverlayFraction = 1.5 },
		func(c *SystemConfig) { c.Blame.ProbeAccuracy = 2 },
		func(c *SystemConfig) { c.Window.W = 0 },
		func(c *SystemConfig) { c.MaxProbeTime = 0 },
		func(c *SystemConfig) { c.Failures.DownFraction = -1 },
		func(c *SystemConfig) { c.MaliciousFraction = 1 },
		func(c *SystemConfig) { c.ArchiveRetention = -time.Second },
		func(c *SystemConfig) { c.Topology.TransitDomains = 0 },
	}
	for i, mutate := range mutations {
		cfg := DefaultSystemConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestBuildSystemDeterministic(t *testing.T) {
	t.Parallel()
	cfg := DefaultSystemConfig()
	cfg.Topology = topology.TestConfig()
	cfg.OverlayFraction = 0.5
	s1, err := BuildSystem(cfg, rand.New(rand.NewPCG(7, 8)))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := BuildSystem(cfg, rand.New(rand.NewPCG(7, 8)))
	if err != nil {
		t.Fatal(err)
	}
	if len(s1.Order) != len(s2.Order) {
		t.Fatal("different node counts")
	}
	for i := range s1.Order {
		if s1.Order[i] != s2.Order[i] {
			t.Fatal("node identities differ under same seed")
		}
	}
}

func TestBuildSystemStructure(t *testing.T) {
	t.Parallel()
	s := buildTestSystem(t, nil)
	if len(s.Nodes) < 4 {
		t.Fatalf("only %d nodes", len(s.Nodes))
	}
	for _, nid := range s.Order {
		n := s.Nodes[nid]
		if n.Routing == nil || n.Tree == nil {
			t.Fatalf("node %s missing state", nid.Short())
		}
		// Trees must cover every routing peer (all hosts are reachable
		// in a connected topology).
		if len(n.Tree.Leaves) != len(n.Routing.RoutingPeers()) {
			t.Errorf("node %s: %d leaves for %d peers",
				nid.Short(), len(n.Tree.Leaves), len(n.Routing.RoutingPeers()))
		}
		// Certificates verify against the CA.
		if n.Cert.NodeID != nid {
			t.Errorf("certificate identity mismatch for %s", nid.Short())
		}
	}
	keys := s.Keys()
	if _, ok := keys(s.Order[0]); !ok {
		t.Error("key directory missing member")
	}
	if _, ok := keys(id.Zero); ok {
		t.Error("key directory invented a member")
	}
	if len(s.OverlayPaths()) == 0 {
		t.Error("no overlay paths")
	}
}

func TestBuildSystemMarksMalicious(t *testing.T) {
	t.Parallel()
	s := buildTestSystem(t, func(c *SystemConfig) { c.MaliciousFraction = 0.25 })
	var bad int
	for _, nid := range s.Order {
		if s.Nodes[nid].Behavior.DropsMessages {
			bad++
		}
	}
	want := int(0.25 * float64(len(s.Order)))
	if bad != want {
		t.Errorf("malicious nodes = %d, want %d", bad, want)
	}
}

func TestSendMessageCleanNetworkDelivers(t *testing.T) {
	t.Parallel()
	s := buildTestSystem(t, nil)
	src, dst := s.Order[0], s.Order[len(s.Order)-1]
	rep, err := s.SendMessage(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Delivered || !rep.AckReceived {
		t.Fatalf("clean delivery failed: %+v", rep)
	}
	if rep.Kind != DropNone || len(rep.Verdicts) != 0 {
		t.Errorf("clean delivery produced verdicts: %+v", rep)
	}
}

func TestSendMessageSelfDelivery(t *testing.T) {
	t.Parallel()
	s := buildTestSystem(t, nil)
	rep, err := s.SendMessage(s.Order[0], s.Order[0])
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Delivered || len(rep.Route) != 1 {
		t.Errorf("self delivery: %+v", rep)
	}
	if _, err := s.SendMessage(id.Zero, s.Order[0]); err == nil {
		t.Error("unknown source accepted")
	}
	if _, err := s.SendMessage(s.Order[0], id.Zero); err == nil {
		t.Error("unknown destination accepted")
	}
}

// findMultiHopPair returns a src/dst whose secure route has at least
// minHops overlay hops.
func findMultiHopPair(t *testing.T, s *System, minHops int) (id.ID, id.ID, []id.ID) {
	t.Helper()
	states := s.routingStates()
	for _, src := range s.Order {
		for _, dst := range s.Order {
			if src == dst {
				continue
			}
			route, err := overlayRoute(states, src, dst)
			if err != nil {
				continue
			}
			if len(route) >= minHops+1 {
				return src, dst, route
			}
		}
	}
	t.Skip("no multi-hop route in this small overlay")
	return id.ID{}, id.ID{}, nil
}

func TestSendMessageDropperBlamedWithEvidence(t *testing.T) {
	t.Parallel()
	s := buildTestSystem(t, nil)
	src, dst, route := findMultiHopPair(t, s, 2)

	// Make the first intermediate hop a dropper, then saturate the
	// archive with truthful probes so the blame engine has evidence.
	dropper := route[1]
	s.Nodes[dropper].Behavior = Behavior{DropsMessages: true}
	if err := s.StartProbing(); err != nil {
		t.Fatal(err)
	}
	s.Run(3 * time.Minute)

	rep, err := s.SendMessage(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered {
		t.Fatal("message delivered through a dropper")
	}
	if rep.Kind != DropByNode || rep.DroppedBy != dropper {
		t.Fatalf("drop cause: %+v", rep)
	}
	if rep.NetworkBlamed {
		t.Fatal("network blamed for a node drop on healthy links")
	}
	if rep.Culprit != dropper {
		t.Errorf("culprit = %s, want dropper %s", rep.Culprit.Short(), dropper.Short())
	}
	if rep.Chain == nil {
		t.Fatal("no accusation chain assembled")
	}
	if err := rep.Chain.Verify(s.Keys(), s.Config.Blame.GuiltyThreshold); err != nil {
		t.Errorf("accusation chain does not verify: %v", err)
	}
	if rep.Chain.Culprit() != dropper {
		t.Errorf("chain culprit = %s", rep.Chain.Culprit().Short())
	}
}

func TestSendMessageLinkFailureBlamesNetwork(t *testing.T) {
	t.Parallel()
	s := buildTestSystem(t, nil)
	src, dst, route := findMultiHopPair(t, s, 2)

	// Fail the first link of the first hop's path and give the archive
	// perfect evidence of it.
	path, err := s.Nodes[route[0]].PathToPeer(route[1])
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Net.SetLinkDown(path[0], true); err != nil {
		t.Fatal(err)
	}
	if err := s.StartProbing(); err != nil {
		t.Fatal(err)
	}
	s.Run(3 * time.Minute)

	rep, err := s.SendMessage(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered {
		t.Fatal("message crossed a down link")
	}
	if rep.Kind != DropByLink || rep.BrokenLink != path[0] {
		t.Fatalf("drop cause: kind=%v link=%d want %d", rep.Kind, rep.BrokenLink, path[0])
	}
	if !rep.NetworkBlamed {
		t.Errorf("network not blamed; culprit=%s verdicts=%+v",
			rep.Culprit.Short(), rep.Verdicts)
	}
	if rep.Chain != nil {
		t.Error("accusation chain built for a network fault")
	}
}

func TestStartProbingPopulatesArchive(t *testing.T) {
	t.Parallel()
	s := buildTestSystem(t, func(c *SystemConfig) { c.MaxProbeTime = 30 * time.Second })
	if err := s.StartProbing(); err != nil {
		t.Fatal(err)
	}
	if err := s.StartProbing(); err == nil {
		t.Error("double StartProbing accepted")
	}
	s.Run(2 * time.Minute)
	if s.Archive.Size() == 0 {
		t.Fatal("no probe records after 2 minutes")
	}
}

func TestArchiveRetentionBoundsMemory(t *testing.T) {
	t.Parallel()
	s := buildTestSystem(t, func(c *SystemConfig) {
		c.MaxProbeTime = 20 * time.Second
		c.ArchiveRetention = time.Minute
	})
	if err := s.StartProbing(); err != nil {
		t.Fatal(err)
	}
	s.Run(2 * time.Minute)
	sizeAt2 := s.Archive.Size()
	s.Run(8 * time.Minute)
	sizeAt10 := s.Archive.Size()
	if sizeAt10 > 3*sizeAt2 {
		t.Errorf("archive grew unbounded: %d at 2min, %d at 10min", sizeAt2, sizeAt10)
	}
}

func TestStartFailuresHoldsDownFraction(t *testing.T) {
	t.Parallel()
	s := buildTestSystem(t, nil)
	if err := s.StartFailures(); err != nil {
		t.Fatal(err)
	}
	if s.Injector.Target() <= 0 {
		t.Skip("test topology too small for a nonzero failure target")
	}
	s.Run(30 * time.Minute)
	if got := s.Net.DownCount(); got != s.Injector.Target() {
		t.Errorf("down links = %d, target %d", got, s.Injector.Target())
	}
}

func TestCollusionFilterAdaptsToJudgment(t *testing.T) {
	t.Parallel()
	s := buildTestSystem(t, func(c *SystemConfig) { c.MaliciousFraction = 0.3 })
	var liar, honest id.ID
	for _, nid := range s.Order {
		if s.Nodes[nid].Behavior.InvertsProbes && liar == (id.ID{}) {
			liar = nid
		}
		if s.Nodes[nid].Behavior.Honest() && honest == (id.ID{}) {
			honest = nid
		}
	}
	if liar == (id.ID{}) || honest == (id.ID{}) {
		t.Fatal("missing roles")
	}
	// A truthful "down" record from a liar flips to "up" when an honest
	// node is judged (framing) and stays "down" when a colluder is
	// judged (cover).
	rec := probeRecord(liar, false)
	out, keep := s.collusionFilter(honest, rec)
	if !keep || !out.Up {
		t.Errorf("judging honest: up=%v keep=%v, want up=true", out.Up, keep)
	}
	out, keep = s.collusionFilter(liar, rec)
	if !keep || out.Up {
		t.Errorf("judging colluder: up=%v keep=%v, want up=false", out.Up, keep)
	}
	// Honest probers' records pass through untouched.
	rec = probeRecord(honest, false)
	out, keep = s.collusionFilter(honest, rec)
	if !keep || out.Up {
		t.Error("honest record altered")
	}
}

func TestSignedSnapshotModePopulatesArchive(t *testing.T) {
	t.Parallel()
	s := buildTestSystem(t, func(c *SystemConfig) {
		c.SignedSnapshots = true
		c.MaxProbeTime = 30 * time.Second
	})
	if err := s.StartProbing(); err != nil {
		t.Fatal(err)
	}
	s.Run(2 * time.Minute)
	if s.Archive.Size() == 0 {
		t.Fatal("signed-snapshot mode archived nothing")
	}
	// Diagnosis still works end to end through the signed pipeline.
	src, dst, route := findMultiHopPair(t, s, 2)
	dropper := route[1]
	s.Nodes[dropper].Behavior = Behavior{DropsMessages: true}
	s.Run(2 * time.Minute)
	rep, err := s.SendMessage(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Culprit != dropper {
		t.Errorf("culprit = %s, want %s", rep.Culprit.Short(), dropper.Short())
	}
}

func TestSendMessageAckDropBlamesNetwork(t *testing.T) {
	t.Parallel()
	// Slow links so the round trip takes real virtual time, then fail a
	// link between the message leg and the acknowledgment leg.
	s := buildTestSystem(t, func(c *SystemConfig) { c.HopLatency = time.Second })
	src, dst, route := findMultiHopPair(t, s, 2)
	path, err := s.Nodes[route[0]].PathToPeer(route[1])
	if err != nil {
		t.Fatal(err)
	}
	// Probes see healthy links before the send; after the forward legs
	// complete, the first-hop link dies, eating the ack on its way back.
	if err := s.StartProbing(); err != nil {
		t.Fatal(err)
	}
	s.Run(3 * time.Minute)
	var forwardSpan time.Duration
	cur := route[0]
	for _, hop := range route[1:] {
		p, err := s.Nodes[cur].PathToPeer(hop)
		if err != nil {
			t.Fatal(err)
		}
		forwardSpan += s.Net.Latency(p)
		cur = hop
	}
	err = s.Sim.ScheduleAfter(forwardSpan+time.Millisecond, func() {
		if err := s.Net.SetLinkDown(path[0], true); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.SendMessage(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Delivered {
		t.Fatalf("message leg failed unexpectedly: %+v", rep)
	}
	if rep.AckReceived {
		t.Fatal("ack survived a link that died mid-flight")
	}
	if rep.Kind != DropAckByLink || rep.BrokenLink != path[0] {
		t.Fatalf("drop cause: kind=%v link=%d want ack-drop on %d",
			rep.Kind, rep.BrokenLink, path[0])
	}
	// The evidence window centers on the send time, when the link was
	// still up and probed up — so stewards see a good path and, lacking
	// exculpatory probes, verdicts fall where the thresholding puts
	// them. What matters structurally: diagnosis ran for every steward.
	if len(rep.Verdicts) == 0 {
		t.Error("no verdicts issued for an unacknowledged message")
	}
}

func TestSystemTracing(t *testing.T) {
	t.Parallel()
	counter := trace.NewCounter()
	ring, err := trace.NewRing(256)
	if err != nil {
		t.Fatal(err)
	}
	s := buildTestSystem(t, func(c *SystemConfig) {
		c.Tracer = trace.Multi(counter, ring)
		c.MaxProbeTime = 30 * time.Second
	})
	if err := s.StartFailures(); err != nil {
		t.Fatal(err)
	}
	if err := s.StartProbing(); err != nil {
		t.Fatal(err)
	}
	s.Run(3 * time.Minute)
	if counter.Count(trace.KindProbe) == 0 {
		t.Error("no probe events traced")
	}
	// Drive one diagnosed drop and check the full event trail.
	src, dst, route := findMultiHopPair(t, s, 2)
	dropper := route[1]
	s.Nodes[dropper].Behavior = Behavior{DropsMessages: true}
	rep, err := s.SendMessage(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if counter.Count(trace.KindMessageSent) == 0 {
		t.Error("message-sent not traced")
	}
	if counter.Count(trace.KindMessageDropped) == 0 {
		t.Error("message-dropped not traced")
	}
	if counter.Count(trace.KindVerdict) == 0 {
		t.Error("verdicts not traced")
	}
	if rep.Chain != nil && counter.Count(trace.KindAccusation) == 0 {
		t.Error("accusation not traced")
	}
	// Failure injector churn shows up as link events (if any links
	// were scheduled for repair in the window, both kinds appear over
	// a longer run; at minimum the initial failures are traced).
	if counter.Count(trace.KindLinkFailed) == 0 && s.Injector.Target() > 0 {
		t.Error("link failures not traced")
	}
	// The ring kept renderable events.
	for _, e := range ring.Events()[:min(3, len(ring.Events()))] {
		if e.String() == "" {
			t.Error("unrenderable event")
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
