package core

import (
	"concilium/internal/id"
	"concilium/internal/overlay"
	"concilium/internal/tomography"
)

// overlayRoute traces a secure route for tests.
func overlayRoute(states map[id.ID]*overlay.RoutingState, src, dst id.ID) ([]id.ID, error) {
	return overlay.RouteSecure(states, src, dst, 0)
}

// probeRecord builds an archive record for filter tests.
func probeRecord(prober id.ID, up bool) tomography.ProbeRecord {
	return tomography.ProbeRecord{Prober: prober, Up: up}
}
