package core

import (
	"errors"
	"testing"
	"time"

	"concilium/internal/id"
	"concilium/internal/netsim"
)

func feedOf(times map[id.ID][]netsim.Time) AccusationFeed {
	return func(peer id.ID) ([]netsim.Time, error) {
		return times[peer], nil
	}
}

func TestPolicyConfigValidate(t *testing.T) {
	t.Parallel()
	if err := DefaultPolicyConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []PolicyConfig{
		{DistrustAfter: 0, BlacklistRate: 3, RateWindow: time.Hour},
		{DistrustAfter: 1, BlacklistRate: 0, RateWindow: time.Hour},
		{DistrustAfter: 1, BlacklistRate: 3, RateWindow: 0},
	}
	for i, c := range bads {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := NewPolicy(DefaultPolicyConfig(), nil); err == nil {
		t.Error("nil feed accepted")
	}
	if _, err := NewPolicy(PolicyConfig{}, feedOf(nil)); err == nil {
		t.Error("zero config accepted")
	}
}

func TestPolicyEscalation(t *testing.T) {
	t.Parallel()
	peer := id.MustParse("000000000000000000000000000000aa")
	hour := netsim.Time(0).Add(time.Hour)
	times := map[id.ID][]netsim.Time{}
	p, err := NewPolicy(DefaultPolicyConfig(), feedOf(times))
	if err != nil {
		t.Fatal(err)
	}

	// Clean record.
	s, err := p.Evaluate(peer, hour)
	if err != nil || s != SanctionNone {
		t.Fatalf("clean peer sanction = %v (%v)", s, err)
	}
	// One verified accusation: distrust, but no eviction.
	times[peer] = []netsim.Time{hour.Add(-30 * time.Minute)}
	s, err = p.Evaluate(peer, hour)
	if err != nil || s != SanctionDistrust {
		t.Fatalf("one accusation sanction = %v (%v)", s, err)
	}
	if MayEvictFromLeafSet(s) {
		t.Error("local distrust must not evict from leaf sets (§3.7)")
	}
	if MayForwardSensitive(s) {
		t.Error("distrusted peer handed sensitive messages")
	}
	// Three accusations within the window: blacklist.
	times[peer] = []netsim.Time{
		hour.Add(-10 * time.Minute), hour.Add(-20 * time.Minute), hour.Add(-30 * time.Minute),
	}
	s, err = p.Evaluate(peer, hour)
	if err != nil || s != SanctionBlacklist {
		t.Fatalf("three accusations sanction = %v (%v)", s, err)
	}
	if !MayEvictFromLeafSet(s) {
		t.Error("universal blacklist should permit eviction")
	}
}

func TestPolicyRateWindowExpires(t *testing.T) {
	t.Parallel()
	// Three old accusations outside the window: distrust, not blacklist.
	peer := id.MustParse("000000000000000000000000000000bb")
	now := netsim.Time(0).Add(10 * time.Hour)
	times := map[id.ID][]netsim.Time{
		peer: {
			now.Add(-5 * time.Hour), now.Add(-6 * time.Hour), now.Add(-7 * time.Hour),
		},
	}
	p, err := NewPolicy(DefaultPolicyConfig(), feedOf(times))
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.Evaluate(peer, now)
	if err != nil {
		t.Fatal(err)
	}
	if s != SanctionDistrust {
		t.Errorf("stale accusations gave %v, want distrust", s)
	}
}

func TestPolicyFeedErrorPropagates(t *testing.T) {
	t.Parallel()
	sentinel := errors.New("dht unreachable")
	p, err := NewPolicy(DefaultPolicyConfig(), func(id.ID) ([]netsim.Time, error) {
		return nil, sentinel
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Evaluate(id.Zero, 0); !errors.Is(err, sentinel) {
		t.Errorf("feed error lost: %v", err)
	}
}

func TestSanctionString(t *testing.T) {
	t.Parallel()
	if SanctionNone.String() != "none" || SanctionDistrust.String() != "distrust" ||
		SanctionBlacklist.String() != "blacklist" {
		t.Error("sanction names wrong")
	}
	if Sanction(99).String() == "" {
		t.Error("unknown sanction renders empty")
	}
}
