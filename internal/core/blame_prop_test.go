package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"concilium/internal/id"
	"concilium/internal/netsim"
	"concilium/internal/tomography"
	"concilium/internal/topology"
)

// randomBlameCase builds an archive with random probe evidence over a
// random path and returns everything needed to evaluate blame.
func randomBlameCase(r *rand.Rand) (*tomography.Archive, id.ID, []topology.LinkID, netsim.Time) {
	arch := tomography.NewArchive()
	judged := id.Random(r)
	pathLen := 1 + r.IntN(10)
	path := make([]topology.LinkID, pathLen)
	for i := range path {
		path[i] = topology.LinkID(r.IntN(20))
	}
	probers := make([]id.ID, 1+r.IntN(5))
	for i := range probers {
		probers[i] = id.Random(r)
	}
	at := netsim.Time(1_000_000_000)
	for rec := 0; rec < r.IntN(40); rec++ {
		prober := probers[r.IntN(len(probers))]
		link := path[r.IntN(len(path))]
		_ = arch.Record(prober, at, []tomography.LinkObservation{
			{Link: link, Up: r.IntN(2) == 0},
		})
	}
	return arch, judged, path, at
}

// Property: blame is always a probability and matches its own evidence
// recomputation (the self-verification third parties rely on).
func TestPropBlameInRangeAndSelfConsistent(t *testing.T) {
	t.Parallel()
	f := func(seed uint32) bool {
		r := rand.New(rand.NewPCG(uint64(seed), 77))
		arch, judged, path, at := randomBlameCase(r)
		eng, err := NewBlameEngine(arch, DefaultBlameConfig())
		if err != nil {
			return false
		}
		res, err := eng.Blame(judged, path, at)
		if err != nil {
			return false
		}
		if res.Blame < 0 || res.Blame > 1 {
			return false
		}
		if RecomputeBlame(res.Evidence) != res.Blame {
			return false
		}
		if res.Guilty != (res.Blame >= eng.Config().GuiltyThreshold) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: a fresh "link down" observation from a third party can only
// lower (or hold) the judged node's blame, and a fresh "link up"
// observation can only raise (or hold) it. This is the monotonicity
// that makes the evidence rules coherent: exculpatory data never hurts
// the accused, incriminating-for-the-network data never helps it.
func TestPropBlameMonotoneInEvidence(t *testing.T) {
	t.Parallel()
	f := func(seed uint32, downObs bool) bool {
		r := rand.New(rand.NewPCG(uint64(seed), 99))
		arch, judged, path, at := randomBlameCase(r)
		eng, err := NewBlameEngine(arch, DefaultBlameConfig())
		if err != nil {
			return false
		}
		before, err := eng.Blame(judged, path, at)
		if err != nil {
			return false
		}
		// Add one more observation on a random path link from a fresh
		// third-party prober. For the "up" direction the link must
		// already carry evidence: the first probe of an untouched link
		// introduces the (1−a) baseline uncertainty, which legitimately
		// moves blame off the no-evidence extreme of 1.
		witness := id.Random(r)
		idx := r.IntN(len(path))
		link := path[idx]
		if !downObs && before.Evidence[idx].Probes == 0 {
			return true
		}
		if err := arch.Record(witness, at, []tomography.LinkObservation{
			{Link: link, Up: !downObs},
		}); err != nil {
			return false
		}
		after, err := eng.Blame(judged, path, at)
		if err != nil {
			return false
		}
		if downObs {
			return after.Blame <= before.Blame+1e-12
		}
		return after.Blame >= before.Blame-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the judged node's own records never change its blame.
func TestPropSelfProbesNeverMatter(t *testing.T) {
	t.Parallel()
	f := func(seed uint32, up bool) bool {
		r := rand.New(rand.NewPCG(uint64(seed), 111))
		arch, judged, path, at := randomBlameCase(r)
		eng, err := NewBlameEngine(arch, DefaultBlameConfig())
		if err != nil {
			return false
		}
		before, err := eng.Blame(judged, path, at)
		if err != nil {
			return false
		}
		for _, l := range path {
			if err := arch.Record(judged, at, []tomography.LinkObservation{{Link: l, Up: up}}); err != nil {
				return false
			}
		}
		after, err := eng.Blame(judged, path, at)
		if err != nil {
			return false
		}
		return after.Blame == before.Blame
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
