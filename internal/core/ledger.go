package core

import (
	"crypto/ed25519"
	"fmt"
	"sort"
	"sync"

	"concilium/internal/id"
	"concilium/internal/netsim"
)

// StewardLedger is the bookkeeping side of §3.7's batched
// acknowledgments: a steward records every message it forwarded toward
// a destination, consumes that destination's signed batch acks, and
// answers "which messages still need a blame evaluation". With digest
// acks the answer is exact; with counter acks the steward only learns
// the loss rate of a span and treats the whole span as suspect when it
// is non-zero — the precision/bandwidth trade-off the paper describes.
type StewardLedger struct {
	owner id.ID

	mu      sync.Mutex
	pending map[id.ID]map[uint64]netsim.Time // per destination: msgID → sent time
}

// NewStewardLedger creates an empty ledger for owner.
func NewStewardLedger(owner id.ID) *StewardLedger {
	return &StewardLedger{owner: owner, pending: make(map[id.ID]map[uint64]netsim.Time)}
}

// RecordSent notes a forwarded message awaiting acknowledgment.
func (l *StewardLedger) RecordSent(dest id.ID, msgID uint64, at netsim.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	m := l.pending[dest]
	if m == nil {
		m = make(map[uint64]netsim.Time)
		l.pending[dest] = m
	}
	m[msgID] = at
}

// Pending returns the message IDs still awaiting acknowledgment from
// dest, oldest first.
func (l *StewardLedger) Pending(dest id.ID) []uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	m := l.pending[dest]
	out := make([]uint64, 0, len(m))
	for msgID := range m {
		out = append(out, msgID)
	}
	sort.Slice(out, func(i, j int) bool {
		ti, tj := m[out[i]], m[out[j]]
		if ti != tj {
			return ti < tj
		}
		return out[i] < out[j]
	})
	return out
}

// ConsumeAck applies a verified batch acknowledgment from dest and
// returns the message IDs the ack proves delivered (now cleared from
// the ledger). Digest acks clear exactly the covered messages; counter
// acks with zero loss clear every pending message in the span, while a
// lossy counter ack clears nothing — the steward cannot tell which
// messages died, so all of them remain candidates for blame.
func (l *StewardLedger) ConsumeAck(dest id.ID, ack *BatchAck, destPub ed25519.PublicKey) ([]uint64, error) {
	if ack == nil {
		return nil, fmt.Errorf("core: nil batch ack")
	}
	if err := ack.Verify(destPub); err != nil {
		return nil, err
	}
	if ack.By != dest {
		return nil, fmt.Errorf("core: ack signed by %s, expected %s", ack.By.Short(), dest.Short())
	}
	if ack.From != l.owner {
		return nil, fmt.Errorf("core: ack covers messages from %s, not %s", ack.From.Short(), l.owner.Short())
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	m := l.pending[dest]
	if len(m) == 0 {
		return nil, nil
	}
	var cleared []uint64
	switch {
	case len(ack.Digests) > 0:
		for msgID := range m {
			if ack.Covers(l.owner, msgID) {
				cleared = append(cleared, msgID)
				delete(m, msgID)
			}
		}
	case ack.LossRate() == 0:
		for msgID := range m {
			cleared = append(cleared, msgID)
			delete(m, msgID)
		}
	}
	sort.Slice(cleared, func(i, j int) bool { return cleared[i] < cleared[j] })
	return cleared, nil
}

// NeedsBlame returns the messages sent to dest at or before cutoff that
// remain unacknowledged — the drops the steward must now judge.
func (l *StewardLedger) NeedsBlame(dest id.ID, cutoff netsim.Time) []uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []uint64
	for msgID, at := range l.pending[dest] {
		if at <= cutoff {
			out = append(out, msgID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
