package core

import (
	"fmt"
	"math"
	"time"

	"concilium/internal/fuzzy"
	"concilium/internal/id"
	"concilium/internal/netsim"
	"concilium/internal/tomography"
	"concilium/internal/topology"
)

// BlameConfig parameterizes the fault-attribution equation of §3.4.
type BlameConfig struct {
	// ProbeAccuracy is a, the probability a probe correctly diagnoses a
	// link's status. The paper's evaluation uses 0.9.
	ProbeAccuracy float64
	// Delta is Δ: probe results from [t−Δ, t+Δ] are admissible evidence
	// for a message sent at t. The paper's evaluation uses 60 s.
	Delta time.Duration
	// GuiltyThreshold converts continuous blame into a binary verdict;
	// the paper's example threshold is 0.4 (§4.3).
	GuiltyThreshold float64
	// MinProbesPerLink is the evidence floor for a link's confidence to
	// count as known. The paper's equation treats an unprobed link as
	// "no evidence the link was bad" (confidence 0), which convicts the
	// forwarder on an empty archive; with MinProbesPerLink > 0 the
	// engine instead widens the verdict's uncertainty interval — an
	// under-evidenced link's confidence spans [0, 1] — and only
	// convicts when even the interval's lower blame bound clears the
	// threshold. 0 (the default) preserves the paper's behavior.
	MinProbesPerLink int
}

// DefaultBlameConfig returns the paper's evaluation parameters.
func DefaultBlameConfig() BlameConfig {
	return BlameConfig{ProbeAccuracy: 0.9, Delta: time.Minute, GuiltyThreshold: 0.4}
}

// Validate reports the first invalid field.
func (c BlameConfig) Validate() error {
	switch {
	case c.ProbeAccuracy < 0.5 || c.ProbeAccuracy > 1 || math.IsNaN(c.ProbeAccuracy):
		return fmt.Errorf("core: probe accuracy %v out of [0.5, 1]", c.ProbeAccuracy)
	case c.Delta <= 0:
		return fmt.Errorf("core: Δ %v must be positive", c.Delta)
	case c.GuiltyThreshold <= 0 || c.GuiltyThreshold >= 1:
		return fmt.Errorf("core: guilty threshold %v out of (0,1)", c.GuiltyThreshold)
	case c.MinProbesPerLink < 0:
		return fmt.Errorf("core: min probes per link %d negative", c.MinProbesPerLink)
	}
	return nil
}

// LinkConfidence is one link's aggregated evidence: the fuzzy confidence
// that the link was bad during the evidence window.
type LinkConfidence struct {
	Link       topology.LinkID
	Probes     int
	Confidence float64
}

// BlameResult is the outcome of one fault attribution.
type BlameResult struct {
	// Judged is the forwarder being evaluated (B in the paper's running
	// example); the path is B→C, the IP route to its next hop.
	Judged id.ID
	At     netsim.Time
	// Blame is Pr(B faulty) per Eq. 2: 1 − max-link confidence that the
	// path was bad. With under-evidenced links it is the interval's
	// upper bound (every unknown link assumed healthy).
	Blame float64
	// BlameLo is the lower bound of the blame interval: every
	// under-evidenced link assumed fully bad. Equal to Blame when all
	// links met the evidence floor.
	BlameLo float64
	// Degraded reports that at least one link fell below the engine's
	// MinProbesPerLink evidence floor, so the verdict carries widened
	// uncertainty (stale or partial evidence, §3.4's admissibility
	// window left empty).
	Degraded bool
	// TotalProbes is the number of admissible probe records consulted
	// across all links.
	TotalProbes int
	// Guilty applies the configured threshold — to Blame normally, to
	// BlameLo when the verdict is degraded, so missing evidence never
	// convicts on its own.
	Guilty bool
	// WorstLink is the link that bounded the network's culpability (the
	// argmax of Eq. 3), if any probes covered the path.
	WorstLink LinkConfidence
	// Evidence holds the per-link confidences used, for archiving into
	// accusations.
	Evidence []LinkConfidence
}

// RecordFilter lets callers transform or drop archived records at
// judgment time. The accusation experiments use it to model colluders
// who adapt their published results to whoever is being judged (§4.3);
// returning false discards the record.
type RecordFilter func(judged id.ID, rec tomography.ProbeRecord) (tomography.ProbeRecord, bool)

// WitnessGrouping maps a prober to its witness group. Probers sharing
// a group aggregate into ONE witness before link confidences are
// combined — the clique-discounting rule: k colluders publishing k
// corroborating observations carry the weight of a single independent
// witness. The self-exclusion rule extends to the whole group: nobody
// in the judged node's group may testify about it.
type WitnessGrouping func(prober id.ID) id.ID

// BlameOption configures a BlameEngine.
type BlameOption func(*BlameEngine)

// WithRecordFilter installs a judgment-time record transform.
func WithRecordFilter(f RecordFilter) BlameOption {
	return func(e *BlameEngine) { e.filter = f }
}

// WithWitnessGrouping installs a witness grouping. Nil (the default)
// keeps the paper's record-level averaging, in which every archived
// probe counts equally.
func WithWitnessGrouping(g WitnessGrouping) BlameOption {
	return func(e *BlameEngine) { e.group = g }
}

// WithSelfExclusion controls whether the judged node's own probes are
// ignored (the paper's rule, default true). Disabling it exists only for
// the ablation benchmarks that measure what the rule buys.
func WithSelfExclusion(enabled bool) BlameOption {
	return func(e *BlameEngine) { e.selfExclusion = enabled }
}

// BlameEngine evaluates Eq. 2/3 against an archive of disseminated probe
// results.
type BlameEngine struct {
	archive       *tomography.Archive
	cfg           BlameConfig
	filter        RecordFilter
	group         WitnessGrouping
	selfExclusion bool
}

// NewBlameEngine creates an engine reading from archive.
func NewBlameEngine(archive *tomography.Archive, cfg BlameConfig, opts ...BlameOption) (*BlameEngine, error) {
	if archive == nil {
		return nil, fmt.Errorf("core: blame engine requires an archive")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &BlameEngine{archive: archive, cfg: cfg, selfExclusion: true}
	for _, opt := range opts {
		opt(e)
	}
	return e, nil
}

// Config returns the engine's parameters.
func (e *BlameEngine) Config() BlameConfig { return e.cfg }

// SetWitnessGrouping replaces the engine's grouping after construction.
// Campaigns install it once collusion suspicions accumulate; nil
// restores record-level averaging. All judgments run on the simulator
// goroutine, so no locking is needed.
func (e *BlameEngine) SetWitnessGrouping(g WitnessGrouping) { e.group = g }

// linkConfidence evaluates the inner expression of Eq. 3 for one link:
// each admissible probe contributes a when it saw the link down and
// (1−a) when it saw it up, averaged over the probes. No probes means no
// evidence the link was bad (confidence 0). It iterates the archive's
// zero-copy window view and applies the self-exclusion rule inline, so
// a judgment allocates nothing per link.
func (e *BlameEngine) linkConfidence(judged id.ID, link topology.LinkID, at netsim.Time) LinkConfidence {
	from := at.Add(-e.cfg.Delta)
	to := at.Add(e.cfg.Delta)
	recs := e.archive.Window(link, from, to)
	lc := LinkConfidence{Link: link}
	a := e.cfg.ProbeAccuracy
	if e.group != nil {
		return e.groupedConfidence(judged, recs, lc, a)
	}
	var sum float64
	for _, r := range recs {
		if e.selfExclusion && r.Prober == judged {
			continue
		}
		if e.filter != nil {
			var keep bool
			if r, keep = e.filter(judged, r); !keep {
				continue
			}
		}
		lc.Probes++
		if r.Up {
			sum += 1 - a
		} else {
			sum += a
		}
	}
	if lc.Probes == 0 {
		return lc
	}
	lc.Confidence = fuzzy.Clamp(sum / float64(lc.Probes))
	return lc
}

// groupedConfidence is the clique-discounted variant of linkConfidence:
// records aggregate per witness group first (each group's records
// average into one vote), then groups average into the link confidence,
// so k colluding probers weigh as one witness. Group accumulators are
// kept in first-seen order — the archive window is deterministic — so
// the floating-point summation order is fixed. Self-exclusion extends
// to the judged node's whole group.
func (e *BlameEngine) groupedConfidence(judged id.ID, recs []tomography.ProbeRecord, lc LinkConfidence, a float64) LinkConfidence {
	jg := e.group(judged)
	type groupAcc struct {
		sum float64
		n   int
	}
	var accs []groupAcc
	idx := make(map[id.ID]int, 8)
	for _, r := range recs {
		if e.selfExclusion && r.Prober == judged {
			continue
		}
		g := e.group(r.Prober)
		if e.selfExclusion && g == jg {
			continue
		}
		if e.filter != nil {
			var keep bool
			if r, keep = e.filter(judged, r); !keep {
				continue
			}
		}
		lc.Probes++
		v := a
		if r.Up {
			v = 1 - a
		}
		j, ok := idx[g]
		if !ok {
			j = len(accs)
			idx[g] = j
			accs = append(accs, groupAcc{})
		}
		accs[j].sum += v
		accs[j].n++
	}
	if lc.Probes == 0 {
		return lc
	}
	var sum float64
	for _, acc := range accs {
		sum += acc.sum / float64(acc.n)
	}
	lc.Confidence = fuzzy.Clamp(sum / float64(len(accs)))
	return lc
}

// Blame evaluates Eq. 2 for the forwarder judged, whose next-hop IP path
// is path, for a message sent at time at. The judged node's own probe
// results are excluded, so it cannot talk its way out of blame (§3.4).
// The fuzzy-OR accumulates incrementally, so the only allocation is the
// Evidence slice that escapes into the result.
func (e *BlameEngine) Blame(judged id.ID, path []topology.LinkID, at netsim.Time) (BlameResult, error) {
	if len(path) == 0 {
		return BlameResult{}, fmt.Errorf("core: blame over empty path")
	}
	res := BlameResult{Judged: judged, At: at, Evidence: make([]LinkConfidence, 0, len(path))}
	var orConf, orWorst float64
	for _, l := range path {
		lc := e.linkConfidence(judged, l, at)
		res.Evidence = append(res.Evidence, lc)
		res.TotalProbes += lc.Probes
		if v := fuzzy.Clamp(lc.Confidence); v > orConf {
			orConf = v
		}
		if lc.Probes < e.cfg.MinProbesPerLink {
			// Under-evidenced: the link's true confidence could be
			// anything in [0, 1]; for the lower blame bound assume it
			// was fully bad (which exonerates the forwarder).
			res.Degraded = true
			orWorst = 1
		} else if v := fuzzy.Clamp(lc.Confidence); v > orWorst {
			orWorst = v
		}
		if lc.Confidence > res.WorstLink.Confidence || res.WorstLink.Probes == 0 && lc.Probes > 0 {
			res.WorstLink = lc
		}
	}
	// Eq. 2: Pr(B faulty) = 1 − Pr(path bad) = 1 − fuzzy-OR over links.
	res.Blame = fuzzy.Not(orConf)
	res.BlameLo = fuzzy.Not(orWorst)
	if res.Degraded {
		// Partial or stale evidence: widen rather than convict. The
		// threshold must clear even under the assumption that every
		// unprobed link was broken.
		res.Guilty = res.BlameLo >= e.cfg.GuiltyThreshold
	} else {
		res.Guilty = res.Blame >= e.cfg.GuiltyThreshold
	}
	return res, nil
}

// RecomputeBlame re-derives the blame value from archived evidence — the
// verification third parties run before honoring an accusation (§3.4).
// It returns the blame implied by the evidence list alone.
func RecomputeBlame(evidence []LinkConfidence) float64 {
	confidences := make([]float64, len(evidence))
	for i, lc := range evidence {
		confidences[i] = lc.Confidence
	}
	return fuzzy.Not(fuzzy.Or(confidences...))
}
