package core

import (
	"math/rand/v2"
	"testing"

	"concilium/internal/id"
	"concilium/internal/sigcrypto"
)

func ledgerFixture(t *testing.T) (*StewardLedger, id.ID, id.ID, sigcrypto.KeyPair) {
	t.Helper()
	r := rand.New(rand.NewPCG(821, 823))
	owner := id.Random(r)
	dest := id.Random(r)
	destKeys := sigcrypto.KeyPairFromRand(r)
	return NewStewardLedger(owner), owner, dest, destKeys
}

func TestLedgerPendingOrder(t *testing.T) {
	t.Parallel()
	l, _, dest, _ := ledgerFixture(t)
	l.RecordSent(dest, 30, 300)
	l.RecordSent(dest, 10, 100)
	l.RecordSent(dest, 20, 200)
	got := l.Pending(dest)
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Errorf("Pending = %v, want oldest-first [10 20 30]", got)
	}
	if len(l.Pending(id.Zero)) != 0 {
		t.Error("unknown destination has pending messages")
	}
}

func TestLedgerDigestAckClearsExactly(t *testing.T) {
	t.Parallel()
	l, owner, dest, destKeys := ledgerFixture(t)
	for _, m := range []uint64{1, 2, 3, 4} {
		l.RecordSent(dest, m, 100)
	}
	ack, err := NewDigestAck(destKeys, owner, dest, 200, 4, []uint64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	cleared, err := l.ConsumeAck(dest, &ack, destKeys.Public)
	if err != nil {
		t.Fatal(err)
	}
	if len(cleared) != 2 || cleared[0] != 1 || cleared[1] != 3 {
		t.Errorf("cleared = %v, want [1 3]", cleared)
	}
	remaining := l.Pending(dest)
	if len(remaining) != 2 || remaining[0] != 2 || remaining[1] != 4 {
		t.Errorf("pending = %v, want [2 4]", remaining)
	}
	// The survivors are exactly what needs blame after the timeout.
	need := l.NeedsBlame(dest, 150)
	if len(need) != 2 || need[0] != 2 || need[1] != 4 {
		t.Errorf("NeedsBlame = %v, want [2 4]", need)
	}
}

func TestLedgerCounterAckSemantics(t *testing.T) {
	t.Parallel()
	l, owner, dest, destKeys := ledgerFixture(t)
	l.RecordSent(dest, 1, 100)
	l.RecordSent(dest, 2, 100)

	// Lossless counter ack clears the whole span.
	clean, err := NewCounterAck(destKeys, owner, dest, 200, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	cleared, err := l.ConsumeAck(dest, &clean, destKeys.Public)
	if err != nil {
		t.Fatal(err)
	}
	if len(cleared) != 2 {
		t.Errorf("lossless counter cleared %v", cleared)
	}

	// Lossy counter ack clears nothing: the steward cannot tell which
	// message died.
	l.RecordSent(dest, 3, 300)
	l.RecordSent(dest, 4, 300)
	lossy, err := NewCounterAck(destKeys, owner, dest, 400, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	cleared, err = l.ConsumeAck(dest, &lossy, destKeys.Public)
	if err != nil {
		t.Fatal(err)
	}
	if len(cleared) != 0 {
		t.Errorf("lossy counter cleared %v, want nothing", cleared)
	}
	if got := l.NeedsBlame(dest, 300); len(got) != 2 {
		t.Errorf("NeedsBlame = %v, want both messages", got)
	}
}

func TestLedgerRejectsBadAcks(t *testing.T) {
	t.Parallel()
	l, owner, dest, destKeys := ledgerFixture(t)
	r := rand.New(rand.NewPCG(827, 829))
	other := id.Random(r)
	otherKeys := sigcrypto.KeyPairFromRand(r)
	l.RecordSent(dest, 1, 100)

	if _, err := l.ConsumeAck(dest, nil, destKeys.Public); err == nil {
		t.Error("nil ack accepted")
	}
	// Forged signature.
	forged, err := NewCounterAck(otherKeys, owner, dest, 200, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.ConsumeAck(dest, &forged, destKeys.Public); err == nil {
		t.Error("forged ack accepted")
	}
	// Ack from a different recipient.
	misdirected, err := NewCounterAck(destKeys, owner, other, 200, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.ConsumeAck(dest, &misdirected, destKeys.Public); err == nil {
		t.Error("misdirected ack accepted")
	}
	// Ack covering someone else's traffic.
	wrongSender, err := NewCounterAck(destKeys, other, dest, 200, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.ConsumeAck(dest, &wrongSender, destKeys.Public); err == nil {
		t.Error("wrong-sender ack accepted")
	}
	// Nothing was cleared by any of the rejects.
	if got := l.Pending(dest); len(got) != 1 {
		t.Errorf("pending = %v after rejected acks", got)
	}
}

func TestLedgerNeedsBlameCutoff(t *testing.T) {
	t.Parallel()
	l, _, dest, _ := ledgerFixture(t)
	l.RecordSent(dest, 1, 100)
	l.RecordSent(dest, 2, 500)
	// Only the older message has timed out.
	got := l.NeedsBlame(dest, 250)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("NeedsBlame = %v, want [1]", got)
	}
}
