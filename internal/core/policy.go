package core

import (
	"fmt"
	"time"

	"concilium/internal/id"
	"concilium/internal/netsim"
)

// §3.7: Concilium identifies faults but is agnostic about the response.
// This file implements the sanctioning policies the paper sketches, with
// the one hard rule it insists on: when the overlay underpins a higher-
// level service such as a DHT, honest nodes must not make *local*
// decisions to evict accused nodes from leaf sets — inconsistent routing
// would break the service. Sanctions therefore distinguish "distrust for
// sensitive forwarding" (always safe) from "universal blacklist"
// (applied only at a network-wide accusation-rate threshold every honest
// node evaluates identically).

// Sanction is the action a policy prescribes for a peer.
type Sanction int

// Sanction levels, mildest first.
const (
	// SanctionNone: the peer is in good standing.
	SanctionNone Sanction = iota + 1
	// SanctionDistrust: keep routing through the peer (leaf-set
	// consistency!) but do not hand it sensitive messages and treat its
	// tomographic claims with extra suspicion.
	SanctionDistrust
	// SanctionBlacklist: the network-wide accusation rate crossed the
	// mandated threshold; every honest host refuses to peer with it.
	SanctionBlacklist
)

// String renders the sanction for reports.
func (s Sanction) String() string {
	switch s {
	case SanctionNone:
		return "none"
	case SanctionDistrust:
		return "distrust"
	case SanctionBlacklist:
		return "blacklist"
	default:
		return fmt.Sprintf("sanction(%d)", int(s))
	}
}

// PolicyConfig sets the thresholds.
type PolicyConfig struct {
	// DistrustAfter is the verified-accusation count that triggers
	// local distrust.
	DistrustAfter int
	// BlacklistRate is the accusations-per-window rate mandating
	// universal blacklisting.
	BlacklistRate int
	// RateWindow is the span over which BlacklistRate is evaluated.
	RateWindow time.Duration
}

// DefaultPolicyConfig distrusts on the first verified accusation and
// blacklists at three accusations within an hour.
func DefaultPolicyConfig() PolicyConfig {
	return PolicyConfig{DistrustAfter: 1, BlacklistRate: 3, RateWindow: time.Hour}
}

// Validate reports the first invalid field.
func (c PolicyConfig) Validate() error {
	switch {
	case c.DistrustAfter < 1:
		return fmt.Errorf("core: DistrustAfter %d must be at least 1", c.DistrustAfter)
	case c.BlacklistRate < 1:
		return fmt.Errorf("core: BlacklistRate %d must be at least 1", c.BlacklistRate)
	case c.RateWindow <= 0:
		return fmt.Errorf("core: RateWindow %v must be positive", c.RateWindow)
	}
	return nil
}

// AccusationFeed supplies the verified accusations on record against a
// peer, most recent first or in any order; only timestamps are used.
// The DHT repository provides this.
type AccusationFeed func(peer id.ID) ([]netsim.Time, error)

// Policy evaluates sanctions from the accusation record.
type Policy struct {
	cfg  PolicyConfig
	feed AccusationFeed
}

// NewPolicy builds a policy over an accusation feed.
func NewPolicy(cfg PolicyConfig, feed AccusationFeed) (*Policy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if feed == nil {
		return nil, fmt.Errorf("core: policy requires an accusation feed")
	}
	return &Policy{cfg: cfg, feed: feed}, nil
}

// Evaluate returns the sanction for peer as of now. Because every
// honest host reads the same DHT record and applies the same
// thresholds, blacklisting is globally consistent — the property §3.7
// requires before eviction is safe.
func (p *Policy) Evaluate(peer id.ID, now netsim.Time) (Sanction, error) {
	times, err := p.feed(peer)
	if err != nil {
		return SanctionNone, fmt.Errorf("core: policy feed: %w", err)
	}
	if len(times) == 0 {
		return SanctionNone, nil
	}
	var inWindow int
	cutoff := now.Add(-p.cfg.RateWindow)
	for _, t := range times {
		if t >= cutoff && t <= now {
			inWindow++
		}
	}
	switch {
	case inWindow >= p.cfg.BlacklistRate:
		return SanctionBlacklist, nil
	case len(times) >= p.cfg.DistrustAfter:
		return SanctionDistrust, nil
	default:
		return SanctionNone, nil
	}
}

// MayEvictFromLeafSet encodes the paper's consistency rule: only a
// universally applied blacklist justifies removing a peer from routing
// state; local distrust never does.
func MayEvictFromLeafSet(s Sanction) bool { return s == SanctionBlacklist }

// MayForwardSensitive reports whether the peer may carry messages that
// need Concilium's protection.
func MayForwardSensitive(s Sanction) bool { return s == SanctionNone }
