package core

import (
	"testing"

	"concilium/internal/id"
	"concilium/internal/netsim"
)

func TestWindowConfigValidate(t *testing.T) {
	t.Parallel()
	if err := DefaultWindowConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []WindowConfig{{W: 0, M: 1}, {W: 10, M: 0}, {W: 10, M: 11}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
	if _, err := NewVerdictWindow(WindowConfig{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestVerdictWindowThreshold(t *testing.T) {
	t.Parallel()
	vw, err := NewVerdictWindow(WindowConfig{W: 5, M: 3})
	if err != nil {
		t.Fatal(err)
	}
	peer := id.MustParse("00000000000000000000000000000001")
	add := func(guilty bool) bool {
		return vw.Add(Verdict{Judged: peer, Guilty: guilty})
	}
	if add(true) || add(true) {
		t.Error("accused before reaching M")
	}
	if !add(true) {
		t.Error("not accused at M guilty verdicts")
	}
	if vw.GuiltyCount(peer) != 3 {
		t.Errorf("GuiltyCount = %d", vw.GuiltyCount(peer))
	}
}

func TestVerdictWindowEviction(t *testing.T) {
	t.Parallel()
	vw, err := NewVerdictWindow(WindowConfig{W: 3, M: 2})
	if err != nil {
		t.Fatal(err)
	}
	peer := id.MustParse("00000000000000000000000000000002")
	// guilty, guilty -> trips.
	vw.Add(Verdict{Judged: peer, Guilty: true})
	if !vw.Add(Verdict{Judged: peer, Guilty: true}) {
		t.Fatal("did not trip at M=2")
	}
	// One innocent still leaves two guilty verdicts in the window.
	if !vw.Add(Verdict{Judged: peer, Guilty: false}) {
		t.Error("window [g,g,i] should still meet M=2")
	}
	// Two more innocents evict both guilty verdicts.
	for i := 0; i < 2; i++ {
		if vw.Add(Verdict{Judged: peer, Guilty: false}) {
			t.Error("tripped after guilty verdicts were evicted")
		}
	}
	if vw.GuiltyCount(peer) != 0 {
		t.Errorf("GuiltyCount = %d after eviction", vw.GuiltyCount(peer))
	}
}

func TestVerdictWindowPerPeerIsolation(t *testing.T) {
	t.Parallel()
	vw, err := NewVerdictWindow(WindowConfig{W: 10, M: 2})
	if err != nil {
		t.Fatal(err)
	}
	a := id.MustParse("000000000000000000000000000000aa")
	b := id.MustParse("000000000000000000000000000000bb")
	vw.Add(Verdict{Judged: a, Guilty: true})
	if vw.Add(Verdict{Judged: b, Guilty: true}) {
		t.Error("verdicts leaked across peers")
	}
	if vw.GuiltyCount(a) != 1 || vw.GuiltyCount(b) != 1 {
		t.Error("per-peer counts wrong")
	}
}

func TestVerdictWindowRecent(t *testing.T) {
	t.Parallel()
	vw, err := NewVerdictWindow(WindowConfig{W: 3, M: 3})
	if err != nil {
		t.Fatal(err)
	}
	peer := id.MustParse("000000000000000000000000000000cc")
	for i := 0; i < 5; i++ {
		vw.Add(Verdict{Judged: peer, At: netsim.Time(i), Guilty: i%2 == 0})
	}
	recent := vw.Recent(peer)
	if len(recent) != 3 {
		t.Fatalf("Recent len = %d", len(recent))
	}
	// Should hold verdicts 2, 3, 4 in order.
	for i, v := range recent {
		if v.At != netsim.Time(i+2) {
			t.Errorf("recent[%d].At = %v, want %d", i, v.At, i+2)
		}
	}
	if vw.Recent(id.Zero) != nil {
		t.Error("unknown peer has verdicts")
	}
}

func TestAccusationErrorRatesPaperAnchors(t *testing.T) {
	t.Parallel()
	// §4.3: with faithful probe reporting (p_good=1.8%, p_faulty=93.8%),
	// m=6 drives both error rates below 1% at w=100.
	fp, fn, err := AccusationErrorRates(WindowConfig{W: 100, M: 6}, 0.018, 0.938)
	if err != nil {
		t.Fatal(err)
	}
	if fp > 0.01 {
		t.Errorf("honest m=6 FP = %v, want <1%%", fp)
	}
	if fn > 0.01 {
		t.Errorf("honest m=6 FN = %v, want <1%%", fn)
	}
	// With 20% collusion (p_good=8.4%, p_faulty=71.3%), m=16 suffices.
	fp, fn, err = AccusationErrorRates(WindowConfig{W: 100, M: 16}, 0.084, 0.713)
	if err != nil {
		t.Fatal(err)
	}
	if fp > 0.01 {
		t.Errorf("collusion m=16 FP = %v, want <1%%", fp)
	}
	if fn > 0.01 {
		t.Errorf("collusion m=16 FN = %v, want <1%%", fn)
	}
	// But m=6 under collusion has too many false positives.
	fp, _, err = AccusationErrorRates(WindowConfig{W: 100, M: 6}, 0.084, 0.713)
	if err != nil {
		t.Fatal(err)
	}
	if fp < 0.05 {
		t.Errorf("collusion m=6 FP = %v, expected substantial", fp)
	}
}

func TestMinimalMMatchesPaper(t *testing.T) {
	t.Parallel()
	m, err := MinimalM(100, 0.018, 0.938, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if m < 5 || m > 7 {
		t.Errorf("honest minimal m = %d, paper says 6", m)
	}
	m, err = MinimalM(100, 0.084, 0.713, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if m < 14 || m > 18 {
		t.Errorf("collusion minimal m = %d, paper says 16", m)
	}
	// Impossible targets error out.
	if _, err := MinimalM(10, 0.5, 0.5, 0.001); err == nil {
		t.Error("unachievable target accepted")
	}
	if _, err := MinimalM(0, 0.1, 0.9, 0.01); err == nil {
		t.Error("w=0 accepted")
	}
	if _, err := MinimalM(100, 0.1, 0.9, 0); err == nil {
		t.Error("target=0 accepted")
	}
}

func TestAccusationErrorRatesMonotoneInM(t *testing.T) {
	t.Parallel()
	prevFP, prevFN := 1.0, 0.0
	for m := 1; m <= 30; m++ {
		fp, fn, err := AccusationErrorRates(WindowConfig{W: 100, M: m}, 0.05, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		if fp > prevFP+1e-12 {
			t.Fatalf("FP not decreasing at m=%d", m)
		}
		if fn < prevFN-1e-12 {
			t.Fatalf("FN not increasing at m=%d", m)
		}
		prevFP, prevFN = fp, fn
	}
	if _, _, err := AccusationErrorRates(WindowConfig{W: 100, M: 6}, -0.1, 0.9); err == nil {
		t.Error("negative probability accepted")
	}
}

func BenchmarkVerdictWindowAdd(b *testing.B) {
	vw, err := NewVerdictWindow(DefaultWindowConfig())
	if err != nil {
		b.Fatal(err)
	}
	peer := id.MustParse("00000000000000000000000000000009")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		vw.Add(Verdict{Judged: peer, Guilty: i%7 == 0})
	}
}

var sinkF float64

func BenchmarkAccusationErrorRates(b *testing.B) {
	cfg := WindowConfig{W: 100, M: 16}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fp, fn, err := AccusationErrorRates(cfg, 0.084, 0.713)
		if err != nil {
			b.Fatal(err)
		}
		sinkF = fp + fn
	}
}
