// Package parexec is the deterministic parallel execution layer under
// Concilium's experiment harness. Monte Carlo trials, density-grid
// cells, and sweep points are embarrassingly parallel, but naive
// parallelization over a shared random source makes results depend on
// goroutine scheduling. This package removes that dependence with two
// pieces:
//
//   - Seed: a root seed from which per-trial PCG substreams are derived
//     as a pure function of (root, trial index). Trial i consumes the
//     same random stream no matter which worker runs it, or how many
//     workers exist — including workers=1 — so experiment outputs are
//     bit-identical across worker counts.
//
//   - ForEach / MapTrials: a bounded worker pool over an index space.
//     Work units write results into index-addressed slots; callers
//     reduce those slots serially in index order, which keeps
//     floating-point accumulation order fixed.
//
// The contract callers must uphold: a work unit may depend only on its
// index (and the substream derived for it), never on execution order or
// on state mutated by other units.
package parexec

import (
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"

	"concilium/internal/profiling"
)

// Seed is a root seed for a family of independent random substreams.
// The zero value is a valid (if unexciting) seed.
type Seed struct {
	Hi, Lo uint64
}

// NewSeed builds a seed from two words.
func NewSeed(hi, lo uint64) Seed { return Seed{Hi: hi, Lo: lo} }

// SeedFrom draws a root seed from an existing random source. Experiments
// that already thread a seeded *rand.Rand call this once, serially, so
// the derived substream family is itself a deterministic function of the
// experiment seed.
func SeedFrom(src interface{ Uint64() uint64 }) Seed {
	return Seed{Hi: src.Uint64(), Lo: src.Uint64()}
}

// splitmix64 is the SplitMix64 finalizer — a bijective mixer used to
// derive well-separated child seeds from (root, index) pairs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Sub derives the i-th child seed. Children are pure functions of
// (receiver, i): nested structures (a sweep point that itself runs
// trials) derive a child per point and stream per trial under it.
func (s Seed) Sub(i uint64) Seed {
	return Seed{
		Hi: splitmix64(s.Hi ^ splitmix64(i)),
		Lo: splitmix64(s.Lo ^ splitmix64(i^0xd1b54a32d192ed03)),
	}
}

// Stream returns the i-th PCG substream. Streams for distinct indices
// are statistically independent; the same (seed, i) always yields an
// identical generator.
func (s Seed) Stream(i uint64) *rand.Rand {
	sub := s.Sub(i)
	return rand.New(rand.NewPCG(sub.Hi, sub.Lo))
}

// Workers resolves a configured worker count: values <= 0 select
// runtime.GOMAXPROCS(0), anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) across at most workers
// goroutines (workers <= 0 selects GOMAXPROCS). Indices are claimed in
// ascending order. Every index runs even when some fail, so the
// returned error — the one with the lowest index — does not depend on
// scheduling. With workers=1 (or n=1) fn runs inline on the caller's
// goroutine.
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachWorker(workers, n, "", func(_, i int) error { return fn(i) })
}

// ForEachWorker is ForEach with two extensions for callers that keep
// per-worker scratch state or profile the pool:
//
//   - fn receives the worker index (in [0, resolved workers)) alongside
//     the claimed work index, so callers can address pre-allocated
//     per-worker scratch without locking. The worker→index assignment
//     is scheduling-dependent; determinism still requires fn's output
//     to depend only on i (scratch must be fully overwritten per unit).
//   - A non-empty label attaches pprof goroutine labels
//     (parexec_phase=label, parexec_worker=w) for the worker's
//     lifetime, so CPU profiles attribute samples per phase and worker.
//     The empty label adds no labels and no overhead.
func ForEachWorker(workers, n int, label string, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		var first error
		run := func() {
			for i := 0; i < n; i++ {
				if err := fn(0, i); err != nil && first == nil {
					first = err
				}
			}
		}
		if label != "" {
			profiling.WorkerLabel(label, 0, run)
		} else {
			run()
		}
		return first
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			loop := func() {
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					errs[i] = fn(w, i)
				}
			}
			if label != "" {
				profiling.WorkerLabel(label, w, loop)
			} else {
				loop()
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// MapTrials runs trials independent work units, each on its own
// substream derived from seed, and returns the results indexed by
// trial. Because trial i's randomness comes only from seed.Stream(i),
// the result slice is bit-identical for every worker count.
func MapTrials[T any](workers, trials int, seed Seed, fn func(trial int, rng *rand.Rand) (T, error)) ([]T, error) {
	out := make([]T, max(trials, 0))
	err := ForEachWorker(workers, trials, "trials", func(_, i int) error {
		v, err := fn(i, seed.Stream(uint64(i)))
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
