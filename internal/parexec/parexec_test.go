package parexec

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestStreamDeterminism(t *testing.T) {
	t.Parallel()
	seed := NewSeed(42, 43)
	for trial := uint64(0); trial < 8; trial++ {
		a, b := seed.Stream(trial), seed.Stream(trial)
		for i := 0; i < 64; i++ {
			if x, y := a.Uint64(), b.Uint64(); x != y {
				t.Fatalf("trial %d draw %d: %x != %x", trial, i, x, y)
			}
		}
	}
}

func TestStreamsIndependent(t *testing.T) {
	t.Parallel()
	seed := NewSeed(7, 9)
	// Distinct trials must not share a stream; distinct roots must not
	// share trial 0; child seeds must not collide.
	if seed.Stream(0).Uint64() == seed.Stream(1).Uint64() {
		t.Error("trial 0 and 1 start identically")
	}
	if seed.Stream(0).Uint64() == NewSeed(7, 10).Stream(0).Uint64() {
		t.Error("different roots share trial 0")
	}
	if seed.Sub(3) == seed.Sub(4) {
		t.Error("child seeds collide")
	}
}

func TestSeedFromIsDeterministic(t *testing.T) {
	t.Parallel()
	a := SeedFrom(rand.New(rand.NewPCG(5, 6)))
	b := SeedFrom(rand.New(rand.NewPCG(5, 6)))
	if a != b {
		t.Errorf("same source, different seeds: %+v vs %+v", a, b)
	}
}

// trialWork is a representative work unit: variable-length consumption
// of the substream, so any cross-trial stream sharing would corrupt
// results.
func trialWork(trial int, rng *rand.Rand) (float64, error) {
	var s float64
	for i := 0; i <= trial%13; i++ {
		s += rng.Float64()
	}
	return s, nil
}

func TestMapTrialsWorkerInvariance(t *testing.T) {
	t.Parallel()
	seed := NewSeed(55, 77)
	base, err := MapTrials(1, 150, seed, trialWork)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 150 {
		t.Fatalf("len = %d", len(base))
	}
	for _, workers := range []int{2, 4, 9, 64} {
		got, err := MapTrials(workers, 150, seed, trialWork)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d differs from workers=1", workers)
		}
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	t.Parallel()
	for _, workers := range []int{1, 3, 8, 100} {
		hit := make([]atomic.Int32, 57)
		if err := ForEach(workers, 57, func(i int) error {
			hit[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hit {
			if got := hit[i].Load(); got != 1 {
				t.Fatalf("workers=%d index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	t.Parallel()
	for _, workers := range []int{1, 4, 16} {
		err := ForEach(workers, 40, func(i int) error {
			if i%7 == 5 { // fails at 5, 12, 19, ...
				return fmt.Errorf("unit %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "unit 5 failed" {
			t.Errorf("workers=%d: err = %v, want unit 5", workers, err)
		}
	}
}

func TestForEachEmptyAndNegative(t *testing.T) {
	t.Parallel()
	called := false
	if err := ForEach(4, 0, func(int) error { called = true; return nil }); err != nil || called {
		t.Error("n=0 should be a no-op")
	}
	if err := ForEach(4, -3, func(int) error { called = true; return nil }); err != nil || called {
		t.Error("n<0 should be a no-op")
	}
}

func TestWorkersResolution(t *testing.T) {
	t.Parallel()
	if Workers(0) < 1 || Workers(-5) < 1 {
		t.Error("non-positive worker counts must resolve to >= 1")
	}
	if Workers(6) != 6 {
		t.Error("explicit worker counts must pass through")
	}
}

func TestMapTrialsPropagatesError(t *testing.T) {
	t.Parallel()
	sentinel := errors.New("boom")
	out, err := MapTrials(4, 10, NewSeed(1, 2), func(trial int, _ *rand.Rand) (int, error) {
		if trial == 3 {
			return 0, sentinel
		}
		return trial, nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v", err)
	}
	if out != nil {
		t.Error("results must be nil on error")
	}
}
