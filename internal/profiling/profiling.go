// Package profiling wraps runtime/pprof capture for the command-line
// tools: opt-in CPU and heap profiles written to user-chosen paths,
// plus the pprof goroutine labels the parallel execution layer attaches
// to its workers so -cpuprofile output attributes samples to a phase
// ("build-keygen", "build-routing", "trials", ...) and worker index.
package profiling

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
)

// WorkerLabel runs fn with pprof goroutine labels identifying the
// parexec phase and worker index. CPU-profile samples taken inside fn
// carry the labels, so `go tool pprof -tags` splits build-phase work
// from steady-state work per worker. The labels cost one context
// allocation per worker lifetime, not per work unit.
func WorkerLabel(phase string, worker int, fn func()) {
	labels := pprof.Labels("parexec_phase", phase, "parexec_worker", strconv.Itoa(worker))
	pprof.Do(context.Background(), labels, func(context.Context) { fn() })
}

// StartCPU begins CPU profiling into path and returns a stop function
// that finishes the profile and closes the file. An empty path is a
// no-op with a no-op stop.
func StartCPU(path string) (stop func() error, err error) {
	if path == "" {
		return func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("profiling: create cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("profiling: start cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeap writes an allocs-space heap profile to path after a final
// GC, so the snapshot reflects live-plus-freed allocation totals. An
// empty path is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("profiling: create mem profile: %w", err)
	}
	runtime.GC()
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		f.Close()
		return fmt.Errorf("profiling: write mem profile: %w", err)
	}
	return f.Close()
}
