// Package profiling wraps runtime/pprof capture for the command-line
// tools: opt-in CPU and heap profiles written to user-chosen paths.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins CPU profiling into path and returns a stop function
// that finishes the profile and closes the file. An empty path is a
// no-op with a no-op stop.
func StartCPU(path string) (stop func() error, err error) {
	if path == "" {
		return func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("profiling: create cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("profiling: start cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeap writes an allocs-space heap profile to path after a final
// GC, so the snapshot reflects live-plus-freed allocation totals. An
// empty path is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("profiling: create mem profile: %w", err)
	}
	runtime.GC()
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		f.Close()
		return fmt.Errorf("profiling: write mem profile: %w", err)
	}
	return f.Close()
}
