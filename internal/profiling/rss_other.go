//go:build !linux

package profiling

// PeakRSSBytes is unavailable on this platform; reports 0 so callers
// can omit the metric rather than fail.
func PeakRSSBytes() int64 { return 0 }
