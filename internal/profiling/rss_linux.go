//go:build linux

package profiling

import "syscall"

// PeakRSSBytes returns the process's high-water resident set size in
// bytes, from getrusage(2). The value is a process-lifetime maximum:
// it never decreases, so callers benchmarking several workloads in one
// process should run them in ascending memory order and treat each
// reading as "peak so far". Returns 0 if the kernel refuses the call.
func PeakRSSBytes() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	// Linux reports ru_maxrss in kilobytes.
	return ru.Maxrss * 1024
}
