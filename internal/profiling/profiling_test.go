package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartCPUWritesProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.pprof")
	stop, err := StartCPU(path)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to flush.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil || st.Size() == 0 {
		t.Fatalf("cpu profile missing or empty (err=%v)", err)
	}
}

func TestStartCPUEmptyPathIsNoop(t *testing.T) {
	stop, err := StartCPU("")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartCPUBadPath(t *testing.T) {
	if _, err := StartCPU(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu")); err == nil {
		t.Error("unwritable path accepted")
	}
}

func TestWriteHeap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mem.pprof")
	if err := WriteHeap(path); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil || st.Size() == 0 {
		t.Fatalf("heap profile missing or empty (err=%v)", err)
	}
	if err := WriteHeap(""); err != nil {
		t.Errorf("empty path not a no-op: %v", err)
	}
	if err := WriteHeap(filepath.Join(t.TempDir(), "no", "dir", "mem")); err == nil {
		t.Error("unwritable path accepted")
	}
}
