package wire

import (
	"math"
	"math/rand/v2"
	"testing"
	"time"

	"concilium/internal/core"
	"concilium/internal/id"
	"concilium/internal/netsim"
	"concilium/internal/sigcrypto"
	"concilium/internal/tomography"
	"concilium/internal/topology"
)

func TestAdvertBytes(t *testing.T) {
	t.Parallel()
	got, err := AdvertBytes(77)
	if err != nil {
		t.Fatal(err)
	}
	if got != 77*145 {
		t.Errorf("AdvertBytes(77) = %d", got)
	}
	if _, err := AdvertBytes(-1); err == nil {
		t.Error("negative entries accepted")
	}
}

func TestBudgetMatchesPaperSection44(t *testing.T) {
	t.Parallel()
	// §4.4: 100k-node overlay → ~77 routing entries, ~11.5 KB advert,
	// ~16.7 MB of outgoing heavyweight probe traffic (100 stripes of 2
	// 30-byte packets per ordered pair).
	rep, err := Budget(core.DefaultOccupancyModel(), 100000, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.RoutingEntries-77) > 3 {
		t.Errorf("routing entries = %v, paper says 77", rep.RoutingEntries)
	}
	if rep.AdvertBytes < 10500 || rep.AdvertBytes > 12500 {
		t.Errorf("advert = %v bytes, paper says ~11.5KB", rep.AdvertBytes)
	}
	if rep.HeavyweightMB < 15 || rep.HeavyweightMB > 19 {
		t.Errorf("heavyweight = %v MB, paper says ~16.7MB", rep.HeavyweightMB)
	}
}

func TestHeavyweightProbeBytes(t *testing.T) {
	t.Parallel()
	// 77 leaves → C(77,2)=2926 pairs ×100×2×30B = 17.556 MB.
	got, err := HeavyweightProbeBytes(77, 100, 2, 30)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2926*100*2*30 {
		t.Errorf("HeavyweightProbeBytes = %d", got)
	}
	// Degenerate trees cost nothing.
	got, err = HeavyweightProbeBytes(1, 100, 2, 30)
	if err != nil || got != 0 {
		t.Errorf("single leaf = %d, %v", got, err)
	}
	if _, err := HeavyweightProbeBytes(10, 0, 2, 30); err == nil {
		t.Error("zero stripes accepted")
	}
	if _, err := HeavyweightProbeBytes(-1, 1, 2, 30); err == nil {
		t.Error("negative leaves accepted")
	}
}

func TestProbePacketSize(t *testing.T) {
	t.Parallel()
	// §4.4: "each probe is 30 bytes long (28 bytes for IP+UDP headers
	// and 16 bits for a nonce)".
	if ProbePacketBytes != 30 {
		t.Errorf("ProbePacketBytes = %d, want 30", ProbePacketBytes)
	}
}

func TestSnapshotCodecRoundTrip(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(21, 22))
	kp := sigcrypto.KeyPairFromRand(r)
	nid := id.Random(r)
	peer := id.Random(r)
	snap := &core.Snapshot{
		Prober: nid,
		At:     netsim.Time(0).Add(5 * time.Minute),
		Observations: []tomography.LinkObservation{
			{Link: 3, Up: true}, {Link: 9, Up: false},
		},
		Entries: []core.AdvertEntry{
			{Peer: peer, Freshness: sigcrypto.NewTimestamp(kp, peer, 100)},
		},
		LeafSpacing: 1e30,
	}
	snap.Sign(kp)

	raw, err := EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSnapshot(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.Prober != snap.Prober || back.At != snap.At || len(back.Observations) != 2 {
		t.Errorf("round trip mangled snapshot: %+v", back)
	}
	// The signature must survive transit.
	if err := back.VerifySignature(kp.Public); err != nil {
		t.Errorf("signature broken by codec: %v", err)
	}
	if _, err := EncodeSnapshot(nil); err == nil {
		t.Error("nil snapshot encoded")
	}
	if _, err := DecodeSnapshot([]byte("junk")); err == nil {
		t.Error("junk decoded")
	}
}

func TestChainCodecRoundTrip(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(23, 24))
	accuser := id.Random(r)
	accused := id.Random(r)
	accuserKP := sigcrypto.KeyPairFromRand(r)
	accusedKP := sigcrypto.KeyPairFromRand(r)

	eng, err := core.NewBlameEngine(tomography.NewArchive(), core.DefaultBlameConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Blame(accused, []topology.LinkID{1}, 100)
	if err != nil {
		t.Fatal(err)
	}
	commit := core.NewCommitment(accusedKP, accuser, accused, id.Random(r), 9, 90)
	acc, err := core.NewAccusation(accuserKP, accuser, res, 9, []topology.LinkID{1}, commit)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := core.NewRevisionChain([]core.Accusation{acc})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := EncodeChain(chain)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeChain(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.Culprit() != accused {
		t.Error("culprit mangled")
	}
	keys := func(x id.ID) ([]byte, bool) { return nil, false }
	_ = keys
	if _, err := EncodeChain(nil); err == nil {
		t.Error("nil chain encoded")
	}
	if _, err := DecodeChain(nil); err == nil {
		t.Error("nil bytes decoded")
	}
}

func TestBudgetScalesWithOverlay(t *testing.T) {
	t.Parallel()
	m := core.DefaultOccupancyModel()
	small, err := Budget(m, 1000, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Budget(m, 100000, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if big.RoutingEntries <= small.RoutingEntries {
		t.Error("routing state should grow with overlay size")
	}
	if big.HeavyweightMB <= small.HeavyweightMB {
		t.Error("probe cost should grow with overlay size")
	}
	// Logarithmic growth: 100x overlay costs far less than 100x state.
	if big.RoutingEntries > 3*small.RoutingEntries {
		t.Errorf("routing state growth not logarithmic: %v -> %v",
			small.RoutingEntries, big.RoutingEntries)
	}
}
