// Package wire provides Concilium's bandwidth accounting (§4.4): the
// byte-exact arithmetic model the paper uses (PSS-R signatures over
// routing entries, one-byte path summaries, 30-byte striped probes) plus
// gob codecs for persisting the live protocol's records. The arithmetic
// model regenerates the paper's numbers — an ≈11.5 KB routing advert in
// a 100,000-node overlay and ≈16.7 MB of outgoing traffic for one
// heavyweight tree measurement.
package wire

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"concilium/internal/core"
	"concilium/internal/wiresize"
)

// Sizes from §4.4's accounting, re-exported from the dependency-free
// internal/wiresize so instrumented protocol layers (which cannot
// import this package without a cycle through core) share the same
// byte model.
const (
	// NodeIDBytes is the identifier length in a routing entry.
	NodeIDBytes = wiresize.NodeID
	// FreshnessTimestampBytes is the per-entry signed timestamp payload.
	FreshnessTimestampBytes = wiresize.FreshnessTimestamp
	// PSSREntryBytes is a routing entry (identifier + timestamp) signed
	// with PSS-R over a 1024-bit key: message recovery folds the 20
	// payload bytes into the 128-byte signature block, totalling 144.
	PSSREntryBytes = wiresize.PSSREntry
	// PathSummaryBytes encodes one path's probe results: "a few bits",
	// budgeted at one byte.
	PathSummaryBytes = wiresize.PathSummary
	// IPUDPHeaderBytes is the IP+UDP header overhead per probe.
	IPUDPHeaderBytes = wiresize.IPUDPHeader
	// ProbeNonceBytes is the 16-bit probe nonce.
	ProbeNonceBytes = wiresize.ProbeNonce
	// ProbePacketBytes is one striped unicast probe on the wire.
	ProbePacketBytes = wiresize.ProbePacket
	// LeafSetEntries is the leaf count added to μφ for total routing
	// state size.
	LeafSetEntries = wiresize.LeafSetEntries
)

// AdvertBytes returns the size of a full signed routing-state
// advertisement with the given number of entries: each entry costs the
// PSS-R block plus its path summary.
func AdvertBytes(entries int) (int, error) {
	if entries < 0 {
		return 0, fmt.Errorf("wire: negative entry count %d", entries)
	}
	return entries * (PSSREntryBytes + PathSummaryBytes), nil
}

// ExpectedRoutingEntries returns the paper's estimate of local routing
// state size for an overlay of n nodes: μφ occupied jump-table slots
// plus the 16 leaves.
func ExpectedRoutingEntries(model core.OccupancyModel, n int) (float64, error) {
	mu, err := model.ExpectedOccupancy(n)
	if err != nil {
		return 0, err
	}
	return mu + LeafSetEntries, nil
}

// HeavyweightProbeBytes returns the outgoing traffic for one full
// striped-unicast measurement of a tree (§4.4):
//
//	C(leaves, 2) · stripesPerPair · packetsPerStripe · packetBytes
func HeavyweightProbeBytes(leaves, stripesPerPair, packetsPerStripe, packetBytes int) (int64, error) {
	if leaves < 0 || stripesPerPair <= 0 || packetsPerStripe <= 0 || packetBytes <= 0 {
		return 0, fmt.Errorf("wire: invalid probe accounting (%d leaves, %d stripes, %d pkts, %d bytes)",
			leaves, stripesPerPair, packetsPerStripe, packetBytes)
	}
	pairs := int64(leaves) * int64(leaves-1) / 2
	return pairs * int64(stripesPerPair) * int64(packetsPerStripe) * int64(packetBytes), nil
}

// BandwidthReport is the §4.4 table for one overlay size.
type BandwidthReport struct {
	OverlayN         int
	RoutingEntries   float64
	AdvertBytes      float64
	HeavyweightMB    float64
	StripesPerPair   int
	PacketsPerStripe int
}

// Budget computes the full bandwidth table for an overlay of n nodes
// with the given heavyweight parameters.
func Budget(model core.OccupancyModel, n, stripesPerPair, packetsPerStripe int) (BandwidthReport, error) {
	entries, err := ExpectedRoutingEntries(model, n)
	if err != nil {
		return BandwidthReport{}, err
	}
	advert := entries * (PSSREntryBytes + PathSummaryBytes)
	hw, err := HeavyweightProbeBytes(int(entries+0.5), stripesPerPair, packetsPerStripe, ProbePacketBytes)
	if err != nil {
		return BandwidthReport{}, err
	}
	return BandwidthReport{
		OverlayN:         n,
		RoutingEntries:   entries,
		AdvertBytes:      advert,
		HeavyweightMB:    float64(hw) / 1e6,
		StripesPerPair:   stripesPerPair,
		PacketsPerStripe: packetsPerStripe,
	}, nil
}

// EncodeSnapshot serializes a snapshot for storage or transfer.
func EncodeSnapshot(s *core.Snapshot) ([]byte, error) {
	if s == nil {
		return nil, fmt.Errorf("wire: nil snapshot")
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("wire: encode snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeSnapshot reverses EncodeSnapshot.
func DecodeSnapshot(raw []byte) (*core.Snapshot, error) {
	var s core.Snapshot
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&s); err != nil {
		return nil, fmt.Errorf("wire: decode snapshot: %w", err)
	}
	return &s, nil
}

// EncodeChain serializes an amended accusation chain.
func EncodeChain(c *core.RevisionChain) ([]byte, error) {
	if c == nil {
		return nil, fmt.Errorf("wire: nil chain")
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c); err != nil {
		return nil, fmt.Errorf("wire: encode chain: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeChain reverses EncodeChain.
func DecodeChain(raw []byte) (*core.RevisionChain, error) {
	var c core.RevisionChain
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&c); err != nil {
		return nil, fmt.Errorf("wire: decode chain: %w", err)
	}
	return &c, nil
}
