package chaos

import (
	"crypto/ed25519"
	"fmt"
	"math/rand/v2"
	"time"

	"concilium/internal/core"
	"concilium/internal/dht"
	"concilium/internal/id"
	"concilium/internal/metrics"
	"concilium/internal/parexec"
)

// Campaign is one running chaos campaign: the system under test, the
// accusation DHT beside it, the derived random substreams, and the
// accumulating report.
type Campaign struct {
	cfg   Config
	sys   *core.System
	store *dht.Store
	repo  *dht.AccusationRepo

	// keyDir outlives churn: verifying a chain signed by a node that
	// later crashed requires its public key, so keys are snapshotted at
	// issue time and never removed.
	keyDir map[id.ID]ed25519.PublicKey

	sched   *rand.Rand // fault-schedule substream
	traffic *rand.Rand // traffic substream

	// reg collects the campaign's metric series; the report keeps only
	// the canonical (deterministic) part, so Report stays a pure
	// function of the seed at every worker count.
	reg *metrics.Registry

	rep       Report
	published map[id.ID]int // culprit -> chains successfully published
	departed  map[id.ID]bool
	stale     bool // inside the evidence-staleness episode
	dtest     core.DensityTest
}

// Run executes a campaign and returns its report. Panics anywhere in
// the campaign are caught and recorded as a failed no-panic invariant
// rather than crashing the caller — the campaign's own first contract.
func Run(cfg Config) (*Report, error) {
	c, err := newCampaign(cfg)
	if err != nil {
		return nil, err
	}
	return c.runRecovering()
}

// RootSeed derives the chaos campaign's substream family from an
// experiment seed. The XOR constant ("concilms") namespaces chaos
// streams away from other campaign engines sharing the same seed —
// the adversary package uses a different constant, so one experiment
// seed can drive both without any stream replaying.
func RootSeed(seed uint64) parexec.Seed {
	return parexec.NewSeed(seed, seed^0x636f6e63696c6d73)
}

func newCampaign(cfg Config) (*Campaign, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.System.Workers = cfg.Workers

	// Independent substreams: the system's event randomness, the fault
	// schedule, and traffic pair selection never perturb each other, so
	// episodes can be reordered or resized without rewriting history.
	root := RootSeed(cfg.Seed)
	reg := metrics.NewRegistry()
	cfg.System.Metrics = reg
	sys, err := core.BuildSystem(cfg.System, root.Stream(0))
	if err != nil {
		return nil, err
	}
	store, err := dht.New(sys.Ring, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	store.SetMetrics(reg)

	// Adversary knob: mark the tail of the deterministic order as
	// probabilistic droppers. BuildSystem marks MaliciousFraction at the
	// head, so the two sets are disjoint; SetBehavior draws no
	// randomness, so a zero fraction leaves every substream — and the
	// report — exactly as before the knob existed.
	marked := 0
	if cfg.AdversaryFraction > 0 {
		marked = int(cfg.AdversaryFraction*float64(len(sys.Order)) + 0.5)
		if marked < 1 {
			marked = 1
		}
		for _, nid := range sys.Order[len(sys.Order)-marked:] {
			if err := sys.SetBehavior(nid, core.Behavior{DropProb: cfg.AdversaryDropProb}); err != nil {
				return nil, err
			}
		}
	}

	c := &Campaign{
		cfg:       cfg,
		sys:       sys,
		store:     store,
		reg:       reg,
		keyDir:    make(map[id.ID]ed25519.PublicKey, len(sys.Order)),
		sched:     root.Stream(1),
		traffic:   root.Stream(2),
		published: make(map[id.ID]int),
		departed:  make(map[id.ID]bool),
	}
	for _, nid := range sys.Order {
		c.keyDir[nid] = sys.Nodes[nid].Keys.Public
	}
	keys := func(x id.ID) (ed25519.PublicKey, bool) {
		k, ok := c.keyDir[x]
		return k, ok
	}
	c.repo, err = dht.NewAccusationRepo(store, keys, cfg.System.Blame.GuiltyThreshold)
	if err != nil {
		return nil, err
	}
	c.repo.SetMetrics(reg)
	c.dtest, err = core.NewDensityTest(2.0)
	if err != nil {
		return nil, err
	}
	c.rep.Seed = cfg.Seed
	c.rep.Nodes = len(sys.Order)
	c.rep.AdversaryMarked = marked
	return c, nil
}

func (c *Campaign) runRecovering() (rep *Report, err error) {
	defer func() {
		if p := recover(); p != nil {
			c.rep.addInvariant("no-panic", false, fmt.Sprintf("panic: %v", p))
			rep, err = &c.rep, nil
		}
	}()
	if err := c.run(); err != nil {
		return nil, err
	}
	c.rep.addInvariant("no-panic", true, "")
	return &c.rep, nil
}

func (c *Campaign) run() error {
	s := c.sys
	if err := s.StartFailures(); err != nil {
		return err
	}
	if err := s.StartProbing(); err != nil {
		return err
	}
	s.Run(c.cfg.Warmup)

	if err := c.phaseBaseline(); err != nil {
		return err
	}
	if err := c.phaseProbeLoss(); err != nil {
		return err
	}
	if err := c.phaseSilentLeaves(); err != nil {
		return err
	}
	if err := c.phaseReplicaOutage(); err != nil {
		return err
	}
	if err := c.phaseStaleEvidence(); err != nil {
		return err
	}
	if err := c.phaseChurn(); err != nil {
		return err
	}
	c.finish()
	return nil
}

// phaseBaseline routes traffic with only the background link-failure
// process active — the control the fault episodes are compared to.
func (c *Campaign) phaseBaseline() error {
	c.rep.FaultKinds = append(c.rep.FaultKinds, "link-failures")
	return c.sendTraffic("baseline", c.cfg.MessagesPerPhase)
}

// phaseProbeLoss eats whole probe sweeps at random, thinning the
// evidence archive without emptying it.
func (c *Campaign) phaseProbeLoss() error {
	c.rep.FaultKinds = append(c.rep.FaultKinds, "probe-loss")
	if err := c.sys.SetProbeLoss(c.cfg.ProbeLoss); err != nil {
		return err
	}
	c.sys.Run(time.Minute)
	if err := c.sendTraffic("probe-loss", c.cfg.MessagesPerPhase); err != nil {
		return err
	}
	return c.sys.SetProbeLoss(0)
}

// phaseSilentLeaves silences a scheduled set of tomography leaves —
// nodes that stay in the overlay but stop reporting.
func (c *Campaign) phaseSilentLeaves() error {
	c.rep.FaultKinds = append(c.rep.FaultKinds, "leaf-silence")
	n := c.cfg.SilentLeaves
	if n > len(c.sys.Order) {
		n = len(c.sys.Order)
	}
	silenced := make([]id.ID, 0, n)
	for len(silenced) < n {
		cand := c.sys.Order[c.sched.IntN(len(c.sys.Order))]
		dup := false
		for _, x := range silenced {
			dup = dup || x == cand
		}
		if dup {
			continue
		}
		silenced = append(silenced, cand)
		if err := c.sys.SetNodeSilent(cand, true); err != nil {
			return err
		}
	}
	c.sys.Run(time.Minute)
	if err := c.sendTraffic("leaf-silence", c.cfg.MessagesPerPhase); err != nil {
		return err
	}
	for _, nid := range silenced {
		if err := c.sys.SetNodeSilent(nid, false); err != nil {
			return err
		}
	}
	return nil
}

// phaseReplicaOutage takes ReplicaOutage DHT members down (below the
// per-key quorum bound), routes traffic whose convictions publish into
// the degraded store, then repairs them.
func (c *Campaign) phaseReplicaOutage() error {
	c.rep.FaultKinds = append(c.rep.FaultKinds, "dht-outage")
	faulty := make([]id.ID, 0, c.cfg.ReplicaOutage)
	for len(faulty) < c.cfg.ReplicaOutage && len(faulty) < len(c.sys.Order) {
		cand := c.sys.Order[c.sched.IntN(len(c.sys.Order))]
		dup := false
		for _, x := range faulty {
			dup = dup || x == cand
		}
		if dup {
			continue
		}
		faulty = append(faulty, cand)
		if err := c.store.SetFaulty(cand, true); err != nil {
			return err
		}
	}
	if err := c.sendTraffic("dht-outage", c.cfg.MessagesPerPhase); err != nil {
		return err
	}
	for _, nid := range faulty {
		if err := c.store.SetFaulty(nid, false); err != nil {
			return err
		}
	}
	return c.sendTraffic("dht-repaired", c.cfg.MessagesPerPhase/2+1)
}

// phaseStaleEvidence pauses all probe publication for well past Δ, so
// sends see an admissibility window with nothing in it. The contract:
// blame must degrade to widened-uncertainty verdicts, never convict.
func (c *Campaign) phaseStaleEvidence() error {
	c.rep.FaultKinds = append(c.rep.FaultKinds, "stale-evidence")
	delta := c.sys.Config.Blame.Delta
	c.sys.SuppressProbes(true)
	c.sys.Run(2*delta + delta/2)
	c.stale = true
	if err := c.sendTraffic("stale-evidence", c.cfg.MessagesPerPhase); err != nil {
		return err
	}
	c.stale = false
	c.sys.SuppressProbes(false)
	c.sys.Run(2 * delta)
	return nil
}

// phaseChurn interleaves crashes and joins with in-flight traffic:
// each round schedules a departure to fire inside the first message's
// forward pass, rebalances the accusation store onto the new ring, and
// revalidates every survivor's routing state.
func (c *Campaign) phaseChurn() error {
	c.rep.FaultKinds = append(c.rep.FaultKinds, "churn")
	s := c.sys
	for r := 0; r < c.cfg.ChurnRounds; r++ {
		if len(s.Order) > 6 {
			victim := s.Order[c.sched.IntN(len(s.Order))]
			err := s.Sim.ScheduleAfter(150*time.Millisecond, func() {
				if len(s.Order) <= 5 {
					return
				}
				if err := s.FailNode(victim); err != nil {
					return
				}
				c.departed[victim] = true
				// The crashed machine takes its replica data with it.
				_ = c.store.SetFaulty(victim, true)
				if err := c.store.Rebalance(s.Ring); err != nil {
					c.rep.RebalanceErrors++
				}
			})
			if err != nil {
				return err
			}
		}
		if err := c.sendTraffic("churn", c.cfg.MessagesPerPhase/2+1); err != nil {
			return err
		}
		c.checkRouting()
		if r%2 == 1 {
			hosts := s.Topo.EndHosts()
			nid, err := s.JoinNode(hosts[c.sched.IntN(len(hosts))])
			if err != nil {
				return err
			}
			c.keyDir[nid] = s.Nodes[nid].Keys.Public
			if err := c.store.Rebalance(s.Ring); err != nil {
				c.rep.RebalanceErrors++
			}
			c.checkRouting()
		}
		s.Run(time.Minute)
	}
	return nil
}

// sendTraffic routes n stewarded messages between pairs drawn from the
// traffic substream, tallying outcomes and publishing any accusation
// chains into the DHT.
func (c *Campaign) sendTraffic(phase string, n int) error {
	for i := 0; i < n; i++ {
		order := c.sys.Order
		src := order[c.traffic.IntN(len(order))]
		dst := order[c.traffic.IntN(len(order))]
		rep, err := c.sys.SendMessage(src, dst)
		if err != nil {
			return fmt.Errorf("chaos: %s message %d: %w", phase, i, err)
		}
		c.tally(rep)
		c.sys.Run(c.cfg.Pace)
	}
	return nil
}

func (c *Campaign) tally(rep *core.DeliveryReport) {
	c.rep.Sent++
	if rep.Delivered && rep.AckReceived {
		c.rep.Delivered++
	}
	switch rep.Kind {
	case core.DropByNode:
		c.rep.NodeDrops++
	case core.DropByLink:
		c.rep.LinkDrops++
	case core.DropAckByLink:
		c.rep.AckDrops++
	case core.DropByChurn:
		c.rep.ChurnDrops++
	}
	if len(rep.Verdicts) > 0 {
		c.rep.Diagnosed++
	}
	if c.stale {
		c.rep.StaleSends++
	}
	if rep.NetworkBlamed {
		c.rep.NetworkBlamed++
	}
	if rep.Culprit == (id.ID{}) {
		return
	}
	c.rep.Convictions++
	if c.stale {
		c.rep.StaleConvictions++
	}
	if node, live := c.sys.Nodes[rep.Culprit]; live {
		if node.Behavior.Honest() {
			c.rep.HonestConvictions++
		}
	} else {
		// A departed node convicted for a drop its crash caused: not a
		// protocol false positive, tracked separately.
		c.rep.DepartedConvictions++
	}
	if rep.Chain == nil {
		return
	}
	if err := c.repo.Publish(rep.Chain); err != nil {
		c.rep.PublishErrors++
		return
	}
	c.published[rep.Culprit]++
	c.rep.ChainsPublished++
	if !c.store.KeyHealth(rep.Culprit).Quorum() {
		c.rep.PutQuorumLost++
	}
}

// checkRouting verifies every survivor's overlay state after a churn
// event: peers resolve to live nodes, jump tables are structurally
// valid, and the §3.1 density test holds between neighbors.
func (c *Campaign) checkRouting() {
	s := c.sys
	for _, nid := range s.Order {
		n := s.Nodes[nid]
		if err := n.Routing.Secure.Validate(); err != nil {
			c.rep.RoutingViolations++
			continue
		}
		local := float64(n.Routing.Secure.Occupancy())
		for _, p := range n.Routing.RoutingPeers() {
			pn, ok := s.Nodes[p]
			if !ok {
				c.rep.RoutingViolations++
				continue
			}
			if !c.dtest.Check(local, float64(pn.Routing.Secure.Occupancy())) {
				c.rep.DensityViolations++
			}
		}
	}
}

// finish evaluates the campaign invariants in a fixed order.
func (c *Campaign) finish() {
	r := &c.rep
	r.Counters = c.sys.Counters
	r.Injector = c.sys.Injector.Stats()
	r.InjectorTarget = c.sys.Injector.Target()
	r.InjectorDeficit = c.sys.Injector.Deficit()
	r.DownLinks = c.sys.Net.DownCount()
	r.FinalNodes = len(c.sys.Order)
	// Canonical only: wall-clock series would break the report's
	// seed-determinism contract.
	r.Metrics = c.reg.Snapshot().Canonical()

	r.addInvariant("fault-kinds>=4", len(r.FaultKinds) >= 4,
		fmt.Sprintf("%d kinds composed", len(r.FaultKinds)))

	r.addInvariant("routing-valid-after-churn", r.RoutingViolations == 0,
		fmt.Sprintf("%d violations", r.RoutingViolations))
	r.addInvariant("density-test-after-churn", r.DensityViolations == 0,
		fmt.Sprintf("%d violations", r.DensityViolations))

	// Honest false convictions stay under the fuzzy guilty threshold as
	// a rate over all diagnosed drops.
	threshold := c.cfg.System.Blame.GuiltyThreshold
	rate := 0.0
	if r.Diagnosed > 0 {
		rate = float64(r.HonestConvictions) / float64(r.Diagnosed)
	}
	r.addInvariant("honest-conviction-rate", rate < threshold,
		fmt.Sprintf("%d/%d = %.3f vs threshold %.2f", r.HonestConvictions, r.Diagnosed, rate, threshold))

	// Evidence staleness must widen uncertainty, never convict.
	r.addInvariant("stale-evidence-never-convicts", r.StaleConvictions == 0,
		fmt.Sprintf("%d convictions in %d stale sends", r.StaleConvictions, r.StaleSends))

	// Writes under partial outage always landed on a quorum.
	r.addInvariant("dht-write-quorum", r.PublishErrors == 0 && r.PutQuorumLost == 0,
		fmt.Sprintf("%d publish errors, %d sub-quorum writes", r.PublishErrors, r.PutQuorumLost))

	// Every chain ever published is still fetchable and verifiable,
	// through outages, churn, and rebalances.
	durable := true
	detail := ""
	for _, culprit := range sortedIDs(c.published) {
		chains, _, err := c.repo.FetchChecked(culprit)
		if err != nil {
			durable = false
			detail = fmt.Sprintf("fetch %s: %v", culprit.Short(), err)
			continue
		}
		r.ChainsFetched += len(chains)
		if len(chains) < c.published[culprit] {
			durable = false
			detail = fmt.Sprintf("%s: %d of %d chains survive", culprit.Short(), len(chains), c.published[culprit])
		}
	}
	if detail == "" {
		detail = fmt.Sprintf("%d published, %d fetched", r.ChainsPublished, r.ChainsFetched)
	}
	r.addInvariant("accusation-durability", durable, detail)

	r.addInvariant("rebalance-clean", r.RebalanceErrors == 0,
		fmt.Sprintf("%d errors", r.RebalanceErrors))

	// The failure injector's saturation accounting balances: links down
	// plus the owed deficit equals the configured target.
	balanced := r.DownLinks+r.InjectorDeficit == r.InjectorTarget
	r.addInvariant("injector-accounting", balanced,
		fmt.Sprintf("%d down + %d deficit vs target %d", r.DownLinks, r.InjectorDeficit, r.InjectorTarget))

	// The hardened hot paths surfaced no swallowed errors.
	clean := r.Counters.ArchiveRecordErrors == 0 && r.Counters.ProbeRescheduleErrors == 0 &&
		r.Injector.SetLinkErrors == 0 && r.Injector.ScheduleErrors == 0
	r.addInvariant("no-swallowed-errors", clean,
		fmt.Sprintf("archive=%d resched=%d setlink=%d sched=%d",
			r.Counters.ArchiveRecordErrors, r.Counters.ProbeRescheduleErrors,
			r.Injector.SetLinkErrors, r.Injector.ScheduleErrors))
}
