// Package chaos is Concilium's fault-injection campaign engine. A
// campaign builds a full simulated deployment, then composes fault
// kinds the steady-state experiments never mix — random probe-packet
// loss, tomography leaves going silent, DHT replica outages, evidence
// archives aging past the §3.4 admissibility window Δ, and node
// crash/join churn interleaved with in-flight messages — on top of the
// baseline link-failure process. While the faults run, the campaign
// drives stewarded traffic and checks the degradation contracts of
// every layer: diagnosis must widen its uncertainty rather than
// convict on missing evidence, replication must never lose a published
// accusation while outages stay below quorum, routing state must stay
// valid through churn, and nothing may panic.
//
// Campaigns are deterministic: a root seed derives independent PCG
// substreams (system, fault schedule, traffic) via parexec, and the
// worker count only parallelizes randomness-free construction, so the
// same seed reproduces the same report bit for bit at any -workers.
package chaos

import (
	"fmt"
	"math"
	"time"

	"concilium/internal/core"
	"concilium/internal/topology"
)

// Config parameterizes one chaos campaign.
type Config struct {
	// Seed is the campaign's root seed; every random decision derives
	// from it.
	Seed uint64
	// Workers sizes the construction worker pool (<= 0 selects
	// GOMAXPROCS). Reports are identical for every value.
	Workers int
	// System configures the deployment under test.
	System core.SystemConfig
	// Replicas is the DHT replica-set size for the accusation store.
	Replicas int
	// ReplicaOutage is the number of concurrently faulty DHT members
	// during the outage episode. Keeping it at or below
	// (Replicas-1)/2 preserves per-key quorum, which is what makes the
	// durability invariant checkable.
	ReplicaOutage int
	// MessagesPerPhase is the stewarded-traffic volume each fault
	// episode routes.
	MessagesPerPhase int
	// ChurnRounds is the number of crash/join rounds in the churn
	// episode.
	ChurnRounds int
	// ProbeLoss is the sweep-loss probability during the probe-loss
	// episode.
	ProbeLoss float64
	// SilentLeaves is how many nodes stop publishing probes during the
	// leaf-silence episode.
	SilentLeaves int
	// AdversaryFraction marks this share of the overlay (taken from the
	// tail of the deterministic node order, disjoint from the
	// MaliciousFraction head that BuildSystem marks) as Byzantine
	// probabilistic droppers for the whole campaign. The marking uses
	// SetBehavior and consumes no randomness, so 0 reproduces the exact
	// pre-knob campaign byte for byte. For full attack strategies and
	// conviction ROCs, hand the config to adversary.FromChaos instead.
	AdversaryFraction float64
	// AdversaryDropProb is the marked droppers' per-forward drop
	// probability; required in (0,1) when AdversaryFraction > 0.
	AdversaryDropProb float64
	// Warmup is the probing time before any fault or traffic.
	Warmup time.Duration
	// Pace is the virtual time between consecutive messages.
	Pace time.Duration
}

// ShortConfig is the CI smoke campaign: a small overlay, one episode
// of each fault kind, a few churn rounds. Runs in a few seconds.
func ShortConfig(seed uint64) Config {
	sys := core.DefaultSystemConfig()
	sys.Topology = topology.TestConfig()
	sys.OverlayFraction = 0.5
	sys.MaliciousFraction = 0.1
	sys.ArchiveRetention = 5 * time.Minute
	sys.MaxProbeTime = time.Minute
	// Slow hops give churn events a mid-flight window to land in.
	sys.HopLatency = 200 * time.Millisecond
	// The degraded-verdict contract needs an evidence floor: without
	// it, an emptied admissibility window convicts (the paper's Eq. 2
	// on zero evidence), and the staleness episode could not be told
	// apart from real guilt.
	sys.Blame.MinProbesPerLink = 1
	return Config{
		Seed:             seed,
		System:           sys,
		Replicas:         5,
		ReplicaOutage:    2,
		MessagesPerPhase: 10,
		ChurnRounds:      4,
		ProbeLoss:        0.4,
		SilentLeaves:     3,
		Warmup:           3 * time.Minute,
		Pace:             2 * time.Second,
	}
}

// LongConfig is the soak variant: same faults, more traffic and churn.
func LongConfig(seed uint64) Config {
	cfg := ShortConfig(seed)
	cfg.MessagesPerPhase = 30
	cfg.ChurnRounds = 10
	cfg.Warmup = 5 * time.Minute
	return cfg
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	if err := c.System.Validate(); err != nil {
		return err
	}
	switch {
	case c.Replicas < 3:
		return fmt.Errorf("chaos: %d replicas cannot tolerate an outage", c.Replicas)
	case c.ReplicaOutage < 1 || c.ReplicaOutage > (c.Replicas-1)/2:
		return fmt.Errorf("chaos: replica outage %d outside [1, %d] (quorum bound for %d replicas)",
			c.ReplicaOutage, (c.Replicas-1)/2, c.Replicas)
	case c.MessagesPerPhase <= 0:
		return fmt.Errorf("chaos: messages per phase %d must be positive", c.MessagesPerPhase)
	case c.ChurnRounds < 0:
		return fmt.Errorf("chaos: churn rounds %d negative", c.ChurnRounds)
	case c.ProbeLoss <= 0 || c.ProbeLoss >= 1 || math.IsNaN(c.ProbeLoss):
		return fmt.Errorf("chaos: probe loss %v out of (0,1)", c.ProbeLoss)
	case c.SilentLeaves <= 0:
		return fmt.Errorf("chaos: silent leaves %d must be positive", c.SilentLeaves)
	case c.AdversaryFraction < 0 || c.AdversaryFraction > 0.4 || math.IsNaN(c.AdversaryFraction):
		return fmt.Errorf("chaos: adversary fraction %v out of [0, 0.4]", c.AdversaryFraction)
	case c.AdversaryFraction > 0 && (c.AdversaryDropProb <= 0 || c.AdversaryDropProb >= 1 || math.IsNaN(c.AdversaryDropProb)):
		return fmt.Errorf("chaos: adversary drop probability %v out of (0,1)", c.AdversaryDropProb)
	case c.AdversaryFraction+c.System.MaliciousFraction > 0.5:
		return fmt.Errorf("chaos: adversary fraction %v plus malicious fraction %v exceeds 0.5 (honest majority lost)",
			c.AdversaryFraction, c.System.MaliciousFraction)
	case c.Warmup <= 0 || c.Pace <= 0:
		return fmt.Errorf("chaos: warmup %v and pace %v must be positive", c.Warmup, c.Pace)
	case c.System.Blame.MinProbesPerLink < 1:
		return fmt.Errorf("chaos: campaign requires Blame.MinProbesPerLink >= 1 for the degraded-verdict contract")
	}
	return nil
}
