package chaos

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"concilium/internal/core"
	"concilium/internal/id"
	"concilium/internal/metrics"
	"concilium/internal/netsim"
)

// Invariant is one checked degradation contract.
type Invariant struct {
	Name   string
	OK     bool
	Detail string
}

// Report is the deterministic outcome of a campaign: identical for the
// same seed at every worker count.
type Report struct {
	Seed       uint64
	Nodes      int
	FinalNodes int
	FaultKinds []string

	// AdversaryMarked is how many tail nodes the AdversaryFraction knob
	// marked as droppers; 0 when the knob is off.
	AdversaryMarked int

	Sent, Delivered                            int
	NodeDrops, LinkDrops, AckDrops, ChurnDrops int
	Diagnosed, Convictions, NetworkBlamed      int
	HonestConvictions, DepartedConvictions     int
	StaleSends, StaleConvictions               int
	ChainsPublished, ChainsFetched             int
	PublishErrors, PutQuorumLost               int
	RoutingViolations, DensityViolations       int
	RebalanceErrors                            int
	DownLinks, InjectorTarget, InjectorDeficit int

	Counters core.SystemCounters
	Injector netsim.InjectorStats

	// Metrics is the campaign's canonical metrics snapshot — the
	// wall-clock series are stripped, so the field is a pure function of
	// the seed like the rest of the report.
	Metrics metrics.Snapshot

	Invariants []Invariant
}

func (r *Report) addInvariant(name string, ok bool, detail string) {
	r.Invariants = append(r.Invariants, Invariant{Name: name, OK: ok, Detail: detail})
}

// Passed reports whether every invariant held.
func (r *Report) Passed() bool {
	if len(r.Invariants) == 0 {
		return false
	}
	for _, inv := range r.Invariants {
		if !inv.OK {
			return false
		}
	}
	return true
}

// String renders the report. The output is a pure function of the
// campaign seed — reproduction instructions live in DESIGN.md §7.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos campaign seed=%d\n", r.Seed)
	fmt.Fprintf(&b, "overlay: %d nodes at start, %d after churn\n", r.Nodes, r.FinalNodes)
	fmt.Fprintf(&b, "fault kinds: %s\n", strings.Join(r.FaultKinds, ", "))
	// Rendered only when the knob is on, so reports from knobless
	// configs stay byte-identical to the pre-knob engine.
	if r.AdversaryMarked > 0 {
		fmt.Fprintf(&b, "adversaries: %d tail droppers marked\n", r.AdversaryMarked)
	}
	fmt.Fprintf(&b, "traffic: %d sent, %d delivered+acked\n", r.Sent, r.Delivered)
	fmt.Fprintf(&b, "drops: %d node, %d link, %d ack, %d churn\n",
		r.NodeDrops, r.LinkDrops, r.AckDrops, r.ChurnDrops)
	fmt.Fprintf(&b, "diagnosis: %d diagnosed, %d convictions (%d honest, %d departed), %d network-blamed\n",
		r.Diagnosed, r.Convictions, r.HonestConvictions, r.DepartedConvictions, r.NetworkBlamed)
	fmt.Fprintf(&b, "stale episode: %d sends, %d convictions\n", r.StaleSends, r.StaleConvictions)
	fmt.Fprintf(&b, "accusations: %d published, %d fetched, %d publish errors, %d sub-quorum writes\n",
		r.ChainsPublished, r.ChainsFetched, r.PublishErrors, r.PutQuorumLost)
	fmt.Fprintf(&b, "degradation counters: probes lost=%d suppressed=%d, ghost probes stopped=%d, churn drops=%d, chains unavailable=%d\n",
		r.Counters.ProbesLost, r.Counters.ProbesSuppressed, r.Counters.GhostProbesStopped,
		r.Counters.ChurnDrops, r.Counters.ChainsUnavailable)
	fmt.Fprintf(&b, "injector: target=%d down=%d deficit=%d reinjected=%d saturated-skips=%d\n",
		r.InjectorTarget, r.DownLinks, r.InjectorDeficit, r.Injector.Reinjected, r.Injector.SaturatedSkips)
	fmt.Fprintf(&b, "metrics: %d counters, %d gauges, %d histograms (canonical); wire bytes: msg=%d ack=%d probe=%d accusation=%d\n",
		len(r.Metrics.Counters), len(r.Metrics.Gauges), len(r.Metrics.Histograms),
		r.Metrics.Counters["wire/message_bytes"], r.Metrics.Counters["wire/ack_bytes"],
		r.Metrics.Counters["wire/probe_bytes"], r.Metrics.Counters["wire/accusation_bytes"])
	fmt.Fprintf(&b, "invariants:\n")
	for _, inv := range r.Invariants {
		status := "ok"
		if !inv.OK {
			status = "FAIL"
		}
		if inv.Detail != "" {
			fmt.Fprintf(&b, "  [%s] %-28s %s\n", status, inv.Name, inv.Detail)
		} else {
			fmt.Fprintf(&b, "  [%s] %s\n", status, inv.Name)
		}
	}
	if r.Passed() {
		fmt.Fprintf(&b, "result: PASS\n")
	} else {
		fmt.Fprintf(&b, "result: FAIL\n")
	}
	return b.String()
}

// sortedIDs returns m's keys in identifier order, for deterministic
// iteration.
func sortedIDs(m map[id.ID]int) []id.ID {
	out := make([]id.ID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i][:], out[j][:]) < 0 })
	return out
}
