package chaos

import (
	"strings"
	"testing"

	"concilium/internal/metrics"
)

func TestConfigValidate(t *testing.T) {
	t.Parallel()
	if err := ShortConfig(1).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := LongConfig(1).Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Replicas = 2 },
		func(c *Config) { c.ReplicaOutage = 0 },
		// 3 concurrent outages of 5 replicas can leave a key below
		// quorum; the config must refuse it.
		func(c *Config) { c.ReplicaOutage = 3 },
		func(c *Config) { c.MessagesPerPhase = 0 },
		func(c *Config) { c.ChurnRounds = -1 },
		func(c *Config) { c.ProbeLoss = 0 },
		func(c *Config) { c.ProbeLoss = 1 },
		func(c *Config) { c.SilentLeaves = 0 },
		func(c *Config) { c.Warmup = 0 },
		func(c *Config) { c.Pace = 0 },
		func(c *Config) { c.System.Blame.MinProbesPerLink = 0 },
		func(c *Config) { c.System.OverlayFraction = 0 },
		func(c *Config) { c.AdversaryFraction = 0.5 },
		func(c *Config) { c.AdversaryFraction = -0.1 },
		// Knob on without a drop probability is underspecified.
		func(c *Config) { c.AdversaryFraction = 0.1; c.AdversaryDropProb = 0 },
		func(c *Config) { c.AdversaryFraction = 0.1; c.AdversaryDropProb = 1 },
		// Head malicious + tail adversaries together must keep an honest
		// majority.
		func(c *Config) {
			c.AdversaryFraction = 0.4
			c.AdversaryDropProb = 0.5
			c.System.MaliciousFraction = 0.2
		},
	}
	for i, mutate := range mutations {
		cfg := ShortConfig(1)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestCampaignInvariantsHold(t *testing.T) {
	t.Parallel()
	rep, err := Run(ShortConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("invariants failed:\n%s", rep)
	}
	// The campaign must genuinely compose fault kinds, not just list
	// them: each episode leaves observable tracks.
	if len(rep.FaultKinds) < 4 {
		t.Errorf("only %d fault kinds composed", len(rep.FaultKinds))
	}
	if rep.Counters.ProbesLost == 0 {
		t.Error("probe-loss episode ate no sweeps")
	}
	if rep.Counters.ProbesSuppressed == 0 {
		t.Error("silence/staleness episodes suppressed no sweeps")
	}
	if rep.StaleSends == 0 {
		t.Error("stale-evidence episode routed no traffic")
	}
	if rep.FinalNodes == rep.Nodes {
		t.Error("churn episode changed no membership")
	}
	if rep.Counters.GhostProbesStopped == 0 {
		t.Error("departed nodes' probe loops were not stopped")
	}
	if rep.Sent == 0 || rep.Diagnosed == 0 {
		t.Errorf("campaign routed %d messages, diagnosed %d", rep.Sent, rep.Diagnosed)
	}
	if rep.ChainsPublished == 0 {
		t.Error("no accusation chains published; durability invariant was vacuous")
	}
}

func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	t.Parallel()
	render := func(workers int) string {
		cfg := ShortConfig(9)
		cfg.Workers = workers
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep.String()
	}
	w1 := render(1)
	w1again := render(1)
	w4 := render(4)
	w16 := render(16)
	if w1 != w1again {
		t.Errorf("same seed, same workers, different reports:\n%s\nvs\n%s", w1, w1again)
	}
	if w1 != w4 {
		t.Errorf("workers=1 vs workers=4 reports differ:\n%s\nvs\n%s", w1, w4)
	}
	if w1 != w16 {
		t.Errorf("workers=1 vs workers=16 reports differ:\n%s\nvs\n%s", w1, w16)
	}
}

func TestCampaignSeedChangesOutcome(t *testing.T) {
	t.Parallel()
	a, err := Run(ShortConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(ShortConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if a.String() == b.String() {
		t.Error("different seeds produced identical campaigns")
	}
}

func TestCampaignAdversaryKnob(t *testing.T) {
	t.Parallel()
	cfg := ShortConfig(5)
	cfg.AdversaryFraction = 0.1
	cfg.AdversaryDropProb = 0.5
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AdversaryMarked == 0 {
		t.Error("knob on but no tail droppers marked")
	}
	if !strings.Contains(rep.String(), "adversaries:") {
		t.Errorf("marked droppers missing from report:\n%s", rep)
	}
	// The marking draws no randomness, so the knobless campaign at the
	// same seed must reproduce the exact pre-knob report — including the
	// absence of the adversary line.
	base, err := Run(ShortConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if base.AdversaryMarked != 0 || strings.Contains(base.String(), "adversaries:") {
		t.Errorf("knobless campaign reports adversaries:\n%s", base)
	}
	if rep.String() == base.String() {
		t.Error("marked droppers left no observable trace in the campaign")
	}
}

func TestReportRendering(t *testing.T) {
	t.Parallel()
	var r Report
	if r.Passed() {
		t.Error("report with no invariants counted as passed")
	}
	r.addInvariant("a", true, "fine")
	if !r.Passed() {
		t.Error("all-ok invariants not passed")
	}
	r.addInvariant("b", false, "broke")
	if r.Passed() {
		t.Error("failed invariant ignored")
	}
	s := r.String()
	if !strings.Contains(s, "[FAIL] b") || !strings.Contains(s, "result: FAIL") {
		t.Errorf("failure not rendered:\n%s", s)
	}
}

func TestCampaignMetricsSnapshot(t *testing.T) {
	t.Parallel()
	rep, err := Run(ShortConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	// The snapshot must be canonical: wall-clock series are stripped so
	// the report stays deterministic for a fixed seed.
	for _, names := range [][]string{
		rep.Metrics.CounterNames(), rep.Metrics.GaugeNames(), rep.Metrics.HistogramNames(),
	} {
		for _, name := range names {
			if metrics.NonDeterministic(name) {
				t.Errorf("non-deterministic series %q in campaign metrics", name)
			}
		}
	}
	// Every instrumented subsystem must have left tracks.
	for _, c := range []string{
		"core/messages_sent", "core/probe_sweeps", "wire/message_bytes",
		"wire/ack_bytes", "netsim/link_failures", "netsim/packets_delivered",
		"dht/puts", "dht/chains_published", "wire/accusation_bytes",
		"tomography/archive_records",
	} {
		if rep.Metrics.Counters[c] == 0 {
			t.Errorf("counter %q is zero after a full campaign", c)
		}
	}
	if rep.Metrics.Gauges["netsim/links_down_highwater"] == 0 {
		t.Error("link-failure highwater gauge never set")
	}
	if rep.Metrics.Histograms["core/accusation_chain_len"].Count == 0 && rep.Metrics.Histograms["core/probe_rtt_ns"].Count == 0 {
		t.Errorf("no histogram observations recorded: %v", rep.Metrics.HistogramNames())
	}
	// Cross-check: the metrics agree with the report's own counters.
	if got := rep.Metrics.Counters["core/messages_sent"]; got != uint64(rep.Sent) {
		t.Errorf("core/messages_sent = %d, report.Sent = %d", got, rep.Sent)
	}
	if got := rep.Metrics.Counters["dht/chains_published"]; got != uint64(rep.ChainsPublished) {
		t.Errorf("dht/chains_published = %d, report.ChainsPublished = %d", got, rep.ChainsPublished)
	}
}
