package baseline

import (
	"math/rand/v2"
	"testing"

	"concilium/internal/id"
	"concilium/internal/netsim"
	"concilium/internal/topology"
)

// triangle builds three members meeting at a shared hub plus direct
// pairwise links, so every pair has a direct path and a one-hop detour.
//
//	m0 --l0-- m1, m1 --l1-- m2, m0 --l2-- m2
func triangle(t *testing.T) (*netsim.Network, []id.ID, map[id.ID]map[id.ID][]topology.LinkID) {
	t.Helper()
	g, err := topology.NewGraph(3)
	if err != nil {
		t.Fatal(err)
	}
	l01, _ := g.AddLink(0, 1)
	l12, _ := g.AddLink(1, 2)
	l02, _ := g.AddLink(0, 2)
	net, err := netsim.NewNetwork(g, netsim.NewSimulator(), rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewPCG(3, 4))
	m := []id.ID{id.Random(r), id.Random(r), id.Random(r)}
	paths := map[id.ID]map[id.ID][]topology.LinkID{
		m[0]: {m[1]: {l01}, m[2]: {l02}},
		m[1]: {m[0]: {l01}, m[2]: {l12}},
		m[2]: {m[0]: {l02}, m[1]: {l12}},
	}
	return net, m, paths
}

func TestRONValidation(t *testing.T) {
	t.Parallel()
	net, m, paths := triangle(t)
	if _, err := New(nil, m, paths); err == nil {
		t.Error("nil network accepted")
	}
	if _, err := New(net, m[:1], paths); err == nil {
		t.Error("single member accepted")
	}
	if _, err := New(net, m, nil); err == nil {
		t.Error("nil paths accepted")
	}
}

func TestRONDiagnoseHealthyPath(t *testing.T) {
	t.Parallel()
	net, m, paths := triangle(t)
	ron, err := New(net, m, paths)
	if err != nil {
		t.Fatal(err)
	}
	d := ron.Diagnose(m[0], m[1])
	if d.PathBad {
		t.Error("healthy path diagnosed bad")
	}
	// The key limitation: when the path is healthy but the transfer
	// failed (a misbehaving host), RON has nothing to say.
	if ron.BlamesNode() {
		t.Error("RON should never blame a node")
	}
}

func TestRONDetoursAroundFailure(t *testing.T) {
	t.Parallel()
	net, m, paths := triangle(t)
	ron, err := New(net, m, paths)
	if err != nil {
		t.Fatal(err)
	}
	// Fail the direct m0-m1 link.
	if err := net.SetLinkDown(0, true); err != nil {
		t.Fatal(err)
	}
	d := ron.Diagnose(m[0], m[1])
	if !d.PathBad {
		t.Fatal("down path diagnosed healthy")
	}
	if !d.DetourFound || d.Detour != m[2] {
		t.Errorf("detour = %v found=%v, want via m2", d.Detour.Short(), d.DetourFound)
	}
}

func TestRONNoDetourWhenIsolated(t *testing.T) {
	t.Parallel()
	net, m, paths := triangle(t)
	ron, err := New(net, m, paths)
	if err != nil {
		t.Fatal(err)
	}
	// Cut m0 off entirely.
	if err := net.SetLinkDown(0, true); err != nil {
		t.Fatal(err)
	}
	if err := net.SetLinkDown(2, true); err != nil {
		t.Fatal(err)
	}
	d := ron.Diagnose(m[0], m[1])
	if !d.PathBad || d.DetourFound {
		t.Errorf("isolated diagnosis = %+v", d)
	}
	// Unknown pairs are simply unusable.
	r := rand.New(rand.NewPCG(5, 6))
	if ron.PathUsable(id.Random(r), m[0]) {
		t.Error("unknown pair reported usable")
	}
}
