// Package baseline implements the RON-style comparator the paper
// contrasts with (§5): resilient overlay networks actively probe the
// paths between gateways, detect outages, and route around them — but
// they always ascribe blame to the network. A misbehaving RON node is
// indistinguishable from a broken path and must be removed by a human
// operator. Concilium's benchmarks use this package to quantify what the
// blame-attribution machinery adds.
package baseline

import (
	"fmt"

	"concilium/internal/id"
	"concilium/internal/netsim"
	"concilium/internal/topology"
)

// Diagnosis is RON's verdict for a failed transfer. It has exactly one
// value carrying information: the network did it.
type Diagnosis struct {
	// PathBad reports that RON's probing saw the path as unusable.
	PathBad bool
	// Detour is an alternate one-intermediate route, when one exists.
	Detour id.ID
	// DetourFound reports whether any detour worked.
	DetourFound bool
}

// RON monitors the O(N²) paths among a set of member gateways and
// offers one-hop detours when the direct path fails.
type RON struct {
	net     *netsim.Network
	members []id.ID
	paths   map[id.ID]map[id.ID][]topology.LinkID
}

// New creates a RON over the given members. paths[src][dst] is the IP
// link path between each member pair; missing entries mean the pair
// cannot communicate directly.
func New(net *netsim.Network, members []id.ID, paths map[id.ID]map[id.ID][]topology.LinkID) (*RON, error) {
	if net == nil {
		return nil, fmt.Errorf("baseline: nil network")
	}
	if len(members) < 2 {
		return nil, fmt.Errorf("baseline: RON needs at least 2 members, got %d", len(members))
	}
	if paths == nil {
		return nil, fmt.Errorf("baseline: nil path matrix")
	}
	return &RON{net: net, members: append([]id.ID(nil), members...), paths: paths}, nil
}

// PathUsable actively probes the direct path between two members.
func (r *RON) PathUsable(src, dst id.ID) bool {
	path, ok := r.pathBetween(src, dst)
	if !ok {
		return false
	}
	return r.net.PathUp(path)
}

func (r *RON) pathBetween(src, dst id.ID) ([]topology.LinkID, bool) {
	row, ok := r.paths[src]
	if !ok {
		return nil, false
	}
	p, ok := row[dst]
	return p, ok
}

// Diagnose is RON's response to a failed transfer from src to dst: probe
// the direct path, and if it is bad, look for a one-intermediate detour.
// Note what is absent: no node is ever blamed. If the direct path probes
// healthy (the drop was a misbehaving host), RON reports PathBad=false
// and has nothing further to say — the forwarder escapes.
func (r *RON) Diagnose(src, dst id.ID) Diagnosis {
	d := Diagnosis{PathBad: !r.PathUsable(src, dst)}
	if !d.PathBad {
		return d
	}
	for _, mid := range r.members {
		if mid == src || mid == dst {
			continue
		}
		if r.PathUsable(src, mid) && r.PathUsable(mid, dst) {
			d.Detour = mid
			d.DetourFound = true
			return d
		}
	}
	return d
}

// BlamesNode reports whether RON ever attributes a fault to an overlay
// node. It exists so comparison harnesses read as prose: RON's answer is
// always false, by design.
func (r *RON) BlamesNode() bool { return false }
