// Package id implements the overlay identifier space used by Concilium's
// secure Pastry substrate.
//
// Identifiers are 128-bit values interpreted as ℓ = 32 digits in base
// v = 16, matching the parameters the paper calls "typical" (§3.1).
// The package provides the prefix arithmetic used by jump tables, the
// ring arithmetic used by leaf sets, and the "target point" construction
// used by secure routing-table constraints.
package id

import (
	"encoding/hex"
	"fmt"
	"math/bits"
)

const (
	// Bytes is the identifier length in bytes.
	Bytes = 16
	// Digits is ℓ, the number of base-v digits in an identifier.
	Digits = 32
	// Base is v, the radix of each digit.
	Base = 16
	// BitsPerDigit is log2(Base).
	BitsPerDigit = 4
)

// ID is a 128-bit overlay identifier. IDs are values; they are comparable
// with == and usable as map keys.
type ID [Bytes]byte

// Zero is the all-zero identifier.
var Zero ID

// Max is the all-ones identifier, the numerically largest point on the ring.
var Max = ID{
	0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
	0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
}

// FromBytes builds an ID from a 16-byte slice.
func FromBytes(b []byte) (ID, error) {
	var out ID
	if len(b) != Bytes {
		return out, fmt.Errorf("id: need %d bytes, got %d", Bytes, len(b))
	}
	copy(out[:], b)
	return out, nil
}

// Parse decodes a 32-character hexadecimal identifier.
func Parse(s string) (ID, error) {
	var out ID
	if len(s) != Digits {
		return out, fmt.Errorf("id: need %d hex digits, got %d", Digits, len(s))
	}
	raw, err := hex.DecodeString(s)
	if err != nil {
		return out, fmt.Errorf("id: parse %q: %w", s, err)
	}
	copy(out[:], raw)
	return out, nil
}

// MustParse is Parse for test fixtures and constants; it panics on error.
func MustParse(s string) ID {
	v, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return v
}

// String renders the identifier as 32 lowercase hex digits.
func (a ID) String() string { return hex.EncodeToString(a[:]) }

// Short renders the first 8 digits, for logs.
func (a ID) Short() string { return hex.EncodeToString(a[:4]) }

// Digit returns the i-th base-16 digit, with digit 0 being the most
// significant. It panics if i is outside [0, Digits).
func (a ID) Digit(i int) byte {
	if i < 0 || i >= Digits {
		panic(fmt.Sprintf("id: digit index %d out of range", i))
	}
	b := a[i/2]
	if i%2 == 0 {
		return b >> 4
	}
	return b & 0x0f
}

// WithDigit returns a copy of the identifier with digit i replaced by d.
// Secure Pastry uses this to build the "target point" p for jump-table
// slot (i, j): the local identifier with its i-th digit set to j (§2).
func (a ID) WithDigit(i int, d byte) ID {
	if i < 0 || i >= Digits {
		panic(fmt.Sprintf("id: digit index %d out of range", i))
	}
	if d >= Base {
		panic(fmt.Sprintf("id: digit value %d out of range", d))
	}
	out := a
	if i%2 == 0 {
		out[i/2] = (out[i/2] & 0x0f) | (d << 4)
	} else {
		out[i/2] = (out[i/2] & 0xf0) | d
	}
	return out
}

// CommonPrefixLen returns the number of leading base-16 digits shared by
// a and b. Identical identifiers share all Digits digits.
func CommonPrefixLen(a, b ID) int {
	for i := 0; i < Bytes; i++ {
		x := a[i] ^ b[i]
		if x == 0 {
			continue
		}
		if x&0xf0 != 0 {
			return 2 * i
		}
		return 2*i + 1
	}
	return Digits
}

// Cmp compares a and b as 128-bit big-endian unsigned integers, returning
// -1, 0, or +1.
func Cmp(a, b ID) int {
	for i := 0; i < Bytes; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// Less reports whether a < b numerically.
func Less(a, b ID) bool { return Cmp(a, b) < 0 }

// uint128 is a helper for ring arithmetic.
type uint128 struct{ hi, lo uint64 }

func toU128(a ID) uint128 {
	var u uint128
	for i := 0; i < 8; i++ {
		u.hi = u.hi<<8 | uint64(a[i])
		u.lo = u.lo<<8 | uint64(a[i+8])
	}
	return u
}

func fromU128(u uint128) ID {
	var a ID
	for i := 7; i >= 0; i-- {
		a[i] = byte(u.hi)
		a[i+8] = byte(u.lo)
		u.hi >>= 8
		u.lo >>= 8
	}
	return a
}

func subU128(a, b uint128) uint128 {
	lo, borrow := bits.Sub64(a.lo, b.lo, 0)
	hi, _ := bits.Sub64(a.hi, b.hi, borrow)
	return uint128{hi: hi, lo: lo}
}

func cmpU128(a, b uint128) int {
	switch {
	case a.hi != b.hi:
		if a.hi < b.hi {
			return -1
		}
		return 1
	case a.lo < b.lo:
		return -1
	case a.lo > b.lo:
		return 1
	}
	return 0
}

// Clockwise returns the clockwise (increasing, wrapping) distance from a
// to b on the identifier ring.
func Clockwise(a, b ID) ID {
	return fromU128(subU128(toU128(b), toU128(a)))
}

// Distance returns the minimal ring distance between a and b: the smaller
// of the clockwise and counterclockwise distances.
func Distance(a, b ID) ID {
	cw := subU128(toU128(b), toU128(a))
	ccw := subU128(toU128(a), toU128(b))
	if cmpU128(cw, ccw) <= 0 {
		return fromU128(cw)
	}
	return fromU128(ccw)
}

// Closer reports whether a is strictly closer to target than b is, by
// minimal ring distance. Ties (equal distances) favour the numerically
// smaller identifier so that "closest node" is a total order; secure
// Pastry needs a deterministic answer for its constrained-table checks.
func Closer(a, b, target ID) bool {
	da, db := Distance(a, target), Distance(b, target)
	switch Cmp(da, db) {
	case -1:
		return true
	case 1:
		return false
	default:
		return Less(a, b)
	}
}

// Between reports whether x lies on the clockwise arc (lo, hi], treating
// the identifier space as a ring. If lo == hi the arc is the full ring.
func Between(x, lo, hi ID) bool {
	if lo == hi {
		return true
	}
	cwLoHi := toU128(Clockwise(lo, hi))
	cwLoX := toU128(Clockwise(lo, x))
	if x == lo {
		return false
	}
	return cmpU128(cwLoX, cwLoHi) <= 0
}

// Add returns a + delta on the ring (mod 2^128).
func Add(a, delta ID) ID {
	ua, ud := toU128(a), toU128(delta)
	lo, carry := bits.Add64(ua.lo, ud.lo, 0)
	hi, _ := bits.Add64(ua.hi, ud.hi, carry)
	return fromU128(uint128{hi: hi, lo: lo})
}

// Spacing returns the clockwise gap from a to b as a float64. The value
// is approximate (128-bit range flattened to float64) but is only used
// for the density estimators in §2 and §3.1, where relative magnitudes
// are all that matter.
func Spacing(a, b ID) float64 {
	u := toU128(Clockwise(a, b))
	return float64(u.hi)*0x1p64 + float64(u.lo)
}

// RingSize is the total number of points on the ring, as a float64.
const RingSize = 0x1p128

// RandSource is the subset of a random generator the package needs.
// Both math/rand/v2's generators and crypto-seeded sources satisfy it.
type RandSource interface {
	Uint64() uint64
}

// Random draws an identifier uniformly at random from src. The paper's
// central authority assigns identifiers "randomly" (§2); experiments use
// seeded sources for reproducibility while the live CA uses crypto/rand.
func Random(src RandSource) ID {
	return fromU128(uint128{hi: src.Uint64(), lo: src.Uint64()})
}
