// Package id implements the overlay identifier space used by Concilium's
// secure Pastry substrate.
//
// Identifiers are 128-bit values interpreted as ℓ = 32 digits in base
// v = 16, matching the parameters the paper calls "typical" (§3.1).
// The package provides the prefix arithmetic used by jump tables, the
// ring arithmetic used by leaf sets, and the "target point" construction
// used by secure routing-table constraints.
//
// Internally every hot operation runs on the word-pair view of an
// identifier — two big-endian uint64 halves — so prefix length is one
// XOR plus a leading-zero count and comparisons are two integer
// compares, instead of byte loops. The [16]byte representation remains
// the storage and wire format.
package id

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/bits"
)

const (
	// Bytes is the identifier length in bytes.
	Bytes = 16
	// Digits is ℓ, the number of base-v digits in an identifier.
	Digits = 32
	// Base is v, the radix of each digit.
	Base = 16
	// BitsPerDigit is log2(Base).
	BitsPerDigit = 4
)

// ID is a 128-bit overlay identifier. IDs are values; they are comparable
// with == and usable as map keys.
type ID [Bytes]byte

// Zero is the all-zero identifier.
var Zero ID

// Max is the all-ones identifier, the numerically largest point on the ring.
var Max = ID{
	0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
	0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
}

// Pair is the word-pair view of an identifier: Hi holds digits 0–15 and
// Lo digits 16–31, both big-endian. All ring and prefix arithmetic runs
// on this form.
type Pair struct{ Hi, Lo uint64 }

// Pair decomposes the identifier into its two big-endian words.
func (a ID) Pair() Pair {
	return Pair{
		Hi: binary.BigEndian.Uint64(a[0:8]),
		Lo: binary.BigEndian.Uint64(a[8:16]),
	}
}

// ID recomposes the word pair into the byte representation.
func (p Pair) ID() ID {
	var a ID
	binary.BigEndian.PutUint64(a[0:8], p.Hi)
	binary.BigEndian.PutUint64(a[8:16], p.Lo)
	return a
}

// FromBytes builds an ID from a 16-byte slice.
func FromBytes(b []byte) (ID, error) {
	var out ID
	if len(b) != Bytes {
		return out, fmt.Errorf("id: need %d bytes, got %d", Bytes, len(b))
	}
	copy(out[:], b)
	return out, nil
}

// Parse decodes a 32-character hexadecimal identifier.
func Parse(s string) (ID, error) {
	var out ID
	if len(s) != Digits {
		return out, fmt.Errorf("id: need %d hex digits, got %d", Digits, len(s))
	}
	raw, err := hex.DecodeString(s)
	if err != nil {
		return out, fmt.Errorf("id: parse %q: %w", s, err)
	}
	copy(out[:], raw)
	return out, nil
}

// MustParse is Parse for test fixtures and constants; it panics on error.
func MustParse(s string) ID {
	v, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return v
}

// String renders the identifier as 32 lowercase hex digits.
func (a ID) String() string { return hex.EncodeToString(a[:]) }

// Short renders the first 8 digits, for logs.
func (a ID) Short() string { return hex.EncodeToString(a[:4]) }

// Digit returns the i-th base-16 digit, with digit 0 being the most
// significant. It panics if i is outside [0, Digits).
func (a ID) Digit(i int) byte {
	if i < 0 || i >= Digits {
		panic(fmt.Sprintf("id: digit index %d out of range", i))
	}
	var w uint64
	if i < Digits/2 {
		w = binary.BigEndian.Uint64(a[0:8])
	} else {
		w = binary.BigEndian.Uint64(a[8:16])
		i -= Digits / 2
	}
	return byte(w>>(60-BitsPerDigit*i)) & 0x0f
}

// WithDigit returns a copy of the identifier with digit i replaced by d.
// Secure Pastry uses this to build the "target point" p for jump-table
// slot (i, j): the local identifier with its i-th digit set to j (§2).
func (a ID) WithDigit(i int, d byte) ID {
	if i < 0 || i >= Digits {
		panic(fmt.Sprintf("id: digit index %d out of range", i))
	}
	if d >= Base {
		panic(fmt.Sprintf("id: digit value %d out of range", d))
	}
	out := a
	half := out[0:8]
	if i >= Digits/2 {
		half = out[8:16]
		i -= Digits / 2
	}
	shift := uint(60 - BitsPerDigit*i)
	w := binary.BigEndian.Uint64(half)
	w = w&^(uint64(0x0f)<<shift) | uint64(d)<<shift
	binary.BigEndian.PutUint64(half, w)
	return out
}

// CommonPrefixLen returns the number of leading base-16 digits shared by
// a and b. Identical identifiers share all Digits digits.
func CommonPrefixLen(a, b ID) int {
	pa, pb := a.Pair(), b.Pair()
	if x := pa.Hi ^ pb.Hi; x != 0 {
		return bits.LeadingZeros64(x) / BitsPerDigit
	}
	if x := pa.Lo ^ pb.Lo; x != 0 {
		return Digits/2 + bits.LeadingZeros64(x)/BitsPerDigit
	}
	return Digits
}

// Cmp compares a and b as 128-bit big-endian unsigned integers, returning
// -1, 0, or +1.
func Cmp(a, b ID) int {
	pa, pb := a.Pair(), b.Pair()
	switch {
	case pa.Hi < pb.Hi:
		return -1
	case pa.Hi > pb.Hi:
		return 1
	case pa.Lo < pb.Lo:
		return -1
	case pa.Lo > pb.Lo:
		return 1
	}
	return 0
}

// Less reports whether a < b numerically.
func Less(a, b ID) bool {
	pa, pb := a.Pair(), b.Pair()
	if pa.Hi != pb.Hi {
		return pa.Hi < pb.Hi
	}
	return pa.Lo < pb.Lo
}

// Less reports whether p < q numerically — the word-pair form of Less,
// for callers that keep identifiers decomposed.
func (p Pair) Less(q Pair) bool {
	if p.Hi != q.Hi {
		return p.Hi < q.Hi
	}
	return p.Lo < q.Lo
}

// PrefixRange returns the numeric bounds [lo, hi] of identifiers
// sharing p's first prefixLen digits: p with every trailing digit
// cleared and with every trailing digit saturated, as two word masks.
// This replaces the digit-by-digit WithDigit loop on the table-fill hot
// path — one shift per word instead of up to 32 masked stores.
func (p Pair) PrefixRange(prefixLen int) (lo, hi Pair) {
	b := prefixLen * BitsPerDigit
	switch {
	case b <= 0:
		return Pair{}, Pair{Hi: ^uint64(0), Lo: ^uint64(0)}
	case b < 64:
		m := ^uint64(0) >> b
		return Pair{Hi: p.Hi &^ m}, Pair{Hi: p.Hi | m, Lo: ^uint64(0)}
	case b == 64:
		return Pair{Hi: p.Hi}, Pair{Hi: p.Hi, Lo: ^uint64(0)}
	case b < 2*64:
		m := ^uint64(0) >> (b - 64)
		return Pair{Hi: p.Hi, Lo: p.Lo &^ m}, Pair{Hi: p.Hi, Lo: p.Lo | m}
	}
	return p, p
}

func subPair(a, b Pair) Pair {
	lo, borrow := bits.Sub64(a.Lo, b.Lo, 0)
	hi, _ := bits.Sub64(a.Hi, b.Hi, borrow)
	return Pair{Hi: hi, Lo: lo}
}

func cmpPair(a, b Pair) int {
	switch {
	case a.Hi != b.Hi:
		if a.Hi < b.Hi {
			return -1
		}
		return 1
	case a.Lo < b.Lo:
		return -1
	case a.Lo > b.Lo:
		return 1
	}
	return 0
}

// Clockwise returns the clockwise (increasing, wrapping) distance from a
// to b on the identifier ring.
func Clockwise(a, b ID) ID {
	return subPair(b.Pair(), a.Pair()).ID()
}

// Distance returns the minimal ring distance between a and b: the smaller
// of the clockwise and counterclockwise distances.
func Distance(a, b ID) ID {
	pa, pb := a.Pair(), b.Pair()
	cw := subPair(pb, pa)
	ccw := subPair(pa, pb)
	if cmpPair(cw, ccw) <= 0 {
		return cw.ID()
	}
	return ccw.ID()
}

// Closer reports whether a is strictly closer to target than b is, by
// minimal ring distance. Ties (equal distances) favour the numerically
// smaller identifier so that "closest node" is a total order; secure
// Pastry needs a deterministic answer for its constrained-table checks.
func Closer(a, b, target ID) bool {
	pa, pb, pt := a.Pair(), b.Pair(), target.Pair()
	da := minPair(subPair(pt, pa), subPair(pa, pt))
	db := minPair(subPair(pt, pb), subPair(pb, pt))
	switch cmpPair(da, db) {
	case -1:
		return true
	case 1:
		return false
	default:
		return cmpPair(pa, pb) < 0
	}
}

func minPair(a, b Pair) Pair {
	if cmpPair(a, b) <= 0 {
		return a
	}
	return b
}

// Between reports whether x lies on the clockwise arc (lo, hi], treating
// the identifier space as a ring. If lo == hi the arc is the full ring.
func Between(x, lo, hi ID) bool {
	if lo == hi {
		return true
	}
	if x == lo {
		return false
	}
	pl := lo.Pair()
	cwLoHi := subPair(hi.Pair(), pl)
	cwLoX := subPair(x.Pair(), pl)
	return cmpPair(cwLoX, cwLoHi) <= 0
}

// Add returns a + delta on the ring (mod 2^128).
func Add(a, delta ID) ID {
	pa, pd := a.Pair(), delta.Pair()
	lo, carry := bits.Add64(pa.Lo, pd.Lo, 0)
	hi, _ := bits.Add64(pa.Hi, pd.Hi, carry)
	return Pair{Hi: hi, Lo: lo}.ID()
}

// Spacing returns the clockwise gap from a to b as a float64. The value
// is approximate (128-bit range flattened to float64) but is only used
// for the density estimators in §2 and §3.1, where relative magnitudes
// are all that matter.
func Spacing(a, b ID) float64 {
	u := subPair(b.Pair(), a.Pair())
	return float64(u.Hi)*0x1p64 + float64(u.Lo)
}

// RingSize is the total number of points on the ring, as a float64.
const RingSize = 0x1p128

// RandSource is the subset of a random generator the package needs.
// Both math/rand/v2's generators and crypto-seeded sources satisfy it.
type RandSource interface {
	Uint64() uint64
}

// Random draws an identifier uniformly at random from src. The paper's
// central authority assigns identifiers "randomly" (§2); experiments use
// seeded sources for reproducibility while the live CA uses crypto/rand.
func Random(src RandSource) ID {
	return Pair{Hi: src.Uint64(), Lo: src.Uint64()}.ID()
}
