package id

import (
	"math/rand/v2"
	"testing"
)

// Legacy byte-wise reference implementations. The word-pair versions in
// id.go must be bit-identical to these across the whole input space;
// the property tests and the fuzz harness below enforce that.

func refCommonPrefixLen(a, b ID) int {
	for i := 0; i < Bytes; i++ {
		x := a[i] ^ b[i]
		if x == 0 {
			continue
		}
		if x&0xf0 != 0 {
			return 2 * i
		}
		return 2*i + 1
	}
	return Digits
}

func refCmp(a, b ID) int {
	for i := 0; i < Bytes; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

func refDigit(a ID, i int) byte {
	b := a[i/2]
	if i%2 == 0 {
		return b >> 4
	}
	return b & 0x0f
}

func refWithDigit(a ID, i int, d byte) ID {
	out := a
	if i%2 == 0 {
		out[i/2] = (out[i/2] & 0x0f) | (d << 4)
	} else {
		out[i/2] = (out[i/2] & 0xf0) | d
	}
	return out
}

type refU128 struct{ hi, lo uint64 }

func refToU128(a ID) refU128 {
	var u refU128
	for i := 0; i < 8; i++ {
		u.hi = u.hi<<8 | uint64(a[i])
		u.lo = u.lo<<8 | uint64(a[i+8])
	}
	return u
}

func refFromU128(u refU128) ID {
	var a ID
	for i := 7; i >= 0; i-- {
		a[i] = byte(u.hi)
		a[i+8] = byte(u.lo)
		u.hi >>= 8
		u.lo >>= 8
	}
	return a
}

func refClockwise(a, b ID) ID {
	ua, ub := refToU128(a), refToU128(b)
	var borrow uint64
	lo := ub.lo - ua.lo
	if ub.lo < ua.lo {
		borrow = 1
	}
	hi := ub.hi - ua.hi - borrow
	return refFromU128(refU128{hi: hi, lo: lo})
}

func refDistance(a, b ID) ID {
	cw := refClockwise(a, b)
	ccw := refClockwise(b, a)
	if refCmp(cw, ccw) <= 0 {
		return cw
	}
	return ccw
}

// checkPairEquivalence asserts every word-pair primitive matches its
// byte-wise reference on one (a, b) pair.
func checkPairEquivalence(t *testing.T, a, b ID) {
	t.Helper()
	if got, want := CommonPrefixLen(a, b), refCommonPrefixLen(a, b); got != want {
		t.Errorf("CommonPrefixLen(%s, %s) = %d, reference %d", a, b, got, want)
	}
	if got, want := Cmp(a, b), refCmp(a, b); got != want {
		t.Errorf("Cmp(%s, %s) = %d, reference %d", a, b, got, want)
	}
	if got, want := Less(a, b), refCmp(a, b) < 0; got != want {
		t.Errorf("Less(%s, %s) = %v, reference %v", a, b, got, want)
	}
	if got, want := Clockwise(a, b), refClockwise(a, b); got != want {
		t.Errorf("Clockwise(%s, %s) = %s, reference %s", a, b, got, want)
	}
	if got, want := Distance(a, b), refDistance(a, b); got != want {
		t.Errorf("Distance(%s, %s) = %s, reference %s", a, b, got, want)
	}
	// Round trip through the word-pair view is the identity.
	if rt := a.Pair().ID(); rt != a {
		t.Errorf("Pair round trip of %s produced %s", a, rt)
	}
	if u, p := refToU128(a), a.Pair(); u.hi != p.Hi || u.lo != p.Lo {
		t.Errorf("Pair of %s disagrees with byte-wise decomposition", a)
	}
	for i := 0; i < Digits; i++ {
		if got, want := a.Digit(i), refDigit(a, i); got != want {
			t.Fatalf("%s.Digit(%d) = %x, reference %x", a, i, got, want)
		}
		d := b.Digit(i) // arbitrary but deterministic replacement digit
		if got, want := a.WithDigit(i, d), refWithDigit(a, i, d); got != want {
			t.Fatalf("%s.WithDigit(%d, %x) = %s, reference %s", a, i, d, got, want)
		}
	}
}

// adjacentIDs returns x-1 and x+1 on the ring (wrapping).
func adjacentIDs(x ID) (ID, ID) {
	one := ID{}
	one[Bytes-1] = 1
	minusOne := Max // 2^128 - 1 acts as -1 mod 2^128
	return Add(x, minusOne), Add(x, one)
}

func TestWordPairMatchesByteReferenceEdgeCases(t *testing.T) {
	t.Parallel()
	carrier := MustParse("00ffffffffffffffffffffffffffffff")
	halfLo, halfHi := adjacentIDs(MustParse("80000000000000000000000000000000"))
	wordEdgeLo, wordEdgeHi := adjacentIDs(MustParse("00000000000000010000000000000000"))
	edges := []ID{
		Zero, Max, carrier, halfLo, halfHi, wordEdgeLo, wordEdgeHi,
		MustParse("0123456789abcdef0123456789abcdef"),
	}
	var more []ID
	for _, x := range edges {
		lo, hi := adjacentIDs(x)
		more = append(more, x, lo, hi)
	}
	for _, a := range more {
		for _, b := range more {
			checkPairEquivalence(t, a, b)
		}
	}
}

func TestWordPairMatchesByteReferenceRandom(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewPCG(7, 1))
	for trial := 0; trial < 2000; trial++ {
		a, b := Random(rng), Random(rng)
		if trial%5 == 0 {
			// Force long shared prefixes: random pairs almost never
			// exercise deep CommonPrefixLen rows.
			cut := rng.IntN(Digits)
			b = a
			for i := cut; i < Digits; i++ {
				b = b.WithDigit(i, byte(rng.IntN(Base)))
			}
		}
		checkPairEquivalence(t, a, b)
	}
}

// FuzzWordPairEquivalence lets the fuzzer hunt for any (a, b) where the
// word-pair arithmetic diverges from the byte-wise reference.
func FuzzWordPairEquivalence(f *testing.F) {
	f.Add(Zero[:], Max[:])
	f.Add(Max[:], Max[:])
	seed := MustParse("0123456789abcdef0123456789abcdef")
	lo, hi := adjacentIDs(seed)
	f.Add(seed[:], lo[:])
	f.Add(hi[:], seed[:])
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		if len(rawA) != Bytes || len(rawB) != Bytes {
			t.Skip()
		}
		a, err := FromBytes(rawA)
		if err != nil {
			t.Skip()
		}
		b, err := FromBytes(rawB)
		if err != nil {
			t.Skip()
		}
		checkPairEquivalence(t, a, b)
	})
}
