package id

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestParseRoundTrip(t *testing.T) {
	t.Parallel()
	cases := []string{
		"00000000000000000000000000000000",
		"ffffffffffffffffffffffffffffffff",
		"0123456789abcdef0123456789abcdef",
		"80000000000000000000000000000000",
	}
	for _, s := range cases {
		got, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got.String() != s {
			t.Errorf("round trip %q -> %q", s, got.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	t.Parallel()
	bad := []string{"", "abc", "zz000000000000000000000000000000",
		"0123456789abcdef0123456789abcde", // 31 digits
		"0123456789abcdef0123456789abcdef0"}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) = nil error, want failure", s)
		}
	}
}

func TestFromBytes(t *testing.T) {
	t.Parallel()
	if _, err := FromBytes(make([]byte, 15)); err == nil {
		t.Error("FromBytes(15 bytes) should fail")
	}
	b := make([]byte, 16)
	b[0] = 0xab
	got, err := FromBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Digit(0) != 0xa || got.Digit(1) != 0xb {
		t.Errorf("digits = %d,%d want 10,11", got.Digit(0), got.Digit(1))
	}
}

func TestDigitAndWithDigit(t *testing.T) {
	t.Parallel()
	a := MustParse("0123456789abcdef0123456789abcdef")
	want := []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
	for i := 0; i < 16; i++ {
		if a.Digit(i) != want[i] {
			t.Errorf("Digit(%d) = %d, want %d", i, a.Digit(i), want[i])
		}
	}
	for i := 0; i < Digits; i++ {
		for d := byte(0); d < Base; d++ {
			m := a.WithDigit(i, d)
			if m.Digit(i) != d {
				t.Fatalf("WithDigit(%d,%d).Digit = %d", i, d, m.Digit(i))
			}
			// All other digits untouched.
			for j := 0; j < Digits; j++ {
				if j != i && m.Digit(j) != a.Digit(j) {
					t.Fatalf("WithDigit(%d,%d) disturbed digit %d", i, d, j)
				}
			}
		}
	}
}

func TestDigitPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("Digit(-1) did not panic")
		}
	}()
	Zero.Digit(-1)
}

func TestWithDigitPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("WithDigit(0,16) did not panic")
		}
	}()
	Zero.WithDigit(0, 16)
}

func TestCommonPrefixLen(t *testing.T) {
	t.Parallel()
	tests := []struct {
		a, b string
		want int
	}{
		{"00000000000000000000000000000000", "00000000000000000000000000000000", 32},
		{"00000000000000000000000000000000", "80000000000000000000000000000000", 0},
		{"00000000000000000000000000000000", "08000000000000000000000000000000", 1},
		{"abcdef00000000000000000000000000", "abcdee00000000000000000000000000", 5},
		{"abcdef00000000000000000000000000", "abcdef00000000000000000000000001", 31},
	}
	for _, tc := range tests {
		got := CommonPrefixLen(MustParse(tc.a), MustParse(tc.b))
		if got != tc.want {
			t.Errorf("CommonPrefixLen(%s, %s) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCmpAndLess(t *testing.T) {
	t.Parallel()
	a := MustParse("00000000000000000000000000000001")
	b := MustParse("00000000000000000000000000000002")
	if Cmp(a, b) != -1 || Cmp(b, a) != 1 || Cmp(a, a) != 0 {
		t.Error("Cmp ordering wrong")
	}
	if !Less(a, b) || Less(b, a) || Less(a, a) {
		t.Error("Less ordering wrong")
	}
}

func TestClockwiseWraps(t *testing.T) {
	t.Parallel()
	a := MustParse("ffffffffffffffffffffffffffffffff")
	b := MustParse("00000000000000000000000000000001")
	got := Clockwise(a, b)
	want := MustParse("00000000000000000000000000000002")
	if got != want {
		t.Errorf("Clockwise wrap = %s, want %s", got, want)
	}
}

func TestDistanceSymmetric(t *testing.T) {
	t.Parallel()
	a := MustParse("00000000000000000000000000000010")
	b := MustParse("fffffffffffffffffffffffffffffff0")
	d1, d2 := Distance(a, b), Distance(b, a)
	if d1 != d2 {
		t.Errorf("Distance not symmetric: %s vs %s", d1, d2)
	}
	want := MustParse("00000000000000000000000000000020")
	if d1 != want {
		t.Errorf("Distance = %s, want %s", d1, want)
	}
}

func TestCloser(t *testing.T) {
	t.Parallel()
	target := MustParse("80000000000000000000000000000000")
	near := MustParse("80000000000000000000000000000010")
	far := MustParse("90000000000000000000000000000000")
	if !Closer(near, far, target) {
		t.Error("near should be closer than far")
	}
	if Closer(far, near, target) {
		t.Error("far should not be closer than near")
	}
	// Tie: equidistant points resolve to the numerically smaller ID.
	lo := MustParse("7fffffffffffffffffffffffffffffff")
	hi := MustParse("80000000000000000000000000000001")
	if !Closer(lo, hi, target) {
		t.Error("tie should favour numerically smaller id")
	}
}

func TestBetween(t *testing.T) {
	t.Parallel()
	lo := MustParse("10000000000000000000000000000000")
	hi := MustParse("20000000000000000000000000000000")
	in := MustParse("18000000000000000000000000000000")
	out := MustParse("30000000000000000000000000000000")
	if !Between(in, lo, hi) {
		t.Error("in should be inside (lo, hi]")
	}
	if Between(out, lo, hi) {
		t.Error("out should be outside (lo, hi]")
	}
	if Between(lo, lo, hi) {
		t.Error("arc is exclusive of lo")
	}
	if !Between(hi, lo, hi) {
		t.Error("arc is inclusive of hi")
	}
	// Wrapping arc.
	if !Between(MustParse("00000000000000000000000000000001"), hi, lo) {
		t.Error("wrapping arc should contain small ids")
	}
	// Degenerate full ring.
	if !Between(out, lo, lo) {
		t.Error("lo==hi means full ring")
	}
}

func TestAdd(t *testing.T) {
	t.Parallel()
	a := Max
	one := MustParse("00000000000000000000000000000001")
	if got := Add(a, one); got != Zero {
		t.Errorf("Max+1 = %s, want zero", got)
	}
}

func TestSpacing(t *testing.T) {
	t.Parallel()
	a := Zero
	b := MustParse("00000000000000000000000000000100")
	if got := Spacing(a, b); got != 256 {
		t.Errorf("Spacing = %v, want 256", got)
	}
	// Full-ring spacing of equal points is zero.
	if got := Spacing(a, a); got != 0 {
		t.Errorf("Spacing(a,a) = %v, want 0", got)
	}
}

func TestRandomUsesSource(t *testing.T) {
	t.Parallel()
	r1 := rand.New(rand.NewPCG(1, 2))
	r2 := rand.New(rand.NewPCG(1, 2))
	if Random(r1) != Random(r2) {
		t.Error("same seed must give same identifier")
	}
	r3 := rand.New(rand.NewPCG(3, 4))
	if Random(r1) == Random(r3) {
		t.Error("different seeds should give different identifiers")
	}
}

// Property: Clockwise(a,b) + Clockwise(b,a) == 0 (mod 2^128) unless a == b.
func TestPropClockwiseComplement(t *testing.T) {
	t.Parallel()
	f := func(ab [2][16]byte) bool {
		a, b := ID(ab[0]), ID(ab[1])
		sum := Add(Clockwise(a, b), Clockwise(b, a))
		return sum == Zero
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Distance is bounded by half the ring.
func TestPropDistanceBounded(t *testing.T) {
	t.Parallel()
	half := MustParse("80000000000000000000000000000000")
	f := func(ab [2][16]byte) bool {
		d := Distance(ID(ab[0]), ID(ab[1]))
		return Cmp(d, half) <= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CommonPrefixLen(a,b) == Digits iff a == b, and prefix digits match.
func TestPropPrefixConsistent(t *testing.T) {
	t.Parallel()
	f := func(ab [2][16]byte) bool {
		a, b := ID(ab[0]), ID(ab[1])
		n := CommonPrefixLen(a, b)
		if (n == Digits) != (a == b) {
			return false
		}
		for i := 0; i < n; i++ {
			if a.Digit(i) != b.Digit(i) {
				return false
			}
		}
		if n < Digits && a.Digit(n) == b.Digit(n) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Add(a, Clockwise(a, b)) == b — clockwise distance really is
// the ring increment.
func TestPropAddClockwise(t *testing.T) {
	t.Parallel()
	f := func(ab [2][16]byte) bool {
		a, b := ID(ab[0]), ID(ab[1])
		return Add(a, Clockwise(a, b)) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Micro-benchmarks for the word-pair primitives live in bench_test.go.
