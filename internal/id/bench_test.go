package id

import (
	"math/rand/v2"
	"testing"
)

// Micro-benchmarks for the word-pair hot path. The fixture mixes random
// pairs with long-shared-prefix pairs so CommonPrefixLen exercises both
// words, not just the first XOR.
func benchIDs(n int) []ID {
	rng := rand.New(rand.NewPCG(42, 0))
	ids := make([]ID, n)
	for i := range ids {
		ids[i] = Random(rng)
		if i%4 == 1 {
			prev := ids[i-1]
			ids[i] = prev.WithDigit(Digits-1-rng.IntN(8), byte(rng.IntN(Base)))
		}
	}
	return ids
}

func BenchmarkCommonPrefixLen(b *testing.B) {
	ids := benchIDs(1024)
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		x := ids[i%len(ids)]
		y := ids[(i+1)%len(ids)]
		sink += CommonPrefixLen(x, y)
	}
	_ = sink
}

func BenchmarkDigit(b *testing.B) {
	ids := benchIDs(1024)
	b.ReportAllocs()
	var sink byte
	for i := 0; i < b.N; i++ {
		sink += ids[i%len(ids)].Digit(i % Digits)
	}
	_ = sink
}

func BenchmarkWithDigit(b *testing.B) {
	ids := benchIDs(1024)
	b.ReportAllocs()
	var sink byte
	for i := 0; i < b.N; i++ {
		out := ids[i%len(ids)].WithDigit(i%Digits, byte(i%Base))
		sink += out[0]
	}
	_ = sink
}

func BenchmarkDistance(b *testing.B) {
	ids := benchIDs(1024)
	b.ReportAllocs()
	var sink byte
	for i := 0; i < b.N; i++ {
		d := Distance(ids[i%len(ids)], ids[(i+7)%len(ids)])
		sink += d[0]
	}
	_ = sink
}

func BenchmarkCmp(b *testing.B) {
	ids := benchIDs(1024)
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += Cmp(ids[i%len(ids)], ids[(i+1)%len(ids)])
	}
	_ = sink
}

func BenchmarkCloser(b *testing.B) {
	ids := benchIDs(1024)
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		if Closer(ids[i%len(ids)], ids[(i+1)%len(ids)], ids[(i+2)%len(ids)]) {
			sink++
		}
	}
	_ = sink
}
