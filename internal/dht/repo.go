package dht

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"errors"
	"fmt"
	"time"

	"concilium/internal/core"
	"concilium/internal/id"
	"concilium/internal/metrics"
	"concilium/internal/netsim"
)

// Repository-hardening errors. All three reject a publish without
// touching the store; callers distinguish them from verification
// failures when tallying abuse.
var (
	// ErrRateLimited indicates the per-key or per-accuser accusation
	// cap was reached — the accusation-flood defense.
	ErrRateLimited = errors.New("dht: accusation rate limit exceeded")
	// ErrDuplicateChain indicates a byte-identical chain is already on
	// file for this culprit — the replay-flood defense.
	ErrDuplicateChain = errors.New("dht: duplicate accusation chain")
	// ErrStaleChain indicates the chain's final verdict is older than
	// the staleness bound at publish time — the stale-evidence-replay
	// defense.
	ErrStaleChain = errors.New("dht: stale accusation chain")
)

// RepoLimits hardens the repository against accusation floods and
// replays. Zero values disable the corresponding check, preserving the
// unhardened behavior.
type RepoLimits struct {
	// MaxPerAccuserPerKey caps how many chains one accuser — the
	// chain's final, convicting accuser — may have on file against one
	// culprit.
	MaxPerAccuserPerKey int
	// MaxPerKey caps the total chains on file against one culprit.
	MaxPerKey int
	// StaleAfter rejects chains whose final verdict is older than this
	// at publish time. Only PublishAt carries a clock, so Publish
	// never applies it.
	StaleAfter time.Duration
}

// Validate reports the first invalid field.
func (l RepoLimits) Validate() error {
	switch {
	case l.MaxPerAccuserPerKey < 0:
		return fmt.Errorf("dht: per-accuser cap %d negative", l.MaxPerAccuserPerKey)
	case l.MaxPerKey < 0:
		return fmt.Errorf("dht: per-key cap %d negative", l.MaxPerKey)
	case l.MaxPerKey > 0 && l.MaxPerAccuserPerKey > l.MaxPerKey:
		return fmt.Errorf("dht: per-accuser cap %d exceeds per-key cap %d",
			l.MaxPerAccuserPerKey, l.MaxPerKey)
	case l.StaleAfter < 0:
		return fmt.Errorf("dht: staleness bound %v negative", l.StaleAfter)
	}
	return nil
}

// accuserKey indexes the per-accuser rate limit.
type accuserKey struct {
	culprit id.ID
	accuser id.ID
}

// AccusationRepo stores self-verifying revision chains in the DHT under
// the accused host's identity. Fetches re-verify every chain, so a
// faulty replica can at worst suppress an accusation it holds — it
// cannot forge one (§3.4).
type AccusationRepo struct {
	store *Store
	keys  core.KeyDirectory
	// threshold is the verifier's guilty threshold for accepting chains.
	threshold float64

	limits     RepoLimits
	perKey     map[id.ID]int
	perAccuser map[accuserKey]int
	seen       map[id.ID]map[[sha256.Size]byte]bool

	published   *metrics.Counter
	accBytes    *metrics.Counter
	rejected    *metrics.Counter
	rateLimited *metrics.Counter
	duplicates  *metrics.Counter
	stale       *metrics.Counter
}

// NewAccusationRepo wraps a store with chain verification.
func NewAccusationRepo(store *Store, keys core.KeyDirectory, threshold float64) (*AccusationRepo, error) {
	if store == nil || keys == nil {
		return nil, fmt.Errorf("dht: accusation repo requires store and keys")
	}
	if threshold <= 0 || threshold >= 1 {
		return nil, fmt.Errorf("dht: threshold %v out of (0,1)", threshold)
	}
	return &AccusationRepo{
		store:      store,
		keys:       keys,
		threshold:  threshold,
		perKey:     make(map[id.ID]int),
		perAccuser: make(map[accuserKey]int),
		seen:       make(map[id.ID]map[[sha256.Size]byte]bool),
	}, nil
}

// SetLimits installs the repository's hardening limits.
func (r *AccusationRepo) SetLimits(l RepoLimits) error {
	if err := l.Validate(); err != nil {
		return err
	}
	r.limits = l
	return nil
}

// Limits returns the active hardening limits.
func (r *AccusationRepo) Limits() RepoLimits { return r.limits }

// SetMetrics publishes accusation-repo volume into reg: chains
// published and rejected, the exact encoded bytes-on-wire of the
// accusation message class, and the three hardening rejection counters
// (rate-limit trips, duplicate floods, stale replays). A nil registry
// disables publication.
func (r *AccusationRepo) SetMetrics(reg *metrics.Registry) {
	r.published = reg.Counter("dht/chains_published")
	r.rejected = reg.Counter("dht/chains_rejected")
	r.accBytes = reg.Counter("wire/accusation_bytes")
	r.rateLimited = reg.Counter("dht/chains_rate_limited")
	r.duplicates = reg.Counter("dht/chains_duplicate")
	r.stale = reg.Counter("dht/chains_stale")
}

// Publish verifies and stores an amended accusation under its culprit.
// It carries no clock, so the staleness bound is not applied; rate and
// duplicate limits are.
func (r *AccusationRepo) Publish(chain *core.RevisionChain) error {
	return r.publishAt(chain, 0, false)
}

// PublishAt is Publish with the publish-time clock, enabling the
// staleness check: chains whose final verdict predates now by more
// than StaleAfter are rejected as replays of old evidence.
func (r *AccusationRepo) PublishAt(chain *core.RevisionChain, now netsim.Time) error {
	return r.publishAt(chain, now, true)
}

func (r *AccusationRepo) publishAt(chain *core.RevisionChain, now netsim.Time, timed bool) error {
	if chain == nil {
		return fmt.Errorf("dht: nil chain")
	}
	if err := chain.Verify(r.keys, r.threshold); err != nil {
		r.rejected.Inc()
		return fmt.Errorf("dht: refusing to publish unverifiable chain: %w", err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(chain); err != nil {
		return fmt.Errorf("dht: encode chain: %w", err)
	}
	culprit := chain.Culprit()
	digest := sha256.Sum256(buf.Bytes())
	if r.seen[culprit][digest] {
		r.duplicates.Inc()
		return fmt.Errorf("%w: culprit %s", ErrDuplicateChain, culprit.Short())
	}
	last := chain.Links[len(chain.Links)-1]
	if timed && r.limits.StaleAfter > 0 && now.Sub(last.At) > r.limits.StaleAfter {
		r.stale.Inc()
		return fmt.Errorf("%w: verdict aged %v past the %v bound",
			ErrStaleChain, now.Sub(last.At), r.limits.StaleAfter)
	}
	if m := r.limits.MaxPerKey; m > 0 && r.perKey[culprit] >= m {
		r.rateLimited.Inc()
		return fmt.Errorf("%w: %d chains on file against %s", ErrRateLimited, r.perKey[culprit], culprit.Short())
	}
	ak := accuserKey{culprit: culprit, accuser: last.Accuser}
	if m := r.limits.MaxPerAccuserPerKey; m > 0 && r.perAccuser[ak] >= m {
		r.rateLimited.Inc()
		return fmt.Errorf("%w: accuser %s already has %d chains against %s",
			ErrRateLimited, last.Accuser.Short(), r.perAccuser[ak], culprit.Short())
	}
	if err := r.store.Put(culprit, buf.Bytes()); err != nil {
		return err
	}
	if r.seen[culprit] == nil {
		r.seen[culprit] = make(map[[sha256.Size]byte]bool)
	}
	r.seen[culprit][digest] = true
	r.perKey[culprit]++
	r.perAccuser[ak]++
	r.published.Inc()
	r.accBytes.Add(uint64(buf.Len()))
	return nil
}

// Fetch returns every verifiable accusation chain against the accused.
// Chains that fail verification are silently dropped — a corrupt
// replica cannot manufacture reputation damage. A total replica outage
// is reported as an error, never as an empty result.
func (r *AccusationRepo) Fetch(accused id.ID) ([]*core.RevisionChain, error) {
	chains, _, err := r.FetchChecked(accused)
	return chains, err
}

// FetchChecked is Fetch plus the replica health of the read, so callers
// (the chaos campaign's durability invariant, sanctioning policies under
// partial outage) can tell a full-quorum answer from a degraded one.
func (r *AccusationRepo) FetchChecked(accused id.ID) ([]*core.RevisionChain, Health, error) {
	raws, health, err := r.store.GetChecked(accused)
	if err != nil {
		return nil, health, fmt.Errorf("dht: fetch %s: %w", accused.Short(), err)
	}
	var out []*core.RevisionChain
	for _, raw := range raws {
		var chain core.RevisionChain
		if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&chain); err != nil {
			continue // corrupt bytes from a bad replica
		}
		if chain.Verify(r.keys, r.threshold) != nil {
			continue
		}
		if len(chain.Links) == 0 || chain.Culprit() != accused {
			continue
		}
		out = append(out, &chain)
	}
	return out, health, nil
}

// Count returns the number of verifiable accusations against accused —
// the quantity sanctioning policies rate-limit on (§3.7).
func (r *AccusationRepo) Count(accused id.ID) (int, error) {
	chains, err := r.Fetch(accused)
	if err != nil {
		return 0, err
	}
	return len(chains), nil
}

// CountBy returns the number of distinct accuser groups with
// verifiable chains on file against accused — the clique-discounted
// variant of Count. With a grouping that collapses suspected colluders
// (core.CliqueSuspector.Group), k co-signing clique members sanction
// as one accuser instead of k independent witnesses. A nil group
// counts distinct accusers.
func (r *AccusationRepo) CountBy(accused id.ID, group func(id.ID) id.ID) (int, error) {
	chains, err := r.Fetch(accused)
	if err != nil {
		return 0, err
	}
	groups := make(map[id.ID]bool, len(chains))
	for _, chain := range chains {
		acc := chain.Links[len(chain.Links)-1].Accuser
		if group != nil {
			acc = group(acc)
		}
		groups[acc] = true
	}
	return len(groups), nil
}
