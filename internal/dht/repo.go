package dht

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"concilium/internal/core"
	"concilium/internal/id"
	"concilium/internal/metrics"
)

// AccusationRepo stores self-verifying revision chains in the DHT under
// the accused host's identity. Fetches re-verify every chain, so a
// faulty replica can at worst suppress an accusation it holds — it
// cannot forge one (§3.4).
type AccusationRepo struct {
	store *Store
	keys  core.KeyDirectory
	// threshold is the verifier's guilty threshold for accepting chains.
	threshold float64

	published *metrics.Counter
	accBytes  *metrics.Counter
	rejected  *metrics.Counter
}

// NewAccusationRepo wraps a store with chain verification.
func NewAccusationRepo(store *Store, keys core.KeyDirectory, threshold float64) (*AccusationRepo, error) {
	if store == nil || keys == nil {
		return nil, fmt.Errorf("dht: accusation repo requires store and keys")
	}
	if threshold <= 0 || threshold >= 1 {
		return nil, fmt.Errorf("dht: threshold %v out of (0,1)", threshold)
	}
	return &AccusationRepo{store: store, keys: keys, threshold: threshold}, nil
}

// SetMetrics publishes accusation-repo volume into reg: chains
// published and rejected, plus the exact encoded bytes-on-wire of the
// accusation message class. A nil registry disables publication.
func (r *AccusationRepo) SetMetrics(reg *metrics.Registry) {
	r.published = reg.Counter("dht/chains_published")
	r.rejected = reg.Counter("dht/chains_rejected")
	r.accBytes = reg.Counter("wire/accusation_bytes")
}

// Publish verifies and stores an amended accusation under its culprit.
func (r *AccusationRepo) Publish(chain *core.RevisionChain) error {
	if chain == nil {
		return fmt.Errorf("dht: nil chain")
	}
	if err := chain.Verify(r.keys, r.threshold); err != nil {
		r.rejected.Inc()
		return fmt.Errorf("dht: refusing to publish unverifiable chain: %w", err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(chain); err != nil {
		return fmt.Errorf("dht: encode chain: %w", err)
	}
	if err := r.store.Put(chain.Culprit(), buf.Bytes()); err != nil {
		return err
	}
	r.published.Inc()
	r.accBytes.Add(uint64(buf.Len()))
	return nil
}

// Fetch returns every verifiable accusation chain against the accused.
// Chains that fail verification are silently dropped — a corrupt
// replica cannot manufacture reputation damage. A total replica outage
// is reported as an error, never as an empty result.
func (r *AccusationRepo) Fetch(accused id.ID) ([]*core.RevisionChain, error) {
	chains, _, err := r.FetchChecked(accused)
	return chains, err
}

// FetchChecked is Fetch plus the replica health of the read, so callers
// (the chaos campaign's durability invariant, sanctioning policies under
// partial outage) can tell a full-quorum answer from a degraded one.
func (r *AccusationRepo) FetchChecked(accused id.ID) ([]*core.RevisionChain, Health, error) {
	raws, health, err := r.store.GetChecked(accused)
	if err != nil {
		return nil, health, fmt.Errorf("dht: fetch %s: %w", accused.Short(), err)
	}
	var out []*core.RevisionChain
	for _, raw := range raws {
		var chain core.RevisionChain
		if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&chain); err != nil {
			continue // corrupt bytes from a bad replica
		}
		if chain.Verify(r.keys, r.threshold) != nil {
			continue
		}
		if len(chain.Links) == 0 || chain.Culprit() != accused {
			continue
		}
		out = append(out, &chain)
	}
	return out, health, nil
}

// Count returns the number of verifiable accusations against accused —
// the quantity sanctioning policies rate-limit on (§3.7).
func (r *AccusationRepo) Count(accused id.ID) (int, error) {
	chains, err := r.Fetch(accused)
	if err != nil {
		return 0, err
	}
	return len(chains), nil
}
