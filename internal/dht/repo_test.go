package dht

import (
	"crypto/ed25519"
	"errors"
	"math/rand/v2"
	"testing"
	"time"

	"concilium/internal/core"
	"concilium/internal/id"
	"concilium/internal/metrics"
	"concilium/internal/netsim"
	"concilium/internal/sigcrypto"
	"concilium/internal/tomography"
	"concilium/internal/topology"
)

// repoFixture holds a population of signing identities and a blame
// engine over an empty archive (which yields guilty verdicts — the
// paper's Eq. 2 on zero evidence), so tests can mint verifiable chains
// from arbitrary accuser sets.
type repoFixture struct {
	t   *testing.T
	dir map[id.ID]ed25519.PublicKey
	kp  map[id.ID]sigcrypto.KeyPair
	eng *core.BlameEngine
}

func newRepoFixture(t *testing.T, r *rand.Rand, n int) (*repoFixture, []id.ID) {
	t.Helper()
	f := &repoFixture{
		t:   t,
		dir: make(map[id.ID]ed25519.PublicKey),
		kp:  make(map[id.ID]sigcrypto.KeyPair),
	}
	ids := make([]id.ID, n)
	for i := range ids {
		ids[i] = id.Random(r)
		kp := sigcrypto.KeyPairFromRand(r)
		f.dir[ids[i]] = kp.Public
		f.kp[ids[i]] = kp
	}
	eng, err := core.NewBlameEngine(tomography.NewArchive(), core.DefaultBlameConfig())
	if err != nil {
		t.Fatal(err)
	}
	f.eng = eng
	return f, ids
}

func (f *repoFixture) keys() core.KeyDirectory {
	return func(x id.ID) (ed25519.PublicKey, bool) { k, ok := f.dir[x]; return k, ok }
}

// chain mints a verifiable revision chain along path (accusers...,
// culprit) for msgID, with every verdict issued at the given time.
func (f *repoFixture) chain(path []id.ID, msgID uint64, at netsim.Time) *core.RevisionChain {
	f.t.Helper()
	links := make([]core.Accusation, 0, len(path)-1)
	for i := 0; i+1 < len(path); i++ {
		accuser, accused := path[i], path[i+1]
		res, err := f.eng.Blame(accused, []topology.LinkID{1}, at)
		if err != nil {
			f.t.Fatal(err)
		}
		commit := core.NewCommitment(f.kp[accused], accuser, accused, path[len(path)-1], msgID, at)
		acc, err := core.NewAccusation(f.kp[accuser], accuser, res, msgID, []topology.LinkID{1}, commit)
		if err != nil {
			f.t.Fatal(err)
		}
		links = append(links, acc)
	}
	chain, err := core.NewRevisionChain(links)
	if err != nil {
		f.t.Fatal(err)
	}
	return chain
}

func (f *repoFixture) repo(t *testing.T, r *rand.Rand, limits RepoLimits) (*AccusationRepo, *metrics.Registry) {
	t.Helper()
	ring, _ := testRing(t, 20, r)
	store, err := New(ring, 4)
	if err != nil {
		t.Fatal(err)
	}
	repo, err := NewAccusationRepo(store, f.keys(), 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.SetLimits(limits); err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	repo.SetMetrics(reg)
	return repo, reg
}

func TestRepoLimitsValidate(t *testing.T) {
	t.Parallel()
	cases := []RepoLimits{
		{MaxPerAccuserPerKey: -1},
		{MaxPerKey: -1},
		{StaleAfter: -time.Second},
		{MaxPerAccuserPerKey: 5, MaxPerKey: 2},
	}
	for _, l := range cases {
		if err := l.Validate(); err == nil {
			t.Errorf("limits %+v accepted", l)
		}
	}
	if err := (RepoLimits{}).Validate(); err != nil {
		t.Errorf("zero limits rejected: %v", err)
	}
	if err := (RepoLimits{MaxPerAccuserPerKey: 1, MaxPerKey: 8, StaleAfter: time.Minute}).Validate(); err != nil {
		t.Errorf("sane limits rejected: %v", err)
	}
}

func TestRepoPerAccuserRateLimit(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(41, 42))
	f, ids := newRepoFixture(t, r, 5)
	repo, reg := f.repo(t, r, RepoLimits{MaxPerAccuserPerKey: 1})
	victim, spammer, other := ids[0], ids[1], ids[2]

	if err := repo.Publish(f.chain([]id.ID{spammer, victim}, 1, 100)); err != nil {
		t.Fatal(err)
	}
	err := repo.Publish(f.chain([]id.ID{spammer, victim}, 2, 110))
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("second chain from same accuser: err = %v, want rate limit", err)
	}
	// A different accuser is unaffected.
	if err := repo.Publish(f.chain([]id.ID{other, victim}, 3, 120)); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["dht/chains_rate_limited"]; got != 1 {
		t.Errorf("rate-limited counter = %d, want 1", got)
	}
	if n, err := repo.Count(victim); err != nil || n != 2 {
		t.Errorf("Count = %d, %v; want 2", n, err)
	}
}

func TestRepoPerKeyRateLimit(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(43, 44))
	f, ids := newRepoFixture(t, r, 6)
	repo, reg := f.repo(t, r, RepoLimits{MaxPerKey: 2})
	victim := ids[0]

	for i, accuser := range []id.ID{ids[1], ids[2]} {
		if err := repo.Publish(f.chain([]id.ID{accuser, victim}, uint64(i+1), 100)); err != nil {
			t.Fatal(err)
		}
	}
	err := repo.Publish(f.chain([]id.ID{ids[3], victim}, 9, 130))
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("over-cap chain: err = %v, want rate limit", err)
	}
	if got := reg.Snapshot().Counters["dht/chains_rate_limited"]; got != 1 {
		t.Errorf("rate-limited counter = %d, want 1", got)
	}
}

func TestRepoRejectsDuplicates(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(45, 46))
	f, ids := newRepoFixture(t, r, 4)
	repo, reg := f.repo(t, r, RepoLimits{})
	chain := f.chain([]id.ID{ids[1], ids[0]}, 7, 100)

	if err := repo.Publish(chain); err != nil {
		t.Fatal(err)
	}
	err := repo.Publish(chain)
	if !errors.Is(err, ErrDuplicateChain) {
		t.Fatalf("replayed chain: err = %v, want duplicate", err)
	}
	if got := reg.Snapshot().Counters["dht/chains_duplicate"]; got != 1 {
		t.Errorf("duplicate counter = %d, want 1", got)
	}
	if n, err := repo.Count(ids[0]); err != nil || n != 1 {
		t.Errorf("Count = %d, %v; want 1", n, err)
	}
}

func TestRepoRejectsStaleChains(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(47, 48))
	f, ids := newRepoFixture(t, r, 4)
	repo, reg := f.repo(t, r, RepoLimits{StaleAfter: time.Minute})
	verdictAt := netsim.Time(100)
	old := f.chain([]id.ID{ids[1], ids[0]}, 3, verdictAt)

	err := repo.PublishAt(old, verdictAt.Add(2*time.Minute))
	if !errors.Is(err, ErrStaleChain) {
		t.Fatalf("aged chain: err = %v, want stale", err)
	}
	if got := reg.Snapshot().Counters["dht/chains_stale"]; got != 1 {
		t.Errorf("stale counter = %d, want 1", got)
	}
	// Within the bound the same chain is fine.
	if err := repo.PublishAt(old, verdictAt.Add(30*time.Second)); err != nil {
		t.Fatal(err)
	}
	// The untimed Publish never applies the staleness bound.
	fresh := f.chain([]id.ID{ids[2], ids[0]}, 4, verdictAt)
	if err := repo.Publish(fresh); err != nil {
		t.Fatal(err)
	}
}

func TestRepoCountByDiscountsCliques(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(49, 50))
	f, ids := newRepoFixture(t, r, 8)
	repo, _ := f.repo(t, r, RepoLimits{})
	victim := ids[0]
	clique := []id.ID{ids[1], ids[2], ids[3]}
	independent := ids[4]

	for i, accuser := range clique {
		if err := repo.Publish(f.chain([]id.ID{accuser, victim}, uint64(i+1), 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := repo.Publish(f.chain([]id.ID{independent, victim}, 9, 140)); err != nil {
		t.Fatal(err)
	}

	sus := core.NewCliqueSuspector()
	sus.SuspectAll(clique)

	if n, err := repo.Count(victim); err != nil || n != 4 {
		t.Fatalf("Count = %d, %v; want 4", n, err)
	}
	if n, err := repo.CountBy(victim, nil); err != nil || n != 4 {
		t.Fatalf("CountBy(nil) = %d, %v; want 4", n, err)
	}
	if n, err := repo.CountBy(victim, sus.Group); err != nil || n != 2 {
		t.Fatalf("CountBy(clique-discounted) = %d, %v; want 2 (clique + independent)", n, err)
	}
}

func TestRepoMultiLinkChainCoSigners(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(51, 52))
	f, ids := newRepoFixture(t, r, 6)
	repo, _ := f.repo(t, r, RepoLimits{MaxPerAccuserPerKey: 1})
	victim := ids[0]
	a1, a2 := ids[1], ids[2]

	// A co-signed chain a1→a2→victim counts against a2 (the final
	// accuser), not a1.
	if err := repo.Publish(f.chain([]id.ID{a1, a2, victim}, 1, 100)); err != nil {
		t.Fatal(err)
	}
	err := repo.Publish(f.chain([]id.ID{a1, a2, victim}, 2, 110))
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("second co-signed chain: err = %v, want rate limit", err)
	}
	// a1 as final accuser is a distinct accounting bucket.
	if err := repo.Publish(f.chain([]id.ID{a1, victim}, 3, 120)); err != nil {
		t.Fatal(err)
	}
}
