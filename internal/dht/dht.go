// Package dht implements the replicated accusation repository of §3.4:
// formal accusations are inserted into a DHT living atop the secure
// overlay, keyed by the accused host's identity, and fetched by any host
// considering that peer. Inserts and fetches go to the replica set of
// ring members closest to the key, so a few faulty replicas cannot
// suppress an accusation.
package dht

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"concilium/internal/id"
	"concilium/internal/metrics"
	"concilium/internal/overlay"
)

// DefaultReplicas is the replica-set size for each key.
const DefaultReplicas = 4

// Store is a replicated key-value store over the overlay membership.
// Values are opaque bytes; multiple distinct values may accumulate under
// one key (a host can be accused by many peers).
type Store struct {
	ring     *overlay.Ring
	replicas int
	nodes    map[id.ID]*nodeStore
	faulty   map[id.ID]bool

	met storeMetrics
}

// storeMetrics caches the store's metric handles; all nil (discard)
// until SetMetrics is called with a live registry.
type storeMetrics struct {
	puts, gets       *metrics.Counter
	putsDeg, getsDeg *metrics.Counter
	putWall, getWall *metrics.Histogram
	valueBytes       *metrics.Counter
}

type nodeStore struct {
	values map[id.ID][][]byte
}

// New creates a store replicating each key onto the `replicas` closest
// ring members.
func New(ring *overlay.Ring, replicas int) (*Store, error) {
	if ring == nil {
		return nil, fmt.Errorf("dht: nil ring")
	}
	if replicas <= 0 {
		return nil, fmt.Errorf("dht: replicas %d must be positive", replicas)
	}
	if replicas > ring.Size() {
		replicas = ring.Size()
	}
	s := &Store{
		ring:     ring,
		replicas: replicas,
		nodes:    make(map[id.ID]*nodeStore, ring.Size()),
		faulty:   make(map[id.ID]bool),
	}
	for _, m := range ring.Members() {
		s.nodes[m] = &nodeStore{values: make(map[id.ID][][]byte)}
	}
	return s, nil
}

// SetMetrics publishes the store's operation counters, degraded-op
// counters, stored bytes, and wall-clock op latencies into reg (names
// "dht/*"; latencies carry the reserved "_wallns" suffix). A nil
// registry disables publication.
func (s *Store) SetMetrics(reg *metrics.Registry) {
	s.met = storeMetrics{
		puts:       reg.Counter("dht/puts"),
		gets:       reg.Counter("dht/gets"),
		putsDeg:    reg.Counter("dht/puts_degraded"),
		getsDeg:    reg.Counter("dht/gets_degraded"),
		putWall:    reg.MustHistogram("dht/put_wallns", metrics.LatencyBuckets),
		getWall:    reg.MustHistogram("dht/get_wallns", metrics.LatencyBuckets),
		valueBytes: reg.Counter("dht/value_bytes"),
	}
}

// SetFaulty marks a replica as misbehaving: it drops writes and returns
// nothing on reads. Used by failure injection (tests and the chaos
// campaign's scheduled replica outages) to check that replication
// tolerates bad replicas.
func (s *Store) SetFaulty(node id.ID, faulty bool) error {
	if _, ok := s.nodes[node]; !ok {
		return fmt.Errorf("dht: unknown node %s", node.Short())
	}
	s.faulty[node] = faulty
	return nil
}

// FaultyCount returns the number of currently faulty members.
func (s *Store) FaultyCount() int {
	n := 0
	for node, bad := range s.faulty {
		if bad {
			if _, ok := s.nodes[node]; ok {
				n++
			}
		}
	}
	return n
}

// Health describes how much of a key's replica set answered an
// operation. Live < Total is a degraded (but successful) operation;
// Live == 0 is a total outage the caller must be told about.
type Health struct {
	// Live is the number of replicas that served the operation.
	Live int
	// Total is the size of the key's replica set.
	Total int
}

// Degraded reports a partial replica set.
func (h Health) Degraded() bool { return h.Live < h.Total }

// Quorum reports whether a strict majority of the replica set was live.
// Campaigns that keep concurrent outages below half the replica set get
// read-your-writes durability at every instant, not just after repair.
func (h Health) Quorum() bool { return 2*h.Live > h.Total }

// ReplicaSet returns the members responsible for key, nearest first.
func (s *Store) ReplicaSet(key id.ID) []id.ID {
	members := s.ring.Members()
	out := make([]id.ID, len(members))
	copy(out, members)
	sort.Slice(out, func(i, j int) bool { return id.Closer(out[i], out[j], key) })
	return out[:s.replicas]
}

// Put stores value under key on every live replica. It fails only when
// every replica is faulty.
func (s *Store) Put(key id.ID, value []byte) error {
	_, err := s.PutChecked(key, value)
	return err
}

// PutChecked stores value under key on every live replica, falling back
// across the replica set, and reports how many replicas accepted the
// write. It fails only when every replica is faulty; a degraded health
// (Live < Total) means the write landed but with reduced durability.
func (s *Store) PutChecked(key id.ID, value []byte) (Health, error) {
	start := time.Now()
	defer func() { s.met.putWall.ObserveDuration(time.Since(start)) }()
	h := Health{Total: s.replicas}
	if len(value) == 0 {
		return h, fmt.Errorf("dht: empty value")
	}
	s.met.puts.Inc()
	s.met.valueBytes.Add(uint64(len(value)))
	for _, r := range s.ReplicaSet(key) {
		if s.faulty[r] {
			continue
		}
		ns := s.nodes[r]
		// Deduplicate identical values on the same replica.
		dup := false
		for _, v := range ns.values[key] {
			if bytes.Equal(v, value) {
				dup = true
				break
			}
		}
		if !dup {
			cp := append([]byte(nil), value...)
			ns.values[key] = append(ns.values[key], cp)
		}
		h.Live++
	}
	if h.Live == 0 {
		return h, fmt.Errorf("dht: all %d replicas for %s are faulty", s.replicas, key.Short())
	}
	if h.Degraded() {
		s.met.putsDeg.Inc()
	}
	return h, nil
}

// Get returns the distinct values stored under key across the replica
// set, in first-seen order.
func (s *Store) Get(key id.ID) [][]byte {
	out, _, _ := s.GetChecked(key)
	return out
}

// GetChecked returns the distinct values stored under key across the
// live members of the replica set, in first-seen order, plus the read's
// replica health. A fetch that reached no replica at all returns an
// error rather than a silently empty result — callers can distinguish
// "nothing is stored" (nil values, nil error) from "the whole replica
// set is down" (error).
func (s *Store) GetChecked(key id.ID) ([][]byte, Health, error) {
	start := time.Now()
	defer func() { s.met.getWall.ObserveDuration(time.Since(start)) }()
	s.met.gets.Inc()
	h := Health{Total: s.replicas}
	var out [][]byte
	seen := make(map[string]bool)
	for _, r := range s.ReplicaSet(key) {
		if s.faulty[r] {
			continue
		}
		h.Live++
		for _, v := range s.nodes[r].values[key] {
			k := string(v)
			if !seen[k] {
				seen[k] = true
				out = append(out, append([]byte(nil), v...))
			}
		}
	}
	if h.Live == 0 {
		return nil, h, fmt.Errorf("dht: all %d replicas for %s are faulty", s.replicas, key.Short())
	}
	if h.Degraded() {
		s.met.getsDeg.Inc()
	}
	return out, h, nil
}

// KeyHealth reports the current replica health of a key without reading
// its values.
func (s *Store) KeyHealth(key id.ID) Health {
	h := Health{Total: s.replicas}
	for _, r := range s.ReplicaSet(key) {
		if !s.faulty[r] {
			h.Live++
		}
	}
	return h
}

// Load returns the number of keys a node is responsible for — used to
// check replica balance.
func (s *Store) Load(node id.ID) int {
	ns, ok := s.nodes[node]
	if !ok {
		return 0
	}
	return len(ns.values)
}

// Rebalance migrates the store onto a new membership ring: every value
// still held by a live replica is re-homed onto the key's new replica
// set. Values whose every replica departed or turned faulty are lost —
// the availability bound replication buys. Accusation durability across
// churn therefore depends on the replica count relative to the churn
// rate, exactly as in a deployed DHT.
func (s *Store) Rebalance(newRing *overlay.Ring) error {
	if newRing == nil {
		return fmt.Errorf("dht: nil ring")
	}
	// Collect surviving values: only from live members of the OLD ring
	// that remain live (faulty nodes contribute nothing).
	type kv struct {
		key   id.ID
		value []byte
	}
	var survivors []kv
	seen := make(map[string]bool)
	for node, ns := range s.nodes {
		if s.faulty[node] {
			continue
		}
		for key, values := range ns.values {
			for _, v := range values {
				dedupe := string(key[:]) + "\x00" + string(v)
				if !seen[dedupe] {
					seen[dedupe] = true
					survivors = append(survivors, kv{key: key, value: v})
				}
			}
		}
	}

	replicas := s.replicas
	if replicas > newRing.Size() {
		replicas = newRing.Size()
	}
	fresh := make(map[id.ID]*nodeStore, newRing.Size())
	faulty := make(map[id.ID]bool)
	for _, m := range newRing.Members() {
		fresh[m] = &nodeStore{values: make(map[id.ID][][]byte)}
		if s.faulty[m] {
			faulty[m] = true // a faulty node stays faulty across churn
		}
	}
	s.ring = newRing
	s.replicas = replicas
	s.nodes = fresh
	s.faulty = faulty

	for _, item := range survivors {
		// Best effort: a key whose whole new replica set is faulty is
		// dropped rather than failing the rebalance.
		_ = s.Put(item.key, item.value)
	}
	return nil
}
