package dht

import (
	"crypto/ed25519"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"concilium/internal/core"
	"concilium/internal/id"
	"concilium/internal/overlay"
	"concilium/internal/sigcrypto"
	"concilium/internal/tomography"
	"concilium/internal/topology"
)

func testRing(t *testing.T, n int, r *rand.Rand) (*overlay.Ring, []id.ID) {
	t.Helper()
	ids := make([]id.ID, n)
	seen := map[id.ID]bool{}
	for i := 0; i < n; {
		x := id.Random(r)
		if !seen[x] {
			seen[x] = true
			ids[i] = x
			i++
		}
	}
	ring, err := overlay.NewRing(ids)
	if err != nil {
		t.Fatal(err)
	}
	return ring, ids
}

func TestStoreValidation(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(1, 2))
	ring, _ := testRing(t, 10, r)
	if _, err := New(nil, 3); err == nil {
		t.Error("nil ring accepted")
	}
	if _, err := New(ring, 0); err == nil {
		t.Error("0 replicas accepted")
	}
	// Replicas capped at ring size.
	s, err := New(ring, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.ReplicaSet(id.Zero)); got != 10 {
		t.Errorf("replica set = %d, want 10", got)
	}
}

func TestStorePutGet(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(3, 4))
	ring, ids := testRing(t, 20, r)
	s, err := New(ring, 4)
	if err != nil {
		t.Fatal(err)
	}
	key := ids[7]
	if err := s.Put(key, []byte("accusation-1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key, []byte("accusation-2")); err != nil {
		t.Fatal(err)
	}
	// Duplicate put is idempotent.
	if err := s.Put(key, []byte("accusation-1")); err != nil {
		t.Fatal(err)
	}
	got := s.Get(key)
	if len(got) != 2 {
		t.Fatalf("Get returned %d values, want 2", len(got))
	}
	if s.Get(id.Zero) != nil {
		t.Error("empty key returned values")
	}
	if err := s.Put(key, nil); err == nil {
		t.Error("empty value accepted")
	}
}

func TestStoreReplicaSetIsClosest(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(5, 6))
	ring, _ := testRing(t, 50, r)
	key := id.Random(r)
	set := s3(t, ring).ReplicaSet(key)
	// Every non-replica must be at least as far as the farthest replica.
	farthest := set[len(set)-1]
	inSet := map[id.ID]bool{}
	for _, m := range set {
		inSet[m] = true
	}
	for _, m := range ring.Members() {
		if inSet[m] {
			continue
		}
		if id.Closer(m, farthest, key) {
			t.Fatalf("non-replica %s closer to key than replica %s", m.Short(), farthest.Short())
		}
	}
}

func s3(t *testing.T, ring *overlay.Ring) *Store {
	t.Helper()
	s, err := New(ring, 3)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreSurvivesFaultyReplicas(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(7, 8))
	ring, _ := testRing(t, 30, r)
	s, err := New(ring, 4)
	if err != nil {
		t.Fatal(err)
	}
	key := id.Random(r)
	set := s.ReplicaSet(key)
	// Two of four replicas are faulty.
	if err := s.SetFaulty(set[0], true); err != nil {
		t.Fatal(err)
	}
	if err := s.SetFaulty(set[2], true); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key, []byte("survives")); err != nil {
		t.Fatal(err)
	}
	if got := s.Get(key); len(got) != 1 || string(got[0]) != "survives" {
		t.Fatalf("Get through faulty replicas = %v", got)
	}
	// All replicas faulty: Put fails loudly.
	for _, m := range set {
		if err := s.SetFaulty(m, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put(key, []byte("doomed")); err == nil {
		t.Error("put with all-faulty replica set succeeded")
	}
	if err := s.SetFaulty(id.Zero, true); err == nil {
		t.Error("unknown node accepted")
	}
}

func TestStoreDegradedReads(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(31, 32))
	ring, _ := testRing(t, 30, r)
	s, err := New(ring, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Store several accusations under one key with all replicas healthy.
	key := id.Random(r)
	values := [][]byte{[]byte("acc-a"), []byte("acc-b"), []byte("acc-c")}
	for _, v := range values {
		h, err := s.PutChecked(key, v)
		if err != nil {
			t.Fatal(err)
		}
		if h.Live != 4 || h.Total != 4 || h.Degraded() {
			t.Fatalf("healthy put health = %+v", h)
		}
	}
	// Fail replicas one at a time: with up to replicas-1 faulty, every
	// stored value must still come back, with health reporting the dip.
	set := s.ReplicaSet(key)
	for down := 1; down < len(set); down++ {
		if err := s.SetFaulty(set[down-1], true); err != nil {
			t.Fatal(err)
		}
		got, h, err := s.GetChecked(key)
		if err != nil {
			t.Fatalf("%d faulty: %v", down, err)
		}
		if len(got) != len(values) {
			t.Fatalf("%d faulty: %d values returned, want %d", down, len(got), len(values))
		}
		if h.Live != 4-down || !h.Degraded() {
			t.Fatalf("%d faulty: health = %+v", down, h)
		}
		if wantQ := 2*(4-down) > 4; h.Quorum() != wantQ {
			t.Fatalf("%d faulty: quorum = %v, want %v", down, h.Quorum(), wantQ)
		}
	}
	// All replicas faulty: the outage must be detected and reported,
	// not returned as a silently empty result.
	if err := s.SetFaulty(set[len(set)-1], true); err != nil {
		t.Fatal(err)
	}
	got, h, err := s.GetChecked(key)
	if err == nil {
		t.Fatalf("total outage returned values=%v health=%+v with nil error", got, h)
	}
	if h.Live != 0 {
		t.Errorf("total outage health = %+v", h)
	}
	if s.FaultyCount() != 4 {
		t.Errorf("FaultyCount = %d, want 4", s.FaultyCount())
	}
	// An empty key on a healthy replica set stays distinguishable: nil
	// values with nil error.
	empty := id.Random(r)
	if vals, h2, err := s.GetChecked(empty); err != nil || vals != nil || h2.Live == 0 {
		t.Errorf("empty key: vals=%v health=%+v err=%v", vals, h2, err)
	}
}

func TestKeyHealthTracksOutages(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(33, 34))
	ring, _ := testRing(t, 20, r)
	s, err := New(ring, 3)
	if err != nil {
		t.Fatal(err)
	}
	key := id.Random(r)
	if h := s.KeyHealth(key); h.Live != 3 || !h.Quorum() {
		t.Fatalf("healthy key health = %+v", h)
	}
	set := s.ReplicaSet(key)
	if err := s.SetFaulty(set[0], true); err != nil {
		t.Fatal(err)
	}
	if err := s.SetFaulty(set[1], true); err != nil {
		t.Fatal(err)
	}
	if h := s.KeyHealth(key); h.Live != 1 || h.Quorum() {
		t.Fatalf("degraded key health = %+v", h)
	}
}

// buildVerifiedChain creates a minimal valid single-link chain.
func buildVerifiedChain(t *testing.T, r *rand.Rand) (*core.RevisionChain, core.KeyDirectory) {
	t.Helper()
	type identity struct {
		id   id.ID
		keys sigcrypto.KeyPair
	}
	mk := func() identity {
		return identity{id: id.Random(r), keys: sigcrypto.KeyPairFromRand(r)}
	}
	accuser, accused, dest := mk(), mk(), mk()
	dir := map[id.ID]ed25519.PublicKey{
		accuser.id: accuser.keys.Public,
		accused.id: accused.keys.Public,
		dest.id:    dest.keys.Public,
	}
	keys := func(x id.ID) (ed25519.PublicKey, bool) { k, ok := dir[x]; return k, ok }

	eng, err := core.NewBlameEngine(tomography.NewArchive(), core.DefaultBlameConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Blame(accused.id, []topology.LinkID{1}, 100)
	if err != nil {
		t.Fatal(err)
	}
	commit := core.NewCommitment(accused.keys, accuser.id, accused.id, dest.id, 5, 90)
	acc, err := core.NewAccusation(accuser.keys, accuser.id, res, 5, []topology.LinkID{1}, commit)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := core.NewRevisionChain([]core.Accusation{acc})
	if err != nil {
		t.Fatal(err)
	}
	return chain, keys
}

func TestAccusationRepoRoundTrip(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(9, 10))
	chain, keys := buildVerifiedChain(t, r)
	// Ring must include the culprit region; any members work since
	// replica selection is by closeness, not membership of the culprit.
	ring, _ := testRing(t, 20, r)
	store, err := New(ring, 4)
	if err != nil {
		t.Fatal(err)
	}
	repo, err := NewAccusationRepo(store, keys, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Publish(chain); err != nil {
		t.Fatal(err)
	}
	got, err := repo.Fetch(chain.Culprit())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("fetched %d chains, want 1", len(got))
	}
	if got[0].Culprit() != chain.Culprit() {
		t.Error("culprit changed in transit")
	}
	if err := got[0].Verify(keys, 0.4); err != nil {
		t.Errorf("fetched chain does not verify: %v", err)
	}
	n, err := repo.Count(chain.Culprit())
	if err != nil || n != 1 {
		t.Errorf("Count = %d, %v", n, err)
	}
}

func TestAccusationRepoDegradedFetch(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(35, 36))
	chain, keys := buildVerifiedChain(t, r)
	ring, _ := testRing(t, 25, r)
	store, err := New(ring, 4)
	if err != nil {
		t.Fatal(err)
	}
	repo, err := NewAccusationRepo(store, keys, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Publish(chain); err != nil {
		t.Fatal(err)
	}
	// Up to replicas-1 faulty members: the accusation must survive.
	set := store.ReplicaSet(chain.Culprit())
	for down := 1; down < len(set); down++ {
		if err := store.SetFaulty(set[down-1], true); err != nil {
			t.Fatal(err)
		}
		got, h, err := repo.FetchChecked(chain.Culprit())
		if err != nil {
			t.Fatalf("%d faulty: %v", down, err)
		}
		if len(got) != 1 || got[0].Culprit() != chain.Culprit() {
			t.Fatalf("%d faulty: accusation lost (%d chains)", down, len(got))
		}
		if !h.Degraded() {
			t.Fatalf("%d faulty: health not degraded: %+v", down, h)
		}
	}
	// Full outage: reported, not silently empty.
	if err := store.SetFaulty(set[len(set)-1], true); err != nil {
		t.Fatal(err)
	}
	if _, _, err := repo.FetchChecked(chain.Culprit()); err == nil {
		t.Error("total outage fetch returned nil error")
	}
	if _, err := repo.Fetch(chain.Culprit()); err == nil {
		t.Error("total outage Fetch returned nil error")
	}
}

func TestAccusationRepoRejectsBadChains(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(11, 12))
	chain, keys := buildVerifiedChain(t, r)
	ring, _ := testRing(t, 20, r)
	store, err := New(ring, 4)
	if err != nil {
		t.Fatal(err)
	}
	repo, err := NewAccusationRepo(store, keys, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the chain: publishing must refuse.
	bad := *chain
	bad.Links = append([]core.Accusation(nil), chain.Links...)
	bad.Links[0].Blame = 0.99
	if err := repo.Publish(&bad); err == nil {
		t.Error("unverifiable chain published")
	}
	if err := repo.Publish(nil); err == nil {
		t.Error("nil chain published")
	}

	// Garbage injected directly at replicas is filtered on fetch.
	if err := store.Put(chain.Culprit(), []byte("not-a-chain")); err != nil {
		t.Fatal(err)
	}
	got, err := repo.Fetch(chain.Culprit())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("garbage survived verification: %d chains", len(got))
	}
}

func TestNewAccusationRepoValidation(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(13, 14))
	ring, _ := testRing(t, 5, r)
	store, err := New(ring, 2)
	if err != nil {
		t.Fatal(err)
	}
	keys := func(id.ID) (ed25519.PublicKey, bool) { return nil, false }
	if _, err := NewAccusationRepo(nil, keys, 0.4); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := NewAccusationRepo(store, nil, 0.4); err == nil {
		t.Error("nil keys accepted")
	}
	if _, err := NewAccusationRepo(store, keys, 0); err == nil {
		t.Error("zero threshold accepted")
	}
}

func TestStoreLoadBalance(t *testing.T) {
	t.Parallel()
	// Random keys should spread across replicas rather than piling on
	// one member.
	r := rand.New(rand.NewPCG(15, 16))
	ring, _ := testRing(t, 40, r)
	s, err := New(ring, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := s.Put(id.Random(r), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	max := 0
	for _, m := range ring.Members() {
		if l := s.Load(m); l > max {
			max = l
		}
	}
	// 200 keys x 3 replicas over 40 nodes = 15 average; a hot spot of 3x
	// average means the closeness mapping is broken.
	if max > 45 {
		t.Errorf("hottest replica holds %d keys (avg 15)", max)
	}
}

func TestRebalanceSurvivesChurn(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(17, 18))
	ring, ids := testRing(t, 30, r)
	s, err := New(ring, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Store values under many keys.
	keys := make([]id.ID, 20)
	for i := range keys {
		keys[i] = id.Random(r)
		if err := s.Put(keys[i], []byte{byte(i), 0xaa}); err != nil {
			t.Fatal(err)
		}
	}
	// Depart three members (fewer than the replica count) and add five
	// new ones.
	excluded := map[id.ID]bool{ids[0]: true, ids[1]: true, ids[2]: true}
	shrunk, err := ring.Without(excluded)
	if err != nil {
		t.Fatal(err)
	}
	grown := shrunk
	for i := 0; i < 5; i++ {
		grown, err = grown.WithMember(id.Random(r))
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Rebalance(grown); err != nil {
		t.Fatal(err)
	}
	// Every value survives: at most 3 of 4 replicas departed.
	for i, key := range keys {
		got := s.Get(key)
		if len(got) != 1 || got[0][0] != byte(i) {
			t.Fatalf("key %d lost after rebalance: %v", i, got)
		}
	}
	// Replica sets now live on the new ring: departed members hold no load.
	for dead := range excluded {
		if s.Load(dead) != 0 {
			t.Errorf("departed member still loaded")
		}
	}
	if err := s.Rebalance(nil); err == nil {
		t.Error("nil ring accepted")
	}
}

func TestRebalancePreservesFaultMarks(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(19, 20))
	ring, ids := testRing(t, 10, r)
	s, err := New(ring, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetFaulty(ids[3], true); err != nil {
		t.Fatal(err)
	}
	key := id.Random(r)
	if err := s.Put(key, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Rebalance(ring); err != nil {
		t.Fatal(err)
	}
	// The fault mark survived the rebalance: writes still skip the node.
	set := s.ReplicaSet(ids[3])
	_ = set
	if !s.faulty[ids[3]] {
		t.Error("fault mark lost in rebalance")
	}
	if got := s.Get(key); len(got) != 1 {
		t.Errorf("value lost in same-ring rebalance: %v", got)
	}
}

// Property: any value Put under a key is returned by Get, for random
// key/value workloads with no faulty replicas.
func TestPropPutGetComplete(t *testing.T) {
	t.Parallel()
	f := func(seed uint16, nVals uint8) bool {
		r := rand.New(rand.NewPCG(uint64(seed), 5))
		ring, _ := testRingQuick(30, r)
		s, err := New(ring, 4)
		if err != nil {
			return false
		}
		type kv struct {
			key   id.ID
			value byte
		}
		var stored []kv
		for i := 0; i < int(nVals%40)+1; i++ {
			key := id.Random(r)
			val := byte(r.IntN(256))
			if err := s.Put(key, []byte{val, byte(i)}); err != nil {
				return false
			}
			stored = append(stored, kv{key: key, value: val})
		}
		for i, item := range stored {
			found := false
			for _, got := range s.Get(item.key) {
				if len(got) == 2 && got[0] == item.value && got[1] == byte(i) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func testRingQuick(n int, r *rand.Rand) (*overlay.Ring, []id.ID) {
	ids := make([]id.ID, n)
	seen := map[id.ID]bool{}
	for i := 0; i < n; {
		x := id.Random(r)
		if !seen[x] {
			seen[x] = true
			ids[i] = x
			i++
		}
	}
	ring, err := overlay.NewRing(ids)
	if err != nil {
		panic(err)
	}
	return ring, ids
}
