// Package trace is the observability layer: structured events emitted
// by the simulator and protocol layers (probes, snapshot rejections,
// verdicts, accusations, link failures), with in-memory recorders for
// tests, debugging, and operational counters. A deployment diagnosing
// blame disputes needs exactly this audit trail — §3.5's rebuttals are
// only possible for hosts that kept records.
package trace

import (
	"fmt"
	"sync"

	"concilium/internal/id"
	"concilium/internal/netsim"
	"concilium/internal/topology"
)

// Kind classifies an event.
type Kind int

// Event kinds.
const (
	// KindProbe: a host completed a lightweight probe sweep.
	KindProbe Kind = iota + 1
	// KindSnapshotRejected: a received snapshot failed validation.
	KindSnapshotRejected
	// KindMessageSent: a stewarded message entered the overlay.
	KindMessageSent
	// KindMessageDropped: a stewarded message (or its ack) was lost.
	KindMessageDropped
	// KindVerdict: a steward judged its next hop.
	KindVerdict
	// KindAccusation: a formal accusation chain was assembled.
	KindAccusation
	// KindLinkFailed / KindLinkRepaired: IP link state changes.
	KindLinkFailed
	KindLinkRepaired
)

// String names the kind for logs.
func (k Kind) String() string {
	switch k {
	case KindProbe:
		return "probe"
	case KindSnapshotRejected:
		return "snapshot-rejected"
	case KindMessageSent:
		return "message-sent"
	case KindMessageDropped:
		return "message-dropped"
	case KindVerdict:
		return "verdict"
	case KindAccusation:
		return "accusation"
	case KindLinkFailed:
		return "link-failed"
	case KindLinkRepaired:
		return "link-repaired"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one structured trace record. Zero-valued fields mean "not
// applicable to this kind".
type Event struct {
	At     netsim.Time
	Kind   Kind
	Node   id.ID
	Peer   id.ID
	Link   topology.LinkID
	Guilty bool
	Detail string
}

// String renders the event for logs.
func (e Event) String() string {
	s := fmt.Sprintf("%10.3fs %-18s", e.At.Seconds(), e.Kind)
	if e.Node != (id.ID{}) {
		s += " node=" + e.Node.Short()
	}
	if e.Peer != (id.ID{}) {
		s += " peer=" + e.Peer.Short()
	}
	if e.Kind == KindLinkFailed || e.Kind == KindLinkRepaired {
		s += fmt.Sprintf(" link=%d", e.Link)
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// Recorder consumes events. Implementations must tolerate concurrent
// callers.
type Recorder interface {
	Record(Event)
}

// Ring keeps the most recent capacity events.
type Ring struct {
	mu     sync.Mutex
	buf    []Event
	next   int
	filled int
}

// NewRing creates a bounded recorder.
func NewRing(capacity int) (*Ring, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("trace: ring capacity %d must be positive", capacity)
	}
	return &Ring{buf: make([]Event, capacity)}, nil
}

// Record stores the event, evicting the oldest when full.
func (r *Ring) Record(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	if r.filled < len(r.buf) {
		r.filled++
	}
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, r.filled)
	start := r.next - r.filled
	for i := 0; i < r.filled; i++ {
		out = append(out, r.buf[((start+i)%len(r.buf)+len(r.buf))%len(r.buf)])
	}
	return out
}

// Counter aggregates event counts by kind — the cheap always-on
// recorder.
type Counter struct {
	mu     sync.Mutex
	counts map[Kind]int
}

// NewCounter creates an empty counter.
func NewCounter() *Counter {
	return &Counter{counts: make(map[Kind]int)}
}

// Record increments the kind's count.
func (c *Counter) Record(e Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counts[e.Kind]++
}

// Count returns the number of recorded events of kind k.
func (c *Counter) Count(k Kind) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[k]
}

// Total returns the number of recorded events.
func (c *Counter) Total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int
	for _, v := range c.counts {
		n += v
	}
	return n
}

// multi fans events out to several recorders.
type multi struct {
	recorders []Recorder
}

// Multi combines recorders; nil entries are skipped.
func Multi(rs ...Recorder) Recorder {
	kept := make([]Recorder, 0, len(rs))
	for _, r := range rs {
		if r != nil {
			kept = append(kept, r)
		}
	}
	return &multi{recorders: kept}
}

func (m *multi) Record(e Event) {
	for _, r := range m.recorders {
		r.Record(e)
	}
}

// Filter passes through only events matching keep.
func Filter(next Recorder, keep func(Event) bool) (Recorder, error) {
	if next == nil || keep == nil {
		return nil, fmt.Errorf("trace: filter needs recorder and predicate")
	}
	return &filter{next: next, keep: keep}, nil
}

type filter struct {
	next Recorder
	keep func(Event) bool
}

func (f *filter) Record(e Event) {
	if f.keep(e) {
		f.next.Record(e)
	}
}
