package trace

import (
	"strings"
	"sync"
	"testing"

	"concilium/internal/id"
	"concilium/internal/netsim"
)

func TestKindString(t *testing.T) {
	t.Parallel()
	names := map[Kind]string{
		KindProbe:            "probe",
		KindSnapshotRejected: "snapshot-rejected",
		KindMessageSent:      "message-sent",
		KindMessageDropped:   "message-dropped",
		KindVerdict:          "verdict",
		KindAccusation:       "accusation",
		KindLinkFailed:       "link-failed",
		KindLinkRepaired:     "link-repaired",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind renders empty")
	}
}

func TestEventString(t *testing.T) {
	t.Parallel()
	e := Event{
		At:     1_500_000_000,
		Kind:   KindLinkFailed,
		Link:   42,
		Detail: "injected",
	}
	s := e.String()
	for _, want := range []string{"link-failed", "link=42", "injected", "1.500"} {
		if !strings.Contains(s, want) {
			t.Errorf("event string %q missing %q", s, want)
		}
	}
}

func TestRingEviction(t *testing.T) {
	t.Parallel()
	r, err := NewRing(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		r.Record(Event{At: netsim.Time(i), Kind: KindProbe})
	}
	events := r.Events()
	if len(events) != 3 {
		t.Fatalf("retained %d events, want 3", len(events))
	}
	for i, e := range events {
		if e.At != netsim.Time(i+2) {
			t.Errorf("event %d at %v, want %d", i, e.At, i+2)
		}
	}
	if _, err := NewRing(0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestCounter(t *testing.T) {
	t.Parallel()
	c := NewCounter()
	c.Record(Event{Kind: KindProbe})
	c.Record(Event{Kind: KindProbe})
	c.Record(Event{Kind: KindVerdict})
	if c.Count(KindProbe) != 2 || c.Count(KindVerdict) != 1 {
		t.Errorf("counts = %d, %d", c.Count(KindProbe), c.Count(KindVerdict))
	}
	if c.Total() != 3 {
		t.Errorf("Total = %d", c.Total())
	}
	if c.Count(KindAccusation) != 0 {
		t.Error("unseen kind has count")
	}
}

func TestMultiAndFilter(t *testing.T) {
	t.Parallel()
	a, b := NewCounter(), NewCounter()
	m := Multi(a, nil, b)
	m.Record(Event{Kind: KindProbe})
	if a.Total() != 1 || b.Total() != 1 {
		t.Error("multi did not fan out")
	}
	onlyVerdicts, err := Filter(a, func(e Event) bool { return e.Kind == KindVerdict })
	if err != nil {
		t.Fatal(err)
	}
	onlyVerdicts.Record(Event{Kind: KindProbe})
	onlyVerdicts.Record(Event{Kind: KindVerdict})
	if a.Count(KindVerdict) != 1 || a.Count(KindProbe) != 1 {
		t.Errorf("filter leaked or blocked: probe=%d verdict=%d",
			a.Count(KindProbe), a.Count(KindVerdict))
	}
	if _, err := Filter(nil, nil); err == nil {
		t.Error("nil filter args accepted")
	}
}

func TestRecordersConcurrentSafe(t *testing.T) {
	t.Parallel()
	ring, err := NewRing(64)
	if err != nil {
		t.Fatal(err)
	}
	counter := NewCounter()
	m := Multi(ring, counter)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m.Record(Event{Kind: KindProbe, Node: id.ID{byte(i)}})
			}
		}()
	}
	wg.Wait()
	if counter.Total() != 1600 {
		t.Errorf("Total = %d, want 1600", counter.Total())
	}
	if len(ring.Events()) != 64 {
		t.Errorf("ring retained %d, want 64", len(ring.Events()))
	}
}
