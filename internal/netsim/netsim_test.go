package netsim

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"

	"concilium/internal/topology"
)

func testRand() *rand.Rand { return rand.New(rand.NewPCG(21, 23)) }

func lineGraph(t *testing.T, n int) *topology.Graph {
	t.Helper()
	g, err := topology.NewGraph(n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n-1; i++ {
		if _, err := g.AddLink(topology.RouterID(i), topology.RouterID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestSimulatorOrdering(t *testing.T) {
	t.Parallel()
	s := NewSimulator()
	var order []int
	if err := s.Schedule(30, func() { order = append(order, 3) }); err != nil {
		t.Fatal(err)
	}
	if err := s.Schedule(10, func() { order = append(order, 1) }); err != nil {
		t.Fatal(err)
	}
	if err := s.Schedule(20, func() { order = append(order, 2) }); err != nil {
		t.Fatal(err)
	}
	// Same-time events run in scheduling order.
	if err := s.Schedule(20, func() { order = append(order, 4) }); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(100)
	want := []int{1, 2, 3}
	_ = want
	if len(order) != 4 || order[0] != 1 || order[1] != 2 || order[2] != 4 || order[3] != 3 {
		t.Errorf("order = %v, want [1 2 4 3]", order)
	}
	if s.Now() != 100 {
		t.Errorf("final time = %v, want 100", s.Now())
	}
}

func TestSimulatorRejectsPastAndNil(t *testing.T) {
	t.Parallel()
	s := NewSimulator()
	if err := s.Schedule(10, func() {}); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(10)
	if err := s.Schedule(5, func() {}); err == nil {
		t.Error("scheduling in the past should fail")
	}
	if err := s.Schedule(20, nil); err == nil {
		t.Error("nil event should fail")
	}
}

func TestSimulatorNestedScheduling(t *testing.T) {
	t.Parallel()
	s := NewSimulator()
	var fired int
	var rec func()
	rec = func() {
		fired++
		if fired < 5 {
			if err := s.ScheduleAfter(time.Second, rec); err != nil {
				t.Errorf("nested schedule: %v", err)
			}
		}
	}
	if err := s.ScheduleAfter(time.Second, rec); err != nil {
		t.Fatal(err)
	}
	s.RunFor(10 * time.Second)
	if fired != 5 {
		t.Errorf("fired %d times, want 5", fired)
	}
	if s.Pending() != 0 {
		t.Errorf("pending = %d", s.Pending())
	}
}

func TestSimulatorRunUntilStopsAtDeadline(t *testing.T) {
	t.Parallel()
	s := NewSimulator()
	var late bool
	if err := s.Schedule(Time(time.Hour), func() { late = true }); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(Time(time.Minute))
	if late {
		t.Error("event past deadline ran")
	}
	if s.Now() != Time(time.Minute) {
		t.Errorf("clock = %v, want 1 minute", s.Now())
	}
	s.RunUntil(Time(2 * time.Hour))
	if !late {
		t.Error("event never ran")
	}
}

func TestTimeHelpers(t *testing.T) {
	t.Parallel()
	t0 := Time(0).Add(90 * time.Second)
	if t0.Seconds() != 90 {
		t.Errorf("Seconds = %v", t0.Seconds())
	}
	if t0.Sub(Time(0)) != 90*time.Second {
		t.Errorf("Sub = %v", t0.Sub(Time(0)))
	}
}

func TestNetworkLinkState(t *testing.T) {
	t.Parallel()
	g := lineGraph(t, 4)
	n, err := NewNetwork(g, NewSimulator(), testRand())
	if err != nil {
		t.Fatal(err)
	}
	if n.DownCount() != 0 {
		t.Error("fresh network has down links")
	}
	if err := n.SetLinkDown(1, true); err != nil {
		t.Fatal(err)
	}
	if !n.LinkDown(1) || n.DownCount() != 1 {
		t.Error("SetLinkDown did not register")
	}
	// Idempotent.
	if err := n.SetLinkDown(1, true); err != nil || n.DownCount() != 1 {
		t.Error("repeated SetLinkDown changed count")
	}
	if err := n.SetLinkDown(1, false); err != nil || n.DownCount() != 0 {
		t.Error("repair did not register")
	}
	if err := n.SetLinkDown(99, true); err == nil {
		t.Error("unknown link accepted")
	}
}

func TestNetworkPathChecks(t *testing.T) {
	t.Parallel()
	g := lineGraph(t, 4)
	n, err := NewNetwork(g, NewSimulator(), testRand())
	if err != nil {
		t.Fatal(err)
	}
	path := []topology.LinkID{0, 1, 2}
	if !n.PathUp(path) {
		t.Error("healthy path reported down")
	}
	if _, bad := n.FirstDownLink(path); bad {
		t.Error("healthy path has a down link")
	}
	if err := n.SetLinkDown(2, true); err != nil {
		t.Fatal(err)
	}
	if n.PathUp(path) {
		t.Error("path with down link reported up")
	}
	l, bad := n.FirstDownLink(path)
	if !bad || l != 2 {
		t.Errorf("FirstDownLink = %d,%v", l, bad)
	}
	if !n.SamplePacket(path[:2]) {
		t.Error("binary model dropped packet on healthy prefix")
	}
	if n.SamplePacket(path) {
		t.Error("binary model delivered packet over down link")
	}
}

func TestNetworkLossModel(t *testing.T) {
	t.Parallel()
	g := lineGraph(t, 2)
	n, err := NewNetwork(g, NewSimulator(), testRand(),
		WithLossModel(LossModel{BaseLoss: 0.5, DownLoss: 1}))
	if err != nil {
		t.Fatal(err)
	}
	path := []topology.LinkID{0}
	var ok int
	const trials = 10000
	for i := 0; i < trials; i++ {
		if n.SamplePacket(path) {
			ok++
		}
	}
	frac := float64(ok) / trials
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("survival %v, want ~0.5", frac)
	}
	if _, err := NewNetwork(g, NewSimulator(), testRand(),
		WithLossModel(LossModel{BaseLoss: -1})); err == nil {
		t.Error("invalid loss model accepted")
	}
}

func TestNetworkDeliver(t *testing.T) {
	t.Parallel()
	g := lineGraph(t, 4)
	sim := NewSimulator()
	n, err := NewNetwork(g, sim, testRand(), WithHopLatency(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	path := []topology.LinkID{0, 1, 2}

	var deliveredAt Time
	if err := n.Deliver(path, func() { deliveredAt = sim.Now() }, nil); err != nil {
		t.Fatal(err)
	}
	sim.RunFor(time.Second)
	if deliveredAt != Time(3*time.Millisecond) {
		t.Errorf("delivered at %v, want 3ms", deliveredAt)
	}

	// A down link triggers the drop callback instead.
	if err := n.SetLinkDown(1, true); err != nil {
		t.Fatal(err)
	}
	var dropped, delivered bool
	err = n.Deliver(path, func() { delivered = true }, func() { dropped = true })
	if err != nil {
		t.Fatal(err)
	}
	sim.RunFor(time.Second)
	if delivered || !dropped {
		t.Errorf("delivered=%v dropped=%v, want drop only", delivered, dropped)
	}

	if err := n.Deliver(path[:0], nil, nil); err == nil {
		t.Error("nil deliver callback accepted for surviving packet")
	}
}

func TestFailureConfigValidate(t *testing.T) {
	t.Parallel()
	good := DefaultFailureConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*FailureConfig){
		func(c *FailureConfig) { c.DownFraction = -0.1 },
		func(c *FailureConfig) { c.DownFraction = 1 },
		func(c *FailureConfig) { c.MeanDowntime = 0 },
		func(c *FailureConfig) { c.StdDowntime = -time.Second },
		func(c *FailureConfig) { c.MinDowntime = -time.Second },
		func(c *FailureConfig) { c.DepthAlpha = 0 },
		func(c *FailureConfig) { c.DepthBeta = -1 },
	}
	for i, mutate := range cases {
		c := DefaultFailureConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestFailureInjectorHoldsTarget(t *testing.T) {
	t.Parallel()
	g := lineGraph(t, 101) // 100 links
	sim := NewSimulator()
	r := testRand()
	n, err := NewNetwork(g, sim, r)
	if err != nil {
		t.Fatal(err)
	}
	// One long path covering all 100 links.
	path := make([]topology.LinkID, 100)
	for i := range path {
		path[i] = topology.LinkID(i)
	}
	cfg := DefaultFailureConfig()
	cfg.DownFraction = 0.10
	cfg.MeanDowntime = time.Minute
	cfg.StdDowntime = 20 * time.Second
	cfg.MinDowntime = 5 * time.Second
	inj, err := NewFailureInjector(n, r, [][]topology.LinkID{path}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if inj.Target() != 10 {
		t.Fatalf("target = %d, want 10", inj.Target())
	}
	if err := inj.Start(); err != nil {
		t.Fatal(err)
	}
	if n.DownCount() != 10 {
		t.Fatalf("initial down = %d, want 10", n.DownCount())
	}
	if err := inj.Start(); err == nil {
		t.Error("second Start accepted")
	}
	// Across two virtual hours, the count must stay pinned at the target
	// through many repair/replace cycles.
	for i := 0; i < 24; i++ {
		sim.RunFor(5 * time.Minute)
		if got := n.DownCount(); got != 10 {
			t.Fatalf("after %d min: down = %d, want 10", (i+1)*5, got)
		}
	}
}

func TestFailureInjectorDepthBias(t *testing.T) {
	t.Parallel()
	// With Beta(0.9, 0.6) (mean 0.6) failures should skew toward the far
	// (edge/leaf) end of the path.
	g := lineGraph(t, 101)
	sim := NewSimulator()
	r := testRand()
	n, err := NewNetwork(g, sim, r)
	if err != nil {
		t.Fatal(err)
	}
	path := make([]topology.LinkID, 100)
	for i := range path {
		path[i] = topology.LinkID(i)
	}
	cfg := DefaultFailureConfig()
	cfg.DownFraction = 0.3
	inj, err := NewFailureInjector(n, r, [][]topology.LinkID{path}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Start(); err != nil {
		t.Fatal(err)
	}
	var sum, cnt float64
	for l := 0; l < 100; l++ {
		if n.LinkDown(topology.LinkID(l)) {
			sum += float64(l)
			cnt++
		}
	}
	if cnt == 0 {
		t.Fatal("no links failed")
	}
	if mean := sum / cnt; mean < 50 {
		t.Errorf("mean failed depth %v, want > 50 (edge biased)", mean)
	}
}

func TestFailureInjectorRejectsBadInput(t *testing.T) {
	t.Parallel()
	g := lineGraph(t, 3)
	sim := NewSimulator()
	r := testRand()
	n, err := NewNetwork(g, sim, r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFailureInjector(nil, r, nil, DefaultFailureConfig()); err == nil {
		t.Error("nil network accepted")
	}
	if _, err := NewFailureInjector(n, r, nil, DefaultFailureConfig()); err == nil {
		t.Error("no paths accepted")
	}
	if _, err := NewFailureInjector(n, r, [][]topology.LinkID{{}}, DefaultFailureConfig()); err == nil {
		t.Error("only empty paths accepted")
	}
	bad := DefaultFailureConfig()
	bad.DownFraction = 2
	if _, err := NewFailureInjector(n, r, [][]topology.LinkID{{0}}, bad); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestFailureInjectorReinjectsDeficit(t *testing.T) {
	t.Parallel()
	g := lineGraph(t, 5) // 4 links
	sim := NewSimulator()
	r := testRand()
	n, err := NewNetwork(g, sim, r)
	if err != nil {
		t.Fatal(err)
	}
	path := []topology.LinkID{0, 1, 2, 3}
	cfg := DefaultFailureConfig()
	cfg.DownFraction = 0.5 // target 2 of 4
	cfg.MeanDowntime = time.Minute
	cfg.StdDowntime = 10 * time.Second
	cfg.MinDowntime = 30 * time.Second
	inj, err := NewFailureInjector(n, r, [][]topology.LinkID{path}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Start(); err != nil {
		t.Fatal(err)
	}
	if n.DownCount() != 2 || inj.Deficit() != 0 {
		t.Fatalf("after start: down=%d deficit=%d", n.DownCount(), inj.Deficit())
	}
	// Saturate the candidate set: externally fail the remaining links,
	// then demand one more failure. Selection cannot land anywhere, so
	// the demand must become deficit, not vanish.
	var external []topology.LinkID
	for _, l := range path {
		if !n.LinkDown(l) {
			external = append(external, l)
			if err := n.SetLinkDown(l, true); err != nil {
				t.Fatal(err)
			}
		}
	}
	injected, err := inj.failOne()
	if err != nil {
		t.Fatal(err)
	}
	if injected || inj.Deficit() != 1 || inj.Stats().SaturatedSkips != 1 {
		t.Fatalf("saturated failOne: injected=%v deficit=%d stats=%+v",
			injected, inj.Deficit(), inj.Stats())
	}
	// Free the external links; the next repair must re-inject the owed
	// failure on top of its own replacement.
	for _, l := range external {
		if err := n.SetLinkDown(l, false); err != nil {
			t.Fatal(err)
		}
	}
	sim.RunFor(30 * time.Minute)
	if got := n.DownCount(); got != 3 {
		t.Errorf("down = %d, want 3 (target 2 + one re-injected deficit)", got)
	}
	if inj.Deficit() != 0 {
		t.Errorf("deficit = %d, want 0 after re-injection", inj.Deficit())
	}
	if s := inj.Stats(); s.Reinjected == 0 {
		t.Errorf("stats = %+v, want Reinjected > 0", s)
	}
}

func BenchmarkSimulatorChurn(b *testing.B) {
	s := NewSimulator()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.ScheduleAfter(time.Millisecond, func() {}); err != nil {
			b.Fatal(err)
		}
		s.Step()
	}
}

// Property: events fire in non-decreasing time order regardless of the
// order they were scheduled in.
func TestPropEventOrdering(t *testing.T) {
	t.Parallel()
	f := func(delays []uint16) bool {
		s := NewSimulator()
		var fired []Time
		for _, d := range delays {
			at := Time(d)
			if err := s.Schedule(at, func() { fired = append(fired, s.Now()) }); err != nil {
				return false
			}
		}
		s.RunUntil(Time(1 << 20))
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the network's down-count always equals the number of
// distinct down links, through arbitrary set/clear sequences.
func TestPropDownCountConsistent(t *testing.T) {
	t.Parallel()
	g := lineGraphN(t, 33) // 32 links
	f := func(ops []uint16) bool {
		n, err := NewNetwork(g, NewSimulator(), testRand())
		if err != nil {
			return false
		}
		truth := map[topology.LinkID]bool{}
		for _, op := range ops {
			link := topology.LinkID(op % 32)
			down := op&0x8000 != 0
			if err := n.SetLinkDown(link, down); err != nil {
				return false
			}
			truth[link] = down
		}
		var want int
		for l, d := range truth {
			if d != n.LinkDown(l) {
				return false
			}
			if d {
				want++
			}
		}
		return n.DownCount() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func lineGraphN(t *testing.T, n int) *topology.Graph {
	t.Helper()
	return lineGraph(t, n)
}
