// Package netsim is the discrete-event network simulator beneath the
// Concilium evaluation: a virtual clock with an event heap, per-link
// up/down state with loss sampling, and the paper's link-failure
// injector (5% of overlay-path links down at any moment, ~15±7.5 minute
// downtimes, Beta(0.9, 0.6) depth bias toward edge links — §4.2).
package netsim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is virtual simulation time in nanoseconds since simulation start.
type Time int64

// Add offsets a Time by a duration.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between two times.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Seconds renders the time as fractional seconds, for reports.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Simulator is a single-threaded discrete-event scheduler. Events at the
// same instant run in scheduling order. It is not safe for concurrent
// use; all model code runs inside event callbacks on one goroutine.
type Simulator struct {
	now  Time
	heap eventHeap
	seq  uint64
}

// NewSimulator creates a simulator at time zero.
func NewSimulator() *Simulator { return &Simulator{} }

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return len(s.heap) }

// Schedule queues fn to run at the absolute virtual time at. Scheduling
// into the past is an error.
func (s *Simulator) Schedule(at Time, fn func()) error {
	if at < s.now {
		return fmt.Errorf("netsim: schedule at %v before now %v", at, s.now)
	}
	if fn == nil {
		return fmt.Errorf("netsim: nil event function")
	}
	s.seq++
	heap.Push(&s.heap, &event{at: at, seq: s.seq, fn: fn})
	return nil
}

// ScheduleAfter queues fn to run d after the current time. Negative
// delays clamp to zero.
func (s *Simulator) ScheduleAfter(d time.Duration, fn func()) error {
	if d < 0 {
		d = 0
	}
	return s.Schedule(s.now.Add(d), fn)
}

// Step runs the earliest pending event, advancing the clock to it. It
// reports whether an event ran.
func (s *Simulator) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	e := heap.Pop(&s.heap).(*event)
	s.now = e.at
	e.fn()
	return true
}

// RunUntil executes events until the queue empties or the next event
// would run after deadline; the clock finishes at min(deadline, last
// event time) — it does not jump past the deadline.
func (s *Simulator) RunUntil(deadline Time) {
	for len(s.heap) > 0 && s.heap[0].at <= deadline {
		s.Step()
	}
	if s.now < deadline && len(s.heap) > 0 {
		// Queue still has events beyond the deadline: park the clock.
		s.now = deadline
	}
	if len(s.heap) == 0 && s.now < deadline {
		s.now = deadline
	}
}

// RunFor executes events for a span of virtual time from now.
func (s *Simulator) RunFor(d time.Duration) { s.RunUntil(s.now.Add(d)) }
