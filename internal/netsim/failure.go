package netsim

import (
	"fmt"
	"math"
	"time"

	"concilium/internal/stats"
	"concilium/internal/topology"
)

// FailureConfig is the paper's link-failure model (§4.2): a constant
// fraction of the links that overlay paths traverse are down at any
// moment; downtimes are ~15 minutes with 7.5-minute standard deviation
// (matching observed tens-of-minutes high-loss incidents); and failures
// are biased toward edge links by drawing the failing link's depth along
// a random overlay path from Beta(0.9, 0.6).
type FailureConfig struct {
	// DownFraction is the fraction of candidate links down at any moment.
	DownFraction float64
	// MeanDowntime and StdDowntime parameterize the downtime normal.
	MeanDowntime time.Duration
	StdDowntime  time.Duration
	// MinDowntime clips sampled downtimes away from zero and negatives.
	MinDowntime time.Duration
	// DepthAlpha and DepthBeta shape the Beta distribution over relative
	// path depth used to select which link fails.
	DepthAlpha float64
	DepthBeta  float64
}

// DefaultFailureConfig returns the paper's parameters.
func DefaultFailureConfig() FailureConfig {
	return FailureConfig{
		DownFraction: 0.05,
		MeanDowntime: 15 * time.Minute,
		StdDowntime:  7*time.Minute + 30*time.Second,
		MinDowntime:  30 * time.Second,
		DepthAlpha:   0.9,
		DepthBeta:    0.6,
	}
}

// Validate reports the first invalid field.
func (c FailureConfig) Validate() error {
	switch {
	case c.DownFraction < 0 || c.DownFraction >= 1 || math.IsNaN(c.DownFraction):
		return fmt.Errorf("netsim: DownFraction %v out of [0,1)", c.DownFraction)
	case c.MeanDowntime <= 0:
		return fmt.Errorf("netsim: MeanDowntime %v must be positive", c.MeanDowntime)
	case c.StdDowntime < 0:
		return fmt.Errorf("netsim: StdDowntime %v negative", c.StdDowntime)
	case c.MinDowntime < 0:
		return fmt.Errorf("netsim: MinDowntime %v negative", c.MinDowntime)
	}
	if _, err := stats.NewBeta(c.DepthAlpha, c.DepthBeta); err != nil {
		return err
	}
	return nil
}

// FailureInjector drives link failures per FailureConfig. Candidate
// links are those appearing on the supplied overlay paths, mirroring the
// paper's "pick an overlay host and a random peer in its routing state"
// selection; the target down-count is DownFraction times the number of
// distinct candidate links, held constant by injecting a replacement
// failure whenever a link repairs.
type FailureInjector struct {
	net   *Network
	rng   stats.Rand
	paths [][]topology.LinkID

	downtime stats.Normal
	depth    stats.Beta
	min      time.Duration
	target   int

	started bool
}

// NewFailureInjector builds an injector over the given candidate paths.
// Paths must be non-empty; zero-length paths are permitted but never
// selected.
func NewFailureInjector(net *Network, rng stats.Rand, paths [][]topology.LinkID, cfg FailureConfig) (*FailureInjector, error) {
	if net == nil || rng == nil {
		return nil, fmt.Errorf("netsim: injector requires network and rng")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	distinct := make(map[topology.LinkID]struct{})
	var usable int
	for _, p := range paths {
		if len(p) > 0 {
			usable++
		}
		for _, l := range p {
			distinct[l] = struct{}{}
		}
	}
	if usable == 0 {
		return nil, fmt.Errorf("netsim: injector needs at least one non-empty path")
	}
	beta, err := stats.NewBeta(cfg.DepthAlpha, cfg.DepthBeta)
	if err != nil {
		return nil, err
	}
	return &FailureInjector{
		net:      net,
		rng:      rng,
		paths:    paths,
		downtime: stats.Normal{Mu: cfg.MeanDowntime.Seconds(), Sigma: math.Max(cfg.StdDowntime.Seconds(), 1e-9)},
		depth:    beta,
		min:      cfg.MinDowntime,
		target:   int(cfg.DownFraction * float64(len(distinct))),
	}, nil
}

// Target returns the steady-state number of concurrently failed links.
func (f *FailureInjector) Target() int { return f.target }

// Start fails the initial set of links and begins the repair/replace
// cycle. It must be called exactly once, before running the simulator.
func (f *FailureInjector) Start() error {
	if f.started {
		return fmt.Errorf("netsim: injector already started")
	}
	f.started = true
	for i := 0; i < f.target; i++ {
		if err := f.failOne(); err != nil {
			return err
		}
	}
	return nil
}

// failOne selects a link by the paper's path+depth rule and fails it,
// scheduling its repair. Selection retries when it lands on an
// already-down link.
func (f *FailureInjector) failOne() error {
	const maxTries = 64
	for try := 0; try < maxTries; try++ {
		p := f.paths[f.rng.IntN(len(f.paths))]
		if len(p) == 0 {
			continue
		}
		u := f.depth.Sample(f.rng)
		idx := int(u * float64(len(p)))
		if idx >= len(p) {
			idx = len(p) - 1
		}
		l := p[idx]
		if f.net.LinkDown(l) {
			continue
		}
		if err := f.net.SetLinkDown(l, true); err != nil {
			return err
		}
		d := f.sampleDowntime()
		return f.net.Sim().ScheduleAfter(d, func() { f.repair(l) })
	}
	// All tries hit down links — the down set saturated the candidate
	// paths. Skip; the next repair restores balance.
	return nil
}

func (f *FailureInjector) sampleDowntime() time.Duration {
	secs := f.downtime.Sample(f.rng)
	d := time.Duration(secs * float64(time.Second))
	if d < f.min {
		d = f.min
	}
	return d
}

func (f *FailureInjector) repair(l topology.LinkID) {
	// Repair, then immediately fail a replacement to hold the target.
	if err := f.net.SetLinkDown(l, false); err != nil {
		return
	}
	_ = f.failOne()
}
