package netsim

import (
	"fmt"
	"math"
	"time"

	"concilium/internal/stats"
	"concilium/internal/topology"
)

// FailureConfig is the paper's link-failure model (§4.2): a constant
// fraction of the links that overlay paths traverse are down at any
// moment; downtimes are ~15 minutes with 7.5-minute standard deviation
// (matching observed tens-of-minutes high-loss incidents); and failures
// are biased toward edge links by drawing the failing link's depth along
// a random overlay path from Beta(0.9, 0.6).
type FailureConfig struct {
	// DownFraction is the fraction of candidate links down at any moment.
	DownFraction float64
	// MeanDowntime and StdDowntime parameterize the downtime normal.
	MeanDowntime time.Duration
	StdDowntime  time.Duration
	// MinDowntime clips sampled downtimes away from zero and negatives.
	MinDowntime time.Duration
	// DepthAlpha and DepthBeta shape the Beta distribution over relative
	// path depth used to select which link fails.
	DepthAlpha float64
	DepthBeta  float64
}

// DefaultFailureConfig returns the paper's parameters.
func DefaultFailureConfig() FailureConfig {
	return FailureConfig{
		DownFraction: 0.05,
		MeanDowntime: 15 * time.Minute,
		StdDowntime:  7*time.Minute + 30*time.Second,
		MinDowntime:  30 * time.Second,
		DepthAlpha:   0.9,
		DepthBeta:    0.6,
	}
}

// Validate reports the first invalid field.
func (c FailureConfig) Validate() error {
	switch {
	case c.DownFraction < 0 || c.DownFraction >= 1 || math.IsNaN(c.DownFraction):
		return fmt.Errorf("netsim: DownFraction %v out of [0,1)", c.DownFraction)
	case c.MeanDowntime <= 0:
		return fmt.Errorf("netsim: MeanDowntime %v must be positive", c.MeanDowntime)
	case c.StdDowntime < 0:
		return fmt.Errorf("netsim: StdDowntime %v negative", c.StdDowntime)
	case c.MinDowntime < 0:
		return fmt.Errorf("netsim: MinDowntime %v negative", c.MinDowntime)
	}
	if _, err := stats.NewBeta(c.DepthAlpha, c.DepthBeta); err != nil {
		return err
	}
	return nil
}

// InjectorStats counts the injector's internal slips: selection rounds
// that found no healthy link to fail (saturation), deficits re-injected
// after a repair freed capacity, and errors that the repair/replace
// cycle would otherwise swallow. Chaos campaigns surface these in their
// invariant report instead of letting them vanish.
type InjectorStats struct {
	// SaturatedSkips counts failOne rounds that exhausted their tries
	// because every candidate link was already down.
	SaturatedSkips uint64
	// Reinjected counts deferred failures injected after a later repair.
	Reinjected uint64
	// SetLinkErrors counts SetLinkDown failures during repair/replace.
	SetLinkErrors uint64
	// ScheduleErrors counts repair-scheduling failures during replace.
	ScheduleErrors uint64
}

// FailureInjector drives link failures per FailureConfig. Candidate
// links are those appearing on the supplied overlay paths, mirroring the
// paper's "pick an overlay host and a random peer in its routing state"
// selection; the target down-count is DownFraction times the number of
// distinct candidate links, held constant by injecting a replacement
// failure whenever a link repairs. When selection saturates (every
// candidate link already down), the missed failure is tracked as a
// deficit and re-injected by the next repair instead of silently
// dropping the down-count below Target.
type FailureInjector struct {
	net   *Network
	rng   stats.Rand
	paths [][]topology.LinkID

	downtime stats.Normal
	depth    stats.Beta
	min      time.Duration
	target   int

	deficit int
	stats   InjectorStats
	started bool
}

// NewFailureInjector builds an injector over the given candidate paths.
// Paths must be non-empty; zero-length paths are permitted but never
// selected.
func NewFailureInjector(net *Network, rng stats.Rand, paths [][]topology.LinkID, cfg FailureConfig) (*FailureInjector, error) {
	if net == nil || rng == nil {
		return nil, fmt.Errorf("netsim: injector requires network and rng")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	distinct := make(map[topology.LinkID]struct{})
	var usable int
	for _, p := range paths {
		if len(p) > 0 {
			usable++
		}
		for _, l := range p {
			distinct[l] = struct{}{}
		}
	}
	if usable == 0 {
		return nil, fmt.Errorf("netsim: injector needs at least one non-empty path")
	}
	beta, err := stats.NewBeta(cfg.DepthAlpha, cfg.DepthBeta)
	if err != nil {
		return nil, err
	}
	return &FailureInjector{
		net:      net,
		rng:      rng,
		paths:    paths,
		downtime: stats.Normal{Mu: cfg.MeanDowntime.Seconds(), Sigma: math.Max(cfg.StdDowntime.Seconds(), 1e-9)},
		depth:    beta,
		min:      cfg.MinDowntime,
		target:   int(cfg.DownFraction * float64(len(distinct))),
	}, nil
}

// Target returns the steady-state number of concurrently failed links.
func (f *FailureInjector) Target() int { return f.target }

// Deficit returns the number of failures owed but not yet injected
// because selection saturated. The invariant the injector maintains is
// live-down-count + Deficit == Target once Start has run.
func (f *FailureInjector) Deficit() int { return f.deficit }

// Stats returns a snapshot of the injector's slip counters.
func (f *FailureInjector) Stats() InjectorStats { return f.stats }

// Start fails the initial set of links and begins the repair/replace
// cycle. It must be called exactly once, before running the simulator.
func (f *FailureInjector) Start() error {
	if f.started {
		return fmt.Errorf("netsim: injector already started")
	}
	f.started = true
	for i := 0; i < f.target; i++ {
		if _, err := f.failOne(); err != nil {
			return err
		}
	}
	return nil
}

// failOne selects a link by the paper's path+depth rule and fails it,
// scheduling its repair. Selection retries when it lands on an
// already-down link. When every try hits a down link the failure is
// recorded as a deficit (injected reports false) so a later repair can
// re-inject it.
func (f *FailureInjector) failOne() (injected bool, err error) {
	const maxTries = 64
	for try := 0; try < maxTries; try++ {
		p := f.paths[f.rng.IntN(len(f.paths))]
		if len(p) == 0 {
			continue
		}
		u := f.depth.Sample(f.rng)
		idx := int(u * float64(len(p)))
		if idx >= len(p) {
			idx = len(p) - 1
		}
		l := p[idx]
		if f.net.LinkDown(l) {
			continue
		}
		if err := f.net.SetLinkDown(l, true); err != nil {
			f.stats.SetLinkErrors++
			return false, err
		}
		d := f.sampleDowntime()
		if err := f.net.Sim().ScheduleAfter(d, func() { f.repair(l) }); err != nil {
			// The link is down but its repair will never fire; count it
			// so the chaos report can expose the stuck failure.
			f.stats.ScheduleErrors++
			return true, err
		}
		return true, nil
	}
	// All tries hit down links — the down set saturated the candidate
	// paths. Track the owed failure; the next repair re-injects it.
	f.stats.SaturatedSkips++
	f.deficit++
	return false, nil
}

func (f *FailureInjector) sampleDowntime() time.Duration {
	secs := f.downtime.Sample(f.rng)
	d := time.Duration(secs * float64(time.Second))
	if d < f.min {
		d = f.min
	}
	return d
}

func (f *FailureInjector) repair(l topology.LinkID) {
	// Repair, then fail a replacement to hold the target, plus any
	// deficit owed from earlier saturated selections. Each attempt that
	// saturates again re-enters the deficit via failOne, preserving
	// down-count + deficit == target; errors are counted, not swallowed.
	if err := f.net.SetLinkDown(l, false); err != nil {
		f.stats.SetLinkErrors++
		return
	}
	owed := 1 + f.deficit
	f.deficit = 0
	for i := 0; i < owed; i++ {
		injected, err := f.failOne()
		if err != nil && !injected {
			// The failure never landed (counted by failOne); the debt
			// stands, so it rejoins the deficit for the next repair.
			f.deficit++
			continue
		}
		if injected && i > 0 {
			f.stats.Reinjected++
		}
	}
}
