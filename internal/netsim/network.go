package netsim

import (
	"fmt"
	"math"
	"time"

	"concilium/internal/metrics"
	"concilium/internal/stats"
	"concilium/internal/topology"
)

// LossModel maps a link's up/down state to a packet-drop probability.
// The paper's evaluation treats links as binary ("5% of links were bad");
// DownLoss = 1 reproduces that, while a fractional DownLoss exercises the
// tomography engine's loss-rate inference.
type LossModel struct {
	// BaseLoss is the drop probability of a healthy link.
	BaseLoss float64
	// DownLoss is the drop probability of a failed link.
	DownLoss float64
}

// Validate checks both probabilities.
func (m LossModel) Validate() error {
	for _, p := range []float64{m.BaseLoss, m.DownLoss} {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return fmt.Errorf("netsim: loss probability %v out of [0,1]", p)
		}
	}
	return nil
}

// BinaryLossModel is the paper's model: good links never drop, bad links
// always drop.
func BinaryLossModel() LossModel { return LossModel{BaseLoss: 0, DownLoss: 1} }

// Network couples a topology with per-link failure state and a loss
// model, and delivers packets over precomputed link paths with per-hop
// latency. It is driven entirely by the owning Simulator's goroutine.
type Network struct {
	graph *topology.Graph
	sim   *Simulator
	rng   stats.Rand

	loss       LossModel
	hopLatency time.Duration
	watch      func(topology.LinkID, bool)

	down      []bool
	downCount int

	met netMetrics
}

// netMetrics caches the network's metric handles; all nil (discard)
// until WithMetrics installs a live registry.
type netMetrics struct {
	failures  *metrics.Counter
	repairs   *metrics.Counter
	delivered *metrics.Counter
	dropped   *metrics.Counter
	downG     *metrics.Gauge
}

// NetworkOption configures a Network.
type NetworkOption func(*Network)

// WithLossModel overrides the default binary loss model.
func WithLossModel(m LossModel) NetworkOption {
	return func(n *Network) { n.loss = m }
}

// WithHopLatency sets the per-link propagation delay (default 2ms).
func WithHopLatency(d time.Duration) NetworkOption {
	return func(n *Network) { n.hopLatency = d }
}

// WithLinkWatcher registers a callback invoked on every actual link
// state change (failures and repairs), for tracing and metrics.
func WithLinkWatcher(fn func(topology.LinkID, bool)) NetworkOption {
	return func(n *Network) { n.watch = fn }
}

// WithMetrics publishes link-churn counters, a down-link high-water
// gauge, and packet delivery/drop counters into reg (names "netsim/*").
// All are deterministic for a fixed seed. A nil registry is a no-op.
func WithMetrics(reg *metrics.Registry) NetworkOption {
	return func(n *Network) {
		n.met = netMetrics{
			failures:  reg.Counter("netsim/link_failures"),
			repairs:   reg.Counter("netsim/link_repairs"),
			delivered: reg.Counter("netsim/packets_delivered"),
			dropped:   reg.Counter("netsim/packets_dropped"),
			downG:     reg.Gauge("netsim/links_down_highwater"),
		}
	}
}

// NewNetwork creates a network over g, scheduling deliveries on sim and
// sampling losses from rng.
func NewNetwork(g *topology.Graph, sim *Simulator, rng stats.Rand, opts ...NetworkOption) (*Network, error) {
	if g == nil || sim == nil || rng == nil {
		return nil, fmt.Errorf("netsim: network requires graph, simulator, and rng")
	}
	n := &Network{
		graph:      g,
		sim:        sim,
		rng:        rng,
		loss:       BinaryLossModel(),
		hopLatency: 2 * time.Millisecond,
		down:       make([]bool, g.NumLinks()),
	}
	for _, opt := range opts {
		opt(n)
	}
	if err := n.loss.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// Graph returns the underlying topology.
func (n *Network) Graph() *topology.Graph { return n.graph }

// Sim returns the owning simulator.
func (n *Network) Sim() *Simulator { return n.sim }

// SetLinkDown marks link l failed or repaired.
func (n *Network) SetLinkDown(l topology.LinkID, isDown bool) error {
	if l < 0 || int(l) >= len(n.down) {
		return fmt.Errorf("netsim: unknown link %d", l)
	}
	if n.down[l] == isDown {
		return nil
	}
	n.down[l] = isDown
	if isDown {
		n.downCount++
		n.met.failures.Inc()
		n.met.downG.Set(int64(n.downCount))
	} else {
		n.downCount--
		n.met.repairs.Inc()
	}
	if n.watch != nil {
		n.watch(l, isDown)
	}
	return nil
}

// LinkDown reports whether link l is currently failed.
func (n *Network) LinkDown(l topology.LinkID) bool {
	return l >= 0 && int(l) < len(n.down) && n.down[l]
}

// DownCount returns the number of currently failed links.
func (n *Network) DownCount() int { return n.downCount }

// LinkLoss returns the current drop probability of link l.
func (n *Network) LinkLoss(l topology.LinkID) float64 {
	if n.LinkDown(l) {
		return n.loss.DownLoss
	}
	return n.loss.BaseLoss
}

// PathUp reports whether every link on the path is currently healthy.
func (n *Network) PathUp(path []topology.LinkID) bool {
	for _, l := range path {
		if n.LinkDown(l) {
			return false
		}
	}
	return true
}

// FirstDownLink returns the first failed link along path, if any. One
// call corresponds to one packet leg traversing the path, so it also
// feeds the packets_delivered/packets_dropped counters.
func (n *Network) FirstDownLink(path []topology.LinkID) (topology.LinkID, bool) {
	for _, l := range path {
		if n.LinkDown(l) {
			n.met.dropped.Inc()
			return l, true
		}
	}
	n.met.delivered.Inc()
	return 0, false
}

// SamplePacket simulates one packet traversal of path, sampling each
// link's loss independently. It reports survival.
func (n *Network) SamplePacket(path []topology.LinkID) bool {
	for _, l := range path {
		p := n.LinkLoss(l)
		if p >= 1 {
			return false
		}
		if p > 0 && n.rng.Float64() < p {
			return false
		}
	}
	return true
}

// Latency returns the one-way delay of a path.
func (n *Network) Latency(path []topology.LinkID) time.Duration {
	return time.Duration(len(path)) * n.hopLatency
}

// Deliver simulates sending one packet along path. Loss is sampled hop
// by hop at send time; if the packet survives, deliver runs at the
// path's latency, otherwise drop (which may be nil) runs at the same
// instant the loss would have been observed.
func (n *Network) Deliver(path []topology.LinkID, deliver func(), drop func()) error {
	ok := n.SamplePacket(path)
	lat := n.Latency(path)
	if ok {
		if deliver == nil {
			return fmt.Errorf("netsim: nil deliver callback")
		}
		n.met.delivered.Inc()
		return n.sim.ScheduleAfter(lat, deliver)
	}
	n.met.dropped.Inc()
	if drop != nil {
		return n.sim.ScheduleAfter(lat, drop)
	}
	return nil
}
