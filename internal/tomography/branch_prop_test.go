package tomography

import (
	"math/rand/v2"
	"testing"

	"concilium/internal/id"
	"concilium/internal/netsim"
	"concilium/internal/topology"
)

// randomTreeFixture generates a random connected graph, picks a root
// and leaf routers, and builds a tomography tree.
func randomTreeFixture(r *rand.Rand, routers, leaves int) (*topology.Graph, *Tree, error) {
	g, err := topology.NewGraph(routers)
	if err != nil {
		return nil, nil, err
	}
	// Random spanning tree plus a few chords.
	for i := 1; i < routers; i++ {
		if _, err := g.AddLink(topology.RouterID(i), topology.RouterID(r.IntN(i))); err != nil {
			return nil, nil, err
		}
	}
	for c := 0; c < routers/4; c++ {
		a, b := r.IntN(routers), r.IntN(routers)
		if a == b {
			continue
		}
		if _, err := g.AddLink(topology.RouterID(a), topology.RouterID(b)); err != nil {
			return nil, nil, err
		}
	}
	root := topology.RouterID(r.IntN(routers))
	var peerLeaves []Leaf
	used := map[topology.RouterID]bool{root: true}
	for len(peerLeaves) < leaves {
		router := topology.RouterID(r.IntN(routers))
		if used[router] {
			continue
		}
		used[router] = true
		peerLeaves = append(peerLeaves, Leaf{Node: id.Random(r), Router: router})
	}
	tree, err := BuildTree(g, id.Random(r), root, peerLeaves)
	return g, tree, err
}

// TestPropBranchTreeInvariants checks, over many random trees, that the
// branch-tree reduction preserves structure: parents precede children,
// segments concatenate back to the original leaf paths, and every leaf
// maps to a node whose root-path matches its link path.
func TestPropBranchTreeInvariants(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(901, 907))
	for trial := 0; trial < 60; trial++ {
		routers := 5 + r.IntN(40)
		leaves := 1 + r.IntN(min(routers-1, 8))
		_, tree, err := randomTreeFixture(r, routers, leaves)
		if err != nil {
			t.Fatal(err)
		}
		if len(tree.Leaves) == 0 {
			continue
		}
		bt, err := buildBranchTree(tree.Leaves)
		if err != nil {
			t.Fatal(err)
		}
		// Parents precede children (topological order).
		for i, p := range bt.parent {
			if p >= i {
				t.Fatalf("trial %d: node %d has parent %d (not topological)", trial, i, p)
			}
			if i == 0 && p != -1 {
				t.Fatalf("trial %d: root parent = %d", trial, p)
			}
		}
		// Reconstruct each leaf's path by walking segments root-ward.
		for li := range tree.Leaves {
			node := bt.leafOf[li]
			var segs [][]topology.LinkID
			for at := node; at != -1; at = bt.parent[at] {
				segs = append(segs, bt.segLinks[at])
			}
			var rebuilt []topology.LinkID
			for i := len(segs) - 1; i >= 0; i-- {
				rebuilt = append(rebuilt, segs[i]...)
			}
			want := tree.Leaves[li].Path
			if len(rebuilt) != len(want) {
				t.Fatalf("trial %d leaf %d: rebuilt %d links, want %d",
					trial, li, len(rebuilt), len(want))
			}
			for i := range want {
				if rebuilt[i] != want[i] {
					t.Fatalf("trial %d leaf %d: link %d = %d, want %d",
						trial, li, i, rebuilt[i], want[i])
				}
			}
		}
		// LCA sanity: meet of a leaf with itself is its own node; meets
		// are symmetric.
		depth := bt.depths()
		for i := range tree.Leaves {
			for j := range tree.Leaves {
				mij := bt.lca(bt.leafOf[i], bt.leafOf[j], depth)
				mji := bt.lca(bt.leafOf[j], bt.leafOf[i], depth)
				if mij != mji {
					t.Fatalf("trial %d: lca not symmetric", trial)
				}
				if i == j && mij != bt.leafOf[i] {
					t.Fatalf("trial %d: self-lca wrong", trial)
				}
			}
		}
	}
}

// TestPropHeavyweightEstimatesBounded: on random trees with random loss
// assignments, the MLE must return loss rates in [0, 1] for every
// segment and marginals consistent with observation counts.
func TestPropHeavyweightEstimatesBounded(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(911, 913))
	for trial := 0; trial < 25; trial++ {
		routers := 6 + r.IntN(25)
		leaves := 2 + r.IntN(5)
		g, tree, err := randomTreeFixture(r, routers, leaves)
		if err != nil {
			t.Fatal(err)
		}
		if len(tree.Leaves) < 2 {
			continue
		}
		net, err := netsim.NewNetwork(g, netsim.NewSimulator(), r,
			netsim.WithLossModel(netsim.LossModel{BaseLoss: 0.02, DownLoss: 0.6}))
		if err != nil {
			t.Fatal(err)
		}
		// Fail a random subset of tree links.
		for _, l := range tree.Links() {
			if r.Float64() < 0.15 {
				if err := net.SetLinkDown(l, true); err != nil {
					t.Fatal(err)
				}
			}
		}
		p, err := NewProber(tree, net, r)
		if err != nil {
			t.Fatal(err)
		}
		est, err := p.HeavyweightProbe(HeavyweightConfig{StripesPerPair: 60, PacketsPerStripe: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, seg := range est.Segments {
			if seg.Loss < 0 || seg.Loss > 1 {
				t.Fatalf("trial %d: segment loss %v out of range", trial, seg.Loss)
			}
			if len(seg.Links) == 0 {
				t.Fatalf("trial %d: empty segment", trial)
			}
		}
		for i, m := range est.Marginals {
			if m < 0 || m > 1 {
				t.Fatalf("trial %d: marginal[%d] = %v", trial, i, m)
			}
		}
		if est.Packets <= 0 || est.Stripes <= 0 {
			t.Fatalf("trial %d: accounting empty", trial)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
