package tomography

import (
	"fmt"
	"math"
	"time"

	"concilium/internal/metrics"
	"concilium/internal/netsim"
	"concilium/internal/stats"
	"concilium/internal/topology"
)

// Prober runs tomographic probing of one tree against the simulated
// network. Striped unicast probes are emulated faithfully: packets in a
// stripe are sent back to back, so they see identical fates on shared
// interior links (one loss sample per link per stripe) and independent
// fates past the branch point — the property Duffield's scheme exploits.
type Prober struct {
	tree *Tree
	net  *netsim.Network
	rng  stats.Rand

	packets      *metrics.Counter
	unreached    *metrics.Counter
	sweepPackets *metrics.Histogram

	// Scratch arenas, all keyed off the (fixed) tree size and reused
	// across probe rounds so steady-state sweeps allocate nothing:
	// ackScratch backs LightweightResult.Acked, fateScratch is the
	// shared-fate map cleared per stripe, measScratch the heavyweight
	// accumulator, and btScratch the tree's branching structure (a pure
	// function of the leaf paths, computed once).
	ackScratch  []bool
	fateScratch map[topology.LinkID]bool
	measScratch *measurement
	btScratch   *branchTree
}

// NewProber builds a prober for tree over net.
func NewProber(tree *Tree, net *netsim.Network, rng stats.Rand) (*Prober, error) {
	if tree == nil || net == nil || rng == nil {
		return nil, fmt.Errorf("tomography: prober requires tree, network, and rng")
	}
	return &Prober{tree: tree, net: net, rng: rng}, nil
}

// SetMetrics publishes probing volume into reg: total probe packets,
// leaves declared unreached, and a per-sweep packet histogram (names
// "tomography/probe_*"). A nil registry disables publication.
func (p *Prober) SetMetrics(reg *metrics.Registry) {
	p.packets = reg.Counter("tomography/probe_packets")
	p.unreached = reg.Counter("tomography/probe_unreached")
	p.sweepPackets = reg.MustHistogram("tomography/probe_sweep_packets", metrics.CountBuckets)
}

// LightweightResult is the outcome of one availability-probe sweep: for
// each leaf, whether any probe (initial or retry) was acknowledged.
type LightweightResult struct {
	// Acked[i] corresponds to tree.Leaves[i]. The slice aliases the
	// prober's scratch arena: it is valid until that prober's next
	// sweep, and callers that retain it across sweeps must copy it out
	// (see CopyAcked).
	Acked []bool
	// Packets counts probe packets sent (for bandwidth accounting).
	Packets int
	// Unreached counts leaves still silent when the sweep ended.
	Unreached int
	// BudgetExhausted reports that the sweep stopped early because its
	// retry packet budget ran out, not because every leaf answered or
	// every retry round completed.
	BudgetExhausted bool
	// BackoffTotal is the cumulative delay a live deployment would have
	// waited between retry rounds under the sweep's backoff schedule.
	BackoffTotal time.Duration
}

// CopyAcked returns a fresh copy of the per-leaf ack bits, for callers
// that keep a sweep's outcome beyond the prober's next sweep.
func (r *LightweightResult) CopyAcked() []bool {
	return append([]bool(nil), r.Acked...)
}

// RetryBudget bounds how hard a prober chases silent leaves before
// giving up: a round count, an optional total packet cap, and an
// exponential backoff between rounds. Under injected probe-packet loss
// an unbounded retry loop turns a lossy episode into a probe storm; the
// budget makes the sweep degrade into declared-unreached leaves
// instead.
type RetryBudget struct {
	// Retries is the number of retry rounds after the initial stripe.
	Retries int
	// PacketBudget caps the total retry packets across all rounds;
	// 0 means unlimited.
	PacketBudget int
	// Backoff is the delay before the first retry round; each further
	// round doubles it. 0 disables backoff accounting.
	Backoff time.Duration
}

// DefaultRetryBudget matches the paper's §3.2 behavior (a couple of
// immediate retries) with a packet cap sized for one tree sweep.
func DefaultRetryBudget() RetryBudget {
	return RetryBudget{Retries: 2, PacketBudget: 0, Backoff: 0}
}

// LightweightProbe emulates the paper's lightweight tomography: the
// availability probes a host already sends to its routing peers, issued
// back to back so they stripe across shared links. Silent peers get
// `retries` further independent probes before being declared unreached
// (§3.2).
func (p *Prober) LightweightProbe(retries int) LightweightResult {
	return p.LightweightProbeBudget(RetryBudget{Retries: retries})
}

// LightweightProbeBudget runs one availability sweep under a retry
// budget. The initial stripe always goes out; retry rounds stop when
// every leaf answered, the round count is spent, or the packet budget
// is exhausted — whichever comes first. Randomness consumption is
// identical to LightweightProbe when the packet budget is unlimited.
func (p *Prober) LightweightProbeBudget(b RetryBudget) LightweightResult {
	if b.Retries < 0 {
		b.Retries = 0
	}
	res := LightweightResult{Acked: p.ackBuffer()}
	// Initial stripe: one shared fate per link.
	fate := p.fateBuffer()
	for i, leaf := range p.tree.Leaves {
		res.Acked[i] = p.sampleStriped(leaf.Path, fate)
		res.Packets++
	}
	// Retries are separate packets: independent samples, backed off
	// round by round, stopping at the packet budget.
	retryPackets := 0
	backoff := b.Backoff
	for r := 0; r < b.Retries; r++ {
		silent := false
		for i := range p.tree.Leaves {
			if !res.Acked[i] {
				silent = true
				break
			}
		}
		if !silent {
			break
		}
		res.BackoffTotal += backoff
		backoff *= 2
		for i, leaf := range p.tree.Leaves {
			if res.Acked[i] {
				continue
			}
			if b.PacketBudget > 0 && retryPackets >= b.PacketBudget {
				res.BudgetExhausted = true
				break
			}
			res.Packets++
			retryPackets++
			if p.samplePath(leaf.Path) {
				res.Acked[i] = true
			}
		}
		if res.BudgetExhausted {
			break
		}
	}
	for _, acked := range res.Acked {
		if !acked {
			res.Unreached++
		}
	}
	p.packets.Add(uint64(res.Packets))
	p.unreached.Add(uint64(res.Unreached))
	p.sweepPackets.Observe(int64(res.Packets))
	return res
}

// ackBuffer returns the prober's per-leaf ack scratch, sized to the
// tree and cleared. LightweightResult.Acked aliases it.
func (p *Prober) ackBuffer() []bool {
	n := len(p.tree.Leaves)
	if cap(p.ackScratch) < n {
		p.ackScratch = make([]bool, n)
	}
	p.ackScratch = p.ackScratch[:n]
	clear(p.ackScratch)
	return p.ackScratch
}

// fateBuffer returns the prober's shared-fate scratch map, cleared for
// a fresh stripe.
func (p *Prober) fateBuffer() map[topology.LinkID]bool {
	if p.fateScratch == nil {
		p.fateScratch = make(map[topology.LinkID]bool, 16)
	} else {
		clear(p.fateScratch)
	}
	return p.fateScratch
}

// sampleStriped samples survival along path, reusing fate decisions for
// links already sampled in this stripe.
func (p *Prober) sampleStriped(path []topology.LinkID, fate map[topology.LinkID]bool) bool {
	ok := true
	for _, l := range path {
		up, seen := fate[l]
		if !seen {
			up = p.sampleLink(l)
			fate[l] = up
		}
		if !up {
			ok = false
			// Keep sampling the remaining links so later paths sharing a
			// suffix see consistent fates? Physical packets stop at the
			// drop, so links past the first loss are genuinely unsampled
			// for this packet; leave them to independent sampling.
			break
		}
	}
	return ok
}

func (p *Prober) samplePath(path []topology.LinkID) bool {
	for _, l := range path {
		if !p.sampleLink(l) {
			return false
		}
	}
	return true
}

func (p *Prober) sampleLink(l topology.LinkID) bool {
	loss := p.net.LinkLoss(l)
	if loss <= 0 {
		return true
	}
	if loss >= 1 {
		return false
	}
	return p.rng.Float64() >= loss
}

// HeavyweightConfig parameterizes a full striped-unicast measurement.
type HeavyweightConfig struct {
	// StripesPerPair is the number of striped probes sent to each
	// unordered leaf pair (the paper's example uses 100).
	StripesPerPair int
	// PacketsPerStripe is the stripe width (the paper's example uses 2).
	PacketsPerStripe int
}

// DefaultHeavyweightConfig returns the paper's §4.4 example parameters.
func DefaultHeavyweightConfig() HeavyweightConfig {
	return HeavyweightConfig{StripesPerPair: 100, PacketsPerStripe: 2}
}

// Validate reports the first invalid field.
func (c HeavyweightConfig) Validate() error {
	if c.StripesPerPair <= 0 {
		return fmt.Errorf("tomography: StripesPerPair %d must be positive", c.StripesPerPair)
	}
	if c.PacketsPerStripe < 2 {
		return fmt.Errorf("tomography: PacketsPerStripe %d must be at least 2", c.PacketsPerStripe)
	}
	return nil
}

// HeavyweightProbe runs full striped unicast probing over every leaf
// pair and infers per-link loss via the maximum-likelihood estimator.
// Trees with fewer than two leaves cannot be striped; they fall back to
// marginal path measurements.
func (p *Prober) HeavyweightProbe(cfg HeavyweightConfig) (*LossEstimate, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nLeaves := len(p.tree.Leaves)
	if nLeaves == 0 {
		return nil, fmt.Errorf("tomography: tree %s has no leaves", p.tree.Root.Short())
	}
	// The branching structure is a pure function of the (fixed) leaf
	// paths, so it is computed once per prober; the measurement scratch
	// is reset and reused across heavyweight rounds.
	if p.btScratch == nil {
		bt, err := buildBranchTree(p.tree.Leaves)
		if err != nil {
			return nil, err
		}
		p.btScratch = bt
	}
	bt := p.btScratch
	if p.measScratch == nil || p.measScratch.n != nLeaves {
		p.measScratch = newMeasurement(nLeaves)
	} else {
		p.measScratch.reset()
	}
	m := p.measScratch
	if nLeaves == 1 {
		// Degenerate: only marginal information exists.
		for s := 0; s < cfg.StripesPerPair; s++ {
			ok := p.samplePath(p.tree.Leaves[0].Path)
			m.record(0, ok, 0, ok, false)
			m.packets++
		}
		return inferLoss(p.tree, bt, m)
	}
	for i := 0; i < nLeaves; i++ {
		for j := i + 1; j < nLeaves; j++ {
			for s := 0; s < cfg.StripesPerPair; s++ {
				fate := p.fateBuffer()
				oki := p.sampleStriped(p.tree.Leaves[i].Path, fate)
				okj := p.sampleStriped(p.tree.Leaves[j].Path, fate)
				m.record(i, oki, j, okj, true)
				m.packets += cfg.PacketsPerStripe
			}
		}
	}
	return inferLoss(p.tree, bt, m)
}

// ObserveLinks is the accuracy-model shortcut used by the large-scale
// accusation experiments: per §4.3 the paper assumes "hosts can identify
// whether a link was up or down with 90% accuracy", so each tree link's
// true status is reported correctly with probability accuracy and
// inverted otherwise.
func ObserveLinks(net *netsim.Network, links []topology.LinkID, accuracy float64, rng stats.Rand) ([]LinkObservation, error) {
	return AppendObserveLinks(nil, net, links, accuracy, rng)
}

// AppendObserveLinks appends one observation per link to out (which may
// be a reused scratch slice) and returns the extended slice — the
// allocation-free variant of ObserveLinks for callers whose consumer
// copies the observations out (the archive does).
func AppendObserveLinks(out []LinkObservation, net *netsim.Network, links []topology.LinkID, accuracy float64, rng stats.Rand) ([]LinkObservation, error) {
	if accuracy < 0.5 || accuracy > 1 || math.IsNaN(accuracy) {
		return nil, fmt.Errorf("tomography: probe accuracy %v out of [0.5, 1]", accuracy)
	}
	for _, l := range links {
		up := !net.LinkDown(l)
		if rng.Float64() >= accuracy {
			up = !up
		}
		out = append(out, LinkObservation{Link: l, Up: up})
	}
	return out, nil
}

// LinkObservation is one probed link status: the paper's p.l_up bit.
type LinkObservation struct {
	Link topology.LinkID
	Up   bool
}
