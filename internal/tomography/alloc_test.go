package tomography

import (
	"testing"

	"concilium/internal/netsim"
)

// TestLightweightProbeAllocFree locks in the prober's scratch arenas: a
// warm prober's availability sweep reuses its ack buffer and shared-fate
// map, so steady-state sweeps must not touch the heap at all.
func TestLightweightProbeAllocFree(t *testing.T) {
	g, tree, _ := fixtureTree(t)
	net := newFixtureNetwork(t, g, netsim.BinaryLossModel())
	p, err := NewProber(tree, net, testRand())
	if err != nil {
		t.Fatal(err)
	}
	// First sweep grows the scratch to the tree's size.
	p.LightweightProbe(2)
	n := testing.AllocsPerRun(100, func() {
		res := p.LightweightProbe(2)
		if len(res.Acked) != len(tree.Leaves) {
			t.Fatalf("acked %d leaves, want %d", len(res.Acked), len(tree.Leaves))
		}
	})
	if n > 0 {
		t.Errorf("warm LightweightProbe allocates %.1f/op, want 0", n)
	}
}

// TestHeavyweightProbeReusesScratch verifies the heavyweight path's
// measurement and branch-tree scratch: a second round on the same
// prober must reuse the accumulators and produce results identical to
// the first prober's when the random streams match.
func TestHeavyweightProbeReusesScratch(t *testing.T) {
	g, tree, _ := fixtureTree(t)
	netA := newFixtureNetwork(t, g, netsim.BinaryLossModel())
	netB := newFixtureNetwork(t, g, netsim.BinaryLossModel())
	pa, err := NewProber(tree, netA, testRand())
	if err != nil {
		t.Fatal(err)
	}
	pb, err := NewProber(tree, netB, testRand())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultHeavyweightConfig()
	// pa runs twice (second round reuses its scratch); pb runs once with
	// a stream advanced identically, so round two must match pb exactly.
	if _, err := pa.HeavyweightProbe(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := pb.HeavyweightProbe(cfg); err != nil {
		t.Fatal(err)
	}
	round2, err := pa.HeavyweightProbe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := pb.HeavyweightProbe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if round2.Stripes != fresh.Stripes || round2.Packets != fresh.Packets {
		t.Fatalf("reused round: %d stripes/%d packets, fresh: %d/%d",
			round2.Stripes, round2.Packets, fresh.Stripes, fresh.Packets)
	}
	if len(round2.Marginals) != len(fresh.Marginals) {
		t.Fatalf("marginal count %d vs %d", len(round2.Marginals), len(fresh.Marginals))
	}
	for i := range round2.Marginals {
		if round2.Marginals[i] != fresh.Marginals[i] {
			t.Errorf("marginal[%d] = %v on reused scratch, %v fresh", i, round2.Marginals[i], fresh.Marginals[i])
		}
	}
	for _, l := range tree.Links() {
		a, okA := round2.LinkLoss(l)
		b, okB := fresh.LinkLoss(l)
		if okA != okB || a != b {
			t.Errorf("link %d loss %v/%v on reused scratch, %v/%v fresh", l, a, okA, b, okB)
		}
	}
}
