package tomography

import (
	"fmt"
	"sort"

	"concilium/internal/id"
	"concilium/internal/topology"
)

// buildBranchTree reduces leaf paths to their branching structure: a
// node per divergence or termination point, each carrying the physical
// link segment back to its parent. The loss estimator works per segment,
// because losses within an unbranched segment are not separable from
// end-to-end observations (a standard tomography limit).
func buildBranchTree(leaves []Leaf) (*branchTree, error) {
	if len(leaves) == 0 {
		return nil, fmt.Errorf("tomography: branch tree needs leaves")
	}
	bt := &branchTree{leafOf: make([]int, len(leaves))}
	all := make([]int, len(leaves))
	for i := range all {
		all[i] = i
	}
	var build func(group []int, start, parent int) error
	build = func(group []int, start, parent int) error {
		// Advance through links shared by every path in the group, until
		// some path ends or the paths diverge.
		pos := start
		for {
			diverged := false
			terminated := false
			var first topology.LinkID
			for gi, li := range group {
				path := leaves[li].Path
				if len(path) == pos {
					terminated = true
					break
				}
				if len(path) < pos {
					return fmt.Errorf("tomography: leaf %d path shorter than consumed prefix", li)
				}
				if gi == 0 {
					first = path[pos]
				} else if path[pos] != first {
					diverged = true
				}
			}
			if terminated || diverged {
				break
			}
			pos++
		}
		seg := append([]topology.LinkID(nil), leaves[group[0]].Path[start:pos]...)
		node := len(bt.parent)
		bt.parent = append(bt.parent, parent)
		bt.segLinks = append(bt.segLinks, seg)
		bt.pathLoss = append(bt.pathLoss, len(seg))

		children := make(map[topology.LinkID][]int)
		var order []topology.LinkID
		for _, li := range group {
			path := leaves[li].Path
			if len(path) == pos {
				bt.leafOf[li] = node
				continue
			}
			key := path[pos]
			if _, seen := children[key]; !seen {
				order = append(order, key)
			}
			children[key] = append(children[key], li)
		}
		for _, key := range order {
			if err := build(children[key], pos, node); err != nil {
				return err
			}
		}
		return nil
	}
	if err := build(all, 0, -1); err != nil {
		return nil, err
	}
	return bt, nil
}

// depths returns each node's depth (root = 0).
func (bt *branchTree) depths() []int {
	d := make([]int, len(bt.parent))
	for i := range bt.parent {
		if bt.parent[i] >= 0 {
			d[i] = d[bt.parent[i]] + 1 // parents precede children by construction
		}
	}
	return d
}

// lca returns the lowest common ancestor of nodes a and b.
func (bt *branchTree) lca(a, b int, depth []int) int {
	for depth[a] > depth[b] {
		a = bt.parent[a]
	}
	for depth[b] > depth[a] {
		b = bt.parent[b]
	}
	for a != b {
		a, b = bt.parent[a], bt.parent[b]
	}
	return a
}

// pairIndex maps an unordered leaf pair to its slot in a flat
// triangular array: pairs (i, j) with i < j packed row by row.
func pairIndex(n, i, j int) int {
	if i > j {
		i, j = j, i
	}
	return i*n - i*(i+1)/2 + (j - i - 1)
}

// measurement accumulates stripe outcomes. The per-pair counters live
// in flat triangular slices rather than dense n×n matrices: half the
// memory, three allocations total, and cache-friendly sequential access
// in the estimator's i<j sweeps.
type measurement struct {
	n          int
	trials     []int
	succ       []int
	pairTrials []int // triangular, indexed by pairIndex
	pairSucc   []int // triangular, indexed by pairIndex
	stripes    int
	packets    int
}

func newMeasurement(n int) *measurement {
	return &measurement{
		n:          n,
		trials:     make([]int, n),
		succ:       make([]int, n),
		pairTrials: make([]int, n*(n-1)/2),
		pairSucc:   make([]int, n*(n-1)/2),
	}
}

// reset clears the accumulators for reuse across heavyweight probe
// rounds without reallocating.
func (m *measurement) reset() {
	clear(m.trials)
	clear(m.succ)
	clear(m.pairTrials)
	clear(m.pairSucc)
	m.stripes = 0
	m.packets = 0
}

func (m *measurement) record(i int, oki bool, j int, okj bool, isPair bool) {
	m.stripes++
	m.trials[i]++
	if oki {
		m.succ[i]++
	}
	if !isPair {
		return
	}
	m.trials[j]++
	if okj {
		m.succ[j]++
	}
	k := pairIndex(m.n, i, j)
	m.pairTrials[k]++
	if oki && okj {
		m.pairSucc[k]++
	}
}

// Segment is a run of physical links between branch points, with its
// inferred loss rate. Loss inside a segment cannot be localized further
// by end-to-end tomography, so all of a segment's links share its rate.
type Segment struct {
	Links []topology.LinkID
	Loss  float64
}

// LossEstimate is the output of heavyweight probing: per-segment (and
// thus per-link) loss rates plus per-leaf marginal delivery rates.
type LossEstimate struct {
	Tree      *Tree
	Segments  []Segment
	Marginals []float64 // per tree leaf: observed end-to-end delivery rate
	Stripes   int
	Packets   int

	perLink map[topology.LinkID]float64
	// pairA holds the per-pair ancestor estimates used by the feedback
	// verifier — P̂_i·P̂_j / P̂_ij for pairs with data, −1 otherwise —
	// in the flat triangular layout of pairIndex.
	pairA []float64
}

// pairAt returns the ancestor estimate for the unordered leaf pair
// (i, j), or −1 when the measurement held no joint data for it.
func (e *LossEstimate) pairAt(i, j int) float64 {
	return e.pairA[pairIndex(len(e.Marginals), i, j)]
}

// LinkLoss returns the inferred loss rate of link l, if l was probed.
func (e *LossEstimate) LinkLoss(l topology.LinkID) (float64, bool) {
	v, ok := e.perLink[l]
	return v, ok
}

// Observations converts the estimate into binary link statuses: a link
// is reported down when its inferred loss rate exceeds threshold.
func (e *LossEstimate) Observations(threshold float64) []LinkObservation {
	links := make([]topology.LinkID, 0, len(e.perLink))
	for l := range e.perLink {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })
	out := make([]LinkObservation, len(links))
	for i, l := range links {
		out[i] = LinkObservation{Link: l, Up: e.perLink[l] <= threshold}
	}
	return out
}

// inferLoss runs the MINC-style maximum-likelihood estimator: for each
// internal branch node k, the probability A(k) that a stripe reaches k
// satisfies A(k) = P̂_i·P̂_j / P̂_ij for any leaf pair meeting at k, and
// segment success is A(k)/A(parent(k)).
func inferLoss(tree *Tree, bt *branchTree, m *measurement) (*LossEstimate, error) {
	n := m.n
	marg := make([]float64, n)
	for i := 0; i < n; i++ {
		if m.trials[i] > 0 {
			marg[i] = float64(m.succ[i]) / float64(m.trials[i])
		}
	}
	depth := bt.depths()

	// Accumulate A estimates per node from pairs meeting there.
	sumA := make([]float64, len(bt.parent))
	cntA := make([]int, len(bt.parent))
	pairA := make([]float64, n*(n-1)/2)
	for i := range pairA {
		pairA[i] = -1 // no data
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pk := pairIndex(n, i, j)
			if m.pairTrials[pk] == 0 || marg[i] <= 0 || marg[j] <= 0 {
				continue // no joint information in this pair
			}
			// Continuity-correct a zero joint count: observing no joint
			// successes despite healthy marginals is the strongest
			// possible anomaly and must not be silently skipped.
			succ := float64(m.pairSucc[pk])
			if succ == 0 {
				succ = 0.5
			}
			pij := succ / float64(m.pairTrials[pk])
			a := marg[i] * marg[j] / pij
			pairA[pk] = a
			if m.pairSucc[pk] == 0 {
				continue // anomaly only; too noisy for the A estimator
			}
			k := bt.lca(bt.leafOf[i], bt.leafOf[j], depth)
			sumA[k] += a
			cntA[k]++
		}
	}

	// Resolve A per node: pair estimates where available; a leaf-only
	// node falls back to its leaf marginal; anything else inherits its
	// parent (no evidence of loss below the parent).
	a := make([]float64, len(bt.parent))
	leafCnt := make([]int, len(bt.parent))
	leafMargSum := make([]float64, len(bt.parent))
	for li, node := range bt.leafOf {
		leafCnt[node]++
		leafMargSum[node] += marg[li]
	}
	for k := range bt.parent {
		parentA := 1.0
		if bt.parent[k] >= 0 {
			parentA = a[bt.parent[k]]
		}
		switch {
		case cntA[k] > 0:
			a[k] = sumA[k] / float64(cntA[k])
		case leafCnt[k] > 0:
			a[k] = leafMargSum[k] / float64(leafCnt[k])
		default:
			a[k] = parentA
		}
		if a[k] > parentA {
			a[k] = parentA // success probabilities cannot grow downstream
		}
		if a[k] < 0 {
			a[k] = 0
		}
	}

	est := &LossEstimate{
		Tree:      tree,
		Marginals: marg,
		Stripes:   m.stripes,
		Packets:   m.packets,
		perLink:   make(map[topology.LinkID]float64),
		pairA:     pairA,
	}
	for k := range bt.parent {
		if len(bt.segLinks[k]) == 0 {
			continue
		}
		parentA := 1.0
		if bt.parent[k] >= 0 {
			parentA = a[bt.parent[k]]
		}
		var loss float64
		switch {
		case parentA <= 0:
			loss = 1
		default:
			s := a[k] / parentA
			if s > 1 {
				s = 1
			}
			if s < 0 {
				s = 0
			}
			loss = 1 - s
		}
		seg := Segment{Links: bt.segLinks[k], Loss: loss}
		est.Segments = append(est.Segments, seg)
		for _, l := range seg.Links {
			est.perLink[l] = loss
		}
	}
	return est, nil
}

// LeafID returns the overlay identifier of leaf index i.
func (e *LossEstimate) LeafID(i int) (id.ID, error) {
	if i < 0 || i >= len(e.Tree.Leaves) {
		return id.ID{}, fmt.Errorf("tomography: leaf index %d out of range", i)
	}
	return e.Tree.Leaves[i].Node, nil
}
