package tomography

import (
	"testing"
	"time"

	"concilium/internal/id"
	"concilium/internal/netsim"
	"concilium/internal/topology"
)

// collectiveFixture builds two hosts in the same stub whose trees share
// the trunk: host A at r4, host B at r5 (fixtureTree's sibling leaves),
// both probing toward r6.
func collectiveFixture(t *testing.T) (*topology.Graph, []id.ID, map[id.ID]*Tree) {
	t.Helper()
	g, _, _ := fixtureTree(t)
	r := testRand()
	a, b := id.Random(r), id.Random(r)
	peer := id.Random(r)
	treeA, err := BuildTree(g, a, 4, []Leaf{{Node: peer, Router: 6}})
	if err != nil {
		t.Fatal(err)
	}
	treeB, err := BuildTree(g, b, 5, []Leaf{{Node: peer, Router: 6}})
	if err != nil {
		t.Fatal(err)
	}
	return g, []id.ID{a, b}, map[id.ID]*Tree{a: treeA, b: treeB}
}

func TestCollectiveValidation(t *testing.T) {
	t.Parallel()
	_, members, trees := collectiveFixture(t)
	if _, err := NewCollective(nil, trees); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := NewCollective([]id.ID{members[0], members[0]}, trees); err == nil {
		t.Error("duplicate member accepted")
	}
	if _, err := NewCollective([]id.ID{members[0], id.Zero}, trees); err == nil {
		t.Error("member without tree accepted")
	}
}

func TestCollectiveUnionAndSavings(t *testing.T) {
	t.Parallel()
	_, members, trees := collectiveFixture(t)
	c, err := NewCollective(members, trees)
	if err != nil {
		t.Fatal(err)
	}
	// Tree A (r4->r6): L3, L1, L2, L5. Tree B (r5->r6): L4, L1, L2, L5.
	// Union: 5 links; individual total: 8.
	if got := len(c.MultiForestLinks()); got != 5 {
		t.Errorf("union links = %d, want 5", got)
	}
	individual, shared, factor := c.Savings()
	if individual != 8 || shared != 5 {
		t.Errorf("savings = %d/%d, want 8/5", individual, shared)
	}
	if factor <= 1 {
		t.Errorf("factor = %v, want > 1 (amortization)", factor)
	}
}

func TestCollectiveRoundRobin(t *testing.T) {
	t.Parallel()
	_, members, trees := collectiveFixture(t)
	c, err := NewCollective(members, trees)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[id.ID]int{}
	for i := 0; i < 6; i++ {
		seen[c.NextProber()]++
	}
	for _, m := range members {
		if seen[m] != 3 {
			t.Errorf("member %s probed %d times, want 3", m.Short(), seen[m])
		}
	}
}

func TestCollectiveProbeOnce(t *testing.T) {
	t.Parallel()
	g, members, trees := collectiveFixture(t)
	c, err := NewCollective(members, trees)
	if err != nil {
		t.Fatal(err)
	}
	net, err := netsim.NewNetwork(g, netsim.NewSimulator(), testRand())
	if err != nil {
		t.Fatal(err)
	}
	if err := net.SetLinkDown(1, true); err != nil {
		t.Fatal(err)
	}
	prober, obs, err := c.ProbeOnce(net, 1.0, testRand())
	if err != nil {
		t.Fatal(err)
	}
	if prober != members[0] {
		t.Errorf("first turn = %s, want first member", prober.Short())
	}
	if len(obs) != 5 {
		t.Fatalf("observations = %d, want 5", len(obs))
	}
	for _, o := range obs {
		if o.Link == 1 && o.Up {
			t.Error("down link observed up at perfect accuracy")
		}
		if o.Link != 1 && !o.Up {
			t.Errorf("healthy link %d observed down", o.Link)
		}
	}
	// Bad accuracy propagates.
	if _, _, err := c.ProbeOnce(net, 0.2, testRand()); err == nil {
		t.Error("bad accuracy accepted")
	}
}

func TestEscalateSchedulesEveryPeer(t *testing.T) {
	t.Parallel()
	g, tree, _ := fixtureTree(t)
	r := testRand()
	net, err := netsim.NewNetwork(g, netsim.NewSimulator(), r)
	if err != nil {
		t.Fatal(err)
	}
	sim := net.Sim()
	// Three probers sharing the fixture tree (any trees work).
	ids := []id.ID{id.Random(r), id.Random(r), id.Random(r)}
	probers := make(map[id.ID]*Prober, 3)
	for _, nid := range ids {
		p, err := NewProber(tree, net, r)
		if err != nil {
			t.Fatal(err)
		}
		probers[nid] = p
	}
	var results []id.ID
	err = Escalate(sim, ids[0], probers, DefaultEscalationConfig(), r,
		func(who id.ID, est *LossEstimate) {
			if est == nil || est.Stripes == 0 {
				t.Error("empty estimate delivered")
			}
			results = append(results, who)
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sim.RunFor(time.Minute)
	if len(results) != 3 {
		t.Fatalf("results from %d probers, want 3", len(results))
	}
	// The trigger runs first, at time zero.
	if results[0] != ids[0] {
		t.Errorf("first result from %s, want trigger", results[0].Short())
	}
}

func TestEscalateValidation(t *testing.T) {
	t.Parallel()
	g, tree, _ := fixtureTree(t)
	r := testRand()
	net, err := netsim.NewNetwork(g, netsim.NewSimulator(), r)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProber(tree, net, r)
	if err != nil {
		t.Fatal(err)
	}
	trigger := id.Random(r)
	probers := map[id.ID]*Prober{trigger: p}
	cb := func(id.ID, *LossEstimate) {}
	if err := Escalate(nil, trigger, probers, DefaultEscalationConfig(), r, cb, nil); err == nil {
		t.Error("nil simulator accepted")
	}
	if err := Escalate(net.Sim(), id.Zero, probers, DefaultEscalationConfig(), r, cb, nil); err == nil {
		t.Error("unknown trigger accepted")
	}
	if err := Escalate(net.Sim(), trigger, probers, DefaultEscalationConfig(), r, nil, nil); err == nil {
		t.Error("nil callback accepted")
	}
	bad := DefaultEscalationConfig()
	bad.MaxPeerDelay = -time.Second
	if err := Escalate(net.Sim(), trigger, probers, bad, r, cb, nil); err == nil {
		t.Error("negative delay accepted")
	}
	bad = DefaultEscalationConfig()
	bad.Heavyweight.StripesPerPair = 0
	if err := Escalate(net.Sim(), trigger, probers, bad, r, cb, nil); err == nil {
		t.Error("invalid heavyweight config accepted")
	}
}

func TestShouldEscalate(t *testing.T) {
	t.Parallel()
	if ShouldEscalate(LightweightResult{Acked: []bool{true, true}}) {
		t.Error("all-acked triggered escalation")
	}
	if !ShouldEscalate(LightweightResult{Acked: []bool{true, false}}) {
		t.Error("missing ack did not trigger escalation")
	}
	if ShouldEscalate(LightweightResult{}) {
		t.Error("empty result triggered escalation")
	}
}

func TestEscalateErrorCallback(t *testing.T) {
	t.Parallel()
	// A prober over a leafless tree fails; the error must surface via
	// onError, not panic or silence.
	g, err := topology.NewGraph(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddLink(0, 1); err != nil {
		t.Fatal(err)
	}
	r := testRand()
	empty, err := BuildTree(g, id.Random(r), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	net, err := netsim.NewNetwork(g, netsim.NewSimulator(), r)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProber(empty, net, r)
	if err != nil {
		t.Fatal(err)
	}
	trigger := id.Random(r)
	var gotErr error
	err = Escalate(net.Sim(), trigger, map[id.ID]*Prober{trigger: p},
		DefaultEscalationConfig(), r,
		func(id.ID, *LossEstimate) { t.Error("result from failing prober") },
		func(_ id.ID, e error) { gotErr = e })
	if err != nil {
		t.Fatal(err)
	}
	net.Sim().RunFor(time.Minute)
	if gotErr == nil {
		t.Error("measurement error not reported")
	}
}
