// Package tomography implements Concilium's collaborative network
// measurement layer (§3.2–§3.3): the IP trees connecting each host to
// its routing peers, lightweight and heavyweight striped unicast probing
// in the style of Duffield et al., maximum-likelihood per-link loss
// inference, signed tomographic snapshots, the shared probe archive that
// blame calculations read, and the feedback-verification checks that
// catch leaves lying about probe receipt.
package tomography

import (
	"fmt"
	"sort"

	"concilium/internal/id"
	"concilium/internal/topology"
)

// Leaf is one routing peer at the edge of a tomography tree, with the IP
// link path from the tree's root to that peer's attachment router.
type Leaf struct {
	Node   id.ID
	Router topology.RouterID
	Path   []topology.LinkID
}

// Tree is T_H: the IP communication tree induced by host H's routing
// peers. Its root is H's attachment router and its leaves are the peers.
// Paths come from a single shortest-path tree, so they branch like a
// physical multicast tree.
type Tree struct {
	Root       id.ID
	RootRouter topology.RouterID
	Leaves     []Leaf

	links   []topology.LinkID
	linkSet map[topology.LinkID]struct{}
}

// BuildTree derives T_H from the topology: one BFS from the root router,
// then path extraction per peer. Peers whose router is unreachable are
// skipped (they cannot be probed at all).
func BuildTree(g *topology.Graph, root id.ID, rootRouter topology.RouterID, peers []Leaf) (*Tree, error) {
	if g == nil {
		return nil, fmt.Errorf("tomography: nil graph")
	}
	bfs, err := g.BFS(rootRouter)
	if err != nil {
		return nil, fmt.Errorf("tomography: tree root: %w", err)
	}
	return BuildTreeBFS(bfs, root, rootRouter, peers)
}

// BuildTreeBFS derives T_H from a previously computed shortest-path
// tree, skipping the BFS — the churn path rebuilds many trees against
// the same immutable graph, so callers cache the RouteTree per root
// router and pay only path extraction per rebuild. bfs must be rooted
// at rootRouter over the current graph; a topology change invalidates
// any cached RouteTree and requires a fresh BFS (see BuildTree).
//
// All leaf paths share one flat backing array sized to the exact hop
// total, so a rebuild costs a constant number of allocations regardless
// of peer count. The produced tree is freshly allocated and never
// aliases a previous tree's storage: outstanding references to an old
// tree's paths (e.g. the failure injector's candidate set) stay intact.
func BuildTreeBFS(bfs *topology.RouteTree, root id.ID, rootRouter topology.RouterID, peers []Leaf) (*Tree, error) {
	if bfs == nil {
		return nil, fmt.Errorf("tomography: nil route tree")
	}
	if bfs.Source != rootRouter {
		return nil, fmt.Errorf("tomography: route tree rooted at %d, want %d", bfs.Source, rootRouter)
	}
	t := &Tree{
		Root:       root,
		RootRouter: rootRouter,
		linkSet:    make(map[topology.LinkID]struct{}),
	}
	reachable, totalHops := 0, 0
	for _, p := range peers {
		if h := bfs.HopCount(p.Router); h >= 0 {
			reachable++
			totalHops += h
		}
	}
	t.Leaves = make([]Leaf, 0, reachable)
	flat := make([]topology.LinkID, 0, totalHops)
	for _, p := range peers {
		if !bfs.Reachable(p.Router) {
			continue
		}
		start := len(flat)
		var err error
		flat, err = bfs.AppendPathTo(flat, p.Router)
		if err != nil {
			return nil, fmt.Errorf("tomography: path to %s: %w", p.Node.Short(), err)
		}
		path := flat[start:len(flat):len(flat)]
		t.Leaves = append(t.Leaves, Leaf{Node: p.Node, Router: p.Router, Path: path})
		for _, l := range path {
			if _, seen := t.linkSet[l]; !seen {
				t.linkSet[l] = struct{}{}
				t.links = append(t.links, l)
			}
		}
	}
	sort.Slice(t.links, func(i, j int) bool { return t.links[i] < t.links[j] })
	return t, nil
}

// Links returns the distinct IP links in the tree, ascending. The slice
// is shared and must not be modified.
func (t *Tree) Links() []topology.LinkID { return t.links }

// Contains reports whether link l is part of the tree.
func (t *Tree) Contains(l topology.LinkID) bool {
	_, ok := t.linkSet[l]
	return ok
}

// PathTo returns the root-to-peer link path for the given peer.
func (t *Tree) PathTo(peer id.ID) ([]topology.LinkID, bool) {
	for i := range t.Leaves {
		if t.Leaves[i].Node == peer {
			return t.Leaves[i].Path, true
		}
	}
	return nil, false
}

// Forest is F_H: the union of H's own tree and the trees rooted at each
// of H's routing peers (§3.2). Concilium's goal is to estimate link
// quality across this forest.
type Forest struct {
	Own   *Tree
	Peers []*Tree

	links []topology.LinkID
}

// BuildForest unions the trees. Nil peer trees are skipped.
func BuildForest(own *Tree, peerTrees []*Tree) (*Forest, error) {
	if own == nil {
		return nil, fmt.Errorf("tomography: forest needs the host's own tree")
	}
	f := &Forest{Own: own}
	set := make(map[topology.LinkID]struct{}, len(own.links))
	for _, l := range own.links {
		set[l] = struct{}{}
	}
	for _, pt := range peerTrees {
		if pt == nil {
			continue
		}
		f.Peers = append(f.Peers, pt)
		for _, l := range pt.links {
			set[l] = struct{}{}
		}
	}
	f.links = make([]topology.LinkID, 0, len(set))
	for l := range set {
		f.links = append(f.links, l)
	}
	sort.Slice(f.links, func(i, j int) bool { return f.links[i] < f.links[j] })
	return f, nil
}

// Links returns the distinct links across the whole forest, ascending.
func (f *Forest) Links() []topology.LinkID { return f.links }

// CoverageWithTrees returns the fraction of forest links covered by the
// host's own tree plus the first k peer trees — the quantity plotted in
// the paper's Figure 4.
func (f *Forest) CoverageWithTrees(k int) float64 {
	if len(f.links) == 0 {
		return 0
	}
	covered := make(map[topology.LinkID]struct{}, len(f.Own.links))
	for _, l := range f.Own.links {
		covered[l] = struct{}{}
	}
	if k > len(f.Peers) {
		k = len(f.Peers)
	}
	for i := 0; i < k; i++ {
		for _, l := range f.Peers[i].links {
			covered[l] = struct{}{}
		}
	}
	return float64(len(covered)) / float64(len(f.links))
}

// VouchingCounts returns, for each forest link, how many trees (own plus
// the first k peer trees) contain it — the "hosts that can vouch for a
// link" series of Figure 4.
func (f *Forest) VouchingCounts(k int) map[topology.LinkID]int {
	out := make(map[topology.LinkID]int, len(f.links))
	for _, l := range f.Own.links {
		out[l]++
	}
	if k > len(f.Peers) {
		k = len(f.Peers)
	}
	for i := 0; i < k; i++ {
		for _, l := range f.Peers[i].links {
			out[l]++
		}
	}
	return out
}

// branchTree is the logical branching structure of a Tree: the root,
// branch routers where leaf paths diverge, and leaves. The MLE estimator
// works on this reduced form.
type branchTree struct {
	// nodes[0] is the root. Each node is a router where >=2 leaf paths
	// diverge, or a leaf endpoint.
	parent   []int               // index into nodes; parent[0] == -1
	pathLoss []int               // number of physical links between node and parent (unused by the estimator but kept for reporting)
	leafOf   []int               // node index per tree leaf (aligned with Tree.Leaves)
	segLinks [][]topology.LinkID // physical links between node and its parent
}
