package tomography

import (
	"math"
	"math/rand/v2"
	"testing"
	"time"

	"concilium/internal/id"
	"concilium/internal/netsim"
	"concilium/internal/topology"
)

func testRand() *rand.Rand { return rand.New(rand.NewPCG(41, 43)) }

// fixtureTree builds a concrete branching topology:
//
//	      r0 (root host attach)
//	      |L0
//	      r1
//	    /    \
//	 L1/      \L2
//	  r2       r3
//	L3/ \L4     \L5
//	r4   r5      r6
//
// Leaves at r4, r5, r6; shared trunk L0; branch at r1; sub-branch at r2.
func fixtureTree(t *testing.T) (*topology.Graph, *Tree, []id.ID) {
	t.Helper()
	g, err := topology.NewGraph(7)
	if err != nil {
		t.Fatal(err)
	}
	edges := [][2]topology.RouterID{{0, 1}, {1, 2}, {1, 3}, {2, 4}, {2, 5}, {3, 6}}
	for _, e := range edges {
		if _, err := g.AddLink(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	r := testRand()
	root := id.Random(r)
	peers := []id.ID{id.Random(r), id.Random(r), id.Random(r)}
	tree, err := BuildTree(g, root, 0, []Leaf{
		{Node: peers[0], Router: 4},
		{Node: peers[1], Router: 5},
		{Node: peers[2], Router: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, tree, peers
}

func TestBuildTreeStructure(t *testing.T) {
	t.Parallel()
	_, tree, peers := fixtureTree(t)
	if len(tree.Leaves) != 3 {
		t.Fatalf("leaves = %d", len(tree.Leaves))
	}
	// Links: L0..L5 all appear.
	if got := len(tree.Links()); got != 6 {
		t.Errorf("distinct links = %d, want 6", got)
	}
	for l := topology.LinkID(0); l < 6; l++ {
		if !tree.Contains(l) {
			t.Errorf("link %d missing", l)
		}
	}
	path, ok := tree.PathTo(peers[2])
	if !ok || len(path) != 3 {
		t.Errorf("path to peer2 = %v, %v", path, ok)
	}
	if _, ok := tree.PathTo(id.Zero); ok {
		t.Error("unknown peer has a path")
	}
}

func TestBuildTreeSkipsUnreachable(t *testing.T) {
	t.Parallel()
	g, err := topology.NewGraph(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddLink(0, 1); err != nil {
		t.Fatal(err)
	}
	r := testRand()
	tree, err := BuildTree(g, id.Random(r), 0, []Leaf{
		{Node: id.Random(r), Router: 1},
		{Node: id.Random(r), Router: 2}, // isolated
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Leaves) != 1 {
		t.Errorf("leaves = %d, want 1 (unreachable skipped)", len(tree.Leaves))
	}
}

func TestBuildForestCoverage(t *testing.T) {
	t.Parallel()
	g, tree, _ := fixtureTree(t)
	r := testRand()
	// A peer tree rooted at r4 reaching r6: path r4-r2-r1-r3-r6 covers
	// links L3, L1, L2, L5.
	other, err := BuildTree(g, id.Random(r), 4, []Leaf{{Node: id.Random(r), Router: 6}})
	if err != nil {
		t.Fatal(err)
	}
	forest, err := BuildForest(tree, []*Tree{other, nil})
	if err != nil {
		t.Fatal(err)
	}
	if len(forest.Peers) != 1 {
		t.Errorf("peer trees = %d", len(forest.Peers))
	}
	if got := len(forest.Links()); got != 6 {
		t.Errorf("forest links = %d, want 6", got)
	}
	// Own tree alone covers everything here (it is a superset).
	if cov := forest.CoverageWithTrees(0); cov != 1 {
		t.Errorf("own coverage = %v, want 1", cov)
	}
	counts := forest.VouchingCounts(1)
	// Trunk links of the peer tree overlap: L1 is in both trees.
	if counts[1] != 2 {
		t.Errorf("vouch count for L1 = %d, want 2", counts[1])
	}
	// L0 only in own tree.
	if counts[0] != 1 {
		t.Errorf("vouch count for L0 = %d, want 1", counts[0])
	}
	if _, err := BuildForest(nil, nil); err == nil {
		t.Error("nil own tree accepted")
	}
}

func TestForestCoverageMonotone(t *testing.T) {
	t.Parallel()
	// Coverage must be non-decreasing in the number of included trees.
	r := testRand()
	g, err := topology.Generate(topology.TestConfig(), r)
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.EndHosts()
	if len(hosts) < 10 {
		t.Skip("too few hosts")
	}
	mkTree := func(rootIdx int, peerIdx []int) *Tree {
		var leaves []Leaf
		for _, pi := range peerIdx {
			leaves = append(leaves, Leaf{Node: id.Random(r), Router: hosts[pi]})
		}
		tree, err := BuildTree(g, id.Random(r), hosts[rootIdx], leaves)
		if err != nil {
			t.Fatal(err)
		}
		return tree
	}
	own := mkTree(0, []int{1, 2, 3, 4, 5})
	var peerTrees []*Tree
	for i := 1; i <= 5; i++ {
		peerTrees = append(peerTrees, mkTree(i, []int{0, (i + 1) % 10, (i + 2) % 10, (i + 3) % 10}))
	}
	forest, err := BuildForest(own, peerTrees)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for k := 0; k <= 5; k++ {
		cov := forest.CoverageWithTrees(k)
		if cov < prev {
			t.Fatalf("coverage decreased at k=%d: %v < %v", k, cov, prev)
		}
		prev = cov
	}
	if forest.CoverageWithTrees(99) != 1 {
		t.Error("full forest does not cover itself")
	}
}

func TestBranchTreeStructure(t *testing.T) {
	t.Parallel()
	_, tree, _ := fixtureTree(t)
	bt, err := buildBranchTree(tree.Leaves)
	if err != nil {
		t.Fatal(err)
	}
	// Expected: root node (segment L0), then node for r2 subtree
	// (segment L1), leaves at r4 (L3), r5 (L4), and r6 (L2+L5).
	if len(bt.parent) != 5 {
		t.Fatalf("nodes = %d, want 5", len(bt.parent))
	}
	if bt.parent[0] != -1 || len(bt.segLinks[0]) != 1 {
		t.Errorf("root segment = %v", bt.segLinks[0])
	}
	depth := bt.depths()
	// Leaves 0 and 1 (r4, r5) should meet strictly below the meeting
	// point of leaves 0 and 2.
	m01 := bt.lca(bt.leafOf[0], bt.leafOf[1], depth)
	m02 := bt.lca(bt.leafOf[0], bt.leafOf[2], depth)
	if depth[m01] <= depth[m02] {
		t.Errorf("meet depths: m01=%d m02=%d", depth[m01], depth[m02])
	}
	if m02 != 0 {
		t.Errorf("r4/r6 should meet at the root node, got %d", m02)
	}
	if _, err := buildBranchTree(nil); err == nil {
		t.Error("empty leaf set accepted")
	}
}

func newFixtureNetwork(t *testing.T, g *topology.Graph, loss netsim.LossModel) *netsim.Network {
	t.Helper()
	net, err := netsim.NewNetwork(g, netsim.NewSimulator(), testRand(), netsim.WithLossModel(loss))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestLightweightProbeAllUp(t *testing.T) {
	t.Parallel()
	g, tree, _ := fixtureTree(t)
	net := newFixtureNetwork(t, g, netsim.BinaryLossModel())
	p, err := NewProber(tree, net, testRand())
	if err != nil {
		t.Fatal(err)
	}
	res := p.LightweightProbe(2)
	for i, acked := range res.Acked {
		if !acked {
			t.Errorf("leaf %d not acked on healthy tree", i)
		}
	}
	if res.Packets != 3 {
		t.Errorf("packets = %d, want 3 (no retries needed)", res.Packets)
	}
}

func TestLightweightProbeDetectsDownLink(t *testing.T) {
	t.Parallel()
	g, tree, _ := fixtureTree(t)
	net := newFixtureNetwork(t, g, netsim.BinaryLossModel())
	// Fail L5 (r3->r6): only leaf 2 affected.
	if err := net.SetLinkDown(5, true); err != nil {
		t.Fatal(err)
	}
	p, err := NewProber(tree, net, testRand())
	if err != nil {
		t.Fatal(err)
	}
	res := p.LightweightProbe(2)
	if !res.Acked[0] || !res.Acked[1] {
		t.Error("unaffected leaves lost acks")
	}
	if res.Acked[2] {
		t.Error("leaf behind down link acked")
	}
	// 3 initial + 2 retries for the silent leaf.
	if res.Packets != 5 {
		t.Errorf("packets = %d, want 5", res.Packets)
	}
}

func TestLightweightProbeSharedTrunkFate(t *testing.T) {
	t.Parallel()
	// With the trunk L0 down, every leaf must fail in the initial stripe
	// (shared fate), not independently.
	g, tree, _ := fixtureTree(t)
	net := newFixtureNetwork(t, g, netsim.BinaryLossModel())
	if err := net.SetLinkDown(0, true); err != nil {
		t.Fatal(err)
	}
	p, err := NewProber(tree, net, testRand())
	if err != nil {
		t.Fatal(err)
	}
	res := p.LightweightProbe(0)
	for i, acked := range res.Acked {
		if acked {
			t.Errorf("leaf %d acked through down trunk", i)
		}
	}
}

func TestLightweightProbeBudgetStopsAtPacketCap(t *testing.T) {
	t.Parallel()
	g, tree, _ := fixtureTree(t)
	net := newFixtureNetwork(t, g, netsim.BinaryLossModel())
	// Trunk down: all three leaves silent, so unlimited retries would
	// spend 3 packets per round.
	if err := net.SetLinkDown(0, true); err != nil {
		t.Fatal(err)
	}
	p, err := NewProber(tree, net, testRand())
	if err != nil {
		t.Fatal(err)
	}
	res := p.LightweightProbeBudget(RetryBudget{Retries: 10, PacketBudget: 4, Backoff: time.Second})
	if !res.BudgetExhausted {
		t.Error("packet cap never tripped")
	}
	// 3 initial + 4 budgeted retries.
	if res.Packets != 7 {
		t.Errorf("packets = %d, want 7", res.Packets)
	}
	if res.Unreached != 3 {
		t.Errorf("unreached = %d, want 3", res.Unreached)
	}
	// Backoff doubles per completed round: 1s then 2s.
	if res.BackoffTotal != 3*time.Second {
		t.Errorf("backoff total = %v, want 3s", res.BackoffTotal)
	}
}

func TestLightweightProbeBudgetMatchesLegacySweep(t *testing.T) {
	t.Parallel()
	// With an unlimited packet budget the budgeted sweep must consume
	// randomness identically to LightweightProbe — same acks, same
	// packet count — for a lossy network where retries matter.
	g, tree, _ := fixtureTree(t)
	lossy := netsim.LossModel{BaseLoss: 0.3, DownLoss: 1}
	netA := newFixtureNetwork(t, g, lossy)
	netB := newFixtureNetwork(t, g, lossy)
	pa, err := NewProber(tree, netA, rand.New(rand.NewPCG(41, 42)))
	if err != nil {
		t.Fatal(err)
	}
	pb, err := NewProber(tree, netB, rand.New(rand.NewPCG(41, 42)))
	if err != nil {
		t.Fatal(err)
	}
	for sweep := 0; sweep < 20; sweep++ {
		legacy := pa.LightweightProbe(3)
		budget := pb.LightweightProbeBudget(RetryBudget{Retries: 3})
		if legacy.Packets != budget.Packets {
			t.Fatalf("sweep %d: packets %d vs %d", sweep, legacy.Packets, budget.Packets)
		}
		for i := range legacy.Acked {
			if legacy.Acked[i] != budget.Acked[i] {
				t.Fatalf("sweep %d leaf %d: ack %v vs %v", sweep, i, legacy.Acked[i], budget.Acked[i])
			}
		}
	}
}

func TestHeavyweightProbeInfersLossyLink(t *testing.T) {
	t.Parallel()
	g, tree, _ := fixtureTree(t)
	// L1 (r1->r2) loses 40% of packets; everything else is clean.
	net := newFixtureNetwork(t, g, netsim.LossModel{BaseLoss: 0, DownLoss: 0.4})
	if err := net.SetLinkDown(1, true); err != nil {
		t.Fatal(err)
	}
	p, err := NewProber(tree, net, testRand())
	if err != nil {
		t.Fatal(err)
	}
	est, err := p.HeavyweightProbe(HeavyweightConfig{StripesPerPair: 2000, PacketsPerStripe: 2})
	if err != nil {
		t.Fatal(err)
	}
	lossL1, ok := est.LinkLoss(1)
	if !ok {
		t.Fatal("L1 not estimated")
	}
	if math.Abs(lossL1-0.4) > 0.08 {
		t.Errorf("L1 loss = %v, want ~0.4", lossL1)
	}
	// The clean trunk and the clean far branch must show near-zero loss.
	for _, l := range []topology.LinkID{0, 2, 5} {
		loss, ok := est.LinkLoss(l)
		if !ok {
			t.Fatalf("link %d not estimated", l)
		}
		if loss > 0.08 {
			t.Errorf("clean link %d loss = %v", l, loss)
		}
	}
	// Binary conversion.
	obs := est.Observations(0.25)
	byLink := map[topology.LinkID]bool{}
	for _, o := range obs {
		byLink[o.Link] = o.Up
	}
	if byLink[1] {
		t.Error("lossy link reported up")
	}
	if !byLink[0] || !byLink[5] {
		t.Error("clean link reported down")
	}
}

func TestHeavyweightProbeCleanTree(t *testing.T) {
	t.Parallel()
	g, tree, _ := fixtureTree(t)
	net := newFixtureNetwork(t, g, netsim.BinaryLossModel())
	p, err := NewProber(tree, net, testRand())
	if err != nil {
		t.Fatal(err)
	}
	est, err := p.HeavyweightProbe(DefaultHeavyweightConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range est.Segments {
		if seg.Loss > 1e-9 {
			t.Errorf("segment %v loss = %v on clean tree", seg.Links, seg.Loss)
		}
	}
	for i, m := range est.Marginals {
		if m != 1 {
			t.Errorf("leaf %d marginal = %v", i, m)
		}
	}
	if est.Packets == 0 || est.Stripes == 0 {
		t.Error("no accounting recorded")
	}
}

func TestHeavyweightProbeSingleLeaf(t *testing.T) {
	t.Parallel()
	g, err := topology.NewGraph(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddLink(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddLink(1, 2); err != nil {
		t.Fatal(err)
	}
	r := testRand()
	tree, err := BuildTree(g, id.Random(r), 0, []Leaf{{Node: id.Random(r), Router: 2}})
	if err != nil {
		t.Fatal(err)
	}
	net := newFixtureNetwork(t, g, netsim.LossModel{BaseLoss: 0.3, DownLoss: 1})
	p, err := NewProber(tree, net, r)
	if err != nil {
		t.Fatal(err)
	}
	est, err := p.HeavyweightProbe(HeavyweightConfig{StripesPerPair: 3000, PacketsPerStripe: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Two links each at 30%: end-to-end ~51% loss, unlocalizable — the
	// single segment should carry it.
	if len(est.Segments) != 1 {
		t.Fatalf("segments = %d, want 1", len(est.Segments))
	}
	if math.Abs(est.Segments[0].Loss-0.51) > 0.05 {
		t.Errorf("segment loss = %v, want ~0.51", est.Segments[0].Loss)
	}
}

func TestHeavyweightConfigValidate(t *testing.T) {
	t.Parallel()
	if err := DefaultHeavyweightConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (HeavyweightConfig{StripesPerPair: 0, PacketsPerStripe: 2}).Validate(); err == nil {
		t.Error("zero stripes accepted")
	}
	if err := (HeavyweightConfig{StripesPerPair: 1, PacketsPerStripe: 1}).Validate(); err == nil {
		t.Error("1-packet stripe accepted")
	}
	g, tree, _ := fixtureTree(t)
	net := newFixtureNetwork(t, g, netsim.BinaryLossModel())
	p, err := NewProber(tree, net, testRand())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.HeavyweightProbe(HeavyweightConfig{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestObserveLinksAccuracy(t *testing.T) {
	t.Parallel()
	g, tree, _ := fixtureTree(t)
	net := newFixtureNetwork(t, g, netsim.BinaryLossModel())
	if err := net.SetLinkDown(2, true); err != nil {
		t.Fatal(err)
	}
	r := testRand()
	// Perfect accuracy: observations match truth.
	obs, err := ObserveLinks(net, tree.Links(), 1.0, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range obs {
		if o.Up == net.LinkDown(o.Link) {
			t.Fatalf("perfect observation wrong for link %d", o.Link)
		}
	}
	// 90% accuracy: error rate ~10%.
	var wrong, total int
	for trial := 0; trial < 3000; trial++ {
		obs, err := ObserveLinks(net, tree.Links(), 0.9, r)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range obs {
			total++
			if o.Up == net.LinkDown(o.Link) {
				wrong++
			}
		}
	}
	rate := float64(wrong) / float64(total)
	if math.Abs(rate-0.10) > 0.02 {
		t.Errorf("observation error rate = %v, want ~0.10", rate)
	}
	if _, err := ObserveLinks(net, tree.Links(), 0.3, r); err == nil {
		t.Error("accuracy below 0.5 accepted")
	}
}

func TestArchiveWindowQueries(t *testing.T) {
	t.Parallel()
	a := NewArchive()
	r := testRand()
	p1, p2 := id.Random(r), id.Random(r)
	add := func(prober id.ID, at netsim.Time, up bool) {
		t.Helper()
		if err := a.Record(prober, at, []LinkObservation{{Link: 7, Up: up}}); err != nil {
			t.Fatal(err)
		}
	}
	add(p1, 100, true)
	add(p2, 200, false)
	add(p1, 300, true)

	recs := a.InWindow(7, 150, 250, nil)
	if len(recs) != 1 || recs[0].Prober != p2 || recs[0].Up {
		t.Errorf("window [150,250] = %+v", recs)
	}
	// Inclusive bounds.
	recs = a.InWindow(7, 100, 300, nil)
	if len(recs) != 3 {
		t.Errorf("window [100,300] = %d records", len(recs))
	}
	// Exclusion (the judged node's own probes).
	recs = a.InWindow(7, 0, 1000, map[id.ID]bool{p1: true})
	if len(recs) != 1 || recs[0].Prober != p2 {
		t.Errorf("excluded window = %+v", recs)
	}
	// Unknown link.
	if got := a.InWindow(99, 0, 1000, nil); len(got) != 0 {
		t.Errorf("unknown link returned %d records", len(got))
	}
	// Out-of-order insert rejected.
	if err := a.Record(p1, 50, []LinkObservation{{Link: 7, Up: true}}); err == nil {
		t.Error("out-of-order record accepted")
	}
}

func TestArchivePrune(t *testing.T) {
	t.Parallel()
	a := NewArchive()
	r := testRand()
	p := id.Random(r)
	for i := 0; i < 10; i++ {
		if err := a.Record(p, netsim.Time(i*100), []LinkObservation{{Link: 1, Up: true}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Record(p, 0, []LinkObservation{{Link: 2, Up: false}}); err != nil {
		t.Fatal(err)
	}
	if a.Size() != 11 {
		t.Fatalf("Size = %d", a.Size())
	}
	a.Prune(500)
	if a.Size() != 5 {
		t.Errorf("after prune Size = %d, want 5", a.Size())
	}
	if got := a.InWindow(2, 0, 1000, nil); len(got) != 0 {
		t.Error("fully pruned link still has records")
	}
	if got := a.InWindow(1, 0, 1000, nil); len(got) != 5 {
		t.Errorf("link 1 has %d records, want 5", len(got))
	}
}

func TestVerifyFeedbackHonestLeavesPass(t *testing.T) {
	t.Parallel()
	g, tree, _ := fixtureTree(t)
	net := newFixtureNetwork(t, g, netsim.LossModel{BaseLoss: 0.05, DownLoss: 1})
	p, err := NewProber(tree, net, testRand())
	if err != nil {
		t.Fatal(err)
	}
	est, err := p.HeavyweightProbe(HeavyweightConfig{StripesPerPair: 1000, PacketsPerStripe: 2})
	if err != nil {
		t.Fatal(err)
	}
	sus, err := VerifyFeedback(est, DefaultFeedbackConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(sus) != 0 {
		t.Errorf("honest leaves flagged: %+v", sus)
	}
}

func TestVerifyFeedbackFlagsImpossiblePattern(t *testing.T) {
	t.Parallel()
	// Hand-build a measurement in which leaf 0's reported acks are
	// anti-correlated with its siblings — P_ij far below P_i·P_j pushes
	// the ancestor estimate above 1, which honest loss cannot produce.
	_, tree, peers := fixtureTree(t)
	bt, err := buildBranchTree(tree.Leaves)
	if err != nil {
		t.Fatal(err)
	}
	m := newMeasurement(3)
	const stripes = 500
	for s := 0; s < stripes; s++ {
		honest1 := s%10 != 0 // ~90% delivery
		honest2 := s%12 != 0
		liar := !honest1 // acks exactly when sibling 1 fails
		m.record(0, liar, 1, honest1, true)
		m.record(0, liar, 2, honest2, true)
		m.record(1, honest1, 2, honest2, true)
	}
	est, err := inferLoss(tree, bt, m)
	if err != nil {
		t.Fatal(err)
	}
	sus, err := VerifyFeedback(est, DefaultFeedbackConfig())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range sus {
		if s.Node == peers[0] {
			found = true
		}
		if s.Node == peers[2] {
			t.Errorf("honest leaf %s flagged", s.Node.Short())
		}
	}
	if !found {
		t.Error("anti-correlated leaf not flagged")
	}
}

func TestVerifyFeedbackValidation(t *testing.T) {
	t.Parallel()
	if _, err := VerifyFeedback(nil, DefaultFeedbackConfig()); err == nil {
		t.Error("nil estimate accepted")
	}
	bad := DefaultFeedbackConfig()
	bad.Slack = -1
	if _, err := VerifyFeedback(&LossEstimate{}, bad); err == nil {
		t.Error("negative slack accepted")
	}
	bad = DefaultFeedbackConfig()
	bad.MinPairs = 0
	if _, err := VerifyFeedback(&LossEstimate{}, bad); err == nil {
		t.Error("zero MinPairs accepted")
	}
	bad = DefaultFeedbackConfig()
	bad.FlagFraction = 0
	if _, err := VerifyFeedback(&LossEstimate{}, bad); err == nil {
		t.Error("zero FlagFraction accepted")
	}
}

func BenchmarkHeavyweightProbe(b *testing.B) {
	g, err := topology.NewGraph(7)
	if err != nil {
		b.Fatal(err)
	}
	edges := [][2]topology.RouterID{{0, 1}, {1, 2}, {1, 3}, {2, 4}, {2, 5}, {3, 6}}
	for _, e := range edges {
		if _, err := g.AddLink(e[0], e[1]); err != nil {
			b.Fatal(err)
		}
	}
	r := testRand()
	tree, err := BuildTree(g, id.Random(r), 0, []Leaf{
		{Node: id.Random(r), Router: 4},
		{Node: id.Random(r), Router: 5},
		{Node: id.Random(r), Router: 6},
	})
	if err != nil {
		b.Fatal(err)
	}
	net, err := netsim.NewNetwork(g, netsim.NewSimulator(), r,
		netsim.WithLossModel(netsim.LossModel{BaseLoss: 0.02, DownLoss: 1}))
	if err != nil {
		b.Fatal(err)
	}
	p, err := NewProber(tree, net, r)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultHeavyweightConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.HeavyweightProbe(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
