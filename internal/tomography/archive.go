package tomography

import (
	"fmt"
	"sort"

	"concilium/internal/id"
	"concilium/internal/metrics"
	"concilium/internal/netsim"
	"concilium/internal/topology"
)

// ProbeRecord is one archived link observation: which host probed, when,
// and the probed status (the paper's p.l_up bit).
type ProbeRecord struct {
	Prober id.ID
	At     netsim.Time
	Up     bool
}

// Archive stores disseminated probe results indexed by link. Every node
// archives the snapshots it receives (§3.2) and queries them by time
// window when computing blame (§3.4). Records for each link must be
// added in non-decreasing time order (simulation time is monotone),
// which keeps window queries logarithmic.
type Archive struct {
	byLink map[topology.LinkID][]ProbeRecord
	size   int

	records *metrics.Counter
	pruned  *metrics.Counter
	sizeG   *metrics.Gauge
}

// NewArchive creates an empty archive.
func NewArchive() *Archive {
	return &Archive{byLink: make(map[topology.LinkID][]ProbeRecord)}
}

// SetMetrics publishes the archive's record/prune counters and size
// gauge into reg (names "tomography/archive_*"). A nil registry
// disables publication.
func (a *Archive) SetMetrics(reg *metrics.Registry) {
	a.records = reg.Counter("tomography/archive_records")
	a.pruned = reg.Counter("tomography/archive_pruned")
	a.sizeG = reg.Gauge("tomography/archive_size")
}

// Record archives one prober's observations taken at time at.
func (a *Archive) Record(prober id.ID, at netsim.Time, obs []LinkObservation) error {
	for _, o := range obs {
		recs := a.byLink[o.Link]
		if len(recs) > 0 && recs[len(recs)-1].At > at {
			return fmt.Errorf("tomography: out-of-order record for link %d (%v after %v)",
				o.Link, at, recs[len(recs)-1].At)
		}
		a.byLink[o.Link] = append(recs, ProbeRecord{Prober: prober, At: at, Up: o.Up})
		a.size++
	}
	a.records.Add(uint64(len(obs)))
	a.sizeG.Set(int64(a.size))
	return nil
}

// Window returns the probe records for link within [from, to] as a
// zero-copy view into the archive's storage: no filtering, no
// allocation. The view is valid only until the next Record or Prune
// call — callers that retain records must copy them out. Blame
// evaluation, the hot consumer, iterates the view and discards it
// before returning, so a shared archive never allocates per judgment.
func (a *Archive) Window(link topology.LinkID, from, to netsim.Time) []ProbeRecord {
	recs := a.byLink[link]
	lo := sort.Search(len(recs), func(i int) bool { return recs[i].At >= from })
	hi := sort.Search(len(recs), func(i int) bool { return recs[i].At > to })
	return recs[lo:hi]
}

// InWindow returns the probe records for link within [from, to],
// excluding records from probers in exclude — the rule that a node's own
// probes never count when judging that node (§3.4). The result is a
// fresh slice; prefer Window on hot paths.
func (a *Archive) InWindow(link topology.LinkID, from, to netsim.Time, exclude map[id.ID]bool) []ProbeRecord {
	var out []ProbeRecord
	for _, r := range a.Window(link, from, to) {
		if exclude[r.Prober] {
			continue
		}
		out = append(out, r)
	}
	return out
}

// Prune discards records older than before, bounding archive growth over
// long simulations. Surviving records are shifted down in place, so each
// link's backing array is retained: once a retention-bounded archive
// reaches steady state, Record appends stop allocating entirely.
// In-place pruning invalidates any outstanding Window views.
func (a *Archive) Prune(before netsim.Time) {
	var dropped int
	for link, recs := range a.byLink {
		cut := sort.Search(len(recs), func(i int) bool { return recs[i].At >= before })
		if cut == 0 {
			continue
		}
		dropped += cut
		if cut == len(recs) {
			delete(a.byLink, link)
			continue
		}
		n := copy(recs, recs[cut:])
		a.byLink[link] = recs[:n]
	}
	if dropped > 0 {
		a.size -= dropped
		a.pruned.Add(uint64(dropped))
		a.sizeG.Set(int64(a.size))
	}
}

// Size returns the total number of archived records.
func (a *Archive) Size() int { return a.size }
