package tomography

import (
	"fmt"
	"sort"
	"time"

	"concilium/internal/id"
	"concilium/internal/netsim"
	"concilium/internal/stats"
)

// §3.2's two-tier probing: lightweight availability probes run
// continuously; when they detect link loss — or when application-level
// messages stop being acknowledged — the host initiates heavyweight
// striped probing and asks its routing peers to do the same, so
// fine-grained tomographic data exists for the whole forest during the
// suspected fault period. Each peer waits a small random delay before
// starting, to avoid probe-induced congestion.

// EscalationConfig tunes the heavyweight escalation.
type EscalationConfig struct {
	// Heavyweight parameterizes each participant's measurement.
	Heavyweight HeavyweightConfig
	// MaxPeerDelay bounds the random stagger before a peer starts.
	MaxPeerDelay time.Duration
}

// DefaultEscalationConfig staggers peers across ten seconds.
func DefaultEscalationConfig() EscalationConfig {
	return EscalationConfig{
		Heavyweight:  DefaultHeavyweightConfig(),
		MaxPeerDelay: 10 * time.Second,
	}
}

// Validate reports the first invalid field.
func (c EscalationConfig) Validate() error {
	if err := c.Heavyweight.Validate(); err != nil {
		return err
	}
	if c.MaxPeerDelay < 0 {
		return fmt.Errorf("tomography: MaxPeerDelay %v negative", c.MaxPeerDelay)
	}
	return nil
}

// ShouldEscalate applies the lightweight trigger: escalate when any
// leaf went unacknowledged (after retries), which covers both genuinely
// offline peers and lossy links — heavyweight probing disambiguates.
func ShouldEscalate(res LightweightResult) bool {
	for _, acked := range res.Acked {
		if !acked {
			return true
		}
	}
	return false
}

// Escalate schedules heavyweight measurements for the triggering host
// and each of its forest peers on the simulator: the trigger starts
// immediately, peers after independent uniform delays in
// [0, MaxPeerDelay]. onResult receives each completed estimate (on the
// simulator goroutine); a measurement error aborts delivery of further
// results and is reported through onError.
func Escalate(
	sim *netsim.Simulator,
	trigger id.ID,
	probers map[id.ID]*Prober,
	cfg EscalationConfig,
	rng stats.Rand,
	onResult func(id.ID, *LossEstimate),
	onError func(id.ID, error),
) error {
	if sim == nil {
		return fmt.Errorf("tomography: nil simulator")
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	if onResult == nil {
		return fmt.Errorf("tomography: nil result callback")
	}
	if _, ok := probers[trigger]; !ok {
		return fmt.Errorf("tomography: trigger %s has no prober", trigger.Short())
	}
	run := func(who id.ID) func() {
		p := probers[who]
		return func() {
			est, err := p.HeavyweightProbe(cfg.Heavyweight)
			if err != nil {
				if onError != nil {
					onError(who, err)
				}
				return
			}
			onResult(who, est)
		}
	}
	if err := sim.ScheduleAfter(0, run(trigger)); err != nil {
		return err
	}
	// Iterate peers in identifier order so delay assignment is
	// deterministic for a seeded rng.
	peers := make([]id.ID, 0, len(probers))
	for who := range probers {
		if who != trigger {
			peers = append(peers, who)
		}
	}
	sort.Slice(peers, func(i, j int) bool { return id.Less(peers[i], peers[j]) })
	for _, who := range peers {
		delay := time.Duration(rng.Float64() * float64(cfg.MaxPeerDelay))
		if err := sim.ScheduleAfter(delay, run(who)); err != nil {
			return err
		}
	}
	return nil
}
