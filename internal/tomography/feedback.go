package tomography

import (
	"fmt"
	"math"

	"concilium/internal/id"
)

// Feedback verification (§3.3, after Arya et al.): leaves can lie about
// probe receipt in two ways. Acknowledging probes that were actually
// lost is defeated by nonces — a leaf cannot echo a nonce it never saw,
// so the protocol layer simply discards acks with wrong nonces.
// Suppressing acknowledgments for received probes is subtler: it is
// detected statistically, because a leaf that drops acks in any pattern
// correlated with its siblings' outcomes produces ancestor-probability
// estimates that are impossible (A > 1, or A below the leaf's own
// marginal), while honest loss cannot.

// FeedbackConfig tunes the suppression detector.
type FeedbackConfig struct {
	// Slack absorbs binomial sampling noise in the per-pair ancestor
	// estimates; pairs outside [max(Pi,Pj)-Slack, 1+Slack] are anomalous.
	Slack float64
	// MinPairs is the minimum number of informative pairs a leaf must
	// appear in before it can be flagged.
	MinPairs int
	// FlagFraction is the fraction of a leaf's pairs that must be
	// anomalous to flag it.
	FlagFraction float64
}

// DefaultFeedbackConfig returns detector settings that keep honest
// false positives rare at 100-stripe measurements.
func DefaultFeedbackConfig() FeedbackConfig {
	return FeedbackConfig{Slack: 0.12, MinPairs: 2, FlagFraction: 0.5}
}

// Validate reports the first invalid field.
func (c FeedbackConfig) Validate() error {
	switch {
	case c.Slack < 0 || math.IsNaN(c.Slack):
		return fmt.Errorf("tomography: Slack %v negative", c.Slack)
	case c.MinPairs < 1:
		return fmt.Errorf("tomography: MinPairs %d must be at least 1", c.MinPairs)
	case c.FlagFraction <= 0 || c.FlagFraction > 1:
		return fmt.Errorf("tomography: FlagFraction %v out of (0,1]", c.FlagFraction)
	}
	return nil
}

// SuspiciousLeaf reports a leaf whose acknowledgment pattern is
// inconsistent with its siblings'.
type SuspiciousLeaf struct {
	Node id.ID
	// AnomalousPairs / TotalPairs summarize the evidence.
	AnomalousPairs int
	TotalPairs     int
}

// VerifyFeedback applies the consistency test to a completed
// heavyweight measurement and returns the leaves whose reported
// acknowledgment patterns are statistically impossible under honest
// behavior.
func VerifyFeedback(est *LossEstimate, cfg FeedbackConfig) ([]SuspiciousLeaf, error) {
	if est == nil {
		return nil, fmt.Errorf("tomography: nil estimate")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := len(est.Marginals)
	anom := make([]int, n)
	total := make([]int, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a := est.pairAt(i, j)
			if a < 0 {
				continue // no data for this pair
			}
			total[i]++
			total[j]++
			lowBound := math.Max(est.Marginals[i], est.Marginals[j]) - cfg.Slack
			if a > 1+cfg.Slack || a < lowBound {
				anom[i]++
				anom[j]++
			}
		}
	}
	var out []SuspiciousLeaf
	for i := 0; i < n; i++ {
		if total[i] < cfg.MinPairs {
			continue
		}
		if float64(anom[i]) >= cfg.FlagFraction*float64(total[i]) {
			nodeID, err := est.LeafID(i)
			if err != nil {
				return nil, err
			}
			out = append(out, SuspiciousLeaf{
				Node:           nodeID,
				AnomalousPairs: anom[i],
				TotalPairs:     total[i],
			})
		}
	}
	return out, nil
}
