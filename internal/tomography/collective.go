package tomography

import (
	"fmt"
	"sort"

	"concilium/internal/id"
	"concilium/internal/netsim"
	"concilium/internal/stats"
	"concilium/internal/topology"
)

// §3.7: hosts that trust each other and reside in the same stub network
// can consolidate probing responsibility, taking turns to probe the
// multi-forest induced by their collective routing state. Links shared
// by several members' trees are then probed once per period instead of
// once per member, amortizing the heavyweight-probing bandwidth.

// Collective is a group of co-located, mutually trusting hosts sharing
// probe duty round-robin.
type Collective struct {
	members []id.ID
	trees   map[id.ID]*Tree

	union []topology.LinkID
	turn  int
}

// NewCollective groups the members with their trees. Every member needs
// a tree; the member list is copied.
func NewCollective(members []id.ID, trees map[id.ID]*Tree) (*Collective, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("tomography: collective needs members")
	}
	set := make(map[topology.LinkID]struct{})
	seen := make(map[id.ID]bool, len(members))
	for _, m := range members {
		if seen[m] {
			return nil, fmt.Errorf("tomography: duplicate member %s", m.Short())
		}
		seen[m] = true
		t, ok := trees[m]
		if !ok || t == nil {
			return nil, fmt.Errorf("tomography: member %s has no tree", m.Short())
		}
		for _, l := range t.Links() {
			set[l] = struct{}{}
		}
	}
	union := make([]topology.LinkID, 0, len(set))
	for l := range set {
		union = append(union, l)
	}
	sort.Slice(union, func(i, j int) bool { return union[i] < union[j] })
	cp := make(map[id.ID]*Tree, len(members))
	for _, m := range members {
		cp[m] = trees[m]
	}
	return &Collective{
		members: append([]id.ID(nil), members...),
		trees:   cp,
		union:   union,
	}, nil
}

// Members returns the collective's membership.
func (c *Collective) Members() []id.ID {
	return append([]id.ID(nil), c.members...)
}

// MultiForestLinks returns the union of every member's tree links —
// what one probing turn must cover.
func (c *Collective) MultiForestLinks() []topology.LinkID { return c.union }

// NextProber returns whose turn it is and advances the rotation.
func (c *Collective) NextProber() id.ID {
	m := c.members[c.turn]
	c.turn = (c.turn + 1) % len(c.members)
	return m
}

// ProbeOnce performs one shared probing turn: the member whose turn it
// is observes the entire multi-forest and the results are published on
// behalf of the collective. It returns the prober and its observations.
func (c *Collective) ProbeOnce(net *netsim.Network, accuracy float64, rng stats.Rand) (id.ID, []LinkObservation, error) {
	prober := c.NextProber()
	obs, err := ObserveLinks(net, c.union, accuracy, rng)
	if err != nil {
		return id.ID{}, nil, err
	}
	return prober, obs, nil
}

// Savings quantifies the amortization: the number of per-period link
// observations with individual probing (every member probes its own
// tree) versus consolidated probing (one member probes the union), and
// the resulting reduction factor.
func (c *Collective) Savings() (individual, shared int, factor float64) {
	for _, m := range c.members {
		individual += len(c.trees[m].Links())
	}
	shared = len(c.union)
	if shared == 0 {
		return individual, shared, 1
	}
	return individual, shared, float64(individual) / float64(shared)
}
