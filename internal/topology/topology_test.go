package topology

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func testRand() *rand.Rand { return rand.New(rand.NewPCG(11, 13)) }

func mustGraph(t *testing.T, n int) *Graph {
	t.Helper()
	g, err := NewGraph(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGraphRejectsEmpty(t *testing.T) {
	t.Parallel()
	if _, err := NewGraph(0); err == nil {
		t.Error("empty graph should fail")
	}
}

func TestAddLinkBasics(t *testing.T) {
	t.Parallel()
	g := mustGraph(t, 3)
	l0, err := g.AddLink(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumLinks() != 1 {
		t.Fatalf("NumLinks = %d", g.NumLinks())
	}
	a, b, err := g.LinkEndpoints(l0)
	if err != nil || a != 0 || b != 1 {
		t.Fatalf("endpoints = %d,%d (%v)", a, b, err)
	}
	// Parallel edges merge.
	l1, err := g.AddLink(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l1 != l0 || g.NumLinks() != 1 {
		t.Error("parallel edge was not merged")
	}
	// Self-loops and bad routers rejected.
	if _, err := g.AddLink(1, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := g.AddLink(0, 5); err == nil {
		t.Error("unknown router accepted")
	}
	if _, _, err := g.LinkEndpoints(99); err == nil {
		t.Error("unknown link accepted")
	}
}

func TestDegreeAndEndHosts(t *testing.T) {
	t.Parallel()
	// Star: center 0 with leaves 1..4.
	g := mustGraph(t, 5)
	for i := RouterID(1); i < 5; i++ {
		if _, err := g.AddLink(0, i); err != nil {
			t.Fatal(err)
		}
	}
	if g.Degree(0) != 4 || g.Degree(1) != 1 {
		t.Errorf("degrees = %d, %d", g.Degree(0), g.Degree(1))
	}
	if g.Degree(-1) != 0 || g.Degree(9) != 0 {
		t.Error("out-of-range degree should be 0")
	}
	hosts := g.EndHosts()
	if len(hosts) != 4 {
		t.Fatalf("EndHosts = %v", hosts)
	}
	for _, h := range hosts {
		if h == 0 {
			t.Error("center listed as end host")
		}
	}
}

func TestBFSPathsOnLine(t *testing.T) {
	t.Parallel()
	// Line: 0-1-2-3.
	g := mustGraph(t, 4)
	var links []LinkID
	for i := RouterID(0); i < 3; i++ {
		l, err := g.AddLink(i, i+1)
		if err != nil {
			t.Fatal(err)
		}
		links = append(links, l)
	}
	tree, err := g.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.HopCount(3) != 3 || tree.HopCount(0) != 0 {
		t.Errorf("hops = %d, %d", tree.HopCount(3), tree.HopCount(0))
	}
	path, err := tree.PathTo(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 || path[0] != links[0] || path[1] != links[1] || path[2] != links[2] {
		t.Errorf("path = %v, want %v", path, links)
	}
	routers, err := tree.RoutersTo(3)
	if err != nil {
		t.Fatal(err)
	}
	want := []RouterID{0, 1, 2, 3}
	for i, r := range want {
		if routers[i] != r {
			t.Fatalf("routers = %v, want %v", routers, want)
		}
	}
	// Path to self is empty.
	self, err := tree.PathTo(0)
	if err != nil || len(self) != 0 {
		t.Errorf("PathTo(self) = %v, %v", self, err)
	}
}

func TestBFSUnreachable(t *testing.T) {
	t.Parallel()
	g := mustGraph(t, 3)
	if _, err := g.AddLink(0, 1); err != nil {
		t.Fatal(err)
	}
	tree, err := g.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Reachable(2) {
		t.Error("disconnected router reported reachable")
	}
	if _, err := tree.PathTo(2); err == nil {
		t.Error("PathTo(unreachable) should fail")
	}
	if tree.HopCount(2) != -1 {
		t.Error("HopCount(unreachable) should be -1")
	}
	if _, err := g.BFS(99); err == nil {
		t.Error("BFS from unknown router should fail")
	}
}

func TestBFSShortestOverCycle(t *testing.T) {
	t.Parallel()
	// Square 0-1-2-3-0: distance 0->2 must be 2 either way.
	g := mustGraph(t, 4)
	edges := [][2]RouterID{{0, 1}, {1, 2}, {2, 3}, {3, 0}}
	for _, e := range edges {
		if _, err := g.AddLink(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	tree, err := g.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.HopCount(2) != 2 {
		t.Errorf("HopCount(2) = %d, want 2", tree.HopCount(2))
	}
}

func TestGenerateValidation(t *testing.T) {
	t.Parallel()
	bad := TestConfig()
	bad.TransitDomains = 0
	if _, err := Generate(bad, testRand()); err == nil {
		t.Error("invalid config accepted")
	}
	bad = TestConfig()
	bad.StubMultihomeFraction = 1.5
	if _, err := Generate(bad, testRand()); err == nil {
		t.Error("multihome fraction >1 accepted")
	}
	bad = TestConfig()
	bad.HostsPerStubRouter = -1
	if _, err := Generate(bad, testRand()); err == nil {
		t.Error("negative hosts accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	t.Parallel()
	cfg := TestConfig()
	g1, err := Generate(cfg, rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Generate(cfg, rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumRouters() != g2.NumRouters() || g1.NumLinks() != g2.NumLinks() {
		t.Fatal("same seed gave different graphs")
	}
	for l := 0; l < g1.NumLinks(); l++ {
		a1, b1, _ := g1.LinkEndpoints(LinkID(l))
		a2, b2, _ := g2.LinkEndpoints(LinkID(l))
		if a1 != a2 || b1 != b2 {
			t.Fatalf("link %d differs: %d-%d vs %d-%d", l, a1, b1, a2, b2)
		}
	}
}

func TestGenerateConnected(t *testing.T) {
	t.Parallel()
	g, err := Generate(TestConfig(), testRand())
	if err != nil {
		t.Fatal(err)
	}
	tree, err := g.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < g.NumRouters(); r++ {
		if !tree.Reachable(RouterID(r)) {
			t.Fatalf("router %d unreachable — generated graph disconnected", r)
		}
	}
}

func TestGenerateHasEndHosts(t *testing.T) {
	t.Parallel()
	g, err := Generate(TestConfig(), testRand())
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.EndHosts()
	if len(hosts) < 10 {
		t.Fatalf("only %d end hosts generated", len(hosts))
	}
	for _, h := range hosts {
		if g.Degree(h) != 1 {
			t.Fatalf("end host %d has degree %d", h, g.Degree(h))
		}
	}
}

func TestGenerateDefaultScaleShape(t *testing.T) {
	t.Parallel()
	g, err := Generate(DefaultConfig(), testRand())
	if err != nil {
		t.Fatal(err)
	}
	r, l := g.NumRouters(), g.NumLinks()
	if r < 5000 || r > 30000 {
		t.Errorf("default-scale routers = %d, want ~10k", r)
	}
	ratio := float64(l) / float64(r)
	if ratio < 1.1 || ratio > 2.2 {
		t.Errorf("link/router ratio = %v, want Internet-like (~1.6)", ratio)
	}
	hosts := len(g.EndHosts())
	if hosts < r/10 {
		t.Errorf("end hosts = %d of %d routers, too few", hosts, r)
	}
}

// Property: in any generated graph, every link's endpoints are valid and
// appear in each other's adjacency lists exactly once.
func TestPropAdjacencyConsistent(t *testing.T) {
	t.Parallel()
	f := func(seed uint16) bool {
		g, err := Generate(TestConfig(), rand.New(rand.NewPCG(uint64(seed), 3)))
		if err != nil {
			return false
		}
		for l := 0; l < g.NumLinks(); l++ {
			a, b, err := g.LinkEndpoints(LinkID(l))
			if err != nil || a == b {
				return false
			}
			var ab, ba int
			for _, nb := range g.Neighbors(a) {
				if nb.Link == LinkID(l) {
					ab++
					if nb.Router != b {
						return false
					}
				}
			}
			for _, nb := range g.Neighbors(b) {
				if nb.Link == LinkID(l) {
					ba++
					if nb.Router != a {
						return false
					}
				}
			}
			if ab != 1 || ba != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: BFS distances obey the triangle property along tree edges:
// dist(parent) + 1 == dist(child).
func TestPropBFSDistances(t *testing.T) {
	t.Parallel()
	g, err := Generate(TestConfig(), testRand())
	if err != nil {
		t.Fatal(err)
	}
	tree, err := g.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < g.NumRouters(); r++ {
		path, err := tree.PathTo(RouterID(r))
		if err != nil {
			t.Fatal(err)
		}
		if len(path) != tree.HopCount(RouterID(r)) {
			t.Fatalf("path length %d != hop count %d", len(path), tree.HopCount(RouterID(r)))
		}
		// Path links must be pairwise adjacent and start at the source.
		routers, err := tree.RoutersTo(RouterID(r))
		if err != nil {
			t.Fatal(err)
		}
		if routers[0] != 0 || routers[len(routers)-1] != RouterID(r) {
			t.Fatal("router path endpoints wrong")
		}
		for i, l := range path {
			a, b, _ := g.LinkEndpoints(l)
			u, v := routers[i], routers[i+1]
			if !((a == u && b == v) || (a == v && b == u)) {
				t.Fatalf("link %d does not join %d-%d", l, u, v)
			}
		}
	}
}

func BenchmarkGenerateDefault(b *testing.B) {
	r := testRand()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(DefaultConfig(), r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBFSDefault(b *testing.B) {
	g, err := Generate(DefaultConfig(), testRand())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.BFS(RouterID(i % g.NumRouters())); err != nil {
			b.Fatal(err)
		}
	}
}
