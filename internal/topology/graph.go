// Package topology models the router-level IP network underneath the
// overlay: an undirected graph of routers and links, shortest-path
// routing, and a transit-stub synthetic generator that stands in for the
// SCAN Internet map used by the paper's evaluation (§4.2). End hosts are
// degree-1 routers, exactly as in the paper's methodology (following
// Chen et al.).
package topology

import (
	"fmt"
)

// RouterID names a router; valid IDs are dense in [0, NumRouters).
type RouterID int32

// LinkID names an undirected link; valid IDs are dense in [0, NumLinks).
type LinkID int32

// Link is an undirected edge between two routers.
type Link struct {
	A, B RouterID
}

// Neighbor pairs an adjacent router with the link that reaches it.
type Neighbor struct {
	Router RouterID
	Link   LinkID
}

// Graph is an undirected router graph. Construction is not synchronized;
// a fully built Graph is immutable and safe for concurrent readers.
type Graph struct {
	links []Link
	adj   [][]Neighbor
}

// NewGraph creates a graph with n isolated routers.
func NewGraph(n int) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topology: graph needs at least one router, got %d", n)
	}
	return &Graph{adj: make([][]Neighbor, n)}, nil
}

// NumRouters returns the number of routers.
func (g *Graph) NumRouters() int { return len(g.adj) }

// NumLinks returns the number of links.
func (g *Graph) NumLinks() int { return len(g.links) }

// AddLink connects a and b, returning the new link's ID. Self-loops and
// out-of-range routers are rejected; parallel edges are merged (the
// existing link is returned).
func (g *Graph) AddLink(a, b RouterID) (LinkID, error) {
	if a == b {
		return 0, fmt.Errorf("topology: self-loop at router %d", a)
	}
	if !g.validRouter(a) || !g.validRouter(b) {
		return 0, fmt.Errorf("topology: link %d-%d references unknown router", a, b)
	}
	// Check the shorter adjacency list for an existing edge.
	x, y := a, b
	if len(g.adj[y]) < len(g.adj[x]) {
		x, y = y, x
	}
	for _, nb := range g.adj[x] {
		if nb.Router == y {
			return nb.Link, nil
		}
	}
	lid := LinkID(len(g.links))
	g.links = append(g.links, Link{A: a, B: b})
	g.adj[a] = append(g.adj[a], Neighbor{Router: b, Link: lid})
	g.adj[b] = append(g.adj[b], Neighbor{Router: a, Link: lid})
	return lid, nil
}

func (g *Graph) validRouter(r RouterID) bool {
	return r >= 0 && int(r) < len(g.adj)
}

// LinkEndpoints returns the two routers joined by l.
func (g *Graph) LinkEndpoints(l LinkID) (RouterID, RouterID, error) {
	if l < 0 || int(l) >= len(g.links) {
		return 0, 0, fmt.Errorf("topology: unknown link %d", l)
	}
	lk := g.links[l]
	return lk.A, lk.B, nil
}

// Degree returns the number of links at router r.
func (g *Graph) Degree(r RouterID) int {
	if !g.validRouter(r) {
		return 0
	}
	return len(g.adj[r])
}

// Neighbors returns r's adjacency list. The returned slice is shared with
// the graph and must not be modified.
func (g *Graph) Neighbors(r RouterID) []Neighbor {
	if !g.validRouter(r) {
		return nil
	}
	return g.adj[r]
}

// EndHosts returns all degree-1 routers, the candidates for overlay
// membership in the paper's methodology.
func (g *Graph) EndHosts() []RouterID {
	var hosts []RouterID
	for r := range g.adj {
		if len(g.adj[r]) == 1 {
			hosts = append(hosts, RouterID(r))
		}
	}
	return hosts
}

// RouteTree is a BFS shortest-path tree rooted at Source. It answers
// "which IP links does a packet from Source to X traverse" — the link
// maps that the paper obtains from RocketFuel-style measurement (§3.2).
type RouteTree struct {
	Source     RouterID
	parent     []RouterID
	parentLink []LinkID
	dist       []int32
}

// BFS computes the shortest-path tree from src. Ties are broken by
// adjacency order, which is deterministic for a deterministically built
// graph. The returned tree owns its storage; callers that compute many
// trees and keep none of them alive should reuse a BFSScratch instead.
func (g *Graph) BFS(src RouterID) (*RouteTree, error) {
	return g.BFSInto(&BFSScratch{}, src)
}

// BFSScratch holds the reusable state of repeated BFS runs: the
// frontier queue and the visited/parent arrays of one RouteTree. A
// system build runs one BFS per overlay node against the same immutable
// graph; reusing the scratch turns the per-node cost from four O(n)
// allocations into an O(n) reset of already-hot memory. The zero value
// is ready to use. A scratch belongs to one goroutine; parallel callers
// keep one per worker.
type BFSScratch struct {
	tree  RouteTree
	queue []RouterID
}

// BFSInto computes the shortest-path tree from src into s's reusable
// RouteTree and returns it. The result is valid only until the next
// BFSInto call on the same scratch; callers that retain the tree (e.g.
// a per-router cache) must use BFS, which hands out owned storage.
func (g *Graph) BFSInto(s *BFSScratch, src RouterID) (*RouteTree, error) {
	if !g.validRouter(src) {
		return nil, fmt.Errorf("topology: BFS from unknown router %d", src)
	}
	n := len(g.adj)
	t := &s.tree
	t.Source = src
	if cap(t.dist) < n {
		t.parent = make([]RouterID, n)
		t.parentLink = make([]LinkID, n)
		t.dist = make([]int32, n)
	} else {
		t.parent = t.parent[:n]
		t.parentLink = t.parentLink[:n]
		t.dist = t.dist[:n]
	}
	for i := range t.dist {
		t.dist[i] = -1
	}
	t.dist[src] = 0
	t.parent[src] = src
	if cap(s.queue) == 0 {
		s.queue = make([]RouterID, 0, 256)
	}
	queue := s.queue[:0]
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, nb := range g.adj[u] {
			if t.dist[nb.Router] >= 0 {
				continue
			}
			t.dist[nb.Router] = t.dist[u] + 1
			t.parent[nb.Router] = u
			t.parentLink[nb.Router] = nb.Link
			queue = append(queue, nb.Router)
		}
	}
	s.queue = queue
	return t, nil
}

// Reachable reports whether dst is connected to the tree's source.
func (t *RouteTree) Reachable(dst RouterID) bool {
	return int(dst) < len(t.dist) && dst >= 0 && t.dist[dst] >= 0
}

// HopCount returns the number of links between the source and dst, or -1
// if unreachable.
func (t *RouteTree) HopCount(dst RouterID) int {
	if !t.Reachable(dst) {
		return -1
	}
	return int(t.dist[dst])
}

// PathTo returns the links from the source to dst in traversal order
// (first element is the link leaving the source).
func (t *RouteTree) PathTo(dst RouterID) ([]LinkID, error) {
	if !t.Reachable(dst) {
		return nil, fmt.Errorf("topology: router %d unreachable from %d", dst, t.Source)
	}
	path, err := t.AppendPathTo(make([]LinkID, 0, t.dist[dst]), dst)
	if err != nil {
		return nil, err
	}
	return path, nil
}

// AppendPathTo appends the source-to-dst link path to out (which may be
// a reused or shared backing buffer) and returns the extended slice —
// the allocation-free variant of PathTo.
func (t *RouteTree) AppendPathTo(out []LinkID, dst RouterID) ([]LinkID, error) {
	if !t.Reachable(dst) {
		return nil, fmt.Errorf("topology: router %d unreachable from %d", dst, t.Source)
	}
	start := len(out)
	hops := int(t.dist[dst])
	for i := 0; i < hops; i++ {
		out = append(out, 0)
	}
	w := start + hops
	for at := dst; at != t.Source; at = t.parent[at] {
		w--
		out[w] = t.parentLink[at]
	}
	return out, nil
}

// RoutersTo returns the router sequence from source to dst inclusive.
func (t *RouteTree) RoutersTo(dst RouterID) ([]RouterID, error) {
	if !t.Reachable(dst) {
		return nil, fmt.Errorf("topology: router %d unreachable from %d", dst, t.Source)
	}
	out := make([]RouterID, t.dist[dst]+1)
	i := len(out) - 1
	for at := dst; ; at = t.parent[at] {
		out[i] = at
		if at == t.Source {
			break
		}
		i--
	}
	return out, nil
}
