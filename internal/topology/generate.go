package topology

import (
	"fmt"
	"math"

	"concilium/internal/stats"
)

// Config parameterizes the transit-stub generator. The generated graph
// has three tiers, mirroring the structural properties the paper's
// SCAN-derived topology contributes to the evaluation:
//
//   - a densely connected transit core whose links are shared by many
//     overlay paths (covered by the first few tomography trees),
//   - sparse stub domains hanging off transit routers, and
//   - degree-1 end hosts on stub routers (the last-mile links that only
//     their own host's tree can probe).
type Config struct {
	// TransitDomains is the number of core domains.
	TransitDomains int
	// RoutersPerTransitDomain is the size of each core domain, connected
	// as a ring plus chords.
	RoutersPerTransitDomain int
	// TransitChordsPerRouter adds intra-domain shortcut edges.
	TransitChordsPerRouter int
	// InterDomainLinks is the number of links added between each pair of
	// adjacent domains on the domain ring, plus one per non-adjacent pair.
	InterDomainLinks int
	// StubsPerTransitRouter attaches this many stub domains to every
	// transit router.
	StubsPerTransitRouter int
	// MeanRoutersPerStub sizes each stub uniformly in [1, 2*mean-1].
	MeanRoutersPerStub int
	// StubChordFraction adds approximately this many extra intra-stub
	// edges per stub router.
	StubChordFraction float64
	// StubMultihomeFraction gives this fraction of stubs a second uplink
	// to a random transit router.
	StubMultihomeFraction float64
	// HostsPerStubRouter is the expected number of degree-1 end hosts per
	// stub router.
	HostsPerStubRouter float64
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	switch {
	case c.TransitDomains <= 0:
		return fmt.Errorf("topology: TransitDomains %d must be positive", c.TransitDomains)
	case c.RoutersPerTransitDomain <= 0:
		return fmt.Errorf("topology: RoutersPerTransitDomain %d must be positive", c.RoutersPerTransitDomain)
	case c.TransitChordsPerRouter < 0:
		return fmt.Errorf("topology: TransitChordsPerRouter %d negative", c.TransitChordsPerRouter)
	case c.InterDomainLinks < 0:
		return fmt.Errorf("topology: InterDomainLinks %d negative", c.InterDomainLinks)
	case c.StubsPerTransitRouter < 0:
		return fmt.Errorf("topology: StubsPerTransitRouter %d negative", c.StubsPerTransitRouter)
	case c.MeanRoutersPerStub <= 0 && c.StubsPerTransitRouter > 0:
		return fmt.Errorf("topology: MeanRoutersPerStub %d must be positive", c.MeanRoutersPerStub)
	case c.StubChordFraction < 0 || math.IsNaN(c.StubChordFraction):
		return fmt.Errorf("topology: StubChordFraction %v negative", c.StubChordFraction)
	case c.StubMultihomeFraction < 0 || c.StubMultihomeFraction > 1:
		return fmt.Errorf("topology: StubMultihomeFraction %v out of [0,1]", c.StubMultihomeFraction)
	case c.HostsPerStubRouter < 0 || math.IsNaN(c.HostsPerStubRouter):
		return fmt.Errorf("topology: HostsPerStubRouter %v negative", c.HostsPerStubRouter)
	}
	return nil
}

// TestConfig is a tiny topology for unit tests: a few hundred routers.
func TestConfig() Config {
	return Config{
		TransitDomains:          2,
		RoutersPerTransitDomain: 6,
		TransitChordsPerRouter:  1,
		InterDomainLinks:        2,
		StubsPerTransitRouter:   2,
		MeanRoutersPerStub:      4,
		StubChordFraction:       0.3,
		StubMultihomeFraction:   0.2,
		HostsPerStubRouter:      1.0,
	}
}

// DefaultConfig is the medium scale used by examples and fast
// experiments: roughly 10k routers and 4k end hosts, so a 3% overlay
// sample yields ≈120 nodes.
func DefaultConfig() Config {
	return Config{
		TransitDomains:          6,
		RoutersPerTransitDomain: 20,
		TransitChordsPerRouter:  2,
		InterDomainLinks:        3,
		StubsPerTransitRouter:   6,
		MeanRoutersPerStub:      9,
		StubChordFraction:       0.7,
		StubMultihomeFraction:   0.3,
		HostsPerStubRouter:      0.65,
	}
}

// TreelikeConfig trades link redundancy for path convergence: no
// chords, no multihoming, a sparse core. Its router count matches
// DefaultConfig but BFS routes funnel through shared trunks the way
// measured Internet routes do, which reproduces the paper's Figure 4
// own-tree coverage (~25%) that redundancy-rich graphs understate. Use
// it when an experiment's outcome depends on how much overlay paths
// share links.
func TreelikeConfig() Config {
	return Config{
		TransitDomains:          6,
		RoutersPerTransitDomain: 20,
		TransitChordsPerRouter:  0,
		InterDomainLinks:        1,
		StubsPerTransitRouter:   6,
		MeanRoutersPerStub:      9,
		StubChordFraction:       0,
		StubMultihomeFraction:   0,
		HostsPerStubRouter:      0.65,
	}
}

// TreelikePaperConfig scales TreelikeConfig to the SCAN map's node
// count: ≈113k routers with path-convergent routing. Use it for the
// Figure 4 reproduction at the paper's own overlay size.
func TreelikePaperConfig() Config {
	return Config{
		TransitDomains:          12,
		RoutersPerTransitDomain: 50,
		TransitChordsPerRouter:  0,
		InterDomainLinks:        1,
		StubsPerTransitRouter:   12,
		MeanRoutersPerStub:      10,
		StubChordFraction:       0,
		StubMultihomeFraction:   0,
		HostsPerStubRouter:      0.555,
	}
}

// PaperConfig approximates the SCAN map the paper used: ≈113k routers,
// ≈180k links, ≈37.7k degree-1 end hosts (3% → ≈1,131 overlay nodes).
func PaperConfig() Config {
	return Config{
		TransitDomains:          12,
		RoutersPerTransitDomain: 50,
		TransitChordsPerRouter:  4,
		InterDomainLinks:        4,
		StubsPerTransitRouter:   12,
		MeanRoutersPerStub:      10,
		StubChordFraction:       1.25,
		StubMultihomeFraction:   0.3,
		HostsPerStubRouter:      0.555,
	}
}

// Generate builds a transit-stub topology from cfg using src. The same
// config and seed always produce the identical graph.
func Generate(cfg Config, src stats.Rand) (*Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Graph{}

	// Transit core: per-domain rings with chords.
	nd, nr := cfg.TransitDomains, cfg.RoutersPerTransitDomain
	transit := make([][]RouterID, nd)
	for d := 0; d < nd; d++ {
		transit[d] = make([]RouterID, nr)
		for i := 0; i < nr; i++ {
			transit[d][i] = g.AddRouter()
		}
		if nr > 1 {
			for i := 0; i < nr; i++ {
				if _, err := g.AddLink(transit[d][i], transit[d][(i+1)%nr]); err != nil {
					return nil, err
				}
			}
		}
		for i := 0; i < nr && nr > 2; i++ {
			for c := 0; c < cfg.TransitChordsPerRouter; c++ {
				j := src.IntN(nr)
				if j == i {
					continue
				}
				if _, err := g.AddLink(transit[d][i], transit[d][j]); err != nil {
					return nil, err
				}
			}
		}
	}

	// Inter-domain links: a domain ring for guaranteed connectivity, plus
	// one link per non-adjacent pair.
	for a := 0; a < nd; a++ {
		for b := a + 1; b < nd; b++ {
			adjacent := b == a+1 || (a == 0 && b == nd-1)
			n := 1
			if adjacent {
				n = cfg.InterDomainLinks
				if n == 0 {
					n = 1
				}
			}
			for k := 0; k < n; k++ {
				ra := transit[a][src.IntN(nr)]
				rb := transit[b][src.IntN(nr)]
				if _, err := g.AddLink(ra, rb); err != nil {
					return nil, err
				}
			}
		}
	}

	// Stub domains: random trees rooted at a transit router, with chords
	// and optional multihoming.
	var stubRouters []RouterID
	for d := 0; d < nd; d++ {
		for i := 0; i < nr; i++ {
			for s := 0; s < cfg.StubsPerTransitRouter; s++ {
				size := 1 + src.IntN(2*cfg.MeanRoutersPerStub-1)
				stub := make([]RouterID, size)
				for k := 0; k < size; k++ {
					stub[k] = g.AddRouter()
					var parent RouterID
					if k == 0 {
						parent = transit[d][i]
					} else {
						parent = stub[src.IntN(k)]
					}
					if _, err := g.AddLink(stub[k], parent); err != nil {
						return nil, err
					}
				}
				chords := int(cfg.StubChordFraction * float64(size))
				for c := 0; c < chords && size > 2; c++ {
					x, y := stub[src.IntN(size)], stub[src.IntN(size)]
					if x == y {
						continue
					}
					if _, err := g.AddLink(x, y); err != nil {
						return nil, err
					}
				}
				if src.Float64() < cfg.StubMultihomeFraction {
					td := src.IntN(nd)
					if _, err := g.AddLink(stub[0], transit[td][src.IntN(nr)]); err != nil {
						return nil, err
					}
				}
				stubRouters = append(stubRouters, stub...)
			}
		}
	}

	// End hosts: degree-1 routers on stub routers.
	whole := int(cfg.HostsPerStubRouter)
	frac := cfg.HostsPerStubRouter - float64(whole)
	for _, sr := range stubRouters {
		n := whole
		if src.Float64() < frac {
			n++
		}
		for k := 0; k < n; k++ {
			h := g.AddRouter()
			if _, err := g.AddLink(h, sr); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// AddRouter appends a new isolated router and returns its ID.
func (g *Graph) AddRouter() RouterID {
	g.adj = append(g.adj, nil)
	return RouterID(len(g.adj) - 1)
}
