package topology

import (
	"testing"
)

// TestBFSIntoMatchesBFS pins the scratch-reusing BFS against the
// allocating one: the same immutable graph, many sources, one shared
// scratch — every tree must agree on reachability, distance, and path
// for every destination, including runs where the scratch is recycled
// across sources.
func TestBFSIntoMatchesBFS(t *testing.T) {
	t.Parallel()
	g, err := Generate(TestConfig(), testRand())
	if err != nil {
		t.Fatal(err)
	}
	var scratch BFSScratch
	n := g.NumRouters()
	step := n/17 + 1
	for src := RouterID(0); int(src) < n; src += RouterID(step) {
		want, err := g.BFS(src)
		if err != nil {
			t.Fatal(err)
		}
		got, err := g.BFSInto(&scratch, src)
		if err != nil {
			t.Fatal(err)
		}
		for dst := RouterID(0); int(dst) < n; dst++ {
			if want.Reachable(dst) != got.Reachable(dst) {
				t.Fatalf("src %d dst %d: reachability differs", src, dst)
			}
			if !want.Reachable(dst) {
				continue
			}
			if want.HopCount(dst) != got.HopCount(dst) {
				t.Fatalf("src %d dst %d: hops %d vs %d", src, dst, want.HopCount(dst), got.HopCount(dst))
			}
			wp, err := want.PathTo(dst)
			if err != nil {
				t.Fatal(err)
			}
			gp, err := got.PathTo(dst)
			if err != nil {
				t.Fatal(err)
			}
			if len(wp) != len(gp) {
				t.Fatalf("src %d dst %d: path lengths %d vs %d", src, dst, len(wp), len(gp))
			}
			for i := range wp {
				if wp[i] != gp[i] {
					t.Fatalf("src %d dst %d: paths diverge at hop %d", src, dst, i)
				}
			}
		}
	}
}

// TestBFSIntoRejectsBadSource mirrors BFS's input validation.
func TestBFSIntoRejectsBadSource(t *testing.T) {
	t.Parallel()
	g := mustGraph(t, 3)
	var scratch BFSScratch
	if _, err := g.BFSInto(&scratch, 99); err == nil {
		t.Error("out-of-range source accepted")
	}
}
