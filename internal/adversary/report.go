package adversary

import (
	"fmt"
	"strings"

	"concilium/internal/metrics"
)

// Invariant is one checked attack-resistance contract.
type Invariant struct {
	Name   string
	OK     bool
	Detail string
}

// ROCPoint is one operating point of a cell's conviction curve: at the
// given decision threshold, the fraction of attackers convicted and
// the fraction of honest hosts falsely convicted.
type ROCPoint struct {
	Threshold    float64
	AttackerRate float64
	HonestRate   float64
}

// CellRejections breaks down the repository's hardening rejections
// observed in one cell.
type CellRejections struct {
	RateLimited uint64
	Duplicate   uint64
	Stale       uint64
}

// Total returns the number of hardening rejections of any kind.
func (r CellRejections) Total() uint64 { return r.RateLimited + r.Duplicate + r.Stale }

// CellResult is the deterministic outcome of one (strategy, fraction)
// cell.
type CellResult struct {
	Strategy string
	Fraction float64

	Nodes     int
	Attackers int

	Sent, Delivered int
	Diagnosed       int
	// AttackerDrops counts traffic messages an attacker provably dropped
	// while stewarding — the cell's ground-truth misbehavior volume,
	// which the conviction rates are measured against.
	AttackerDrops      int
	Convictions        int
	ChainsPublished    int
	PublishErrors      int
	GenuineRateLimited int
	RebalanceErrors    int
	VoteErrors         int

	Rejections CellRejections
	Suspected  int

	// Curve is the strategy's conviction ROC, threshold-ascending; Op
	// is the configured operating point (the window's M, the sanction
	// quorum, or the density γ, depending on the strategy).
	Curve []ROCPoint
	Op    ROCPoint

	// RepAttackerRate and RepHonestRate are the reputation fallback's
	// quorum outcomes: the fraction of attackers (resp. honest hosts)
	// that trusted no-confidence votes declare a poor peer.
	RepAttackerRate float64
	RepHonestRate   float64

	// Panic records a recovered cell panic; empty means none.
	Panic string
}

// Report is the deterministic outcome of an adversarial campaign:
// identical for the same seed at every worker count.
type Report struct {
	Seed       uint64
	Strategies []string
	Fractions  []float64
	Cells      []CellResult

	// Metrics merges every cell's canonical snapshot in cell order; the
	// wall-clock series are stripped, so the field is a pure function
	// of the seed like the rest of the report.
	Metrics metrics.Snapshot

	Invariants []Invariant
}

func (r *Report) addInvariant(name string, ok bool, detail string) {
	r.Invariants = append(r.Invariants, Invariant{Name: name, OK: ok, Detail: detail})
}

// Passed reports whether every invariant held.
func (r *Report) Passed() bool {
	if len(r.Invariants) == 0 {
		return false
	}
	for _, inv := range r.Invariants {
		if !inv.OK {
			return false
		}
	}
	return true
}

// Cell returns the result for (strategy, fraction), or nil.
func (r *Report) Cell(strategy string, fraction float64) *CellResult {
	for i := range r.Cells {
		if r.Cells[i].Strategy == strategy && r.Cells[i].Fraction == fraction {
			return &r.Cells[i]
		}
	}
	return nil
}

// String renders the report. The output is a pure function of the
// campaign seed.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "adversary campaign seed=%d\n", r.Seed)
	fmt.Fprintf(&b, "grid: %d strategies x %d fractions = %d cells\n",
		len(r.Strategies), len(r.Fractions), len(r.Cells))
	for i := range r.Cells {
		c := &r.Cells[i]
		fmt.Fprintf(&b, "%s f=%.2f: %d/%d attackers, traffic %d sent %d delivered %d diagnosed %d att-drops, %d chains\n",
			c.Strategy, c.Fraction, c.Attackers, c.Nodes, c.Sent, c.Delivered, c.Diagnosed, c.AttackerDrops, c.ChainsPublished)
		fmt.Fprintf(&b, "  conviction@op(th=%g): attacker=%.3f honest=%.3f; reputation: attacker=%.3f honest=%.3f\n",
			c.Op.Threshold, c.Op.AttackerRate, c.Op.HonestRate, c.RepAttackerRate, c.RepHonestRate)
		fmt.Fprintf(&b, "  repo: rate-limited=%d duplicate=%d stale=%d genuine-capped=%d; suspected=%d\n",
			c.Rejections.RateLimited, c.Rejections.Duplicate, c.Rejections.Stale,
			c.GenuineRateLimited, c.Suspected)
		if c.Panic != "" {
			fmt.Fprintf(&b, "  PANIC: %s\n", c.Panic)
		}
	}
	fmt.Fprintf(&b, "metrics: %d counters, %d gauges, %d histograms (canonical); repo rejections: rl=%d dup=%d stale=%d\n",
		len(r.Metrics.Counters), len(r.Metrics.Gauges), len(r.Metrics.Histograms),
		r.Metrics.Counters["dht/chains_rate_limited"], r.Metrics.Counters["dht/chains_duplicate"],
		r.Metrics.Counters["dht/chains_stale"])
	fmt.Fprintf(&b, "invariants:\n")
	for _, inv := range r.Invariants {
		status := "ok"
		if !inv.OK {
			status = "FAIL"
		}
		if inv.Detail != "" {
			fmt.Fprintf(&b, "  [%s] %-28s %s\n", status, inv.Name, inv.Detail)
		} else {
			fmt.Fprintf(&b, "  [%s] %s\n", status, inv.Name)
		}
	}
	if r.Passed() {
		fmt.Fprintf(&b, "result: PASS\n")
	} else {
		fmt.Fprintf(&b, "result: FAIL\n")
	}
	return b.String()
}
