package adversary

import (
	"strings"
	"testing"

	"concilium/internal/chaos"
	"concilium/internal/metrics"
)

// TestCampaignInvariants runs the short campaign across the CI seed
// matrix and requires every fixed-order invariant to hold.
func TestCampaignInvariants(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		seed := seed
		t.Run(name("seed", seed), func(t *testing.T) {
			t.Parallel()
			cfg := ShortConfig(seed)
			rep, err := Run(cfg)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			for _, inv := range rep.Invariants {
				if !inv.OK {
					t.Errorf("invariant %s failed: %s", inv.Name, inv.Detail)
				}
			}
			if !rep.Passed() {
				t.Errorf("campaign failed:\n%s", rep.String())
			}
			if len(rep.Cells) != len(rep.Strategies)*len(rep.Fractions) {
				t.Fatalf("cell grid: got %d cells", len(rep.Cells))
			}
		})
	}
}

// TestCampaignWorkerInvariance byte-compares the rendered report across
// worker counts: the campaign must be a pure function of its seed.
func TestCampaignWorkerInvariance(t *testing.T) {
	for _, seed := range []uint64{1, 7} {
		seed := seed
		t.Run(name("seed", seed), func(t *testing.T) {
			t.Parallel()
			var want string
			var wantMetrics metrics.Snapshot
			for _, workers := range []int{1, 4, 8} {
				cfg := ShortConfig(seed)
				cfg.Workers = workers
				rep, err := Run(cfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				got := rep.String()
				if want == "" {
					want, wantMetrics = got, rep.Metrics
					continue
				}
				if got != want {
					t.Errorf("workers=%d: report differs from workers=1", workers)
				}
				if !rep.Metrics.Equal(wantMetrics) {
					t.Errorf("workers=%d: merged metrics differ from workers=1", workers)
				}
			}
		})
	}
}

// TestCampaignROCShape spot-checks the structure of the per-cell
// curves: monotone non-increasing rates as thresholds tighten, and the
// operating point present on each curve.
func TestCampaignROCShape(t *testing.T) {
	rep, err := Run(ShortConfig(7))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := range rep.Cells {
		c := &rep.Cells[i]
		if len(c.Curve) == 0 {
			t.Errorf("%s f=%.2f: empty curve", c.Strategy, c.Fraction)
			continue
		}
		for j := 1; j < len(c.Curve); j++ {
			if c.Curve[j].Threshold <= c.Curve[j-1].Threshold {
				t.Errorf("%s f=%.2f: thresholds not ascending at %d", c.Strategy, c.Fraction, j)
			}
			if c.Strategy != "eclipse" {
				// Window and quorum sweeps count exceedances, so rates can
				// only fall as the threshold rises.
				if c.Curve[j].AttackerRate > c.Curve[j-1].AttackerRate ||
					c.Curve[j].HonestRate > c.Curve[j-1].HonestRate {
					t.Errorf("%s f=%.2f: rates not monotone at threshold %.0f",
						c.Strategy, c.Fraction, c.Curve[j].Threshold)
				}
			}
		}
		found := false
		for _, p := range c.Curve {
			if p == c.Op {
				found = true
			}
		}
		if !found {
			t.Errorf("%s f=%.2f: operating point not on curve", c.Strategy, c.Fraction)
		}
	}
}

// TestMetricsHygiene rejects nondeterministic series from the
// campaign's canonical snapshot and checks the repository hardening
// counters surfaced.
func TestMetricsHygiene(t *testing.T) {
	rep, err := Run(ShortConfig(1))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	check := func(kind, name string) {
		if metrics.NonDeterministic(name) {
			t.Errorf("canonical snapshot leaked nondeterministic %s %q", kind, name)
		}
	}
	for name := range rep.Metrics.Counters {
		check("counter", name)
	}
	for name := range rep.Metrics.Gauges {
		check("gauge", name)
	}
	for name := range rep.Metrics.Histograms {
		check("histogram", name)
	}
	var total uint64
	for _, name := range []string{"dht/chains_rate_limited", "dht/chains_duplicate", "dht/chains_stale"} {
		total += rep.Metrics.Counters[name]
	}
	if total == 0 {
		t.Error("campaign exercised no repository hardening counters")
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"valid", func(*Config) {}, ""},
		{"malicious fraction", func(c *Config) { c.System.MaliciousFraction = 0.1 }, "malicious fraction"},
		{"no fractions", func(c *Config) { c.Fractions = nil }, "no attacker fractions"},
		{"fraction out of range", func(c *Config) { c.Fractions = []float64{0.5, 1.0} }, "fractions must ascend"},
		{"fractions not ascending", func(c *Config) { c.Fractions = []float64{0.10, 0.05} }, "fractions must ascend"},
		{"zero messages", func(c *Config) { c.Messages = 0 }, "messages"},
		{"rounds exceed messages", func(c *Config) { c.AttackRounds = c.Messages + 1 }, "attack rounds"},
		{"too few replicas", func(c *Config) { c.Replicas = 2 }, "replicas"},
		{"zero quorum", func(c *Config) { c.SanctionQuorum = 0 }, "sanction quorum"},
		{"drop prob", func(c *Config) { c.DropProb = 1.5 }, "drop probability"},
		{"drop period", func(c *Config) { c.DropPeriod = 1 }, "drop period"},
		{"bad limits", func(c *Config) { c.Limits.MaxPerKey = -1 }, "per-key cap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := ShortConfig(1)
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error mentioning %q", err, tc.want)
			}
		})
	}
}

// TestFromChaosComposes derives an adversary config from a chaos
// config and checks the two campaigns draw from disjoint substream
// families: same experiment seed, different root constants, so running
// both never replays a stream.
func TestFromChaosComposes(t *testing.T) {
	ch := chaos.ShortConfig(42)
	cfg := FromChaos(ch)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("FromChaos config invalid: %v", err)
	}
	if cfg.Seed != ch.Seed {
		t.Errorf("seed not inherited: %d vs %d", cfg.Seed, ch.Seed)
	}
	if cfg.System.MaliciousFraction != 0 {
		t.Errorf("FromChaos must zero MaliciousFraction, got %v", cfg.System.MaliciousFraction)
	}
	if rootSeed(cfg.Seed) == chaos.RootSeed(ch.Seed) {
		t.Error("adversary and chaos campaigns share a root seed — streams would replay")
	}
}

func name(prefix string, seed uint64) string {
	return prefix + "=" + string(rune('0'+seed/10)) + string(rune('0'+seed%10))
}
