package adversary

import "concilium/internal/core"

// dropperStrategy is the Byzantine-forwarder baseline: selective and
// probabilistic droppers tuned to hover at the edge of the (w,m)
// sliding window. Even-indexed attackers drop deterministically every
// DropPeriod-th message — the pattern a naive rate detector misses but
// the verdict window still accumulates — and odd-indexed ones drop
// probabilistically (DropProb per forward). The deterministic variant
// goes first so the single-attacker cell measures the window against
// guaranteed misbehavior, not a run of lucky coin flips.
type dropperStrategy struct{}

func (dropperStrategy) Name() string { return "selective-drop" }

func (dropperStrategy) Setup(env *Env) error {
	for i, a := range env.Attackers {
		b := core.Behavior{DropPeriod: env.Cfg.DropPeriod}
		if i%2 == 1 {
			b = core.Behavior{DropProb: env.Cfg.DropProb}
		}
		if err := env.Sys.SetBehavior(a, b); err != nil {
			return err
		}
	}
	return nil
}

// Round is empty: the dropper attacks only through the forwarding
// path, which the traffic loop exercises.
func (dropperStrategy) Round(*Env, int) error { return nil }

func (dropperStrategy) Curve(env *Env) ([]ROCPoint, ROCPoint, error) {
	curve, op := env.windowCurve()
	return curve, op, nil
}
