package adversary

import (
	"concilium/internal/core"
	"concilium/internal/id"
)

// collusionStrategy is the §4.3 adaptive clique: members drop every
// message they steward, publish inverted probe results that frame
// whichever honest host is being judged (and excuse fellow members as
// network faults), and co-sign forged accusation chains against honest
// victims. The defense under test is two-layered: the repository's
// replay rejections expose the co-signing clique to the
// CliqueSuspector, and the blame engine's witness grouping then
// collapses the clique's corroborated observations into a single
// witness, so k colluders no longer outvote honest probers.
type collusionStrategy struct{}

func (collusionStrategy) Name() string { return "collusion" }

func (collusionStrategy) Setup(env *Env) error {
	for _, a := range env.Attackers {
		b := core.Behavior{DropsMessages: true, InvertsProbes: true, Clique: 1}
		if err := env.Sys.SetBehavior(a, b); err != nil {
			return err
		}
	}
	return nil
}

// Round pushes the clique's co-signed forgeries: each member pairs
// with its clockwise clique neighbor to co-sign a chain against a
// fresh honest victim, then replays it byte for byte. The replay is
// rejected as a duplicate — and the rejection is what teaches the
// suspector who signs together. A lone attacker (f small enough for a
// single-member "clique") forges single-link chains, which carry no
// co-signing evidence and leave the suspector empty.
func (collusionStrategy) Round(env *Env, round int) error {
	if len(env.Honest) == 0 {
		return nil
	}
	n := len(env.Attackers)
	for i := 0; i < n; i++ {
		victim := env.pickVictim()
		signers := []id.ID{env.Attackers[i]}
		if n > 1 {
			signers = append(signers, env.Attackers[(i+1)%n])
		}
		chain, err := env.forgedChain(signers, victim, env.nextForgeID(), env.Sys.Sim.Now())
		if err != nil {
			return err
		}
		env.publish(chain, false)
		// The byte-identical replay: rejected as a duplicate, which
		// feeds the suspector when the chain was co-signed.
		env.publish(chain, false)
	}
	return nil
}

func (collusionStrategy) Curve(env *Env) ([]ROCPoint, ROCPoint, error) {
	curve, op := env.windowCurve()
	return curve, op, nil
}
