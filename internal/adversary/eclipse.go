package adversary

import (
	"encoding/binary"
	"fmt"

	"concilium/internal/id"
)

// eclipseStrategy attacks identifier placement: attackers join the
// overlay at identifiers packed immediately clockwise of a victim,
// monopolizing its leaf set — the placement that, if the CA allowed
// free identifier choice, would defeat the §3.1 γ density test by
// surrounding the victim with colluder state. The detector under test
// is the spacing anomaly check: under random identifier assignment the
// minimum gap inside a host's leaf-set arc is within a small factor of
// the mean gap, while a packed cluster's minimum gap is smaller by
// many orders of magnitude. Honest evaluators majority-vote each
// host's anomaly factor against the threshold γ.
type eclipseStrategy struct {
	victim id.ID
}

func (eclipseStrategy) Name() string { return "eclipse" }

// eclipseGammas is the detector's threshold grid: anomaly factors
// sweep powers of two, with the operating point at 2^10 — far above
// the O(leaf-set size) factors random placement produces, far below a
// packed cluster's.
func eclipseGammas() []float64 {
	out := make([]float64, 0, 23)
	for k := 2; k <= 24; k++ {
		out = append(out, float64(uint64(1)<<k))
	}
	return out
}

const eclipseOpGamma = 1 << 10

// Setup joins the attackers at identifiers victim+δ, victim+2δ, ... —
// a cluster whose internal spacing is ~30 orders of magnitude below
// the mean gap of the ring. Joins go through the normal certified
// admission path (the CA claims each identifier), and the accusation
// store is rebalanced onto the grown ring exactly as churn would.
func (s *eclipseStrategy) Setup(env *Env) error {
	sys := env.Sys
	if len(env.Honest) == 0 {
		return fmt.Errorf("adversary: eclipse needs an honest victim")
	}
	s.victim = env.pickVictim()
	hosts := sys.Topo.EndHosts()
	n := len(env.Attackers) // engine pre-sized the attacker count
	joined := make([]id.ID, 0, n)
	for j := 0; j < n; j++ {
		var delta id.ID
		binary.BigEndian.PutUint64(delta[8:], uint64(j+1)*1_000_003)
		nid := id.Add(s.victim, delta)
		router := hosts[env.Attack.IntN(len(hosts))]
		got, err := sys.JoinNodeAt(router, nid)
		if err != nil {
			return fmt.Errorf("adversary: eclipse join %d: %w", j, err)
		}
		env.keyDir[got] = sys.Nodes[got].Keys.Public
		joined = append(joined, got)
	}
	// The eclipse cluster replaces the pre-selected tail attackers:
	// the joined identities are the actual adversaries.
	env.Attackers = joined
	env.refreshHonest()
	if err := env.Store.Rebalance(sys.Ring); err != nil {
		env.cell.RebalanceErrors++
	}
	return nil
}

// Round is empty: the eclipse attack is the placement itself.
func (*eclipseStrategy) Round(*Env, int) error { return nil }

// Curve sweeps γ over the anomaly grid. For each host x the detector
// computes x's anomaly factor — the ring distance from x to its own
// nearest leaf-set neighbor — and every honest evaluator e votes
// "fraudulent" when γ·nearGap(x) < meanGap(e); a majority convicts.
// The score must be the host's OWN placement, not the tightest gap
// anywhere in its leaf set: the packed cluster appears in many honest
// hosts' leaf sets, but only cluster members (and the victim they
// besiege) actually sit a hair's width from a neighbor. The victim is
// the attack's collateral, reported as honest false convictions.
func (s *eclipseStrategy) Curve(env *Env) ([]ROCPoint, ROCPoint, error) {
	sys := env.Sys
	att := env.attackerSet()
	minGap := make(map[id.ID]float64, len(sys.Order))
	var evaluators []id.ID
	meanGap := make(map[id.ID]float64)
	for _, nid := range sys.Order {
		leaf := sys.Nodes[nid].Routing.Leaf
		minGap[nid] = nearestNeighborGap(nid, leaf.All())
		if att[nid] {
			continue
		}
		if mg, err := leaf.MeanSpacing(); err == nil && mg > 0 {
			evaluators = append(evaluators, nid)
			meanGap[nid] = mg
		}
	}
	if len(evaluators) == 0 {
		return nil, ROCPoint{}, fmt.Errorf("adversary: eclipse curve has no evaluators")
	}
	flaggedAt := func(x id.ID, gamma float64) bool {
		votes, voters := 0, 0
		for _, e := range evaluators {
			if e == x {
				continue
			}
			voters++
			if gamma*minGap[x] < meanGap[e] {
				votes++
			}
		}
		return voters > 0 && 2*votes > voters
	}
	rate := func(hosts []id.ID, gamma float64) float64 {
		if len(hosts) == 0 {
			return 0
		}
		var n int
		for _, h := range hosts {
			if flaggedAt(h, gamma) {
				n++
			}
		}
		return float64(n) / float64(len(hosts))
	}
	var curve []ROCPoint
	var op ROCPoint
	for _, gamma := range eclipseGammas() {
		p := ROCPoint{
			Threshold:    gamma,
			AttackerRate: rate(env.Attackers, gamma),
			HonestRate:   rate(env.Honest, gamma),
		}
		curve = append(curve, p)
		if gamma == eclipseOpGamma {
			op = p
		}
	}
	// Flagged hosts at the operating point lose their voting rights in
	// the reputation fallback: an eclipse cluster cannot vote its
	// victim into sanctions.
	for _, nid := range sys.Order {
		if flaggedAt(nid, eclipseOpGamma) {
			env.Distrusted[nid] = true
		}
	}
	return curve, op, nil
}

// nearestNeighborGap returns the ring distance from the owner to its
// closest leaf-set member, in either direction. This is the owner's
// personal placement anomaly: a packed attacker sits δ from a cluster
// sibling, while a randomly placed host's nearest neighbor is an
// exponential draw around ring/N.
func nearestNeighborGap(owner id.ID, members []id.ID) float64 {
	best := id.RingSize
	for _, m := range members {
		if m == owner {
			continue
		}
		cw, ccw := id.Spacing(owner, m), id.Spacing(m, owner)
		if cw > 0 && cw < best {
			best = cw
		}
		if ccw > 0 && ccw < best {
			best = ccw
		}
	}
	return best
}
