package adversary

import (
	"concilium/internal/core"
	"concilium/internal/id"
)

// spamStrategy attacks the accusation repository itself: attackers
// (who also drop traffic, so genuine convictions accumulate against
// them) flood forged chains against honest victims — fresh forgeries,
// byte-identical duplicates, and stale-evidence replays whose verdicts
// predate the staleness bound. The defenses under test are the
// repository's per-accuser rate caps, duplicate digests, and staleness
// bound, plus the clique-discounted sanctioning count: a victim with k
// colluding accusers on file counts one distinct (grouped) accuser,
// while a genuine dropper accumulates independent honest accusers.
type spamStrategy struct{}

func (spamStrategy) Name() string { return "accusation-spam" }

func (spamStrategy) Setup(env *Env) error {
	for _, a := range env.Attackers {
		if err := env.Sys.SetBehavior(a, core.Behavior{DropsMessages: true, Clique: 1}); err != nil {
			return err
		}
	}
	return nil
}

// Round runs one flood burst per attacker against a rotating victim:
// a fresh forgery (the repository admits at most the per-accuser cap),
// a byte-identical duplicate, and a stale replay stamped at virtual
// time zero — long before the staleness bound at publish time.
func (spamStrategy) Round(env *Env, round int) error {
	if len(env.Honest) == 0 {
		return nil
	}
	n := len(env.Attackers)
	for i := 0; i < n; i++ {
		victim := env.pickVictim()
		signers := []id.ID{env.Attackers[i]}
		if n > 1 {
			signers = append(signers, env.Attackers[(i+1)%n])
		}
		fresh, err := env.forgedChain(signers, victim, env.nextForgeID(), env.Sys.Sim.Now())
		if err != nil {
			return err
		}
		env.publish(fresh, false)
		env.publish(fresh, false) // duplicate replay
		stale, err := env.forgedChain(signers, victim, env.nextForgeID(), 0)
		if err != nil {
			return err
		}
		env.publish(stale, false) // stale-evidence replay
	}
	return nil
}

// Curve sweeps the sanctioning quorum q over the clique-discounted
// distinct-accuser count: a host is convicted at threshold q when at
// least q distinct accuser groups hold verifiable chains against it.
// The operating point is the configured SanctionQuorum.
func (spamStrategy) Curve(env *Env) ([]ROCPoint, ROCPoint, error) {
	counts := make(map[id.ID]int, len(env.Sys.Order))
	maxQ := env.Cfg.SanctionQuorum + 4
	for _, nid := range env.Sys.Order {
		n, err := env.Repo.CountBy(nid, env.Suspector.Group)
		if err != nil {
			return nil, ROCPoint{}, err
		}
		counts[nid] = n
		if n+1 > maxQ {
			maxQ = n + 1
		}
	}
	rate := func(hosts []id.ID, q int) float64 {
		if len(hosts) == 0 {
			return 0
		}
		var n int
		for _, h := range hosts {
			if counts[h] >= q {
				n++
			}
		}
		return float64(n) / float64(len(hosts))
	}
	curve := make([]ROCPoint, 0, maxQ)
	var op ROCPoint
	for q := 1; q <= maxQ; q++ {
		p := ROCPoint{
			Threshold:    float64(q),
			AttackerRate: rate(env.Attackers, q),
			HonestRate:   rate(env.Honest, q),
		}
		curve = append(curve, p)
		if q == env.Cfg.SanctionQuorum {
			op = p
		}
	}
	return curve, op, nil
}
