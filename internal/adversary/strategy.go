package adversary

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"math/rand/v2"

	"concilium/internal/core"
	"concilium/internal/dht"
	"concilium/internal/id"
	"concilium/internal/netsim"
	"concilium/internal/reputation"
	"concilium/internal/topology"
)

// Strategy is one attack campaign. Implementations must be pure
// functions of the cell's substreams: all randomness comes from
// env.Attack, so a cell's outcome depends only on (seed, cell index).
type Strategy interface {
	// Name identifies the strategy in reports and figures.
	Name() string
	// Setup installs the cell's attackers after system construction and
	// warmup (marking behaviors, joining eclipse nodes).
	Setup(env *Env) error
	// Round runs one attack round between traffic batches: forged-chain
	// pushes, repository floods, replays.
	Round(env *Env, round int) error
	// Curve computes the cell's conviction ROC after all traffic, plus
	// the configured operating point. It may also fill env.Distrusted
	// with hosts the strategy's detector flags, which the reputation
	// tally excludes from the trusted voter set.
	Curve(env *Env) ([]ROCPoint, ROCPoint, error)
}

// Strategies returns the campaign's attack list in fixed order — the
// "attack list first" contract: every strategy is a seeded campaign
// with an invariant over its conviction ROC.
func Strategies() []Strategy {
	return []Strategy{
		&dropperStrategy{},
		&collusionStrategy{},
		&spamStrategy{},
		&eclipseStrategy{},
	}
}

// Env is the per-cell world handed to a strategy: the deployment, the
// hardened accusation repository, the collusion suspector feeding the
// clique-discounting defenses, and the cell's attack substream.
type Env struct {
	Cfg       *Config
	Sys       *core.System
	Store     *dht.Store
	Repo      *dht.AccusationRepo
	Suspector *core.CliqueSuspector
	Board     *reputation.Board

	// Attackers is the cell's attacker set; Honest is everyone else
	// (recomputed after eclipse joins).
	Attackers []id.ID
	Honest    []id.ID

	// Traffic drives the cell's honest message load (stream 1 of the
	// cell seed); Attack is the strategy's substream (stream 2).
	Traffic *rand.Rand
	Attack  *rand.Rand

	// Distrusted collects hosts flagged by a strategy's detector (e.g.
	// the eclipse spacing test); the reputation tally refuses their
	// votes.
	Distrusted map[id.ID]bool

	keyDir  map[id.ID]ed25519.PublicKey
	attSet  map[id.ID]bool
	cell    *CellResult
	forgeID uint64
	voteSeq int
}

// attackerSet returns membership lookup for the attacker list.
func (e *Env) attackerSet() map[id.ID]bool {
	m := make(map[id.ID]bool, len(e.Attackers))
	for _, a := range e.Attackers {
		m[a] = true
	}
	return m
}

// refreshHonest recomputes the honest list from the current overlay
// membership, in deterministic system order.
func (e *Env) refreshHonest() {
	e.attSet = e.attackerSet()
	e.Honest = e.Honest[:0]
	for _, nid := range e.Sys.Order {
		if !e.attSet[nid] {
			e.Honest = append(e.Honest, nid)
		}
	}
}

// nextForgeID issues message numbers for forged chains, offset far
// above any genuine per-node sequence so forged and genuine chains
// never alias on MsgID.
func (e *Env) nextForgeID() uint64 {
	e.forgeID++
	return e.forgeID + (1 << 32)
}

// publish routes a chain through the hardened repository and accounts
// for the outcome. Duplicate and stale rejections are proof of
// deliberate replay, so the chain's co-signers are merged into the
// suspected clique; rate-limit rejections are not suspicion on their
// own — an honest accuser can trip a cap innocently — and are only
// tallied.
func (e *Env) publish(chain *core.RevisionChain, genuine bool) {
	err := e.Repo.PublishAt(chain, e.Sys.Sim.Now())
	switch {
	case err == nil:
		e.cell.ChainsPublished++
	case errors.Is(err, dht.ErrDuplicateChain), errors.Is(err, dht.ErrStaleChain):
		e.suspectCoSigners(chain)
	case errors.Is(err, dht.ErrRateLimited):
		if genuine {
			e.cell.GenuineRateLimited++
		}
	default:
		e.cell.PublishErrors++
	}
}

// suspectCoSigners merges every accuser that signed the chain into one
// suspected clique. Single-accuser chains carry no co-signing evidence
// and merge nothing.
func (e *Env) suspectCoSigners(chain *core.RevisionChain) {
	accusers := make([]id.ID, 0, len(chain.Links))
	for i := range chain.Links {
		accusers = append(accusers, chain.Links[i].Accuser)
	}
	e.Suspector.SuspectAll(accusers)
}

// forgedChain mints a co-signed accusation chain along signers →
// victim with fabricated evidence: a single link reported at
// confidence 0 recomputes to blame 1, which passes third-party
// verification (§3.4's check validates internal consistency, not
// archive agreement). Commitments are minted with the accused's keys —
// the in-simulation stand-in for replaying a forwarding commitment the
// accused legitimately issued earlier, which any past downstream peer
// holds.
func (e *Env) forgedChain(signers []id.ID, victim id.ID, msgID uint64, at netsim.Time) (*core.RevisionChain, error) {
	path := make([]id.ID, 0, len(signers)+1)
	path = append(path, signers...)
	path = append(path, victim)
	links := make([]core.Accusation, 0, len(path)-1)
	for i := 0; i+1 < len(path); i++ {
		accuser, accused := path[i], path[i+1]
		accusedNode := e.Sys.Nodes[accused]
		accuserNode := e.Sys.Nodes[accuser]
		if accusedNode == nil || accuserNode == nil {
			return nil, fmt.Errorf("adversary: forged chain names departed host")
		}
		res := core.BlameResult{
			Judged: accused,
			At:     at,
			Blame:  1,
			Guilty: true,
			Evidence: []core.LinkConfidence{
				{Link: topology.LinkID(1), Probes: 3, Confidence: 0},
			},
		}
		commit := core.NewCommitment(accusedNode.Keys, accuser, accused, victim, msgID, at)
		acc, err := core.NewAccusation(accuserNode.Keys, accuser, res, msgID,
			[]topology.LinkID{topology.LinkID(1)}, commit)
		if err != nil {
			return nil, err
		}
		links = append(links, acc)
	}
	return core.NewRevisionChain(links)
}

// pickVictim draws an honest target from the attack substream.
func (e *Env) pickVictim() id.ID {
	return e.Honest[e.Attack.IntN(len(e.Honest))]
}

// castVote records a no-confidence vote on the board, tallying (not
// failing on) verification errors.
func (e *Env) castVote(voter, subject id.ID) {
	vn := e.Sys.Nodes[voter]
	if vn == nil || voter == subject {
		return
	}
	v := reputation.NewVote(vn.Keys, voter, subject, e.Sys.Sim.Now())
	if err := e.Board.Record(v, vn.Keys.Public); err != nil {
		e.cell.VoteErrors++
	}
}

// windowCurve is the shared conviction ROC for window-based strategies:
// the decision threshold m sweeps 1..W over each host's current guilty
// count, and the operating point is the configured accusation
// threshold M.
func (e *Env) windowCurve() ([]ROCPoint, ROCPoint) {
	w := e.Sys.Config.Window.W
	curve := make([]ROCPoint, 0, w)
	var op ROCPoint
	for m := 1; m <= w; m++ {
		p := ROCPoint{
			Threshold:    float64(m),
			AttackerRate: e.convictionRate(e.Attackers, m),
			HonestRate:   e.convictionRate(e.Honest, m),
		}
		curve = append(curve, p)
		if m == e.Sys.Config.Window.M {
			op = p
		}
	}
	return curve, op
}

// convictionRate is the fraction of hosts whose verdict window holds
// at least m guilty verdicts.
func (e *Env) convictionRate(hosts []id.ID, m int) float64 {
	if len(hosts) == 0 {
		return 0
	}
	var n int
	for _, h := range hosts {
		if e.Sys.Window.GuiltyCount(h) >= m {
			n++
		}
	}
	return float64(n) / float64(len(hosts))
}
