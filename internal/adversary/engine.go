package adversary

import (
	"crypto/ed25519"
	"fmt"
	"sort"

	"concilium/internal/core"
	"concilium/internal/dht"
	"concilium/internal/id"
	"concilium/internal/metrics"
	"concilium/internal/overlay"
	"concilium/internal/parexec"
	"concilium/internal/reputation"
)

// rootSeed derives the campaign's substream family. The XOR constant
// ("adversar") differs from the chaos campaign's ("concilms"), so a
// chaos campaign and an adversary campaign at the same seed never
// replay each other's streams — the composition contract that lets
// one experiment seed drive both without double-seeding.
func rootSeed(seed uint64) parexec.Seed {
	return parexec.NewSeed(seed, seed^0x6164766572736172)
}

// Run executes an adversarial campaign and returns its report. Cells
// run in parallel; each derives every random decision from its own
// substream family, so the report is bit-identical for every Workers
// value. Panics inside a cell are caught and recorded as a failed
// no-panic invariant rather than crashing the caller.
func Run(cfg Config) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(Strategies()))
	for _, s := range Strategies() {
		names = append(names, s.Name())
	}
	nf := len(cfg.Fractions)
	nCells := len(names) * nf
	cells := make([]CellResult, nCells)
	snaps := make([]metrics.Snapshot, nCells)
	root := rootSeed(cfg.Seed)
	err := parexec.ForEach(cfg.Workers, nCells, func(ci int) error {
		// Fresh strategy instances per cell: strategies carry per-cell
		// state (the eclipse victim), so sharing across parallel cells
		// would race.
		strat := Strategies()[ci/nf]
		cell, snap, err := runCell(&cfg, strat, cfg.Fractions[ci%nf], root.Sub(uint64(ci)))
		cells[ci] = cell
		snaps[ci] = snap
		return err
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Seed:       cfg.Seed,
		Strategies: names,
		Fractions:  append([]float64(nil), cfg.Fractions...),
		Cells:      cells,
	}
	rep.Metrics, err = metrics.MergeAll(snaps...)
	if err != nil {
		return nil, err
	}
	finish(rep, &cfg)
	return rep, nil
}

// topForwarders runs a stewarding census — every src→dst secure route
// in the overlay — and returns the n hosts that appear most often as
// interior hops. Under uniform traffic this is exactly the expected
// stewarding load, so the census finds the positions a real adversary
// would corrupt. Ties break by deterministic system order.
func topForwarders(sys *core.System, n int) ([]id.ID, error) {
	states := make(map[id.ID]*overlay.RoutingState, len(sys.Order))
	for _, nid := range sys.Order {
		states[nid] = sys.Nodes[nid].Routing
	}
	stewards := make(map[id.ID]int, len(sys.Order))
	var scratch []id.ID
	for _, src := range sys.Order {
		for _, dst := range sys.Order {
			if src == dst {
				continue
			}
			route, err := overlay.AppendRouteSecure(states, src, dst, 0, scratch[:0])
			if err != nil {
				return nil, err
			}
			scratch = route
			for i := 1; i+1 < len(route); i++ {
				stewards[route[i]]++
			}
		}
	}
	ranked := append([]id.ID(nil), sys.Order...)
	sort.SliceStable(ranked, func(i, j int) bool {
		return stewards[ranked[i]] > stewards[ranked[j]]
	})
	return ranked[:n], nil
}

// attackerCount sizes a cell's attacker set: round(f·N), at least one,
// never crowding out the honest majority.
func attackerCount(frac float64, n int) int {
	c := int(frac*float64(n) + 0.5)
	if c < 1 {
		c = 1
	}
	if c > n-4 {
		c = n - 4
	}
	return c
}

// runCell builds one deployment, runs one strategy's attack campaign
// against live traffic, and computes the cell's conviction ROC. All
// randomness comes from three substreams of the cell seed — 0 builds
// the system, 1 drives traffic, 2 drives the attack — so the cell is a
// pure function of (campaign seed, cell index).
func runCell(cfg *Config, strat Strategy, frac float64, seed parexec.Seed) (cell CellResult, snap metrics.Snapshot, err error) {
	cell.Strategy = strat.Name()
	cell.Fraction = frac
	reg := metrics.NewRegistry()
	defer func() {
		snap = reg.Snapshot().Canonical()
		if p := recover(); p != nil {
			cell.Panic = fmt.Sprintf("panic: %v", p)
			err = nil
		}
	}()

	sysCfg := cfg.System
	sysCfg.Workers = 1 // cells are already the parallel axis
	sysCfg.Metrics = reg
	sys, err := core.BuildSystem(sysCfg, seed.Stream(0))
	if err != nil {
		return cell, snap, err
	}
	store, err := dht.New(sys.Ring, cfg.Replicas)
	if err != nil {
		return cell, snap, err
	}
	store.SetMetrics(reg)

	env := &Env{
		Cfg:        cfg,
		Sys:        sys,
		Store:      store,
		Suspector:  core.NewCliqueSuspector(),
		Board:      reputation.NewBoard(),
		Traffic:    seed.Stream(1),
		Attack:     seed.Stream(2),
		Distrusted: make(map[id.ID]bool),
		keyDir:     make(map[id.ID]ed25519.PublicKey, len(sys.Order)),
		cell:       &cell,
	}
	for _, nid := range sys.Order {
		env.keyDir[nid] = sys.Nodes[nid].Keys.Public
	}
	keys := func(x id.ID) (ed25519.PublicKey, bool) {
		k, ok := env.keyDir[x]
		return k, ok
	}
	env.Repo, err = dht.NewAccusationRepo(store, keys, sysCfg.Blame.GuiltyThreshold)
	if err != nil {
		return cell, snap, err
	}
	if err := env.Repo.SetLimits(cfg.Limits); err != nil {
		return cell, snap, err
	}
	env.Repo.SetMetrics(reg)

	// Arm the clique-discounting defense: the grouping is the identity
	// until repository abuse teaches the suspector who co-signs, after
	// which k colluders weigh as one witness in every verdict.
	sys.Engine.SetWitnessGrouping(env.Suspector.Group)

	if err := sys.StartFailures(); err != nil {
		return cell, snap, err
	}
	if err := sys.StartProbing(); err != nil {
		return cell, snap, err
	}
	sys.Run(cfg.Warmup)

	// A positioning adversary: the attacker set is the nAtt hosts the
	// stewarding census ranks as carrying the most forwarding load.
	// Byzantine forwarders with no routing role are harmless, so a real
	// adversary corrupts the hosts traffic actually flows through — and
	// that is the set the defenses must convict. Behaviors are installed
	// by the strategy, never the engine.
	nAtt := attackerCount(frac, len(sys.Order))
	env.Attackers, err = topForwarders(sys, nAtt)
	if err != nil {
		return cell, snap, err
	}
	env.refreshHonest()
	if err := strat.Setup(env); err != nil {
		return cell, snap, err
	}
	cell.Attackers = len(env.Attackers)

	// Interleave attack rounds with traffic batches; the final batch
	// absorbs the division remainder so exactly Messages route.
	batch := cfg.Messages / cfg.AttackRounds
	sent := 0
	for r := 0; r < cfg.AttackRounds; r++ {
		env.voteSpam()
		if err := strat.Round(env, r); err != nil {
			return cell, snap, err
		}
		n := batch
		if r == cfg.AttackRounds-1 {
			n = cfg.Messages - sent
		}
		if err := env.sendTraffic(n); err != nil {
			return cell, snap, err
		}
		sent += n
	}

	cell.Curve, cell.Op, err = strat.Curve(env)
	if err != nil {
		return cell, snap, err
	}
	cell.Nodes = len(sys.Order)
	cell.Suspected = env.Suspector.SuspectedCount()
	s := reg.Snapshot()
	cell.Rejections = CellRejections{
		RateLimited: s.Counters["dht/chains_rate_limited"],
		Duplicate:   s.Counters["dht/chains_duplicate"],
		Stale:       s.Counters["dht/chains_stale"],
	}

	// Reputation fallback tally. Voting rights are one-strike — stricter
	// than conviction: a single guilty verdict on record voids a host's
	// vote (until exonerated), while sanctions still need M. Without
	// this asymmetry, droppers hovering under the window threshold keep
	// their votes and can spam an honest victim into a quorum. Suspected
	// co-signers and detector-flagged hosts are voided too.
	trusted := func(v id.ID) bool {
		return !env.Suspector.Suspected(v) &&
			sys.Window.GuiltyCount(v) == 0 &&
			!env.Distrusted[v]
	}
	cell.RepAttackerRate = poorPeerRate(env.Board, env.Attackers, trusted, cfg.SanctionQuorum)
	cell.RepHonestRate = poorPeerRate(env.Board, env.Honest, trusted, cfg.SanctionQuorum)
	return cell, snap, nil
}

// sendTraffic routes n stewarded messages between pairs drawn from the
// traffic substream, tallying outcomes, casting honest stewards'
// no-confidence votes, and publishing accusation chains into the
// hardened repository.
func (e *Env) sendTraffic(n int) error {
	sys := e.Sys
	for i := 0; i < n; i++ {
		src := sys.Order[e.Traffic.IntN(len(sys.Order))]
		dst := sys.Order[e.Traffic.IntN(len(sys.Order))]
		rep, err := sys.SendMessage(src, dst)
		if err != nil {
			return fmt.Errorf("adversary: %s message %d: %w", e.cell.Strategy, e.cell.Sent, err)
		}
		e.tally(rep)
		sys.Run(e.Cfg.Pace)
	}
	return nil
}

// tally accounts one delivery report: counters, reputation votes from
// honest stewards that issued guilty verdicts, and chain publication.
func (e *Env) tally(rep *core.DeliveryReport) {
	e.cell.Sent++
	if rep.Delivered && rep.AckReceived {
		e.cell.Delivered++
	}
	if len(rep.Verdicts) > 0 {
		e.cell.Diagnosed++
	}
	if rep.Kind == core.DropByNode && e.attSet[rep.DroppedBy] {
		e.cell.AttackerDrops++
	}
	for vi, v := range rep.Verdicts {
		if !v.Guilty {
			continue
		}
		accuser := rep.Route[vi]
		if an := e.Sys.Nodes[accuser]; an != nil && an.Behavior.Honest() {
			e.castVote(accuser, v.Judged)
		}
	}
	if rep.Culprit != (id.ID{}) {
		e.cell.Convictions++
	}
	if rep.Chain != nil {
		e.publish(rep.Chain, true)
	}
}

// voteSpam is the attackers' reputation attack, run every round: the
// whole attacker set piles no-confidence votes onto one honest victim.
// The trusted-voter filter is what should keep those votes from
// reaching the sanctioning quorum.
func (e *Env) voteSpam() {
	if len(e.Honest) == 0 {
		return
	}
	victim := e.pickVictim()
	for _, a := range e.Attackers {
		e.castVote(a, victim)
	}
}

// poorPeerRate is the fraction of hosts the board's trusted quorum
// declares a poor peer.
func poorPeerRate(b *reputation.Board, hosts []id.ID, trusted func(id.ID) bool, quorum int) float64 {
	if len(hosts) == 0 {
		return 0
	}
	var n int
	for _, h := range hosts {
		if b.PoorPeer(h, trusted, quorum) {
			n++
		}
	}
	return float64(n) / float64(len(hosts))
}

// finish evaluates the campaign invariants in a fixed order.
func finish(r *Report, cfg *Config) {
	const lowF = 0.10 + 1e-9

	clean := true
	detail := ""
	for i := range r.Cells {
		if r.Cells[i].Panic != "" {
			clean = false
			detail = fmt.Sprintf("%s f=%.2f: %s", r.Cells[i].Strategy, r.Cells[i].Fraction, r.Cells[i].Panic)
		}
	}
	r.addInvariant("no-panic", clean, detail)

	// The campaign's headline contract: at the configured operating
	// point, every strategy convicts attackers at a strictly higher
	// rate than honest hosts, for every attacker fraction up to 10%.
	sep, sepDetail := true, ""
	worst := 1.0
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Fraction > lowF {
			continue
		}
		margin := c.Op.AttackerRate - c.Op.HonestRate
		if margin <= 0 {
			sep = false
			sepDetail = fmt.Sprintf("%s f=%.2f: attacker %.3f vs honest %.3f",
				c.Strategy, c.Fraction, c.Op.AttackerRate, c.Op.HonestRate)
		} else if margin < worst {
			worst = margin
		}
	}
	if sepDetail == "" {
		sepDetail = fmt.Sprintf("worst margin %.3f", worst)
	}
	r.addInvariant("roc-separation", sep, sepDetail)

	bound, boundDetail := true, ""
	worstHonest := 0.0
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Fraction > lowF {
			continue
		}
		if c.Op.HonestRate > worstHonest {
			worstHonest = c.Op.HonestRate
		}
		if c.Op.HonestRate > 0.10 {
			bound = false
			boundDetail = fmt.Sprintf("%s f=%.2f: honest rate %.3f", c.Strategy, c.Fraction, c.Op.HonestRate)
		}
	}
	if boundDetail == "" {
		boundDetail = fmt.Sprintf("worst honest rate %.3f", worstHonest)
	}
	r.addInvariant("honest-conviction-bound", bound, boundDetail)

	flows, flowsDetail := true, ""
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Sent != cfg.Messages || c.Delivered == 0 || c.Diagnosed == 0 {
			flows = false
			flowsDetail = fmt.Sprintf("%s f=%.2f: sent=%d delivered=%d diagnosed=%d",
				c.Strategy, c.Fraction, c.Sent, c.Delivered, c.Diagnosed)
		}
	}
	if flowsDetail == "" {
		flowsDetail = fmt.Sprintf("%d msgs per cell", cfg.Messages)
	}
	r.addInvariant("overlay-still-routing", flows, flowsDetail)

	pubClean, pubDetail := true, ""
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.PublishErrors > 0 || c.VoteErrors > 0 || c.RebalanceErrors > 0 {
			pubClean = false
			pubDetail = fmt.Sprintf("%s f=%.2f: publish=%d vote=%d rebalance=%d",
				c.Strategy, c.Fraction, c.PublishErrors, c.VoteErrors, c.RebalanceErrors)
		}
	}
	r.addInvariant("no-swallowed-errors", pubClean, pubDetail)

	// The flood strategies must actually exercise the repository's
	// hardening: a campaign where nothing was rejected tested nothing.
	hard, hardDetail := true, ""
	var totalRej uint64
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Strategy != "accusation-spam" && c.Strategy != "collusion" {
			continue
		}
		totalRej += c.Rejections.Total()
		if c.Rejections.Total() == 0 {
			hard = false
			hardDetail = fmt.Sprintf("%s f=%.2f: no hardening rejections", c.Strategy, c.Fraction)
		}
	}
	if hardDetail == "" {
		hardDetail = fmt.Sprintf("%d rejections across flood cells", totalRej)
	}
	r.addInvariant("repo-hardening-exercised", hard, hardDetail)

	// Co-signed floods expose the clique: every flood cell with at
	// least two attackers ends with the pair (or more) suspected.
	cliq, cliqDetail := true, ""
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Strategy != "accusation-spam" && c.Strategy != "collusion" || c.Attackers < 2 {
			continue
		}
		if c.Suspected < 2 {
			cliq = false
			cliqDetail = fmt.Sprintf("%s f=%.2f: %d suspected of %d attackers",
				c.Strategy, c.Fraction, c.Suspected, c.Attackers)
		}
	}
	r.addInvariant("clique-suspected", cliq, cliqDetail)

	// The reputation fallback must not be hijackable: trusted
	// no-confidence quorums sanction attackers at least as often as
	// honest hosts at every low fraction, up to a single collateral
	// sanction — one falsely-convicted honest host voted down by honest
	// peers is the diagnosis noise floor (already bounded by
	// honest-conviction-bound), not vote capture.
	repOK, repDetail := true, ""
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Fraction > lowF {
			continue
		}
		honestN := c.Nodes - c.Attackers
		excess := (c.RepHonestRate - c.RepAttackerRate) * float64(honestN)
		if excess > 1+1e-9 {
			repOK = false
			repDetail = fmt.Sprintf("%s f=%.2f: honest %.3f above attacker %.3f (%.1f hosts)",
				c.Strategy, c.Fraction, c.RepHonestRate, c.RepAttackerRate, excess)
		}
	}
	r.addInvariant("reputation-not-hijacked", repOK, repDetail)
}
