// Package adversary is Concilium's adversarial campaign engine: the
// robustness counterpart to package chaos. Where chaos composes
// non-malicious faults (loss, outages, churn) and checks degradation
// contracts, adversary runs seeded attack campaigns — selective and
// probabilistic droppers tuned to slip under the (w,m) sliding window,
// colluding cliques that corroborate forged tomography observations
// and co-sign bogus accusations, accusation-spam and rebuttal-abuse
// floods against the DHT repository, and eclipse-style identifier
// placement aimed at the §3.1 γ density test — and measures how well
// the protocol's defenses separate attackers from honest hosts.
//
// Every campaign is a grid of cells (strategy × attacker fraction).
// Each cell builds an independent deployment from its own substream
// family, runs the attack against live traffic, and produces an
// ROC-style conviction curve: attacker conviction rate vs. honest
// false-conviction rate as the decision threshold sweeps. Cells are
// embarrassingly parallel and derive all randomness from
// parexec substreams of the campaign seed, so the report is
// bit-identical at every worker count.
package adversary

import (
	"fmt"
	"math"
	"time"

	"concilium/internal/chaos"
	"concilium/internal/core"
	"concilium/internal/dht"
	"concilium/internal/topology"
)

// Config parameterizes one adversarial campaign.
type Config struct {
	// Seed is the campaign's root seed; every random decision derives
	// from it. The substream family is keyed differently from the chaos
	// campaign's, so chaos and adversary runs at the same seed never
	// replay each other's streams.
	Seed uint64
	// Workers sizes the cell worker pool (<= 0 selects GOMAXPROCS).
	// Reports are identical for every value.
	Workers int
	// System configures each cell's deployment. MaliciousFraction must
	// be 0: strategies install their own attackers after construction,
	// so the build stream stays attack-independent.
	System core.SystemConfig
	// Fractions is the attacker-fraction axis of the campaign grid,
	// ascending in (0, 1).
	Fractions []float64
	// Messages is the stewarded-traffic volume each cell routes.
	Messages int
	// AttackRounds is how many attack rounds interleave with the
	// traffic (floods, forged-chain pushes, vote spam).
	AttackRounds int
	// Replicas is the DHT replica-set size for the accusation store.
	Replicas int
	// Limits hardens each cell's accusation repository; the spam and
	// collusion strategies are designed to trip them.
	Limits dht.RepoLimits
	// SanctionQuorum is the operating point of the repository
	// sanctioning policy: a host is sanctioned once this many distinct
	// (clique-discounted) accusers have verifiable chains against it.
	SanctionQuorum int
	// DropProb is the probabilistic droppers' per-message drop rate,
	// tuned against System.Window so the attacker hovers at the edge of
	// the (w,m) threshold.
	DropProb float64
	// DropPeriod is the deterministic selective droppers' period (drop
	// every DropPeriod-th forward).
	DropPeriod int
	// Warmup is the probing time before any attack or traffic.
	Warmup time.Duration
	// Pace is the virtual time between consecutive messages.
	Pace time.Duration
}

// ShortConfig is the CI smoke campaign: a small overlay, the full
// strategy × fraction grid, a few seconds of wall time.
func ShortConfig(seed uint64) Config {
	sys := core.DefaultSystemConfig()
	sys.Topology = topology.TestConfig()
	// A deep overlay: with the paper's 16-leaf sets, a ~45-node overlay
	// routes most messages directly inside the leaf set and attackers
	// almost never steward. ~86 nodes push leaf coverage under 20%, so
	// routes have interior hops and every cell's attackers get real
	// forwarding opportunities to abuse.
	sys.OverlayFraction = 0.9
	sys.MaliciousFraction = 0
	sys.ArchiveRetention = 5 * time.Minute
	sys.MaxProbeTime = time.Minute
	sys.HopLatency = 200 * time.Millisecond
	sys.Blame.MinProbesPerLink = 1
	// Sharp tomography: at the default 0.9 accuracy, an honest span of
	// eight-plus physical links dilutes Eq. 3 blame below the 0.4
	// guilty threshold (0.9^8 ≈ 0.43), exonerating a red-handed dropper
	// on longer routes. 0.97 keeps per-drop conviction decisive while
	// leaving a live false-conviction channel for the honest ROC.
	sys.Blame.ProbeAccuracy = 0.97
	// Calm background weather: the default 5% steady-state link outage
	// drowns the diagnosis signal in network blame before messages even
	// reach an attacker. A 1% floor keeps honest false convictions a
	// live possibility without burying the attack traffic.
	sys.Failures.DownFraction = 0.01
	// A short window with a low accusation threshold: the campaign's
	// droppers are tuned to hover at this edge, which is where the ROC
	// is interesting.
	sys.Window = core.WindowConfig{W: 20, M: 2}
	return Config{
		Seed:      seed,
		System:    sys,
		Fractions: []float64{0.01, 0.05, 0.10, 0.20},
		// Overlay routes in the small test topology average under one
		// interior hop, so a single attacker stewards only ~2% of the
		// traffic; the volume is sized so even the f=1% cell gives its
		// lone dropper enough forwarding opportunities to cross the
		// window threshold it is tuned to hover at.
		Messages:     960,
		AttackRounds: 12,
		Replicas:     5,
		Limits: dht.RepoLimits{
			MaxPerAccuserPerKey: 1,
			MaxPerKey:           64,
			StaleAfter:          2 * time.Minute,
		},
		SanctionQuorum: 2,
		DropProb:       0.5,
		DropPeriod:     2,
		Warmup:         3 * time.Minute,
		Pace:           2 * time.Second,
	}
}

// FromChaos derives the adversarial companion of a chaos campaign: the
// same deployment shape, seed, and pacing, with the chaos-only fields
// replaced by the adversary grid. The two campaigns share one root
// seed but key their substream families differently, so composing them
// never double-consumes a stream (see rootSeed).
func FromChaos(c chaos.Config) Config {
	cfg := ShortConfig(c.Seed)
	cfg.Workers = c.Workers
	cfg.System = c.System
	cfg.System.MaliciousFraction = 0
	cfg.System.Window = core.WindowConfig{W: 20, M: 2}
	cfg.Replicas = c.Replicas
	cfg.Pace = c.Pace
	cfg.Warmup = c.Warmup
	return cfg
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	if err := c.System.Validate(); err != nil {
		return err
	}
	switch {
	case c.System.MaliciousFraction != 0:
		return fmt.Errorf("adversary: malicious fraction %v must be 0 (strategies install attackers)",
			c.System.MaliciousFraction)
	case len(c.Fractions) == 0:
		return fmt.Errorf("adversary: no attacker fractions")
	case c.Messages <= 0:
		return fmt.Errorf("adversary: messages %d must be positive", c.Messages)
	case c.AttackRounds <= 0 || c.AttackRounds > c.Messages:
		return fmt.Errorf("adversary: attack rounds %d out of [1, %d]", c.AttackRounds, c.Messages)
	case c.Replicas < 3:
		return fmt.Errorf("adversary: %d replicas cannot tolerate an outage", c.Replicas)
	case c.SanctionQuorum < 1:
		return fmt.Errorf("adversary: sanction quorum %d must be positive", c.SanctionQuorum)
	case c.DropProb <= 0 || c.DropProb >= 1 || math.IsNaN(c.DropProb):
		return fmt.Errorf("adversary: drop probability %v out of (0,1)", c.DropProb)
	case c.DropPeriod < 2:
		return fmt.Errorf("adversary: drop period %d must be at least 2", c.DropPeriod)
	case c.Warmup <= 0 || c.Pace <= 0:
		return fmt.Errorf("adversary: warmup %v and pace %v must be positive", c.Warmup, c.Pace)
	case c.System.Blame.MinProbesPerLink < 1:
		return fmt.Errorf("adversary: campaign requires Blame.MinProbesPerLink >= 1 (degraded-verdict contract)")
	}
	prev := 0.0
	for _, f := range c.Fractions {
		if f <= prev || f >= 1 || math.IsNaN(f) {
			return fmt.Errorf("adversary: fractions must ascend in (0,1), got %v after %v", f, prev)
		}
		prev = f
	}
	if err := c.Limits.Validate(); err != nil {
		return err
	}
	return nil
}
