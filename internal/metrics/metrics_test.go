package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a/count")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a/count") != c {
		t.Fatal("second lookup returned a different counter")
	}
	g := r.Gauge("a/level")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestNilRegistryDiscards(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter retained a value")
	}
	g := r.Gauge("x")
	g.Set(9)
	if g.Value() != 0 {
		t.Fatal("nil gauge retained a value")
	}
	h, err := r.Histogram("x", CountBuckets)
	if err != nil {
		t.Fatalf("nil registry histogram: %v", err)
	}
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if h.Count() != 0 || h.Sum() != 0 || h.Bounds() != nil {
		t.Fatal("nil histogram retained state")
	}
	r.MustHistogram("x", CountBuckets).Observe(2)
	if r.Snapshot().Counters != nil {
		t.Fatal("nil registry snapshot not empty")
	}
}

// TestHistogramBucketBoundaries pins the boundary rule: bucket i holds
// v <= bounds[i], with values exactly at a bound landing in that bound's
// bucket, and everything past the last bound in the overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	h, err := NewHistogram([]int64{10, 100, 1000})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {10, 0}, // at the bound -> that bucket
		{11, 1}, {100, 1},
		{101, 2}, {1000, 2},
		{1001, 3}, {1 << 40, 3}, // overflow
	}
	for _, c := range cases {
		before := h.counts[c.bucket].Load()
		h.Observe(c.v)
		if after := h.counts[c.bucket].Load(); after != before+1 {
			t.Errorf("Observe(%d): bucket %d not incremented", c.v, c.bucket)
		}
	}
	if h.Count() != uint64(len(cases)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(cases))
	}
	var wantSum int64
	for _, c := range cases {
		wantSum += c.v
	}
	if h.Sum() != wantSum {
		t.Fatalf("sum = %d, want %d", h.Sum(), wantSum)
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	if _, err := NewHistogram(nil); err == nil {
		t.Error("empty bounds accepted")
	}
	if _, err := NewHistogram([]int64{1, 1}); err == nil {
		t.Error("duplicate bounds accepted")
	}
	if _, err := NewHistogram([]int64{5, 3}); err == nil {
		t.Error("descending bounds accepted")
	}
	r := NewRegistry()
	if _, err := r.Histogram("bad", []int64{2, 1}); err == nil {
		t.Error("registry accepted descending bounds")
	}
}

func TestHistogramFirstCreationWins(t *testing.T) {
	r := NewRegistry()
	h1 := r.MustHistogram("h", []int64{1, 2, 3})
	h2 := r.MustHistogram("h", []int64{10, 20})
	if h1 != h2 {
		t.Fatal("same name produced distinct histograms")
	}
	if got := h2.Bounds(); len(got) != 3 {
		t.Fatalf("later bounds overrode first creation: %v", got)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(100, 2, 5)
	want := []int64{100, 200, 400, 800, 1600}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
	// Degenerate parameters still yield valid (ascending) bounds.
	for _, bad := range [][]int64{ExpBuckets(0, 2, 3), ExpBuckets(10, 0.5, 3), ExpBuckets(10, 2, 0)} {
		if _, err := NewHistogram(bad); err != nil {
			t.Fatalf("degenerate ExpBuckets output invalid: %v", bad)
		}
	}
	// Tiny factors cannot produce non-ascending pairs.
	if _, err := NewHistogram(ExpBuckets(1, 1.01, 20)); err != nil {
		t.Fatal("small-factor buckets not strictly ascending")
	}
}

func TestLinearBuckets(t *testing.T) {
	b := LinearBuckets(10, 5, 4)
	want := []int64{10, 15, 20, 25}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("LinearBuckets = %v, want %v", b, want)
		}
	}
}

func TestStandardFamiliesValid(t *testing.T) {
	for name, bounds := range map[string][]int64{
		"latency": LatencyBuckets, "size": SizeBuckets, "count": CountBuckets,
	} {
		if _, err := NewHistogram(bounds); err != nil {
			t.Errorf("%s buckets invalid: %v", name, err)
		}
	}
	if CountBuckets[0] != 1 || CountBuckets[len(CountBuckets)-1] != 128 {
		t.Errorf("CountBuckets = %v, want 1..128", CountBuckets)
	}
}

func TestNonDeterministic(t *testing.T) {
	for name, want := range map[string]bool{
		"core/blame_wallns":            true,
		"sigcrypto/verify_hits_nondet": true,
		"core/blame_calls":             false,
		"wire/message_bytes":           false,
		"wallns_prefix_not_suffix":     false,
	} {
		if got := NonDeterministic(name); got != want {
			t.Errorf("NonDeterministic(%q) = %v, want %v", name, got, want)
		}
	}
}

// TestConcurrentObservations is the race-detector smoke: many
// goroutines hammer one registry's handles and the totals must add up.
func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c")
			h := r.MustHistogram("h", CountBuckets)
			gauge := r.Gauge("g")
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Observe(int64(i % 200))
				gauge.Set(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.MustHistogram("h", CountBuckets).Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
}
