// Package metrics is Concilium's quantitative observability layer:
// atomic counters, gauges, and fixed-bucket histograms registered in a
// global-free Registry that every protocol layer (core, tomography,
// dht, netsim, chaos) publishes into. Where internal/trace records
// individual events for audit, metrics aggregates — probe RTTs,
// blame-computation latency, DHT operation latency, bytes on the wire
// per message class — into snapshots that can be diffed, merged, and
// serialized into machine-readable bench reports.
//
// Determinism contract: every metric fed exclusively from simulation
// state (virtual-time durations, packet counts, byte budgets, chain
// lengths) is bit-reproducible for a fixed seed at any parexec worker
// count, because all simulation callbacks run on one goroutine and the
// parallel construction phases record nothing. Metrics that are
// inherently non-deterministic — wall-clock latencies, process-global
// cache statistics — MUST carry the reserved name suffix "_wallns"
// (wall-clock nanoseconds) or "_nondet" (anything else); Snapshot.
// Canonical strips them, and the canonical snapshot is what bench
// reports compare across worker counts and machines.
//
// All metric types are safe for concurrent use; values are observed
// with atomic operations only, so the hot-path cost is one or two
// uncontended atomic adds per observation.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 level (archive size, live replicas).
// Merged gauges take the maximum, which is the only associative and
// commutative choice that preserves "high-water" semantics.
type Gauge struct{ v atomic.Int64 }

// Set stores the current level.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add shifts the level by d.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts int64 observations into fixed buckets. Bucket i
// holds observations v with v <= Bounds[i] (and v > Bounds[i-1]); one
// implicit overflow bucket holds everything above the last bound.
// Bounds are fixed at creation, which is what makes merging two
// histograms of the same metric well defined.
type Histogram struct {
	bounds []int64
	counts []atomic.Uint64 // len(bounds)+1; last = overflow
	sum    atomic.Int64
	total  atomic.Uint64
}

// NewHistogram creates a histogram over strictly ascending bounds.
func NewHistogram(bounds []int64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("metrics: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("metrics: bounds not ascending at %d (%d <= %d)", i, bounds[i], bounds[i-1])
		}
	}
	h := &Histogram{bounds: append([]int64(nil), bounds...)}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	return h, nil
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.sum.Add(v)
	h.total.Add(1)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Bounds returns the bucket upper bounds.
func (h *Histogram) Bounds() []int64 {
	if h == nil {
		return nil
	}
	return append([]int64(nil), h.bounds...)
}

// Registry is a global-free collection of named metrics. The zero
// value is not usable; call NewRegistry. A nil *Registry is a valid
// discard sink: metric handles it returns accept observations and
// drop them, so instrumented layers need no nil checks on hot paths.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns nil, which is a safe discard counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns nil, which is a safe discard gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with bounds on
// first use. Callers must use identical bounds for the same name; a
// later caller's bounds are ignored in favor of the first creation.
// A nil registry returns nil, which is a safe discard histogram.
func (r *Registry) Histogram(name string, bounds []int64) (*Histogram, error) {
	if r == nil {
		return nil, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h, nil
	}
	h, err := NewHistogram(bounds)
	if err != nil {
		return nil, fmt.Errorf("metrics: histogram %q: %w", name, err)
	}
	r.hists[name] = h
	return h, nil
}

// MustHistogram is Histogram for package-fixed bounds that cannot be
// invalid; it panics on error.
func (r *Registry) MustHistogram(name string, bounds []int64) *Histogram {
	h, err := r.Histogram(name, bounds)
	if err != nil {
		panic(err)
	}
	return h
}

// NonDeterministic reports whether a metric name is in the reserved
// wall-clock / non-deterministic class that Canonical strips.
func NonDeterministic(name string) bool {
	return strings.HasSuffix(name, "_wallns") || strings.HasSuffix(name, "_nondet")
}

// ExpBuckets returns n strictly ascending bounds starting at start and
// multiplying by factor (>= 2 recommended so int64 rounding can never
// produce a non-ascending pair).
func ExpBuckets(start int64, factor float64, n int) []int64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		return []int64{1}
	}
	out := make([]int64, n)
	v := float64(start)
	prev := int64(0)
	for i := 0; i < n; i++ {
		b := int64(v)
		if b <= prev {
			b = prev + 1
		}
		out[i] = b
		prev = b
		v *= factor
	}
	return out
}

// LinearBuckets returns n bounds start, start+width, ...
func LinearBuckets(start, width int64, n int) []int64 {
	if n <= 0 || width <= 0 {
		return []int64{start}
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = start + int64(i)*width
	}
	return out
}

// Standard bucket families, shared so every layer's histograms of the
// same physical quantity merge cleanly.
var (
	// LatencyBuckets covers simulated and wall latencies from 100 µs
	// to ~1.6 s in powers of two (ns units).
	LatencyBuckets = ExpBuckets(int64(100*time.Microsecond), 2, 15)
	// SizeBuckets covers byte sizes from 64 B to ~2 MB in powers of 4.
	SizeBuckets = ExpBuckets(64, 4, 8)
	// CountBuckets covers small cardinalities (chain lengths, probes
	// consulted) 1..128 in powers of two.
	CountBuckets = ExpBuckets(1, 2, 8)
)

// sortedKeys returns m's keys in lexicographic order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
