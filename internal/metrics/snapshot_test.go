package metrics

import (
	"encoding/json"
	"math/rand/v2"
	"testing"

	"concilium/internal/parexec"
)

// fill populates a registry with a deterministic workload derived from
// the given stream index, mixing canonical and wall-clock series.
func fill(r *Registry, n int) {
	for i := 0; i < n; i++ {
		r.Counter("c/events").Inc()
		r.Counter("c/bytes").Add(uint64(64 + i))
		r.Gauge("g/highwater").Set(int64(i))
		r.MustHistogram("h/latency", []int64{10, 100, 1000}).Observe(int64(i * 7 % 1500))
	}
	r.Counter("c/blame_wallns").Add(uint64(n * 31))
	r.Gauge("g/cache_nondet").Set(int64(n))
}

func TestSnapshotCanonicalAndWallPartition(t *testing.T) {
	r := NewRegistry()
	fill(r, 20)
	s := r.Snapshot()

	canon := s.Canonical()
	wall := s.Wall()
	for _, name := range canon.CounterNames() {
		if NonDeterministic(name) {
			t.Errorf("canonical kept %q", name)
		}
	}
	for _, name := range wall.CounterNames() {
		if !NonDeterministic(name) {
			t.Errorf("wall kept deterministic %q", name)
		}
	}
	for _, name := range wall.GaugeNames() {
		if !NonDeterministic(name) {
			t.Errorf("wall kept deterministic gauge %q", name)
		}
	}
	// Canonical + Wall must recover the whole snapshot (no series lost).
	rejoined, err := Merge(canon, wall)
	if err != nil {
		t.Fatal(err)
	}
	if !rejoined.Equal(s) {
		t.Fatal("Canonical ∪ Wall != original snapshot")
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	fill(r, 5)
	before := r.Snapshot()
	fill(r, 3)
	after := r.Snapshot()

	d, err := after.Diff(before)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Counters["c/events"]; got != 3 {
		t.Errorf("diff events = %d, want 3", got)
	}
	if got := d.Histograms["h/latency"].Count; got != 3 {
		t.Errorf("diff histogram count = %d, want 3", got)
	}
	// Gauges are levels: diff keeps the newer value.
	if got := d.Gauges["g/highwater"]; got != after.Gauges["g/highwater"] {
		t.Errorf("diff gauge = %d, want newer value %d", got, after.Gauges["g/highwater"])
	}

	// Monotonicity violations are errors, not silent wraparound.
	if _, err := before.Diff(after); err == nil {
		t.Error("backwards counter diff accepted")
	}
	empty := Snapshot{}
	if _, err := empty.Diff(before); err == nil {
		t.Error("diff against vanished counters accepted")
	}
}

func TestMergeSemantics(t *testing.T) {
	a := Snapshot{
		Counters: map[string]uint64{"c": 3},
		Gauges:   map[string]int64{"g": 10},
		Histograms: map[string]HistogramSnapshot{
			"h": {Bounds: []int64{1, 2}, Counts: []uint64{1, 0, 2}, Count: 3, Sum: 9},
		},
	}
	b := Snapshot{
		Counters: map[string]uint64{"c": 4, "only_b": 1},
		Gauges:   map[string]int64{"g": 7},
		Histograms: map[string]HistogramSnapshot{
			"h": {Bounds: []int64{1, 2}, Counts: []uint64{0, 5, 0}, Count: 5, Sum: 10},
		},
	}
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Counters["c"] != 7 || m.Counters["only_b"] != 1 {
		t.Errorf("counters did not add: %v", m.Counters)
	}
	if m.Gauges["g"] != 10 {
		t.Errorf("gauge merge = %d, want max 10", m.Gauges["g"])
	}
	h := m.Histograms["h"]
	if h.Count != 8 || h.Sum != 19 || h.Counts[1] != 5 {
		t.Errorf("histogram merge wrong: %+v", h)
	}

	mismatch := Snapshot{Histograms: map[string]HistogramSnapshot{
		"h": {Bounds: []int64{9}, Counts: []uint64{0, 0}},
	}}
	if _, err := Merge(a, mismatch); err == nil {
		t.Error("bounds mismatch accepted")
	}
}

// TestMergeAssociativeCommutative verifies the algebra that makes
// merged per-trial registries worker-count invariant.
func TestMergeAssociativeCommutative(t *testing.T) {
	snaps := make([]Snapshot, 4)
	for i := range snaps {
		r := NewRegistry()
		fill(r, 3+i*5)
		snaps[i] = r.Snapshot()
	}
	// ((a+b)+c)+d
	left, err := MergeAll(snaps...)
	if err != nil {
		t.Fatal(err)
	}
	// (a+b)+(c+d)
	ab, err := Merge(snaps[0], snaps[1])
	if err != nil {
		t.Fatal(err)
	}
	cd, err := Merge(snaps[2], snaps[3])
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := Merge(ab, cd)
	if err != nil {
		t.Fatal(err)
	}
	if !left.Equal(grouped) {
		t.Fatal("merge is not associative")
	}
	// d+c+b+a
	rev, err := MergeAll(snaps[3], snaps[2], snaps[1], snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	if !left.Equal(rev) {
		t.Fatal("merge is not commutative")
	}
}

// TestWorkerCountInvariance runs the same per-trial workload under
// parexec at several worker counts and requires the merged snapshot to
// be identical — the contract the bench reports depend on.
func TestWorkerCountInvariance(t *testing.T) {
	const trials = 16
	runAt := func(workers int) Snapshot {
		seed := parexec.NewSeed(42, 0xdead)
		snaps, err := parexec.MapTrials(workers, trials, seed, func(i int, rng *rand.Rand) (Snapshot, error) {
			r := NewRegistry()
			n := 1 + int(rng.Uint64()%32)
			fill(r, n)
			return r.Snapshot(), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		merged, err := MergeAll(snaps...)
		if err != nil {
			t.Fatal(err)
		}
		return merged
	}
	serial := runAt(1)
	for _, w := range []int{2, 4, 8} {
		if got := runAt(w); !got.Equal(serial) {
			t.Fatalf("merged snapshot differs at workers=%d", w)
		}
	}
}

// TestSnapshotJSONDeterministic: equal snapshots marshal to identical
// bytes (encoding/json sorts map keys), so byte-comparing encoded
// reports is a valid equality check.
func TestSnapshotJSONDeterministic(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	fill(r1, 11)
	fill(r2, 11)
	b1, err := json.Marshal(r1.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(r2.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("equal snapshots marshaled differently:\n%s\n%s", b1, b2)
	}
	var back Snapshot
	if err := json.Unmarshal(b1, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(r1.Snapshot()) {
		t.Fatal("JSON round trip lost state")
	}
}

func TestSnapshotEqualAndClone(t *testing.T) {
	r := NewRegistry()
	fill(r, 8)
	s := r.Snapshot()
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Counters["c/events"]++
	if s.Equal(c) {
		t.Fatal("mutated clone still equal (shallow copy?)")
	}
	c2 := s.Clone()
	c2.Histograms["h/latency"].Counts[0]++
	if s.Equal(c2) {
		t.Fatal("mutating clone's histogram counts aliased original")
	}
	if (Snapshot{}).Equal(s) {
		t.Fatal("empty equals populated")
	}
}
