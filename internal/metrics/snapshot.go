package metrics

import (
	"fmt"
)

// HistogramSnapshot is one histogram's frozen state. Counts has one
// entry per bound plus the overflow bucket.
type HistogramSnapshot struct {
	Bounds []int64  `json:"bounds"`
	Counts []uint64 `json:"counts"`
	Count  uint64   `json:"count"`
	Sum    int64    `json:"sum"`
}

// sameBounds reports bound equality.
func sameBounds(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Snapshot is a frozen, value-typed copy of a registry's metrics.
// encoding/json sorts map keys, so marshaling a snapshot is
// deterministic — two equal snapshots always serialize to identical
// bytes.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot freezes the registry's current state. A nil registry
// yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]uint64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			hs := HistogramSnapshot{
				Bounds: append([]int64(nil), h.bounds...),
				Counts: make([]uint64, len(h.counts)),
			}
			for i := range h.counts {
				hs.Counts[i] = h.counts[i].Load()
				hs.Count += hs.Counts[i]
			}
			hs.Sum = h.sum.Load()
			s.Histograms[name] = hs
		}
	}
	return s
}

// Clone deep-copies the snapshot.
func (s Snapshot) Clone() Snapshot {
	out := Snapshot{}
	if s.Counters != nil {
		out.Counters = make(map[string]uint64, len(s.Counters))
		for k, v := range s.Counters {
			out.Counters[k] = v
		}
	}
	if s.Gauges != nil {
		out.Gauges = make(map[string]int64, len(s.Gauges))
		for k, v := range s.Gauges {
			out.Gauges[k] = v
		}
	}
	if s.Histograms != nil {
		out.Histograms = make(map[string]HistogramSnapshot, len(s.Histograms))
		for k, v := range s.Histograms {
			out.Histograms[k] = HistogramSnapshot{
				Bounds: append([]int64(nil), v.Bounds...),
				Counts: append([]uint64(nil), v.Counts...),
				Count:  v.Count,
				Sum:    v.Sum,
			}
		}
	}
	return out
}

// Canonical returns the snapshot with every non-deterministic metric
// (reserved "_wallns"/"_nondet" suffixes) removed — the comparable
// core that must be bit-identical across worker counts and machines
// for a fixed seed.
func (s Snapshot) Canonical() Snapshot {
	out := s.Clone()
	for name := range out.Counters {
		if NonDeterministic(name) {
			delete(out.Counters, name)
		}
	}
	for name := range out.Gauges {
		if NonDeterministic(name) {
			delete(out.Gauges, name)
		}
	}
	for name := range out.Histograms {
		if NonDeterministic(name) {
			delete(out.Histograms, name)
		}
	}
	if len(out.Counters) == 0 {
		out.Counters = nil
	}
	if len(out.Gauges) == 0 {
		out.Gauges = nil
	}
	if len(out.Histograms) == 0 {
		out.Histograms = nil
	}
	return out
}

// Wall returns the complement of Canonical: only the reserved
// non-deterministic metrics.
func (s Snapshot) Wall() Snapshot {
	out := s.Clone()
	for name := range out.Counters {
		if !NonDeterministic(name) {
			delete(out.Counters, name)
		}
	}
	for name := range out.Gauges {
		if !NonDeterministic(name) {
			delete(out.Gauges, name)
		}
	}
	for name := range out.Histograms {
		if !NonDeterministic(name) {
			delete(out.Histograms, name)
		}
	}
	if len(out.Counters) == 0 {
		out.Counters = nil
	}
	if len(out.Gauges) == 0 {
		out.Gauges = nil
	}
	if len(out.Histograms) == 0 {
		out.Histograms = nil
	}
	return out
}

// Diff returns s − older: counter and histogram deltas (both are
// monotone, so negative deltas are an error), gauges taken from s.
// Metrics absent from older count from zero.
func (s Snapshot) Diff(older Snapshot) (Snapshot, error) {
	out := s.Clone()
	for name, old := range older.Counters {
		cur, ok := out.Counters[name]
		if !ok {
			return Snapshot{}, fmt.Errorf("metrics: diff: counter %q vanished", name)
		}
		if cur < old {
			return Snapshot{}, fmt.Errorf("metrics: diff: counter %q went backwards (%d < %d)", name, cur, old)
		}
		out.Counters[name] = cur - old
	}
	for name, old := range older.Histograms {
		cur, ok := out.Histograms[name]
		if !ok {
			return Snapshot{}, fmt.Errorf("metrics: diff: histogram %q vanished", name)
		}
		if !sameBounds(cur.Bounds, old.Bounds) {
			return Snapshot{}, fmt.Errorf("metrics: diff: histogram %q bounds changed", name)
		}
		for i := range cur.Counts {
			if cur.Counts[i] < old.Counts[i] {
				return Snapshot{}, fmt.Errorf("metrics: diff: histogram %q bucket %d went backwards", name, i)
			}
			cur.Counts[i] -= old.Counts[i]
		}
		if cur.Count < old.Count {
			return Snapshot{}, fmt.Errorf("metrics: diff: histogram %q count went backwards", name)
		}
		cur.Count -= old.Count
		cur.Sum -= old.Sum
		out.Histograms[name] = cur
	}
	// Gauges are levels, not accumulations: the diff keeps s's value.
	return out, nil
}

// Merge combines two snapshots from independent registries (e.g. one
// per parallel trial): counters and histogram buckets add, gauges take
// the maximum. Merge is associative and commutative, so reducing a
// slice of per-trial snapshots in index order yields the same result
// as any other grouping — the property that keeps merged metrics
// worker-count invariant.
func Merge(a, b Snapshot) (Snapshot, error) {
	out := a.Clone()
	for name, v := range b.Counters {
		if out.Counters == nil {
			out.Counters = make(map[string]uint64)
		}
		out.Counters[name] += v
	}
	for name, v := range b.Gauges {
		if out.Gauges == nil {
			out.Gauges = make(map[string]int64)
		}
		if cur, ok := out.Gauges[name]; !ok || v > cur {
			out.Gauges[name] = v
		}
	}
	for name, hb := range b.Histograms {
		if out.Histograms == nil {
			out.Histograms = make(map[string]HistogramSnapshot)
		}
		ha, ok := out.Histograms[name]
		if !ok {
			out.Histograms[name] = HistogramSnapshot{
				Bounds: append([]int64(nil), hb.Bounds...),
				Counts: append([]uint64(nil), hb.Counts...),
				Count:  hb.Count,
				Sum:    hb.Sum,
			}
			continue
		}
		if !sameBounds(ha.Bounds, hb.Bounds) {
			return Snapshot{}, fmt.Errorf("metrics: merge: histogram %q bounds differ", name)
		}
		for i := range ha.Counts {
			ha.Counts[i] += hb.Counts[i]
		}
		ha.Count += hb.Count
		ha.Sum += hb.Sum
		out.Histograms[name] = ha
	}
	return out, nil
}

// MergeAll folds snapshots left to right.
func MergeAll(snaps ...Snapshot) (Snapshot, error) {
	out := Snapshot{}
	for _, s := range snaps {
		var err error
		out, err = Merge(out, s)
		if err != nil {
			return Snapshot{}, err
		}
	}
	return out, nil
}

// Equal reports deep equality of two snapshots.
func (s Snapshot) Equal(o Snapshot) bool {
	if len(s.Counters) != len(o.Counters) || len(s.Gauges) != len(o.Gauges) || len(s.Histograms) != len(o.Histograms) {
		return false
	}
	for k, v := range s.Counters {
		if ov, ok := o.Counters[k]; !ok || ov != v {
			return false
		}
	}
	for k, v := range s.Gauges {
		if ov, ok := o.Gauges[k]; !ok || ov != v {
			return false
		}
	}
	for k, h := range s.Histograms {
		oh, ok := o.Histograms[k]
		if !ok || oh.Count != h.Count || oh.Sum != h.Sum || !sameBounds(oh.Bounds, h.Bounds) {
			return false
		}
		for i := range h.Counts {
			if h.Counts[i] != oh.Counts[i] {
				return false
			}
		}
	}
	return true
}

// CounterNames returns the counter names in sorted order, for
// deterministic rendering.
func (s Snapshot) CounterNames() []string { return sortedKeys(s.Counters) }

// GaugeNames returns the gauge names in sorted order.
func (s Snapshot) GaugeNames() []string { return sortedKeys(s.Gauges) }

// HistogramNames returns the histogram names in sorted order.
func (s Snapshot) HistogramNames() []string { return sortedKeys(s.Histograms) }
