// Package concilium_test holds the benchmark harness: one testing.B
// benchmark per table and figure in the paper's evaluation (§4), plus
// ablation benchmarks for the design choices DESIGN.md calls out. Each
// benchmark reports the experiment's headline quantities through
// b.ReportMetric, so `go test -bench=. -benchmem` regenerates the
// paper's results alongside the runtime costs.
package concilium_test

import (
	"crypto/ed25519"
	"fmt"
	"math/rand/v2"
	"testing"
	"time"

	"concilium/internal/core"
	"concilium/internal/experiments"
	"concilium/internal/fuzzy"
	"concilium/internal/id"
	"concilium/internal/sigcrypto"
	"concilium/internal/tomography"
	"concilium/internal/topology"
)

func benchRand() *rand.Rand { return rand.New(rand.NewPCG(1001, 1003)) }

// benchWorkerCounts are the pool sizes the parallel-engine benchmarks
// sweep. workers=1 doubles as the serial reference the speedup-x metric
// is computed against.
var benchWorkerCounts = []int{1, 4, 8}

// speedupReporter derives the speedup-x metric across a workers sweep:
// the workers=1 sub-benchmark records its per-op time, and every
// sub-benchmark reports serial-time / own-time. Sub-benchmarks run in
// declaration order, so the serial reference is always measured first.
type speedupReporter struct{ serialNsPerOp float64 }

func (s *speedupReporter) report(b *testing.B, workers int) {
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	if perOp <= 0 {
		return
	}
	if workers == 1 {
		s.serialNsPerOp = perOp
	}
	if s.serialNsPerOp > 0 {
		b.ReportMetric(s.serialNsPerOp/perOp, "speedup-x")
	}
}

// BenchmarkFig1Occupancy regenerates Figure 1 — the analytic occupancy
// model against Monte Carlo simulation across overlay sizes — at
// several worker-pool sizes. The Monte Carlo trials dominate the cost
// and fan out across the pool; outputs are identical for every count.
func BenchmarkFig1Occupancy(b *testing.B) {
	var speedup speedupReporter
	for _, workers := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := experiments.Fig1Config{Ns: []int{128, 512, 1131, 4096, 16384}, Trials: 100, Workers: workers}
			rng := benchRand()
			b.ReportAllocs()
			var worst float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.Fig1(cfg, rng)
				if err != nil {
					b.Fatal(err)
				}
				worst = res.MaxMeanError()
			}
			speedup.report(b, workers)
			b.ReportMetric(worst, "worst-gap-slots")
		})
	}
}

// BenchmarkFig2DensityErrors regenerates Figure 2 — density-test error
// rates without suppression attacks — at several worker-pool sizes. The
// (collusion, γ) grid cells fan out across the pool.
func BenchmarkFig2DensityErrors(b *testing.B) {
	var speedup speedupReporter
	for _, workers := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := experiments.DefaultFig23Config(false)
			cfg.Workers = workers
			b.ReportAllocs()
			var res *experiments.Fig23Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = experiments.Fig23(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			speedup.report(b, workers)
			// c=30% anchor (paper: FP 8.5%, FN 14.8%).
			for i, c := range cfg.Collusions {
				if c == 0.30 {
					b.ReportMetric(res.OptimalRates[i].FalsePositive, "fp-at-c30")
					b.ReportMetric(res.OptimalRates[i].FalseNegative, "fn-at-c30")
				}
			}
		})
	}
}

// BenchmarkFig3Suppression regenerates Figure 3: the suppression-attack
// variant.
func BenchmarkFig3Suppression(b *testing.B) {
	var speedup speedupReporter
	for _, workers := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := experiments.DefaultFig23Config(true)
			cfg.Workers = workers
			b.ReportAllocs()
			var res *experiments.Fig23Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = experiments.Fig23(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			speedup.report(b, workers)
			for i, c := range cfg.Collusions {
				if c == 0.20 {
					b.ReportMetric(res.OptimalRates[i].FalsePositive, "fp-at-c20")
					b.ReportMetric(res.OptimalRates[i].FalseNegative, "fn-at-c20")
				}
			}
		})
	}
}

// BenchmarkVerifyCached measures the signature-verification LRU against
// uncached Ed25519 verification on a repeated-verifier workload (the
// protocol re-checks the same certificates and ack batches constantly).
func BenchmarkVerifyCached(b *testing.B) {
	var seed [32]byte
	seed[0] = 42
	kp := sigcrypto.KeyPairFromSeed(seed)
	msg := []byte("steward commitment, re-verified on every audit")
	sig := kp.Sign(msg)

	b.Run("uncached", func(b *testing.B) {
		sigcrypto.SetVerifyCacheCapacity(0)
		defer func() {
			sigcrypto.SetVerifyCacheCapacity(sigcrypto.DefaultVerifyCacheSize)
			sigcrypto.ResetVerifyCache()
		}()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !sigcrypto.Verify(kp.Public, msg, sig) {
				b.Fatal("valid signature rejected")
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		sigcrypto.SetVerifyCacheCapacity(sigcrypto.DefaultVerifyCacheSize)
		sigcrypto.ResetVerifyCache()
		defer sigcrypto.ResetVerifyCache()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !sigcrypto.Verify(kp.Public, msg, sig) {
				b.Fatal("valid signature rejected")
			}
		}
		hits, misses, _ := sigcrypto.VerifyCacheStats()
		b.ReportMetric(float64(hits)/float64(max(hits+misses, 1)), "hit-rate")
	})
}

func benchSystemConfig() core.SystemConfig {
	cfg := core.DefaultSystemConfig()
	cfg.Topology = topology.TestConfig()
	cfg.OverlayFraction = 0.5
	cfg.ArchiveRetention = 5 * time.Minute
	return cfg
}

// BenchmarkFig4Coverage regenerates Figure 4: forest link coverage as
// peer trees are incorporated.
func BenchmarkFig4Coverage(b *testing.B) {
	cfg := experiments.Fig4Config{System: benchSystemConfig(), SampleHosts: 15}
	rng := benchRand()
	b.ReportAllocs()
	var own float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(cfg, rng)
		if err != nil {
			b.Fatal(err)
		}
		own = res.OwnTreeCoverage()
	}
	b.ReportMetric(own, "own-tree-coverage")
}

// BenchmarkBuildSystem measures deterministic system construction — the
// full topology + keygen + certificate + routing-table + tree pipeline —
// at several worker-pool sizes. The keygen and routing phases fan out
// across the pool; the canonical snapshot is byte-identical for every
// count (pinned by TestBuildSystemWorkerInvariance), so the sweep
// measures pure engine overhead. allocs/op is part of the CI gate: the
// build costs ~69 allocs per overlay node, and growth past the
// -max-alloc-regress tolerance fails benchdiff.
func BenchmarkBuildSystem(b *testing.B) {
	var speedup speedupReporter
	for _, workers := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := benchSystemConfig()
			cfg.Workers = workers
			b.ReportAllocs()
			var nodes int
			for i := 0; i < b.N; i++ {
				s, err := core.BuildSystem(cfg, benchRand())
				if err != nil {
					b.Fatal(err)
				}
				nodes = len(s.Order)
			}
			speedup.report(b, workers)
			b.ReportMetric(float64(nodes), "overlay-nodes")
		})
	}
}

// BenchmarkSendMessageWarm measures the steady-state diagnosis hot
// path: one stewarded message on a warm system with probing running and
// scratch arenas grown. The allocs/op figure is the headline — the
// cached routing states and reusable buffers keep the delivered path at
// a couple of allocations (the report and its copied-out route).
func BenchmarkSendMessageWarm(b *testing.B) {
	cfg := benchSystemConfig()
	s, err := core.BuildSystem(cfg, benchRand())
	if err != nil {
		b.Fatal(err)
	}
	if err := s.StartProbing(); err != nil {
		b.Fatal(err)
	}
	s.Run(10 * time.Minute)
	src, dst := s.Order[0], s.Order[len(s.Order)/2]
	if _, err := s.SendMessage(src, dst); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SendMessage(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func fig5Bench(b *testing.B, malicious float64) (pGood, pFaulty float64) {
	b.Helper()
	cfg := experiments.Fig5Config{
		System:          benchSystemConfig(),
		Duration:        40 * time.Minute,
		Warmup:          6 * time.Minute,
		SampleEvents:    25,
		TriplesPerEvent: 25,
		Bins:            20,
	}
	cfg.System.MaliciousFraction = malicious
	rng := benchRand()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(cfg, rng)
		if err != nil {
			b.Fatal(err)
		}
		pGood, pFaulty = res.PGood, res.PFaulty
	}
	return pGood, pFaulty
}

// BenchmarkFig5BlamePDF regenerates Figure 5(a): blame distributions
// with faithful probe reporting (paper: innocent guilty 1.8%, faulty
// guilty 93.8% at the 40% threshold).
func BenchmarkFig5BlamePDF(b *testing.B) {
	b.ReportAllocs()
	pGood, pFaulty := fig5Bench(b, 0)
	b.ReportMetric(pGood, "p-good")
	b.ReportMetric(pFaulty, "p-faulty")
}

// BenchmarkFig5BlamePDFCollusion regenerates Figure 5(b): 20% of peers
// invert their probe results (paper: 8.4% / 71.3%).
func BenchmarkFig5BlamePDFCollusion(b *testing.B) {
	b.ReportAllocs()
	pGood, pFaulty := fig5Bench(b, 0.2)
	b.ReportMetric(pGood, "p-good")
	b.ReportMetric(pFaulty, "p-faulty")
}

// BenchmarkFig6AccusationError regenerates Figure 6: accusation-window
// error rates vs m at w=100 (paper: m=6 honest, m=16 collusion for
// sub-1% error).
func BenchmarkFig6AccusationError(b *testing.B) {
	b.ReportAllocs()
	var honestM, colludeM int
	for i := 0; i < b.N; i++ {
		h, err := experiments.Fig6(experiments.DefaultFig6Config(0.018, 0.938))
		if err != nil {
			b.Fatal(err)
		}
		c, err := experiments.Fig6(experiments.DefaultFig6Config(0.084, 0.713))
		if err != nil {
			b.Fatal(err)
		}
		honestM, colludeM = h.MinimalM, c.MinimalM
	}
	b.ReportMetric(float64(honestM), "minimal-m-honest")
	b.ReportMetric(float64(colludeM), "minimal-m-collusion")
}

// BenchmarkTable44Bandwidth regenerates §4.4's bandwidth accounting
// (paper: ~77 entries, ~11.5 KB advert, ~16.7 MB heavyweight probing at
// 100k nodes).
func BenchmarkTable44Bandwidth(b *testing.B) {
	cfg := experiments.DefaultBandwidthConfig()
	b.ReportAllocs()
	var advert, hw float64
	for i := 0; i < b.N; i++ {
		_, reports, err := experiments.Bandwidth(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, rep := range reports {
			if rep.OverlayN == 100000 {
				advert, hw = rep.AdvertBytes, rep.HeavyweightMB
			}
		}
	}
	b.ReportMetric(advert, "advert-bytes-100k")
	b.ReportMetric(hw, "heavyweight-MB-100k")
}

// BenchmarkAblationProbeExclusion measures what §3.4's rule — a node's
// own probes never count toward its blame — buys: without it, a dropper
// that publishes "my links were down" talks its way out of every
// verdict.
func BenchmarkAblationProbeExclusion(b *testing.B) {
	rng := benchRand()
	dropper := id.Random(rng)
	honest := id.Random(rng)
	path := []topology.LinkID{1, 2, 3}
	mkArchive := func() *tomography.Archive {
		arch := tomography.NewArchive()
		// Honest prober says all links up; the dropper floods claims
		// that they were down.
		for _, l := range path {
			_ = arch.Record(honest, 0, []tomography.LinkObservation{{Link: l, Up: true}})
		}
		for i := 0; i < 8; i++ {
			for _, l := range path {
				_ = arch.Record(dropper, 1, []tomography.LinkObservation{{Link: l, Up: false}})
			}
		}
		return arch
	}
	b.ReportAllocs()
	var withRule, withoutRule float64
	for i := 0; i < b.N; i++ {
		arch := mkArchive()
		eng, err := core.NewBlameEngine(arch, core.DefaultBlameConfig())
		if err != nil {
			b.Fatal(err)
		}
		res, err := eng.Blame(dropper, path, 0)
		if err != nil {
			b.Fatal(err)
		}
		withRule = res.Blame
		engOff, err := core.NewBlameEngine(arch, core.DefaultBlameConfig(), core.WithSelfExclusion(false))
		if err != nil {
			b.Fatal(err)
		}
		res, err = engOff.Blame(dropper, path, 0)
		if err != nil {
			b.Fatal(err)
		}
		withoutRule = res.Blame
	}
	b.ReportMetric(withRule, "dropper-blame-with-rule")
	b.ReportMetric(withoutRule, "dropper-blame-without-rule")
}

// BenchmarkAblationFuzzyOR compares the paper's fuzzy max-OR across
// links (Eq. 3) with naive averaging: on a long path with one probed-
// down link, averaging dilutes the exculpatory evidence and convicts
// the innocent forwarder.
func BenchmarkAblationFuzzyOR(b *testing.B) {
	rng := benchRand()
	judged := id.Random(rng)
	prober := id.Random(rng)
	const pathLen = 12
	arch := tomography.NewArchive()
	path := make([]topology.LinkID, pathLen)
	for i := range path {
		path[i] = topology.LinkID(i)
		_ = arch.Record(prober, 0, []tomography.LinkObservation{{Link: path[i], Up: i != 5}})
	}
	eng, err := core.NewBlameEngine(arch, core.DefaultBlameConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var maxOR, mean float64
	for i := 0; i < b.N; i++ {
		res, err := eng.Blame(judged, path, 0)
		if err != nil {
			b.Fatal(err)
		}
		maxOR = res.Blame
		var sum float64
		for _, lc := range res.Evidence {
			sum += lc.Confidence
		}
		mean = fuzzy.Not(sum / float64(len(res.Evidence)))
	}
	b.ReportMetric(maxOR, "blame-max-or")
	b.ReportMetric(mean, "blame-averaged")
}

// BenchmarkAblationRecursiveRevision measures culprit accuracy with and
// without §3.5's revision on forwarding chains of varying depth: naive
// next-hop blame always convicts the first forwarder, so its accuracy
// is exactly the fraction of drops that happen at depth one, while the
// revised chain walks blame to the true dropper.
func BenchmarkAblationRecursiveRevision(b *testing.B) {
	rng := benchRand()
	arch := tomography.NewArchive()
	eng, err := core.NewBlameEngine(arch, core.DefaultBlameConfig())
	if err != nil {
		b.Fatal(err)
	}
	const chainLen = 5 // A -> h1 -> h2 -> h3 -> h4; dropper uniform among h1..h4
	hops := make([]id.ID, chainLen)
	for i := range hops {
		hops[i] = id.Random(rng)
	}
	// Per-hop IP paths, all healthy and unprobed (no exculpatory
	// evidence, the pure-forwarder-fault case).
	paths := make([][]topology.LinkID, chainLen-1)
	for i := range paths {
		paths[i] = []topology.LinkID{topology.LinkID(2*i + 1), topology.LinkID(2*i + 2)}
	}

	b.ReportAllocs()
	var withRevision, naive float64
	for i := 0; i < b.N; i++ {
		dropDepth := 1 + rng.IntN(chainLen-1) // hops[dropDepth] drops
		// Every steward before the drop issues a verdict on its next hop.
		var verdicts []core.Verdict
		for s := 0; s < dropDepth; s++ {
			span := append([]topology.LinkID(nil), paths[s]...)
			if s+1 < len(paths) {
				span = append(span, paths[s+1]...)
			}
			res, err := eng.Blame(hops[s+1], span, 0)
			if err != nil {
				b.Fatal(err)
			}
			verdicts = append(verdicts, core.Verdict{Judged: hops[s+1], Guilty: res.Guilty})
		}
		// Revision: the deepest verdict stands.
		if verdicts[len(verdicts)-1].Judged == hops[dropDepth] {
			withRevision++
		}
		// Naive: the source's own verdict stands.
		if verdicts[0].Judged == hops[dropDepth] {
			naive++
		}
	}
	b.ReportMetric(withRevision/float64(b.N), "culprit-accuracy-revision")
	b.ReportMetric(naive/float64(b.N), "culprit-accuracy-naive")
}

// BenchmarkAblationCommitments measures §3.6's defense: without
// forwarding commitments, a malicious sender can fabricate a verifiable
// accusation against a peer for a message it never sent.
func BenchmarkAblationCommitments(b *testing.B) {
	rng := benchRand()
	accuserID := id.Random(rng)
	victimID := id.Random(rng)
	destID := id.Random(rng)
	accuserKeys := sigcrypto.KeyPairFromRand(rng)
	victimKeys := sigcrypto.KeyPairFromRand(rng)

	eng, err := core.NewBlameEngine(tomography.NewArchive(), core.DefaultBlameConfig())
	if err != nil {
		b.Fatal(err)
	}
	keyDir := core.KeyDirectory(func(x id.ID) (ed25519.PublicKey, bool) {
		switch x {
		case accuserID:
			return accuserKeys.Public, true
		case victimID:
			return victimKeys.Public, true
		default:
			return nil, false
		}
	})

	b.ReportAllocs()
	var forgedAccepted, genuineAccepted float64
	for i := 0; i < b.N; i++ {
		res, err := eng.Blame(victimID, []topology.LinkID{1}, 0)
		if err != nil {
			b.Fatal(err)
		}
		// Spurious: the accuser forges the commitment itself.
		forgedCommit := core.NewCommitment(accuserKeys, accuserID, victimID, destID, 7, 0)
		forged, err := core.NewAccusation(accuserKeys, accuserID, res, 7, nil, forgedCommit)
		if err != nil {
			b.Fatal(err)
		}
		if forged.Verify(keyDir, 0.4) == nil {
			forgedAccepted++
		}
		// Genuine: the victim really committed.
		realCommit := core.NewCommitment(victimKeys, accuserID, victimID, destID, 7, 0)
		genuine, err := core.NewAccusation(accuserKeys, accuserID, res, 7, nil, realCommit)
		if err != nil {
			b.Fatal(err)
		}
		if genuine.Verify(keyDir, 0.4) == nil {
			genuineAccepted++
		}
	}
	b.ReportMetric(forgedAccepted/float64(b.N), "forged-accusations-accepted")
	b.ReportMetric(genuineAccepted/float64(b.N), "genuine-accusations-accepted")
}

// BenchmarkAblationDeltaWindow sweeps the evidence window Δ (§3.4, the
// paper uses 60 s): too narrow starves the blame equation of probes and
// convicts innocents behind bad links; too wide admits stale probes
// from before a failure began.
func BenchmarkAblationDeltaWindow(b *testing.B) {
	for _, delta := range []time.Duration{15 * time.Second, time.Minute, 4 * time.Minute} {
		b.Run(delta.String(), func(b *testing.B) {
			cfg := experiments.Fig5Config{
				System:          benchSystemConfig(),
				Duration:        30 * time.Minute,
				Warmup:          6 * time.Minute,
				SampleEvents:    20,
				TriplesPerEvent: 20,
				Bins:            20,
			}
			cfg.System.Blame.Delta = delta
			rng := benchRand()
			var pGood, pFaulty float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.Fig5(cfg, rng)
				if err != nil {
					b.Fatal(err)
				}
				pGood, pFaulty = res.PGood, res.PFaulty
			}
			b.ReportMetric(pGood, "p-good")
			b.ReportMetric(pFaulty, "p-faulty")
		})
	}
}

// BenchmarkAblationProbeSharing quantifies §3.7's consolidated probing:
// co-located hosts probing the union of their trees instead of each
// probing its own.
func BenchmarkAblationProbeSharing(b *testing.B) {
	rng := benchRand()
	cfg := benchSystemConfig()
	sys, err := core.BuildSystem(cfg, rng)
	if err != nil {
		b.Fatal(err)
	}
	// Group nodes into collectives of 4 by order (a stand-in for stub
	// co-location).
	var totalFactor float64
	var groups int
	for i := 0; i+4 <= len(sys.Order); i += 4 {
		members := sys.Order[i : i+4]
		trees := make(map[id.ID]*tomography.Tree, 4)
		for _, m := range members {
			trees[m] = sys.Nodes[m].Tree
		}
		coll, err := tomography.NewCollective(members, trees)
		if err != nil {
			b.Fatal(err)
		}
		_, _, factor := coll.Savings()
		totalFactor += factor
		groups++
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// The steady-state cost is the Savings computation itself.
		members := sys.Order[:4]
		trees := make(map[id.ID]*tomography.Tree, 4)
		for _, m := range members {
			trees[m] = sys.Nodes[m].Tree
		}
		coll, err := tomography.NewCollective(members, trees)
		if err != nil {
			b.Fatal(err)
		}
		coll.Savings()
	}
	if groups > 0 {
		b.ReportMetric(totalFactor/float64(groups), "mean-probe-amortization")
	}
}

// BenchmarkExtensionCollusionSweep runs the collusion-fraction sweep
// extension at small scale, reporting where the window mechanism stops
// compensating.
func BenchmarkExtensionCollusionSweep(b *testing.B) {
	cfg := experiments.CollusionSweepConfig{
		Fractions: []float64{0, 0.2, 0.4},
		Base: experiments.Fig5Config{
			System:          benchSystemConfig(),
			Duration:        30 * time.Minute,
			Warmup:          6 * time.Minute,
			SampleEvents:    20,
			TriplesPerEvent: 20,
			Bins:            20,
		},
		Window: 100,
		Target: 0.01,
	}
	rng := benchRand()
	b.ReportAllocs()
	var mAt40 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.CollusionSweep(cfg, rng)
		if err != nil {
			b.Fatal(err)
		}
		mAt40 = float64(res.Points[len(res.Points)-1].MinimalM)
	}
	b.ReportMetric(mAt40, "minimal-m-at-c40")
}

// BenchmarkExtensionConsensusDefense quantifies the median-consensus
// suppression defense against the standard self-referenced test.
func BenchmarkExtensionConsensusDefense(b *testing.B) {
	model := core.DefaultOccupancyModel()
	scen := core.DensityScenario{N: 1131, Collusion: 0.3, Suppression: true}
	b.ReportAllocs()
	var stdSum, consSum float64
	for i := 0; i < b.N; i++ {
		std, err := core.OptimalGamma(model, scen, 1.0001, 3, 150)
		if err != nil {
			b.Fatal(err)
		}
		stdSum = std.Sum()
		best := core.DensityErrorRates{FalsePositive: 1, FalseNegative: 1}
		for g := 1.01; g < 3; g += 0.01 {
			r, err := core.ConsensusErrorRates(model, scen, g)
			if err != nil {
				b.Fatal(err)
			}
			if r.Sum() < best.Sum() {
				best = r
			}
		}
		consSum = best.Sum()
	}
	b.ReportMetric(stdSum, "standard-error-sum-c30")
	b.ReportMetric(consSum, "consensus-error-sum-c30")
}
