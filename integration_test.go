package concilium_test

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"time"

	"concilium/internal/core"
	"concilium/internal/dht"
	"concilium/internal/id"
	"concilium/internal/netsim"
	"concilium/internal/topology"
	"concilium/internal/wire"
)

// TestFullPipeline drives the complete Concilium stack in one scenario:
// deployment construction, failure injection, collaborative probing,
// stewarded traffic, blame attribution against ground truth, accusation
// publication into the replicated DHT, snapshot wire round-trips, and
// sanctioning policy evaluation.
func TestFullPipeline(t *testing.T) {
	t.Parallel()
	cfg := core.DefaultSystemConfig()
	cfg.Topology = topology.TestConfig()
	cfg.OverlayFraction = 0.5
	cfg.ArchiveRetention = 5 * time.Minute
	rng := rand.New(rand.NewPCG(601, 607))
	sys, err := core.BuildSystem(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.StartFailures(); err != nil {
		t.Fatal(err)
	}
	if err := sys.StartProbing(); err != nil {
		t.Fatal(err)
	}
	sys.Run(6 * time.Minute)
	if sys.Archive.Size() == 0 {
		t.Fatal("no probe records after warmup")
	}

	// Accusation repository + sanction policy.
	store, err := dht.New(sys.Ring, dht.DefaultReplicas)
	if err != nil {
		t.Fatal(err)
	}
	repo, err := dht.NewAccusationRepo(store, sys.Keys(), cfg.Blame.GuiltyThreshold)
	if err != nil {
		t.Fatal(err)
	}
	feed := func(peer id.ID) ([]netsim.Time, error) {
		chains, err := repo.Fetch(peer)
		if err != nil {
			return nil, err
		}
		out := make([]netsim.Time, 0, len(chains))
		for _, c := range chains {
			out = append(out, c.Links[len(c.Links)-1].At)
		}
		return out, nil
	}
	policy, err := core.NewPolicy(core.DefaultPolicyConfig(), feed)
	if err != nil {
		t.Fatal(err)
	}

	// Mark one node a dropper and run traffic until it accumulates
	// enough published accusations to be blacklisted.
	var dropper id.ID
	var nodeDrops, linkDrops, misattributed int
	for _, src := range sys.Order {
		for _, dst := range sys.Order {
			if src == dst {
				continue
			}
			rep, err := sys.SendMessage(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Route) < 3 {
				continue
			}
			if dropper == (id.ID{}) {
				dropper = rep.Route[1]
				sys.Nodes[dropper].Behavior = core.Behavior{DropsMessages: true}
			}
			rep, err = sys.SendMessage(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			switch rep.Kind {
			case core.DropByNode:
				nodeDrops++
				if rep.Culprit != rep.DroppedBy {
					misattributed++
				}
				if rep.Chain != nil {
					if err := repo.Publish(rep.Chain); err != nil {
						t.Fatalf("publish: %v", err)
					}
					// Wire round-trip must preserve verifiability.
					raw, err := wire.EncodeChain(rep.Chain)
					if err != nil {
						t.Fatal(err)
					}
					back, err := wire.DecodeChain(raw)
					if err != nil {
						t.Fatal(err)
					}
					if err := back.Verify(sys.Keys(), cfg.Blame.GuiltyThreshold); err != nil {
						t.Fatalf("decoded chain unverifiable: %v", err)
					}
				}
			case core.DropByLink, core.DropAckByLink:
				linkDrops++
			}
			sys.Run(5 * time.Second)
		}
		if n, _ := repo.Count(dropper); n >= 3 {
			break
		}
	}
	if nodeDrops == 0 {
		t.Skip("no node drops materialized in this seed")
	}
	t.Logf("node drops %d (misattributed %d), link drops %d", nodeDrops, misattributed, linkDrops)
	if misattributed > nodeDrops/2 {
		t.Errorf("too many misattributions: %d of %d", misattributed, nodeDrops)
	}

	// The policy must escalate to blacklist once the rate threshold
	// trips, and every honest node reads the same answer.
	n, err := repo.Count(dropper)
	if err != nil {
		t.Fatal(err)
	}
	sanction, err := policy.Evaluate(dropper, sys.Sim.Now())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("dropper has %d accusations, sanction %v", n, sanction)
	if n >= 3 && sanction != core.SanctionBlacklist {
		t.Errorf("rate threshold met but sanction = %v", sanction)
	}
	if n >= 1 && sanction == core.SanctionNone {
		t.Errorf("accused peer still in good standing")
	}

	// An honest node is untouched.
	var honest id.ID
	for _, nid := range sys.Order {
		if nid != dropper && sys.Nodes[nid].Behavior.Honest() {
			honest = nid
			break
		}
	}
	sanction, err = policy.Evaluate(honest, sys.Sim.Now())
	if err != nil {
		t.Fatal(err)
	}
	if sanction != core.SanctionNone {
		t.Errorf("honest node sanctioned: %v", sanction)
	}
}

// TestDiagnosisUnderChurnedFailures runs traffic while the failure
// injector churns links, checking the network/node attribution split
// stays sane over a long run.
func TestDiagnosisUnderChurnedFailures(t *testing.T) {
	t.Parallel()
	cfg := core.DefaultSystemConfig()
	cfg.Topology = topology.TestConfig()
	cfg.OverlayFraction = 0.5
	cfg.ArchiveRetention = 4 * time.Minute
	// Faster failure churn than default to exercise repair cycles.
	cfg.Failures.MeanDowntime = 4 * time.Minute
	cfg.Failures.StdDowntime = time.Minute
	cfg.Failures.MinDowntime = time.Minute
	rng := rand.New(rand.NewPCG(701, 709))
	sys, err := core.BuildSystem(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.StartFailures(); err != nil {
		t.Fatal(err)
	}
	if err := sys.StartProbing(); err != nil {
		t.Fatal(err)
	}
	sys.Run(6 * time.Minute)

	var networkRight, networkWrong int
	for round := 0; round < 120; round++ {
		src := sys.Order[rng.IntN(len(sys.Order))]
		dst := sys.Order[rng.IntN(len(sys.Order))]
		if src == dst {
			continue
		}
		rep, err := sys.SendMessage(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Kind == core.DropByLink || rep.Kind == core.DropAckByLink {
			if rep.NetworkBlamed {
				networkRight++
			} else {
				networkWrong++
			}
		}
		sys.Run(30 * time.Second)
	}
	total := networkRight + networkWrong
	if total == 0 {
		t.Skip("no network drops in this seed")
	}
	t.Logf("network drops: %d correctly attributed, %d misattributed", networkRight, networkWrong)
	// Probe accuracy is 0.9 and coverage imperfect, so some error is
	// expected; gross misattribution would mean the pipeline is broken.
	if float64(networkWrong) > 0.35*float64(total) {
		t.Errorf("network misattribution rate %d/%d too high", networkWrong, total)
	}
}

// TestWholeStackDeterminism: two systems built and driven identically
// from the same seed must produce identical delivery reports — the
// property every experiment's reproducibility rests on.
func TestWholeStackDeterminism(t *testing.T) {
	t.Parallel()
	runOnce := func() []string {
		cfg := core.DefaultSystemConfig()
		cfg.Topology = topology.TestConfig()
		cfg.OverlayFraction = 0.5
		cfg.ArchiveRetention = 4 * time.Minute
		cfg.MaliciousFraction = 0.1
		rng := rand.New(rand.NewPCG(901, 902))
		sys, err := core.BuildSystem(cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.StartFailures(); err != nil {
			t.Fatal(err)
		}
		if err := sys.StartProbing(); err != nil {
			t.Fatal(err)
		}
		sys.Run(5 * time.Minute)
		var log []string
		for i := 0; i < 40; i++ {
			src := sys.Order[rng.IntN(len(sys.Order))]
			dst := sys.Order[rng.IntN(len(sys.Order))]
			if src == dst {
				continue
			}
			rep, err := sys.SendMessage(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			log = append(log, fmt.Sprintf("%v|%v|%d|%x|%v",
				rep.Delivered, rep.Kind, len(rep.Verdicts), rep.Culprit, rep.NetworkBlamed))
			sys.Run(10 * time.Second)
		}
		return log
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatalf("different log lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at message %d:\n%s\nvs\n%s", i, a[i], b[i])
		}
	}
}

// TestTwoVirtualHourSoak runs the paper's full evaluation duration (two
// virtual hours) with failures churning and periodic traffic, checking
// the system's long-run aggregates: attribution stays sane, the archive
// stays bounded, and the verdict windows never accuse an honest node.
// Skipped under -short.
func TestTwoVirtualHourSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped with -short")
	}
	t.Parallel()
	cfg := core.DefaultSystemConfig()
	cfg.Topology = topology.TestConfig()
	cfg.OverlayFraction = 0.5
	cfg.ArchiveRetention = 5 * time.Minute
	cfg.MaliciousFraction = 0.1
	rng := rand.New(rand.NewPCG(1001, 1009))
	sys, err := core.BuildSystem(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.StartFailures(); err != nil {
		t.Fatal(err)
	}
	if err := sys.StartProbing(); err != nil {
		t.Fatal(err)
	}
	sys.Run(10 * time.Minute)
	archiveAfterWarmup := sys.Archive.Size()

	honest := map[id.ID]bool{}
	for _, nid := range sys.Order {
		honest[nid] = sys.Nodes[nid].Behavior.Honest()
	}
	var sent, delivered int
	var nodeDrops, nodeDropsCorrect int // ground truth: a forwarder dropped
	var netDrops, netDropsMisblamed int // ground truth: a link ate it
	formally := map[id.ID]bool{}
	// ~110 virtual minutes of traffic, one message per virtual minute.
	for minute := 0; minute < 110; minute++ {
		src := sys.Order[rng.IntN(len(sys.Order))]
		dst := sys.Order[rng.IntN(len(sys.Order))]
		if src != dst {
			rep, err := sys.SendMessage(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			sent++
			switch rep.Kind {
			case core.DropNone:
				delivered++
			case core.DropByNode:
				nodeDrops++
				if rep.Culprit == rep.DroppedBy {
					nodeDropsCorrect++
				}
			case core.DropByLink, core.DropAckByLink:
				netDrops++
				if !rep.NetworkBlamed {
					netDropsMisblamed++
				}
			}
			for _, v := range rep.Verdicts {
				if v.Guilty && sys.Window.GuiltyCount(v.Judged) >= cfg.Window.M {
					formally[v.Judged] = true
				}
			}
		}
		sys.Run(time.Minute)
	}
	t.Logf("soak: sent %d, delivered %d; node drops %d (correct %d); network drops %d (misblamed %d)",
		sent, delivered, nodeDrops, nodeDropsCorrect, netDrops, netDropsMisblamed)

	// Archive retention held memory roughly steady across two hours.
	if sz := sys.Archive.Size(); sz > 3*archiveAfterWarmup {
		t.Errorf("archive grew from %d to %d despite retention", archiveAfterWarmup, sz)
	}
	// Genuine node drops mostly land on the dropper.
	if nodeDrops > 2 && nodeDropsCorrect*2 < nodeDrops {
		t.Errorf("node-drop culprit accuracy %d/%d too low", nodeDropsCorrect, nodeDrops)
	}
	// Network drops are only occasionally misattributed to a node; the
	// per-verdict false-guilty rate is a few percent (§4.3), so allow a
	// modest share but not gross misattribution.
	if netDrops > 10 && float64(netDropsMisblamed) > 0.25*float64(netDrops) {
		t.Errorf("network misblame rate %d/%d too high", netDropsMisblamed, netDrops)
	}
	// A node formally accused during the soak should not be honest —
	// with w=100 and m=6, ~2 guilty verdicts per honest node across two
	// hours cannot trip the threshold.
	for nid, isHonest := range honest {
		if isHonest && formally[nid] {
			t.Errorf("honest node %s formally accused during soak", nid.Short())
		}
	}
}
