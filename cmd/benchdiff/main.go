// Command benchdiff gates one bench report against a baseline.
//
// Usage:
//
//	benchdiff [-max-regress 0.25] [-max-alloc-regress 0.25] [-max-rss-regress 0.25]
//	          [-require-checks] [-canonical] baseline.json current.json
//
// The exit status is the gate: nonzero when any figure's ns/op grew
// beyond the tolerance, when a baseline figure vanished, or when a
// strict mode's condition fails. Improvements, added figures, and
// check-value divergence are reported but do not fail the default gate
// — timing baselines age across machines, but a silently dropped
// benchmark or a large regression should stop a merge.
//
// -max-alloc-regress adds an allocation gate with its own tolerance:
// any figure whose allocs/op or bytes/op grew beyond it fails. Heap
// profiles are far more stable across machines than wall clock, so this
// gate typically runs tighter than -max-regress; 0 (the default)
// disables it. -min-allocs exempts figures whose baseline allocs/op is
// at or below the floor, where GC noise dominates.
// -max-rss-regress adds a resident-footprint gate: any figure whose
// peak_rss_bytes or bytes_per_node grew beyond the tolerance fails.
// This is the Scale figure's memory budget — the axis the compact core
// exists to hold down; 0 (the default) disables it.
// -require-checks fails when any figure's deterministic check values
// differ from the baseline's (same-seed comparisons only).
// -canonical fails unless both reports' deterministic cores are
// byte-identical — the worker-count invariance check.
// -figures name1,name2 restricts both reports to the named figures
// before any comparison, so a partial run (e.g. the scale-smoke job's
// scale-only report) can be gated against a full baseline without the
// baseline's other figures counting as MISSING. Naming a figure absent
// from both reports is an error — it catches a stale CI invocation.
package main

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"

	"flag"

	"concilium/internal/benchreport"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	maxRegress := fs.Float64("max-regress", 0.25, "maximum tolerated ns/op growth (0.25 = +25%)")
	minNs := fs.Int64("min-ns", 0, "exempt figures whose baseline ns/op is at or below this from the timing gate")
	maxAllocRegress := fs.Float64("max-alloc-regress", 0, "maximum tolerated allocs/op or bytes/op growth (0 disables the allocation gate)")
	minAllocs := fs.Int64("min-allocs", 1000, "exempt figures whose baseline allocs/op is at or below this from the allocation gate")
	maxRSSRegress := fs.Float64("max-rss-regress", 0, "maximum tolerated peak_rss_bytes or bytes_per_node growth (0 disables the footprint gate)")
	requireChecks := fs.Bool("require-checks", false, "fail when deterministic check values diverge from the baseline")
	canonical := fs.Bool("canonical", false, "fail unless both reports' deterministic cores are byte-identical")
	figures := fs.String("figures", "", "comma-separated figure names; restrict both reports to these before comparing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: benchdiff [flags] baseline.json current.json")
	}
	base, err := benchreport.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	cur, err := benchreport.ReadFile(fs.Arg(1))
	if err != nil {
		return err
	}
	if *figures != "" {
		if err := restrictFigures(base, cur, *figures); err != nil {
			return err
		}
	}

	res, err := benchreport.Compare(base, cur, *maxRegress, *minNs)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "baseline %s (seed %d, %s/%s, %d workers) vs current %s (seed %d, %s/%s, %d workers)\n",
		fs.Arg(0), base.Seed, base.Env.GOOS, base.Env.GOARCH, base.Env.Workers,
		fs.Arg(1), cur.Seed, cur.Env.GOOS, cur.Env.GOARCH, cur.Env.Workers)
	for _, d := range res.Regressions {
		fmt.Fprintf(w, "REGRESSION %-16s %d -> %d ns/op (%.2fx, tolerance %.2fx)\n",
			d.Figure, d.BaseNs, d.CurNs, d.Ratio, 1+*maxRegress)
	}
	for _, d := range res.Improvements {
		fmt.Fprintf(w, "improved   %-16s %d -> %d ns/op (%.2fx)\n", d.Figure, d.BaseNs, d.CurNs, d.Ratio)
	}
	for _, name := range res.Missing {
		fmt.Fprintf(w, "MISSING    %s (in baseline, absent from current)\n", name)
	}
	for _, name := range res.Added {
		fmt.Fprintf(w, "added      %s (no baseline)\n", name)
	}
	for _, name := range res.ChecksDiverged {
		fmt.Fprintf(w, "checks diverged: %s\n", name)
	}

	failed := !res.OK()
	if *maxAllocRegress > 0 {
		allocRegs, err := benchreport.CompareAllocs(base, cur, *maxAllocRegress, *minAllocs)
		if err != nil {
			return err
		}
		for _, d := range allocRegs {
			fmt.Fprintf(w, "ALLOC REGRESSION %-16s %d -> %d %s (%.2fx, tolerance %.2fx)\n",
				d.Figure, d.Base, d.Cur, d.Metric, d.Ratio, 1+*maxAllocRegress)
		}
		if len(allocRegs) > 0 {
			failed = true
		}
	}
	if *maxRSSRegress > 0 {
		rssRegs, err := benchreport.CompareFootprint(base, cur, *maxRSSRegress)
		if err != nil {
			return err
		}
		for _, d := range rssRegs {
			fmt.Fprintf(w, "FOOTPRINT REGRESSION %-16s %d -> %d %s (%.2fx, tolerance %.2fx)\n",
				d.Figure, d.Base, d.Cur, d.Metric, d.Ratio, 1+*maxRSSRegress)
		}
		if len(rssRegs) > 0 {
			failed = true
		}
	}
	if *requireChecks && len(res.ChecksDiverged) > 0 {
		failed = true
	}
	if *canonical {
		same, err := canonicalEqual(base, cur)
		if err != nil {
			return err
		}
		if same {
			fmt.Fprintf(w, "canonical cores identical\n")
		} else {
			fmt.Fprintf(w, "CANONICAL cores differ\n")
			failed = true
		}
	}
	if failed {
		return fmt.Errorf("gate failed")
	}
	fmt.Fprintf(w, "gate passed\n")
	return nil
}

// restrictFigures drops every figure not named in the comma-separated
// list from both reports, keeping declaration order. A name matched by
// neither report is an error: the invoking CI job asked to gate a
// figure nobody produces.
func restrictFigures(base, cur *benchreport.Report, list string) error {
	want := make(map[string]bool)
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			return fmt.Errorf("-figures: empty figure name in %q", list)
		}
		want[name] = false
	}
	keep := func(r *benchreport.Report) {
		kept := r.Figures[:0]
		for _, f := range r.Figures {
			if _, ok := want[f.Name]; ok {
				want[f.Name] = true
				kept = append(kept, f)
			}
		}
		r.Figures = kept
	}
	keep(base)
	keep(cur)
	for name, seen := range want {
		if !seen {
			return fmt.Errorf("-figures: %q matches no figure in either report", name)
		}
	}
	return nil
}

// canonicalEqual byte-compares the two reports' deterministic cores.
func canonicalEqual(a, b *benchreport.Report) (bool, error) {
	var ab, bb bytes.Buffer
	if err := benchreport.Encode(&ab, a.Canonical()); err != nil {
		return false, err
	}
	if err := benchreport.Encode(&bb, b.Canonical()); err != nil {
		return false, err
	}
	return bytes.Equal(ab.Bytes(), bb.Bytes()), nil
}
