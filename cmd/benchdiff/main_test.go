package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"concilium/internal/benchreport"
)

func writeReport(t *testing.T, dir, name string, mutate func(*benchreport.Report)) string {
	t.Helper()
	r := benchreport.New("bench", 7, "small")
	r.Figures = []benchreport.Figure{
		{
			Name:   "fig1",
			Checks: map[string]float64{"max_mean_error": 0.05},
			Timing: benchreport.Timing{WallNs: 1000000, NsPerOp: 1000000, Ops: 1},
		},
		{
			Name:   "chaos-short",
			Checks: map[string]float64{"sent": 40, "invariants_ok": 1},
			Timing: benchreport.Timing{WallNs: 2000000, NsPerOp: 2000000, Ops: 1},
		},
	}
	if mutate != nil {
		mutate(r)
	}
	path := filepath.Join(dir, name)
	if err := benchreport.WriteFile(path, r); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGatePasses(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", nil)
	cur := writeReport(t, dir, "cur.json", func(r *benchreport.Report) {
		r.Figures[0].Timing.NsPerOp = 1100000 // +10%, inside tolerance
	})
	var buf bytes.Buffer
	if err := run(&buf, []string{base, cur}); err != nil {
		t.Fatalf("gate failed unexpectedly: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "gate passed") {
		t.Errorf("output missing pass marker:\n%s", buf.String())
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", nil)
	cur := writeReport(t, dir, "cur.json", func(r *benchreport.Report) {
		r.Figures[0].Timing.NsPerOp = 2000000 // 2x
	})
	var buf bytes.Buffer
	err := run(&buf, []string{base, cur})
	if err == nil {
		t.Fatalf("gate passed despite 2x regression:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "REGRESSION fig1") {
		t.Errorf("output missing regression line:\n%s", buf.String())
	}
}

func TestMinNsExemptsNoisyFigures(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", nil)
	cur := writeReport(t, dir, "cur.json", func(r *benchreport.Report) {
		r.Figures[0].Timing.NsPerOp = 2000000 // 2x, but under the floor
	})
	var buf bytes.Buffer
	if err := run(&buf, []string{"-min-ns", "5000000", base, cur}); err != nil {
		t.Fatalf("noise-floor exemption did not apply: %v\n%s", err, buf.String())
	}
}

func TestAllocGate(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", func(r *benchreport.Report) {
		r.Figures[0].Timing.AllocsPerOp = 100000
		r.Figures[0].Timing.BytesPerOp = 1 << 24
	})
	cur := writeReport(t, dir, "cur.json", func(r *benchreport.Report) {
		r.Figures[0].Timing.AllocsPerOp = 250000 // 2.5x
		r.Figures[0].Timing.BytesPerOp = 1 << 24
	})

	// Disabled by default: a pure allocation regression passes.
	var buf bytes.Buffer
	if err := run(&buf, []string{base, cur}); err != nil {
		t.Fatalf("default gate failed on alloc-only change: %v\n%s", err, buf.String())
	}

	// Enabled, it fails and names the axis.
	buf.Reset()
	err := run(&buf, []string{"-max-alloc-regress", "0.25", base, cur})
	if err == nil {
		t.Fatalf("alloc gate passed despite 2.5x allocs/op growth:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "ALLOC REGRESSION fig1") || !strings.Contains(buf.String(), "allocs/op") {
		t.Errorf("output missing alloc regression line:\n%s", buf.String())
	}

	// The -min-allocs floor exempts tiny figures.
	buf.Reset()
	if err := run(&buf, []string{"-max-alloc-regress", "0.25", "-min-allocs", "200000", base, cur}); err != nil {
		t.Fatalf("min-allocs floor did not apply: %v\n%s", err, buf.String())
	}
}

func TestGateFailsOnMissingFigure(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", nil)
	cur := writeReport(t, dir, "cur.json", func(r *benchreport.Report) {
		r.Figures = r.Figures[:1] // drop chaos-short
	})
	var buf bytes.Buffer
	if err := run(&buf, []string{base, cur}); err == nil {
		t.Fatalf("gate passed despite dropped benchmark:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "MISSING    chaos-short") {
		t.Errorf("output missing MISSING line:\n%s", buf.String())
	}
}

func TestRequireChecks(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", nil)
	cur := writeReport(t, dir, "cur.json", func(r *benchreport.Report) {
		r.Figures[0].Checks["max_mean_error"] = 0.9
	})
	// Default gate: divergence is reported, not fatal.
	var buf bytes.Buffer
	if err := run(&buf, []string{base, cur}); err != nil {
		t.Fatalf("default gate failed on check divergence: %v", err)
	}
	if !strings.Contains(buf.String(), "checks diverged: fig1") {
		t.Errorf("divergence not reported:\n%s", buf.String())
	}
	// Strict mode: fatal.
	buf.Reset()
	if err := run(&buf, []string{"-require-checks", base, cur}); err == nil {
		t.Fatal("-require-checks passed despite divergence")
	}
}

func TestCanonicalMode(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", nil)
	// Different timing + env, identical deterministic core.
	same := writeReport(t, dir, "same.json", func(r *benchreport.Report) {
		r.Figures[0].Timing.NsPerOp = 1200000
		r.Env.Workers = 8
	})
	var buf bytes.Buffer
	if err := run(&buf, []string{"-canonical", base, same}); err != nil {
		t.Fatalf("canonical gate failed on identical cores: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "canonical cores identical") {
		t.Errorf("output missing canonical marker:\n%s", buf.String())
	}

	diff := writeReport(t, dir, "diff.json", func(r *benchreport.Report) {
		r.Figures[0].Checks["max_mean_error"] = 0.06
	})
	buf.Reset()
	if err := run(&buf, []string{"-canonical", base, diff}); err == nil {
		t.Fatalf("canonical gate passed despite diverged cores:\n%s", buf.String())
	}
}

func TestFiguresFilter(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", nil)
	// Partial current report: only fig1, as a scale-smoke-style job
	// would produce. Unfiltered, the dropped figure fails the gate.
	cur := writeReport(t, dir, "cur.json", func(r *benchreport.Report) {
		r.Figures = r.Figures[:1]
	})
	var buf bytes.Buffer
	if err := run(&buf, []string{base, cur}); err == nil {
		t.Fatalf("unfiltered gate passed despite missing figure:\n%s", buf.String())
	}

	// Restricted to fig1, the partial report gates cleanly.
	buf.Reset()
	if err := run(&buf, []string{"-figures", "fig1", base, cur}); err != nil {
		t.Fatalf("-figures fig1 gate failed: %v\n%s", err, buf.String())
	}
	if strings.Contains(buf.String(), "MISSING") {
		t.Errorf("filtered gate still reports MISSING:\n%s", buf.String())
	}

	// The filter still catches a real regression in the kept figure.
	reg := writeReport(t, dir, "reg.json", func(r *benchreport.Report) {
		r.Figures = r.Figures[:1]
		r.Figures[0].Timing.NsPerOp = 2000000
	})
	buf.Reset()
	if err := run(&buf, []string{"-figures", "fig1", base, reg}); err == nil {
		t.Fatalf("filtered gate passed despite 2x regression:\n%s", buf.String())
	}

	// A name matching neither report is a configuration error.
	buf.Reset()
	if err := run(&buf, []string{"-figures", "no-such-fig", base, cur}); err == nil {
		t.Fatal("-figures accepted a name absent from both reports")
	}
}

func TestUsageErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"only-one.json"}); err == nil {
		t.Error("single argument accepted")
	}
	if err := run(&buf, []string{"/nonexistent/a.json", "/nonexistent/b.json"}); err == nil {
		t.Error("unreadable baseline accepted")
	}
}
